package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE17RenderedTier-8         	20000000	        54.88 ns/op	       0 B/op	       0 allocs/op
BenchmarkE14ServiceThroughput/fixpoint/warm-store-8         	     300	     69306 ns/op	    8328 B/op	      97 allocs/op
BenchmarkE14ServiceThroughput/fixpoint/cold-store         	     300	   4380632 ns/op	   79848 B/op	    1301 allocs/op
PASS
`

func TestGatePasses(t *testing.T) {
	thresholds := `# comment
BenchmarkE17RenderedTier 20
BenchmarkE14ServiceThroughput/fixpoint/warm-store 150
`
	var sb strings.Builder
	if !gate(sampleBench, thresholds, &sb) {
		t.Fatalf("gate failed on in-threshold output:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "ok") {
		t.Fatalf("report missing ok lines:\n%s", sb.String())
	}
}

func TestGateFailsOverCeiling(t *testing.T) {
	var sb strings.Builder
	if gate(sampleBench, "BenchmarkE14ServiceThroughput/fixpoint/warm-store 50\n", &sb) {
		t.Fatal("gate passed a benchmark over its ceiling")
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Fatalf("report missing FAIL line:\n%s", sb.String())
	}
}

func TestGateFailsMissingBenchmark(t *testing.T) {
	var sb strings.Builder
	if gate(sampleBench, "BenchmarkE99DoesNotExist 10\n", &sb) {
		t.Fatal("gate passed with a gated benchmark missing from output")
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Fatalf("report missing MISSING line:\n%s", sb.String())
	}
}

func TestGateRejectsMalformedThresholds(t *testing.T) {
	var sb strings.Builder
	if gate(sampleBench, "BenchmarkE17RenderedTier\n", &sb) {
		t.Fatal("gate accepted a thresholds line without a ceiling")
	}
	if gate(sampleBench, "BenchmarkE17RenderedTier 20\nBenchmarkE17RenderedTier 30\n", &sb) {
		t.Fatal("gate accepted duplicate threshold entries")
	}
}

func TestParseAllocsStripsCPUSuffix(t *testing.T) {
	got := parseAllocs(sampleBench)
	if runs := got["BenchmarkE17RenderedTier"]; len(runs) != 1 || runs[0] != 0 {
		t.Fatalf("BenchmarkE17RenderedTier = %v, want [0]", runs)
	}
	if runs := got["BenchmarkE14ServiceThroughput/fixpoint/cold-store"]; len(runs) != 1 || runs[0] != 1301 {
		t.Fatalf("cold-store = %v, want [1301]", runs)
	}
}
