// Command allocgate is the CI allocation-regression gate for the warm
// serving path. It reads `go test -bench -benchmem` output and a
// thresholds file, and fails when any gated benchmark's allocs/op
// exceeds its checked-in ceiling — or when a gated benchmark is
// missing from the output, so renaming or deleting a benchmark cannot
// silently retire its gate.
//
// Usage:
//
//	allocgate -bench bench-output.txt -thresholds bench/alloc_thresholds.txt
//
// The thresholds file holds one "benchmark-name max-allocs" pair per
// line; blank lines and #-comments are ignored. Benchmark names are
// matched with any trailing -GOMAXPROCS suffix stripped, so the same
// thresholds hold on any runner. When a benchmark appears several
// times (e.g. -count > 1), every appearance must pass.
//
// Exit status is non-zero on any violation; every result is printed so
// the CI log shows the measured numbers next to their ceilings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	benchPath := flag.String("bench", "", "go test -bench -benchmem output file")
	thresholdsPath := flag.String("thresholds", "", "thresholds file: one \"benchmark max-allocs\" per line")
	flag.Parse()
	if *benchPath == "" || *thresholdsPath == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: allocgate -bench bench-output.txt -thresholds thresholds.txt")
		os.Exit(2)
	}
	bench, err := os.ReadFile(*benchPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}
	thresholds, err := os.ReadFile(*thresholdsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}
	if !gate(string(bench), string(thresholds), os.Stdout) {
		os.Exit(1)
	}
}

// cpuSuffix is the trailing -GOMAXPROCS decoration `go test` appends
// to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseThresholds reads the thresholds file into (name, ceiling)
// pairs, preserving file order for the report.
func parseThresholds(content string) ([]string, map[string]int64, error) {
	var names []string
	limits := make(map[string]int64)
	for i, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, nil, fmt.Errorf("thresholds:%d: want \"benchmark max-allocs\", got %q", i+1, line)
		}
		max, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("thresholds:%d: %s: %v", i+1, name, err)
		}
		if _, dup := limits[name]; dup {
			return nil, nil, fmt.Errorf("thresholds:%d: duplicate benchmark %q", i+1, name)
		}
		names = append(names, name)
		limits[name] = max
	}
	return names, limits, nil
}

// parseAllocs extracts every "allocs/op" measurement from benchmark
// output, keyed by benchmark name with the -GOMAXPROCS suffix
// stripped. A benchmark may appear multiple times.
func parseAllocs(content string) map[string][]int64 {
	out := make(map[string][]int64)
	for _, line := range strings.Split(content, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 1; i < len(fields); i++ {
			if fields[i] != "allocs/op" {
				continue
			}
			n, err := strconv.ParseInt(fields[i-1], 10, 64)
			if err != nil {
				break
			}
			name := cpuSuffix.ReplaceAllString(fields[0], "")
			out[name] = append(out[name], n)
			break
		}
	}
	return out
}

// gate checks every thresholded benchmark against the output and
// reports pass/fail per line to w; it returns false when any gated
// benchmark is missing or over its ceiling.
func gate(bench, thresholds string, w io.Writer) bool {
	names, limits, err := parseThresholds(thresholds)
	if err != nil {
		fmt.Fprintln(w, "allocgate:", err)
		return false
	}
	measured := parseAllocs(bench)
	ok := true
	for _, name := range names {
		runs, found := measured[name]
		if !found {
			fmt.Fprintf(w, "MISSING %-60s (<= %d allocs/op): not in bench output\n", name, limits[name])
			ok = false
			continue
		}
		for _, n := range runs {
			verdict := "ok"
			if n > limits[name] {
				verdict = "FAIL"
				ok = false
			}
			fmt.Fprintf(w, "%-4s %-60s %6d allocs/op (ceiling %d)\n", verdict, name, n, limits[name])
		}
	}
	return ok
}
