// Command docgate is the CI documentation gate. It enforces three
// invariants that go vet does not:
//
//  1. Every exported identifier (type, function, method, and each name
//     in an exported const/var group) in the packages given as
//     arguments carries a doc comment that mentions the identifier or
//     belongs to a commented group declaration.
//  2. The README "Commands" table lists exactly the commands present
//     under cmd/ (pass -readme README.md -cmds cmd to enable).
//  3. Every example directory holds a main package that opens with a
//     package doc comment — runnable documentation must say what it
//     demonstrates (pass -examples examples to enable; pair it with
//     `go vet ./examples/...` in CI so the examples also keep
//     compiling).
//
// Usage:
//
//	docgate [-readme README.md -cmds cmd] [-examples examples]
//	        [-require dir,dir] ./internal/... ./tools/...
//
// A package argument ending in /... is expanded recursively to every
// subdirectory containing non-test Go files (testdata directories are
// skipped, following the Go tool convention), so the gate cannot
// silently miss a newly added package.
//
// -require lists directories that must be present in the expanded
// package set. The expansion skips directories with only test files,
// so a package a CI job depends on gating could otherwise drop out of
// coverage without any signal; naming it in -require turns that silent
// skip into a failure.
//
// Exit status is non-zero if any check fails; every violation is
// printed as file:line: message so editors and CI logs can jump to it.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	readme := flag.String("readme", "", "README file whose Commands table must match -cmds (empty = skip)")
	cmds := flag.String("cmds", "", "directory of command packages to check against -readme")
	examples := flag.String("examples", "", "directory of example programs that must carry package docs (empty = skip)")
	require := flag.String("require", "", "comma-separated directories the expanded package set must contain (empty = skip)")
	flag.Parse()

	dirs, err := expandPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "docgate:", err)
		os.Exit(2)
	}
	bad := 0
	if *require != "" {
		have := map[string]bool{}
		for _, dir := range dirs {
			have[filepath.Clean(dir)] = true
		}
		for _, r := range strings.Split(*require, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !have[filepath.Clean(r)] {
				fmt.Printf("%s: required package is not covered by the gate's package arguments\n", r)
				bad++
			}
		}
	}
	for _, dir := range dirs {
		violations, err := checkPackageDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docgate:", err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		bad += len(violations)
	}
	if *readme != "" && *cmds != "" {
		violations, err := checkReadmeCommands(*readme, *cmds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docgate:", err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		bad += len(violations)
	}
	if *examples != "" {
		violations, err := checkExamples(*examples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docgate:", err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		bad += len(violations)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docgate: %d violation(s)\n", bad)
		os.Exit(1)
	}
}

// expandPatterns resolves the package arguments: a plain directory
// passes through, an argument ending in /... walks the prefix
// recursively and yields every directory holding non-test Go files
// (skipping testdata, like the go tool). The expansion is sorted, so
// violation output stays deterministic.
func expandPatterns(args []string) ([]string, error) {
	var dirs []string
	for _, arg := range args {
		prefix, recursive := strings.CutSuffix(arg, "/...")
		if !recursive {
			dirs = append(dirs, arg)
			continue
		}
		err := filepath.WalkDir(prefix, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			ok, err := hasGoFiles(path)
			if err != nil {
				return err
			}
			if ok {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("expand %s: %w", arg, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// checkExamples verifies every subdirectory of dir is a documented
// example: it holds Go files forming a main package whose package
// clause carries a doc comment.
func checkExamples(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		ok, err := hasGoFiles(sub)
		if err != nil {
			return nil, err
		}
		if !ok {
			out = append(out, fmt.Sprintf("%s: example directory has no Go files", sub))
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, sub, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for name, pkg := range pkgs {
			if name != "main" {
				out = append(out, fmt.Sprintf("%s: example package is %q, want main", sub, name))
				continue
			}
			documented := false
			for _, file := range pkg.Files {
				if file.Doc.Text() != "" {
					documented = true
				}
			}
			if !documented {
				out = append(out, fmt.Sprintf("%s: example has no package doc comment", sub))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// checkPackageDir parses every non-test .go file in dir and returns one
// "file:line: ..." string per undocumented exported identifier.
func checkPackageDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, name, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	reportForm := func(pos token.Pos, name, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: doc comment of exported %s %s should start with %q", p.Filename, p.Line, what, name, name))
	}
	check := func(pos token.Pos, name, what, doc string) {
		if doc == "" {
			report(pos, name, what)
		} else if !startsWithName(doc, name) {
			reportForm(pos, name, what)
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					what := "function"
					if d.Recv != nil {
						what = "method"
					}
					check(d.Pos(), d.Name.Name, what, d.Doc.Text())
				case *ast.GenDecl:
					checkGenDecl(d, check)
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// startsWithName reports whether a doc comment opens with the
// identifier it documents, optionally preceded by an article — the
// godoc convention that makes each comment read standalone in listings.
func startsWithName(doc, name string) bool {
	for _, article := range []string{"", "A ", "An ", "The "} {
		if strings.HasPrefix(doc, article+name) {
			return true
		}
	}
	return false
}

// receiverExported reports whether a method's receiver type is itself
// exported; methods on unexported types are not part of the API surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl walks a type/const/var declaration. A doc comment on the
// group declaration covers all its specs (any form); an individual spec
// comment must follow the starts-with-name convention for types and
// merely exist for const/var names (grouped enumerations conventionally
// share prose).
func checkGenDecl(d *ast.GenDecl, check func(token.Pos, string, string, string)) {
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc.Text()
			if doc == "" && groupDoc {
				doc = d.Doc.Text()
			}
			check(s.Pos(), s.Name.Name, "type", doc)
		case *ast.ValueSpec:
			if groupDoc || s.Doc.Text() != "" || s.Comment.Text() != "" {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					check(s.Pos(), name.Name, kindOf(d.Tok), "")
				}
			}
		}
	}
}

func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// checkReadmeCommands verifies the README Commands table rows
// (`cmd/<name>`) are exactly the directories under cmdsDir.
func checkReadmeCommands(readme, cmdsDir string) ([]string, error) {
	data, err := os.ReadFile(readme)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(cmdsDir)
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() {
			want[e.Name()] = true
		}
	}
	// Table rows look like: | `cmd/speedup` | ... |
	re := regexp.MustCompile("(?m)^\\|\\s*`cmd/([a-z0-9_-]+)`")
	got := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(data), -1) {
		got[m[1]] = true
	}
	var out []string
	for name := range want {
		if !got[name] {
			out = append(out, fmt.Sprintf("%s: command table is missing `%s`", readme, filepath.Join(cmdsDir, name)))
		}
	}
	for name := range got {
		if !want[name] {
			out = append(out, fmt.Sprintf("%s: command table lists `cmd/%s` which does not exist", readme, name))
		}
	}
	sort.Strings(out)
	return out, nil
}
