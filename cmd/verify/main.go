// Command verify runs the brute-force solvability oracle and the
// conformance harness of internal/oracle, and emits machine-readable
// JSON verdicts.
//
// Usage:
//
//	verify -problem <catalog-name> [-rounds t] [-n maxN] [-workers k]
//	       [-family name] [-seed s] [-relaxed] [-conformance] [-list]
//
// In the default mode the command decides whether the named catalog
// problem is solvable by a single deterministic t-round port-numbering
// algorithm on the selected instance family, printing the verdict
// (including the witness algorithm, when one exists) as JSON:
//
//	verify -problem sinkless-orientation/delta=3 -rounds 1 -family oriented-regular
//
// With -conformance it instead cross-validates the oracle against the
// speedup engine and the fixpoint driver (zero-round equivalence,
// speedup soundness, fixpoint upper bounds):
//
//	verify -problem superweak/k=2,delta=3 -conformance
//
// Exit codes make the outcome scriptable without parsing the JSON:
// 0 = solvable / all conformance checks passed, 2 = decided UNSOLVABLE
// or a conformance check failed, 1 = the decision could not be made
// (bad flags, unknown problem, infeasible search, budget exhausted).
// The JSON schema is documented in the README ("cmd/verify — JSON
// schema and exit codes").
//
// Families (sized by -n where applicable, seeded by -seed):
//
//	cycles            every port numbering of C_3..C_n        (Δ=2)
//	oriented-cycles   cycles × every edge orientation         (Δ=2)
//	trees             every port numbering of the depth-1
//	                  truncated Δ-regular tree (use -relaxed)
//	oriented-trees    trees × every edge orientation
//	regular           small Δ-regular graphs, shuffled ports
//	oriented-regular  regular × seeded random orientations
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/problems"
)

func main() {
	problem := flag.String("problem", "", "catalog problem name (see -list)")
	rounds := flag.Int("rounds", 1, "round count t to decide")
	maxN := flag.Int("n", 5, "maximum instance size for sized families")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	family := flag.String("family", "", "instance family (defaults to regular, or cycles at Δ=2)")
	seed := flag.Int64("seed", 1, "seed for shuffled/oriented family variants")
	relaxed := flag.Bool("relaxed", false, "exempt nodes of degree != Δ from the node constraint (tree families)")
	conformance := flag.Bool("conformance", false, "run the conformance harness instead of a single decision")
	list := flag.Bool("list", false, "list catalog problems and exit")
	// The default ExitOnError handling exits 2 on bad flags, which would
	// collide with exit 2 = "decided UNSOLVABLE"; bad flags must exit 1.
	flag.CommandLine.Init(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(1)
	}

	if *list {
		for _, e := range problems.Catalog() {
			fmt.Println(e.Name)
		}
		return
	}
	code, err := run(*problem, *rounds, *maxN, *workers, *family, *seed, *relaxed, *conformance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func lookupProblem(name string) (*core.Problem, error) {
	var known []string
	for _, e := range problems.Catalog() {
		if e.Name == name {
			return e.Problem, nil
		}
		known = append(known, e.Name)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("unknown problem %q; catalog: %s", name, strings.Join(known, ", "))
}

func buildFamily(name string, delta, maxN int, seed int64) ([]oracle.Instance, error) {
	if name == "" {
		if delta == 2 {
			name = "cycles"
		} else {
			name = "regular"
		}
	}
	switch name {
	case "cycles":
		return oracle.CycleRange(3, maxN)
	case "oriented-cycles":
		insts, err := oracle.CycleRange(3, maxN)
		if err != nil {
			return nil, err
		}
		return oracle.WithAllOrientations(insts)
	case "trees":
		return oracle.Trees(delta, 1)
	case "oriented-trees":
		insts, err := oracle.Trees(delta, 1)
		if err != nil {
			return nil, err
		}
		return oracle.WithAllOrientations(insts)
	case "regular":
		bases, err := oracle.RegularBases(delta, maxN+2*delta)
		if err != nil {
			return nil, err
		}
		return oracle.WithShuffledPorts(bases, 6, seed), nil
	case "oriented-regular":
		bases, err := oracle.RegularBases(delta, maxN+2*delta)
		if err != nil {
			return nil, err
		}
		return oracle.WithRandomOrientations(oracle.WithShuffledPorts(bases, 3, seed), 3, seed+1), nil
	default:
		return nil, fmt.Errorf("unknown family %q (cycles, oriented-cycles, trees, oriented-trees, regular, oriented-regular)", name)
	}
}

// decision is the JSON envelope for a single oracle run.
type decision struct {
	Problem string          `json:"problem"`
	Family  string          `json:"family"`
	Seed    int64           `json:"seed"`
	Verdict *oracle.Verdict `json:"verdict"`
}

// exitNegative is the exit code for a completed negative outcome — a
// decided UNSOLVABLE verdict or a failed conformance check — as opposed
// to exit 1, which means the decision itself could not be made.
const exitNegative = 2

func run(problemName string, rounds, maxN, workers int, family string, seed int64, relaxed, conformance bool) (int, error) {
	if problemName == "" {
		return 0, fmt.Errorf("-problem is required (use -list for the catalog)")
	}
	p, err := lookupProblem(problemName)
	if err != nil {
		return 0, err
	}
	opts := []oracle.Option{oracle.WithWorkers(workers)}
	if relaxed {
		opts = append(opts, oracle.WithRelaxedDegrees())
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if conformance {
		fams, err := oracle.DefaultFamilies(p.Delta(), seed)
		if err != nil {
			return 0, err
		}
		maxT := rounds
		if maxT < 1 {
			maxT = 1
		}
		rep, err := oracle.Conformance(problemName, p, fams, maxT, opts...)
		if err != nil {
			return 0, err
		}
		if err := enc.Encode(rep); err != nil {
			return 0, err
		}
		if !rep.OK {
			fmt.Fprintf(os.Stderr, "verify: conformance checks failed for %s\n", problemName)
			return exitNegative, nil
		}
		return 0, nil
	}

	insts, err := buildFamily(family, p.Delta(), maxN, seed)
	if err != nil {
		return 0, err
	}
	v, err := oracle.Decide(p, insts, rounds, opts...)
	if err != nil {
		return 0, err
	}
	if err := enc.Encode(decision{Problem: problemName, Family: familyLabel(family, p.Delta()), Seed: seed, Verdict: v}); err != nil {
		return 0, err
	}
	if !v.Solvable {
		return exitNegative, nil
	}
	return 0, nil
}

func familyLabel(name string, delta int) string {
	if name != "" {
		return name
	}
	if delta == 2 {
		return "cycles"
	}
	return "regular"
}
