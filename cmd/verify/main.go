// Command verify runs the brute-force solvability oracle and the
// conformance harness through the shared service layer
// (internal/service — the same query path cmd/serve exposes over
// HTTP), and emits machine-readable JSON verdicts.
//
// Usage:
//
//	verify -problem <catalog-name> [-rounds t] [-n maxN] [-workers k]
//	       [-family name] [-seed s] [-relaxed] [-conformance]
//	       [-store dir] [-list]
//	verify -gen <spec> [-workers k] [-seed s]
//
// In the default mode the command decides whether the named catalog
// problem is solvable by a single deterministic t-round port-numbering
// algorithm on the selected instance family, printing the verdict
// (including the witness algorithm, when one exists) as JSON:
//
//	verify -problem sinkless-orientation/delta=3 -rounds 1 -family oriented-regular
//
// With -conformance it instead cross-validates the oracle against the
// speedup engine and the fixpoint driver (zero-round equivalence,
// speedup soundness, fixpoint upper bounds):
//
//	verify -problem superweak/k=2,delta=3 -conformance
//
// With -gen it runs the randomized metamorphic conformance harness
// (internal/conformance) over a generated problem space instead of a
// single catalog problem: the spec (grammar: gen.ParseSpec) is expanded
// deterministically, every generated problem is driven through the
// speedup engine, the fixpoint driver, the HTTP service tiers and the
// brute-force oracle, and the universal invariants are checked. The
// report is printed as JSON; every failure carries the exact
// single-point -gen spec that regenerates the offending problem, and
// those reproductions are echoed to stderr:
//
//	verify -gen family=rand,seed=7,count=100,delta=3,labels=3
//
// With -store dir rendered verdicts are cached in the persistent
// result store shared with cmd/serve and cmd/sweep: re-running the
// same decision replays the stored verdict byte-identically instead of
// repeating the search.
//
// Exit codes make the outcome scriptable without parsing the JSON:
// 0 = solvable / all conformance checks passed, 2 = decided UNSOLVABLE
// or a conformance check failed, 1 = the decision could not be made
// (bad flags, unknown problem, infeasible search, budget exhausted).
// The JSON schema is documented in the README ("cmd/verify — JSON
// schema and exit codes"); the HTTP service maps the same outcomes to
// 200 / 409 / 4xx.
//
// The instance families (sized by -n where applicable, seeded by
// -seed) are documented at oracle.BuildFamily: cycles,
// oriented-cycles, trees (use -relaxed), oriented-trees, regular,
// oriented-regular.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/conformance"
	"repro/internal/problems"
	"repro/internal/problems/gen"
	"repro/internal/service"
)

func main() {
	problem := flag.String("problem", "", "catalog problem name (see -list)")
	rounds := flag.Int("rounds", 1, "round count t to decide")
	maxN := flag.Int("n", 5, "maximum instance size for sized families")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	family := flag.String("family", "", "instance family (defaults to regular, or cycles at Δ=2)")
	seed := flag.Int64("seed", 1, "seed for shuffled/oriented family variants")
	relaxed := flag.Bool("relaxed", false, "exempt nodes of degree != Δ from the node constraint (tree families)")
	conformanceFlag := flag.Bool("conformance", false, "run the conformance harness instead of a single decision")
	genSpec := flag.String("gen", "", "run the metamorphic harness over a generated problem space (spec grammar: gen.ParseSpec)")
	storeDir := flag.String("store", "", "persistent result store directory for verdict caching")
	list := flag.Bool("list", false, "list catalog problems and exit")
	// The default ExitOnError handling exits 2 on bad flags, which would
	// collide with exit 2 = "decided UNSOLVABLE"; bad flags must exit 1.
	flag.CommandLine.Init(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(1)
	}

	if *list {
		for _, e := range problems.Catalog() {
			fmt.Println(e.Name)
		}
		return
	}
	if *genSpec != "" {
		var conflict error
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "gen", "workers", "seed":
			default:
				conflict = fmt.Errorf("-%s cannot be combined with -gen (the harness drives the whole generated space)", f.Name)
			}
		})
		if conflict != nil {
			fmt.Fprintln(os.Stderr, "verify:", conflict)
			os.Exit(1)
		}
		exitCode, err := runGen(*genSpec, *workers, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verify:", err)
			os.Exit(1)
		}
		os.Exit(exitCode)
	}
	code, err := run(*problem, *rounds, *maxN, *workers, *family, *seed, *relaxed, *conformanceFlag, *storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// exitNegative is the exit code for a completed negative outcome — a
// decided UNSOLVABLE verdict or a failed conformance check — as opposed
// to exit 1, which means the decision itself could not be made.
const exitNegative = 2

// runGen expands the generation spec and runs the metamorphic harness
// over the whole space, printing the report as indented JSON. Failures
// echo their reproducing -gen invocations to stderr and exit 2.
func runGen(specText string, workers int, seed int64) (int, error) {
	spec, err := gen.ParseSpec(specText)
	if err != nil {
		return 0, fmt.Errorf("-gen: %w", err)
	}
	rep, err := conformance.RunSpec(spec, conformance.Options{Workers: workers, Seed: seed})
	if err != nil {
		return 0, err
	}
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return 0, err
	}
	fmt.Printf("%s\n", body)
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "verify: %d conformance failure(s) over %d generated problem(s)\n", len(rep.Failures), rep.Problems)
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "verify: reproduce %s [%s] with: verify -gen %s\n", f.Problem, f.Check, f.Repro)
		}
		return exitNegative, nil
	}
	return 0, nil
}

// run issues the query through the service engine and prints the
// verdict indented, returning the exit code.
func run(problemName string, rounds, maxN, workers int, family string, seed int64, relaxed, conformance bool, storeDir string) (int, error) {
	if problemName == "" {
		return 0, fmt.Errorf("-problem is required (use -list for the catalog)")
	}
	engine, err := service.New(service.Config{StoreDir: storeDir, Workers: workers})
	if err != nil {
		return 0, err
	}
	defer engine.Close()

	resp, err := engine.Verify(context.Background(), service.VerifyRequest{
		Problem:     problemName,
		Rounds:      &rounds,
		MaxN:        &maxN,
		Family:      family,
		Seed:        &seed,
		Relaxed:     relaxed,
		Conformance: conformance,
	})
	if err != nil {
		return 0, err
	}
	// Indenting the compact rendering is byte-identical to encoding
	// with SetIndent, so the printed schema matches the HTTP body.
	var out bytes.Buffer
	if err := json.Indent(&out, resp.Body, "", "  "); err != nil {
		return 0, err
	}
	out.WriteByte('\n')
	if _, err := os.Stdout.Write(out.Bytes()); err != nil {
		return 0, err
	}
	if resp.Negative {
		if conformance {
			fmt.Fprintf(os.Stderr, "verify: conformance checks failed for %s\n", problemName)
		}
		return exitNegative, nil
	}
	return 0, nil
}
