package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/store"
)

// testArgs is a small, fast grid used by the in-process tests.
func testArgs(extra ...string) []string {
	base := []string{"-delta", "2:3", "-k", "2:2", "-max-states", "8000", "-max-steps", "2"}
	return append(base, extra...)
}

// runSweep runs the sweep in-process and returns the report bytes.
func runSweep(t *testing.T, args []string) []byte {
	t.Helper()
	cfg, err := parseFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if err := run(cfg, &out, &errw); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errw.String())
	}
	return out.Bytes()
}

func TestReportByteIdentityColdWarmResumed(t *testing.T) {
	for _, format := range []string{"tsv", "json"} {
		dir := t.TempDir()
		storeArgs := testArgs("-format", format, "-store", dir)

		bare := runSweep(t, testArgs("-format", format)) // no store at all
		cold := runSweep(t, storeArgs)                   // populates checkpoints
		warm := runSweep(t, storeArgs)                   // all checkpoint hits

		if !bytes.Equal(bare, cold) {
			t.Fatalf("%s: store-backed cold report differs from storeless report", format)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("%s: warm report differs from cold report", format)
		}

		// A partially populated store — what a killed sweep leaves
		// behind — must resume into the same bytes: sweep a sub-grid
		// into a fresh store, then the full grid over it.
		partialDir := t.TempDir()
		runSweep(t, []string{"-delta", "2:2", "-k", "2:2", "-max-states", "8000", "-max-steps", "2",
			"-format", format, "-store", partialDir})
		resumed := runSweep(t, testArgs("-format", format, "-store", partialDir))
		if !bytes.Equal(cold, resumed) {
			t.Fatalf("%s: resumed report differs from cold report", format)
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	want := runSweep(t, testArgs("-workers", "1"))
	for _, w := range []string{"2", "4", "8"} {
		if got := runSweep(t, testArgs("-workers", w)); !bytes.Equal(got, want) {
			t.Fatalf("workers=%s: report differs from workers=1", w)
		}
	}
}

// TestResumeAfterKill kills a sweeping subprocess with SIGKILL
// mid-run, resumes it against the same store, and requires the final
// report to be byte-identical to an uninterrupted run — the
// checkpoint/recovery acceptance test, end to end through the real
// binary.
func TestResumeAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real subprocess")
	}
	bin := filepath.Join(t.TempDir(), "sweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A grid slow enough to reliably survive until the first
	// checkpoint is written, fast enough for a test.
	gridArgs := []string{"-delta", "2:4", "-k", "2:2", "-max-states", "60000", "-max-steps", "3", "-workers", "1"}

	uninterruptedDir := t.TempDir()
	uninterrupted, err := exec.Command(bin, append(gridArgs, "-store", uninterruptedDir)...).Output()
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	killedDir := t.TempDir()
	cmd := exec.Command(bin, append(gridArgs, "-store", killedDir)...)
	cmd.Stdout = new(bytes.Buffer)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as the first checkpoint lands, so the store is
	// mid-sweep: some tasks done, the rest missing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		matches, _ := filepath.Glob(filepath.Join(killedDir, "objects", "*", "*.traj"))
		if len(matches) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = cmd.Process.Signal(syscall.SIGKILL)
	err = cmd.Wait()
	interrupted := err != nil // false if it finished before the kill landed
	t.Logf("subprocess interrupted mid-run: %v", interrupted)

	resumed, err := exec.Command(bin, append(gridArgs, "-store", killedDir)...).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(resumed, uninterrupted) {
		t.Fatalf("resumed report differs from uninterrupted report:\n%s\nvs\n%s", resumed, uninterrupted)
	}

	// The interrupted store may contain a leftover temp file from the
	// kill, but never a torn record: a second resume is all hits.
	again, err := exec.Command(bin, append(gridArgs, "-store", killedDir)...).Output()
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if !bytes.Equal(again, uninterrupted) {
		t.Fatal("second resume differs")
	}
}

// TestShardPartitionCoversGrid: the n shard slices are pairwise
// disjoint, their union is the full grid, and sweeping all shards into
// one shared store warms it completely — a final unsharded sweep over
// that store is all checkpoint hits and byte-identical to a
// single-process cold sweep.
func TestShardPartitionCoversGrid(t *testing.T) {
	const n = 3
	reference := runSweep(t, testArgs())

	// Partition check at the task level.
	cfg, err := parseFlags(testArgs())
	if err != nil {
		t.Fatal(err)
	}
	all, err := buildTasks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < n; i++ {
		owned, err := shardTasks(all, i, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range owned {
			seen[task.Name]++
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("shards cover %d of %d tasks", len(seen), len(all))
	}
	for name, count := range seen {
		if count != 1 {
			t.Fatalf("task %s owned by %d shards", name, count)
		}
	}

	// Sweep every shard into one shared store, then the full grid.
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		runSweep(t, testArgs("-store", dir, "-shard", fmt.Sprintf("%d/%d", i, n)))
	}
	cfgFull, err := parseFlags(testArgs("-store", dir, "-v"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if err := run(cfgFull, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), reference) {
		t.Fatal("sharded-then-merged report differs from single-process report")
	}
	if hits := bytes.Count(errw.Bytes(), []byte("checkpoint hit")); hits != len(all) {
		t.Fatalf("final sweep had %d checkpoint hits, want %d (shards did not cover the grid)\n%s", hits, len(all), errw.String())
	}
}

// TestShardReportIsOwnedSubset: a shard's own report rows are exactly
// its owned tasks, rendered byte-compatibly with the full report.
func TestShardReportIsOwnedSubset(t *testing.T) {
	full := runSweep(t, testArgs("-format", "json"))
	var fullRows []row
	if err := json.Unmarshal(full, &fullRows); err != nil {
		t.Fatal(err)
	}
	var union []row
	for i := 0; i < 3; i++ {
		part := runSweep(t, testArgs("-format", "json", "-shard", fmt.Sprintf("%d/3", i)))
		var rows []row
		if err := json.Unmarshal(part, &rows); err != nil {
			t.Fatalf("shard %d: %v (report %q)", i, err, part)
		}
		union = append(union, rows...)
	}
	if len(union) != len(fullRows) {
		t.Fatalf("shard reports hold %d rows, full report %d", len(union), len(fullRows))
	}
	sort.Slice(union, func(i, j int) bool { return union[i].Name < union[j].Name })
	for i := range union {
		if union[i] != fullRows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, union[i], fullRows[i])
		}
	}
}

// TestShardEmptyReport: a shard owning no tasks emits a valid empty
// report, not an error — "[]" in JSON, header-only TSV.
func TestShardEmptyReport(t *testing.T) {
	var out bytes.Buffer
	if err := writeReport(&out, "json", nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("empty JSON report = %q, want []", got)
	}
	out.Reset()
	if err := writeReport(&out, "tsv", nil); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 1 {
		t.Fatalf("empty TSV report has %d lines, want header only", lines)
	}
}

// TestShardFlagValidation: malformed selectors and the -pack conflict
// are rejected.
func TestShardFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-shard", "3"},
		{"-shard", "a/b"},
		{"-shard", "3/3"},
		{"-shard", "-1/3"},
		{"-shard", "0/0"},
		{"-shard", "1/"},
		{"-pack", "out.repack", "-store", "dir", "-shard", "0/2"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted bad shard input", args)
		}
	}
	cfg, err := parseFlags([]string{"-shard", "1/3", "-catalog"})
	if err != nil {
		t.Fatalf("-shard with -catalog rejected: %v", err)
	}
	if cfg.shardIndex != 1 || cfg.shardTotal != 3 {
		t.Fatalf("shard config = %d/%d", cfg.shardIndex, cfg.shardTotal)
	}
}

func TestBuildTasksGridShape(t *testing.T) {
	cfg, err := parseFlags([]string{"-delta", "2:3", "-k", "2:3"})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := buildTasks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 deltas × (1 sc + 1 so + 2 kcol + 1 weak2 + 2 superweak) = 14.
	if len(tasks) != 14 {
		t.Fatalf("got %d tasks, want 14", len(tasks))
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.Name] {
			t.Fatalf("duplicate task %s", task.Name)
		}
		seen[task.Name] = true
		if task.Problem == nil {
			t.Fatalf("%s: nil problem", task.Name)
		}
	}
	for _, want := range []string{"sinkless-coloring/delta=2", "3-coloring/delta=3", "superweak/k=2,delta=3"} {
		if !seen[want] {
			t.Fatalf("missing task %s", want)
		}
	}

	catalogCfg, err := parseFlags([]string{"-catalog"})
	if err != nil {
		t.Fatal(err)
	}
	catalogTasks, err := buildTasks(catalogCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(catalogTasks); got != 8 {
		t.Fatalf("catalog mode: got %d tasks, want 8", got)
	}
}

func TestParseFlagsRejectsBadInput(t *testing.T) {
	bad := [][]string{
		{"-format", "xml"},
		{"-delta", "4:2"},
		{"-delta", "0:2"},
		{"-k", "nope"},
		{"-families", "unknown-family"},
		{"-max-steps", "0"},
		{"positional"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted bad input", args)
		}
	}
}

// TestPackModeFlagValidation: -pack requires -store and refuses every
// sweep-shaping flag — packing only reads the store.
func TestPackModeFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-pack", "out.repack"},
		{"-pack", "out.repack", "-store", "dir", "-catalog"},
		{"-pack", "out.repack", "-store", "dir", "-format", "json"},
		{"-pack", "out.repack", "-store", "dir", "-delta", "2:3"},
		{"-pack", "out.repack", "-store", "dir", "-out", "report.tsv"},
		{"-pack", "out.repack", "-store", "dir", "-max-steps", "3"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted bad pack-mode input", args)
		}
	}
	cfg, err := parseFlags([]string{"-pack", "out.repack", "-store", "dir", "-v"})
	if err != nil {
		t.Fatalf("parseFlags rejected valid pack-mode input: %v", err)
	}
	if cfg.packPath != "out.repack" || cfg.storeDir != "dir" || !cfg.verbose {
		t.Fatalf("pack-mode config = %+v", cfg)
	}
}

// TestPackModeEmitsArtifact: a sweep followed by -pack produces an
// openable artifact holding every record the sweep committed, and
// re-packing is bit-exact.
func TestPackModeEmitsArtifact(t *testing.T) {
	dir := t.TempDir()
	runSweep(t, testArgs("-store", dir))

	packPath := filepath.Join(t.TempDir(), "warm.repack")
	cfg, err := parseFlags([]string{"-store", dir, "-pack", packPath})
	if err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	if err := runPack(cfg, &errw); err != nil {
		t.Fatalf("runPack: %v", err)
	}
	if !bytes.Contains(errw.Bytes(), []byte("packed")) {
		t.Fatalf("runPack summary missing: %q", errw.String())
	}

	pr, err := store.OpenPack(packPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	steps, trajs, rendered := countSweepObjects(t, dir)
	if rendered == 0 || rendered != trajs {
		t.Fatalf("store has %d rendered record(s) for %d trajectories, want one each", rendered, trajs)
	}
	if pr.Len() != steps+trajs+rendered || pr.Len() == 0 {
		t.Fatalf("pack holds %d record(s), store has %d", pr.Len(), steps+trajs+rendered)
	}

	pack2 := filepath.Join(t.TempDir(), "warm2.repack")
	cfg2 := cfg
	cfg2.packPath = pack2
	if err := runPack(cfg2, &errw); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(packPath)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(pack2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-packing the same store is not bit-exact")
	}
}

// TestReportCommitIsAtomic: -out goes through the store's atomic
// commit path, so a report file never coexists with its temp file.
func TestReportCommitIsAtomic(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(t.TempDir(), "report.tsv")
	cfg, err := parseFlags(testArgs("-store", dir, "-out", outPath))
	if err != nil {
		t.Fatal(err)
	}
	var buf, errw bytes.Buffer
	if err := run(cfg, &buf, &errw); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFileAtomic(cfg.outPath, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil || !bytes.Equal(data, buf.Bytes()) {
		t.Fatalf("report mismatch after atomic commit (%v)", err)
	}
	residue, err := filepath.Glob(filepath.Join(filepath.Dir(outPath), ".tmp-*"))
	if err != nil || len(residue) != 0 {
		t.Fatalf("temp residue next to report: %v (%v)", residue, err)
	}
}

// countSweepObjects tallies the store's step, trajectory, and
// rendered-body records.
func countSweepObjects(t *testing.T, dir string) (steps, trajs, rendered int) {
	t.Helper()
	count := func(ext string) int {
		matches, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*."+ext))
		if err != nil {
			t.Fatal(err)
		}
		return len(matches)
	}
	return count("step"), count("traj"), count("rendered")
}

// TestGenFlagValidation: malformed generation specs and flag conflicts
// are rejected with exit-before-work errors.
func TestGenFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-gen", ""},                                // flag set but empty
		{"-gen", "family=nope,count=3"},             // unknown family
		{"-gen", "count=3"},                         // no family
		{"-gen", "family=rand,count=-1"},            // negative count
		{"-gen", "family=rand,count=0"},             // empty space
		{"-gen", "family=rand,count=abc"},           // malformed int
		{"-gen", "family=rand,count=3,count=4"},     // duplicate key
		{"-gen", "family=rand,count=3,bogus=1"},     // unknown key
		{"-gen", "family=rand,count=3,k=3"},         // key from another family
		{"-gen", "family=rand,count=3,delta=9"},     // out-of-domain delta
		{"-gen", "family=rand,count=3,,delta=3"},    // empty element
		{"-gen", "family=grid,count=3,k=1"},         // degenerate grid coloring
		{"-gen", "family=rand,count=200000"},        // beyond MaxSpecCount
		{"-gen", "family=rand,count=3", "-catalog"}, // conflicts: fixed task lists
		{"-gen", "family=rand,count=3", "-families", "sinkless-coloring"},
		{"-gen", "family=rand,count=3", "-delta", "2:3"}, // grid shaping is meaningless
		{"-gen", "family=rand,count=3", "-k", "2:3"},
		{"-pack", "p.repack", "-store", "d", "-gen", "family=rand,count=3"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted bad -gen input", args)
		}
	}

	cfg, err := parseFlags([]string{"-gen", "family=rand,seed=5,count=4", "-shard", "1/2", "-format", "json"})
	if err != nil {
		t.Fatalf("valid -gen input rejected: %v", err)
	}
	if cfg.genSpec == nil || cfg.genSpec.Count != 4 || cfg.genSpec.Seed != 5 {
		t.Fatalf("gen spec not captured: %+v", cfg.genSpec)
	}
	tasks, err := buildTasks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("generated space has %d tasks, want 4", len(tasks))
	}
}

// genTestArgs is a small generated space for the end-to-end -gen tests.
func genTestArgs(extra ...string) []string {
	base := []string{"-gen", "family=rand,seed=11,count=12,delta=3,labels=3,edge=60,node=60",
		"-max-states", "8000", "-max-steps", "2"}
	return append(base, extra...)
}

// TestGenSweepDeterminism: the same spec yields a byte-identical report
// across repeat runs, worker counts, and cold/warm store states — the
// byte-identity contract extended to generated problem spaces.
func TestGenSweepDeterminism(t *testing.T) {
	want := runSweep(t, genTestArgs("-workers", "1"))
	for _, w := range []string{"2", "4"} {
		if got := runSweep(t, genTestArgs("-workers", w)); !bytes.Equal(got, want) {
			t.Fatalf("workers=%s: generated-space report differs from workers=1", w)
		}
	}
	dir := t.TempDir()
	cold := runSweep(t, genTestArgs("-store", dir))
	warm := runSweep(t, genTestArgs("-store", dir))
	if !bytes.Equal(cold, want) || !bytes.Equal(warm, want) {
		t.Fatal("store-backed generated-space report differs from storeless report")
	}
}

// TestGenShardPartition: -shard partitions the generated space exactly —
// every generated task owned by precisely one shard, and the shard
// reports union to the unsharded report.
func TestGenShardPartition(t *testing.T) {
	const n = 3
	cfg, err := parseFlags(genTestArgs())
	if err != nil {
		t.Fatal(err)
	}
	all, err := buildTasks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < n; i++ {
		owned, err := shardTasks(all, i, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range owned {
			seen[task.Name]++
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("shards cover %d of %d generated tasks", len(seen), len(all))
	}
	for name, count := range seen {
		if count != 1 {
			t.Fatalf("generated task %s owned by %d shards", name, count)
		}
	}

	full := runSweep(t, genTestArgs("-format", "json"))
	var fullRows []row
	if err := json.Unmarshal(full, &fullRows); err != nil {
		t.Fatal(err)
	}
	var union []row
	for i := 0; i < n; i++ {
		part := runSweep(t, genTestArgs("-format", "json", "-shard", fmt.Sprintf("%d/%d", i, n)))
		var rows []row
		if err := json.Unmarshal(part, &rows); err != nil {
			t.Fatalf("shard %d: %v (report %q)", i, err, part)
		}
		union = append(union, rows...)
	}
	sort.Slice(union, func(i, j int) bool { return union[i].Name < union[j].Name })
	if len(union) != len(fullRows) {
		t.Fatalf("shard reports hold %d rows, full report %d", len(union), len(fullRows))
	}
	for i := range union {
		if union[i] != fullRows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, union[i], fullRows[i])
		}
	}
}
