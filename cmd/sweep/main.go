// Command sweep batch-classifies the whole problem catalog across a
// Δ/k parameter grid: every (family, Δ, k) point is instantiated,
// pushed through the iterated round-elimination driver
// (internal/fixpoint), and reported as one row of a JSON or TSV table.
//
// Usage:
//
//	sweep [-store dir] [-workers n] [-core-workers n]
//	      [-max-steps n] [-max-states n]
//	      [-families list] [-delta lo:hi] [-k lo:hi] [-catalog]
//	      [-gen spec] [-shard i/n] [-format tsv|json] [-out file] [-v]
//	sweep -store dir -pack out.repack
//
// Tasks shard across a worker pool (internal/par). With -store the
// sweep is checkpointed: every classified trajectory is committed to
// the persistent result store as soon as it finishes, and a later
// invocation with the same flags skips straight past every finished
// task — so a sweep killed at any point (kill -9 included) resumes
// where it stopped and produces a byte-identical report, because
// stored results replay the exact trajectories a cold run computes.
// The store also memoizes individual speedup steps, which warms even
// tasks whose own checkpoint is missing; without -store an in-memory
// step memo is shared across the tasks of this one run. Alongside each
// trajectory the sweep commits the pre-rendered NDJSON response body
// for the same query (backfilling it on checkpoint hits from older
// stores), so a daemon serving the store — or a pack built from it —
// answers from the rendered tier without marshaling anything.
//
// -shard i/n restricts the sweep to the slice of the grid that shard i
// owns on a consistent-hash ring over n synthetic members
// (internal/cluster): the n shards partition the grid exactly, with no
// coordination, so n worker processes — on one machine or many —
// sweeping into one shared store (or stores later merged or served as
// a cluster) together cover the grid once. A shard killed mid-run is
// resumed by rerunning it (or its slice from any surviving node):
// ownership is deterministic and checkpoints are content-addressed, so
// the final records are identical to a single-node sweep's.
//
// -gen replaces the catalog grid with a generated problem space
// (internal/problems/gen): the spec names a generator family and its
// parameters — e.g. -gen family=rand,seed=7,count=100,delta=3,labels=3
// — and the sweep classifies every generated point. Generation is a
// pure function of the spec, so the same spec reproduces byte-identical
// problems and a byte-identical report on any machine, and each report
// row's name embeds the single-point spec that regenerates it. -gen
// conflicts with -catalog, -families, -delta and -k (the spec IS the
// task list) and composes with everything else, including -shard: the
// ring partitions the generated space by stable problem fingerprint
// exactly as it partitions the grid. The spec grammar is documented at
// gen.ParseSpec.
//
// The report is written only after every task has finished, in grid
// order, so cold, warm, and interrupted-then-resumed runs emit
// identical bytes. Timing or cache-hit information never goes into the
// report (that would break the identity); -v prints it to stderr.
//
// With -pack the sweep does not classify anything: it walks the
// store's object tree and packs every valid record into one read-
// optimized artifact (see internal/store's pack format) that cmd/serve
// can preload with -preload. Packing is deterministic — the artifact
// is a pure function of the record set — and skips (counts, on
// stderr) any record that fails frame validation. -pack combines only
// with -store and -v.
//
// Examples:
//
//	sweep -store ./results                  # full default grid, TSV
//	sweep -store ./results -format json     # same tasks, JSON report
//	sweep -catalog                          # the paper's catalog only
//	sweep -gen family=rand,seed=7,count=100   # a generated problem space
//	sweep -store ./results -pack warm.repack  # pack the store's records
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/par"
	"repro/internal/problems"
	"repro/internal/problems/gen"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	if cfg.packPath != "" {
		if err := runPack(cfg, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}
	// The report is buffered and only committed to -out after a fully
	// successful run — through the store's temp+fsync+rename path, so a
	// failed or interrupted run never truncates or tears a previous
	// report.
	var buf bytes.Buffer
	out := io.Writer(os.Stdout)
	toFile := cfg.outPath != "" && cfg.outPath != "-"
	if toFile {
		out = &buf
	}
	if err := run(cfg, out, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if toFile {
		if err := store.WriteFileAtomic(cfg.outPath, buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
}

// runPack packs the store's records into one warm-cache artifact. The
// pack path commits atomically, so an interrupted -pack leaves any
// previous artifact intact.
func runPack(cfg config, errw io.Writer) error {
	st, err := store.Open(cfg.storeDir)
	if err != nil {
		return err
	}
	stats, err := st.Pack(cfg.packPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "sweep: packed %d record(s) into %s (%d corrupt record(s) skipped)\n",
		stats.Entries, cfg.packPath, stats.Skipped)
	return nil
}

// config is the parsed flag set of one sweep invocation.
type config struct {
	storeDir    string
	workers     int
	coreWorkers int
	maxSteps    int
	maxStates   int
	families    []string
	deltaLo     int
	deltaHi     int
	kLo         int
	kHi         int
	catalog     bool
	genSpec     *gen.Spec
	format      string
	outPath     string
	packPath    string
	shardIndex  int
	shardTotal  int // 0 = unsharded
	verbose     bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.storeDir, "store", "", "persistent result store directory (checkpoints + step memo); empty = in-memory only")
	fs.IntVar(&cfg.workers, "workers", 0, "task-level worker count (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.coreWorkers, "core-workers", 1, "worker count inside each speedup step (tasks are already parallel)")
	fs.IntVar(&cfg.maxSteps, "max-steps", 4, "fixpoint iteration bound per task")
	fs.IntVar(&cfg.maxStates, "max-states", 60_000, "per-step enumeration state budget (0 = engine default)")
	families := fs.String("families", strings.Join(problems.Families(), ","), "comma-separated families to sweep")
	delta := fs.String("delta", "2:4", "Δ range lo:hi (inclusive)")
	k := fs.String("k", "2:3", "k range lo:hi (inclusive; k-coloring and superweak)")
	fs.BoolVar(&cfg.catalog, "catalog", false, "sweep exactly the paper's problems.Catalog() instead of the grid")
	genText := fs.String("gen", "", "sweep a generated problem space instead of the grid (spec grammar: gen.ParseSpec)")
	fs.StringVar(&cfg.format, "format", "tsv", "report format: tsv or json")
	fs.StringVar(&cfg.outPath, "out", "-", "report destination ('-' = stdout)")
	fs.StringVar(&cfg.packPath, "pack", "", "pack the store's records into this warm-cache artifact instead of sweeping")
	shard := fs.String("shard", "", "sweep only the ring-owned slice i/n of the grid (e.g. 1/3; all shards together cover it exactly)")
	fs.BoolVar(&cfg.verbose, "v", false, "progress and cache-hit info on stderr")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() != 0 {
		return cfg, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *shard != "" {
		var err error
		if cfg.shardIndex, cfg.shardTotal, err = parseShard(*shard); err != nil {
			return cfg, fmt.Errorf("-shard: %v", err)
		}
	}
	if cfg.packPath != "" {
		if cfg.storeDir == "" {
			return cfg, fmt.Errorf("-pack requires -store (the artifact is built from a store's records)")
		}
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "pack", "store", "v":
			default:
				conflict = fmt.Errorf("-%s cannot be combined with -pack (packing only reads the store)", f.Name)
			}
		})
		if conflict != nil {
			return cfg, conflict
		}
		return cfg, nil
	}
	if cfg.catalog {
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "families", "delta", "k":
				conflict = fmt.Errorf("-%s cannot be combined with -catalog (the catalog is a fixed task list)", f.Name)
			}
		})
		if conflict != nil {
			return cfg, conflict
		}
	}
	genSet := false
	fs.Visit(func(f *flag.Flag) { genSet = genSet || f.Name == "gen" })
	if genSet {
		if *genText == "" {
			return cfg, fmt.Errorf("-gen: empty spec (want family=...,seed=...,count=...)")
		}
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "catalog", "families", "delta", "k":
				conflict = fmt.Errorf("-%s cannot be combined with -gen (the generation spec defines the task list)", f.Name)
			}
		})
		if conflict != nil {
			return cfg, conflict
		}
		spec, err := gen.ParseSpec(*genText)
		if err != nil {
			return cfg, fmt.Errorf("-gen: %v", err)
		}
		cfg.genSpec = spec
	}
	if cfg.format != "tsv" && cfg.format != "json" {
		return cfg, fmt.Errorf("-format must be tsv or json, got %q", cfg.format)
	}
	// The budget domain is the service layer's, so the sweep accepts
	// exactly what cmd/speedup and the HTTP endpoints accept.
	if err := service.ValidateBudgets(cfg.maxSteps, cfg.maxStates); err != nil {
		return cfg, err
	}
	var err error
	if cfg.deltaLo, cfg.deltaHi, err = parseRange(*delta); err != nil {
		return cfg, fmt.Errorf("-delta: %v", err)
	}
	if cfg.kLo, cfg.kHi, err = parseRange(*k); err != nil {
		return cfg, fmt.Errorf("-k: %v", err)
	}
	for _, f := range strings.Split(*families, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if !slices.Contains(problems.Families(), f) {
			return cfg, fmt.Errorf("unknown family %q (have %s)", f, strings.Join(problems.Families(), ", "))
		}
		cfg.families = append(cfg.families, f)
	}
	if len(cfg.families) == 0 {
		return cfg, fmt.Errorf("-families selected nothing")
	}
	return cfg, nil
}

// parseShard reads a strict "i/n" shard selector with 0 <= i < n.
func parseShard(s string) (index, total int, err error) {
	iStr, nStr, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("want i/n, got %q", s)
	}
	if index, err = strconv.Atoi(iStr); err != nil {
		return 0, 0, fmt.Errorf("want i/n, got %q", s)
	}
	if total, err = strconv.Atoi(nStr); err != nil {
		return 0, 0, fmt.Errorf("want i/n, got %q", s)
	}
	if total < 1 || index < 0 || index >= total {
		return 0, 0, fmt.Errorf("bad shard %d/%d (want 0 <= i < n)", index, total)
	}
	return index, total, nil
}

// shardTasks filters the grid down to the tasks the shard owns on the
// consistent-hash ring over cluster.ShardMembers(n). Ownership is a
// pure function of each task's stable problem fingerprint and n, so
// the n shards partition the grid exactly — every task owned by
// precisely one shard, in any process, with no coordination — and
// resharding to n+1 moves only the tasks the new shard takes over.
func shardTasks(tasks []problems.GridPoint, index, total int) ([]problems.GridPoint, error) {
	ring, err := cluster.NewRing(cluster.ShardMembers(total), cluster.DefaultVNodes)
	if err != nil {
		return nil, err
	}
	self := cluster.ShardMember(index)
	owned := make([]problems.GridPoint, 0, len(tasks)/total+1)
	for _, t := range tasks {
		if ring.Owner(core.StableKey(t.Problem)) == self {
			owned = append(owned, t)
		}
	}
	return owned, nil
}

// parseRange reads an inclusive "lo:hi" range, strictly: the whole
// string must be the two integers and the colon.
func parseRange(s string) (lo, hi int, err error) {
	loStr, hiStr, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want lo:hi, got %q", s)
	}
	if lo, err = strconv.Atoi(loStr); err != nil {
		return 0, 0, fmt.Errorf("want lo:hi, got %q", s)
	}
	if hi, err = strconv.Atoi(hiStr); err != nil {
		return 0, 0, fmt.Errorf("want lo:hi, got %q", s)
	}
	if lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("bad range %d:%d", lo, hi)
	}
	return lo, hi, nil
}

// buildTasks expands the configured grid (or the fixed catalog) into
// the deterministic task list that defines both the sharding and the
// report row order. The expansion itself lives in problems.Grid, shared
// with every other grid consumer.
func buildTasks(cfg config) ([]problems.GridPoint, error) {
	if cfg.genSpec != nil {
		return cfg.genSpec.Points()
	}
	if cfg.catalog {
		return problems.CatalogGrid(), nil
	}
	return problems.Grid(cfg.families, cfg.deltaLo, cfg.deltaHi, cfg.kLo, cfg.kHi)
}

// row is one report line. Every field is a pure function of the task
// and its fixpoint.Result, never of where the result came from — that
// is what makes cold, warm, and resumed reports byte-identical.
type row struct {
	Name        string `json:"name"`
	Family      string `json:"family"`
	Delta       int    `json:"delta"`
	K           int    `json:"k,omitempty"`
	Labels      int    `json:"labels"`
	EdgeConfigs int    `json:"edge_configs"`
	NodeConfigs int    `json:"node_configs"`
	Class       string `json:"class"`
	Steps       int    `json:"steps"`
	CycleStart  int    `json:"cycle_start"`
	CycleLen    int    `json:"cycle_len"`
	LastLabels  int    `json:"last_labels"`
	LastEdge    int    `json:"last_edge_configs"`
	LastNode    int    `json:"last_node_configs"`
	Err         string `json:"err,omitempty"`
}

// makeRow condenses a classified trajectory into its report line.
func makeRow(t problems.GridPoint, res *fixpoint.Result) row {
	in := t.Problem.Stats()
	last := res.Last().Stats()
	r := row{
		Name: t.Name, Family: t.Family, Delta: t.Delta, K: t.K,
		Labels: in.Labels, EdgeConfigs: in.EdgeConfigs, NodeConfigs: in.NodeConfigs,
		Class: res.Kind.String(), Steps: res.Steps,
		CycleStart: res.CycleStart, CycleLen: res.CycleLen,
		LastLabels: last.Labels, LastEdge: last.EdgeConfigs, LastNode: last.NodeConfigs,
	}
	if res.Err != nil {
		r.Err = res.Err.Error()
	}
	return r
}

// run executes the sweep: build the grid, classify every task (store
// checkpoints permitting), and write the report to out. Progress goes
// to errw when verbose.
func run(cfg config, out, errw io.Writer) error {
	tasks, err := buildTasks(cfg)
	if err != nil {
		return err
	}
	if len(tasks) == 0 {
		return fmt.Errorf("empty grid")
	}
	if cfg.shardTotal > 0 {
		owned, err := shardTasks(tasks, cfg.shardIndex, cfg.shardTotal)
		if err != nil {
			return err
		}
		if cfg.verbose {
			fmt.Fprintf(errw, "sweep: shard %d/%d owns %d of %d task(s)\n", cfg.shardIndex, cfg.shardTotal, len(owned), len(tasks))
		}
		// A shard that owns nothing still emits a valid (empty) report:
		// an empty slice of a non-empty grid is normal, not an error.
		tasks = owned
	}

	memo, st, err := service.OpenStepMemo(cfg.storeDir, cfg.maxStates)
	if err != nil {
		return err
	}
	params := store.TrajectoryParams{MaxSteps: cfg.maxSteps, MaxStates: cfg.maxStates}
	coreOpts := []core.Option{core.WithWorkers(cfg.coreWorkers)}
	if cfg.maxStates > 0 {
		coreOpts = append(coreOpts, core.WithMaxStates(cfg.maxStates))
	}

	rows := make([]row, len(tasks))
	workers := par.WorkerCount(cfg.workers, len(tasks))
	start := time.Now()
	err = par.RunSharded(workers, len(tasks), func(_, i int) error {
		t := tasks[i]
		if st != nil {
			if res, ok, err := st.GetTrajectory(t.Problem, params); ok {
				// Backfill the rendered body when absent, so resweeping
				// a store from before the rendered tier upgrades it.
				if _, rok, rerr := st.GetRendered(t.Problem, params); !rok && rerr == nil {
					if err := st.PutRendered(t.Problem, params, service.RenderFixpointNDJSON(res)); err != nil {
						return fmt.Errorf("%s: render checkpoint: %w", t.Name, err)
					}
				}
				rows[i] = makeRow(t, res)
				if cfg.verbose {
					fmt.Fprintf(errw, "sweep: %-32s checkpoint hit\n", t.Name)
				}
				return nil
			} else if err != nil && cfg.verbose {
				fmt.Fprintf(errw, "sweep: %-32s corrupt checkpoint (%v), recomputing\n", t.Name, err)
			}
		}
		taskStart := time.Now()
		res, err := fixpoint.Run(t.Problem, fixpoint.Options{
			MaxSteps: cfg.maxSteps,
			Core:     coreOpts,
			Memo:     memo,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", t.Name, err)
		}
		if st != nil {
			if err := st.PutTrajectory(t.Problem, params, res); err != nil {
				return fmt.Errorf("%s: checkpoint: %w", t.Name, err)
			}
			// Pre-render the NDJSON response body alongside the
			// trajectory: a daemon serving this store (or a pack built
			// from it) answers the query from the rendered tier with a
			// single lookup, no marshaling. Render failure is
			// impossible (closed struct types), commit failure only
			// costs warmth.
			if err := st.PutRendered(t.Problem, params, service.RenderFixpointNDJSON(res)); err != nil {
				return fmt.Errorf("%s: render checkpoint: %w", t.Name, err)
			}
		}
		rows[i] = makeRow(t, res)
		if cfg.verbose {
			fmt.Fprintf(errw, "sweep: %-32s %-20s %8.1fms\n", t.Name, res.Kind, float64(time.Since(taskStart).Microseconds())/1000)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if cfg.verbose {
		fmt.Fprintf(errw, "sweep: %d task(s) in %v with %d worker(s)\n", len(tasks), time.Since(start).Round(time.Millisecond), workers)
	}
	return writeReport(out, cfg.format, rows)
}

// writeReport renders the rows, sorted by name, as TSV or JSON. An
// empty row set renders as an empty table ("[]" in JSON, header-only
// in TSV) — what a shard that owns no tasks emits.
func writeReport(out io.Writer, format string, rows []row) error {
	sorted := make([]row, 0, len(rows))
	sorted = append(sorted, rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	if format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(sorted)
	}
	if _, err := fmt.Fprintln(out, "name\tfamily\tdelta\tk\tlabels\tedge_configs\tnode_configs\tclass\tsteps\tcycle_start\tcycle_len\tlast_labels\tlast_edge_configs\tlast_node_configs\terr"); err != nil {
		return err
	}
	for _, r := range sorted {
		if _, err := fmt.Fprintf(out, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.Name, r.Family, r.Delta, r.K,
			r.Labels, r.EdgeConfigs, r.NodeConfigs,
			r.Class, r.Steps, r.CycleStart, r.CycleLen,
			r.LastLabels, r.LastEdge, r.LastNode, r.Err); err != nil {
			return err
		}
	}
	return nil
}
