// Command simulate runs a distributed algorithm from the catalog in the
// port numbering / LOCAL model simulator and verifies its output.
//
// Usage:
//
//	simulate -alg ring3coloring -n 64
//	simulate -alg weak2coloring -n 30 -delta 3
//	simulate -alg sinkless-baseline -n 24 -delta 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
)

func main() {
	alg := flag.String("alg", "ring3coloring", "algorithm: ring3coloring, weak2coloring, sinkless-baseline")
	n := flag.Int("n", 32, "number of nodes")
	delta := flag.Int("delta", 3, "degree (for regular-graph algorithms)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if err := run(*alg, *n, *delta, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(alg string, n, delta int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	switch alg {
	case "ring3coloring":
		g, err := graph.Ring(n)
		if err != nil {
			return err
		}
		orient, err := algorithms.RingOrientation(g)
		if err != nil {
			return err
		}
		space := 4 * n
		ids, err := graph.UniqueIDs(g, space, rng)
		if err != nil {
			return err
		}
		a := algorithms.RingThreeColoring{IDSpace: space}
		sol, err := sim.Run(g, sim.Inputs{IDs: ids, Orientation: &orient}, a)
		if err != nil {
			return err
		}
		if err := sim.Verify(g, sol, problems.KColoring(3, 2)); err != nil {
			return err
		}
		fmt.Printf("3-colored the %d-ring in %d rounds (ids from [1,%d])\n", n, a.Rounds(n, 2), space)
	case "weak2coloring":
		if delta%2 == 0 {
			return fmt.Errorf("weak 2-coloring needs odd Δ, got %d", delta)
		}
		g, err := graph.RandomRegular(n, delta, rng)
		if err != nil {
			return err
		}
		space := 2 * n
		ids, err := graph.UniqueIDs(g, space, rng)
		if err != nil {
			return err
		}
		a := algorithms.WeakTwoColoring{IDSpace: space}
		sol, err := sim.Run(g, sim.Inputs{IDs: ids}, a)
		if err != nil {
			return err
		}
		if err := sim.Verify(g, sol, problems.WeakTwoColoringPointer(delta)); err != nil {
			return err
		}
		fmt.Printf("weak 2-colored a random %d-regular graph on %d nodes in %d rounds\n",
			delta, n, a.Rounds(n, delta))
	case "sinkless-baseline":
		g, err := graph.RandomRegular(n, delta, rng)
		if err != nil {
			return err
		}
		o, err := algorithms.SinklessOrientationBaseline(g)
		if err != nil {
			return err
		}
		if !o.IsSinkless(g) {
			return fmt.Errorf("baseline produced a sink")
		}
		fmt.Printf("sinkless-oriented a random %d-regular graph on %d nodes (centralized baseline)\n", delta, n)
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	return nil
}
