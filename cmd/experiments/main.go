// Command experiments regenerates every experiment of the reproduction
// (see DESIGN.md's experiment index): the paper's worked derivations
// (E1–E4), the Theorem 4 step counting (E5), the Figure 1/2 checks
// (F1/F2), the simulated upper bounds (U1) and the mechanized Theorem 1
// equivalence (U2).
//
// Usage:
//
//	experiments [-table all|e1|e2|e3|e4|e5|f1|f2|u1|u2]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/algorithms"
	"repro/internal/colorred"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/independence"
	"repro/internal/mathx"
	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/superweak"
	"repro/internal/synth"
)

func main() {
	table := flag.String("table", "all", "experiment to run (all, e1, e2, e3, e4, e5, f1, f2, u1, u2)")
	flag.Parse()
	if err := run(*table); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(table string) error {
	type exp struct {
		name string
		fn   func() error
	}
	all := []exp{
		{"e1", e1SinklessFixedPoint},
		{"e2", e2ColorReduction},
		{"e3", e3Weak2Derivation},
		{"e4", e4Superweak},
		{"e5", e5LowerBoundSteps},
		{"f1", f1Independence},
		{"f2", f2SuperweakFigure},
		{"u1", u1SimulatedUpperBounds},
		{"u2", u2Theorem1Mechanized},
	}
	ran := false
	for _, e := range all {
		if table == "all" || table == e.name {
			if err := e.fn(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			ran = true
		}
	}
	if !ran {
		return fmt.Errorf("unknown table %q", table)
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

// e1SinklessFixedPoint reproduces Section 4.4: Π'_1/2 of sinkless coloring
// is sinkless orientation and Π'_1 is sinkless coloring again (fixed
// point), and neither is 0-round solvable — the Ω(log n) chain.
func e1SinklessFixedPoint() error {
	header("E1: sinkless coloring/orientation fixed point (Section 4.4)")
	fmt.Println("Δ | Π'_1/2 = sinkless orientation | Π'_1 = Π (fixed point) | 0-round solvable")
	for delta := 3; delta <= 8; delta++ {
		p := problems.SinklessColoring(delta)
		half, err := core.HalfStep(p)
		if err != nil {
			return err
		}
		_, isSO := core.Isomorphic(half, problems.SinklessOrientation(delta))
		full, err := core.SecondHalfStep(half)
		if err != nil {
			return err
		}
		_, fixed := core.Isomorphic(full, p)
		_, zr := core.ZeroRoundSolvableWithOrientation(p)
		fmt.Printf("%d | %v | %v | %v\n", delta, isSO, fixed, zr)
	}
	return nil
}

// e2ColorReduction reproduces Section 4.5: the k → k' = 2^(C(k,k/2)/2)
// hardening and the resulting O(log* n) upper bound for 3-coloring rings.
func e2ColorReduction() error {
	header("E2: color reduction on rings (Section 4.5)")
	fmt.Println("k | Π'_1/2 matches paper | k' (verified) | k' (formula)")
	for _, k := range []int{2, 3, 4, 5} {
		derived, err := core.HalfStep(problems.KColoring(k, 2))
		if err != nil {
			return err
		}
		want, err := colorred.ExpectedHalf(k)
		if err != nil {
			return err
		}
		_, match := core.Isomorphic(derived, want)
		verified, formula := "-", "-"
		if k >= 4 && k%2 == 0 {
			kp, err := colorred.VerifyHardening(k)
			if err != nil {
				return err
			}
			verified = fmt.Sprintf("%d", kp)
			f, err := colorred.KPrime(k)
			if err != nil {
				return err
			}
			formula = f.String()
		}
		fmt.Printf("%d | %v | %s | %s\n", k, match, verified, formula)
	}
	fmt.Println("\nid space n | speedup steps to 4-coloring | log* n")
	for _, bits := range []int{8, 16, 64, 1 << 10, 1 << 16} {
		n := mathx.Pow2(bits)
		steps, err := colorred.UpperBoundSteps(n)
		if err != nil {
			return err
		}
		fmt.Printf("2^%d | %d | %d\n", bits, steps, mathx.LogStarBig(n))
	}
	return nil
}

// e3Weak2Derivation reproduces Section 4.6: 7 usable labels and 4 usable
// edge configurations in Π'_1/2, and exactly 9 node configurations in
// Π'_1, independent of Δ.
func e3Weak2Derivation() error {
	header("E3: weak 2-coloring derivation (Section 4.6)")
	fmt.Println("Δ | Π'_1/2 labels (paper: 7) | Π'_1/2 edge configs (paper: 4 usable) | Π'_1 node configs (paper: 9)")
	for delta := 2; delta <= 5; delta++ {
		p := problems.WeakTwoColoringPointer(delta)
		half, err := core.HalfStep(p)
		if err != nil {
			return err
		}
		full, err := core.SecondHalfStep(half)
		if err != nil {
			return err
		}
		fmt.Printf("%d | %d | %d | %d\n", delta, half.Alpha.Size(), half.Edge.Size(), full.Node.Size())
	}
	return nil
}

// e4Superweak reproduces Section 5.1: the trit-sequence description of
// Π'_1/2 of superweak k-coloring, the Lemma 1 structure, and the Lemma 2
// J* machinery on the explicitly enumerable instance.
func e4Superweak() error {
	header("E4: superweak k-coloring derivation (Section 5.1)")
	fmt.Println("k Δ | Π'_1/2 ≅ trit description | labels (=3^k)")
	for _, tc := range []struct{ k, delta int }{{2, 3}, {2, 4}, {2, 5}} {
		derived, err := core.HalfStep(problems.Superweak(tc.k, tc.delta))
		if err != nil {
			return err
		}
		want, err := superweak.TritHalfProblem(tc.k, tc.delta)
		if err != nil {
			return err
		}
		_, match := core.Isomorphic(derived, want)
		fmt.Printf("%d %d | %v | %d\n", tc.k, tc.delta, match, derived.Alpha.Size())
	}

	half, err := superweak.TritHalfProblem(2, 3)
	if err != nil {
		return err
	}
	full, err := core.SecondHalfStep(half, core.WithStrategy(core.StrategyCombine))
	if err != nil {
		return err
	}
	reports, err := superweak.CheckLemma1(half, full, 2)
	if err != nil {
		return err
	}
	withOnes, unique := 0, 0
	for _, r := range reports {
		if r.ContainsAllOnes {
			withOnes++
		}
		if r.UniqueDominant {
			unique++
		}
	}
	fmt.Printf("\nΠ'_1 at k=2, Δ=3: %d node configs; %d contain a label with 11..1; %d have a unique dominant P∞\n",
		len(reports), withOnes, unique)
	fmt.Println("(Lemma 1's full dominance statement needs Δ ≥ 2^(4k)+1 = 257, beyond explicit enumeration;")
	fmt.Println(" the structure it predicts is already overwhelmingly present at Δ=3.)")
	return nil
}

// e5LowerBoundSteps reproduces the quantitative side of Theorem 4: the
// number of supported speedup steps grows as Θ(log* Δ), ratio → 1/5.
func e5LowerBoundSteps() error {
	header("E5: Theorem 4 step counting (Section 5.2)")
	fmt.Println("Δ = Tower(h): h | supported speedup steps | log* Δ")
	rows := superweak.StepTable([]int{3, 7, 12, 17, 27, 52, 102})
	for _, r := range rows {
		fmt.Printf("%d | %d | %d\n", r.TowerHeight, r.Steps, r.LogStar)
	}
	fmt.Println("\nparameter sequence: k_0 = 2, k_{i+1} = F^5(k_i); k_1 = 2^(2^(2^16)) already exceeds")
	fmt.Println("every materializable integer — the tower growth behind the log* bound.")
	return nil
}

// f1Independence reproduces the Figure 1 discussion: which symmetry
// breaking inputs satisfy t-independence.
func f1Independence() error {
	header("F1: t-independence of input families (Section 3, Figure 1)")
	g, err := graph.RingUniform(6)
	if err != nil {
		return err
	}
	g8, err := graph.RingUniform(8)
	if err != nil {
		return err
	}
	cases := []struct {
		name  string
		class []independence.Labeled
		t     int
	}{
		{"edge orientations (C6, t=1)", independence.OrientationClass(g), 1},
		{"edge orientations (C8, t=2)", independence.OrientationClass(g8), 2},
		{"proper 3-edge-colorings (C6, t=1)", independence.EdgeColoringClass(g, 3), 1},
		{"unique IDs (C6, t=2)", independence.UniqueIDClass(g, 6), 2},
	}
	fmt.Println("input family | t-independent")
	for _, c := range cases {
		err := independence.CheckTIndependence(c.class, c.t)
		verdict := "yes"
		if err != nil {
			verdict = fmt.Sprintf("NO (%v)", err)
		}
		fmt.Printf("%s | %s\n", c.name, verdict)
	}
	return nil
}

// f2SuperweakFigure reproduces Figure 2: a locally correct superweak
// coloring on a Δ=3 graph, checked by the verifier.
func f2SuperweakFigure() error {
	header("F2: a valid superweak coloring on a Δ=3 graph (Figure 2)")
	g := graph.Petersen()
	// 2-coloring by outer/inner ring, demanding pointer along each spoke,
	// which always crosses the color classes... the Petersen spokes
	// connect outer (0-4) to inner (5-9): color by part, point along the
	// spoke: every demanding pointer meets a different color.
	out := &superweak.Output{
		Color:    make([]string, g.N()),
		Pointers: make([][]superweak.PointerKind, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		if v < 5 {
			out.Color[v] = "outer"
		} else {
			out.Color[v] = "inner"
		}
		out.Pointers[v] = make([]superweak.PointerKind, g.Degree(v))
		for port := 0; port < g.Degree(v); port++ {
			w, _, _ := g.Neighbor(v, port)
			if (v < 5) != (w < 5) {
				out.Pointers[v][port] = superweak.PointerDemanding
				break
			}
		}
	}
	if err := superweak.VerifyOutput(g, out, 2); err != nil {
		return err
	}
	fmt.Println("constructed coloring on the Petersen graph: valid (2 colors, 1 demanding pointer per node, 0 accepting)")
	return nil
}

// u1SimulatedUpperBounds measures the simulated algorithms: Cole–Vishkin
// ring 3-coloring and odd-degree weak 2-coloring round counts.
func u1SimulatedUpperBounds() error {
	header("U1: simulated upper bounds")
	rng := rand.New(rand.NewSource(1))
	fmt.Println("ring n (ids from 4n) | CV rounds | verified 3-coloring")
	for _, n := range []int{8, 32, 128, 512} {
		g, err := graph.Ring(n)
		if err != nil {
			return err
		}
		orient, err := algorithms.RingOrientation(g)
		if err != nil {
			return err
		}
		ids, err := graph.UniqueIDs(g, 4*n, rng)
		if err != nil {
			return err
		}
		alg := algorithms.RingThreeColoring{IDSpace: 4 * n}
		sol, err := sim.Run(g, sim.Inputs{IDs: ids, Orientation: &orient}, alg)
		if err != nil {
			return err
		}
		verr := sim.Verify(g, sol, problems.KColoring(3, 2))
		fmt.Printf("%d | %d | %v\n", n, alg.Rounds(n, 2), verr == nil)
	}
	fmt.Println("\nweak 2-coloring: n Δ | rounds | verified")
	for _, tc := range []struct{ n, delta int }{{20, 3}, {40, 3}, {16, 5}, {16, 7}} {
		g, err := graph.RandomRegular(tc.n, tc.delta, rng)
		if err != nil {
			return err
		}
		ids, err := graph.UniqueIDs(g, 2*tc.n, rng)
		if err != nil {
			return err
		}
		alg := algorithms.WeakTwoColoring{IDSpace: 2 * tc.n}
		sol, err := sim.Run(g, sim.Inputs{IDs: ids}, alg)
		if err != nil {
			return err
		}
		verr := sim.Verify(g, sol, problems.WeakTwoColoringPointer(tc.delta))
		fmt.Printf("%d %d | %d | %v\n", tc.n, tc.delta, alg.Rounds(tc.n, tc.delta), verr == nil)
	}
	return nil
}

// u2Theorem1Mechanized checks Theorem 1 at t=1 on random problems: Π is
// 1-round solvable iff Π'_1 is 0-round solvable (Δ=2, orientation input).
func u2Theorem1Mechanized() error {
	header("U2: Theorem 1 mechanized at t = 1 (Δ=2, orientation input)")
	rng := rand.New(rand.NewSource(7))
	agree, total := 0, 0
	for iter := 0; iter < 500 && total < 150; iter++ {
		p := randomProblem(rng, 2+rng.Intn(2), 0.5)
		if p.Edge.Size() == 0 || p.Node.Size() == 0 {
			continue
		}
		derived, err := core.Speedup(p)
		if err != nil {
			return err
		}
		oneRound, err := synth.OneRoundOrientedSolvable(p)
		if err != nil {
			return err
		}
		_, zeroRound := core.ZeroRoundSolvableWithOrientation(derived)
		total++
		if oneRound == zeroRound {
			agree++
		} else {
			fmt.Printf("DISAGREEMENT on:\n%s\n", p.String())
		}
	}
	fmt.Printf("random problems checked: %d; equivalence holds: %d/%d\n", total, agree, total)
	if agree != total {
		return fmt.Errorf("Theorem 1 equivalence violated")
	}
	return nil
}

func randomProblem(rng *rand.Rand, alphabetSize int, density float64) *core.Problem {
	names := make([]string, alphabetSize)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	alpha := core.MustAlphabet(names...)
	edge := core.NewConstraint(2)
	node := core.NewConstraint(2)
	for i := 0; i < alphabetSize; i++ {
		for j := i; j < alphabetSize; j++ {
			if rng.Float64() < density {
				edge.MustAdd(core.NewConfig(core.Label(i), core.Label(j)))
			}
			if rng.Float64() < density {
				node.MustAdd(core.NewConfig(core.Label(i), core.Label(j)))
			}
		}
	}
	p, err := core.NewProblem(alpha, edge, node)
	if err != nil {
		panic(err)
	}
	return p
}
