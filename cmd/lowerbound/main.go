// Command lowerbound runs the paper's lower-bound recipe (Section 2.1):
// iterate the speedup transformation on a problem until a 0-round
// solvable problem or a fixed point appears, reporting the implied bound
// on the problem's deterministic time complexity in the port numbering
// model on high-girth t-independent classes.
//
// Usage:
//
//	lowerbound [-max n] [-orientation] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	maxSteps := flag.Int("max", 16, "maximum speedup steps to attempt")
	orientation := flag.Bool("orientation", true, "assume an input edge orientation for the 0-round test")
	flag.Parse()
	if err := run(*maxSteps, *orientation, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(maxSteps int, orientation bool, path string) error {
	text, err := readInput(path)
	if err != nil {
		return err
	}
	p, err := core.Parse(text)
	if err != nil {
		return err
	}

	zeroRound := func(q *core.Problem) bool {
		if orientation {
			_, ok := core.ZeroRoundSolvableWithOrientation(q)
			return ok
		}
		_, ok := core.ZeroRoundSolvableNoInput(q)
		return ok
	}

	if zeroRound(p) {
		fmt.Println("the problem is 0-round solvable; no lower bound follows")
		return nil
	}
	fmt.Printf("step 0: %d labels, %d edge, %d node configs — not 0-round solvable\n",
		p.Alpha.Size(), p.Edge.Size(), p.Node.Size())

	cur := p
	for step := 1; step <= maxSteps; step++ {
		derived, err := core.Speedup(cur)
		if err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		derived, _ = derived.RenameCompact()
		solvable := zeroRound(derived)
		fmt.Printf("step %d: %d labels, %d edge, %d node configs — 0-round solvable: %v\n",
			step, derived.Alpha.Size(), derived.Edge.Size(), derived.Node.Size(), solvable)
		if solvable {
			fmt.Printf("\n=> the input problem needs exactly %d round(s) more than a 0-round problem:\n", step)
			fmt.Printf("   lower bound: %d round(s) on t-independent classes of girth >= %d\n", step, 2*step+2)
			return nil
		}
		if _, ok := core.Isomorphic(derived, cur); ok {
			fmt.Println("\n=> fixed point: the problem reproduces itself under speedup.")
			fmt.Println("   By Theorems 1-2, it is not solvable in t rounds for any t with a")
			fmt.Println("   t-independent girth-(2t+2) class available: an Ω(log n) lower bound")
			fmt.Println("   on bounded-degree graphs (Section 4.4).")
			return nil
		}
		cur = derived
	}
	fmt.Printf("\n=> no 0-round problem within %d steps: lower bound of at least %d rounds\n", maxSteps, maxSteps+1)
	return nil
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}
