// Command serve is the round-elimination query daemon: a long-running
// HTTP/JSON service exposing the speedup engine, the iterated fixpoint
// driver, the brute-force solvability oracle and the paper catalog,
// with the persistent result store as its cache.
//
// Usage:
//
//	serve [-addr :8089] [-store dir] [-workers n] [-max-inflight n]
//	      [-grace 15s] [-v]
//
// Endpoints (full request/response schemas in the README, "The
// service"):
//
//	POST /v1/speedup   one or more full speedup steps, or the half step
//	POST /v1/fixpoint  classified trajectory, streamed as NDJSON
//	POST /v1/verify    oracle verdict / conformance report
//	GET  /v1/catalog   the paper's problem catalog
//
// Identical queries arriving concurrently share one computation
// (singleflight on the stable problem key); finished results are
// committed to the store under -store and replayed from it in
// microseconds, byte-identical to a cold computation. -max-inflight
// bounds how many engine computations run at once (admission control;
// warm store hits bypass it), and -workers sizes the worker pool
// inside each computation.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and gives
// in-flight requests -grace to finish; whatever a fixpoint iteration
// completed by then is already checkpointed in the store's step memo,
// so a restarted daemon answers the interrupted query byte-identically
// to an uninterrupted run, resuming from the committed steps — the
// same contract as cmd/sweep's kill -9 resume.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8089", "listen address")
	storeDir := flag.String("store", "", "persistent result store directory (empty = memory-only warmth)")
	workers := flag.Int("workers", 0, "worker count inside each engine computation (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent engine computations admitted (0 = GOMAXPROCS)")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for in-flight requests")
	verbose := flag.Bool("v", false, "request logging on stderr")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "serve: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if err := run(*addr, *storeDir, *workers, *maxInflight, *grace, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// run serves until a termination signal, then drains gracefully.
func run(addr, storeDir string, workers, maxInflight int, grace time.Duration, verbose bool) error {
	engine, err := service.New(service.Config{
		StoreDir:    storeDir,
		Workers:     workers,
		MaxInflight: maxInflight,
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	handler := service.Handler(engine)
	if verbose {
		handler = logRequests(handler, os.Stderr)
	}
	srv := &http.Server{
		Addr:    addr,
		Handler: handler,
		// A public daemon must not let stalled clients pin goroutines:
		// bound header and body reads and idle keep-alives. No
		// WriteTimeout — /v1/fixpoint legitimately streams for as long
		// as the engine computes.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (store: %s)\n", ln.Addr(), storeLabel(storeDir))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "serve: shutting down (grace %v)\n", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Grace expired: close the engine so in-flight fixpoint
		// iterations stop at their next step boundary — their
		// completed steps are already committed to the store, which is
		// what a restarted daemon resumes from.
		engine.Close()
		_ = srv.Close()
		if !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return nil
}

// storeLabel names the warm tier for the startup log line.
func storeLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}

// logRequests wraps the handler with a method/path/duration log line
// per request. Logging goes to stderr and never into response bodies —
// timing in a body would break the cold/warm byte-identity contract.
func logRequests(next http.Handler, w *os.File) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(rw, r)
		fmt.Fprintf(w, "serve: %s %s %.1fms\n", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1000)
	})
}
