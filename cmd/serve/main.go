// Command serve is the round-elimination query daemon: a long-running
// HTTP/JSON service exposing the speedup engine, the iterated fixpoint
// driver, the brute-force solvability oracle and the paper catalog,
// with the persistent result store as its cache.
//
// Usage:
//
//	serve [-addr :8089] [-store dir] [-preload pack] [-workers n]
//	      [-max-inflight n] [-grace 15s] [-request-timeout 0]
//	      [-peers list -advertise self] [-peer-timeout 0]
//	      [-pprof addr] [-config file] [-v]
//
// Endpoints (full request/response schemas in the README, "The
// service" and "Operations"):
//
//	POST /v1/speedup   one or more full speedup steps, or the half step
//	POST /v1/fixpoint  classified trajectory, streamed as NDJSON
//	POST /v1/verify    oracle verdict / conformance report
//	GET  /v1/catalog   the paper's problem catalog
//	GET  /v1/stats     instrument snapshot, JSON
//	GET  /metrics      the same instruments, Prometheus text format
//
// With -peers (a static comma-separated member list) and -advertise
// (this node's own entry in it) the daemon joins a cluster: record
// ownership is derived locally from a consistent-hash ring over the
// list, lookups that miss every local tier ask the key's owner over
// GET /v1/peer/record before computing cold, and the same endpoint
// (plus GET /v1/peer/ring for membership conformance) is served to
// peers. Fetched records are checksum-re-verified on receipt, each
// fetch is bounded by -peer-timeout, and repeated failures open a
// short per-peer breaker — a dead, slow, or corrupt peer only ever
// degrades a lookup to local computation (visible in
// re_peer_lookups_total), never fails a query. Both flags reload on
// SIGHUP, which is how a fleet binding kernel-assigned ports
// bootstraps: start every node solo on :0, collect the bound
// addresses, SIGHUP the full list in.
//
// Identical queries arriving concurrently share one computation
// (singleflight on the stable problem key); finished results are
// committed to the store under -store and replayed from it in
// microseconds, byte-identical to a cold computation. -max-inflight
// bounds how many engine computations run at once (admission control;
// warm store hits bypass it), and -workers sizes the worker pool
// inside each computation. -request-timeout arms a per-request
// wall-clock budget: a request that overruns it is cancelled at the
// engine's next step boundary with every completed step already
// checkpointed, so a retry resumes warm and byte-identical.
//
// -preload opens a packed warm-cache artifact (built by cmd/sweep
// -pack) as a read-only tier consulted before the store and before
// computing cold: the whole packed catalog answers from one mmapped
// file without touching the store's object tree, byte-identical to the
// store-served and cold replies. A pack that fails validation
// (checksum, truncation, version mismatch) is logged and skipped — the
// daemon starts and serves without the pack tier rather than failing.
//
// -pprof starts the net/http/pprof profiling endpoints on a separate
// listener (e.g. -pprof localhost:6060 — keep it off the service
// address; profiles expose internals the query API never does). Like
// every reloadable setting it is also a config-file key: a SIGHUP can
// turn profiling on, move it, or shut it off on a live daemon without
// touching query traffic.
//
// On SIGHUP the daemon reloads -config (a flags file, one "key value"
// per line — see loadConfig) and swaps in a fresh engine over a
// reopened store. The swap is generational: requests in flight —
// including long NDJSON streams — keep streaming from the engine that
// started them, and the old engine closes only after its last request
// finishes. Without -config a SIGHUP rebuilds the engine with the
// current settings, which reopens the store.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and gives
// in-flight requests -grace to finish; whatever a fixpoint iteration
// completed by then is already checkpointed in the store's step memo,
// so a restarted daemon answers the interrupted query byte-identically
// to an uninterrupted run, resuming from the committed steps — the
// same contract as cmd/sweep's kill -9 resume.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8089", "listen address")
	storeDir := flag.String("store", "", "persistent result store directory (empty = memory-only warmth)")
	preload := flag.String("preload", "", "packed warm-cache artifact preloaded as a read-only tier (from sweep -pack)")
	workers := flag.Int("workers", 0, "worker count inside each engine computation (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent engine computations admitted (0 = GOMAXPROCS)")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for in-flight requests")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request wall-clock budget (0 = unbounded)")
	peers := flag.String("peers", "", "comma-separated cluster member list, this node included (empty = solo)")
	advertise := flag.String("advertise", "", "this node's own entry in -peers (required with -peers)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-peer record fetch budget (0 = the cluster default)")
	pprofAddr := flag.String("pprof", "", "net/http/pprof listen address on a separate listener (empty = disabled)")
	configPath := flag.String("config", "", "flags file overriding the flags above, reloaded on SIGHUP")
	verbose := flag.Bool("v", false, "request logging on stderr")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "serve: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	base := settings{
		Store:          *storeDir,
		Preload:        *preload,
		Workers:        *workers,
		MaxInflight:    *maxInflight,
		RequestTimeout: *requestTimeout,
		Peers:          *peers,
		Advertise:      *advertise,
		PeerTimeout:    *peerTimeout,
		Pprof:          *pprofAddr,
		Verbose:        *verbose,
	}
	if err := run(*addr, *configPath, base, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// settings is the reloadable daemon configuration — everything a
// SIGHUP may change. The listen address and grace period are
// process-lifetime: rebinding a socket is a restart, not a reload.
type settings struct {
	// Store is the persistent result store directory (empty =
	// memory-only).
	Store string
	// Preload is the packed warm-cache artifact path (empty = no pack
	// tier). Each generation reopens — and thus revalidates — the pack.
	Preload string
	// Workers is the per-computation worker count (0 = GOMAXPROCS).
	Workers int
	// MaxInflight is the admission-gate capacity (0 = GOMAXPROCS).
	MaxInflight int
	// RequestTimeout is the per-request wall-clock budget (0 =
	// unbounded).
	RequestTimeout time.Duration
	// Peers is the comma-separated static cluster member list, this
	// node's own address included (empty = solo). Reloadable, which is
	// how a fleet whose members bind kernel-assigned ports bootstraps:
	// start solo, then SIGHUP the full list in.
	Peers string
	// Advertise is this node's own entry in Peers; required when Peers
	// is set, and it must appear in the list.
	Advertise string
	// PeerTimeout is the per-peer record fetch budget (0 = the cluster
	// default).
	PeerTimeout time.Duration
	// Pprof is the profiling listener address (empty = disabled). The
	// pprof endpoints live on their own listener, never on the query
	// address.
	Pprof string
	// Verbose enables the stderr request log.
	Verbose bool
}

// loadConfig overlays the flags file at path onto base (the
// command-line flag values) and returns the merged settings. The
// format is one "key value" pair per line; blank lines and #-comments
// are ignored. Keys mirror the reloadable flags: store, preload,
// workers, max-inflight, request-timeout, peers, advertise,
// peer-timeout, pprof, v (or verbose). A key absent from the file
// keeps its flag value, so deleting a line and SIGHUPing reverts that
// setting. Unknown keys and unparsable values fail the whole
// load — a reload never applies half a file.
func loadConfig(path string, base settings) (settings, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return settings{}, err
	}
	s := base
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, _ := strings.Cut(line, " ")
		val = strings.TrimSpace(val)
		var perr error
		switch key {
		case "store":
			s.Store = val
		case "preload":
			s.Preload = val
		case "workers":
			s.Workers, perr = strconv.Atoi(val)
		case "max-inflight":
			s.MaxInflight, perr = strconv.Atoi(val)
		case "request-timeout":
			s.RequestTimeout, perr = time.ParseDuration(val)
		case "peers":
			s.Peers = val
		case "advertise":
			s.Advertise = val
		case "peer-timeout":
			s.PeerTimeout, perr = time.ParseDuration(val)
		case "pprof":
			s.Pprof = val
		case "v", "verbose":
			s.Verbose, perr = strconv.ParseBool(val)
		default:
			return settings{}, fmt.Errorf("%s:%d: unknown key %q", path, i+1, key)
		}
		if perr != nil {
			return settings{}, fmt.Errorf("%s:%d: %s: %v", path, i+1, key, perr)
		}
	}
	return s, nil
}

// generation binds one engine to its handler chain and counts the
// requests it is serving, so a reload can retire the previous
// generation — close its engine — only after its last in-flight
// request, including long NDJSON streams, has finished.
type generation struct {
	engine  *service.Engine
	handler http.Handler

	mu      sync.Mutex
	active  int
	retired bool
	drained bool
	idle    chan struct{} // closed once retired with no active requests
}

// newGeneration wraps handler so every request is counted against the
// generation for the retire drain.
func newGeneration(engine *service.Engine, handler http.Handler) *generation {
	g := &generation{engine: engine, idle: make(chan struct{})}
	g.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.enter()
		defer g.leave()
		handler.ServeHTTP(w, r)
	})
	return g
}

// enter counts a request in.
func (g *generation) enter() {
	g.mu.Lock()
	g.active++
	g.mu.Unlock()
}

// leave counts a request out, completing the drain if this was the
// retired generation's last one.
func (g *generation) leave() {
	g.mu.Lock()
	g.active--
	if g.retired && g.active == 0 && !g.drained {
		g.drained = true
		close(g.idle)
	}
	g.mu.Unlock()
}

// retire marks the generation as replaced and closes its engine once
// its in-flight requests drain. A request that loaded this generation
// from the swap pointer but has not yet entered may straggle past the
// drain; it then runs against a closed engine, which degrades to a
// clean 503 on cold computations while warm reads still succeed.
func (g *generation) retire() {
	g.mu.Lock()
	g.retired = true
	if g.active == 0 && !g.drained {
		g.drained = true
		close(g.idle)
	}
	g.mu.Unlock()
	go func() {
		<-g.idle
		_ = g.engine.Close()
	}()
}

// swapHandler atomically swaps whole handler generations under live
// traffic: http.Server.Handler is fixed at construction, the pointer
// inside is not.
type swapHandler struct {
	cur atomic.Pointer[generation]
}

// ServeHTTP dispatches to the current generation.
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.cur.Load().handler.ServeHTTP(w, r)
}

// buildGeneration assembles one engine plus its middleware chain from
// settings. The metrics instance is process-lifetime: generations come
// and go under SIGHUP, counters accumulate across all of them. A
// -preload pack that fails to open degrades the generation to serving
// without the pack tier (logged to logw) — preloading accelerates the
// daemon, it must never take it down.
func buildGeneration(s settings, m *service.Metrics, logw io.Writer) (*generation, error) {
	var pack *store.PackReader
	if s.Preload != "" {
		pr, err := store.OpenPack(s.Preload)
		if err != nil {
			fmt.Fprintf(logw, "serve: preload %s: %v (serving without the pack tier)\n", s.Preload, err)
		} else {
			pack = pr
		}
	}
	var peerCfg *service.PeerConfig
	if s.Peers != "" {
		peerCfg = &service.PeerConfig{
			Self:    s.Advertise,
			Members: splitMembers(s.Peers),
			Timeout: s.PeerTimeout,
		}
	}
	engine, err := service.New(service.Config{
		StoreDir:    s.Store,
		Workers:     s.Workers,
		MaxInflight: s.MaxInflight,
		Metrics:     m,
		Pack:        pack,
		Peers:       peerCfg,
	})
	if err != nil {
		if pack != nil {
			_ = pack.Close()
		}
		return nil, err
	}
	handler := service.WithRequestTimeout(s.RequestTimeout, service.Routes(engine, m))
	if s.Verbose {
		handler = service.LogRequests(handler, logw)
	}
	return newGeneration(engine, handler), nil
}

// pprofServer manages the optional profiling listener: net/http/pprof
// handlers mounted on their own mux and socket, fully separate from
// the query listener so profiling exposure is an explicit, revocable
// operator decision. apply reconciles the running listener with the
// configured address on startup and on every SIGHUP reload.
type pprofServer struct {
	addr string
	srv  *http.Server
	ln   net.Listener // the bound socket, for the startup log and tests
}

// pprofMux mounts the net/http/pprof handlers explicitly (the package
// registers on http.DefaultServeMux by import side effect, which the
// daemon never serves).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// apply starts, moves, or stops the profiling listener to match addr.
// A listen failure logs and leaves profiling off — it never takes the
// daemon down — and is retried on the next reload.
func (p *pprofServer) apply(addr string, logw io.Writer) {
	if addr == p.addr {
		return
	}
	p.stop()
	if addr == "" {
		return
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(logw, "serve: pprof %s: %v (profiling disabled)\n", addr, err)
		return
	}
	p.addr = addr
	p.ln = ln
	p.srv = &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
	go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(p.srv, ln)
	fmt.Fprintf(logw, "serve: pprof listening on %s\n", ln.Addr())
}

// stop closes the profiling listener if one is up. Profile requests in
// flight are cut off — acceptable for a diagnostics endpoint being
// deliberately retired.
func (p *pprofServer) stop() {
	if p.srv != nil {
		_ = p.srv.Close()
		p.srv, p.ln = nil, nil
	}
	p.addr = ""
}

// run serves until a termination signal, swapping engine generations
// on SIGHUP and draining gracefully on SIGINT/SIGTERM.
func run(addr, configPath string, base settings, grace time.Duration) error {
	s := base
	if configPath != "" {
		loaded, err := loadConfig(configPath, base)
		if err != nil {
			return err
		}
		s = loaded
	}
	m := service.NewMetrics()
	gen, err := buildGeneration(s, m, os.Stderr)
	if err != nil {
		return err
	}
	var swap swapHandler
	swap.cur.Store(gen)
	defer func() { _ = swap.cur.Load().engine.Close() }()
	var prof pprofServer
	prof.apply(s.Pprof, os.Stderr)
	defer prof.stop()

	srv := &http.Server{
		Handler: &swap,
		// A public daemon must not let stalled clients pin goroutines:
		// bound header and body reads and idle keep-alives. No
		// WriteTimeout — /v1/fixpoint legitimately streams for as long
		// as the engine computes (bound it with -request-timeout).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (store: %s%s%s)\n", ln.Addr(), storeLabel(s.Store), preloadLabel(s.Preload), clusterLabel(s))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	for {
		select {
		case err := <-errc:
			return err
		case <-hup:
			// Reload: a failure keeps the current generation serving —
			// SIGHUP can never take a healthy daemon down.
			next := s
			if configPath != "" {
				loaded, err := loadConfig(configPath, base)
				if err != nil {
					fmt.Fprintf(os.Stderr, "serve: reload: %v (keeping current config)\n", err)
					continue
				}
				next = loaded
			}
			ng, err := buildGeneration(next, m, os.Stderr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: reload: %v (keeping current engine)\n", err)
				continue
			}
			old := swap.cur.Swap(ng)
			s = next
			old.retire()
			prof.apply(s.Pprof, os.Stderr)
			fmt.Fprintf(os.Stderr, "serve: reloaded (store: %s%s%s)\n", storeLabel(s.Store), preloadLabel(s.Preload), clusterLabel(s))
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "serve: shutting down (grace %v)\n", grace)
			shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
			defer cancel()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				// Grace expired: close the engine so in-flight fixpoint
				// iterations stop at their next step boundary — their
				// completed steps are already committed to the store,
				// which is what a restarted daemon resumes from. Close
				// is idempotent, so this and the deferred Close coexist.
				_ = swap.cur.Load().engine.Close()
				_ = srv.Close()
				if !errors.Is(err, context.DeadlineExceeded) {
					return err
				}
			}
			return nil
		}
	}
}

// storeLabel names the warm tier for the startup log line.
func storeLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}

// preloadLabel names the pack tier for the startup log line; empty
// when no pack is configured.
func preloadLabel(path string) string {
	if path == "" {
		return ""
	}
	return ", preload: " + path
}

// splitMembers parses the comma-separated -peers list, trimming
// whitespace and dropping empty entries (a trailing comma is not a
// member). Validation — duplicates, advertise membership — happens in
// service.New, so a bad list fails the generation build and a SIGHUP
// reload keeps the previous generation serving.
func splitMembers(peers string) []string {
	var members []string
	for _, m := range strings.Split(peers, ",") {
		if m = strings.TrimSpace(m); m != "" {
			members = append(members, m)
		}
	}
	return members
}

// clusterLabel names the cluster for the startup log line; empty for
// a solo daemon.
func clusterLabel(s settings) string {
	if s.Peers == "" {
		return ""
	}
	return fmt.Sprintf(", cluster: %d member(s) as %s", len(splitMembers(s.Peers)), s.Advertise)
}
