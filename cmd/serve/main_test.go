package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// probeProblem is sinkless coloring at Δ=3 — a one-step speedup, cheap
// enough to use as a liveness probe.
const probeProblem = "node:\n0^2 1\nedge:\n0 0\n0 1\n"

func TestLoadConfig(t *testing.T) {
	base := settings{Store: "flagstore", Workers: 2, MaxInflight: 3, RequestTimeout: time.Second}
	write := func(content string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "serve.conf")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	got, err := loadConfig(write("# full override\n\nstore /data\npreload /data/warm.repack\nworkers 8\nmax-inflight 4\nrequest-timeout 2m\npeers a:1,b:1\nadvertise a:1\npeer-timeout 250ms\npprof localhost:6060\nv true\n"), base)
	if err != nil {
		t.Fatal(err)
	}
	want := settings{Store: "/data", Preload: "/data/warm.repack", Workers: 8, MaxInflight: 4, RequestTimeout: 2 * time.Minute,
		Peers: "a:1,b:1", Advertise: "a:1", PeerTimeout: 250 * time.Millisecond, Pprof: "localhost:6060", Verbose: true}
	if got != want {
		t.Fatalf("full file: got %+v, want %+v", got, want)
	}

	// A key absent from the file keeps its flag value.
	got, err = loadConfig(write("workers 16\n"), base)
	if err != nil {
		t.Fatal(err)
	}
	want = base
	want.Workers = 16
	if got != want {
		t.Fatalf("partial file: got %+v, want %+v", got, want)
	}

	for name, content := range map[string]string{
		"unknown key":   "nope 1\n",
		"bad int":       "workers abc\n",
		"bad duration":  "request-timeout fast\n",
		"bad peer time": "peer-timeout soon\n",
		"bad bool":      "v maybe\n",
		"unknown+valid": "store /data\nnope 1\n",
	} {
		if _, err := loadConfig(write(content), base); err == nil {
			t.Errorf("%s: loadConfig accepted %q", name, content)
		}
	}
	if _, err := loadConfig(filepath.Join(t.TempDir(), "absent"), base); err == nil {
		t.Error("missing file: loadConfig did not fail")
	}
}

// TestBuildGenerationRejectsBadPeerConfig: a cluster misconfiguration
// fails the generation build (so startup fails loudly and a SIGHUP
// reload keeps the previous generation), while a valid list builds.
func TestBuildGenerationRejectsBadPeerConfig(t *testing.T) {
	var logw bytes.Buffer
	for name, s := range map[string]settings{
		"no advertise":       {Peers: "a:1,b:1"},
		"advertise not in":   {Peers: "a:1,b:1", Advertise: "c:1"},
		"duplicate member":   {Peers: "a:1,a:1", Advertise: "a:1"},
		"only empty entries": {Peers: " , ", Advertise: "a:1"},
	} {
		if gen, err := buildGeneration(s, nil, &logw); err == nil {
			gen.engine.Close()
			t.Errorf("%s: buildGeneration accepted %+v", name, s)
		}
	}
	gen, err := buildGeneration(settings{Peers: "a:1, b:1,", Advertise: "b:1"}, nil, &logw)
	if err != nil {
		t.Fatalf("valid peer config rejected: %v", err)
	}
	gen.engine.Close()
}

// probeClosed reports whether the engine refuses new computations.
// Each probe uses a fresh state budget so it can never be answered
// from a warm tier — warm reads deliberately survive Close.
var probeBudget = 100_000

func probeClosed(t *testing.T, e *service.Engine) bool {
	t.Helper()
	probeBudget++
	_, err := e.Speedup(context.Background(), service.SpeedupRequest{Problem: probeProblem, MaxStates: probeBudget})
	if err != nil && !errors.Is(err, service.ErrClosed) {
		t.Fatalf("probe: %v", err)
	}
	return errors.Is(err, service.ErrClosed)
}

// TestSwapPreservesInflightStream is the reload acceptance lock at the
// mechanism level: swapping generations mid-stream must let the old
// generation finish its in-flight NDJSON stream intact, route new
// requests to the new generation immediately, and close the old engine
// only after the stream completes.
func TestSwapPreservesInflightStream(t *testing.T) {
	oldEngine, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = oldEngine.Close() })
	nextEngine, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nextEngine.Close() })

	firstLineSent := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseFn := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseFn()
	stream := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		rc := http.NewResponseController(w)
		_, _ = io.WriteString(w, "{\"index\":0}\n")
		_ = rc.Flush()
		close(firstLineSent)
		<-release
		_, _ = io.WriteString(w, "{\"done\":true}\n")
	})
	oldGen := newGeneration(oldEngine, stream)
	nextGen := newGeneration(nextEngine, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	var swap swapHandler
	swap.cur.Store(oldGen)
	srv := httptest.NewServer(&swap)
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	<-firstLineSent
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}

	// Swap mid-stream, as the SIGHUP path does.
	old := swap.cur.Swap(nextGen)
	old.retire()

	// The old engine must stay open while its stream is in flight...
	if probeClosed(t, oldEngine) {
		t.Fatal("old engine closed while its stream was still in flight")
	}
	// ...while new requests already land on the new generation.
	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("post-swap request got %d from the old generation, want 204 from the new", resp2.StatusCode)
	}

	// Finish the stream: every line must arrive intact.
	releaseFn()
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("stream broken after swap: %v", err)
	}
	if got := first + string(rest); got != "{\"index\":0}\n{\"done\":true}\n" {
		t.Fatalf("stream corrupted across the swap: %q", got)
	}

	// Drained: the old engine must now close; the new one must not.
	deadline := time.Now().Add(10 * time.Second)
	for !probeClosed(t, oldEngine) {
		if time.Now().After(deadline) {
			t.Fatal("old engine never closed after its last request drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if probeClosed(t, nextEngine) {
		t.Fatal("retiring the old generation closed the new engine")
	}
}

// fixpointBody returns the JSON request body for the probe problem.
func fixpointBody(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]string{"problem": probeProblem})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestServeSIGHUPReload drives the real binary end to end: serve a
// query against store A, rewrite the -config file to store B, SIGHUP,
// and require the reloaded daemon to answer byte-identically while
// committing its records to the new store — then exit cleanly on
// SIGTERM.
func TestServeSIGHUPReload(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real subprocess")
	}
	bin := filepath.Join(t.TempDir(), "serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	cfgPath := filepath.Join(t.TempDir(), "serve.conf")
	if err := os.WriteFile(cfgPath, []byte("store "+dirA+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-config", cfgPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitFor := func(substr string) string {
		t.Helper()
		timeout := time.After(30 * time.Second)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("daemon exited before logging %q", substr)
				}
				if strings.Contains(line, substr) {
					return line
				}
			case <-timeout:
				t.Fatalf("daemon never logged %q", substr)
			}
		}
	}

	listening := waitFor("listening on")
	fields := strings.Fields(listening) // serve: listening on ADDR (store: ...)
	if len(fields) < 4 {
		t.Fatalf("unparsable listen line %q", listening)
	}
	url := "http://" + fields[3]

	query := func() []byte {
		t.Helper()
		resp, err := http.Post(url+"/v1/fixpoint", "application/json", bytes.NewReader(fixpointBody(t)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fixpoint: status %d: %s", resp.StatusCode, body)
		}
		return body
	}
	awaitRecords := func(dir string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			matches, _ := filepath.Glob(filepath.Join(dir, "objects", "*", "*.traj"))
			if len(matches) > 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("no trajectory records appeared under %s", dir)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	before := query()
	awaitRecords(dirA)

	// Repoint the store and reload.
	if err := os.WriteFile(cfgPath, []byte("store "+dirB+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitFor("reloaded")

	after := query()
	if !bytes.Equal(before, after) {
		t.Fatalf("post-reload body differs:\n%s\nvs\n%s", before, after)
	}
	awaitRecords(dirB)

	// The process-lifetime metrics endpoint survives the reload.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(metricsBody, []byte("re_http_requests_total")) {
		t.Fatalf("/metrics after reload: status %d body %.200s", resp.StatusCode, metricsBody)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly: %v", err)
	}
}

// TestServeRejectsPositionalArgs keeps the CLI contract: stray
// arguments are a usage error, not silently ignored.
func TestServeRejectsPositionalArgs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real subprocess")
	}
	bin := filepath.Join(t.TempDir(), "serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	err := exec.Command(bin, "stray").Run()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("stray argument: %v, want exit 2", err)
	}
}

// TestRunBadConfigFailsFast: a broken -config file at startup is a
// hard error, not a silently ignored file.
func TestRunBadConfigFailsFast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.conf")
	if err := os.WriteFile(path, []byte("bogus-key 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("127.0.0.1:0", path, settings{}, time.Second); err == nil || !strings.Contains(err.Error(), "unknown key") {
		t.Fatalf("run with a broken config returned %v, want unknown-key error", err)
	}
}

// postFixpoint issues one fixpoint query against gen's handler and
// returns the NDJSON body.
func postFixpoint(t *testing.T, gen *generation) []byte {
	t.Helper()
	srv := httptest.NewServer(gen.handler)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/fixpoint", "application/json", bytes.NewReader(fixpointBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fixpoint: status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestPreloadServesWithoutStore is the -preload acceptance lock at the
// mechanism level: a generation given a pack over a fresh, empty store
// answers byte-identically to the cold generation that built the pack,
// without materializing a single object file.
func TestPreloadServesWithoutStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	refGen, err := buildGeneration(settings{Store: dir}, service.NewMetrics(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = refGen.engine.Close() })
	cold := postFixpoint(t, refGen)

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	packPath := filepath.Join(t.TempDir(), "warm.repack")
	if _, err := st.Pack(packPath); err != nil {
		t.Fatal(err)
	}

	fresh := filepath.Join(t.TempDir(), "results")
	var logs bytes.Buffer
	gen, err := buildGeneration(settings{Store: fresh, Preload: packPath}, service.NewMetrics(), &logs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gen.engine.Close() })
	if strings.Contains(logs.String(), "preload") {
		t.Fatalf("healthy pack logged a preload degradation: %s", logs.String())
	}
	if got := postFixpoint(t, gen); !bytes.Equal(got, cold) {
		t.Fatalf("pack-served body differs from cold body:\n%s\nvs\n%s", got, cold)
	}
	objects, err := filepath.Glob(filepath.Join(fresh, "objects", "*", "*.*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objects) != 0 {
		t.Fatalf("pack-served query touched objects/: %v", objects)
	}
}

// TestPreloadDegradesOnCorruptPack: a pack that fails validation must
// not stop the daemon — the generation builds, logs the skip, and
// serves byte-identically from the JSON store underneath.
func TestPreloadDegradesOnCorruptPack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	refGen, err := buildGeneration(settings{Store: dir}, service.NewMetrics(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = refGen.engine.Close() })
	cold := postFixpoint(t, refGen)

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	packPath := filepath.Join(t.TempDir(), "warm.repack")
	if _, err := st.Pack(packPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(packPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(packPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var logs bytes.Buffer
	gen, err := buildGeneration(settings{Store: dir, Preload: packPath}, service.NewMetrics(), &logs)
	if err != nil {
		t.Fatalf("corrupt pack failed the generation: %v", err)
	}
	t.Cleanup(func() { _ = gen.engine.Close() })
	if !strings.Contains(logs.String(), "serving without the pack tier") {
		t.Fatalf("degradation not logged: %q", logs.String())
	}
	if got := postFixpoint(t, gen); !bytes.Equal(got, cold) {
		t.Fatal("store-served body behind a corrupt pack differs from cold body")
	}
}

// TestPprofServerLifecycle drives the profiling listener through its
// reload transitions: off → on (serving /debug/pprof/), moved (old
// socket dead, new one serving), and off again — exactly what a
// SIGHUP config change does to it.
func TestPprofServerLifecycle(t *testing.T) {
	var p pprofServer
	logw := new(bytes.Buffer)

	p.apply("127.0.0.1:0", logw)
	if p.ln == nil {
		t.Fatalf("apply did not bind: %s", logw)
	}
	first := p.ln.Addr().String()
	fetch := func(addr string) (int, error) {
		resp, err := http.Get("http://" + addr + "/debug/pprof/")
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if status, err := fetch(first); err != nil || status != http.StatusOK {
		t.Fatalf("pprof index: status %d, err %v", status, err)
	}

	// Same address: a no-op, the socket stays.
	p.apply("127.0.0.1:0", logw)
	if p.ln == nil || p.ln.Addr().String() != first {
		t.Fatal("apply with unchanged address rebound the socket")
	}

	// Moved: the old socket must be dead, the new one serving.
	p.stop()
	p.apply("127.0.0.1:0", logw)
	second := p.ln.Addr().String()
	if status, err := fetch(second); err != nil || status != http.StatusOK {
		t.Fatalf("moved pprof index: status %d, err %v", status, err)
	}
	if _, err := fetch(first); err == nil {
		t.Fatal("old pprof socket still serving after the move")
	}

	// Off: the listener closes.
	p.apply("", logw)
	if _, err := fetch(second); err == nil {
		t.Fatal("pprof socket still serving after disable")
	}
}
