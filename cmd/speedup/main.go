// Command speedup applies the automatic speedup transformation of Brandt
// (PODC 2019) to a problem given in the text format of core.Parse, read
// from a file or stdin, and prints the derived problem(s).
//
// Usage:
//
//	speedup [-steps n] [-half] [-keep-names] [file]
//
// Example (sinkless coloring at Δ=3):
//
//	printf 'node:\n0^2 1\nedge:\n0 0\n0 1\n' | speedup -steps 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	steps := flag.Int("steps", 1, "number of full speedup steps to apply")
	half := flag.Bool("half", false, "apply only the half step Π → Π'_1/2")
	keepNames := flag.Bool("keep-names", false, "keep derived set-labels instead of renaming compactly")
	flag.Parse()
	if err := run(*steps, *half, *keepNames, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
}

func run(steps int, half, keepNames bool, path string) error {
	text, err := readInput(path)
	if err != nil {
		return err
	}
	p, err := core.Parse(text)
	if err != nil {
		return err
	}
	fmt.Printf("# input problem: Δ=%d, %d labels, %d edge configs, %d node configs\n",
		p.Delta(), p.Alpha.Size(), p.Edge.Size(), p.Node.Size())

	if half {
		derived, err := core.HalfStep(p)
		if err != nil {
			return err
		}
		return printDerived(derived, keepNames, "Π'_1/2")
	}
	cur := p
	for i := 1; i <= steps; i++ {
		derived, err := core.Speedup(cur)
		if err != nil {
			return err
		}
		if err := printDerived(derived, keepNames, fmt.Sprintf("Π_%d", i)); err != nil {
			return err
		}
		if m, ok := core.Isomorphic(derived, cur); ok {
			_ = m
			fmt.Println("# fixed point: derived problem is isomorphic to its predecessor")
			break
		}
		if cfg, ok := core.ZeroRoundSolvableNoInput(derived); ok {
			fmt.Printf("# 0-round solvable without input (witness %s)\n", cfg.String(derived.Alpha))
			break
		}
		cur = derived
		if !keepNames {
			cur, _ = cur.RenameCompact()
		}
	}
	return nil
}

func printDerived(p *core.Problem, keepNames bool, title string) error {
	out := p
	var backing map[string]string
	if !keepNames {
		out, backing = p.RenameCompact()
	}
	fmt.Printf("\n# %s: %d labels, %d edge configs, %d node configs\n",
		title, out.Alpha.Size(), out.Edge.Size(), out.Node.Size())
	if backing != nil {
		for _, name := range out.Alpha.Names() {
			fmt.Printf("# %s = %s\n", name, backing[name])
		}
	}
	fmt.Print(out.String())
	return nil
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}
