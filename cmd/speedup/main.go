// Command speedup applies the automatic speedup transformation of Brandt
// (PODC 2019) to a problem given in the text format of core.Parse — or
// the canonical serialization emitted by the result store and the HTTP
// service — read from a file or stdin, and prints the derived
// problem(s).
//
// Usage:
//
//	speedup [-steps n] [-half] [-keep-names] [-workers n] [-fixpoint] [-max-steps n] [-store dir] [file]
//
// Example (sinkless coloring at Δ=3):
//
//	printf 'node:\n0^2 1\nedge:\n0 0\n0 1\n' | speedup -steps 2
//
// With -fixpoint the command runs the iterated round-elimination driver
// instead: it applies speedup until the trajectory is classified as a
// fixed point, a cycle, collapsed, 0-round solvable, or out of budget
// (bounded by -max-steps), and prints each trajectory entry plus the
// classification. This is the paper's lower-bound recipe as one flag:
//
//	printf 'node:\n0^2 1\nedge:\n0 0\n0 1\n' | speedup -fixpoint
//
// With -store dir the fixpoint driver memoizes every speedup step in
// the persistent result store under dir (shared with cmd/sweep):
// repeated queries replace each transformation with a record lookup,
// and output is byte-identical with and without the store.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/service"
)

func main() {
	steps := flag.Int("steps", 1, "number of full speedup steps to apply")
	half := flag.Bool("half", false, "apply only the half step Π → Π'_1/2")
	keepNames := flag.Bool("keep-names", false, "keep derived set-labels instead of renaming compactly")
	workers := flag.Int("workers", 0, "worker count for the parallel enumerations (0 = GOMAXPROCS)")
	fixpointMode := flag.Bool("fixpoint", false, "iterate speedup to a fixed point / cycle and classify the trajectory")
	maxSteps := flag.Int("max-steps", fixpoint.DefaultMaxSteps, "iteration bound in -fixpoint mode")
	storeDir := flag.String("store", "", "persistent result store directory for step memoization (requires -fixpoint)")
	flag.Parse()
	if err := validateFlags(*fixpointMode, *maxSteps); err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(2)
	}
	if err := run(options{
		steps:     *steps,
		half:      *half,
		keepNames: *keepNames,
		workers:   *workers,
		fixpoint:  *fixpointMode,
		maxSteps:  *maxSteps,
		storeDir:  *storeDir,
	}, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
}

// validateFlags rejects flag combinations the -fixpoint driver would
// silently ignore, rather than dropping them. The budget domain is the
// service layer's, so CLI and HTTP accept the same values.
func validateFlags(fixpointMode bool, maxSteps int) error {
	if err := service.ValidateBudgets(maxSteps, 0); err != nil {
		return fmt.Errorf("-max-steps: %v", err)
	}
	var conflict error
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "half", "steps", "keep-names":
			if fixpointMode {
				conflict = fmt.Errorf("-%s cannot be combined with -fixpoint", f.Name)
			}
		case "store":
			if !fixpointMode {
				conflict = fmt.Errorf("-store requires -fixpoint (the plain-step printer shows derived set-names the store does not keep)")
			}
		}
	})
	return conflict
}

type options struct {
	steps     int
	half      bool
	keepNames bool
	workers   int
	fixpoint  bool
	maxSteps  int
	storeDir  string
}

func run(o options, path string) error {
	text, err := readInput(path)
	if err != nil {
		return err
	}
	// ParseAuto also accepts the canonical serialization the result
	// store and the HTTP service emit, so their output feeds back in.
	p, err := core.ParseAuto(text)
	if err != nil {
		return err
	}
	fmt.Printf("# input problem: Δ=%d, %d labels, %d edge configs, %d node configs\n",
		p.Delta(), p.Alpha.Size(), p.Edge.Size(), p.Node.Size())

	coreOpts := []core.Option{core.WithWorkers(o.workers)}
	if o.fixpoint {
		return runFixpoint(p, o, coreOpts)
	}
	if o.half {
		derived, err := core.HalfStep(p, coreOpts...)
		if err != nil {
			return err
		}
		return printDerived(derived, o.keepNames, "Π'_1/2")
	}
	cur := p
	for i := 1; i <= o.steps; i++ {
		derived, err := core.Speedup(cur, coreOpts...)
		if err != nil {
			return err
		}
		if err := printDerived(derived, o.keepNames, fmt.Sprintf("Π_%d", i)); err != nil {
			return err
		}
		if m, ok := core.Isomorphic(derived, cur); ok {
			_ = m
			fmt.Println("# fixed point: derived problem is isomorphic to its predecessor")
			break
		}
		if cfg, ok := core.ZeroRoundSolvableNoInput(derived); ok {
			fmt.Printf("# 0-round solvable without input (witness %s)\n", cfg.String(derived.Alpha))
			break
		}
		cur = derived
		if !o.keepNames {
			cur, _ = cur.RenameCompact()
		}
	}
	return nil
}

func runFixpoint(p *core.Problem, o options, coreOpts []core.Option) error {
	// This command never overrides WithMaxStates, so its steps are
	// cached under the engine-default budget (0).
	memo, _, err := service.OpenStepMemo(o.storeDir, 0)
	if err != nil {
		return err
	}
	res, err := fixpoint.Run(p, fixpoint.Options{MaxSteps: o.maxSteps, Core: coreOpts, Memo: memo})
	if err != nil {
		return err
	}
	for i, q := range res.Trajectory[1:] {
		if err := printDerived(q, true, fmt.Sprintf("Π_%d", i+1)); err != nil {
			return err
		}
	}
	fmt.Printf("\n# classification: %s after %d step(s)\n", res.Kind, res.Steps)
	switch res.Kind {
	case fixpoint.FixedPoint:
		fmt.Printf("# Π_%d is isomorphic to Π_%d — the paper's lower-bound fixed point\n",
			len(res.Trajectory)-1, res.CycleStart)
	case fixpoint.Cycle:
		fmt.Printf("# Π_%d is isomorphic to Π_%d (cycle of length %d)\n",
			len(res.Trajectory)-1, res.CycleStart, res.CycleLen)
	case fixpoint.BudgetExceeded:
		if res.Err != nil {
			fmt.Printf("# enumeration gave up: %v\n", res.Err)
		} else {
			fmt.Printf("# no closure within %d steps; raise -max-steps\n", res.Steps)
		}
	}
	return nil
}

func printDerived(p *core.Problem, keepNames bool, title string) error {
	out := p
	var backing map[string]string
	if !keepNames {
		out, backing = p.RenameCompact()
	}
	fmt.Printf("\n# %s: %d labels, %d edge configs, %d node configs\n",
		title, out.Alpha.Size(), out.Edge.Size(), out.Node.Size())
	if backing != nil {
		for _, name := range out.Alpha.Names() {
			fmt.Printf("# %s = %s\n", name, backing[name])
		}
	}
	fmt.Print(out.String())
	return nil
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}
