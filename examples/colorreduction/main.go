// Example: the Section 4.5 upper-bound direction — hardening the derived
// problem of k-coloring yields k'-coloring with a doubly exponential k',
// recovering the Cole–Vishkin O(log* n) bound, demonstrated symbolically
// and by simulation on a ring.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/colorred"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/problems"
	"repro/internal/sim"
)

func main() {
	// Symbolic side: the k → k' table.
	fmt.Println("k-coloring speedup on rings: k → k' = 2^(C(k,k/2)/2)")
	for _, k := range []int{4, 6, 8, 10} {
		kp, err := colorred.KPrime(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d → k' = %s\n", k, kp.String())
	}
	// Mechanized verification of the hardening for k = 4 (8 families).
	kp, err := colorred.VerifyHardening(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardening verified for k=4: the family labels form exactly %d-coloring\n", kp)

	// The implied upper bound: steps to reduce an id space to 4 colors.
	n := mathx.Pow2(64)
	steps, err := colorred.UpperBoundSteps(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ids from [1, 2^64]: %d speedup-derived reduction rounds (log* = %d)\n\n",
		steps, mathx.LogStarBig(n))

	// Simulated counterpart: Cole–Vishkin on an oriented ring.
	rng := rand.New(rand.NewSource(7))
	g, err := graph.Ring(128)
	if err != nil {
		log.Fatal(err)
	}
	orient, err := algorithms.RingOrientation(g)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := graph.UniqueIDs(g, 512, rng)
	if err != nil {
		log.Fatal(err)
	}
	alg := algorithms.RingThreeColoring{IDSpace: 512}
	sol, err := sim.Run(g, sim.Inputs{IDs: ids, Orientation: &orient}, alg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Verify(g, sol, problems.KColoring(3, 2)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: 3-colored a 128-ring in %d rounds (Cole–Vishkin) ✓\n", alg.Rounds(128, 2))
}
