// Example: the full odd-degree weak 2-coloring story of the paper — the
// Section 4.6 derivation counts, the Theorem 4 lower-bound step table,
// and the matching simulated upper bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/superweak"
)

func main() {
	// 1. The derivation of Section 4.6: apply the speedup to the pointer
	// version of weak 2-coloring and reproduce the paper's counts.
	p := problems.WeakTwoColoringPointer(3)
	half, err := core.HalfStep(p)
	if err != nil {
		log.Fatal(err)
	}
	full, err := core.SecondHalfStep(half)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Π'_1/2 of weak 2-coloring (Δ=3): %d usable labels (paper: 7), %d edge configs (paper: 4)\n",
		half.Alpha.Size(), half.Edge.Size())
	fmt.Printf("Π'_1: %d node configs (paper: 9)\n", full.Node.Size())

	// 2. The Theorem 4 lower bound: the number of supported
	// speedup+relaxation steps grows as Θ(log* Δ).
	fmt.Println("\nTheorem 4 step table (Δ given as a power tower):")
	for _, r := range superweak.StepTable([]int{7, 12, 27, 52}) {
		fmt.Printf("  Δ = Tower(%d): %d steps, log* Δ = %d\n", r.TowerHeight, r.Steps, r.LogStar)
	}

	// 3. The matching upper bound, simulated: weak 2-coloring on a random
	// 5-regular graph in O(log*) rounds, verified against the problem.
	rng := rand.New(rand.NewSource(42))
	g, err := graph.RandomRegular(16, 5, rng)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := graph.UniqueIDs(g, 64, rng)
	if err != nil {
		log.Fatal(err)
	}
	alg := algorithms.WeakTwoColoring{IDSpace: 64}
	sol, err := sim.Run(g, sim.Inputs{IDs: ids}, alg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Verify(g, sol, problems.WeakTwoColoringPointer(5)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated upper bound: weak 2-colored a 5-regular graph on 16 nodes in %d rounds ✓\n",
		alg.Rounds(16, 5))
}
