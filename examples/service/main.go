// Round-elimination-as-a-service quickstart: start the HTTP daemon
// in-process (the same engine and handler cmd/serve wires up), issue
// the three query kinds — a speedup step, a streamed fixpoint
// trajectory, an oracle verdict — plus the catalog, then replay the
// fixpoint query to show the warm store answering byte-identically.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/service"
)

// sinkless is sinkless coloring at Δ=3, the paper's Section 4.4 fixed
// point, in the human text format every endpoint accepts.
const sinkless = "node:\n0^2 1\nedge:\n0 0\n0 1\n"

func main() {
	// A store directory makes results survive the process; cmd/serve
	// takes the same thing via -store.
	dir, err := os.MkdirTemp("", "re-service-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	engine, err := service.New(service.Config{StoreDir: filepath.Join(dir, "results")})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	srv := httptest.NewServer(service.Handler(engine))
	defer srv.Close()
	fmt.Printf("daemon listening on %s (equivalent: go run ./cmd/serve -store %s)\n\n", srv.URL, filepath.Join(dir, "results"))

	// 1. One speedup step: POST /v1/speedup.
	body := post(srv.URL+"/v1/speedup", fmt.Sprintf(`{"problem":%q}`, sinkless))
	var speedup struct {
		Input struct {
			Key string `json:"key"`
		} `json:"input"`
		Derived []struct {
			Key       string `json:"key"`
			Canonical string `json:"canonical"`
		} `json:"derived"`
	}
	mustUnmarshal(body, &speedup)
	fmt.Printf("POST /v1/speedup\n  input key   %s\n  derived key %s\n  derived problem:\n%s\n",
		speedup.Input.Key, speedup.Derived[0].Key, indent(speedup.Derived[0].Canonical))

	// 2. The classified trajectory, streamed as NDJSON: POST /v1/fixpoint.
	cold, coldTime := timed(func() []byte {
		return post(srv.URL+"/v1/fixpoint", fmt.Sprintf(`{"problem":%q}`, sinkless))
	})
	fmt.Printf("POST /v1/fixpoint (cold store, %v)\n", coldTime)
	printStream(cold)

	// 3. An oracle verdict: POST /v1/verify (0-round 3-coloring on
	// cycles is decidedly unsolvable — the daemon answers 409 with the
	// full verdict, mirroring cmd/verify's exit code 2).
	resp, err := http.Post(srv.URL+"/v1/verify", "application/json",
		bytes.NewReader([]byte(`{"problem":"3-coloring/delta=2","rounds":0,"n":4}`)))
	if err != nil {
		log.Fatal(err)
	}
	verdict, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /v1/verify → HTTP %d\n%s\n", resp.StatusCode, indent(string(verdict)))

	// 4. The catalog: GET /v1/catalog.
	catResp, err := http.Get(srv.URL + "/v1/catalog")
	if err != nil {
		log.Fatal(err)
	}
	catalog, _ := io.ReadAll(catResp.Body)
	catResp.Body.Close()
	var cat struct {
		Entries []struct {
			Name string `json:"name"`
		} `json:"entries"`
	}
	mustUnmarshal(catalog, &cat)
	fmt.Printf("GET /v1/catalog → %d problems (first: %s)\n\n", len(cat.Entries), cat.Entries[0].Name)

	// 5. Warm replay: the identical fixpoint query now comes from the
	// store — typically orders of magnitude faster — and the bytes are
	// identical to the cold response. That is the service's caching
	// contract: a cache can change latency, never answers.
	warm, warmTime := timed(func() []byte {
		return post(srv.URL+"/v1/fixpoint", fmt.Sprintf(`{"problem":%q}`, sinkless))
	})
	fmt.Printf("POST /v1/fixpoint again (warm store, %v; cold was %v)\n", warmTime, coldTime)
	if bytes.Equal(cold, warm) {
		fmt.Println("  warm response is byte-identical to the cold response ✓")
	} else {
		log.Fatal("warm response differs from cold response")
	}
}

// post issues a JSON POST and returns the body, failing the example on
// a non-2xx status.
func post(url, body string) []byte {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// printStream summarizes an NDJSON trajectory stream line by line.
func printStream(body []byte) {
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var entry struct {
			Index   int `json:"index"`
			Problem struct {
				Labels      int    `json:"labels"`
				EdgeConfigs int    `json:"edge_configs"`
				NodeConfigs int    `json:"node_configs"`
				Key         string `json:"key"`
			} `json:"problem"`
			Classification string `json:"classification"`
			Steps          int    `json:"steps"`
		}
		mustUnmarshal(line, &entry)
		if entry.Classification != "" {
			fmt.Printf("  ← %q after %d step(s)\n\n", entry.Classification, entry.Steps)
			continue
		}
		fmt.Printf("  ← Π_%d: %d labels, %d edge configs, %d node configs (key %s…)\n",
			entry.Index, entry.Problem.Labels, entry.Problem.EdgeConfigs, entry.Problem.NodeConfigs, entry.Problem.Key[:12])
	}
}

// timed runs fn and reports its wall-clock duration.
func timed(fn func() []byte) ([]byte, time.Duration) {
	start := time.Now()
	out := fn()
	return out, time.Since(start).Round(10 * time.Microsecond)
}

// mustUnmarshal decodes JSON or aborts the example.
func mustUnmarshal(data []byte, dst any) {
	if err := json.Unmarshal(data, dst); err != nil {
		log.Fatalf("unmarshal %q: %v", data, err)
	}
}

// indent prefixes every line for display.
func indent(s string) string {
	out := ""
	for _, line := range bytes.Split(bytes.TrimRight([]byte(s), "\n"), []byte("\n")) {
		out += "    " + string(line) + "\n"
	}
	return out
}
