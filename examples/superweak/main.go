// Example: the Section 5 pipeline — solve the derived problem Π'_1 of
// superweak 2-coloring on a concrete graph, transform the solution via
// Lemma 3 (Hall violators → demanding/accepting pointers) into a
// superweak coloring, and verify it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/superweak"
)

func main() {
	// The trit-sequence form of Π'_1/2 of superweak 2-coloring (Section
	// 5.1's "equivalent description"), then the engine's Π'_1.
	half, err := superweak.TritHalfProblem(2, 3)
	if err != nil {
		log.Fatal(err)
	}
	full, err := core.SecondHalfStep(half, core.WithStrategy(core.StrategyCombine))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Π'_1/2 (trit form): %d labels; Π'_1: %d labels, %d node configs\n",
		half.Alpha.Size(), full.Alpha.Size(), full.Node.Size())

	// Solve Π'_1 on the 3-cube with the centralized reference solver.
	b := graph.NewBuilder(8)
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 7}, {7, 4},
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
	} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	// Restrict to configurations whose Lemma 2 set J* exists under every
	// orientation (the unconditional guarantee needs Δ ≥ 2^(4k)+1; see
	// DESIGN.md). A restriction is a harder problem, so its solutions
	// solve Π'_1.
	restricted := jStarFriendly(half, full)
	sol, ok, err := solve.Solve(g, restricted, solve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("restricted Π'_1 unsatisfiable on the cube")
	}
	if err := sim.Verify(g, sol, full); err != nil {
		log.Fatal(err)
	}
	fmt.Println("solved Π'_1 on the 3-cube ✓")

	// Lemma 3: transform into a superweak coloring and verify.
	rng := rand.New(rand.NewSource(3))
	orient := graph.RandomOrientation(g, rng)
	out, err := superweak.Transform(g, orient, sol, half, full, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := superweak.VerifyOutput(g, out, g.MaxDegree()); err != nil {
		log.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, c := range out.Color {
		distinct[c] = true
	}
	fmt.Printf("Lemma 3 transformation: valid superweak coloring with %d distinct colors ✓\n", len(distinct))
}

// jStarFriendly keeps the node configurations admitting a J* under every
// orientation pattern.
func jStarFriendly(half, full *core.Problem) *core.Problem {
	allOnes := map[core.Label]bool{}
	target, _ := half.Alpha.Lookup(superweak.AllOnes(2).String())
	for l := 0; l < full.Alpha.Size(); l++ {
		if prov, ok := full.Alpha.Provenance(core.Label(l)); ok && prov.Contains(int(target)) {
			allOnes[core.Label(l)] = true
		}
	}
	has11 := func(l core.Label) bool { return allOnes[l] }
	rel := map[[2]core.Label]bool{}
	for _, cfg := range full.Edge.Configs() {
		ls := cfg.Expand()
		rel[[2]core.Label{ls[0], ls[1]}] = true
		rel[[2]core.Label{ls[1], ls[0]}] = true
	}
	relFn := func(a, b core.Label) bool { return rel[[2]core.Label{a, b}] }

	delta := full.Delta()
	node := core.NewConstraint(delta)
	for _, cfg := range full.Node.Configs() {
		pinf, ok := superweak.PInfOf(cfg, has11)
		if !ok {
			continue
		}
		q := cfg.Expand()
		friendly := true
		for mask := 0; mask < 1<<uint(delta) && friendly; mask++ {
			outSide := make([]bool, delta)
			for i := range outSide {
				outSide[i] = mask&(1<<uint(i)) != 0
			}
			if _, ok := superweak.JStar(q, outSide, pinf, has11, relFn); !ok {
				friendly = false
			}
		}
		if friendly {
			node.MustAdd(cfg)
		}
	}
	p, err := core.NewProblem(full.Alpha, full.Edge.Clone(), node)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
