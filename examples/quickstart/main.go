// Quickstart: define a locally checkable problem, apply one automatic
// speedup step (Brandt, PODC 2019), and inspect the derived problem.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Sinkless coloring at Δ=3 (Section 4.4): label "1" at (v,e) means
	// node v picks edge e; on every edge someone must not pick it, and
	// every node picks exactly one of its three edges.
	problem := core.MustParse(`
node:
0^2 1
edge:
0 0
0 1
`)
	fmt.Println("input problem (sinkless coloring, Δ=3):")
	fmt.Print(problem.String())

	// One full speedup step: by Theorems 1-2, on 3-regular graph classes
	// of girth ≥ 2t+2 with an input edge orientation, the derived problem
	// is solvable exactly one round faster.
	derived, err := core.Speedup(problem)
	if err != nil {
		log.Fatal(err)
	}
	compact, names := derived.RenameCompact()
	fmt.Println("\nderived problem Π'_1 (solvable exactly one round faster):")
	for _, n := range compact.Alpha.Names() {
		fmt.Printf("  %s = %s\n", n, names[n])
	}
	fmt.Print(compact.String())

	// The derived problem is sinkless coloring again — the fixed point
	// behind the paper's Ω(log n) lower bound.
	if _, ok := core.Isomorphic(derived, problem); ok {
		fmt.Println("\nΠ'_1 ≅ Π: fixed point found — sinkless coloring needs Ω(log n) rounds.")
	}

	// And it is not 0-round solvable, even with an orientation input.
	if _, ok := core.ZeroRoundSolvableWithOrientation(problem); !ok {
		fmt.Println("not 0-round solvable (with input edge orientations), as the recipe requires.")
	}
}
