// Package repro benchmarks regenerate the reproduction's experiments as
// testing.B benchmarks — one per experiment of EXPERIMENTS.md's index
// (the paper is theory, so the "tables" are its worked derivations; see
// EXPERIMENTS.md for what each measures and how to read the numbers).
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/colorred"
	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/graph"
	"repro/internal/independence"
	"repro/internal/matching"
	"repro/internal/oracle"
	"repro/internal/problems"
	"repro/internal/problems/gen"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/store"
	"repro/internal/superweak"
	"repro/internal/synth"
)

// BenchmarkE1SpeedupSinkless: one full speedup step on sinkless coloring
// (the Section 4.4 fixed point), per Δ.
func BenchmarkE1SpeedupSinkless(b *testing.B) {
	for _, delta := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			p := problems.SinklessColoring(delta)
			for i := 0; i < b.N; i++ {
				derived, err := core.Speedup(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := core.Isomorphic(derived, p); !ok {
					b.Fatal("fixed point lost")
				}
			}
		})
	}
}

// BenchmarkE2ColorReduction: the Section 4.5 derivation and hardening.
func BenchmarkE2ColorReduction(b *testing.B) {
	b.Run("halfstep-k4", func(b *testing.B) {
		p := problems.KColoring(4, 2)
		for i := 0; i < b.N; i++ {
			if _, err := core.HalfStep(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("verify-hardening-k4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := colorred.VerifyHardening(4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3SpeedupWeak2: the Section 4.6 derivation (7 labels → 9 node
// configurations), per Δ.
func BenchmarkE3SpeedupWeak2(b *testing.B) {
	for _, delta := range []int{3, 4} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			p := problems.WeakTwoColoringPointer(delta)
			for i := 0; i < b.N; i++ {
				full, err := core.Speedup(p)
				if err != nil {
					b.Fatal(err)
				}
				if full.Node.Size() != 9 {
					b.Fatalf("expected 9 node configs, got %d", full.Node.Size())
				}
			}
		})
	}
}

// BenchmarkE4SuperweakHalf: the Section 5.1 half step (trit description).
func BenchmarkE4SuperweakHalf(b *testing.B) {
	for _, delta := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			p := problems.Superweak(2, delta)
			for i := 0; i < b.N; i++ {
				half, err := core.HalfStep(p)
				if err != nil {
					b.Fatal(err)
				}
				if half.Alpha.Size() != 9 {
					b.Fatalf("expected 9 trit labels, got %d", half.Alpha.Size())
				}
			}
		})
	}
}

// BenchmarkE4SuperweakFull: the full derivation at the enumerable Δ=3,
// comparing both maximal-configuration strategies.
func BenchmarkE4SuperweakFull(b *testing.B) {
	half, err := superweak.TritHalfProblem(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []struct {
		name string
		st   core.Strategy
	}{{"explore", core.StrategyExplore}, {"combine", core.StrategyCombine}} {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SecondHalfStep(half, core.WithStrategy(s.st)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4Lemma2JStar: the Hall-violator machinery of Lemma 2 over all
// (configuration, orientation) pairs of the enumerable instance.
func BenchmarkE4Lemma2JStar(b *testing.B) {
	half, err := superweak.TritHalfProblem(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	full, err := core.SecondHalfStep(half, core.WithStrategy(core.StrategyCombine))
	if err != nil {
		b.Fatal(err)
	}
	allOnes := func(l core.Label) bool {
		target, _ := half.Alpha.Lookup("11")
		prov, ok := full.Alpha.Provenance(l)
		return ok && prov.Contains(int(target))
	}
	rel := map[[2]core.Label]bool{}
	for _, cfg := range full.Edge.Configs() {
		ls := cfg.Expand()
		rel[[2]core.Label{ls[0], ls[1]}] = true
		rel[[2]core.Label{ls[1], ls[0]}] = true
	}
	relFn := func(x, y core.Label) bool { return rel[[2]core.Label{x, y}] }
	configs := full.Node.Configs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range configs {
			pinf, ok := superweak.PInfOf(cfg, allOnes)
			if !ok {
				continue
			}
			q := cfg.Expand()
			for mask := 0; mask < 8; mask++ {
				out := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
				superweak.JStar(q, out, pinf, allOnes, relFn)
			}
		}
	}
}

// BenchmarkE6ParallelSpeedup: the parallel round-elimination engine
// against its sequential baseline, on the weak 2-coloring derivation
// whose maximal-set exploration dominates wall-clock at larger Δ. The
// "seq" variants pin one worker; the "par" variants use GOMAXPROCS. On
// a machine with ≥4 cores the Δ=8 pair is the headline speedup number;
// outputs are byte-identical either way.
func BenchmarkE6ParallelSpeedup(b *testing.B) {
	for _, delta := range []int{4, 6, 8} {
		p := problems.WeakTwoColoringPointer(delta)
		for _, v := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(fmt.Sprintf("weak2/delta=%d/%s", delta, v.name), func(b *testing.B) {
				if delta >= 6 && testing.Short() {
					b.Skip("minutes-long at Δ>=6; run without -short")
				}
				for i := 0; i < b.N; i++ {
					if _, err := core.Speedup(p, core.WithWorkers(v.workers)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE6ParallelHalfStep: the sharded config-lifting half of the
// engine in isolation, on the superweak problem whose node constraint
// has enough configurations to feed every worker.
func BenchmarkE6ParallelHalfStep(b *testing.B) {
	p := problems.Superweak(2, 5)
	for _, v := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.HalfStep(p, core.WithWorkers(v.workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Fixpoint: the iterated round-elimination driver on the
// problems whose trajectories close (Section 4.4): sinkless coloring
// (fixed point in 1 step) and sinkless orientation (in 2).
func BenchmarkE7Fixpoint(b *testing.B) {
	cases := []struct {
		name string
		p    *core.Problem
		want fixpoint.Kind
	}{
		{"sinkless-coloring/delta=3", problems.SinklessColoring(3), fixpoint.FixedPoint},
		{"sinkless-coloring/delta=8", problems.SinklessColoring(8), fixpoint.FixedPoint},
		{"sinkless-orientation/delta=3", problems.SinklessOrientation(3), fixpoint.FixedPoint},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := fixpoint.Run(tc.p, fixpoint.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Kind != tc.want {
					b.Fatalf("classified %v, want %v", res.Kind, tc.want)
				}
			}
		})
	}
}

// BenchmarkE8ParallelSim: the parallelized simulator against its
// sequential baseline, on workloads whose per-node output functions
// dominate (Cole–Vishkin view walks and the weak 2-coloring chain
// evolution). "seq" pins one worker; "par" uses GOMAXPROCS. Outputs
// are byte-identical either way (cross-checked in internal/sim tests).
func BenchmarkE8ParallelSim(b *testing.B) {
	variants := []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}}

	for _, n := range []int{256, 1024} {
		rng := rand.New(rand.NewSource(1))
		g, err := graph.Ring(n)
		if err != nil {
			b.Fatal(err)
		}
		orient, err := algorithms.RingOrientation(g)
		if err != nil {
			b.Fatal(err)
		}
		ids, err := graph.UniqueIDs(g, 4*n, rng)
		if err != nil {
			b.Fatal(err)
		}
		alg := algorithms.RingThreeColoring{IDSpace: 4 * n}
		in := sim.Inputs{IDs: ids, Orientation: &orient}
		for _, v := range variants {
			b.Run(fmt.Sprintf("ring3col/n=%d/%s", n, v.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sim.Run(g, in, alg, sim.WithWorkers(v.workers)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	for _, tc := range []struct{ n, delta int }{{64, 3}, {128, 3}} {
		rng := rand.New(rand.NewSource(2))
		g, err := graph.RandomRegular(tc.n, tc.delta, rng)
		if err != nil {
			b.Fatal(err)
		}
		ids, err := graph.UniqueIDs(g, 2*tc.n, rng)
		if err != nil {
			b.Fatal(err)
		}
		alg := algorithms.WeakTwoColoring{IDSpace: 2 * tc.n}
		in := sim.Inputs{IDs: ids}
		for _, v := range variants {
			b.Run(fmt.Sprintf("weak2/n=%d/%s", tc.n, v.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sim.Run(g, in, alg, sim.WithWorkers(v.workers)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE9OracleSearch: the brute-force solvability oracle on the
// sinkless-orientation instance family at Δ=3 (K4, K_{3,3}, prism with
// shuffled ports), sequential vs parallel. The t=1 point is unsolvable
// (exhaustive refutation); the oriented t=1 superweak point is the
// solvable counterpart from the conformance harness.
func BenchmarkE9OracleSearch(b *testing.B) {
	bases, err := oracle.RegularBases(3, 10)
	if err != nil {
		b.Fatal(err)
	}
	plain := oracle.WithShuffledPorts(bases, 8, 1)
	oriented := oracle.WithRandomOrientations(oracle.WithShuffledPorts(bases, 4, 2), 3, 3)
	so := problems.SinklessOrientation(3)
	sw := problems.Superweak(2, 3)
	cases := []struct {
		name   string
		p      *core.Problem
		insts  []oracle.Instance
		rounds int
	}{
		{"sinkless-orientation/t=1", so, plain, 1},
		{"sinkless-orientation/t=2", so, plain, 2},
		{"superweak-oriented/t=1", sw, oriented, 1},
	}
	for _, tc := range cases {
		for _, v := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(tc.name+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					verdict, err := oracle.Decide(tc.p, tc.insts, tc.rounds, oracle.WithWorkers(v.workers))
					if err != nil {
						b.Fatal(err)
					}
					if verdict.Solvable != (tc.p == sw) {
						b.Fatalf("unexpected verdict %v for %s", verdict.Solvable, tc.name)
					}
				}
			})
		}
	}
}

// BenchmarkE10InternedHalfStep: the interned-representation side of the
// E10 pair — HalfStep on superweak per Δ (the same workload the
// string-keyed engine was measured on at the pre-refactor commit; the
// recorded baseline numbers and the deltas live in EXPERIMENTS.md).
// Allocation counts are part of the experiment: the interner's point is
// fewer and smaller allocations per derived configuration.
func BenchmarkE10InternedHalfStep(b *testing.B) {
	for _, delta := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("superweak/delta=%d", delta), func(b *testing.B) {
			p := problems.Superweak(2, delta)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.HalfStep(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("weak2-speedup/delta=4", func(b *testing.B) {
		if testing.Short() {
			b.Skip("half-second per iteration; run without -short")
		}
		p := problems.WeakTwoColoringPointer(4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Speedup(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11InternedFixpoint: the interned-representation side of the
// E11 pair — full fixpoint runs (speedup + interned-fingerprint memo +
// isomorphism confirmation) on the closing trajectories, against the
// string-keyed baselines recorded in EXPERIMENTS.md.
func BenchmarkE11InternedFixpoint(b *testing.B) {
	cases := []struct {
		name string
		p    *core.Problem
		want fixpoint.Kind
	}{
		{"sinkless-coloring/delta=3", problems.SinklessColoring(3), fixpoint.FixedPoint},
		{"sinkless-coloring/delta=8", problems.SinklessColoring(8), fixpoint.FixedPoint},
		{"sinkless-orientation/delta=3", problems.SinklessOrientation(3), fixpoint.FixedPoint},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := fixpoint.Run(tc.p, fixpoint.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Kind != tc.want {
					b.Fatalf("classified %v, want %v", res.Kind, tc.want)
				}
			}
		})
	}
}

// sweepMaxStates/sweepBudget match the bounds of the fixpoint golden
// tests: several catalog trajectories grow without bound, so sweeps pin
// MaxSteps and the state budget to make every task terminate
// deterministically. The same sweepMaxStates must key the store records
// (TrajectoryParams, StepMemo) or the memo would never match its run.
const sweepMaxStates = 60_000

var sweepBudget = fixpoint.Options{
	MaxSteps: 3,
	Core:     []core.Option{core.WithMaxStates(sweepMaxStates), core.WithWorkers(1)},
}

// sweepCatalogOnce replays cmd/sweep's per-task path over the full
// catalog against one store directory: checkpoint lookup, memoized
// fixpoint run on a miss, checkpoint write. It returns the number of
// checkpoint hits.
func sweepCatalogOnce(b *testing.B, st *store.Store) int {
	b.Helper()
	params := store.TrajectoryParams{MaxSteps: sweepBudget.MaxSteps, MaxStates: sweepMaxStates}
	hits := 0
	for _, entry := range problems.Catalog() {
		if _, ok, _ := st.GetTrajectory(entry.Problem, params); ok {
			hits++
			continue
		}
		opts := sweepBudget
		opts.Memo = st.StepMemo(sweepMaxStates)
		res, err := fixpoint.Run(entry.Problem, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.PutTrajectory(entry.Problem, params, res); err != nil {
			b.Fatal(err)
		}
	}
	return hits
}

// BenchmarkE12SweepStore: the E12 pair — a full-catalog classification
// sweep against a cold persistent store (every trajectory computed,
// checkpointed and step-memoized) vs the same sweep against the warm
// store it leaves behind (every task a checkpoint hit). The ratio is
// the cache's whole value proposition; EXPERIMENTS.md records it.
func BenchmarkE12SweepStore(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if hits := sweepCatalogOnce(b, st); hits != 0 {
				b.Fatalf("cold sweep had %d checkpoint hits", hits)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sweepCatalogOnce(b, st) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if hits := sweepCatalogOnce(b, st); hits != len(problems.Catalog()) {
				b.Fatalf("warm sweep had %d hits, want %d", hits, len(problems.Catalog()))
			}
		}
	})
}

// BenchmarkE13FixpointMemo: the E13 pair — fixpoint runs against a warm
// step memo, store-backed (disk record + canonical-parse per step) vs
// in-memory (fixpoint.MapMemo) vs none. Store hits replace each
// enumeration with a file read; the in-memory memo bounds the best
// case. Outputs are byte-identical in all three modes (locked by
// TestMemoHitMatchesColdRun and TestMapMemoByteIdentity).
func BenchmarkE13FixpointMemo(b *testing.B) {
	cases := []struct {
		name string
		p    *core.Problem
	}{
		{"sinkless-coloring/delta=8", problems.SinklessColoring(8)},
		{"sinkless-orientation/delta=3", problems.SinklessOrientation(3)},
		{"weak2-pointer/delta=3", problems.WeakTwoColoringPointer(3)},
	}
	for _, tc := range cases {
		run := func(b *testing.B, memo fixpoint.Memo) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := sweepBudget
				opts.Memo = memo
				if _, err := fixpoint.Run(tc.p, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(tc.name+"/memo=none", func(b *testing.B) { run(b, nil) })
		b.Run(tc.name+"/memo=map", func(b *testing.B) {
			memo := fixpoint.NewMapMemo()
			opts := sweepBudget
			opts.Memo = memo
			if _, err := fixpoint.Run(tc.p, opts); err != nil { // warm it
				b.Fatal(err)
			}
			b.ResetTimer()
			run(b, memo)
		})
		b.Run(tc.name+"/memo=store", func(b *testing.B) {
			st, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			memo := st.StepMemo(sweepMaxStates)
			opts := sweepBudget
			opts.Memo = memo
			if _, err := fixpoint.Run(tc.p, opts); err != nil { // warm it
				b.Fatal(err)
			}
			b.ResetTimer()
			run(b, memo)
		})
	}
}

// BenchmarkE5StepTable: Theorem 4 step counting.
func BenchmarkE5StepTable(b *testing.B) {
	heights := []int{3, 7, 12, 17, 27, 52, 102}
	for i := 0; i < b.N; i++ {
		superweak.StepTable(heights)
	}
}

// BenchmarkF1Independence: the exhaustive t-independence verification.
func BenchmarkF1Independence(b *testing.B) {
	g, err := graph.RingUniform(6)
	if err != nil {
		b.Fatal(err)
	}
	class := independence.OrientationClass(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := independence.CheckTIndependence(class, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2SuperweakVerify: the Figure 2 style output verifier plus the
// Lemma 3 transformation on the 3-cube.
func BenchmarkF2SuperweakTransform(b *testing.B) {
	half, err := superweak.TritHalfProblem(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	full, err := core.SecondHalfStep(half, core.WithStrategy(core.StrategyCombine))
	if err != nil {
		b.Fatal(err)
	}
	bd := graph.NewBuilder(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {0, 4}, {1, 5}, {2, 6}, {3, 7}} {
		if err := bd.AddEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
	g := bd.Build()
	// Restrict then solve once; benchmark the transformation itself.
	sol := solveRestricted(b, g, half, full)
	rng := rand.New(rand.NewSource(1))
	orient := graph.RandomOrientation(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := superweak.Transform(g, orient, sol, half, full, 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := superweak.VerifyOutput(g, out, g.MaxDegree()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkU1ColeVishkin: simulated ring 3-coloring end to end.
func BenchmarkU1ColeVishkin(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g, err := graph.Ring(n)
			if err != nil {
				b.Fatal(err)
			}
			orient, err := algorithms.RingOrientation(g)
			if err != nil {
				b.Fatal(err)
			}
			ids, err := graph.UniqueIDs(g, 4*n, rng)
			if err != nil {
				b.Fatal(err)
			}
			alg := algorithms.RingThreeColoring{IDSpace: 4 * n}
			in := sim.Inputs{IDs: ids, Orientation: &orient}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := sim.Run(g, in, alg)
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.Verify(g, sol, problems.KColoring(3, 2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkU1WeakTwoColoring: simulated odd-degree weak 2-coloring.
func BenchmarkU1WeakTwoColoring(b *testing.B) {
	for _, tc := range []struct{ n, delta int }{{20, 3}, {16, 5}} {
		b.Run(fmt.Sprintf("n=%d,delta=%d", tc.n, tc.delta), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			g, err := graph.RandomRegular(tc.n, tc.delta, rng)
			if err != nil {
				b.Fatal(err)
			}
			ids, err := graph.UniqueIDs(g, 2*tc.n, rng)
			if err != nil {
				b.Fatal(err)
			}
			alg := algorithms.WeakTwoColoring{IDSpace: 2 * tc.n}
			in := sim.Inputs{IDs: ids}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := sim.Run(g, in, alg)
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.Verify(g, sol, problems.WeakTwoColoringPointer(tc.delta)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkU2Theorem1: the mechanized Theorem 1 equivalence at t=1 on a
// fixed random problem.
func BenchmarkU2Theorem1(b *testing.B) {
	p := problems.KColoring(2, 2)
	for i := 0; i < b.N; i++ {
		derived, err := core.Speedup(p)
		if err != nil {
			b.Fatal(err)
		}
		one, err := synth.OneRoundOrientedSolvable(p)
		if err != nil {
			b.Fatal(err)
		}
		_, zero := core.ZeroRoundSolvableWithOrientation(derived)
		if one != zero {
			b.Fatal("equivalence violated")
		}
	}
}

// BenchmarkMatchingHopcroftKarp: the Lemma 2 substrate on random bipartite
// graphs.
func BenchmarkMatchingHopcroftKarp(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	bg := matching.NewBipartite(200, 200)
	for u := 0; u < 200; u++ {
		for v := 0; v < 200; v++ {
			if rng.Intn(20) == 0 {
				bg.AddEdge(u, v)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.MaxMatching(bg)
	}
}

func solveRestricted(b *testing.B, g *graph.Graph, half, full *core.Problem) *sim.Solution {
	b.Helper()
	target, _ := half.Alpha.Lookup("11")
	allOnes := func(l core.Label) bool {
		prov, ok := full.Alpha.Provenance(l)
		return ok && prov.Contains(int(target))
	}
	rel := map[[2]core.Label]bool{}
	for _, cfg := range full.Edge.Configs() {
		ls := cfg.Expand()
		rel[[2]core.Label{ls[0], ls[1]}] = true
		rel[[2]core.Label{ls[1], ls[0]}] = true
	}
	relFn := func(x, y core.Label) bool { return rel[[2]core.Label{x, y}] }
	node := core.NewConstraint(full.Delta())
	for _, cfg := range full.Node.Configs() {
		pinf, ok := superweak.PInfOf(cfg, allOnes)
		if !ok {
			continue
		}
		q := cfg.Expand()
		friendly := true
		for mask := 0; mask < 1<<uint(full.Delta()) && friendly; mask++ {
			out := make([]bool, full.Delta())
			for i := range out {
				out[i] = mask&(1<<uint(i)) != 0
			}
			if _, ok := superweak.JStar(q, out, pinf, allOnes, relFn); !ok {
				friendly = false
			}
		}
		if friendly {
			node.MustAdd(cfg)
		}
	}
	restricted, err := core.NewProblem(full.Alpha, full.Edge.Clone(), node)
	if err != nil {
		b.Fatal(err)
	}
	sol, ok, err := solve.Solve(g, restricted, solve.Options{})
	if err != nil || !ok {
		b.Fatalf("restricted solve failed: ok=%v err=%v", ok, err)
	}
	return sol
}

// e14FixpointBody is the E14 request body: the sinkless-coloring Δ=3
// fixpoint trajectory, the service's flagship query.
const e14FixpointBody = `{"problem":"node:\n0^2 1\nedge:\n0 0\n0 1\n"}`

// e14Server starts a service HTTP server over a store dir ("" =
// memory-only), registering cleanup with the benchmark.
func e14Server(b *testing.B, dir string) *httptest.Server {
	b.Helper()
	engine, err := service.New(service.Config{StoreDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = engine.Close() })
	srv := httptest.NewServer(service.Handler(engine))
	b.Cleanup(srv.Close)
	return srv
}

// e14Post issues one benchmark request and fails on a non-200.
func e14Post(b *testing.B, url string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/fixpoint", "application/json", strings.NewReader(e14FixpointBody))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d", resp.StatusCode)
	}
}

// BenchmarkE14ServiceThroughput: the E14 pair, part one — one fixpoint
// query per iteration through the full HTTP stack (request parse,
// singleflight, engine or cache, NDJSON render). cold-store pays the
// full engine run into a fresh store every iteration; warm-store
// replays the persisted trajectory; warm-memory bounds the best case
// (in-process cache, no disk). ns/op inverts to requests/sec; bodies
// are byte-identical across all three (locked by
// TestColdWarmByteIdentity).
func BenchmarkE14ServiceThroughput(b *testing.B) {
	b.Run("fixpoint/cold-store", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := e14Server(b, filepath.Join(b.TempDir(), fmt.Sprintf("cold-%d", i)))
			b.StartTimer()
			e14Post(b, srv.URL)
			b.StopTimer()
			srv.Close()
			b.StartTimer()
		}
	})
	b.Run("fixpoint/warm-store", func(b *testing.B) {
		srv := e14Server(b, filepath.Join(b.TempDir(), "warm"))
		e14Post(b, srv.URL) // prime the store
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e14Post(b, srv.URL)
		}
	})
	b.Run("fixpoint/warm-memory", func(b *testing.B) {
		srv := e14Server(b, "")
		e14Post(b, srv.URL) // prime the in-process cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e14Post(b, srv.URL)
		}
	})
}

// BenchmarkE14ServiceConcurrent: the E14 pair, part two — the same
// warm-store query under client concurrency (RunParallel saturates
// GOMAXPROCS workers), measuring how the read path scales when every
// request hits the store.
func BenchmarkE14ServiceConcurrent(b *testing.B) {
	srv := e14Server(b, filepath.Join(b.TempDir(), "warm"))
	e14Post(b, srv.URL)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			e14Post(b, srv.URL)
		}
	})
}

// BenchmarkE15ObservedConcurrency: E15 — the observed service under
// client concurrency, through the full production route set (Routes:
// query endpoints + instrument middleware + /metrics + /v1/stats).
// Each iteration fires a concurrent burst of identical fixpoint
// queries; the first burst is cold (singleflight dedups it), the rest
// are warm (store hits). Beyond ns/op, the benchmark reports the
// daemon's own instruments — dedup-ratio and peak-gate-depth from
// /v1/stats — so the CI bench artifact records a per-commit snapshot
// of observed admission pressure and deduplication.
func BenchmarkE15ObservedConcurrency(b *testing.B) {
	m := service.NewMetrics()
	engine, err := service.New(service.Config{
		StoreDir: filepath.Join(b.TempDir(), "obs"),
		Metrics:  m,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = engine.Close() })
	srv := httptest.NewServer(service.Routes(engine, m))
	b.Cleanup(srv.Close)

	const clients = 8
	burst := func() error {
		errc := make(chan error, clients)
		for c := 0; c < clients; c++ {
			go func() {
				resp, err := http.Post(srv.URL+"/v1/fixpoint", "application/json", strings.NewReader(e14FixpointBody))
				if err != nil {
					errc <- err
					return
				}
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err == nil && resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("HTTP %d", resp.StatusCode)
				}
				errc <- err
			}()
		}
		for c := 0; c < clients; c++ {
			if err := <-errc; err != nil {
				return err
			}
		}
		return nil
	}

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := burst(); err != nil {
			b.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var stats service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(stats.Singleflight.DedupRatio, "dedup-ratio")
	b.ReportMetric(float64(stats.Gate.PeakWaiting), "peak-gate-depth")
}

// BenchmarkE16PreloadTier: E16 — the packed warm-cache artifact
// against the JSON-store warm tier it replaces on the read path. Both
// variants answer the E14 flagship query through the full HTTP stack
// with byte-identical bodies; warm-store replays the record from the
// object tree (open + checksum per lookup), warm-pack replays it from
// the mmapped artifact (one validation at open, rank/select index per
// lookup). The delta against E14's warm-store is the preload tier's
// latency and allocation win.
func BenchmarkE16PreloadTier(b *testing.B) {
	// Build the artifact once: prime a store cold, then pack it.
	seed := filepath.Join(b.TempDir(), "seed")
	prime := e14Server(b, seed)
	e14Post(b, prime.URL)
	prime.Close()
	st, err := store.Open(seed)
	if err != nil {
		b.Fatal(err)
	}
	packPath := filepath.Join(b.TempDir(), "warm.repack")
	if _, err := st.Pack(packPath); err != nil {
		b.Fatal(err)
	}

	b.Run("fixpoint/warm-store", func(b *testing.B) {
		srv := e14Server(b, seed)
		e14Post(b, srv.URL)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e14Post(b, srv.URL)
		}
	})
	b.Run("fixpoint/warm-pack", func(b *testing.B) {
		pr, err := store.OpenPack(packPath)
		if err != nil {
			b.Fatal(err)
		}
		engine, err := service.New(service.Config{
			StoreDir: filepath.Join(b.TempDir(), "fresh"),
			Pack:     pr,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = engine.Close() })
		srv := httptest.NewServer(service.Handler(engine))
		b.Cleanup(srv.Close)
		e14Post(b, srv.URL)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e14Post(b, srv.URL)
		}
	})
}

// BenchmarkE17RenderedTier: E17 — the zero-alloc warm serving path,
// measured at the engine (the E14/E16 figures include the HTTP client
// and httptest server; this one isolates what the service itself
// spends). A steady-state warm hit is one rendered-memo lookup keyed
// by the raw request text — no parsing, no fingerprinting, no
// marshaling, no per-line buffers — and one sink call with the cached
// body. The allocs/op figure is the entire warm-path allocation budget
// and is CI-gated by tools/allocgate against bench/alloc_thresholds.txt.
func BenchmarkE17RenderedTier(b *testing.B) {
	engine, err := service.New(service.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = engine.Close() })
	req := service.FixpointRequest{Problem: "node:\n0^2 1\nedge:\n0 0\n0 1\n"}
	sink := func([]byte) error { return nil }
	if err := engine.Fixpoint(context.Background(), req, sink); err != nil { // prime
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.Fixpoint(context.Background(), req, sink); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE18GeneratedSweep: E18 — sweep throughput over a generated
// problem space (internal/problems/gen), cold vs warm. Each iteration
// classifies the same 32-point `-gen family=rand` space the way
// cmd/sweep does — fixpoint.Run per point, trajectory and rendered
// records committed to a store. The cold case starts from an empty
// store every iteration (generation + classification + commit); the
// warm case replays checkpoints from a pre-populated store (generation
// + store reads only). The gap is what a checkpointed store buys a
// re-run of a generated-space sweep; generation itself is in both
// numbers, so their ratio is honest about the generator's cost too.
func BenchmarkE18GeneratedSweep(b *testing.B) {
	spec, err := gen.ParseSpec("family=rand,seed=18,count=32,delta=3,labels=3,edge=60,node=60")
	if err != nil {
		b.Fatal(err)
	}
	const maxSteps = 2
	const maxStates = 8000
	params := store.TrajectoryParams{MaxSteps: maxSteps, MaxStates: maxStates}
	classify := func(b *testing.B, st *store.Store) {
		points, err := spec.Points()
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range points {
			if _, ok, _ := st.GetTrajectory(pt.Problem, params); ok {
				continue
			}
			res, err := fixpoint.Run(pt.Problem, fixpoint.Options{
				MaxSteps: maxSteps,
				Core:     []core.Option{core.WithMaxStates(maxStates)},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.PutTrajectory(pt.Problem, params, res); err != nil {
				b.Fatal(err)
			}
			if err := st.PutRendered(pt.Problem, params, service.RenderFixpointNDJSON(res)); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := store.Open(filepath.Join(b.TempDir(), fmt.Sprintf("e18-cold-%d", i)))
			if err != nil {
				b.Fatal(err)
			}
			classify(b, st)
		}
	})
	b.Run("warm", func(b *testing.B) {
		st, err := store.Open(filepath.Join(b.TempDir(), "e18-warm"))
		if err != nil {
			b.Fatal(err)
		}
		classify(b, st) // populate checkpoints
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			classify(b, st)
		}
	})
}
