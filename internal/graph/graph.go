// Package graph provides the input-graph substrate for the port numbering
// and LOCAL model simulations: simple undirected graphs with per-endpoint
// port numbers, plus the input labelings the paper uses for symmetry
// breaking (edge orientations, edge colorings, node colorings, unique
// identifiers) and generators for the graph classes its arguments run on
// (rings, Δ-regular trees, high-girth random Δ-regular graphs).
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph. Each node's incident edges are
// numbered by ports 1..deg(v) (stored 0-based); the two endpoints of an
// edge may use different ports, exactly as in the port numbering model
// (Section 3 of the paper).
type Graph struct {
	n     int
	adj   [][]halfEdge // adj[v][port] = (neighbor, edge id, neighbor's port)
	edges []edge
}

type halfEdge struct {
	to       int
	edgeID   int
	toPort   int
	fromPort int
}

type edge struct {
	u, v         int // u < v
	portU, portV int
}

// Builder accumulates edges before freezing into a Graph.
type Builder struct {
	n     int
	pairs [][2]int
	seen  map[[2]int]bool
}

// NewBuilder creates a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, seen: make(map[[2]int]bool)}
}

// AddEdge adds the undirected edge {u, v}. Self-loops and duplicate edges
// are rejected.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if b.seen[key] {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[key] = true
	b.pairs = append(b.pairs, key)
	return nil
}

// Build freezes the builder into a Graph, assigning ports in edge
// insertion order. Use ShufflePorts for adversarial/random port numbers.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, adj: make([][]halfEdge, b.n), edges: make([]edge, len(b.pairs))}
	for id, p := range b.pairs {
		u, v := p[0], p[1]
		portU, portV := len(g.adj[u]), len(g.adj[v])
		g.adj[u] = append(g.adj[u], halfEdge{to: v, edgeID: id, toPort: portV, fromPort: portU})
		g.adj[v] = append(g.adj[v], halfEdge{to: u, edgeID: id, toPort: portU, fromPort: portV})
		g.edges[id] = edge{u: u, v: v, portU: portU, portV: portV}
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Δ.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// IsRegular reports whether every node has the same degree.
func (g *Graph) IsRegular() bool {
	if g.n == 0 {
		return true
	}
	d := len(g.adj[0])
	for v := 1; v < g.n; v++ {
		if len(g.adj[v]) != d {
			return false
		}
	}
	return true
}

// Neighbor returns the neighbor of v reached through the given 0-based
// port, together with the edge id and the neighbor's port for that edge.
func (g *Graph) Neighbor(v, port int) (to, edgeID, toPort int) {
	h := g.adj[v][port]
	return h.to, h.edgeID, h.toPort
}

// EdgeEndpoints returns the endpoints (u < v) and their ports for edge id.
func (g *Graph) EdgeEndpoints(id int) (u, v, portU, portV int) {
	e := g.edges[id]
	return e.u, e.v, e.portU, e.portV
}

// EdgeBetween returns the edge id connecting u and v, if any.
func (g *Graph) EdgeBetween(u, v int) (int, bool) {
	for _, h := range g.adj[u] {
		if h.to == v {
			return h.edgeID, true
		}
	}
	return 0, false
}

// PortOf returns v's port for edge id; v must be an endpoint.
func (g *Graph) PortOf(v, id int) int {
	e := g.edges[id]
	switch v {
	case e.u:
		return e.portU
	case e.v:
		return e.portV
	}
	panic("graph: PortOf: node is not an endpoint of the edge")
}

// Clone returns a deep copy of the graph sharing no state with the
// original: same nodes, edges, and port numbering. Family enumerators
// use it to derive many port-numbered variants from one base graph.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		n:     g.n,
		adj:   make([][]halfEdge, g.n),
		edges: append([]edge(nil), g.edges...),
	}
	for v := range g.adj {
		cp.adj[v] = append([]halfEdge(nil), g.adj[v]...)
	}
	return cp
}

// PermutePorts renumbers node v's ports by the given permutation:
// the edge currently on port i moves to port perm[i]. All
// cross-references are updated. It rejects slices that are not
// permutations of 0..deg(v)-1.
func (g *Graph) PermutePorts(v int, perm []int) error {
	d := len(g.adj[v])
	if len(perm) != d {
		return fmt.Errorf("graph: PermutePorts: got %d entries for degree-%d node", len(perm), d)
	}
	seen := make([]bool, d)
	for _, p := range perm {
		if p < 0 || p >= d || seen[p] {
			return fmt.Errorf("graph: PermutePorts: %v is not a permutation of 0..%d", perm, d-1)
		}
		seen[p] = true
	}
	// Decompose into transpositions; SwapPorts maintains every
	// cross-reference invariant.
	current := make([]int, d) // current[i] = original port now at position i
	for i := range current {
		current[i] = i
	}
	inv := make([]int, d) // inv[newPort] = original port
	for oldPort, newPort := range perm {
		inv[newPort] = oldPort
	}
	for pos := 0; pos < d; pos++ {
		want := inv[pos]
		if current[pos] == want {
			continue
		}
		j := pos + 1
		for ; j < d; j++ {
			if current[j] == want {
				break
			}
		}
		g.SwapPorts(v, pos, j)
		current[pos], current[j] = current[j], current[pos]
	}
	return nil
}

// SwapPorts exchanges two port numbers of node v, updating all
// cross-references.
func (g *Graph) SwapPorts(v, p1, p2 int) {
	if p1 == p2 {
		return
	}
	g.adj[v][p1], g.adj[v][p2] = g.adj[v][p2], g.adj[v][p1]
	for _, port := range []int{p1, p2} {
		g.adj[v][port].fromPort = port
		h := g.adj[v][port]
		e := &g.edges[h.edgeID]
		if e.u == v {
			e.portU = port
		} else {
			e.portV = port
		}
	}
	for _, port := range []int{p1, p2} {
		h := g.adj[v][port]
		for i := range g.adj[h.to] {
			if g.adj[h.to][i].edgeID == h.edgeID {
				g.adj[h.to][i].toPort = port
			}
		}
	}
}

// ShufflePorts randomly permutes every node's port numbering using rng.
// Worst-case port assignments are adversarial; random shuffling is how the
// test harness explores them.
func (g *Graph) ShufflePorts(rng *rand.Rand) {
	for v := 0; v < g.n; v++ {
		perm := rng.Perm(len(g.adj[v]))
		newAdj := make([]halfEdge, len(g.adj[v]))
		for oldPort, newPort := range perm {
			newAdj[newPort] = g.adj[v][oldPort]
		}
		g.adj[v] = newAdj
		// Rewire the cross-references.
		for port := range g.adj[v] {
			g.adj[v][port].fromPort = port
			h := g.adj[v][port]
			e := &g.edges[h.edgeID]
			if e.u == v {
				e.portU = port
			} else {
				e.portV = port
			}
		}
	}
	// Refresh toPort caches after all endpoints settled.
	for v := 0; v < g.n; v++ {
		for port := range g.adj[v] {
			h := &g.adj[v][port]
			e := g.edges[h.edgeID]
			if e.u == v {
				h.toPort = e.portV
			} else {
				h.toPort = e.portU
			}
		}
	}
}

// Girth returns the length of the shortest cycle, or -1 if the graph is
// acyclic. Computed by BFS from every node in O(n·m).
func (g *Graph) Girth() int {
	best := -1
	dist := make([]int, g.n)
	parentEdge := make([]int, g.n)
	for src := 0; src < g.n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		parentEdge[src] = -1
		queue := []int{src}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, h := range g.adj[v] {
				if h.edgeID == parentEdge[v] {
					continue
				}
				if dist[h.to] == -1 {
					dist[h.to] = dist[v] + 1
					parentEdge[h.to] = h.edgeID
					queue = append(queue, h.to)
				} else {
					// Cycle through v and h.to.
					cyc := dist[v] + dist[h.to] + 1
					if best == -1 || cyc < best {
						best = cyc
					}
				}
			}
		}
	}
	return best
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for qi := 0; qi < len(queue); qi++ {
		for _, h := range g.adj[queue[qi]] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				queue = append(queue, h.to)
			}
		}
	}
	return count == g.n
}

// Nodes returns 0..n-1; a convenience for range loops in callers that want
// to be explicit.
func (g *Graph) Nodes() []int {
	out := make([]int, g.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// SortedEdges returns edge ids ordered by (u, v); deterministic iteration
// order for tests and output.
func (g *Graph) SortedEdges() []int {
	ids := make([]int, len(g.edges))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := g.edges[ids[a]], g.edges[ids[b]]
		if ea.u != eb.u {
			return ea.u < eb.u
		}
		return ea.v < eb.v
	})
	return ids
}
