package graph_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// FuzzGraphInvariants generates graphs from the package generators
// under fuzzed parameters and port shuffles, then checks the structural
// invariants every consumer (simulator, oracle, solver) relies on:
// degree bounds, symmetric port maps, edge/endpoint consistency, and
// view construction consistency between the memoizing builder and the
// direct recursion.
func FuzzGraphInvariants(f *testing.F) {
	f.Add(int64(1), int64(8), int64(3), int64(0))
	f.Add(int64(2), int64(10), int64(3), int64(1))
	f.Add(int64(3), int64(12), int64(4), int64(2))
	f.Add(int64(4), int64(9), int64(2), int64(3))
	f.Add(int64(5), int64(6), int64(5), int64(4))
	f.Fuzz(func(t *testing.T, seed, nRaw, deltaRaw, kind int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(abs(nRaw)%14)        // 3..16
		delta := 1 + int(abs(deltaRaw)%4) // 1..4

		var g *graph.Graph
		var err error
		switch abs(kind) % 5 {
		case 0:
			g, err = graph.Ring(n)
		case 1:
			g, err = graph.RegularTree(delta, 1+int(abs(nRaw)%3))
		case 2:
			if (n*delta)%2 != 0 {
				n++
			}
			if n <= delta {
				n = delta + 2
				if (n*delta)%2 != 0 {
					n++
				}
			}
			g, err = graph.RandomRegular(n, delta, rng)
		case 3:
			g, err = graph.Torus(3+int(abs(nRaw)%3), 3+int(abs(deltaRaw)%3))
		case 4:
			g, err = graph.Path(n)
		}
		if err != nil {
			t.Fatalf("generator rejected in-range parameters: %v", err)
		}
		g.ShufflePorts(rng)
		checkInvariants(t, g)

		// A second shuffle of a clone must leave the original intact.
		clone := g.Clone()
		clone.ShufflePorts(rng)
		checkInvariants(t, clone)
		checkInvariants(t, g)
	})
}

func abs(x int64) int64 {
	if x < 0 {
		if x == -x { // minInt64
			return 0
		}
		return -x
	}
	return x
}

// checkInvariants asserts the structural graph invariants.
func checkInvariants(t *testing.T, g *graph.Graph) {
	t.Helper()
	degSum := 0
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		degSum += d
		if d > maxDeg {
			maxDeg = d
		}
		for port := 0; port < d; port++ {
			w, id, wPort := g.Neighbor(v, port)
			if w < 0 || w >= g.N() || w == v {
				t.Fatalf("node %d port %d: bad neighbor %d", v, port, w)
			}
			// Port maps must be symmetric: the neighbor's wPort leads
			// straight back along the same edge.
			back, backID, backPort := g.Neighbor(w, wPort)
			if back != v || backID != id || backPort != port {
				t.Fatalf("asymmetric port map at node %d port %d: reverse is (%d, %d, %d)",
					v, port, back, backID, backPort)
			}
			// Edge endpoints and PortOf agree with the adjacency view.
			eu, ev, pu, pv := g.EdgeEndpoints(id)
			if !(eu == v && ev == w || eu == w && ev == v) {
				t.Fatalf("edge %d endpoints (%d,%d) do not match adjacency (%d,%d)", id, eu, ev, v, w)
			}
			if g.PortOf(v, id) != port || g.PortOf(w, id) != wPort {
				t.Fatalf("PortOf disagrees with adjacency on edge %d", id)
			}
			if eu == v && (pu != port || pv != wPort) || eu == w && (pv != port || pu != wPort) {
				t.Fatalf("edge %d port record (%d,%d) does not match adjacency (%d,%d)", id, pu, pv, port, wPort)
			}
		}
	}
	if degSum != 2*g.M() {
		t.Fatalf("degree sum %d != 2M = %d", degSum, 2*g.M())
	}
	if g.MaxDegree() != maxDeg {
		t.Fatalf("MaxDegree() = %d, scan found %d", g.MaxDegree(), maxDeg)
	}

	// View-construction consistency: the memoizing builder and the
	// direct recursion agree on every node's radius-t view key.
	b := sim.NewViewBuilder(g, sim.Inputs{})
	for tRad := 0; tRad <= 2; tRad++ {
		for v := 0; v < g.N(); v++ {
			if b.View(v, tRad).Key() != sim.BuildView(g, sim.Inputs{}, v, tRad).Key() {
				t.Fatalf("view builder and direct recursion diverge at node %d radius %d", v, tRad)
			}
		}
	}
}
