package graph

import (
	"fmt"
	"math/rand"
)

// Ring returns the cycle C_n (2-regular, girth n). Requires n ≥ 3.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n >= 3, got %d", n)
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// RingUniform returns C_n with rotationally homogeneous port numbers:
// every node's port 0 leads to its predecessor and port 1 to its
// successor. Homogeneous classes built over it (all orientations, all
// colorings) are t-independent, matching the paper's regular high-girth
// classes.
func RingUniform(n int) (*Graph, error) {
	g, err := Ring(n)
	if err != nil {
		return nil, err
	}
	// Ring assigns node 0's ports in insertion order (successor first);
	// swap to match every other node's (predecessor, successor) order.
	g.SwapPorts(0, 0, 1)
	return g, nil
}

// Path returns the path P_n on n nodes.
func Path(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: path needs n >= 1, got %d", n)
	}
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: complete graph needs n >= 1, got %d", n)
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := b.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// CompleteBipartite returns K_{a,b} (girth 4 when a, b ≥ 2).
func CompleteBipartite(a, b int) (*Graph, error) {
	if a < 1 || b < 1 {
		return nil, fmt.Errorf("graph: complete bipartite needs positive parts")
	}
	bd := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			if err := bd.AddEdge(u, a+v); err != nil {
				return nil, err
			}
		}
	}
	return bd.Build(), nil
}

// RegularTree returns the Δ-regular tree of the given depth truncated at
// the leaves: the root has Δ children, internal nodes Δ−1 children, leaves
// none. (Leaves have degree 1, so the tree is Δ-regular only internally;
// it is the canonical high-girth neighborhood structure.)
func RegularTree(delta, depth int) (*Graph, error) {
	if delta < 1 || depth < 0 {
		return nil, fmt.Errorf("graph: regular tree needs Δ >= 1, depth >= 0")
	}
	type qe struct{ id, depth int }
	nodes := 1
	b := &Builder{seen: map[[2]int]bool{}}
	queue := []qe{{0, 0}}
	var pairs [][2]int
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.depth == depth {
			continue
		}
		children := delta - 1
		if cur.id == 0 {
			children = delta
		}
		for c := 0; c < children; c++ {
			child := nodes
			nodes++
			pairs = append(pairs, [2]int{cur.id, child})
			queue = append(queue, qe{child, cur.depth + 1})
		}
	}
	b.n = nodes
	for _, p := range pairs {
		if err := b.AddEdge(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Torus returns the w×h grid torus (4-regular, girth 4 for w,h ≥ 5...
// girth min(4, w, h)). Requires w, h ≥ 3.
func Torus(w, h int) (*Graph, error) {
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("graph: torus needs w, h >= 3")
	}
	b := NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if err := b.AddEdge(id(x, y), id((x+1)%w, y)); err != nil {
				return nil, err
			}
			if err := b.AddEdge(id(x, y), id(x, (y+1)%h)); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// RandomRegular samples a Δ-regular simple graph on n nodes via the
// configuration model with rejection, using rng. Requires n·Δ even and
// n > Δ. It retries until a simple graph is produced.
func RandomRegular(n, delta int, rng *rand.Rand) (*Graph, error) {
	if n*delta%2 != 0 {
		return nil, fmt.Errorf("graph: random regular needs n*Δ even (n=%d, Δ=%d)", n, delta)
	}
	if n <= delta {
		return nil, fmt.Errorf("graph: random regular needs n > Δ (n=%d, Δ=%d)", n, delta)
	}
	const maxAttempts = 20000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if g, ok := tryConfigurationModel(n, delta, rng); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: random regular: no simple graph after %d attempts", maxAttempts)
}

// tryConfigurationModel pairs stubs like the configuration model but,
// instead of rejecting the whole pairing on a collision, greedily matches
// each stub with the first compatible remaining stub (no loop, no
// multi-edge) and only rejects when none exists. This departs slightly
// from the uniform distribution (acceptable for test workloads; the
// uniform rejection variant has success probability e^(-Θ(Δ²)) and is
// hopeless for dense Δ).
func tryConfigurationModel(n, delta int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*delta)
	for v := 0; v < n; v++ {
		for i := 0; i < delta; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	adjacent := make(map[[2]int]bool, n*delta/2)
	b := NewBuilder(n)
	for len(stubs) > 0 {
		u := stubs[len(stubs)-1]
		stubs = stubs[:len(stubs)-1]
		matched := -1
		for i := len(stubs) - 1; i >= 0; i-- {
			v := stubs[i]
			if v == u {
				continue
			}
			key := [2]int{min(u, v), max(u, v)}
			if adjacent[key] {
				continue
			}
			matched = i
			adjacent[key] = true
			if err := b.AddEdge(u, v); err != nil {
				return nil, false
			}
			break
		}
		if matched == -1 {
			return nil, false
		}
		stubs = append(stubs[:matched], stubs[matched+1:]...)
	}
	return b.Build(), true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RandomRegularHighGirth samples Δ-regular graphs until one with girth at
// least minGirth is found. High-girth regular graphs exist for
// n ≥ some function of (Δ, girth) (the paper cites Bollobás, Extremal
// Graph Theory, Ch. III Thm 1.4'); for the moderate girths the test
// harness needs, rejection sampling finds them quickly once n is large
// enough.
func RandomRegularHighGirth(n, delta, minGirth, attempts int, rng *rand.Rand) (*Graph, error) {
	for i := 0; i < attempts; i++ {
		g, err := RandomRegular(n, delta, rng)
		if err != nil {
			return nil, err
		}
		girth := g.Girth()
		if girth == -1 || girth >= minGirth {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no Δ=%d graph on %d nodes with girth >= %d after %d samples",
		delta, n, minGirth, attempts)
}

// Petersen returns the Petersen graph (3-regular, girth 5, n = 10).
func Petersen() *Graph {
	b := NewBuilder(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	for _, group := range [][][2]int{outer, spokes, inner} {
		for _, e := range group {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				panic(err) // static construction; cannot fail
			}
		}
	}
	return b.Build()
}
