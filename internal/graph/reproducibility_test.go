package graph_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// graphFingerprint renders the full port-numbered structure.
func graphFingerprint(g *graph.Graph) string {
	out := ""
	for v := 0; v < g.N(); v++ {
		for port := 0; port < g.Degree(v); port++ {
			w, id, wPort := g.Neighbor(v, port)
			out += fmt.Sprintf("(%d.%d->%d.%d#%d)", v, port, w, wPort, id)
		}
	}
	return out
}

// TestSeededGenerationIsReproducible pins the explicit-randomness
// contract the oracle and conformance harness rely on: every generator
// takes an injected *rand.Rand, and the same seed yields byte-identical
// graphs, shuffles, orientations, and identifier assignments.
func TestSeededGenerationIsReproducible(t *testing.T) {
	build := func(seed int64) (string, string, string) {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.RandomRegular(16, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		g.ShufflePorts(rng)
		orient := graph.RandomOrientation(g, rng)
		ids, err := graph.UniqueIDs(g, 64, rng)
		if err != nil {
			t.Fatal(err)
		}
		return graphFingerprint(g), fmt.Sprint(orient.Toward), fmt.Sprint(ids)
	}
	g1, o1, i1 := build(42)
	g2, o2, i2 := build(42)
	if g1 != g2 || o1 != o2 || i1 != i2 {
		t.Fatal("identical seeds produced different graphs/orientations/ids")
	}
	g3, _, _ := build(43)
	if g1 == g3 {
		t.Fatal("different seeds produced identical graphs (suspicious rng plumbing)")
	}
}
