package graph

import (
	"math/rand"
	"testing"
)

func TestRing(t *testing.T) {
	g, err := Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.M() != 8 {
		t.Fatalf("ring(8): n=%d m=%d", g.N(), g.M())
	}
	if !g.IsRegular() || g.MaxDegree() != 2 {
		t.Error("ring not 2-regular")
	}
	if girth := g.Girth(); girth != 8 {
		t.Errorf("ring girth = %d, want 8", girth)
	}
	if !g.Connected() {
		t.Error("ring not connected")
	}
}

func TestRingTooSmall(t *testing.T) {
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) should fail")
	}
}

func TestCompleteGraph(t *testing.T) {
	g, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 10 || g.Girth() != 3 {
		t.Errorf("K5: m=%d girth=%d", g.M(), g.Girth())
	}
}

func TestCompleteBipartiteGirth(t *testing.T) {
	g, err := CompleteBipartite(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Girth() != 4 {
		t.Errorf("K33 girth = %d, want 4", g.Girth())
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("petersen: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsRegular() || g.MaxDegree() != 3 {
		t.Error("petersen not 3-regular")
	}
	if g.Girth() != 5 {
		t.Errorf("petersen girth = %d, want 5", g.Girth())
	}
}

func TestRegularTree(t *testing.T) {
	g, err := RegularTree(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Root + 3 children + 3*2 grandchildren = 10 nodes.
	if g.N() != 10 {
		t.Errorf("tree nodes = %d, want 10", g.N())
	}
	if g.Girth() != -1 {
		t.Errorf("tree girth = %d, want -1 (acyclic)", g.Girth())
	}
	if g.Degree(0) != 3 {
		t.Errorf("root degree = %d, want 3", g.Degree(0))
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular() || g.MaxDegree() != 4 {
		t.Error("torus not 4-regular")
	}
	if g.Girth() != 4 {
		t.Errorf("torus girth = %d, want 4", g.Girth())
	}
}

func TestPortConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RandomRegular(20, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkPorts := func() {
		for v := 0; v < g.N(); v++ {
			for port := 0; port < g.Degree(v); port++ {
				w, id, wPort := g.Neighbor(v, port)
				w2, id2, vPort := g.Neighbor(w, wPort)
				if w2 != v || id2 != id || vPort != port {
					t.Fatalf("port cross-reference broken at (%d,%d)", v, port)
				}
				if g.PortOf(v, id) != port {
					t.Fatalf("PortOf inconsistent at (%d,%d)", v, port)
				}
			}
		}
	}
	checkPorts()
	g.ShufflePorts(rng)
	checkPorts()
}

func TestRandomRegularHighGirth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := RandomRegularHighGirth(60, 3, 5, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular() || g.MaxDegree() != 3 {
		t.Error("not 3-regular")
	}
	if girth := g.Girth(); girth != -1 && girth < 5 {
		t.Errorf("girth = %d, want >= 5", girth)
	}
}

func TestBuilderRejections(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Error(err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestOrientations(t *testing.T) {
	g, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{3, 1, 4, 5, 9, 2}
	o := OrientationByID(g, ids)
	for id := 0; id < g.M(); id++ {
		u, v, _, _ := g.EdgeEndpoints(id)
		toward := o.Toward[id]
		other := u
		if toward == u {
			other = v
		}
		if ids[toward] < ids[other] {
			t.Errorf("edge %d oriented toward smaller id", id)
		}
	}
	// Out-degrees sum to the number of edges.
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += o.OutDegree(g, v)
	}
	if sum != g.M() {
		t.Errorf("out-degree sum = %d, want %d", sum, g.M())
	}
}

func TestGreedyColorings(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := RandomRegular(30, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ec := GreedyEdgeColoring(g)
	if !ec.Valid(g) {
		t.Error("greedy edge coloring invalid")
	}
	if ec.K > 2*4-1 {
		t.Errorf("edge coloring uses %d colors, bound is 7", ec.K)
	}
	nc := GreedyNodeColoring(g)
	if !nc.Valid(g) {
		t.Error("greedy node coloring invalid")
	}
	if nc.K > 5 {
		t.Errorf("node coloring uses %d colors, bound is 5", nc.K)
	}
}

func TestRingEdgeColoring(t *testing.T) {
	for _, n := range []int{6, 7} {
		g, err := Ring(n)
		if err != nil {
			t.Fatal(err)
		}
		ec, err := RingEdgeColoring(g)
		if err != nil {
			t.Fatal(err)
		}
		if !ec.Valid(g) {
			t.Errorf("ring(%d) edge coloring invalid", n)
		}
		wantK := 2
		if n%2 == 1 {
			wantK = 3
		}
		if ec.K != wantK {
			t.Errorf("ring(%d) edge colors = %d, want %d", n, ec.K, wantK)
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	g, err := Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	ids, err := UniqueIDs(g, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 1 || id > 100 || seen[id] {
			t.Fatalf("bad id %d", id)
		}
		seen[id] = true
	}
	if _, err := UniqueIDs(g, 5, rng); err == nil {
		t.Error("id space smaller than n accepted")
	}
}

func TestSinklessOrientationCheck(t *testing.T) {
	g, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	o := Orientation{Toward: make([]int, g.M())}
	// Orient the ring consistently: every node gets out-degree 1.
	for id := 0; id < g.M(); id++ {
		u, v, _, _ := g.EdgeEndpoints(id)
		if (u+1)%g.N() == v {
			o.Toward[id] = v
		} else {
			o.Toward[id] = u
		}
	}
	if !o.IsSinkless(g) {
		t.Error("cyclic orientation reported as having a sink")
	}
}
