package graph

import (
	"fmt"
	"math/rand"
)

// This file provides the symmetry-breaking input labelings from Section 3
// of the paper: edge orientations, edge colorings, node colorings, and
// unique identifiers. All are "given in the natural way" (footnote 7):
// edge inputs are visible to both endpoints at round 0.

// Orientation assigns a direction to every edge: Toward[e] is the endpoint
// the edge points to.
type Orientation struct {
	Toward []int
}

// RandomOrientation orients every edge independently uniformly at random.
func RandomOrientation(g *Graph, rng *rand.Rand) Orientation {
	o := Orientation{Toward: make([]int, g.M())}
	for id := 0; id < g.M(); id++ {
		u, v, _, _ := g.EdgeEndpoints(id)
		if rng.Intn(2) == 0 {
			o.Toward[id] = u
		} else {
			o.Toward[id] = v
		}
	}
	return o
}

// OrientationByID orients every edge from the lower to the higher value of
// ids (ties are impossible for unique ids).
func OrientationByID(g *Graph, ids []int) Orientation {
	o := Orientation{Toward: make([]int, g.M())}
	for id := 0; id < g.M(); id++ {
		u, v, _, _ := g.EdgeEndpoints(id)
		if ids[u] < ids[v] {
			o.Toward[id] = v
		} else {
			o.Toward[id] = u
		}
	}
	return o
}

// OutDegree returns the number of edges oriented away from v.
func (o Orientation) OutDegree(g *Graph, v int) int {
	out := 0
	for port := 0; port < g.Degree(v); port++ {
		_, id, _ := g.Neighbor(v, port)
		if o.Toward[id] != v {
			out++
		}
	}
	return out
}

// IsSinkless reports whether every node has at least one outgoing edge.
func (o Orientation) IsSinkless(g *Graph) bool {
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 0 && o.OutDegree(g, v) == 0 {
			return false
		}
	}
	return true
}

// EdgeColoring assigns a color to every edge such that edges sharing an
// endpoint differ.
type EdgeColoring struct {
	Color []int
	K     int
}

// GreedyEdgeColoring properly colors the edges with at most 2Δ−1 colors by
// a greedy pass; sufficient as a symmetry-breaking input.
func GreedyEdgeColoring(g *Graph) EdgeColoring {
	delta := g.MaxDegree()
	maxColors := 2*delta - 1
	if maxColors < 1 {
		maxColors = 1
	}
	colors := make([]int, g.M())
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, maxColors+1)
	maxUsed := 0
	for id := 0; id < g.M(); id++ {
		for i := range used {
			used[i] = false
		}
		u, v, _, _ := g.EdgeEndpoints(id)
		for _, w := range []int{u, v} {
			for port := 0; port < g.Degree(w); port++ {
				_, other, _ := g.Neighbor(w, port)
				if other != id && colors[other] >= 0 {
					used[colors[other]] = true
				}
			}
		}
		for c := 0; ; c++ {
			if c >= len(used) {
				panic("graph: greedy edge coloring exceeded 2Δ-1 colors (internal error)")
			}
			if !used[c] {
				colors[id] = c
				if c+1 > maxUsed {
					maxUsed = c + 1
				}
				break
			}
		}
	}
	return EdgeColoring{Color: colors, K: maxUsed}
}

// RingEdgeColoring properly colors the edges of an even ring with 2 colors
// or an odd ring with 3, assuming node i is adjacent to i±1 mod n as built
// by Ring.
func RingEdgeColoring(g *Graph) (EdgeColoring, error) {
	n := g.N()
	if !g.IsRegular() || g.MaxDegree() != 2 {
		return EdgeColoring{}, fmt.Errorf("graph: ring edge coloring requires a 2-regular graph")
	}
	colors := make([]int, g.M())
	k := 2
	if n%2 == 1 {
		k = 3
	}
	for id := 0; id < g.M(); id++ {
		u, v, _, _ := g.EdgeEndpoints(id)
		// Edge {i, i+1} has u = i except for the wrap edge {0, n-1}.
		switch {
		case u == 0 && v == n-1:
			if n%2 == 1 {
				colors[id] = 2
			} else {
				colors[id] = 1
			}
		default:
			colors[id] = u % 2
		}
	}
	return EdgeColoring{Color: colors, K: k}, nil
}

// Valid reports whether the coloring is a proper edge coloring of g.
func (c EdgeColoring) Valid(g *Graph) bool {
	for v := 0; v < g.N(); v++ {
		seen := map[int]bool{}
		for port := 0; port < g.Degree(v); port++ {
			_, id, _ := g.Neighbor(v, port)
			if seen[c.Color[id]] {
				return false
			}
			seen[c.Color[id]] = true
		}
	}
	return true
}

// NodeColoring assigns a color to every node such that adjacent nodes
// differ.
type NodeColoring struct {
	Color []int
	K     int
}

// GreedyNodeColoring properly colors the nodes with at most Δ+1 colors.
func GreedyNodeColoring(g *Graph) NodeColoring {
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	maxUsed := 0
	used := make([]bool, g.MaxDegree()+2)
	for v := 0; v < g.N(); v++ {
		for i := range used {
			used[i] = false
		}
		for port := 0; port < g.Degree(v); port++ {
			w, _, _ := g.Neighbor(v, port)
			if colors[w] >= 0 {
				used[colors[w]] = true
			}
		}
		for c := 0; ; c++ {
			if !used[c] {
				colors[v] = c
				if c+1 > maxUsed {
					maxUsed = c + 1
				}
				break
			}
		}
	}
	return NodeColoring{Color: colors, K: maxUsed}
}

// Valid reports whether the coloring is a proper node coloring of g.
func (c NodeColoring) Valid(g *Graph) bool {
	for id := 0; id < g.M(); id++ {
		u, v, _, _ := g.EdgeEndpoints(id)
		if c.Color[u] == c.Color[v] {
			return false
		}
	}
	return true
}

// UniqueIDs returns a uniformly random injective assignment of ids from
// {1, ..., space} to the nodes. space must be at least n.
func UniqueIDs(g *Graph, space int, rng *rand.Rand) ([]int, error) {
	n := g.N()
	if space < n {
		return nil, fmt.Errorf("graph: id space %d smaller than n=%d", space, n)
	}
	perm := rng.Perm(space)[:n]
	ids := make([]int, n)
	for v := 0; v < n; v++ {
		ids[v] = perm[v] + 1
	}
	return ids, nil
}
