// Package independence implements the t-independence property of Section
// 3 of Brandt (PODC 2019) — the structural requirement on input-labeled
// graph classes under which the speedup theorem holds (illustrated by the
// paper's Figure 1) — and verifies it exhaustively on explicitly
// enumerated graph classes.
//
// Informally, a class is t-independent if fixing the radius-t extension of
// a neighborhood along one edge never constrains the possible extensions
// along the other edges. Inputs like edge orientations or colorings
// satisfy it; globally unique identifiers do not (an identifier seen in
// one extension excludes it from the others), which is why lifting the
// bounds to the LOCAL model needs the extra machinery of Sections 2.2
// and 4.3.
//
// Neighborhoods are compared by their port-numbered view serializations —
// exactly the indistinguishability relation available to an algorithm in
// the model, which is the relation the speedup proof manipulates.
package independence

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Labeled is one input-labeled graph of a class.
type Labeled struct {
	G  *graph.Graph
	In sim.Inputs
}

// Violation describes a failed independence check.
type Violation struct {
	Property int    // 1 (edge extensions) or 2 (node extensions)
	Detail   string // human-readable description
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("independence: property %d violated: %s", v.Property, v.Detail)
}

// CheckTIndependence exhaustively verifies both defining properties of
// t-independence over the given (finite, explicitly enumerated) class.
// It returns nil if the class is t-independent, a *Violation otherwise.
//
//   - Property 1: for every equivalence class of radius-t edge
//     neighborhoods, every combination of one observed extension per
//     endpoint is realized by a single graph of the class.
//   - Property 2: for every equivalence class of radius-(t−1) node
//     neighborhoods, every combination of one observed extension per
//     incident edge is realized by a single graph of the class.
func CheckTIndependence(class []Labeled, t int) error {
	if t < 1 {
		return fmt.Errorf("independence: t must be positive")
	}
	if err := checkProperty1(class, t); err != nil {
		return err
	}
	return checkProperty2(class, t)
}

// checkProperty1 verifies the edge-neighborhood property. The radius-t
// neighborhood of an edge {u, v} on the relevant (high-girth) classes is
// determined by the radius-(t−1) views of u and v plus the edge's own
// port pair and inputs; the extension along v is then determined by v's
// radius-t view.
func checkProperty1(class []Labeled, t int) error {
	type sides struct {
		a, b map[string]bool // observed extension keys per side
		both map[string]bool // observed joint keys
		desc string          // example description for error messages
	}
	groups := map[string]*sides{}
	for gi, lg := range class {
		builder := sim.NewViewBuilder(lg.G, lg.In)
		for id := 0; id < lg.G.M(); id++ {
			u, v, portU, portV := lg.G.EdgeEndpoints(id)
			baseU := builder.View(u, t-1).Key()
			baseV := builder.View(v, t-1).Key()
			extU := builder.View(u, t).Key()
			extV := builder.View(v, t).Key()
			// Orient the representation canonically so isomorphic edge
			// neighborhoods group together regardless of endpoint order.
			kA := sideKey(baseU, portU)
			kB := sideKey(baseV, portV)
			xA, xB := extU, extV
			if kB < kA {
				kA, kB = kB, kA
				xA, xB = xB, xA
			}
			groupKey := kA + "//" + kB + "//" + edgeInputKey(lg, id)
			s, ok := groups[groupKey]
			if !ok {
				s = &sides{
					a:    map[string]bool{},
					b:    map[string]bool{},
					both: map[string]bool{},
					desc: fmt.Sprintf("graph %d edge (%d,%d)", gi, u, v),
				}
				groups[groupKey] = s
			}
			s.a[xA] = true
			s.b[xB] = true
			s.both[xA+"||"+xB] = true
			if kA == kB {
				// Symmetric neighborhood: the swapped reading is equally
				// valid and must be recorded too.
				s.a[xB] = true
				s.b[xA] = true
				s.both[xB+"||"+xA] = true
			}
		}
	}
	for _, s := range groups {
		if len(s.both) != len(s.a)*len(s.b) {
			return &Violation{
				Property: 1,
				Detail: fmt.Sprintf("%s: %d×%d endpoint extensions but only %d joint realizations",
					s.desc, len(s.a), len(s.b), len(s.both)),
			}
		}
	}
	return nil
}

// checkProperty2 verifies the node-neighborhood property: per class of
// radius-(t−1) node views, the observed per-port extension tuples must
// form the full product of the per-port extension sets.
func checkProperty2(class []Labeled, t int) error {
	type tuples struct {
		perPort []map[string]bool
		joint   map[string]bool
		desc    string
	}
	groups := map[string]*tuples{}
	for gi, lg := range class {
		builder := sim.NewViewBuilder(lg.G, lg.In)
		for v := 0; v < lg.G.N(); v++ {
			base := builder.View(v, t-1).Key()
			d := lg.G.Degree(v)
			exts := make([]string, d)
			full := builder.View(v, t)
			for port := 0; port < d; port++ {
				exts[port] = portExtensionKey(full, port)
			}
			groupKey := base
			s, ok := groups[groupKey]
			if !ok {
				s = &tuples{
					perPort: make([]map[string]bool, d),
					joint:   map[string]bool{},
					desc:    fmt.Sprintf("graph %d node %d", gi, v),
				}
				for i := range s.perPort {
					s.perPort[i] = map[string]bool{}
				}
				groups[groupKey] = s
			}
			for port := 0; port < d; port++ {
				s.perPort[port][exts[port]] = true
			}
			s.joint[strings.Join(exts, "||")] = true
		}
	}
	for _, s := range groups {
		product := 1
		for _, m := range s.perPort {
			product *= len(m)
		}
		if len(s.joint) != product {
			return &Violation{
				Property: 2,
				Detail: fmt.Sprintf("%s: product of per-port extensions is %d but only %d joint realizations",
					s.desc, product, len(s.joint)),
			}
		}
	}
	return nil
}

// portExtensionKey serializes what a node learns through one port when
// extending its radius-(t−1) view to radius t: the subtree hanging off
// that port in the depth-t view.
func portExtensionKey(full *sim.View, port int) string {
	p := full.Ports[port]
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(int(p.Oriented)))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(p.EdgeColor))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(p.ReturnPort))
	sb.WriteByte(':')
	if p.Sub != nil {
		sb.WriteString(p.Sub.Key())
	}
	return sb.String()
}

func sideKey(base string, port int) string {
	return strconv.Itoa(port) + "@" + base
}

func edgeInputKey(lg Labeled, edgeID int) string {
	parts := []string{}
	if lg.In.Orientation != nil {
		parts = append(parts, "o"+strconv.Itoa(lg.In.Orientation.Toward[edgeID]))
	}
	if lg.In.EdgeColors != nil {
		parts = append(parts, "c"+strconv.Itoa(lg.In.EdgeColors.Color[edgeID]))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// OrientationClass returns the class of all 2^m orientations of a fixed
// port-numbered graph.
func OrientationClass(g *graph.Graph) []Labeled {
	m := g.M()
	if m > 20 {
		panic("independence: orientation class too large to enumerate")
	}
	out := make([]Labeled, 0, 1<<uint(m))
	for mask := 0; mask < 1<<uint(m); mask++ {
		o := graph.Orientation{Toward: make([]int, m)}
		for id := 0; id < m; id++ {
			u, v, _, _ := g.EdgeEndpoints(id)
			if mask&(1<<uint(id)) != 0 {
				o.Toward[id] = u
			} else {
				o.Toward[id] = v
			}
		}
		oCopy := o
		out = append(out, Labeled{G: g, In: sim.Inputs{Orientation: &oCopy}})
	}
	return out
}

// EdgeColoringClass returns the class of all proper k-edge-colorings of a
// fixed port-numbered graph.
func EdgeColoringClass(g *graph.Graph, k int) []Labeled {
	var out []Labeled
	colors := make([]int, g.M())
	var rec func(id int)
	rec = func(id int) {
		if id == g.M() {
			c := graph.EdgeColoring{Color: append([]int(nil), colors...), K: k}
			out = append(out, Labeled{G: g, In: sim.Inputs{EdgeColors: &c}})
			return
		}
		u, v, _, _ := g.EdgeEndpoints(id)
		for c := 0; c < k; c++ {
			ok := true
			for _, w := range []int{u, v} {
				for port := 0; port < g.Degree(w) && ok; port++ {
					_, other, _ := g.Neighbor(w, port)
					if other < id && colors[other] == c {
						ok = false
					}
				}
			}
			if ok {
				colors[id] = c
				rec(id + 1)
			}
		}
	}
	rec(0)
	return out
}

// UniqueIDClass returns the class of all injective assignments of IDs
// {1..space} to a fixed port-numbered graph.
func UniqueIDClass(g *graph.Graph, space int) []Labeled {
	n := g.N()
	if space < n {
		panic("independence: id space smaller than graph")
	}
	var out []Labeled
	ids := make([]int, n)
	used := make([]bool, space+1)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			out = append(out, Labeled{G: g, In: sim.Inputs{IDs: append([]int(nil), ids...)}})
			return
		}
		for id := 1; id <= space; id++ {
			if used[id] {
				continue
			}
			used[id] = true
			ids[v] = id
			rec(v + 1)
			used[id] = false
		}
	}
	rec(0)
	return out
}
