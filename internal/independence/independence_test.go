package independence

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// ring returns C_n: the classes must be homogeneous (no boundary
// asymmetry) for independence to hold, exactly as in the paper's regular
// high-girth classes; a ring with girth ≥ 2t+2 is the smallest example.
func ring(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.RingUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOrientationsAreIndependent reproduces the positive side of the
// Figure 1 discussion: edge orientations satisfy t-independence.
func TestOrientationsAreIndependent(t *testing.T) {
	if err := CheckTIndependence(OrientationClass(ring(t, 6)), 1); err != nil {
		t.Errorf("orientations on C6, t=1: %v", err)
	}
	if err := CheckTIndependence(OrientationClass(ring(t, 8)), 2); err != nil {
		t.Errorf("orientations on C8, t=2: %v", err)
	}
}

// TestEdgeColoringsAreIndependent: proper edge colorings also satisfy the
// property (the color of one extension never constrains another, beyond
// what the shared neighborhood already fixes).
func TestEdgeColoringsAreIndependent(t *testing.T) {
	class := EdgeColoringClass(ring(t, 6), 3)
	if len(class) == 0 {
		t.Fatal("empty coloring class")
	}
	if err := CheckTIndependence(class, 1); err != nil {
		t.Errorf("edge colorings: %v", err)
	}
}

// TestUniqueIDsAreNotIndependent reproduces the paper's negative example
// (Section 2.2): with globally unique identifiers, an ID appearing in the
// extension along one edge cannot appear in the extension along another,
// so the joint realizations fall short of the product.
func TestUniqueIDsAreNotIndependent(t *testing.T) {
	g := ring(t, 6)
	class := UniqueIDClass(g, 6)
	err := CheckTIndependence(class, 2)
	if err == nil {
		t.Fatal("unique IDs reported t-independent")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("unexpected error type: %v", err)
	}
	t.Logf("expected violation: %v", v)
}

// TestMixedInputsIndependent: orientations plus edge colorings together
// remain independent (combinations of independent-style inputs).
func TestMixedInputsIndependent(t *testing.T) {
	g := ring(t, 6)
	var class []Labeled
	for _, oc := range OrientationClass(g) {
		for _, cc := range EdgeColoringClass(g, 3) {
			in := sim.Inputs{Orientation: oc.In.Orientation, EdgeColors: cc.In.EdgeColors}
			class = append(class, Labeled{G: g, In: in})
		}
	}
	if err := CheckTIndependence(class, 1); err != nil {
		t.Errorf("mixed inputs: %v", err)
	}
}

func TestRejectsNonPositiveT(t *testing.T) {
	if err := CheckTIndependence(nil, 0); err == nil {
		t.Error("t=0 accepted")
	}
}
