package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
)

// Problem is a locally checkable problem instantiated at a fixed maximum
// degree Δ, per Section 3 of the paper: an alphabet of output labels
// (f(Δ)), an edge constraint g(Δ) of 2-element multisets, and a node
// constraint h(Δ) of Δ-element multisets.
//
// The paper's f, g, h are functions of Δ; a Problem value is their value at
// one Δ, which is what the speedup transformation operates on (exactly as
// in the paper's worked examples, Sections 4.4–4.6 and 5.1).
type Problem struct {
	Alpha *Alphabet
	Edge  Constraint // g(Δ), arity 2
	Node  Constraint // h(Δ), arity Δ
}

// NewProblem assembles and validates a problem.
func NewProblem(alpha *Alphabet, edge, node Constraint) (*Problem, error) {
	p := &Problem{Alpha: alpha, Edge: edge, Node: node}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Delta returns the node-constraint arity Δ.
func (p *Problem) Delta() int { return p.Node.Arity() }

// Validate checks structural invariants: the edge constraint has arity 2,
// and every label referenced by a configuration exists in the alphabet.
func (p *Problem) Validate() error {
	if p.Alpha == nil {
		return fmt.Errorf("core: problem has nil alphabet")
	}
	if p.Edge.Arity() != 2 {
		return fmt.Errorf("core: edge constraint has arity %d, want 2", p.Edge.Arity())
	}
	if p.Node.Arity() < 1 {
		return fmt.Errorf("core: node constraint has arity %d, want >= 1", p.Node.Arity())
	}
	n := p.Alpha.Size()
	for _, c := range []Constraint{p.Edge, p.Node} {
		for _, cfg := range c.Configs() {
			for _, l := range cfg.Support() {
				if int(l) < 0 || int(l) >= n {
					return fmt.Errorf("core: config references label %d outside alphabet of size %d", l, n)
				}
			}
		}
	}
	return nil
}

// UsableLabels returns the labels that occur in at least one edge
// configuration and at least one node configuration — the only labels that
// can appear in a correct solution (Section 4.2, "compress the problem
// description").
func (p *Problem) UsableLabels() bitset.Set {
	e := p.Edge.UsedLabels(p.Alpha.Size())
	h := p.Node.UsedLabels(p.Alpha.Size())
	return e.Intersect(h)
}

// Compress iteratively removes labels that cannot occur in any correct
// solution (those missing from the edge or the node constraint) and the
// configurations that use them, until a fixed point. The result is an
// equivalent problem in the sense of the paper's Section 4.2 convention.
func (p *Problem) Compress() *Problem {
	cur := p
	for {
		keep := cur.UsableLabels()
		if keep.Count() == cur.Alpha.Size() {
			return cur
		}
		na, remap := restrictedAlphabet(cur.Alpha, keep)
		next := &Problem{
			Alpha: na,
			Edge:  cur.Edge.Restrict(keep, remap),
			Node:  cur.Node.Restrict(keep, remap),
		}
		cur = next
		if keep.Empty() {
			return cur
		}
	}
}

// RenameCompact returns an equivalent problem whose labels carry short
// fresh names (A, B, ...), in the canonical order of the old names, along
// with the mapping from new names to old names. Useful after a speedup
// step, whose derived names are nested set expressions. Names are part
// of the String/Parse boundary and stay strings; the constraint remaps
// underneath run on the interned (handle-keyed) representation.
func (p *Problem) RenameCompact() (*Problem, map[string]string) {
	order := sortedLabels(p.Alpha)
	fresh := compactNames(len(order))
	na := &Alphabet{index: make(map[string]Label, len(order))}
	remap := make(map[Label]Label, len(order))
	backing := make(map[string]string, len(order))
	for i, old := range order {
		if err := na.add(fresh[i]); err != nil {
			panic(fmt.Sprintf("core: rename: %v", err))
		}
		if p.Alpha.provenance != nil {
			na.provenance = append(na.provenance, p.Alpha.provenance[old])
		}
		remap[old] = Label(i)
		backing[fresh[i]] = p.Alpha.Name(old)
	}
	edge, err := p.Edge.Remap(remap)
	if err != nil {
		panic(fmt.Sprintf("core: rename: %v", err))
	}
	node, err := p.Node.Remap(remap)
	if err != nil {
		panic(fmt.Sprintf("core: rename: %v", err))
	}
	return &Problem{Alpha: na, Edge: edge, Node: node}, backing
}

// Stats summarizes a problem's description complexity.
type Stats struct {
	Labels      int
	EdgeConfigs int
	NodeConfigs int
	Delta       int
}

// Stats returns the description-size statistics of the problem.
func (p *Problem) Stats() Stats {
	return Stats{
		Labels:      p.Alpha.Size(),
		EdgeConfigs: p.Edge.Size(),
		NodeConfigs: p.Node.Size(),
		Delta:       p.Delta(),
	}
}

// String renders the problem in the text format accepted by Parse. The
// rendering is canonical with respect to label numbering: parts within
// a line are ordered by label name and lines lexicographically, so two
// problems with the same names and the same constraint sets render
// identically no matter how their labels are numbered (and
// parse → format is idempotent after one round-trip).
func (p *Problem) String() string {
	var sb strings.Builder
	sb.WriteString("node:\n")
	for _, line := range renderedLines(p.Node, p.Alpha) {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	sb.WriteString("edge:\n")
	for _, line := range renderedLines(p.Edge, p.Alpha) {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// renderedLines renders each configuration of c in the multiplicity
// shorthand with name-sorted parts, returning the lines sorted.
func renderedLines(c Constraint, a *Alphabet) []string {
	lines := make([]string, 0, c.Size())
	for _, cfg := range c.Configs() {
		parts := make([]string, 0, 4)
		cfg.ForEach(func(l Label, count int) {
			if count == 1 {
				parts = append(parts, a.Name(l))
			} else {
				parts = append(parts, fmt.Sprintf("%s^%d", a.Name(l), count))
			}
		})
		sort.Strings(parts)
		lines = append(lines, strings.Join(parts, " "))
	}
	sort.Strings(lines)
	return lines
}

// Equal reports whether two problems are identical (same label names in the
// same order, same constraint sets). For equality up to label renaming use
// Isomorphic.
func (p *Problem) Equal(q *Problem) bool {
	if p.Alpha.Size() != q.Alpha.Size() {
		return false
	}
	for i := 0; i < p.Alpha.Size(); i++ {
		if p.Alpha.Name(Label(i)) != q.Alpha.Name(Label(i)) {
			return false
		}
	}
	return p.Edge.Equal(q.Edge) && p.Node.Equal(q.Node)
}
