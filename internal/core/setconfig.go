package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/bitset"
)

// setConfig is a multiset of label sets (the candidate node configurations
// of the derived problem Π'_1): groups are sorted by set key and hold
// multiplicities, mirroring Config but with set-valued entries.
type setConfig struct {
	groups []setGroup
}

type setGroup struct {
	set   bitset.Set
	count int
}

// newSetConfig normalizes groups: merges equal sets and sorts by key.
func newSetConfig(groups []setGroup) setConfig {
	merged := map[string]setGroup{}
	for _, g := range groups {
		if g.count == 0 {
			continue
		}
		k := g.set.Key()
		if prev, ok := merged[k]; ok {
			prev.count += g.count
			merged[k] = prev
		} else {
			merged[k] = setGroup{set: g.set, count: g.count}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]setGroup, len(keys))
	for i, k := range keys {
		out[i] = merged[k]
	}
	return setConfig{groups: out}
}

// singletonSetConfig converts an ordinary configuration into a set-config
// of singleton sets over an alphabet of the given size.
func singletonSetConfig(cfg Config, alphabetSize int) setConfig {
	groups := make([]setGroup, 0, 4)
	cfg.ForEach(func(l Label, count int) {
		s := bitset.New(alphabetSize)
		s.Add(int(l))
		groups = append(groups, setGroup{set: s, count: count})
	})
	return newSetConfig(groups)
}

// key returns a canonical identity string.
func (sc setConfig) key() string {
	var sb strings.Builder
	for _, g := range sc.groups {
		sb.WriteString(g.set.Key())
		sb.WriteByte('#')
		sb.WriteString(strconv.Itoa(g.count))
		sb.WriteByte('|')
	}
	return sb.String()
}

// arity returns the total slot count.
func (sc setConfig) arity() int {
	total := 0
	for _, g := range sc.groups {
		total += g.count
	}
	return total
}

// withLabelAdded returns the set-config obtained by adding label l to one
// copy of group gi (splitting the group if its multiplicity exceeds 1).
func (sc setConfig) withLabelAdded(gi int, l Label) setConfig {
	groups := make([]setGroup, 0, len(sc.groups)+1)
	for i, g := range sc.groups {
		if i != gi {
			groups = append(groups, g)
			continue
		}
		if g.count > 1 {
			groups = append(groups, setGroup{set: g.set, count: g.count - 1})
		}
		ext := g.set.Clone()
		ext.Add(int(l))
		groups = append(groups, setGroup{set: ext, count: 1})
	}
	return newSetConfig(groups)
}

// withoutOneOf returns the set-config with one copy of group gi removed.
func (sc setConfig) withoutOneOf(gi int) setConfig {
	groups := make([]setGroup, 0, len(sc.groups))
	for i, g := range sc.groups {
		if i == gi {
			if g.count > 1 {
				groups = append(groups, setGroup{set: g.set, count: g.count - 1})
			}
			continue
		}
		groups = append(groups, g)
	}
	return setConfig{groups: groups}
}

// allChoicesIn reports whether every choice multiset (pick one element per
// slot) together with the labels in extra belongs to h. It enumerates
// choice multisets group-wise (combinations with repetition), which keeps
// the work polynomial in the number of distinct choice multisets rather
// than exponential in the arity.
func (sc setConfig) allChoicesIn(h Constraint, extra []Label) bool {
	counts := make(map[Label]int, 8)
	for _, l := range extra {
		counts[l]++
	}
	var rec func(gi int) bool
	rec = func(gi int) bool {
		if gi == len(sc.groups) {
			c, err := NewConfigCounts(counts)
			if err != nil {
				return false
			}
			return h.Contains(c)
		}
		g := sc.groups[gi]
		members := g.set.Indices()
		var choose func(start, remaining int) bool
		choose = func(start, remaining int) bool {
			if remaining == 0 {
				return rec(gi + 1)
			}
			for i := start; i < len(members); i++ {
				l := Label(members[i])
				counts[l]++
				ok := choose(i, remaining-1)
				counts[l]--
				if counts[l] == 0 {
					delete(counts, l)
				}
				if !ok {
					return false
				}
			}
			return true
		}
		return choose(0, g.count)
	}
	return rec(0)
}

// maximalNodeSetConfigs enumerates the maximal set-configurations
// {W_1, ..., W_Δ} such that every choice w_i ∈ W_i is a configuration of
// half.Node — the node constraint of the simplified derived problem Π'_1
// (Property 6 of Section 4.2).
//
// Algorithm: closure under the "combine" operation with antichain
// (domination) pruning. Combining two valid set-configs A, B means fixing
// a perfect matching between their slots, taking the union at one matched
// pair and intersections at all others. The result is always valid: a
// choice picking from the A-side of the union slot picks entrywise from A
// (intersections are subsets of A's entries), and symmetrically for B.
//
// Completeness (every maximal valid config ends up in the antichain), by
// induction on the total size of a valid config V: split one entry of V as
// X1 ∪ X2; the two smaller valid configs are dominated by antichain
// members W1, W2 by induction, and combining W1 with W2 under the matching
// that aligns the dominated slots yields a config dominating V. Domination
// pruning is safe because combinations from a dominator dominate the
// corresponding combinations from the dominated config.
//
// Configurations with an empty entry are discarded: they are vacuously
// valid but cannot occur in a solution (the empty label survives no edge
// constraint), and the completeness induction never needs them.
// scItem wraps a set-config with cached invariants that let most
// domination tests fail fast.
type scItem struct {
	sc          setConfig
	sortedSizes []int      // entry sizes ascending
	union       bitset.Set // union of all entries
	total       int        // sum of entry sizes
}

func newSCItem(sc setConfig, alphabetSize int) scItem {
	it := scItem{sc: sc, union: bitset.New(alphabetSize)}
	for _, g := range sc.groups {
		sz := g.set.Count()
		for c := 0; c < g.count; c++ {
			it.sortedSizes = append(it.sortedSizes, sz)
			it.total += sz
		}
		it.union.UnionInPlace(g.set)
	}
	sort.Ints(it.sortedSizes)
	return it
}

// dominatedBy reports whether a ⊑ b, using the cached invariants as
// necessary-condition prefilters before the bipartite matching test.
func (a scItem) dominatedBy(b scItem) bool {
	if a.total > b.total || len(a.sortedSizes) != len(b.sortedSizes) {
		return false
	}
	for i, sz := range a.sortedSizes {
		// If a slot-size bijection with entrywise ⊆ exists, the ascending
		// size sequences are pointwise ordered.
		if sz > b.sortedSizes[i] {
			return false
		}
	}
	if !a.union.SubsetOf(b.union) {
		return false
	}
	return a.sc.dominatedBy(b.sc)
}

// maximalNodeSetConfigs dispatches to the configured enumeration strategy.
func maximalNodeSetConfigs(half *Problem, o speedupOptions) ([]setConfig, error) {
	switch o.strategy {
	case StrategyCombine:
		return maximalNodeSetConfigsCombine(half, o.maxStates)
	default:
		return maximalNodeSetConfigsExplore(half, o)
	}
}

// maximalNodeSetConfigsExplore enumerates maximal valid set-configurations
// by upward exploration: starting from the configurations of half.Node (as
// singleton set-configs), repeatedly add a single label to a single slot,
// keeping only additions that preserve validity ("every choice lies in
// half.Node"). Every intermediate state on the way to a maximal
// configuration T is entrywise between one of T's choice lines and T
// itself, hence valid, so the exploration is complete; a configuration
// with no valid single-label extension is maximal because supersets of
// invalid configurations are invalid.
//
// The state space is the set of all valid set-configurations, which is the
// right trade-off when that space is moderate (e.g. the weak 2-coloring
// derivation of Section 4.6 for Δ up to ~8). For problems with a large
// valid space but a small antichain, use StrategyCombine.
//
// The exploration is level-synchronous: each frontier of newly visited
// configurations is expanded in parallel (the validity checks dominate
// the cost and are independent per state), and the results are merged
// sequentially in frontier order. Because the reachable closure, the
// maximal subset, and the sorted output are all schedule-independent,
// every worker count produces byte-identical results, including the
// budget-exceeded failure point.
func maximalNodeSetConfigsExplore(half *Problem, o speedupOptions) ([]setConfig, error) {
	n := half.Alpha.Size()
	if half.Delta() > 255 {
		return nil, fmt.Errorf("core: second half step: Δ=%d exceeds the supported 255", half.Delta())
	}
	valid := newFastNodeSet(half)
	maxStates := o.maxStates

	visited := map[string]bool{}
	maximal := map[string]setConfig{}
	var frontier []setConfig
	for _, cfg := range half.Node.Configs() {
		sc := singletonSetConfig(cfg, n)
		k := sc.key()
		if !visited[k] {
			visited[k] = true
			frontier = append(frontier, sc)
		}
	}

	// Extension-validity results are shared across workers and levels:
	// the check for (reduced config, label) does not depend on which
	// state asked, so duplicated concurrent computation is harmless and
	// the cache stays coherent.
	var extMemo sync.Map
	type candidate struct {
		sc  setConfig
		key string
	}
	type expansion struct {
		extended bool
		next     []candidate
	}
	for len(frontier) > 0 {
		results := make([]expansion, len(frontier))
		workers := o.workerCount(len(frontier))
		runIndexed(workers, len(frontier), func(i int) {
			sc := frontier[i]
			var ex expansion
			for gi := range sc.groups {
				g := sc.groups[gi]
				reduced := sc.withoutOneOf(gi)
				reducedKey := reduced.key()
				for l := 0; l < n; l++ {
					if g.set.Contains(l) {
						continue
					}
					// Adding l to one copy of group gi introduces exactly
					// the choices where that copy picks l; all other
					// choices are choices of sc and already valid.
					memoKey := reducedKey + "+" + strconv.Itoa(l)
					var ok bool
					if v, seen := extMemo.Load(memoKey); seen {
						ok = v.(bool)
					} else {
						ok = valid.allChoices(reduced.groups, Label(l))
						extMemo.Store(memoKey, ok)
					}
					if !ok {
						continue
					}
					ex.extended = true
					next := sc.withLabelAdded(gi, Label(l))
					ex.next = append(ex.next, candidate{sc: next, key: next.key()})
				}
			}
			results[i] = ex
		})

		// Sequential merge, in frontier order: dedupe against the global
		// visited set and enforce the budget. Keys were computed in the
		// parallel phase, so this is map traffic only.
		next := frontier[:0:0]
		for i, sc := range frontier {
			if !results[i].extended {
				maximal[sc.key()] = sc
				continue
			}
			for _, cand := range results[i].next {
				if !visited[cand.key] {
					if len(visited) >= maxStates {
						return nil, fmt.Errorf("core: second half step: exceeded state budget of %d set-configurations: %w", maxStates, ErrStateBudget)
					}
					visited[cand.key] = true
					next = append(next, cand.sc)
				}
			}
		}
		frontier = next
	}

	keys := make([]string, 0, len(maximal))
	for k := range maximal {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]setConfig, len(keys))
	for i, k := range keys {
		out[i] = maximal[k]
	}
	return out, nil
}

// fastNodeSet is a multiplicity-vector index of a node constraint for fast
// "is this choice multiset allowed" queries during enumeration.
type fastNodeSet struct {
	m   int
	set map[string]bool
}

func newFastNodeSet(p *Problem) fastNodeSet {
	f := fastNodeSet{m: p.Alpha.Size(), set: make(map[string]bool, p.Node.Size())}
	for _, cfg := range p.Node.Configs() {
		counts := make([]byte, f.m)
		cfg.ForEach(func(l Label, c int) { counts[l] = byte(c) })
		f.set[string(counts)] = true
	}
	return f
}

// allChoices reports whether every choice multiset from groups, plus one
// occurrence of extra, is an allowed configuration.
func (f fastNodeSet) allChoices(groups []setGroup, extra Label) bool {
	counts := make([]byte, f.m)
	counts[extra]++
	members := make([][]int, len(groups))
	for i, g := range groups {
		members[i] = g.set.Indices()
	}
	var rec func(gi int) bool
	rec = func(gi int) bool {
		if gi == len(groups) {
			return f.set[string(counts)]
		}
		g := groups[gi]
		var choose func(start, remaining int) bool
		choose = func(start, remaining int) bool {
			if remaining == 0 {
				return rec(gi + 1)
			}
			for i := start; i < len(members[gi]); i++ {
				l := members[gi][i]
				counts[l]++
				ok := choose(i, remaining-1)
				counts[l]--
				if !ok {
					return false
				}
			}
			return true
		}
		return choose(0, g.count)
	}
	return rec(0)
}

// maximalNodeSetConfigsCombine enumerates maximal valid set-configurations
// via closure under the combine operation with antichain pruning; see the
// package documentation of combineAll. Better suited than exploration when
// the space of valid configurations is huge but the antichain is small.
func maximalNodeSetConfigsCombine(half *Problem, maxStates int) ([]setConfig, error) {
	n := half.Alpha.Size()

	var items []scItem
	var alive []bool
	seen := map[string]bool{}

	insert := func(sc setConfig) error {
		k := sc.key()
		if seen[k] {
			// Already processed; if it was killed, its dominator covers it.
			return nil
		}
		seen[k] = true
		it := newSCItem(sc, n)
		for i := range items {
			if alive[i] && it.dominatedBy(items[i]) {
				return nil
			}
		}
		for i := range items {
			if alive[i] && items[i].dominatedBy(it) {
				alive[i] = false
			}
		}
		if len(items) >= maxStates {
			return fmt.Errorf("core: second half step: exceeded state budget of %d set-configurations: %w", maxStates, ErrStateBudget)
		}
		items = append(items, it)
		alive = append(alive, true)
		return nil
	}

	for _, cfg := range half.Node.Configs() {
		if err := insert(singletonSetConfig(cfg, n)); err != nil {
			return nil, err
		}
	}

	for i := 0; i < len(items); i++ {
		if !alive[i] {
			continue
		}
		for j := 0; j <= i && alive[i]; j++ {
			if !alive[j] {
				continue
			}
			var combineErr error
			combineAll(items[i].sc, items[j].sc, func(c setConfig) bool {
				if combineErr == nil {
					combineErr = insert(c)
				}
				return combineErr == nil
			})
			if combineErr != nil {
				return nil, combineErr
			}
		}
	}

	maximal := map[string]setConfig{}
	for i, it := range items {
		if alive[i] {
			maximal[it.sc.key()] = it.sc
		}
	}
	keys := make([]string, 0, len(maximal))
	for k := range maximal {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]setConfig, len(keys))
	for i, k := range keys {
		out[i] = maximal[k]
	}
	return out, nil
}

// combineAll enumerates the results of combining set-configs a and b under
// every perfect slot matching and every choice of union slot, emitting
// each candidate that has no empty entry. Matchings are enumerated as
// contingency tables between the group multiplicities, which collapses the
// factorially many slot matchings to their distinct outcomes. emit returns
// false to stop early.
func combineAll(a, b setConfig, emit func(setConfig) bool) {
	ra, rb := len(a.groups), len(b.groups)
	if ra == 0 || rb == 0 {
		return
	}
	// inter[i][j] caches A_i ∩ B_j.
	inter := make([][]bitset.Set, ra)
	for i := range inter {
		inter[i] = make([]bitset.Set, rb)
		for j := range inter[i] {
			inter[i][j] = a.groups[i].set.Intersect(b.groups[j].set)
		}
	}

	rowRemaining := make([]int, ra)
	for i := range rowRemaining {
		rowRemaining[i] = a.groups[i].count
	}
	colRemaining := make([]int, rb)
	for j := range colRemaining {
		colRemaining[j] = b.groups[j].count
	}
	table := make([][]int, ra)
	for i := range table {
		table[i] = make([]int, rb)
	}

	emitTable := func() bool {
		// At most one slot may sit on an empty intersection cell (checked
		// during enumeration), and then only when the union replaces it.
		emptyI, emptyJ, emptyCount := -1, -1, 0
		for i := 0; i < ra; i++ {
			for j := 0; j < rb; j++ {
				if table[i][j] > 0 && inter[i][j].Empty() {
					emptyCount += table[i][j]
					emptyI, emptyJ = i, j
				}
			}
		}
		if emptyCount > 1 {
			return true
		}
		buildGroups := func(ui, uj int) []setGroup {
			groups := make([]setGroup, 0, ra*rb+1)
			for i := 0; i < ra; i++ {
				for j := 0; j < rb; j++ {
					c := table[i][j]
					if c == 0 {
						continue
					}
					if i == ui && j == uj {
						c--
					}
					if c > 0 {
						groups = append(groups, setGroup{set: inter[i][j], count: c})
					}
				}
			}
			groups = append(groups, setGroup{set: a.groups[ui].set.Union(b.groups[uj].set), count: 1})
			return groups
		}
		if emptyCount == 1 {
			// The union must replace the single empty slot.
			return emit(newSetConfig(buildGroups(emptyI, emptyJ)))
		}
		for i := 0; i < ra; i++ {
			for j := 0; j < rb; j++ {
				if table[i][j] == 0 {
					continue
				}
				if !emit(newSetConfig(buildGroups(i, j))) {
					return false
				}
			}
		}
		return true
	}

	// Enumerate contingency tables cell by cell in row-major order,
	// pruning as soon as two or more slots would land on empty
	// intersection cells (such candidates always contain an empty entry).
	var rec func(i, j, emptyUsed int) bool
	rec = func(i, j, emptyUsed int) bool {
		if i == ra {
			return emitTable()
		}
		ni, nj := i, j+1
		if nj == rb {
			ni, nj = i+1, 0
		}
		cellEmpty := inter[i][j].Empty()
		lastInRow := j == rb-1
		if lastInRow {
			// The last cell of a row is forced to absorb the remainder.
			c := rowRemaining[i]
			if c > colRemaining[j] {
				return true
			}
			eu := emptyUsed
			if cellEmpty {
				eu += c
			}
			if eu > 1 {
				return true
			}
			table[i][j] = c
			rowRemaining[i] -= c
			colRemaining[j] -= c
			ok := rec(ni, nj, eu)
			rowRemaining[i] += c
			colRemaining[j] += c
			table[i][j] = 0
			return ok
		}
		maxHere := rowRemaining[i]
		if colRemaining[j] < maxHere {
			maxHere = colRemaining[j]
		}
		if cellEmpty && maxHere > 1-emptyUsed {
			maxHere = 1 - emptyUsed
		}
		for c := 0; c <= maxHere; c++ {
			eu := emptyUsed
			if cellEmpty {
				eu += c
			}
			table[i][j] = c
			rowRemaining[i] -= c
			colRemaining[j] -= c
			ok := rec(ni, nj, eu)
			rowRemaining[i] += c
			colRemaining[j] += c
			table[i][j] = 0
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0, 0, 0)
}

// dominatedBy reports whether sc is entrywise dominated by other: there is
// a matching between slots such that each set of sc is a subset of its
// partner in other. Used by reference implementations and tests.
func (sc setConfig) dominatedBy(other setConfig) bool {
	if sc.arity() != other.arity() {
		return false
	}
	// Bipartite matching between expanded slots with the subset relation.
	left := sc.expand()
	right := other.expand()
	adj := make([][]int, len(left))
	for i, a := range left {
		for j, b := range right {
			if a.SubsetOf(b) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchR := make([]int, len(right))
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for u := range left {
		seen := make([]bool, len(right))
		if !try(u, seen) {
			return false
		}
	}
	return true
}

// expand returns the slots of the set-config as a flat slice of sets.
func (sc setConfig) expand() []bitset.Set {
	out := make([]bitset.Set, 0, sc.arity())
	for _, g := range sc.groups {
		for i := 0; i < g.count; i++ {
			out = append(out, g.set)
		}
	}
	return out
}
