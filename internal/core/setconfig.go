package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/intern"
)

// setArena is the hash-consed store backing one enumeration of maximal
// set-configurations: label sets and whole configurations intern to
// dense handles, so dedup maps, visited sets and memo keys are
// handle-indexed and never materialize strings.
//
// Handle values depend on interleaving when workers intern
// concurrently; every ordering decision therefore goes through set
// content (bitset.Compare), which keeps outputs byte-identical across
// runs and worker counts.
type setArena struct {
	n    int           // universe (alphabet size of the half problem)
	sets *intern.Table // label-set words
	ids  *intern.Table // packed group sequences: setConfig identities
	memo *intern.Table // packed group sequences + label: extension-memo keys
}

func newSetArena(n int) *setArena {
	return &setArena{
		n:    n,
		sets: intern.NewTable(0),
		ids:  intern.NewTable(0),
		memo: intern.NewTable(0),
	}
}

// intern hash-conses a label set.
func (a *setArena) intern(s bitset.Set) intern.Handle {
	return a.sets.Intern(s.Words())
}

// view returns the set of a handle as a zero-copy read-only bitset.
func (a *setArena) view(h intern.Handle) bitset.Set {
	return bitset.Wrap(a.n, a.sets.Seq(h))
}

// setConfig is a multiset of label sets (the candidate node
// configurations of the derived problem Π'_1): groups reference
// arena-interned sets, hold multiplicities, and are kept in canonical
// set-content order.
type setConfig struct {
	groups []scGroup
}

// scGroup is one interned group of a setConfig.
type scGroup struct {
	set   intern.Handle
	count int
}

// setGroup is the raw construction-time form of a group (a materialized
// set plus multiplicity), used by the builders, the naive reference
// implementations and the tests.
type setGroup struct {
	set   bitset.Set
	count int
}

// newSetConfig interns raw groups and normalizes: merges equal sets and
// sorts by set content.
func newSetConfig(a *setArena, groups []setGroup) setConfig {
	interned := make([]scGroup, 0, len(groups))
	for _, g := range groups {
		if g.count == 0 {
			continue
		}
		interned = append(interned, scGroup{set: a.intern(g.set), count: g.count})
	}
	return canonicalize(a, interned)
}

// canonicalize merges groups with equal handles and sorts groups by set
// content (content order, not handle order, so the result is identical
// for every interning interleaving).
func canonicalize(a *setArena, groups []scGroup) setConfig {
	sort.Slice(groups, func(i, j int) bool {
		return bitset.Compare(a.view(groups[i].set), a.view(groups[j].set)) < 0
	})
	out := groups[:0]
	for _, g := range groups {
		if n := len(out); n > 0 && out[n-1].set == g.set {
			out[n-1].count += g.count
			continue
		}
		out = append(out, g)
	}
	return setConfig{groups: out}
}

// singletonSetConfig converts an ordinary configuration into a set-config
// of singleton sets over an alphabet of the given size.
func singletonSetConfig(a *setArena, cfg Config) setConfig {
	groups := make([]setGroup, 0, 4)
	cfg.ForEach(func(l Label, count int) {
		s := bitset.New(a.n)
		s.Add(int(l))
		groups = append(groups, setGroup{set: s, count: count})
	})
	return newSetConfig(a, groups)
}

// appendGroupWords appends the packed encoding of the groups — one word
// per group, set handle in the high half — to dst. Groups are in
// canonical order, so the encoding identifies the configuration within
// one arena.
func appendGroupWords(groups []scGroup, dst []uint64) []uint64 {
	for _, g := range groups {
		dst = append(dst, uint64(g.set)<<32|uint64(uint32(g.count)))
	}
	return dst
}

// id hash-conses the configuration's identity.
func (sc setConfig) id(a *setArena) intern.Handle {
	var buf [16]uint64
	return a.ids.Intern(appendGroupWords(sc.groups, buf[:0]))
}

// canonicalKey renders the legacy canonical identity string (set key,
// '#', multiplicity, '|'); groups are already in content order, so the
// rendering is comparable across arenas. Test-only cross-validation
// boundary — the engine itself never builds it.
func (sc setConfig) canonicalKey(a *setArena) string {
	out := ""
	for _, g := range sc.groups {
		out += a.view(g.set).Key() + "#" + fmt.Sprint(g.count) + "|"
	}
	return out
}

// arity returns the total slot count.
func (sc setConfig) arity() int {
	total := 0
	for _, g := range sc.groups {
		total += g.count
	}
	return total
}

// withLabelAdded returns the set-config obtained by adding label l to one
// copy of group gi (splitting the group if its multiplicity exceeds 1).
func (sc setConfig) withLabelAdded(a *setArena, gi int, l Label) setConfig {
	groups := make([]scGroup, 0, len(sc.groups)+1)
	for i, g := range sc.groups {
		if i != gi {
			groups = append(groups, g)
			continue
		}
		if g.count > 1 {
			groups = append(groups, scGroup{set: g.set, count: g.count - 1})
		}
		ext := a.view(g.set).Clone()
		ext.Add(int(l))
		groups = append(groups, scGroup{set: a.intern(ext), count: 1})
	}
	return canonicalize(a, groups)
}

// withoutOneOf returns the set-config with one copy of group gi removed.
// Group order (hence canonicality) is preserved.
func (sc setConfig) withoutOneOf(gi int) setConfig {
	groups := make([]scGroup, 0, len(sc.groups))
	for i, g := range sc.groups {
		if i == gi {
			if g.count > 1 {
				groups = append(groups, scGroup{set: g.set, count: g.count - 1})
			}
			continue
		}
		groups = append(groups, g)
	}
	return setConfig{groups: groups}
}

// compare orders set-configs by content: group-wise set content, then
// multiplicity, then group count. A total order independent of handle
// numbering, used to emit enumeration results deterministically.
func (sc setConfig) compare(a *setArena, other setConfig) int {
	for i, g := range sc.groups {
		if i >= len(other.groups) {
			return 1
		}
		o := other.groups[i]
		if g.set != o.set {
			if c := bitset.Compare(a.view(g.set), a.view(o.set)); c != 0 {
				return c
			}
		}
		if g.count != o.count {
			if g.count < o.count {
				return -1
			}
			return 1
		}
	}
	if len(sc.groups) < len(other.groups) {
		return -1
	}
	return 0
}

// allChoicesIn reports whether every choice multiset (pick one element per
// slot) together with the labels in extra belongs to h. It enumerates
// choice multisets group-wise (combinations with repetition), which keeps
// the work polynomial in the number of distinct choice multisets rather
// than exponential in the arity.
func (sc setConfig) allChoicesIn(a *setArena, h Constraint, extra []Label) bool {
	counts := getLabelCounts()
	defer putLabelCounts(counts)
	for _, l := range extra {
		counts[l]++
	}
	var rec func(gi int) bool
	rec = func(gi int) bool {
		if gi == len(sc.groups) {
			c, err := NewConfigCounts(counts)
			if err != nil {
				return false
			}
			return h.Contains(c)
		}
		g := sc.groups[gi]
		members := a.view(g.set).Indices()
		var choose func(start, remaining int) bool
		choose = func(start, remaining int) bool {
			if remaining == 0 {
				return rec(gi + 1)
			}
			for i := start; i < len(members); i++ {
				l := Label(members[i])
				counts[l]++
				ok := choose(i, remaining-1)
				counts[l]--
				if counts[l] == 0 {
					delete(counts, l)
				}
				if !ok {
					return false
				}
			}
			return true
		}
		return choose(0, g.count)
	}
	return rec(0)
}

// maximalNodeSetConfigs enumerates the maximal set-configurations
// {W_1, ..., W_Δ} such that every choice w_i ∈ W_i is a configuration of
// half.Node — the node constraint of the simplified derived problem Π'_1
// (Property 6 of Section 4.2).
//
// Algorithm: closure under the "combine" operation with antichain
// (domination) pruning. Combining two valid set-configs A, B means fixing
// a perfect matching between their slots, taking the union at one matched
// pair and intersections at all others. The result is always valid: a
// choice picking from the A-side of the union slot picks entrywise from A
// (intersections are subsets of A's entries), and symmetrically for B.
//
// Completeness (every maximal valid config ends up in the antichain), by
// induction on the total size of a valid config V: split one entry of V as
// X1 ∪ X2; the two smaller valid configs are dominated by antichain
// members W1, W2 by induction, and combining W1 with W2 under the matching
// that aligns the dominated slots yields a config dominating V. Domination
// pruning is safe because combinations from a dominator dominate the
// corresponding combinations from the dominated config.
//
// Configurations with an empty entry are discarded: they are vacuously
// valid but cannot occur in a solution (the empty label survives no edge
// constraint), and the completeness induction never needs them.
// scItem wraps a set-config with cached invariants that let most
// domination tests fail fast.
type scItem struct {
	sc          setConfig
	sortedSizes []int      // entry sizes ascending
	union       bitset.Set // union of all entries
	total       int        // sum of entry sizes
}

func newSCItem(a *setArena, sc setConfig) scItem {
	it := scItem{sc: sc, union: bitset.New(a.n)}
	for _, g := range sc.groups {
		s := a.view(g.set)
		sz := s.Count()
		for c := 0; c < g.count; c++ {
			it.sortedSizes = append(it.sortedSizes, sz)
			it.total += sz
		}
		it.union.UnionInPlace(s)
	}
	sort.Ints(it.sortedSizes)
	return it
}

// dominatedBy reports whether a ⊑ b, using the cached invariants as
// necessary-condition prefilters before the bipartite matching test.
func (a scItem) dominatedBy(arena *setArena, b scItem) bool {
	if a.total > b.total || len(a.sortedSizes) != len(b.sortedSizes) {
		return false
	}
	for i, sz := range a.sortedSizes {
		// If a slot-size bijection with entrywise ⊆ exists, the ascending
		// size sequences are pointwise ordered.
		if sz > b.sortedSizes[i] {
			return false
		}
	}
	if !a.union.SubsetOf(b.union) {
		return false
	}
	return a.sc.dominatedBy(arena, b.sc)
}

// maximalNodeSetConfigs dispatches to the configured enumeration
// strategy; the returned arena resolves the handles of the returned
// configurations.
func maximalNodeSetConfigs(half *Problem, o speedupOptions) ([]setConfig, *setArena, error) {
	switch o.strategy {
	case StrategyCombine:
		return maximalNodeSetConfigsCombine(half, o.maxStates)
	default:
		return maximalNodeSetConfigsExplore(half, o)
	}
}

// sortedByContent returns the configurations in canonical content order.
func sortedByContent(a *setArena, configs []setConfig) []setConfig {
	sort.Slice(configs, func(i, j int) bool { return configs[i].compare(a, configs[j]) < 0 })
	return configs
}

// memoSentinel marks the label word terminating an extension-memo key,
// keeping label words disjoint from packed group words.
const memoSentinel = uint64(1) << 63

// maximalNodeSetConfigsExplore enumerates maximal valid set-configurations
// by upward exploration: starting from the configurations of half.Node (as
// singleton set-configs), repeatedly add a single label to a single slot,
// keeping only additions that preserve validity ("every choice lies in
// half.Node"). Every intermediate state on the way to a maximal
// configuration T is entrywise between one of T's choice lines and T
// itself, hence valid, so the exploration is complete; a configuration
// with no valid single-label extension is maximal because supersets of
// invalid configurations are invalid.
//
// The state space is the set of all valid set-configurations, which is the
// right trade-off when that space is moderate (e.g. the weak 2-coloring
// derivation of Section 4.6 for Δ up to ~8). For problems with a large
// valid space but a small antichain, use StrategyCombine.
//
// The exploration is level-synchronous: each frontier of newly visited
// configurations is expanded in parallel (the validity checks dominate
// the cost and are independent per state), and the results are merged
// sequentially in frontier order. Because the reachable closure, the
// maximal subset, and the sorted output are all schedule-independent,
// every worker count produces byte-identical results, including the
// budget-exceeded failure point.
func maximalNodeSetConfigsExplore(half *Problem, o speedupOptions) ([]setConfig, *setArena, error) {
	n := half.Alpha.Size()
	if half.Delta() > 255 {
		return nil, nil, fmt.Errorf("core: second half step: Δ=%d exceeds the supported 255", half.Delta())
	}
	arena := newSetArena(n)
	valid := newFastNodeSet(half)
	maxStates := o.maxStates

	// visited/maximal are dense over the identity arena; handle values
	// may be assigned racily during parallel expansion, but membership
	// and the budget count only depend on the set of identities, which
	// is schedule-independent.
	var visited boolByHandle
	visitedCount := 0
	var maximal []setConfig
	var frontier []setConfig
	for _, cfg := range half.Node.Configs() {
		sc := singletonSetConfig(arena, cfg)
		id := sc.id(arena)
		if !visited.get(id) {
			visited.set(id)
			visitedCount++
			frontier = append(frontier, sc)
		}
	}

	// Extension-validity results are shared across workers and levels:
	// the check for (reduced config, label) does not depend on which
	// state asked, so duplicated concurrent computation is harmless and
	// the cache stays coherent.
	var extMemo sync.Map
	type candidate struct {
		sc setConfig
		id intern.Handle
	}
	type expansion struct {
		extended bool
		next     []candidate
	}
	for len(frontier) > 0 {
		results := make([]expansion, len(frontier))
		workers := o.workerCount(len(frontier))
		runIndexed(workers, len(frontier), func(i int) {
			sc := frontier[i]
			var ex expansion
			var keyBuf []uint64
			for gi := range sc.groups {
				g := sc.groups[gi]
				gset := arena.view(g.set)
				reduced := sc.withoutOneOf(gi)
				// One memo key buffer per (state, slot): the group
				// prefix stays, only the trailing label word varies.
				keyBuf = appendGroupWords(reduced.groups, keyBuf[:0])
				keyBuf = append(keyBuf, 0)
				for l := 0; l < n; l++ {
					if gset.Contains(l) {
						continue
					}
					// Adding l to one copy of group gi introduces exactly
					// the choices where that copy picks l; all other
					// choices are choices of sc and already valid.
					keyBuf[len(keyBuf)-1] = memoSentinel | uint64(l)
					memoKey := arena.memo.Intern(keyBuf)
					var ok bool
					if v, seen := extMemo.Load(memoKey); seen {
						ok = v.(bool)
					} else {
						ok = valid.allChoices(arena, reduced.groups, Label(l))
						extMemo.Store(memoKey, ok)
					}
					if !ok {
						continue
					}
					ex.extended = true
					next := sc.withLabelAdded(arena, gi, Label(l))
					ex.next = append(ex.next, candidate{sc: next, id: next.id(arena)})
				}
			}
			results[i] = ex
		})

		// Sequential merge, in frontier order: dedupe against the global
		// visited set and enforce the budget. Identities were interned in
		// the parallel phase, so this is dense bitmap traffic only.
		next := frontier[:0:0]
		for i, sc := range frontier {
			if !results[i].extended {
				maximal = append(maximal, sc)
				continue
			}
			for _, cand := range results[i].next {
				if !visited.get(cand.id) {
					if visitedCount >= maxStates {
						return nil, nil, fmt.Errorf("core: second half step: exceeded state budget of %d set-configurations: %w", maxStates, ErrStateBudget)
					}
					visited.set(cand.id)
					visitedCount++
					next = append(next, cand.sc)
				}
			}
		}
		frontier = next
	}

	return sortedByContent(arena, maximal), arena, nil
}

// boolByHandle is a growable dense bitmap indexed by intern handles.
type boolByHandle []bool

func (b boolByHandle) get(h intern.Handle) bool {
	return int(h) < len(b) && b[h]
}

func (b *boolByHandle) set(h intern.Handle) {
	for int(h) >= len(*b) {
		*b = append(*b, false)
	}
	(*b)[h] = true
}

// fastNodeSet indexes a node constraint for fast "is this choice
// multiset allowed" queries during enumeration: multiplicity vectors
// are packed eight byte-lanes per word (multiplicities are ≤ Δ ≤ 255)
// and membership is an arena probe — no per-leaf allocation.
type fastNodeSet struct {
	m     int // alphabet size
	words int // packed words per vector
	tab   *intern.Table
}

func newFastNodeSet(p *Problem) fastNodeSet {
	f := fastNodeSet{m: p.Alpha.Size(), words: (p.Alpha.Size() + 7) / 8}
	f.tab = intern.NewTable(p.Node.Size())
	packed := make([]uint64, f.words)
	for _, cfg := range p.Node.Configs() {
		for i := range packed {
			packed[i] = 0
		}
		cfg.ForEach(func(l Label, c int) { packed[int(l)/8] |= uint64(uint8(c)) << (8 * (uint(l) % 8)) })
		f.tab.Intern(packed)
	}
	return f
}

// lane returns the packed-word increment for one occurrence of label l.
func (f fastNodeSet) lane(l Label) (int, uint64) {
	return int(l) / 8, uint64(1) << (8 * (uint(l) % 8))
}

// allChoices reports whether every choice multiset from groups, plus one
// occurrence of extra, is an allowed configuration. Read-only on the
// arena, so concurrent workers share it freely.
func (f fastNodeSet) allChoices(a *setArena, groups []scGroup, extra Label) bool {
	cs := getChoiceScratch(f.words, len(groups))
	defer putChoiceScratch(cs)
	counts, members := cs.counts, cs.members
	w, inc := f.lane(extra)
	counts[w] += inc
	for i, g := range groups {
		members[i] = a.view(g.set).AppendIndices(members[i][:0])
	}
	var rec func(gi int) bool
	rec = func(gi int) bool {
		if gi == len(groups) {
			_, ok := f.tab.Lookup(counts)
			return ok
		}
		g := groups[gi]
		var choose func(start, remaining int) bool
		choose = func(start, remaining int) bool {
			if remaining == 0 {
				return rec(gi + 1)
			}
			for i := start; i < len(members[gi]); i++ {
				w, inc := f.lane(Label(members[gi][i]))
				counts[w] += inc
				ok := choose(i, remaining-1)
				counts[w] -= inc
				if !ok {
					return false
				}
			}
			return true
		}
		return choose(0, g.count)
	}
	return rec(0)
}

// maximalNodeSetConfigsCombine enumerates maximal valid set-configurations
// via closure under the combine operation with antichain pruning; see the
// package documentation of combineAll. Better suited than exploration when
// the space of valid configurations is huge but the antichain is small.
func maximalNodeSetConfigsCombine(half *Problem, maxStates int) ([]setConfig, *setArena, error) {
	n := half.Alpha.Size()
	arena := newSetArena(n)

	var items []scItem
	var alive []bool
	var seen boolByHandle

	insert := func(sc setConfig) error {
		id := sc.id(arena)
		if seen.get(id) {
			// Already processed; if it was killed, its dominator covers it.
			return nil
		}
		seen.set(id)
		it := newSCItem(arena, sc)
		for i := range items {
			if alive[i] && it.dominatedBy(arena, items[i]) {
				return nil
			}
		}
		for i := range items {
			if alive[i] && items[i].dominatedBy(arena, it) {
				alive[i] = false
			}
		}
		if len(items) >= maxStates {
			return fmt.Errorf("core: second half step: exceeded state budget of %d set-configurations: %w", maxStates, ErrStateBudget)
		}
		items = append(items, it)
		alive = append(alive, true)
		return nil
	}

	for _, cfg := range half.Node.Configs() {
		if err := insert(singletonSetConfig(arena, cfg)); err != nil {
			return nil, nil, err
		}
	}

	for i := 0; i < len(items); i++ {
		if !alive[i] {
			continue
		}
		for j := 0; j <= i && alive[i]; j++ {
			if !alive[j] {
				continue
			}
			var combineErr error
			combineAll(arena, items[i].sc, items[j].sc, func(c setConfig) bool {
				if combineErr == nil {
					combineErr = insert(c)
				}
				return combineErr == nil
			})
			if combineErr != nil {
				return nil, nil, combineErr
			}
		}
	}

	var maximal []setConfig
	for i, it := range items {
		if alive[i] {
			maximal = append(maximal, it.sc)
		}
	}
	return sortedByContent(arena, maximal), arena, nil
}

// combineAll enumerates the results of combining set-configs a and b under
// every perfect slot matching and every choice of union slot, emitting
// each candidate that has no empty entry. Matchings are enumerated as
// contingency tables between the group multiplicities, which collapses the
// factorially many slot matchings to their distinct outcomes. emit returns
// false to stop early.
func combineAll(arena *setArena, a, b setConfig, emit func(setConfig) bool) {
	ra, rb := len(a.groups), len(b.groups)
	if ra == 0 || rb == 0 {
		return
	}
	aSets := make([]bitset.Set, ra)
	for i := range aSets {
		aSets[i] = arena.view(a.groups[i].set)
	}
	bSets := make([]bitset.Set, rb)
	for j := range bSets {
		bSets[j] = arena.view(b.groups[j].set)
	}
	// inter[i][j] caches A_i ∩ B_j.
	inter := make([][]bitset.Set, ra)
	for i := range inter {
		inter[i] = make([]bitset.Set, rb)
		for j := range inter[i] {
			inter[i][j] = aSets[i].Intersect(bSets[j])
		}
	}

	rowRemaining := make([]int, ra)
	for i := range rowRemaining {
		rowRemaining[i] = a.groups[i].count
	}
	colRemaining := make([]int, rb)
	for j := range colRemaining {
		colRemaining[j] = b.groups[j].count
	}
	table := make([][]int, ra)
	for i := range table {
		table[i] = make([]int, rb)
	}

	emitTable := func() bool {
		// At most one slot may sit on an empty intersection cell (checked
		// during enumeration), and then only when the union replaces it.
		emptyI, emptyJ, emptyCount := -1, -1, 0
		for i := 0; i < ra; i++ {
			for j := 0; j < rb; j++ {
				if table[i][j] > 0 && inter[i][j].Empty() {
					emptyCount += table[i][j]
					emptyI, emptyJ = i, j
				}
			}
		}
		if emptyCount > 1 {
			return true
		}
		buildGroups := func(ui, uj int) []setGroup {
			groups := make([]setGroup, 0, ra*rb+1)
			for i := 0; i < ra; i++ {
				for j := 0; j < rb; j++ {
					c := table[i][j]
					if c == 0 {
						continue
					}
					if i == ui && j == uj {
						c--
					}
					if c > 0 {
						groups = append(groups, setGroup{set: inter[i][j], count: c})
					}
				}
			}
			groups = append(groups, setGroup{set: aSets[ui].Union(bSets[uj]), count: 1})
			return groups
		}
		if emptyCount == 1 {
			// The union must replace the single empty slot.
			return emit(newSetConfig(arena, buildGroups(emptyI, emptyJ)))
		}
		for i := 0; i < ra; i++ {
			for j := 0; j < rb; j++ {
				if table[i][j] == 0 {
					continue
				}
				if !emit(newSetConfig(arena, buildGroups(i, j))) {
					return false
				}
			}
		}
		return true
	}

	// Enumerate contingency tables cell by cell in row-major order,
	// pruning as soon as two or more slots would land on empty
	// intersection cells (such candidates always contain an empty entry).
	var rec func(i, j, emptyUsed int) bool
	rec = func(i, j, emptyUsed int) bool {
		if i == ra {
			return emitTable()
		}
		ni, nj := i, j+1
		if nj == rb {
			ni, nj = i+1, 0
		}
		cellEmpty := inter[i][j].Empty()
		lastInRow := j == rb-1
		if lastInRow {
			// The last cell of a row is forced to absorb the remainder.
			c := rowRemaining[i]
			if c > colRemaining[j] {
				return true
			}
			eu := emptyUsed
			if cellEmpty {
				eu += c
			}
			if eu > 1 {
				return true
			}
			table[i][j] = c
			rowRemaining[i] -= c
			colRemaining[j] -= c
			ok := rec(ni, nj, eu)
			rowRemaining[i] += c
			colRemaining[j] += c
			table[i][j] = 0
			return ok
		}
		maxHere := rowRemaining[i]
		if colRemaining[j] < maxHere {
			maxHere = colRemaining[j]
		}
		if cellEmpty && maxHere > 1-emptyUsed {
			maxHere = 1 - emptyUsed
		}
		for c := 0; c <= maxHere; c++ {
			eu := emptyUsed
			if cellEmpty {
				eu += c
			}
			table[i][j] = c
			rowRemaining[i] -= c
			colRemaining[j] -= c
			ok := rec(ni, nj, eu)
			rowRemaining[i] += c
			colRemaining[j] += c
			table[i][j] = 0
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0, 0, 0)
}

// dominatedBy reports whether sc is entrywise dominated by other: there is
// a matching between slots such that each set of sc is a subset of its
// partner in other. Used by reference implementations and tests.
func (sc setConfig) dominatedBy(a *setArena, other setConfig) bool {
	if sc.arity() != other.arity() {
		return false
	}
	// Bipartite matching between expanded slots with the subset relation.
	left := sc.expand(a)
	right := other.expand(a)
	adj := make([][]int, len(left))
	for i, x := range left {
		for j, y := range right {
			if x.SubsetOf(y) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchR := make([]int, len(right))
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for u := range left {
		seen := make([]bool, len(right))
		if !try(u, seen) {
			return false
		}
	}
	return true
}

// expand returns the slots of the set-config as a flat slice of sets.
func (sc setConfig) expand(a *setArena) []bitset.Set {
	out := make([]bitset.Set, 0, sc.arity())
	for _, g := range sc.groups {
		s := a.view(g.set)
		for i := 0; i < g.count; i++ {
			out = append(out, s)
		}
	}
	return out
}
