package core

import "sort"

// DistinctPermutations returns all distinct orderings of a multiset of
// labels, in lexicographic order. The input slice is sorted in place.
// Shared by the solver, the synthesizer, and the solvability oracle,
// which all enumerate per-port assignments of node configurations.
func DistinctPermutations(labels []Label) [][]Label {
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	var out [][]Label
	cur := make([]Label, 0, len(labels))
	used := make([]bool, len(labels))
	var rec func()
	rec = func() {
		if len(cur) == len(labels) {
			out = append(out, append([]Label(nil), cur...))
			return
		}
		var last Label = -1
		haveLast := false
		for i := range labels {
			if used[i] || (haveLast && labels[i] == last) {
				continue
			}
			used[i] = true
			cur = append(cur, labels[i])
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
			last, haveLast = labels[i], true
		}
	}
	rec()
	return out
}

// AllLabelTuples returns every tuple of the given arity over the
// labels 0..nLabels-1, in lexicographic order.
func AllLabelTuples(nLabels, arity int) [][]Label {
	var out [][]Label
	cur := make([]Label, arity)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == arity {
			out = append(out, append([]Label(nil), cur...))
			return
		}
		for l := 0; l < nLabels; l++ {
			cur[pos] = Label(l)
			rec(pos + 1)
		}
	}
	rec(0)
	return out
}
