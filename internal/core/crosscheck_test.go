package core

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHalfStepEdgePairsMatchBruteForce validates the Galois-connection
// computation of the maximal edge pairs (Property 5) against the power-set
// brute force, on random small problems.
func TestHalfStepEdgePairsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 150; iter++ {
		p := randomProblem(rng, 2+rng.Intn(4), 2+rng.Intn(2), 0.4)
		if p.Edge.Size() == 0 || p.Node.Size() == 0 {
			continue
		}
		half, err := HalfStep(p)
		if err != nil {
			t.Fatalf("iter %d: HalfStep: %v", iter, err)
		}
		brute, err := MaximalEdgePairsBrute(p)
		if err != nil {
			t.Fatalf("iter %d: brute: %v", iter, err)
		}
		bruteKeys := make([]string, 0, len(brute))
		for _, pr := range brute {
			// Exclude pairs with an empty side or a side unusable in any
			// node configuration: HalfStep output is compressed.
			bruteKeys = append(bruteKeys, pr[0].Key()+"|"+pr[1].Key())
		}
		gotKeys := EdgePairKeysOf(half)
		sort.Strings(gotKeys)
		sort.Strings(bruteKeys)
		// Every surviving (compressed) pair must appear in the brute list.
		bruteSet := map[string]bool{}
		for _, k := range bruteKeys {
			bruteSet[k] = true
		}
		for _, k := range gotKeys {
			if !bruteSet[k] {
				t.Fatalf("iter %d: derived edge pair %q not maximal per brute force\nproblem:\n%s", iter, k, p.String())
			}
		}
		// Conversely, every brute pair whose labels survived compression
		// must appear in the derived constraint.
		surviving := map[string]bool{}
		for l := 0; l < half.Alpha.Size(); l++ {
			if prov, ok := half.Alpha.Provenance(Label(l)); ok {
				surviving[prov.Key()] = true
			}
		}
		gotSet := map[string]bool{}
		for _, k := range gotKeys {
			gotSet[k] = true
		}
		for i, k := range bruteKeys {
			if surviving[brute[i][0].Key()] && surviving[brute[i][1].Key()] && !gotSet[k] {
				t.Fatalf("iter %d: brute maximal pair %q missing from derived constraint\nproblem:\n%s", iter, k, p.String())
			}
		}
	}
}

// TestMaximalNodeConfigsStrategiesAgree validates that both enumeration
// strategies produce identical maximal node configurations, and that both
// match the exponential brute force, on random small half problems.
func TestMaximalNodeConfigsStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 120; iter++ {
		// Use a random problem directly as a "half" problem: the
		// enumeration only reads its node constraint and alphabet.
		half := randomProblem(rng, 2+rng.Intn(3), 2+rng.Intn(2), 0.5)
		if half.Node.Size() == 0 {
			continue
		}
		explore, err := MaximalNodeSetConfigKeys(half, StrategyExplore, 1_000_000)
		if err != nil {
			t.Fatalf("iter %d: explore: %v", iter, err)
		}
		combine, err := MaximalNodeSetConfigKeys(half, StrategyCombine, 1_000_000)
		if err != nil {
			t.Fatalf("iter %d: combine: %v", iter, err)
		}
		brute := BruteMaximalNodeSetConfigKeys(half)
		sort.Strings(explore)
		sort.Strings(combine)
		sort.Strings(brute)
		if !equalStrings(explore, combine) {
			t.Fatalf("iter %d: strategies disagree\nexplore: %v\ncombine: %v\nproblem:\n%s",
				iter, explore, combine, half.String())
		}
		if !equalStrings(explore, brute) {
			t.Fatalf("iter %d: enumeration disagrees with brute force\ngot:  %v\nwant: %v\nproblem:\n%s",
				iter, explore, brute, half.String())
		}
	}
}

// TestHalfStepNodeConstraintExistential validates Property 2: a multiset
// of derived labels is in the derived node constraint iff some choice of
// members is in the original node constraint.
func TestHalfStepNodeConstraintExistential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		p := randomProblem(rng, 2+rng.Intn(3), 2+rng.Intn(2), 0.5)
		if p.Edge.Size() == 0 || p.Node.Size() == 0 {
			continue
		}
		half, err := HalfStep(p)
		if err != nil {
			t.Fatal(err)
		}
		m := half.Alpha.Size()
		if m == 0 {
			continue
		}
		// Check every multiset over the derived alphabet.
		enumerateMultisets(m, half.Delta(), func(counts map[int]int) {
			groups := make([]setGroup, 0, len(counts))
			lcounts := map[Label]int{}
			for l, c := range counts {
				prov, _ := half.Alpha.Provenance(Label(l))
				groups = append(groups, setGroup{set: prov, count: c})
				lcounts[Label(l)] = c
			}
			cfg, err := NewConfigCounts(lcounts)
			if err != nil {
				t.Fatal(err)
			}
			want := existsChoiceIn(p.Node, groups)
			got := half.Node.Contains(cfg)
			if got != want {
				t.Fatalf("iter %d: config %s: derived membership %v, existential condition %v\nproblem:\n%s",
					iter, cfg.String(half.Alpha), got, want, p.String())
			}
		})
	}
}

// existsChoiceIn reports whether some choice (one original label per slot)
// lies in the constraint.
func existsChoiceIn(node Constraint, groups []setGroup) bool {
	counts := map[Label]int{}
	var rec func(gi int) bool
	rec = func(gi int) bool {
		if gi == len(groups) {
			cfg, err := NewConfigCounts(counts)
			if err != nil {
				return false
			}
			return node.Contains(cfg)
		}
		g := groups[gi]
		members := g.set.Indices()
		var choose func(start, remaining int) bool
		choose = func(start, remaining int) bool {
			if remaining == 0 {
				return rec(gi + 1)
			}
			for i := start; i < len(members); i++ {
				l := Label(members[i])
				counts[l]++
				ok := choose(i, remaining-1)
				counts[l]--
				if counts[l] == 0 {
					delete(counts, l)
				}
				if ok {
					return true
				}
			}
			return false
		}
		return choose(0, g.count)
	}
	return rec(0)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
