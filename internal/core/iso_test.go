package core

import (
	"math/rand"
	"testing"
)

func TestIsomorphicSimpleRename(t *testing.T) {
	p := MustParse("node:\nA A B\nedge:\nA B\nB B")
	q := MustParse("node:\nY Y X\nedge:\nY X\nX X")
	m, ok := Isomorphic(p, q)
	if !ok {
		t.Fatal("rename not detected")
	}
	// The witness must actually map constraints correctly.
	if err := CheckRelaxation(p, q, m); err != nil {
		t.Errorf("witness map invalid: %v", err)
	}
}

func TestIsomorphicRejectsDifferent(t *testing.T) {
	p := MustParse("node:\nA A\nedge:\nA A")
	q := MustParse("node:\nA A\nedge:\nA B\nnode:\nB B")
	if _, ok := Isomorphic(p, q); ok {
		t.Error("different problems reported isomorphic")
	}
}

func TestIsomorphicSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 50; iter++ {
		p := randomProblem(rng, 2+rng.Intn(4), 2+rng.Intn(2), 0.5)
		if _, ok := Isomorphic(p, p); !ok {
			t.Fatalf("iter %d: problem not isomorphic to itself:\n%s", iter, p.String())
		}
	}
}

// TestIsomorphicUnderRandomRelabeling applies a random permutation to a
// random problem and checks the search recovers an isomorphism, and that
// a structurally modified copy is rejected.
func TestIsomorphicUnderRandomRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 80; iter++ {
		p := randomProblem(rng, 2+rng.Intn(4), 2, 0.5)
		n := p.Alpha.Size()
		perm := rng.Perm(n)
		m := make(map[Label]Label, n)
		for i, img := range perm {
			m[Label(i)] = Label(img)
		}
		edge, err := p.Edge.Remap(m)
		if err != nil {
			t.Fatal(err)
		}
		node, err := p.Node.Remap(m)
		if err != nil {
			t.Fatal(err)
		}
		q := &Problem{Alpha: p.Alpha, Edge: edge, Node: node}
		if _, ok := Isomorphic(p, q); !ok {
			t.Fatalf("iter %d: relabeled problem not recognized\np:\n%s\nq:\n%s", iter, p.String(), q.String())
		}
	}
}

func TestEqualVsIsomorphic(t *testing.T) {
	p := MustParse("node:\nA B\nedge:\nA B")
	q := MustParse("node:\nB A\nedge:\nB A")
	// Same label names in different first-occurrence order: not Equal but
	// isomorphic.
	if p.Equal(q) {
		t.Error("problems with different label orders reported Equal")
	}
	if _, ok := Isomorphic(p, q); !ok {
		t.Error("label-reordered problem not isomorphic")
	}
}
