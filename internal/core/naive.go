package core

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// This file contains brute-force reference implementations of the speedup
// transformation, enumerating power sets directly as in the paper's raw
// definitions (Section 4.1, before simplification). They are exponential
// and intended for cross-validation of the production implementations on
// small instances (see the property tests), and for studying unsimplified
// derived problems Π_{1/2} and Π_1.

const naiveAlphabetCap = 14

// NaiveHalfStep computes the unsimplified derived problem Π_{1/2}: labels
// are all non-empty subsets of the alphabet of Π, the edge constraint is
// the universal condition (Property 1) and the node constraint the
// existential condition (Property 2). The result is compressed.
//
// The empty set, while formally a label of Π_{1/2} = 2^O, can never occur
// in a node configuration (no choice exists), so omitting it up front only
// anticipates compression.
func NaiveHalfStep(p *Problem) (*Problem, error) {
	n := p.Alpha.Size()
	if n > naiveAlphabetCap {
		return nil, fmt.Errorf("core: naive half step: alphabet size %d exceeds cap %d", n, naiveAlphabetCap)
	}
	sets := allNonEmptySubsets(n)
	alpha := derivedAlphabet(p.Alpha, sets)
	rel := newEdgeRelation(p.Edge, n)

	edge := NewConstraint(2)
	for i := range sets {
		for j := i; j < len(sets); j++ {
			if universallyCompatible(rel, sets[i], sets[j]) {
				edge.MustAdd(NewConfig(Label(i), Label(j)))
			}
		}
	}

	node := NewConstraint(p.Delta())
	candidates := candidateLists(sets, n)
	budget := newStateBudget(defaultMaxStates)
	for _, cfg := range p.Node.Configs() {
		if err := liftConfig(cfg, candidates, node, budget); err != nil {
			return nil, err
		}
	}

	derived := &Problem{Alpha: alpha, Edge: edge, Node: node}
	return derived.Compress(), nil
}

// NaiveSecondHalfStep computes the unsimplified derived problem Π_1 from
// Π_{1/2}: the node constraint is the universal condition (Property 4)
// over all multisets of non-empty subsets, and the edge constraint the
// existential condition (Property 3). The result is compressed.
func NaiveSecondHalfStep(half *Problem) (*Problem, error) {
	n := half.Alpha.Size()
	if n > naiveAlphabetCap {
		return nil, fmt.Errorf("core: naive second half step: alphabet size %d exceeds cap %d", n, naiveAlphabetCap)
	}
	sets := allNonEmptySubsets(n)
	alpha := derivedAlphabet(half.Alpha, sets)

	node := NewConstraint(half.Delta())
	arena := newSetArena(n)
	collect := func(counts map[int]int) {
		groups := make([]setGroup, 0, len(counts))
		lcounts := make(map[Label]int, len(counts))
		for si, c := range counts {
			groups = append(groups, setGroup{set: sets[si], count: c})
			lcounts[Label(si)] += c
		}
		sc := newSetConfig(arena, groups)
		if sc.allChoicesIn(arena, half.Node, nil) {
			cfg, err := NewConfigCounts(lcounts)
			if err == nil {
				node.MustAdd(cfg)
			}
		}
	}
	enumerateMultisets(len(sets), half.Delta(), collect)

	rel := newEdgeRelation(half.Edge, n)
	edge := NewConstraint(2)
	for i := range sets {
		reach := bitset.New(n)
		sets[i].ForEach(func(w int) bool {
			reach.UnionInPlace(rel.neighbors[w])
			return true
		})
		for j := i; j < len(sets); j++ {
			if reach.Intersects(sets[j]) {
				edge.MustAdd(NewConfig(Label(i), Label(j)))
			}
		}
	}

	derived := &Problem{Alpha: alpha, Edge: edge, Node: node}
	return derived.Compress(), nil
}

// MaximalEdgePairsBrute enumerates, by brute force over the power set, the
// multisets {Y, Z} satisfying Property 5 (universal compatibility plus
// mutual maximality). Returned as pairs of bitsets with Y.Key() ≤ Z.Key().
func MaximalEdgePairsBrute(p *Problem) ([][2]bitset.Set, error) {
	n := p.Alpha.Size()
	if n > naiveAlphabetCap {
		return nil, fmt.Errorf("core: brute maximal pairs: alphabet size %d exceeds cap %d", n, naiveAlphabetCap)
	}
	rel := newEdgeRelation(p.Edge, n)
	sets := allSubsets(n)
	var out [][2]bitset.Set
	for i := range sets {
		for j := i; j < len(sets); j++ {
			y, z := sets[i], sets[j]
			if !universallyCompatible(rel, y, z) {
				continue
			}
			if maximalPair(rel, y, z, n) {
				a, b := y, z
				if b.Key() < a.Key() {
					a, b = b, a
				}
				out = append(out, [2]bitset.Set{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if k := out[i][0].Key(); k != out[j][0].Key() {
			return k < out[j][0].Key()
		}
		return out[i][1].Key() < out[j][1].Key()
	})
	return out, nil
}

func maximalPair(rel edgeRelation, y, z bitset.Set, n int) bool {
	for l := 0; l < n; l++ {
		if !y.Contains(l) {
			y2 := y.Clone()
			y2.Add(l)
			if universallyCompatible(rel, y2, z) {
				return false
			}
		}
		if !z.Contains(l) {
			z2 := z.Clone()
			z2.Add(l)
			if universallyCompatible(rel, y, z2) {
				return false
			}
		}
	}
	return true
}

func universallyCompatible(rel edgeRelation, y, z bitset.Set) bool {
	ok := true
	y.ForEach(func(a int) bool {
		if !z.SubsetOf(rel.neighbors[a]) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func allNonEmptySubsets(n int) []bitset.Set {
	subsets := allSubsets(n)
	return subsets[1:] // allSubsets emits the empty set first
}

func allSubsets(n int) []bitset.Set {
	if n > naiveAlphabetCap {
		panic("core: allSubsets: alphabet too large")
	}
	out := make([]bitset.Set, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		s := bitset.New(n)
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				s.Add(b)
			}
		}
		out = append(out, s)
	}
	// Sort by popcount then key so the empty set comes first and the order
	// is deterministic.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count() != out[j].Count() {
			return out[i].Count() < out[j].Count()
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

func candidateLists(sets []bitset.Set, n int) [][]Label {
	candidates := make([][]Label, n)
	for i, s := range sets {
		s.ForEach(func(y int) bool {
			candidates[y] = append(candidates[y], Label(i))
			return true
		})
	}
	return candidates
}

// enumerateMultisets calls fn for every multiset of size k over {0..n-1},
// passing element→multiplicity maps that must not be retained.
func enumerateMultisets(n, k int, fn func(counts map[int]int)) {
	counts := map[int]int{}
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			fn(counts)
			return
		}
		for i := start; i < n; i++ {
			counts[i]++
			rec(i, remaining-1)
			counts[i]--
			if counts[i] == 0 {
				delete(counts, i)
			}
		}
	}
	rec(0, k)
}
