package core

// Test-only exports of internal machinery for cross-validation.

// MaximalNodeSetConfigKeys runs the given enumeration strategy and returns
// the canonical keys of the maximal set-configurations.
func MaximalNodeSetConfigKeys(half *Problem, s Strategy, maxStates int) ([]string, error) {
	configs, arena, err := maximalNodeSetConfigs(half, speedupOptions{maxStates: maxStates, strategy: s})
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(configs))
	for i, sc := range configs {
		keys[i] = sc.canonicalKey(arena)
	}
	return keys, nil
}

// BruteMaximalNodeSetConfigKeys enumerates every multiset of non-empty
// subsets of the alphabet, keeps those whose every choice is in the node
// constraint, filters to the domination-maximal ones, and returns their
// canonical keys. Exponential; for tiny instances only.
func BruteMaximalNodeSetConfigKeys(half *Problem) []string {
	n := half.Alpha.Size()
	arena := newSetArena(n)
	sets := allNonEmptySubsets(n)
	var valid []setConfig
	enumerateMultisets(len(sets), half.Delta(), func(counts map[int]int) {
		groups := make([]setGroup, 0, len(counts))
		for si, c := range counts {
			groups = append(groups, setGroup{set: sets[si], count: c})
		}
		sc := newSetConfig(arena, groups)
		if sc.allChoicesIn(arena, half.Node, nil) {
			valid = append(valid, sc)
		}
	})
	var keys []string
	for i, sc := range valid {
		maximal := true
		for j, other := range valid {
			if i != j && sc.dominatedBy(arena, other) && !other.dominatedBy(arena, sc) {
				maximal = false
				break
			}
		}
		if maximal {
			keys = append(keys, sc.canonicalKey(arena))
		}
	}
	return dedupSorted(keys)
}

func dedupSorted(keys []string) []string {
	seen := map[string]bool{}
	out := keys[:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// EdgePairKeysOf extracts the canonical provenance-pair keys of a derived
// problem's edge constraint for comparison with MaximalEdgePairsBrute.
func EdgePairKeysOf(derived *Problem) []string {
	var out []string
	for _, cfg := range derived.Edge.Configs() {
		labels := cfg.Expand()
		a, okA := derived.Alpha.Provenance(labels[0])
		b, okB := derived.Alpha.Provenance(labels[1])
		if !okA || !okB {
			continue
		}
		ka, kb := a.Key(), b.Key()
		if kb < ka {
			ka, kb = kb, ka
		}
		out = append(out, ka+"|"+kb)
	}
	return out
}
