package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// FingerprintVersion is the version tag hashed into every StableKey.
// It must be bumped whenever the canonical serialization produced by
// CanonicalBytes, the semantics of the speedup transformation, or
// anything else that makes previously persisted results stale changes.
// Bumping it changes every key, which orphans (never corrupts) the old
// records of a persistent store — this is the store's whole
// cache-invalidation rule.
const FingerprintVersion = 1

// StableFingerprint is a cross-process, cross-version-stable identity
// of an exact problem representation: the SHA-256 of the problem's
// canonical serialization, salted with FingerprintVersion.
//
// It complements Fingerprint: a Fingerprint is an arena-local handle
// that is invariant under label renaming (two isomorphic problems can
// share one), cheap, and meaningless outside its Fingerprinter. A
// StableFingerprint is the opposite trade — globally meaningful bytes,
// sensitive to the exact label names and numbering, equal exactly when
// CanonicalBytes are equal. Content-addressed persistent stores key by
// StableFingerprint; in-memory memo tables key by Fingerprint.
type StableFingerprint [32]byte

// String renders the fingerprint as lowercase hex, the form used in
// on-disk object names.
func (f StableFingerprint) String() string {
	return hex.EncodeToString(f[:])
}

// StableKey returns the stable fingerprint of p's exact representation.
// Two problems receive equal keys iff their CanonicalBytes are equal
// (same label names in the same label order, same constraint sets, same
// Δ) and both keys were produced at the same FingerprintVersion.
//
// Because Speedup, RenameCompact and Compress are deterministic
// functions of this exact representation, StableKey is a sound
// memoization key for their results: equal keys guarantee byte-identical
// derived problems.
func StableKey(p *Problem) StableFingerprint {
	h := sha256.New()
	fmt.Fprintf(h, "repro-stable-fp v%d\x00", FingerprintVersion)
	h.Write(p.CanonicalBytes())
	var out StableFingerprint
	h.Sum(out[:0])
	return out
}

// canonicalHeader opens every canonical serialization; its version is
// part of FingerprintVersion's remit (bump both together).
const canonicalHeader = "repro-problem v1"

// CanonicalBytes serializes the problem exactly and deterministically:
// equal outputs iff Equal problems (same names in the same label order,
// same constraint sets). Unlike String/Parse — which infer the alphabet
// from the configuration lines and therefore cannot represent unused
// labels, empty constraints, or a specific label numbering — the
// canonical form carries the alphabet and Δ explicitly, so
// ParseCanonical(p.CanonicalBytes()) reconstructs p exactly (modulo
// display provenance, which is not part of a problem's identity).
//
// The layout is line-oriented and human-readable:
//
//	repro-problem v1
//	delta: 3
//	alphabet: A B C
//	node: 1
//	A^2 B
//	edge: 2
//	A A
//	A B
//
// Label names appear in label order (names cannot contain whitespace,
// '^' or '#', so space-joining is unambiguous); configuration lines use
// the "name^k" shorthand with parts in label order and follow the
// deterministic canonical order of Constraint.Configs. Section headers
// carry explicit configuration counts so empty constraints parse
// unambiguously.
func (p *Problem) CanonicalBytes() []byte {
	var sb strings.Builder
	sb.WriteString(canonicalHeader)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "delta: %d\n", p.Delta())
	sb.WriteString("alphabet:")
	for _, name := range p.Alpha.Names() {
		sb.WriteByte(' ')
		sb.WriteString(name)
	}
	sb.WriteByte('\n')
	writeSection := func(name string, c Constraint) {
		fmt.Fprintf(&sb, "%s: %d\n", name, c.Size())
		for _, cfg := range c.Configs() {
			sb.WriteString(cfg.String(p.Alpha))
			sb.WriteByte('\n')
		}
	}
	writeSection("node", p.Node)
	writeSection("edge", p.Edge)
	return []byte(sb.String())
}

// ParseAuto parses a problem in either supported text form, sniffing
// the first line: input opening with the canonical header goes through
// ParseCanonical (strict, representation-exact), anything else through
// Parse (the human-facing inferred-alphabet format). It exists so that
// interfaces accepting problems — the HTTP service, file-reading
// commands — can consume their own canonical output: every service
// response carries problems as CanonicalBytes, and feeding one back
// yields the exact same representation, hence the exact same StableKey.
func ParseAuto(text string) (*Problem, error) {
	trimmed := strings.TrimLeft(text, "\n")
	if first, _, _ := strings.Cut(trimmed, "\n"); first == canonicalHeader {
		return ParseCanonical([]byte(trimmed))
	}
	return Parse(text)
}

// ParseCanonical reconstructs a problem from CanonicalBytes output. It
// is strict: the header, the section order and the configuration counts
// must match exactly, and every label must belong to the declared
// alphabet. The round trip preserves label numbering, unused labels and
// empty constraints, so ParseCanonical(p.CanonicalBytes()).Equal(p)
// holds for every valid problem (provenance, a display aid, is not
// reconstructed).
func ParseCanonical(data []byte) (*Problem, error) {
	lines := strings.Split(string(data), "\n")
	// Canonical output ends with a newline; tolerate exactly that.
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	pos := 0
	next := func() (string, error) {
		if pos >= len(lines) {
			return "", fmt.Errorf("core: parse canonical: unexpected end of input at line %d", pos+1)
		}
		line := lines[pos]
		pos++
		return line, nil
	}

	line, err := next()
	if err != nil {
		return nil, err
	}
	if line != canonicalHeader {
		return nil, fmt.Errorf("core: parse canonical: bad header %q, want %q", line, canonicalHeader)
	}

	line, err = next()
	if err != nil {
		return nil, err
	}
	deltaStr, ok := strings.CutPrefix(line, "delta: ")
	if !ok {
		return nil, fmt.Errorf("core: parse canonical: line 2: want \"delta: <n>\", got %q", line)
	}
	delta, err := strconv.Atoi(deltaStr)
	if err != nil || delta < 1 {
		return nil, fmt.Errorf("core: parse canonical: line 2: bad delta %q", deltaStr)
	}

	line, err = next()
	if err != nil {
		return nil, err
	}
	if line != "alphabet:" && !strings.HasPrefix(line, "alphabet: ") {
		return nil, fmt.Errorf("core: parse canonical: line 3: want \"alphabet: ...\", got %q", line)
	}
	alpha, err := NewAlphabet(strings.Fields(strings.TrimPrefix(line, "alphabet:"))...)
	if err != nil {
		return nil, fmt.Errorf("core: parse canonical: line 3: %v", err)
	}

	readSection := func(name string, arity int) (Constraint, error) {
		header, err := next()
		if err != nil {
			return Constraint{}, err
		}
		countStr, ok := strings.CutPrefix(header, name+": ")
		if !ok {
			return Constraint{}, fmt.Errorf("core: parse canonical: line %d: want %q header, got %q", pos, name, header)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 0 {
			return Constraint{}, fmt.Errorf("core: parse canonical: line %d: bad count %q", pos, countStr)
		}
		c := NewConstraint(arity)
		for i := 0; i < count; i++ {
			cfgLine, err := next()
			if err != nil {
				return Constraint{}, err
			}
			counts := map[Label]int{}
			for _, item := range strings.Fields(cfgLine) {
				labelName, mult := item, 1
				if idx := strings.IndexByte(item, '^'); idx >= 0 {
					labelName = item[:idx]
					m, err := strconv.Atoi(item[idx+1:])
					if err != nil || m < 1 {
						return Constraint{}, fmt.Errorf("core: parse canonical: line %d: bad multiplicity in %q", pos, item)
					}
					mult = m
				}
				l, ok := alpha.Lookup(labelName)
				if !ok {
					return Constraint{}, fmt.Errorf("core: parse canonical: line %d: label %q not in alphabet", pos, labelName)
				}
				counts[l] += mult
			}
			cfg, err := NewConfigCounts(counts)
			if err != nil {
				return Constraint{}, fmt.Errorf("core: parse canonical: line %d: %v", pos, err)
			}
			if cfg.Arity() != arity {
				return Constraint{}, fmt.Errorf("core: parse canonical: line %d: configuration arity %d, want %d", pos, cfg.Arity(), arity)
			}
			if err := c.Add(cfg); err != nil {
				return Constraint{}, fmt.Errorf("core: parse canonical: line %d: %v", pos, err)
			}
		}
		return c, nil
	}

	node, err := readSection("node", delta)
	if err != nil {
		return nil, err
	}
	edge, err := readSection("edge", 2)
	if err != nil {
		return nil, err
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("core: parse canonical: trailing content at line %d", pos+1)
	}
	return NewProblem(alpha, edge, node)
}
