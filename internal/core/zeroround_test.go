package core

import (
	"testing"
)

func TestZeroRoundNoInputPositive(t *testing.T) {
	// A problem where everyone can output the same label everywhere.
	p := MustParse("node:\nA A A\nedge:\nA A")
	cfg, ok := ZeroRoundSolvableNoInput(p)
	if !ok {
		t.Fatal("trivially solvable problem reported unsolvable")
	}
	if cfg.Arity() != 3 {
		t.Error("witness has wrong arity")
	}
}

func TestZeroRoundNoInputNegative(t *testing.T) {
	// 2-coloring: the only configs are monochromatic but {A,A} is not an
	// edge config.
	p := MustParse("node:\nA A\nB B\nedge:\nA B")
	if _, ok := ZeroRoundSolvableNoInput(p); ok {
		t.Error("2-coloring reported 0-round solvable without input")
	}
}

func TestZeroRoundNoInputMixedSupport(t *testing.T) {
	// A config using two labels requires all pairs within the support.
	p := MustParse("node:\nA B\nedge:\nA B")
	// Pairs needed: {A,A}, {A,B}, {B,B}; only {A,B} present.
	if _, ok := ZeroRoundSolvableNoInput(p); ok {
		t.Error("missing same-label pairs not detected")
	}
	q := MustParse("node:\nA B\nedge:\nA B\nA A\nB B")
	if _, ok := ZeroRoundSolvableNoInput(q); !ok {
		t.Error("fully compatible support rejected")
	}
}

func TestZeroRoundOrientationConsistentOrientationCopy(t *testing.T) {
	// "Copy the input orientation": out-ports output O, in-ports output I;
	// every edge carries {O, I}. Any in/out split must be allowed at a
	// node, so h must contain all splits.
	text := "node:\n"
	for d := 0; d <= 3; d++ {
		line := ""
		if 3-d > 0 {
			line += "O^" + itoa(3-d) + " "
		}
		if d > 0 {
			line += "I^" + itoa(d)
		}
		text += line + "\n"
	}
	text += "edge:\nO I\n"
	p := MustParse(text)
	w, ok := ZeroRoundSolvableWithOrientation(p)
	if !ok {
		t.Fatal("orientation-copy problem reported unsolvable")
	}
	if len(w.PerInDegree) != 4 {
		t.Errorf("witness covers %d in-degrees, want 4", len(w.PerInDegree))
	}
}

func TestZeroRoundOrientationSinklessUnsolvable(t *testing.T) {
	// Sinkless orientation: even given an input orientation (which may
	// have sinks), 0 rounds do not suffice.
	p := MustParse(`
node:
1 0 0
1 1 0
1 1 1
edge:
0 1
`)
	if _, ok := ZeroRoundSolvableWithOrientation(p); ok {
		t.Error("sinkless orientation reported 0-round solvable with orientation input")
	}
}

func TestZeroRoundOrientationSubsumesNoInput(t *testing.T) {
	// Anything solvable without input is solvable with orientation input.
	p := MustParse("node:\nA A A\nedge:\nA A")
	if _, ok := ZeroRoundSolvableWithOrientation(p); !ok {
		t.Error("orientation checker rejects a no-input-solvable problem")
	}
}

func TestZeroRoundOrientationColoringUnsolvable(t *testing.T) {
	// 2-coloring with orientation input: a node must be monochromatic, so
	// only all-out or all-in splits exist; intermediate in-degrees fail.
	p := MustParse("node:\nA A A\nB B B\nedge:\nA B")
	if _, ok := ZeroRoundSolvableWithOrientation(p); ok {
		t.Error("2-coloring reported 0-round solvable with orientation input")
	}
}

func TestZeroRoundOrientationWitnessIsConsistent(t *testing.T) {
	// The witness's per-in-degree configs must be genuine node configs and
	// splittable as claimed.
	p := MustParse(`
node:
O O
O I
I I
edge:
O I
O O
I I
`)
	w, ok := ZeroRoundSolvableWithOrientation(p)
	if !ok {
		t.Fatal("expected solvable")
	}
	for d, cfg := range w.PerInDegree {
		if !p.Node.Contains(cfg) {
			t.Errorf("in-degree %d witness %s not a node config", d, cfg.String(p.Alpha))
		}
	}
}
