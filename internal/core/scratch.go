package core

// Pooled per-run scratch for the enumeration hot paths. Every speedup
// step builds and discards the same short-lived structures — interning
// arenas for closed-set dedup, label-multiplicity count maps, packed
// choice vectors — and at service request rates those allocations, not
// the set algebra, dominate the profile. The pools below recycle them
// across calls. Nothing pooled ever escapes into a result: results are
// built from fresh or arena-owned storage, and each helper's Put runs
// only after the last read of the scratch, so pooling is invisible to
// the byte-identity contract (locked by the golden corpus tests).

import (
	"sync"

	"repro/internal/intern"
)

// maxPooledTableWords bounds the arena size kept for reuse: a table
// whose data grew beyond this is a one-off giant (huge derived
// alphabet) and is dropped so the pool cannot pin its memory forever.
const maxPooledTableWords = 1 << 16

// tablePool recycles interning arenas used as per-call dedup scratch.
var tablePool = sync.Pool{New: func() any { return intern.NewTable(64) }}

// getTable returns an empty scratch arena.
func getTable() *intern.Table { return tablePool.Get().(*intern.Table) }

// putTable resets and recycles a scratch arena (oversized ones are
// dropped; see maxPooledTableWords).
func putTable(t *intern.Table) {
	if t.WordCap() > maxPooledTableWords {
		return
	}
	t.Reset()
	tablePool.Put(t)
}

// labelCountsPool recycles the Label-multiplicity maps the multiset
// enumerations (liftConfig, allChoicesIn) accumulate into.
var labelCountsPool = sync.Pool{New: func() any { return make(map[Label]int, 8) }}

// getLabelCounts returns an empty multiplicity map.
func getLabelCounts() map[Label]int { return labelCountsPool.Get().(map[Label]int) }

// putLabelCounts clears and recycles a multiplicity map.
func putLabelCounts(m map[Label]int) {
	clear(m)
	labelCountsPool.Put(m)
}

// choiceScratch is the per-call working state of fastNodeSet.allChoices:
// the packed multiplicity vector and the expanded member lists of each
// group. Pooled because the exploration strategy calls allChoices once
// per (configuration, candidate-label) pair — the innermost loop of
// SecondHalfStep.
type choiceScratch struct {
	counts  []uint64
	members [][]int
}

// choicePool recycles choiceScratch values across allChoices calls.
var choicePool = sync.Pool{New: func() any { return new(choiceScratch) }}

// getChoiceScratch returns scratch with counts zeroed to words lanes and
// members sized (but not filled) for groups entries.
func getChoiceScratch(words, groups int) *choiceScratch {
	cs := choicePool.Get().(*choiceScratch)
	if cap(cs.counts) < words {
		cs.counts = make([]uint64, words)
	} else {
		cs.counts = cs.counts[:words]
		clear(cs.counts)
	}
	if cap(cs.members) < groups {
		cs.members = make([][]int, groups)
	} else {
		cs.members = cs.members[:groups]
	}
	return cs
}

// putChoiceScratch recycles the scratch. The member lists themselves are
// kept for reuse (their backing arrays are overwritten by the next
// call's Indices fills).
func putChoiceScratch(cs *choiceScratch) { choicePool.Put(cs) }
