package core

import (
	"math/rand"

	"repro/internal/bitset"
)

// bsFrom builds a bitset over universe n from indices; test helper.
func bsFrom(n int, members []int) bitset.Set {
	return bitset.FromIndices(n, members...)
}

// randomProblem generates a small random problem for property tests:
// alphabet of the given size, each potential edge/node configuration
// included with the given density.
func randomProblem(rng *rand.Rand, alphabetSize, delta int, density float64) *Problem {
	names := make([]string, alphabetSize)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	alpha := MustAlphabet(names...)
	edge := NewConstraint(2)
	for i := 0; i < alphabetSize; i++ {
		for j := i; j < alphabetSize; j++ {
			if rng.Float64() < density {
				edge.MustAdd(NewConfig(Label(i), Label(j)))
			}
		}
	}
	node := NewConstraint(delta)
	enumerateMultisets(alphabetSize, delta, func(counts map[int]int) {
		if rng.Float64() < density {
			m := make(map[Label]int, len(counts))
			for l, c := range counts {
				m[Label(l)] = c
			}
			cfg, err := NewConfigCounts(m)
			if err == nil {
				node.MustAdd(cfg)
			}
		}
	})
	return &Problem{Alpha: alpha, Edge: edge, Node: node}
}
