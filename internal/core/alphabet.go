// Package core implements the problem calculus and the automatic speedup
// theorem of Brandt, "An Automatic Speedup Theorem for Distributed
// Problems" (PODC 2019).
//
// A locally checkable problem Π (for a fixed maximum degree Δ) is given by
// an alphabet of output labels, an edge constraint g(Δ) — the set of
// 2-element multisets of labels allowed on the two endpoints of an edge —
// and a node constraint h(Δ) — the set of Δ-element multisets allowed on
// the ports of a node (Section 3 of the paper).
//
// The central operation is the speedup transformation Π → Π_{1/2} → Π_1
// (Section 4.1): on t-independent graph classes of girth ≥ 2t+2, Π is
// solvable in t rounds iff Π_1 is solvable in t−1 rounds (Theorem 1), and
// the same holds for the simplified problem Π'_1 obtained via the
// maximality constraint (Theorem 2).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
)

// Label identifies an output label as an index into an Alphabet.
type Label int

// Alphabet is the ordered set of output labels of a problem. Labels of a
// problem derived by the speedup transformation are sets of labels of the
// predecessor problem; the alphabet records this provenance so derived
// problems can be displayed in the paper's set notation.
type Alphabet struct {
	names      []string
	provenance []bitset.Set // may be nil for base alphabets
	index      map[string]Label
}

// NewAlphabet creates an alphabet from label names. Names must be non-empty
// and distinct.
func NewAlphabet(names ...string) (*Alphabet, error) {
	a := &Alphabet{
		names: make([]string, 0, len(names)),
		index: make(map[string]Label, len(names)),
	}
	for _, n := range names {
		if err := a.add(n); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// MustAlphabet is NewAlphabet but panics on error; intended for literals in
// tests and examples.
func MustAlphabet(names ...string) *Alphabet {
	a, err := NewAlphabet(names...)
	if err != nil {
		panic(err)
	}
	return a
}

func (a *Alphabet) add(name string) error {
	if name == "" {
		return fmt.Errorf("core: empty label name")
	}
	if strings.ContainsAny(name, " \t\n^") {
		return fmt.Errorf("core: label name %q contains reserved characters", name)
	}
	if _, ok := a.index[name]; ok {
		return fmt.Errorf("core: duplicate label name %q", name)
	}
	a.index[name] = Label(len(a.names))
	a.names = append(a.names, name)
	return nil
}

// Size returns the number of labels.
func (a *Alphabet) Size() int { return len(a.names) }

// Name returns the name of label l.
func (a *Alphabet) Name(l Label) string {
	if int(l) < 0 || int(l) >= len(a.names) {
		return fmt.Sprintf("?%d", int(l))
	}
	return a.names[l]
}

// Names returns a copy of all label names in label order.
func (a *Alphabet) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// Lookup returns the label with the given name.
func (a *Alphabet) Lookup(name string) (Label, bool) {
	l, ok := a.index[name]
	return l, ok
}

// Provenance returns the set of predecessor labels this label was derived
// from, or (zero Set, false) for base alphabets.
func (a *Alphabet) Provenance(l Label) (bitset.Set, bool) {
	if a.provenance == nil || int(l) >= len(a.provenance) {
		return bitset.Set{}, false
	}
	return a.provenance[l], true
}

// derivedAlphabet builds an alphabet whose labels are sets of labels of
// prev. Each set is named in the paper's notation, e.g. "(A B)".
func derivedAlphabet(prev *Alphabet, sets []bitset.Set) *Alphabet {
	a := &Alphabet{
		names:      make([]string, 0, len(sets)),
		provenance: make([]bitset.Set, 0, len(sets)),
		index:      make(map[string]Label, len(sets)),
	}
	for _, s := range sets {
		name := setName(prev, s)
		// Distinct sets always get distinct names since names encode the
		// member list; add cannot fail on duplicates here by construction.
		if err := a.add(name); err != nil {
			panic(fmt.Sprintf("core: derived alphabet: %v", err))
		}
		a.provenance = append(a.provenance, s.Clone())
	}
	return a
}

// setName renders a set of labels of prev in the paper's set notation.
func setName(prev *Alphabet, s bitset.Set) string {
	parts := make([]string, 0, s.Count())
	s.ForEach(func(i int) bool {
		parts = append(parts, prev.Name(Label(i)))
		return true
	})
	if len(parts) == 0 {
		return "()"
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// compactNames generates short fresh names: A, B, ..., Z, A1, B1, ...
func compactNames(n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		letter := string(rune('A' + i%26))
		if i < 26 {
			out[i] = letter
		} else {
			out[i] = fmt.Sprintf("%s%d", letter, i/26)
		}
	}
	return out
}

// restrictedAlphabet returns a new alphabet containing only the labels in
// keep (in increasing label order), together with the mapping old→new.
func restrictedAlphabet(a *Alphabet, keep bitset.Set) (*Alphabet, map[Label]Label) {
	na := &Alphabet{index: make(map[string]Label, keep.Count())}
	remap := make(map[Label]Label, keep.Count())
	keep.ForEach(func(i int) bool {
		remap[Label(i)] = Label(len(na.names))
		na.names = append(na.names, a.names[i])
		na.index[a.names[i]] = Label(len(na.names) - 1)
		if a.provenance != nil {
			na.provenance = append(na.provenance, a.provenance[i])
		}
		return true
	})
	return na, remap
}

// sortedLabels returns the labels 0..n-1 sorted by name; used for canonical
// display ordering.
func sortedLabels(a *Alphabet) []Label {
	out := make([]Label, a.Size())
	for i := range out {
		out[i] = Label(i)
	}
	sort.Slice(out, func(i, j int) bool { return a.Name(out[i]) < a.Name(out[j]) })
	return out
}
