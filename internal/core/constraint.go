package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/intern"
)

// Constraint is a set of allowed configurations of a fixed arity: the
// paper's g(Δ) (arity 2) or h(Δ) (arity Δ).
//
// Configurations are identified by hash-consed handles of their packed
// (label, multiplicity) word encoding — membership and deduplication
// never materialize strings. Copies of a Constraint share storage, as
// the earlier map-backed representation did.
type Constraint struct {
	arity int
	rep   *constraintRep
}

type constraintRep struct {
	tab     *intern.Table
	configs []Config // indexed by intern.Handle

	mu     sync.Mutex
	sorted []Config // canonical-order cache; nil when stale
}

// NewConstraint returns an empty constraint of the given arity.
func NewConstraint(arity int) Constraint {
	if arity < 1 {
		panic("core: constraint arity must be positive")
	}
	return Constraint{arity: arity, rep: &constraintRep{tab: intern.NewTable(0)}}
}

// Arity returns the configuration arity.
func (c Constraint) Arity() int { return c.arity }

// Size returns the number of configurations.
func (c Constraint) Size() int {
	if c.rep == nil {
		return 0
	}
	return len(c.rep.configs)
}

// Add inserts a configuration; it is an error if the arity differs.
//
// Add is single-writer: the handle-indexed configs slice relies on
// insertions arriving in handle order, so Add must not run concurrently
// with itself or with readers of the same constraint. (The parallel
// lifting paths respect this by accumulating into per-worker constraints
// and merging sequentially.) Once building is done, concurrent readers —
// Contains, Configs, Size — are safe; the mutex below only guards the
// lazily built sorted cache shared by those readers.
func (c Constraint) Add(cfg Config) error {
	if cfg.Arity() != c.arity {
		return fmt.Errorf("core: config arity %d does not match constraint arity %d", cfg.Arity(), c.arity)
	}
	var buf [16]uint64
	h := c.rep.tab.Intern(cfg.appendWords(buf[:0]))
	if int(h) == len(c.rep.configs) {
		c.rep.configs = append(c.rep.configs, cfg)
		c.rep.mu.Lock()
		c.rep.sorted = nil
		c.rep.mu.Unlock()
	}
	return nil
}

// MustAdd is Add but panics on error; for literals in tests and catalogs.
func (c Constraint) MustAdd(cfg Config) {
	if err := c.Add(cfg); err != nil {
		panic(err)
	}
}

// AddLabels inserts the configuration formed by the given labels.
func (c Constraint) AddLabels(labels ...Label) error {
	return c.Add(NewConfig(labels...))
}

// Contains reports whether the configuration is allowed. It never
// inserts, so concurrent readers are safe.
func (c Constraint) Contains(cfg Config) bool {
	if c.rep == nil {
		return false
	}
	var buf [16]uint64
	_, ok := c.rep.tab.Lookup(cfg.appendWords(buf[:0]))
	return ok
}

// ContainsLabels reports whether the multiset of the given labels is
// allowed.
func (c Constraint) ContainsLabels(labels ...Label) bool {
	return c.Contains(NewConfig(labels...))
}

// Configs returns all configurations in a deterministic order: the
// handle-stable canonical sort by (label, multiplicity) sequence. The
// order is cached until the next Add.
func (c Constraint) Configs() []Config {
	if c.rep == nil {
		return nil
	}
	c.rep.mu.Lock()
	defer c.rep.mu.Unlock()
	if c.rep.sorted == nil {
		sorted := append([]Config(nil), c.rep.configs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].compare(sorted[j]) < 0 })
		c.rep.sorted = sorted
	}
	return c.rep.sorted
}

// Clone returns an independent copy.
func (c Constraint) Clone() Constraint {
	n := Constraint{arity: c.arity, rep: &constraintRep{
		tab:     c.rep.tab.Clone(),
		configs: append([]Config(nil), c.rep.configs...),
	}}
	return n
}

// UsedLabels returns the set of labels occurring in at least one
// configuration, as a bitset over an alphabet of the given size.
func (c Constraint) UsedLabels(alphabetSize int) bitset.Set {
	s := bitset.New(alphabetSize)
	if c.rep == nil {
		return s
	}
	for _, cfg := range c.rep.configs {
		for _, p := range cfg.pairs {
			s.Add(int(p.label))
		}
	}
	return s
}

// Restrict returns the constraint containing only configurations whose
// support lies in keep, with labels renumbered through remap.
func (c Constraint) Restrict(keep bitset.Set, remap map[Label]Label) Constraint {
	n := NewConstraint(c.arity)
	for _, cfg := range c.rep.configs {
		ok := true
		for _, p := range cfg.pairs {
			if !keep.Contains(int(p.label)) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		mapped, err := cfg.Remap(remap)
		if err != nil {
			panic(fmt.Sprintf("core: restrict: %v", err))
		}
		n.MustAdd(mapped)
	}
	return n
}

// Remap returns the constraint with every configuration remapped; distinct
// configurations may collapse.
func (c Constraint) Remap(m map[Label]Label) (Constraint, error) {
	n := NewConstraint(c.arity)
	for _, cfg := range c.rep.configs {
		mapped, err := cfg.Remap(m)
		if err != nil {
			return Constraint{}, err
		}
		n.MustAdd(mapped)
	}
	return n, nil
}

// Equal reports whether two constraints allow exactly the same
// configurations.
func (c Constraint) Equal(d Constraint) bool {
	if c.arity != d.arity || c.Size() != d.Size() {
		return false
	}
	if c.rep == nil {
		return true
	}
	for _, cfg := range c.rep.configs {
		if !d.Contains(cfg) {
			return false
		}
	}
	return true
}

// edgeRelation precomputes, for an arity-2 constraint over an alphabet of
// size n, the symmetric relation rel[y][z] = ({y,z} ∈ g) and per-label
// neighbor bitsets.
type edgeRelation struct {
	n         int
	neighbors []bitset.Set
}

func newEdgeRelation(g Constraint, alphabetSize int) edgeRelation {
	if g.Arity() != 2 {
		panic("core: edge relation requires arity-2 constraint")
	}
	r := edgeRelation{n: alphabetSize, neighbors: make([]bitset.Set, alphabetSize)}
	for i := range r.neighbors {
		r.neighbors[i] = bitset.New(alphabetSize)
	}
	for _, cfg := range g.rep.configs {
		labels := cfg.Expand()
		y, z := labels[0], labels[1]
		r.neighbors[y].Add(int(z))
		r.neighbors[z].Add(int(y))
	}
	return r
}

// compatible reports whether {y,z} ∈ g.
func (r edgeRelation) compatible(y, z Label) bool {
	return r.neighbors[y].Contains(int(z))
}

// comp returns comp(S) = {y : ∀z ∈ S, {y,z} ∈ g}: the largest set every
// element of which is edge-compatible with every element of S. comp(∅) is
// the full alphabet.
func (r edgeRelation) comp(s bitset.Set) bitset.Set {
	out := bitset.Full(r.n)
	r.compInto(s, out)
	return out
}

// compInto computes comp(s) into dst without allocating; dst must share
// the relation's universe (any prior contents are overwritten).
func (r edgeRelation) compInto(s, dst bitset.Set) {
	dst.FillInPlace()
	s.ForEach(func(z int) bool {
		dst.IntersectInPlace(r.neighbors[z])
		return true
	})
}
