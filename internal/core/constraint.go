package core

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// Constraint is a set of allowed configurations of a fixed arity: the
// paper's g(Δ) (arity 2) or h(Δ) (arity Δ).
type Constraint struct {
	arity int
	set   map[string]Config
}

// NewConstraint returns an empty constraint of the given arity.
func NewConstraint(arity int) Constraint {
	if arity < 1 {
		panic("core: constraint arity must be positive")
	}
	return Constraint{arity: arity, set: make(map[string]Config)}
}

// Arity returns the configuration arity.
func (c Constraint) Arity() int { return c.arity }

// Size returns the number of configurations.
func (c Constraint) Size() int { return len(c.set) }

// Add inserts a configuration; it is an error if the arity differs.
func (c Constraint) Add(cfg Config) error {
	if cfg.Arity() != c.arity {
		return fmt.Errorf("core: config arity %d does not match constraint arity %d", cfg.Arity(), c.arity)
	}
	c.set[cfg.Key()] = cfg
	return nil
}

// MustAdd is Add but panics on error; for literals in tests and catalogs.
func (c Constraint) MustAdd(cfg Config) {
	if err := c.Add(cfg); err != nil {
		panic(err)
	}
}

// AddLabels inserts the configuration formed by the given labels.
func (c Constraint) AddLabels(labels ...Label) error {
	return c.Add(NewConfig(labels...))
}

// Contains reports whether the configuration is allowed.
func (c Constraint) Contains(cfg Config) bool {
	_, ok := c.set[cfg.Key()]
	return ok
}

// ContainsLabels reports whether the multiset of the given labels is
// allowed.
func (c Constraint) ContainsLabels(labels ...Label) bool {
	return c.Contains(NewConfig(labels...))
}

// Configs returns all configurations in a deterministic order (sorted by
// canonical key).
func (c Constraint) Configs() []Config {
	keys := make([]string, 0, len(c.set))
	for k := range c.set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Config, len(keys))
	for i, k := range keys {
		out[i] = c.set[k]
	}
	return out
}

// Clone returns an independent copy.
func (c Constraint) Clone() Constraint {
	n := NewConstraint(c.arity)
	for k, v := range c.set {
		n.set[k] = v
	}
	return n
}

// UsedLabels returns the set of labels occurring in at least one
// configuration, as a bitset over an alphabet of the given size.
func (c Constraint) UsedLabels(alphabetSize int) bitset.Set {
	s := bitset.New(alphabetSize)
	for _, cfg := range c.set {
		for _, p := range cfg.pairs {
			s.Add(int(p.label))
		}
	}
	return s
}

// Restrict returns the constraint containing only configurations whose
// support lies in keep, with labels renumbered through remap.
func (c Constraint) Restrict(keep bitset.Set, remap map[Label]Label) Constraint {
	n := NewConstraint(c.arity)
	for _, cfg := range c.set {
		ok := true
		for _, p := range cfg.pairs {
			if !keep.Contains(int(p.label)) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		mapped, err := cfg.Remap(remap)
		if err != nil {
			panic(fmt.Sprintf("core: restrict: %v", err))
		}
		n.set[mapped.Key()] = mapped
	}
	return n
}

// Remap returns the constraint with every configuration remapped; distinct
// configurations may collapse.
func (c Constraint) Remap(m map[Label]Label) (Constraint, error) {
	n := NewConstraint(c.arity)
	for _, cfg := range c.set {
		mapped, err := cfg.Remap(m)
		if err != nil {
			return Constraint{}, err
		}
		n.set[mapped.Key()] = mapped
	}
	return n, nil
}

// Equal reports whether two constraints allow exactly the same
// configurations.
func (c Constraint) Equal(d Constraint) bool {
	if c.arity != d.arity || len(c.set) != len(d.set) {
		return false
	}
	for k := range c.set {
		if _, ok := d.set[k]; !ok {
			return false
		}
	}
	return true
}

// edgeRelation precomputes, for an arity-2 constraint over an alphabet of
// size n, the symmetric relation rel[y][z] = ({y,z} ∈ g) and per-label
// neighbor bitsets.
type edgeRelation struct {
	n         int
	neighbors []bitset.Set
}

func newEdgeRelation(g Constraint, alphabetSize int) edgeRelation {
	if g.Arity() != 2 {
		panic("core: edge relation requires arity-2 constraint")
	}
	r := edgeRelation{n: alphabetSize, neighbors: make([]bitset.Set, alphabetSize)}
	for i := range r.neighbors {
		r.neighbors[i] = bitset.New(alphabetSize)
	}
	for _, cfg := range g.set {
		labels := cfg.Expand()
		y, z := labels[0], labels[1]
		r.neighbors[y].Add(int(z))
		r.neighbors[z].Add(int(y))
	}
	return r
}

// compatible reports whether {y,z} ∈ g.
func (r edgeRelation) compatible(y, z Label) bool {
	return r.neighbors[y].Contains(int(z))
}

// comp returns comp(S) = {y : ∀z ∈ S, {y,z} ∈ g}: the largest set every
// element of which is edge-compatible with every element of S. comp(∅) is
// the full alphabet.
func (r edgeRelation) comp(s bitset.Set) bitset.Set {
	out := bitset.Full(r.n)
	s.ForEach(func(z int) bool {
		out.IntersectInPlace(r.neighbors[z])
		return true
	})
	return out
}
