package core

import (
	"sort"
	"strconv"
	"strings"
)

// Isomorphic reports whether p and q are the same problem up to a renaming
// of labels, returning a witnessing bijection when they are. This is the
// fixed-point test of the lower-bound recipe: in Section 4.4 the paper
// shows Π_1 = Π for sinkless coloring, which (with Theorem 2) yields the
// Ω(log n) lower bound.
//
// The search is a backtracking bijection search pruned by label
// invariants (multiplicity profiles in both constraints), which keeps it
// instantaneous for the alphabet sizes arising in practice.
func Isomorphic(p, q *Problem) (LabelMap, bool) {
	if p.Alpha.Size() != q.Alpha.Size() ||
		p.Delta() != q.Delta() ||
		p.Edge.Size() != q.Edge.Size() ||
		p.Node.Size() != q.Node.Size() {
		return nil, false
	}
	n := p.Alpha.Size()

	sigP := labelSignatures(p)
	sigQ := labelSignatures(q)

	// Candidate targets per source label: equal signatures only.
	cand := make([][]Label, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if sigP[i] == sigQ[j] {
				cand[i] = append(cand[i], Label(j))
			}
		}
		if len(cand[i]) == 0 {
			return nil, false
		}
	}

	// Assign the most constrained labels first.
	order := make([]Label, n)
	for i := range order {
		order[i] = Label(i)
	}
	sort.Slice(order, func(i, j int) bool { return len(cand[order[i]]) < len(cand[order[j]]) })

	pos := make([]int, n)
	for i, l := range order {
		pos[l] = i
	}

	// Forward checking: verify each configuration of p as soon as its
	// support is fully assigned (indexed by the assignment step at which
	// that happens). Without this, highly symmetric problems (e.g. the
	// k-coloring derivations of Section 4.5) explode factorially.
	type check struct {
		cfg  Config
		edge bool
	}
	checksAt := make([][]check, n)
	addChecks := func(c Constraint, isEdge bool) {
		for _, cfg := range c.Configs() {
			last := 0
			for _, l := range cfg.Support() {
				if pos[l] > last {
					last = pos[l]
				}
			}
			checksAt[last] = append(checksAt[last], check{cfg: cfg, edge: isEdge})
		}
	}
	addChecks(p.Edge, true)
	addChecks(p.Node, false)

	assignment := make(LabelMap, n)
	used := make([]bool, n)
	var rec func(step int) bool
	rec = func(step int) bool {
		if step == n {
			// All configurations already verified incrementally; the
			// counts match, so the map is a bijection onto q's configs.
			return true
		}
		l := order[step]
		for _, img := range cand[l] {
			if used[img] {
				continue
			}
			assignment[l] = img
			used[img] = true
			ok := true
			for _, ch := range checksAt[step] {
				mapped, err := ch.cfg.Remap(assignment)
				if err != nil {
					ok = false
					break
				}
				target := q.Node
				if ch.edge {
					target = q.Edge
				}
				if !target.Contains(mapped) {
					ok = false
					break
				}
			}
			if ok && rec(step+1) {
				return true
			}
			used[img] = false
			delete(assignment, l)
		}
		return false
	}
	if rec(0) {
		return assignment, true
	}
	return nil, false
}

// IsoInvariantKey returns a fingerprint that is equal for isomorphic
// problems: description sizes plus the sorted multiset of per-label
// signatures. It is a cheap necessary condition — distinct keys prove
// non-isomorphism, equal keys must be confirmed with Isomorphic — which
// makes it the right hash-bucket key for memoizing problems up to
// renaming (as the fixpoint driver does).
func IsoInvariantKey(p *Problem) string {
	sig := labelSignatures(p)
	sort.Strings(sig)
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(p.Alpha.Size()))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(p.Delta()))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(p.Edge.Size()))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(p.Node.Size()))
	for _, s := range sig {
		sb.WriteByte(';')
		sb.WriteString(s)
	}
	return sb.String()
}

// labelSignatures computes a renaming-invariant fingerprint per label: the
// sorted list of (multiplicity-profile, own-multiplicity) participations
// in each constraint.
func labelSignatures(p *Problem) []string {
	n := p.Alpha.Size()
	parts := make([][]string, n)
	collect := func(c Constraint, tag string) {
		for _, cfg := range c.Configs() {
			// Profile: sorted multiplicities of the configuration.
			mults := make([]int, 0, 4)
			cfg.ForEach(func(_ Label, count int) { mults = append(mults, count) })
			sort.Ints(mults)
			profParts := make([]string, len(mults))
			for i, m := range mults {
				profParts[i] = strconv.Itoa(m)
			}
			prof := tag + strings.Join(profParts, ".")
			cfg.ForEach(func(l Label, count int) {
				parts[l] = append(parts[l], prof+"@"+strconv.Itoa(count))
			})
		}
	}
	collect(p.Edge, "e")
	collect(p.Node, "n")
	out := make([]string, n)
	for i := range parts {
		sort.Strings(parts[i])
		out[i] = strings.Join(parts[i], "|")
	}
	return out
}
