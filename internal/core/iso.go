package core

import (
	"sort"

	"repro/internal/intern"
)

// Isomorphic reports whether p and q are the same problem up to a renaming
// of labels, returning a witnessing bijection when they are. This is the
// fixed-point test of the lower-bound recipe: in Section 4.4 the paper
// shows Π_1 = Π for sinkless coloring, which (with Theorem 2) yields the
// Ω(log n) lower bound.
//
// The search is a backtracking bijection search pruned by label
// invariants (multiplicity profiles in both constraints), which keeps it
// instantaneous for the alphabet sizes arising in practice.
func Isomorphic(p, q *Problem) (LabelMap, bool) {
	if p.Alpha.Size() != q.Alpha.Size() ||
		p.Delta() != q.Delta() ||
		p.Edge.Size() != q.Edge.Size() ||
		p.Node.Size() != q.Node.Size() {
		return nil, false
	}
	n := p.Alpha.Size()

	// Signatures of both problems are interned in one shared arena, so
	// equal handles mean equal signatures.
	f := NewFingerprinter()
	sigP := f.labelSignatures(p)
	sigQ := f.labelSignatures(q)

	// Candidate targets per source label: equal signatures only.
	cand := make([][]Label, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if sigP[i] == sigQ[j] {
				cand[i] = append(cand[i], Label(j))
			}
		}
		if len(cand[i]) == 0 {
			return nil, false
		}
	}

	// Assign the most constrained labels first.
	order := make([]Label, n)
	for i := range order {
		order[i] = Label(i)
	}
	sort.Slice(order, func(i, j int) bool { return len(cand[order[i]]) < len(cand[order[j]]) })

	pos := make([]int, n)
	for i, l := range order {
		pos[l] = i
	}

	// Forward checking: verify each configuration of p as soon as its
	// support is fully assigned (indexed by the assignment step at which
	// that happens). Without this, highly symmetric problems (e.g. the
	// k-coloring derivations of Section 4.5) explode factorially.
	type check struct {
		cfg  Config
		edge bool
	}
	checksAt := make([][]check, n)
	addChecks := func(c Constraint, isEdge bool) {
		for _, cfg := range c.Configs() {
			last := 0
			for _, l := range cfg.Support() {
				if pos[l] > last {
					last = pos[l]
				}
			}
			checksAt[last] = append(checksAt[last], check{cfg: cfg, edge: isEdge})
		}
	}
	addChecks(p.Edge, true)
	addChecks(p.Node, false)

	assignment := make(LabelMap, n)
	used := make([]bool, n)
	var rec func(step int) bool
	rec = func(step int) bool {
		if step == n {
			// All configurations already verified incrementally; the
			// counts match, so the map is a bijection onto q's configs.
			return true
		}
		l := order[step]
		for _, img := range cand[l] {
			if used[img] {
				continue
			}
			assignment[l] = img
			used[img] = true
			ok := true
			for _, ch := range checksAt[step] {
				mapped, err := ch.cfg.Remap(assignment)
				if err != nil {
					ok = false
					break
				}
				target := q.Node
				if ch.edge {
					target = q.Edge
				}
				if !target.Contains(mapped) {
					ok = false
					break
				}
			}
			if ok && rec(step+1) {
				return true
			}
			used[img] = false
			delete(assignment, l)
		}
		return false
	}
	if rec(0) {
		return assignment, true
	}
	return nil, false
}

// Fingerprint identifies an iso-invariant fingerprint within one
// Fingerprinter: two problems fingerprinted by the same Fingerprinter
// receive equal handles iff their description sizes and per-label
// signature multisets agree. A cheap necessary condition — distinct
// fingerprints prove non-isomorphism, equal fingerprints must be
// confirmed with Isomorphic — which makes it the right hash-bucket key
// for memoizing problems up to renaming (as the fixpoint driver does).
type Fingerprint = intern.Handle

// Fingerprinter hash-conses renaming-invariant fingerprints. All
// problems to be compared must pass through the same Fingerprinter;
// handles from different instances are unrelated. The arenas replace
// the engine's former string fingerprints (IsoInvariantKey) — no
// string is materialized anywhere on the memo path.
type Fingerprinter struct {
	profiles *intern.Table // sorted multiplicity vectors of configurations
	sigs     *intern.Table // per-label participation code sequences
	fps      *intern.Table // whole-problem fingerprints
}

// NewFingerprinter returns an empty fingerprint arena.
func NewFingerprinter() *Fingerprinter {
	return &Fingerprinter{
		profiles: intern.NewTable(0),
		sigs:     intern.NewTable(0),
		fps:      intern.NewTable(0),
	}
}

// Reset empties the fingerprint arenas in place, keeping their backing
// storage, so a pooled Fingerprinter can be reused across runs. Every
// previously returned Fingerprint is invalidated: fingerprints are only
// comparable within one Reset epoch.
func (f *Fingerprinter) Reset() {
	f.profiles.Reset()
	f.sigs.Reset()
	f.fps.Reset()
}

// Fingerprint returns the interned fingerprint of p: description sizes
// plus the sorted multiset of per-label signature handles.
func (f *Fingerprinter) Fingerprint(p *Problem) Fingerprint {
	sigs := f.labelSignatures(p)
	words := make([]uint64, 0, len(sigs)+4)
	words = append(words,
		uint64(p.Alpha.Size()), uint64(p.Delta()),
		uint64(p.Edge.Size()), uint64(p.Node.Size()))
	codes := make([]uint64, len(sigs))
	for i, h := range sigs {
		codes[i] = uint64(h)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	return f.fps.Intern(append(words, codes...))
}

// labelSignatures computes a renaming-invariant fingerprint per label —
// the sorted list of (constraint tag, multiplicity profile,
// own-multiplicity) participations — interned to one handle per label.
func (f *Fingerprinter) labelSignatures(p *Problem) []intern.Handle {
	n := p.Alpha.Size()
	codes := make([][]uint64, n)
	var profBuf []uint64
	collect := func(c Constraint, tag uint64) {
		for _, cfg := range c.Configs() {
			// Profile: sorted multiplicities of the configuration.
			profBuf = profBuf[:0]
			cfg.ForEach(func(_ Label, count int) { profBuf = append(profBuf, uint64(count)) })
			sort.Slice(profBuf, func(i, j int) bool { return profBuf[i] < profBuf[j] })
			prof := f.profiles.Intern(profBuf)
			cfg.ForEach(func(l Label, count int) {
				codes[l] = append(codes[l], uint64(prof)<<32|uint64(count)<<1|tag)
			})
		}
	}
	collect(p.Edge, 0)
	collect(p.Node, 1)
	out := make([]intern.Handle, n)
	for i := range codes {
		sort.Slice(codes[i], func(a, b int) bool { return codes[i][a] < codes[i][b] })
		out[i] = f.sigs.Intern(codes[i])
	}
	return out
}
