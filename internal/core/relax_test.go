package core

import (
	"math/rand"
	"testing"
)

func twoColoring(delta int) *Problem {
	return MustParse(`
node:
A^` + itoa(delta) + `
B^` + itoa(delta) + `
edge:
A B
`)
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestCheckRelaxationColoring(t *testing.T) {
	// 2-coloring relaxes to 3-coloring (inject colors).
	src := MustParse("node:\nA A\nB B\nedge:\nA B")
	dst := MustParse("node:\nX X\nY Y\nZ Z\nedge:\nX Y\nX Z\nY Z")
	m := LabelMap{}
	a, _ := src.Alpha.Lookup("A")
	b, _ := src.Alpha.Lookup("B")
	x, _ := dst.Alpha.Lookup("X")
	y, _ := dst.Alpha.Lookup("Y")
	m[a], m[b] = x, y
	if err := CheckRelaxation(src, dst, m); err != nil {
		t.Errorf("injection should be a relaxation: %v", err)
	}
	// The reverse direction (3 colors into 2) must fail.
	if _, ok := FindRelaxation(dst, src); ok {
		t.Error("3-coloring should not relax to 2-coloring on these constraints")
	}
}

func TestFindRelaxationFindsInjection(t *testing.T) {
	src := MustParse("node:\nA A\nB B\nedge:\nA B")
	dst := MustParse("node:\nX X\nY Y\nZ Z\nedge:\nX Y\nX Z\nY Z")
	m, ok := FindRelaxation(src, dst)
	if !ok {
		t.Fatal("no relaxation found")
	}
	if err := CheckRelaxation(src, dst, m); err != nil {
		t.Errorf("found map does not verify: %v", err)
	}
}

func TestCheckRelaxationRejects(t *testing.T) {
	src := MustParse("node:\nA A\nedge:\nA A")
	dst := MustParse("node:\nX X\nedge:\nX Y\nnode:\nY Y")
	a, _ := src.Alpha.Lookup("A")
	x, _ := dst.Alpha.Lookup("X")
	// Maps A→X but {X,X} is not an edge config of dst.
	if err := CheckRelaxation(src, dst, LabelMap{a: x}); err == nil {
		t.Error("invalid relaxation accepted")
	}
	// Missing image.
	if err := CheckRelaxation(src, dst, LabelMap{}); err == nil {
		t.Error("partial map accepted")
	}
	// Δ mismatch.
	other := MustParse("node:\nA A A\nedge:\nA A")
	if err := CheckRelaxation(src, other, LabelMap{a: 0}); err == nil {
		t.Error("Δ mismatch accepted")
	}
}

// TestFindRelaxationAgreesWithBrute compares the backtracking search with
// exhaustive map enumeration on random small problems.
func TestFindRelaxationAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		src := randomProblem(rng, 1+rng.Intn(3), 2, 0.5)
		dst := randomProblem(rng, 1+rng.Intn(3), 2, 0.5)
		_, got := FindRelaxation(src, dst)
		want := bruteRelaxationExists(src, dst)
		if got != want {
			t.Fatalf("iter %d: FindRelaxation=%v brute=%v\nsrc:\n%s\ndst:\n%s",
				iter, got, want, src.String(), dst.String())
		}
	}
}

func bruteRelaxationExists(src, dst *Problem) bool {
	nSrc, nDst := src.Alpha.Size(), dst.Alpha.Size()
	if nDst == 0 {
		return nSrc == 0
	}
	assign := make(LabelMap, nSrc)
	var rec func(l int) bool
	rec = func(l int) bool {
		if l == nSrc {
			return CheckRelaxation(src, dst, assign) == nil
		}
		for img := 0; img < nDst; img++ {
			assign[Label(l)] = Label(img)
			if rec(l + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func TestRestrictionIsHarder(t *testing.T) {
	// Restricting 3-coloring by removing a color gives 2-coloring, and the
	// identity embedding witnesses "restriction relaxes to original".
	p := MustParse("node:\nX X\nY Y\nZ Z\nedge:\nX Y\nX Z\nY Z")
	z, _ := p.Alpha.Lookup("Z")
	r := Restriction(p, z)
	if r.Alpha.Size() != 2 || r.Node.Size() != 2 || r.Edge.Size() != 1 {
		t.Fatalf("restriction stats wrong: %+v", r.Stats())
	}
	if _, ok := FindRelaxation(r, p); !ok {
		t.Error("restriction should relax to the original problem")
	}
}
