package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/intern"
	"repro/internal/par"
)

// ErrStateBudget is wrapped by every budget-exhaustion failure of the
// speedup enumerations, so callers (e.g. the fixpoint driver) can
// distinguish "too big to enumerate" from genuine internal errors.
var ErrStateBudget = errors.New("state budget exceeded")

// Strategy selects the algorithm used to enumerate the maximal node
// configurations of the derived problem Π'_1.
type Strategy int

// Enumeration strategies. Both are exact; they differ in what they scale
// with. Exploration visits every valid set-configuration (fast when that
// space is moderate); Combine maintains an antichain closed under the
// combine operation (fast when the antichain is small even though the
// valid space is huge).
const (
	StrategyExplore Strategy = iota + 1
	StrategyCombine
)

// speedupOptions carries tunables for the speedup transformation.
type speedupOptions struct {
	maxStates int
	strategy  Strategy
	workers   int
}

// workerCount resolves the effective worker count for a unit of n
// independent work items: the configured count (GOMAXPROCS when
// unset), clamped to n.
func (o speedupOptions) workerCount(n int) int {
	return par.WorkerCount(o.workers, n)
}

// Option configures Speedup, HalfStep and SecondHalfStep.
type Option func(*speedupOptions)

// defaultMaxStates bounds the search space of the maximal-configuration
// enumeration; derived problems beyond this size are rejected rather than
// silently truncated.
const defaultMaxStates = 4_000_000

// WithMaxStates overrides the safety cap on the number of intermediate
// set-configurations explored while computing the maximal node constraint.
func WithMaxStates(n int) Option {
	return func(o *speedupOptions) { o.maxStates = n }
}

// WithStrategy selects the maximal-configuration enumeration strategy.
func WithStrategy(s Strategy) Option {
	return func(o *speedupOptions) { o.strategy = s }
}

// WithWorkers sets the number of concurrent workers used by the
// enumeration hot paths (HalfStep's config lifting and SecondHalfStep's
// maximal-set exploration). n <= 0 selects runtime.GOMAXPROCS(0), the
// default. Results are byte-identical for every worker count: shards
// are merged into the same canonical-key maps and emitted in sorted
// order.
func WithWorkers(n int) Option {
	return func(o *speedupOptions) { o.workers = n }
}

func buildOptions(opts []Option) speedupOptions {
	o := speedupOptions{maxStates: defaultMaxStates, strategy: StrategyExplore}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// HalfStep derives the simplified problem Π'_{1/2} from Π (Section 4.1
// first step, with the maximality constraint of Property 5, Section 4.2).
//
// Labels of Π'_{1/2} are sets of labels of Π. The edge constraint contains
// exactly the multisets {Y, Z} such that every pair (y ∈ Y, z ∈ Z) is in
// g(Δ) and both sets are maximal with this property; the node constraint
// contains the multisets {Y_1, ..., Y_Δ} admitting a choice y_i ∈ Y_i with
// {y_1, ..., y_Δ} ∈ h(Δ) (Property 2).
//
// Maximal pairs form a Galois connection: {Y, Z} is maximal iff
// Z = comp(Y) and Y = comp(Z), where comp(S) is the set of labels
// edge-compatible with all of S. The closed sets are exactly the
// intersections of the per-label compatibility sets, which this function
// enumerates directly (no power-set sweep).
func HalfStep(p *Problem, opts ...Option) (*Problem, error) {
	o := buildOptions(opts)
	n := p.Alpha.Size()
	rel := newEdgeRelation(p.Edge, n)

	// New alphabet: the closed sets, already deduplicated and sorted
	// canonically by closedSets. Interning them in sorted order makes
	// handle i the derived label i, so the comp lookup below is a plain
	// arena probe instead of a string-keyed map. The index arena and the
	// comp scratch set are pooled per-call scratch: nothing derived from
	// them outlives this function.
	sets := closedSets(rel, n)
	indexOf := getTable()
	defer putTable(indexOf)
	for _, s := range sets {
		indexOf.Intern(s.Words())
	}
	alpha := derivedAlphabet(p.Alpha, sets)

	// Edge constraint: {Y, comp(Y)} for each closed Y.
	edge := NewConstraint(2)
	partner := bitset.Get(n)
	defer bitset.Put(partner)
	for i, s := range sets {
		rel.compInto(s, partner)
		j, ok := indexOf.Lookup(partner.Words())
		if !ok {
			// comp of a closed set is closed, so it must be present.
			return nil, fmt.Errorf("core: half step: comp image not closed (internal error)")
		}
		edge.MustAdd(NewConfig(Label(i), Label(j)))
	}

	// Node constraint: lift every h-configuration through all coverings.
	// candidates[y] lists the new labels whose set contains old label y.
	candidates := make([][]Label, n)
	for i, s := range sets {
		s.ForEach(func(y int) bool {
			candidates[y] = append(candidates[y], Label(i))
			return true
		})
	}
	configs := p.Node.Configs()
	budget := newStateBudget(o.maxStates)
	workers := o.workerCount(len(configs))
	node := NewConstraint(p.Delta())
	if workers <= 1 {
		for _, cfg := range configs {
			if err := liftConfig(cfg, candidates, node, budget); err != nil {
				return nil, err
			}
		}
	} else {
		// Shard the per-config lifting across workers, each with a
		// private accumulator; the shared atomic budget preserves the
		// WithMaxStates semantics (total emissions bounded) exactly.
		accs := make([]Constraint, workers)
		for w := range accs {
			accs[w] = NewConstraint(p.Delta())
		}
		err := runSharded(workers, len(configs), func(w, i int) error {
			return liftConfig(configs[i], candidates, accs[w], budget)
		})
		if err != nil {
			return nil, err
		}
		// Merge deterministically: accumulators insert into one
		// canonical-key map, so the result is order-independent.
		for _, acc := range accs {
			for _, cfg := range acc.Configs() {
				if err := node.Add(cfg); err != nil {
					return nil, err
				}
			}
		}
	}

	derived := &Problem{Alpha: alpha, Edge: edge, Node: node}
	return derived.Compress(), nil
}

// closedSets returns all intersections of per-label compatibility sets,
// including the full set (the empty intersection), sorted canonically
// (bitset.Compare preserves the legacy key order) so derived label
// numbering is identical across runs.
//
// The accumulator is a hash-consed arena pre-sized from rel.neighbors:
// each round intersects the new neighbor set with the sets collected so
// far, and intersections that are already present are skipped before
// any append — the arena probe is the membership test — instead of
// being re-inserted (the old map rebuilt and re-keyed every
// intersection, a quadratic waste once the closure stabilizes).
func closedSets(rel edgeRelation, n int) []bitset.Set {
	acc := getTable()
	defer putTable(acc)
	sets := make([]bitset.Set, 0, n+1)
	sets = append(sets, bitset.Full(n))
	acc.Intern(sets[0].Words())
	scratch := bitset.Get(n)
	defer bitset.Put(scratch)
	for z := 0; z < n; z++ {
		nb := rel.neighbors[z]
		// Intersect nb with everything collected so far (the snapshot
		// suffices: sets added this round are already intersected with
		// nb, so re-intersecting them is a no-op).
		for i, m := 0, len(sets); i < m; i++ {
			sets[i].IntersectInto(nb, scratch)
			if _, ok := acc.Lookup(scratch.Words()); ok {
				continue
			}
			s := scratch.Clone()
			acc.Intern(s.Words())
			sets = append(sets, s)
		}
	}
	sort.Slice(sets, func(i, j int) bool { return bitset.Compare(sets[i], sets[j]) < 0 })
	return sets
}

// liftConfig enumerates all multisets of new labels covering cfg: every
// slot holding old label y is replaced by a new label whose set contains y.
// Results are inserted into dst. The budget is shared (atomically) with
// any concurrent lifts of sibling configurations.
func liftConfig(cfg Config, candidates [][]Label, dst Constraint, budget *stateBudget) error {
	type group struct {
		cands []Label
		count int
	}
	groups := make([]group, 0, 4)
	feasible := true
	cfg.ForEach(func(l Label, count int) {
		if len(candidates[l]) == 0 {
			feasible = false
			return
		}
		groups = append(groups, group{cands: candidates[l], count: count})
	})
	if !feasible {
		return nil
	}

	counts := getLabelCounts()
	defer putLabelCounts(counts)
	var rec func(gi int) error
	rec = func(gi int) error {
		if gi == len(groups) {
			if !budget.Take() {
				return fmt.Errorf("core: half step: derived node constraint exceeds state budget: %w", ErrStateBudget)
			}
			c, err := NewConfigCounts(counts)
			if err != nil {
				return err
			}
			return dst.Add(c)
		}
		g := groups[gi]
		// Choose a multiset of size g.count from g.cands: iterate
		// non-decreasing index sequences.
		var choose func(start, remaining int) error
		choose = func(start, remaining int) error {
			if remaining == 0 {
				return rec(gi + 1)
			}
			for i := start; i < len(g.cands); i++ {
				counts[g.cands[i]]++
				if err := choose(i, remaining-1); err != nil {
					return err
				}
				counts[g.cands[i]]--
				if counts[g.cands[i]] == 0 {
					delete(counts, g.cands[i])
				}
			}
			return nil
		}
		return choose(0, g.count)
	}
	return rec(0)
}

// SecondHalfStep derives the simplified problem Π'_1 from Π'_{1/2}
// (Section 4.1 second step with the maximality constraint of Property 6).
//
// Labels of Π'_1 are sets of labels of Π'_{1/2}. The node constraint
// contains the multisets {W_1, ..., W_Δ} such that every choice
// w_i ∈ W_i lies in the node constraint of Π'_{1/2} and the multiset is
// maximal with this property; the edge constraint contains the multisets
// {W, X} admitting w ∈ W, x ∈ X with {w, x} in the edge constraint of
// Π'_{1/2} (Property 3).
func SecondHalfStep(half *Problem, opts ...Option) (*Problem, error) {
	o := buildOptions(opts)
	maximal, arena, err := maximalNodeSetConfigs(half, o)
	if err != nil {
		return nil, err
	}

	// New alphabet: the distinct sets appearing in maximal
	// configurations. Groups carry arena handles, so collecting the
	// distinct sets is a dense membership scan; only the final
	// numbering sorts, by set content (the legacy key order).
	present := make([]bool, arena.sets.Len())
	handles := []intern.Handle{}
	for _, sc := range maximal {
		for _, g := range sc.groups {
			if !present[g.set] {
				present[g.set] = true
				handles = append(handles, g.set)
			}
		}
	}
	sort.Slice(handles, func(i, j int) bool {
		return bitset.Compare(arena.view(handles[i]), arena.view(handles[j])) < 0
	})
	sets := make([]bitset.Set, len(handles))
	labelOf := make([]Label, arena.sets.Len())
	for i, h := range handles {
		sets[i] = arena.view(h)
		labelOf[h] = Label(i)
	}
	alpha := derivedAlphabet(half.Alpha, sets)

	// Node constraint from the maximal set-configurations.
	node := NewConstraint(half.Delta())
	for _, sc := range maximal {
		counts := make(map[Label]int, len(sc.groups))
		for _, g := range sc.groups {
			counts[labelOf[g.set]] += g.count
		}
		c, err := NewConfigCounts(counts)
		if err != nil {
			return nil, err
		}
		if err := node.Add(c); err != nil {
			return nil, err
		}
	}

	// Edge constraint: existential lift of the half problem's relation.
	rel := newEdgeRelation(half.Edge, half.Alpha.Size())
	edge := NewConstraint(2)
	reach := bitset.Get(half.Alpha.Size())
	defer bitset.Put(reach)
	for i := range sets {
		// reach = union of compatibility neighborhoods of members of W.
		reach.ClearInPlace()
		sets[i].ForEach(func(w int) bool {
			reach.UnionInPlace(rel.neighbors[w])
			return true
		})
		for j := i; j < len(sets); j++ {
			if reach.Intersects(sets[j]) {
				edge.MustAdd(NewConfig(Label(i), Label(j)))
			}
		}
	}

	derived := &Problem{Alpha: alpha, Edge: edge, Node: node}
	return derived.Compress(), nil
}

// Speedup applies one full round elimination step: Π → Π'_{1/2} → Π'_1,
// returning the compressed derived problem. By Theorems 1 and 2, on
// t-independent graph classes of girth ≥ 2t+2 (with edge orientations in
// the input for the simplification), Π is solvable in t rounds iff the
// returned problem is solvable in t−1 rounds.
func Speedup(p *Problem, opts ...Option) (*Problem, error) {
	half, err := HalfStep(p, opts...)
	if err != nil {
		return nil, err
	}
	return SecondHalfStep(half, opts...)
}

// SpeedupSequence applies Speedup iteratively, renaming labels compactly
// after each step, and returns the sequence [Π_1, Π_2, ..., Π_steps]. It
// stops early (returning the shorter sequence and no error) if a derived
// problem becomes empty (no usable configurations).
func SpeedupSequence(p *Problem, steps int, opts ...Option) ([]*Problem, error) {
	out := make([]*Problem, 0, steps)
	cur := p
	for i := 0; i < steps; i++ {
		next, err := Speedup(cur, opts...)
		if err != nil {
			return out, err
		}
		next, _ = next.RenameCompact()
		out = append(out, next)
		if next.Node.Size() == 0 || next.Edge.Size() == 0 {
			return out, nil
		}
		cur = next
	}
	return out, nil
}
