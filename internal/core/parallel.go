package core

import (
	"sync"
	"sync/atomic"
)

// stateBudget is a concurrency-safe countdown over the WithMaxStates
// cap. Sequential and parallel enumeration paths share it, so the
// "total states explored" semantics are identical for every worker
// count: take succeeds exactly maxStates times in total.
type stateBudget struct {
	remaining atomic.Int64
}

func newStateBudget(n int) *stateBudget {
	b := &stateBudget{}
	b.remaining.Store(int64(n))
	return b
}

// take consumes one unit; it reports false once the budget is spent.
func (b *stateBudget) take() bool {
	return b.remaining.Add(-1) >= 0
}

// runIndexed executes fn(i) for i in [0, n) across the given number of
// workers, handing out indices through an atomic cursor (dynamic
// work-stealing, which tolerates wildly unbalanced item costs). With
// workers <= 1 it degrades to a plain loop with zero goroutine
// overhead.
func runIndexed(workers, n int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// runSharded is runIndexed for workers that accumulate into per-worker
// state: fn receives the worker id alongside the item index and may
// fail. The first error (in worker order) aborts the remaining items of
// every worker and is returned.
func runSharded(workers, n int, fn func(worker, i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
