package core

import (
	"repro/internal/par"
)

// The enumeration hot paths share the repository-wide parallel
// substrate of internal/par; these aliases keep core's historical
// names while the implementation lives in one place shared with
// internal/sim and internal/oracle.

// stateBudget is a concurrency-safe countdown over the WithMaxStates
// cap: take succeeds exactly maxStates times in total, for every
// worker count.
type stateBudget = par.Budget

func newStateBudget(n int) *stateBudget { return par.NewBudget(n) }

// runIndexed executes fn(i) for i in [0, n) across workers with
// dynamic work-stealing; see par.RunIndexed.
func runIndexed(workers, n int, fn func(i int)) { par.RunIndexed(workers, n, fn) }

// runSharded is runIndexed for per-worker accumulators with error
// propagation; see par.RunSharded.
func runSharded(workers, n int, fn func(worker, i int) error) error {
	return par.RunSharded(workers, n, fn)
}
