package core
