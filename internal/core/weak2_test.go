package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
)

// This file reproduces the Section 4.6 derivation for the pointer version
// of weak 2-coloring (Experiment E3).

// TestWeak2HalfHasSevenUsableOutputs checks the paper's count: "there are
// only 7 outputs that can be used by any correct algorithm for Π'_{1/2}".
func TestWeak2HalfHasSevenUsableOutputs(t *testing.T) {
	for delta := 2; delta <= 5; delta++ {
		p := problems.WeakTwoColoringPointer(delta)
		half, err := core.HalfStep(p)
		if err != nil {
			t.Fatal(err)
		}
		if half.Alpha.Size() != 7 {
			t.Errorf("Δ=%d: Π'_1/2 has %d usable labels, paper says 7", delta, half.Alpha.Size())
		}
		// The paper lists 5 maximal edge configurations of which one (the
		// one with an empty side) is unusable, leaving 4.
		if half.Edge.Size() != 4 {
			t.Errorf("Δ=%d: Π'_1/2 has %d usable edge configs, paper's list leaves 4", delta, half.Edge.Size())
		}
	}
}

// TestWeak2TritDescription verifies the equivalent trit-sequence
// description of Section 4.6: labels are the 7 length-2 trit sequences
// excluding 00 and 22; edges pair sequences whose tritwise sum is 22.
func TestWeak2TritDescription(t *testing.T) {
	p := problems.WeakTwoColoringPointer(3)
	half, err := core.HalfStep(p)
	if err != nil {
		t.Fatal(err)
	}
	// Build the trit description explicitly.
	want := core.MustParse(`
node:
20 10 10
10 20 20
02 01 01
01 02 02
20 10 11
10 20 21
02 01 11
01 02 12
11 20 02
11 10 01
21 12 11
# ... the node constraint is large; we only compare edges and labels,
# which characterize the description, below.
edge:
20 02
10 12
01 21
11 11
`)
	_ = want
	// Instead of enumerating the full trit node constraint by hand (the
	// paper doesn't either), verify the bijection on labels and edges:
	// map each label's provenance to its trit sequence.
	tritOf := func(l core.Label) string {
		prov, ok := half.Alpha.Provenance(l)
		if !ok {
			t.Fatalf("label %d has no provenance", l)
		}
		// Original alphabet: 1>, 1., 2>, 2. at indices 0..3. Trit at
		// position c = |prov ∩ {(c,>),(c,.)}|.
		trit := func(c int) int {
			count := 0
			if prov.Contains(2 * c) {
				count++
			}
			if prov.Contains(2*c + 1) {
				count++
			}
			return count
		}
		return string(rune('0'+trit(0))) + string(rune('0'+trit(1)))
	}
	seen := map[string]bool{}
	for l := 0; l < half.Alpha.Size(); l++ {
		s := tritOf(core.Label(l))
		if s == "00" || s == "22" {
			t.Errorf("unusable trit sequence %s appears", s)
		}
		if seen[s] {
			t.Errorf("trit sequence %s duplicated", s)
		}
		seen[s] = true
	}
	if len(seen) != 7 {
		t.Errorf("got %d distinct trit sequences, want 7", len(seen))
	}
	// Edge constraint: tritwise sum 22.
	for _, cfg := range half.Edge.Configs() {
		labels := cfg.Expand()
		a, b := tritOf(labels[0]), tritOf(labels[1])
		for i := 0; i < 2; i++ {
			if (a[i]-'0')+(b[i]-'0') != 2 {
				t.Errorf("edge pair %s/%s does not sum to 22", a, b)
			}
		}
	}
}

// TestWeak2FullHasNineNodeConfigs checks the punchline of Section 4.6:
// "h_1(Δ) actually contains only 9 elements (or fewer if Δ is very
// small)".
func TestWeak2FullHasNineNodeConfigs(t *testing.T) {
	for delta := 3; delta <= 5; delta++ {
		if testing.Short() && delta > 4 {
			break
		}
		p := problems.WeakTwoColoringPointer(delta)
		full, err := core.Speedup(p)
		if err != nil {
			t.Fatal(err)
		}
		if full.Node.Size() != 9 {
			t.Errorf("Δ=%d: Π'_1 has %d node configs, paper says 9", delta, full.Node.Size())
		}
	}
	// Very small Δ: fewer.
	p := problems.WeakTwoColoringPointer(2)
	full, err := core.Speedup(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Node.Size() > 9 {
		t.Errorf("Δ=2: Π'_1 has %d node configs, expected at most 9", full.Node.Size())
	}
}

// TestWeak2PointerVersionWellFormed sanity-checks the catalog problem
// against the paper's formal description.
func TestWeak2PointerVersionWellFormed(t *testing.T) {
	p := problems.WeakTwoColoringPointer(3)
	if p.Alpha.Size() != 4 || p.Node.Size() != 2 {
		t.Fatalf("stats: %+v", p.Stats())
	}
	// g must allow (1,.)/(2,.) and reject (1,>)/(1,>).
	lookup := func(name string) core.Label {
		l, ok := p.Alpha.Lookup(name)
		if !ok {
			t.Fatalf("label %q missing", name)
		}
		return l
	}
	if !p.Edge.ContainsLabels(lookup("1."), lookup("2.")) {
		t.Error("different colors rejected")
	}
	if p.Edge.ContainsLabels(lookup("1>"), lookup("1>")) {
		t.Error("same color with two pointers accepted")
	}
	if p.Edge.ContainsLabels(lookup("1>"), lookup("1.")) {
		t.Error("pointer to same color accepted")
	}
	if !p.Edge.ContainsLabels(lookup("1>"), lookup("2.")) {
		t.Error("pointer to different color rejected")
	}
	// Weak 2-coloring is not 0-round solvable even with orientations.
	if _, ok := core.ZeroRoundSolvableWithOrientation(p); ok {
		t.Error("weak 2-coloring pointer version reported 0-round solvable")
	}
	if strings.Count(p.String(), "\n") < 4 {
		t.Error("String suspiciously short")
	}
}
