package core

import (
	"repro/internal/bitset"
)

// This file implements exact characterizations of 0-round solvability in
// the port numbering model, the termination test of the paper's
// lower-bound recipe (Section 2.1: "determine which is the first problem
// in the sequence that is solvable in 0 rounds").
//
// A 0-round algorithm assigns output labels to a node's ports using only
// the information available before any communication. Two settings are
// supported, matching the input families the paper works with:
//
//   - no input at all (pure port numbering on Δ-regular graphs), and
//   - an arbitrary edge orientation given as input (the symmetry-breaking
//     input Theorem 2 requires).

// ZeroRoundSolvableNoInput reports whether the problem admits a 0-round
// algorithm on Δ-regular graphs in the plain port numbering model, along
// with a witness node configuration when it does.
//
// With no input, every node must output the same multiset C ∈ h(Δ) of
// labels on its ports (ports are assigned adversarially, so the assignment
// of C's elements to ports is irrelevant), and the adversary can make any
// port of one node share an edge with any port of another. Hence the
// problem is solvable iff some C ∈ h(Δ) satisfies {y, z} ∈ g(Δ) for every
// pair y, z of (not necessarily distinct) labels in C's support.
func ZeroRoundSolvableNoInput(p *Problem) (Config, bool) {
	rel := newEdgeRelation(p.Edge, p.Alpha.Size())
	for _, cfg := range p.Node.Configs() {
		support := cfg.Support()
		ok := true
	outer:
		for _, y := range support {
			for _, z := range support {
				if !rel.compatible(y, z) {
					ok = false
					break outer
				}
			}
		}
		if ok {
			return cfg, true
		}
	}
	return Config{}, false
}

// OrientedWitness describes a 0-round algorithm in the edge-orientation
// input model: OutSupport and InSupport are the label sets used on
// out-ports and in-ports, and PerInDegree[d] is the node configuration a
// node with in-degree d outputs (split implicitly: d labels from
// InSupport on in-ports, Δ−d labels from OutSupport on out-ports).
type OrientedWitness struct {
	OutSupport  bitset.Set
	InSupport   bitset.Set
	PerInDegree []Config
}

// ZeroRoundSolvableWithOrientation reports whether the problem admits a
// 0-round algorithm on Δ-regular graphs whose input includes an arbitrary
// orientation of every edge (each endpoint sees the direction of its
// incident edges, nothing else).
//
// A 0-round algorithm may give a node with in-degree d any configuration
// C(d) ∈ h(Δ), assigning labels to ports arbitrarily subject to the port's
// orientation class. The adversary chooses the orientation and the port
// numbers, so across an edge oriented u→v, any label u uses on an out-port
// can meet any label v uses on an in-port. Solvability is therefore
// equivalent to the existence of label sets P (out) and Q (in) with
// P × Q ⊆ g(Δ), such that for every d ∈ {0..Δ} some C ∈ h(Δ) splits into
// Δ−d labels from P and d labels from Q. P, Q can be assumed maximal, so
// only the Galois-closed pairs of the edge relation need checking.
func ZeroRoundSolvableWithOrientation(p *Problem) (OrientedWitness, bool) {
	n := p.Alpha.Size()
	rel := newEdgeRelation(p.Edge, n)
	delta := p.Delta()

	for _, out := range closedSets(rel, n) {
		in := rel.comp(out)
		witness := OrientedWitness{
			OutSupport:  out,
			InSupport:   in,
			PerInDegree: make([]Config, delta+1),
		}
		ok := true
		for d := 0; d <= delta; d++ {
			cfg, found := splittableConfig(p.Node, out, in, d)
			if !found {
				ok = false
				break
			}
			witness.PerInDegree[d] = cfg
		}
		if ok {
			return witness, true
		}
	}
	return OrientedWitness{}, false
}

// splittableConfig finds a node configuration that can be split into
// inDegree labels from in-support and the rest from out-support.
//
// For a configuration C: a label with multiplicity m that lies only in out
// must contribute all m to the out part; only in in → all to the in part;
// in both → anywhere; in neither → C unusable. C splits for inDegree d iff
// minIn ≤ d ≤ maxIn, where minIn counts labels outside out and maxIn
// counts labels inside in.
func splittableConfig(node Constraint, out, in bitset.Set, inDegree int) (Config, bool) {
	for _, cfg := range node.Configs() {
		minIn, maxIn := 0, 0
		usable := true
		cfg.ForEach(func(l Label, count int) {
			inOut := out.Contains(int(l))
			inIn := in.Contains(int(l))
			switch {
			case !inOut && !inIn:
				usable = false
			case !inOut:
				minIn += count
				maxIn += count
			case !inIn:
				// out only: contributes nothing to the in part.
			default:
				maxIn += count
			}
		})
		if usable && minIn <= inDegree && inDegree <= maxIn {
			return cfg, true
		}
	}
	return Config{}, false
}
