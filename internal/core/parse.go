package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a problem from a Round-Eliminator-like text format:
//
//	# weak 2-coloring, pointer form, Δ=3
//	node:
//	1A 1P^2
//	2A 2P^2
//	edge:
//	1A 2A
//	1A 2P
//	...
//
// Each non-empty line is one configuration: whitespace-separated label
// names, with "name^k" denoting multiplicity k. All node lines must have
// the same total multiplicity (that arity is Δ); edge lines must have
// total multiplicity 2. The alphabet is inferred from the labels used, in
// first-occurrence order. Lines starting with '#' are comments.
func Parse(text string) (*Problem, error) {
	type rawLine struct {
		section string
		items   []string
		lineNo  int
	}
	var lines []rawLine
	section := ""
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch strings.ToLower(line) {
		case "node:", "nodes:":
			section = "node"
			continue
		case "edge:", "edges:":
			section = "edge"
			continue
		}
		if section == "" {
			return nil, fmt.Errorf("core: parse: line %d: configuration before a 'node:' or 'edge:' header", i+1)
		}
		lines = append(lines, rawLine{section: section, items: strings.Fields(line), lineNo: i + 1})
	}

	alpha := &Alphabet{index: map[string]Label{}}
	getLabel := func(name string) (Label, error) {
		if l, ok := alpha.index[name]; ok {
			return l, nil
		}
		// Names that collide with the line syntax cannot round-trip
		// through String (a rendered line could start with '#' or read
		// as a section header), so reject them up front.
		if strings.ContainsRune(name, '#') {
			return 0, fmt.Errorf("label name %q contains '#'", name)
		}
		switch strings.ToLower(name) {
		case "node:", "nodes:", "edge:", "edges:":
			return 0, fmt.Errorf("label name %q collides with a section header", name)
		}
		if err := alpha.add(name); err != nil {
			return 0, err
		}
		return alpha.index[name], nil
	}

	parseConfig := func(items []string, lineNo int) (Config, error) {
		counts := map[Label]int{}
		for _, item := range items {
			name := item
			mult := 1
			if idx := strings.IndexByte(item, '^'); idx >= 0 {
				name = item[:idx]
				m, err := strconv.Atoi(item[idx+1:])
				if err != nil || m < 1 {
					return Config{}, fmt.Errorf("core: parse: line %d: bad multiplicity in %q", lineNo, item)
				}
				mult = m
			}
			if name == "" {
				return Config{}, fmt.Errorf("core: parse: line %d: empty label name in %q", lineNo, item)
			}
			l, err := getLabel(name)
			if err != nil {
				return Config{}, fmt.Errorf("core: parse: line %d: %v", lineNo, err)
			}
			counts[l] += mult
		}
		return NewConfigCounts(counts)
	}

	var nodeConfigs, edgeConfigs []Config
	var nodeLineNos []int
	for _, rl := range lines {
		cfg, err := parseConfig(rl.items, rl.lineNo)
		if err != nil {
			return nil, err
		}
		switch rl.section {
		case "node":
			nodeConfigs = append(nodeConfigs, cfg)
			nodeLineNos = append(nodeLineNos, rl.lineNo)
		case "edge":
			if cfg.Arity() != 2 {
				return nil, fmt.Errorf("core: parse: line %d: edge configuration has arity %d, want 2", rl.lineNo, cfg.Arity())
			}
			edgeConfigs = append(edgeConfigs, cfg)
		}
	}
	if len(nodeConfigs) == 0 {
		return nil, fmt.Errorf("core: parse: no node configurations")
	}
	if len(edgeConfigs) == 0 {
		return nil, fmt.Errorf("core: parse: no edge configurations")
	}
	delta := nodeConfigs[0].Arity()
	for i, cfg := range nodeConfigs {
		if cfg.Arity() != delta {
			return nil, fmt.Errorf("core: parse: line %d: node configuration has arity %d, want %d", nodeLineNos[i], cfg.Arity(), delta)
		}
	}

	node := NewConstraint(delta)
	for _, cfg := range nodeConfigs {
		node.MustAdd(cfg)
	}
	edge := NewConstraint(2)
	for _, cfg := range edgeConfigs {
		edge.MustAdd(cfg)
	}
	return NewProblem(alpha, edge, node)
}

// MustParse is Parse but panics on error; for literals in tests/examples.
func MustParse(text string) *Problem {
	p, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return p
}
