package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigBasics(t *testing.T) {
	c := NewConfig(2, 0, 1, 0)
	if c.Arity() != 4 {
		t.Errorf("arity = %d, want 4", c.Arity())
	}
	if c.Multiplicity(0) != 2 || c.Multiplicity(1) != 1 || c.Multiplicity(3) != 0 {
		t.Error("multiplicities wrong")
	}
	if got := c.Support(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("support = %v", got)
	}
	exp := c.Expand()
	if len(exp) != 4 || exp[0] != 0 || exp[1] != 0 || exp[2] != 1 || exp[3] != 2 {
		t.Errorf("expand = %v", exp)
	}
}

func TestConfigOrderIndependence(t *testing.T) {
	f := func(raw []uint8) bool {
		labels := make([]Label, len(raw))
		for i, r := range raw {
			labels[i] = Label(r % 5)
		}
		a := NewConfig(labels...)
		rand.New(rand.NewSource(int64(len(raw)))).Shuffle(len(labels), func(i, j int) {
			labels[i], labels[j] = labels[j], labels[i]
		})
		b := NewConfig(labels...)
		return a.Equal(b) && a.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigWithWithout(t *testing.T) {
	c := NewConfig(0, 1)
	d := c.WithLabel(1)
	if d.Arity() != 3 || d.Multiplicity(1) != 2 {
		t.Error("WithLabel wrong")
	}
	e := d.WithoutLabel(1)
	if !e.Equal(c) {
		t.Error("WithoutLabel did not invert WithLabel")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithoutLabel on absent label should panic")
		}
	}()
	c.WithoutLabel(9)
}

func TestConfigCountsValidation(t *testing.T) {
	if _, err := NewConfigCounts(map[Label]int{0: 0}); err == nil {
		t.Error("zero multiplicity accepted")
	}
	if _, err := NewConfigCounts(map[Label]int{0: -1}); err == nil {
		t.Error("negative multiplicity accepted")
	}
}

func TestConfigRemap(t *testing.T) {
	c := NewConfig(0, 1, 1)
	m := map[Label]Label{0: 5, 1: 5}
	got, err := c.Remap(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Multiplicity(5) != 3 || got.Arity() != 3 {
		t.Error("remap collapse wrong")
	}
	if _, err := c.Remap(map[Label]Label{0: 1}); err == nil {
		t.Error("partial remap accepted")
	}
}

func TestConfigString(t *testing.T) {
	a := MustAlphabet("A", "B")
	c := NewConfig(0, 0, 1)
	if got := c.String(a); got != "A^2 B" {
		t.Errorf("String = %q, want \"A^2 B\"", got)
	}
}

func TestConstraintBasics(t *testing.T) {
	c := NewConstraint(2)
	c.MustAdd(NewConfig(0, 1))
	if !c.ContainsLabels(1, 0) {
		t.Error("multiset membership should be order independent")
	}
	if c.ContainsLabels(0, 0) {
		t.Error("absent config reported present")
	}
	if err := c.Add(NewConfig(0)); err == nil {
		t.Error("wrong arity accepted")
	}
	if c.Size() != 1 {
		t.Errorf("size = %d, want 1", c.Size())
	}
	c.MustAdd(NewConfig(0, 1)) // duplicate: no-op
	if c.Size() != 1 {
		t.Error("duplicate insertion changed size")
	}
}

func TestConstraintConfigsDeterministic(t *testing.T) {
	c := NewConstraint(2)
	c.MustAdd(NewConfig(1, 1))
	c.MustAdd(NewConfig(0, 1))
	c.MustAdd(NewConfig(0, 0))
	a := c.Configs()
	b := c.Configs()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("Configs order not deterministic")
		}
	}
}

func TestEdgeRelationComp(t *testing.T) {
	// g = {{0,1},{1,1}} over alphabet {0,1,2}.
	g := NewConstraint(2)
	g.MustAdd(NewConfig(0, 1))
	g.MustAdd(NewConfig(1, 1))
	rel := newEdgeRelation(g, 3)
	if !rel.compatible(0, 1) || !rel.compatible(1, 0) || !rel.compatible(1, 1) {
		t.Error("relation wrong")
	}
	if rel.compatible(0, 0) || rel.compatible(2, 1) {
		t.Error("false positives in relation")
	}
	s := NewConfig(0, 1) // support {0,1}
	_ = s
	// comp({0}) = {1}; comp({0,1}) = {1}; comp({1}) = {0,1}; comp({2}) = {}.
	check := func(members []int, want []int) {
		in := bsFrom(3, members)
		got := rel.comp(in)
		wantSet := bsFrom(3, want)
		if !got.Equal(wantSet) {
			t.Errorf("comp(%v) = %v, want %v", members, got, wantSet)
		}
	}
	check([]int{0}, []int{1})
	check([]int{0, 1}, []int{1})
	check([]int{1}, []int{0, 1})
	check([]int{2}, []int{})
	check([]int{}, []int{0, 1, 2})
}
