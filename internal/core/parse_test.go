package core

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	text := `
# sinkless coloring at Δ=3
node:
0^2 1
edge:
0 0
0 1
`
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Delta() != 3 || p.Alpha.Size() != 2 {
		t.Fatalf("Δ=%d labels=%d", p.Delta(), p.Alpha.Size())
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if _, ok := Isomorphic(p, q); !ok {
		t.Error("round trip not isomorphic")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no header", "A B\nedge:\nA B"},
		{"no node section", "edge:\nA B"},
		{"no edge section", "node:\nA A"},
		{"edge arity", "node:\nA A\nedge:\nA A A"},
		{"node arity mismatch", "node:\nA A\nB B B\nedge:\nA B"},
		{"bad multiplicity", "node:\nA^0 A\nedge:\nA A"},
		{"bad multiplicity syntax", "node:\nA^x A\nedge:\nA A"},
		{"empty label", "node:\n^2\nedge:\nA A"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseMultiplicityShorthand(t *testing.T) {
	p := MustParse("node:\nX^3\nedge:\nX X")
	cfgs := p.Node.Configs()
	if len(cfgs) != 1 || cfgs[0].Arity() != 3 || cfgs[0].Multiplicity(0) != 3 {
		t.Error("multiplicity shorthand mishandled")
	}
}

func TestParseComments(t *testing.T) {
	p := MustParse("# header\nnode:\n# interior comment\nA A\nedge:\nA A\n# trailing")
	if p.Node.Size() != 1 || p.Edge.Size() != 1 {
		t.Error("comments affected parsing")
	}
}

func TestStringStable(t *testing.T) {
	p := MustParse("node:\nB A\nA A\nedge:\nA B\nA A")
	if p.String() != p.String() {
		t.Error("String not deterministic")
	}
	if !strings.Contains(p.String(), "node:") || !strings.Contains(p.String(), "edge:") {
		t.Error("String missing sections")
	}
}
