package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
)

// TestSinklessHalfStepIsSinklessOrientation reproduces the first half of
// Section 4.4: the simplified derived problem Π'_{1/2} of sinkless
// coloring is exactly sinkless orientation.
func TestSinklessHalfStepIsSinklessOrientation(t *testing.T) {
	for delta := 2; delta <= 8; delta++ {
		p := problems.SinklessColoring(delta)
		half, err := core.HalfStep(p)
		if err != nil {
			t.Fatalf("Δ=%d: HalfStep: %v", delta, err)
		}
		want := problems.SinklessOrientation(delta)
		if _, ok := core.Isomorphic(half, want); !ok {
			t.Errorf("Δ=%d: Π'_1/2 of sinkless coloring is not sinkless orientation:\n%s", delta, half.String())
		}
	}
}

// TestSinklessFixedPoint reproduces Section 4.4's punchline: one full
// speedup step maps sinkless coloring back to itself (Π'_1 ≅ Π), which is
// the engine behind the Ω(log n) lower bound.
func TestSinklessFixedPoint(t *testing.T) {
	for delta := 2; delta <= 8; delta++ {
		p := problems.SinklessColoring(delta)
		derived, err := core.Speedup(p)
		if err != nil {
			t.Fatalf("Δ=%d: Speedup: %v", delta, err)
		}
		if _, ok := core.Isomorphic(derived, p); !ok {
			t.Errorf("Δ=%d: Π'_1 of sinkless coloring is not sinkless coloring:\n%s", delta, derived.String())
		}
	}
}

// TestSinklessNotZeroRound confirms the terminal condition of the Section
// 4.4 argument: sinkless coloring and sinkless orientation are not 0-round
// solvable for Δ ≥ 2/3 respectively, even given input edge orientations.
func TestSinklessNotZeroRound(t *testing.T) {
	for delta := 3; delta <= 6; delta++ {
		for _, tc := range []struct {
			name string
			p    *core.Problem
		}{
			{"sinkless-coloring", problems.SinklessColoring(delta)},
			{"sinkless-orientation", problems.SinklessOrientation(delta)},
		} {
			if cfg, ok := core.ZeroRoundSolvableNoInput(tc.p); ok {
				t.Errorf("Δ=%d: %s reported 0-round solvable without input (witness %s)",
					delta, tc.name, cfg.String(tc.p.Alpha))
			}
			if w, ok := core.ZeroRoundSolvableWithOrientation(tc.p); ok {
				t.Errorf("Δ=%d: %s reported 0-round solvable with orientation input (out=%v in=%v)",
					delta, tc.name, w.OutSupport, w.InSupport)
			}
		}
	}
}
