package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Config is a multiset of labels — one "configuration" of outputs, either
// on the two endpoints of an edge (arity 2) or on the Δ ports of a node
// (arity Δ). It is stored as a sparse multiplicity vector so that large
// arities (the paper's Δ can be in the hundreds in Section 5) stay cheap.
//
// Configs are immutable after construction.
type Config struct {
	arity int
	pairs []labelCount // sorted by label, counts > 0
}

type labelCount struct {
	label Label
	count int
}

// NewConfig builds a config from an explicit list of labels (with
// repetition). The arity is len(labels).
func NewConfig(labels ...Label) Config {
	counts := make(map[Label]int, len(labels))
	for _, l := range labels {
		counts[l]++
	}
	return configFromCounts(counts, len(labels))
}

// NewConfigCounts builds a config from label → multiplicity. Zero and
// negative multiplicities are rejected.
func NewConfigCounts(counts map[Label]int) (Config, error) {
	arity := 0
	for l, c := range counts {
		if c <= 0 {
			return Config{}, fmt.Errorf("core: non-positive multiplicity %d for label %d", c, l)
		}
		arity += c
	}
	return configFromCounts(counts, arity), nil
}

func configFromCounts(counts map[Label]int, arity int) Config {
	pairs := make([]labelCount, 0, len(counts))
	for l, c := range counts {
		if c > 0 {
			pairs = append(pairs, labelCount{label: l, count: c})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].label < pairs[j].label })
	return Config{arity: arity, pairs: pairs}
}

// Arity returns the total number of (label) slots in the config.
func (c Config) Arity() int { return c.arity }

// Multiplicity returns how many times label l occurs.
func (c Config) Multiplicity(l Label) int {
	i := sort.Search(len(c.pairs), func(i int) bool { return c.pairs[i].label >= l })
	if i < len(c.pairs) && c.pairs[i].label == l {
		return c.pairs[i].count
	}
	return 0
}

// Support returns the distinct labels occurring in the config, in
// increasing order.
func (c Config) Support() []Label {
	out := make([]Label, len(c.pairs))
	for i, p := range c.pairs {
		out[i] = p.label
	}
	return out
}

// Expand returns the config as a sorted slice of labels with repetition
// (length Arity()).
func (c Config) Expand() []Label {
	out := make([]Label, 0, c.arity)
	for _, p := range c.pairs {
		for i := 0; i < p.count; i++ {
			out = append(out, p.label)
		}
	}
	return out
}

// ForEach calls fn for every (label, multiplicity) pair in increasing label
// order.
func (c Config) ForEach(fn func(l Label, count int)) {
	for _, p := range c.pairs {
		fn(p.label, p.count)
	}
}

// Key returns a canonical string key: equal configs have equal keys.
// It is a debugging/display helper; the engine's hot paths identify
// configs by interned handles of appendWords instead.
func (c Config) Key() string {
	var sb strings.Builder
	for _, p := range c.pairs {
		sb.WriteString(strconv.Itoa(int(p.label)))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(p.count))
		sb.WriteByte(',')
	}
	return sb.String()
}

// appendWords appends the canonical word encoding of the config — one
// word per (label, multiplicity) pair, label in the high half — to
// dst. Equal configs produce equal sequences, and the pair list is
// sorted by label, so the encoding is a hash-consable identity.
func (c Config) appendWords(dst []uint64) []uint64 {
	for _, p := range c.pairs {
		dst = append(dst, uint64(uint32(p.label))<<32|uint64(uint32(p.count)))
	}
	return dst
}

// compare orders configs by their (label, multiplicity) pair sequence
// — the handle-stable canonical order used by Configs(). It is a total
// order on configs of equal arity (and arbitrary configs: shorter
// prefixes sort first).
func (c Config) compare(d Config) int {
	for i, p := range c.pairs {
		if i >= len(d.pairs) {
			return 1
		}
		q := d.pairs[i]
		switch {
		case p.label != q.label:
			if p.label < q.label {
				return -1
			}
			return 1
		case p.count != q.count:
			if p.count < q.count {
				return -1
			}
			return 1
		}
	}
	if len(c.pairs) < len(d.pairs) {
		return -1
	}
	return 0
}

// Equal reports whether two configs are the same multiset.
func (c Config) Equal(d Config) bool {
	if c.arity != d.arity || len(c.pairs) != len(d.pairs) {
		return false
	}
	for i, p := range c.pairs {
		if d.pairs[i] != p {
			return false
		}
	}
	return true
}

// WithLabel returns a new config with one extra occurrence of l.
func (c Config) WithLabel(l Label) Config {
	counts := c.countsMap()
	counts[l]++
	return configFromCounts(counts, c.arity+1)
}

// WithoutLabel returns a new config with one occurrence of l removed; it
// panics if l does not occur.
func (c Config) WithoutLabel(l Label) Config {
	counts := c.countsMap()
	if counts[l] == 0 {
		panic("core: WithoutLabel: label not present")
	}
	counts[l]--
	if counts[l] == 0 {
		delete(counts, l)
	}
	return configFromCounts(counts, c.arity-1)
}

func (c Config) countsMap() map[Label]int {
	m := make(map[Label]int, len(c.pairs))
	for _, p := range c.pairs {
		m[p.label] = p.count
	}
	return m
}

// Remap returns the config with every label replaced through the map; all
// support labels must be present in the map. Distinct labels may map to the
// same target (multiplicities add up).
func (c Config) Remap(m map[Label]Label) (Config, error) {
	counts := make(map[Label]int, len(c.pairs))
	for _, p := range c.pairs {
		nl, ok := m[p.label]
		if !ok {
			return Config{}, fmt.Errorf("core: remap: no image for label %d", p.label)
		}
		counts[nl] += p.count
	}
	return configFromCounts(counts, c.arity), nil
}

// String renders the config with the paper's multiplicity shorthand, e.g.
// "A^3 B" (names resolved through a).
func (c Config) String(a *Alphabet) string {
	parts := make([]string, 0, len(c.pairs))
	for _, p := range c.pairs {
		if p.count == 1 {
			parts = append(parts, a.Name(p.label))
		} else {
			parts = append(parts, fmt.Sprintf("%s^%d", a.Name(p.label), p.count))
		}
	}
	return strings.Join(parts, " ")
}
