package core

import (
	"testing"
)

// fuzzSeedCorpus holds well-formed problem descriptions drawn from the
// paper's catalog (sinkless coloring, sinkless orientation, 3-coloring
// on rings, pointer weak 2-coloring) plus edge-case syntax: comments,
// alternate section spellings, multiplicity shorthand, and blank lines.
var fuzzSeedCorpus = []string{
	"node:\n0^2 1\nedge:\n0 0\n0 1\n",
	"node:\n0^2 1\n0 1^2\n1^3\nedge:\n0 1\n",
	"node:\n1^2\n2^2\n3^2\nedge:\n1 2\n1 3\n2 3\n",
	"# weak 2-coloring, pointer form\nnodes:\n1> 1.^2\n2> 2.^2\nedges:\n1> 2>\n1> 2.\n1. 2>\n1. 2.\n1. 1.\n2. 2.\n",
	"node:\nA\nedge:\nA A\n",
	"node:\n\nX^3\nedge:\nX X\n# trailing comment",
}

// FuzzParse checks the parser on arbitrary input: it must never panic,
// and whenever it accepts a problem, the problem must round-trip
// through the String rendering — reparsing yields a problem with the
// same description sizes that is isomorphic to the original, and one
// round-trip reaches a formatting fixed point.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeedCorpus {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<12 {
			return // keep adversarial alphabets small enough to re-verify
		}
		p, err := Parse(text)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted problem fails validation: %v\ninput: %q", err, text)
		}
		rendered := p.String()
		q, err := Parse(rendered)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\nformatted: %q", err, rendered)
		}
		if q.Stats() != p.Stats() {
			t.Fatalf("round-trip changed description sizes: %+v -> %+v\ninput: %q", p.Stats(), q.Stats(), text)
		}
		// The reparsed alphabet may be a permutation of the original
		// (Parse numbers labels by first occurrence); isomorphism is the
		// right equivalence. Skip degenerate blowup candidates.
		if p.Alpha.Size() <= 8 {
			if _, ok := Isomorphic(p, q); !ok {
				t.Fatalf("round-trip lost the problem up to renaming\ninput: %q\nformatted: %q", text, rendered)
			}
		}
		// One round-trip must reach a formatting fixed point: parsing
		// the rendering of q reproduces q's rendering byte for byte.
		qr := q.String()
		r, err := Parse(qr)
		if err != nil {
			t.Fatalf("second reparse failed: %v", err)
		}
		if r.String() != qr {
			t.Fatalf("formatting did not stabilize after one round-trip\nfirst: %q\nsecond: %q", qr, r.String())
		}
	})
}
