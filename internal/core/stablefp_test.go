package core

import (
	"strings"
	"testing"
)

func mustSinkless(t *testing.T) *Problem {
	t.Helper()
	return MustParse("node:\n0^2 1\nedge:\n0 0\n0 1\n")
}

func TestCanonicalRoundTrip(t *testing.T) {
	p := mustSinkless(t)
	inputs := []*Problem{p}
	derived, err := Speedup(p)
	if err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, derived)
	compact, _ := derived.RenameCompact()
	inputs = append(inputs, compact)

	for i, in := range inputs {
		data := in.CanonicalBytes()
		back, err := ParseCanonical(data)
		if err != nil {
			t.Fatalf("input %d: ParseCanonical: %v", i, err)
		}
		if !back.Equal(in) {
			t.Fatalf("input %d: round trip not Equal:\n%s\nvs\n%s", i, in, back)
		}
		// Exactness must extend to the serialization itself.
		if got := string(back.CanonicalBytes()); got != string(data) {
			t.Fatalf("input %d: CanonicalBytes not a fixed point of the round trip:\n%q\nvs\n%q", i, got, data)
		}
		if StableKey(back) != StableKey(in) {
			t.Fatalf("input %d: StableKey changed across the round trip", i)
		}
	}
}

func TestCanonicalRoundTripEdgeCases(t *testing.T) {
	// Unused labels and empty constraints cannot pass through
	// String/Parse, but must survive the canonical form: they are what
	// Compress and collapsed trajectories produce.
	alpha := MustAlphabet("A", "B", "unused")
	node := NewConstraint(3)
	node.MustAdd(NewConfig(Label(0), Label(0), Label(1)))
	edge := NewConstraint(2)
	withUnused, err := NewProblem(alpha, edge, node)
	if err != nil {
		t.Fatal(err)
	}
	collapsed := &Problem{Alpha: MustAlphabet(), Edge: NewConstraint(2), Node: NewConstraint(3)}

	for i, in := range []*Problem{withUnused, collapsed} {
		back, err := ParseCanonical(in.CanonicalBytes())
		if err != nil {
			t.Fatalf("input %d: ParseCanonical: %v", i, err)
		}
		if !back.Equal(in) {
			t.Fatalf("input %d: round trip not Equal", i)
		}
		if back.Alpha.Size() != in.Alpha.Size() || back.Delta() != in.Delta() {
			t.Fatalf("input %d: sizes changed: alpha %d→%d delta %d→%d",
				i, in.Alpha.Size(), back.Alpha.Size(), in.Delta(), back.Delta())
		}
	}
}

func TestStableKeySensitivity(t *testing.T) {
	p := mustSinkless(t)
	base := StableKey(p)

	// Same constraints under renamed labels: a different exact
	// representation, hence a different key (StableKey is not
	// iso-invariant — that is Fingerprint's job).
	renamed := MustParse("node:\nx^2 y\nedge:\nx x\nx y\n")
	if StableKey(renamed) == base {
		t.Fatal("StableKey ignored label names")
	}

	// Same problem assembled in a different configuration insertion
	// order: identical key (Configs order is canonical).
	alpha := MustAlphabet("0", "1")
	edge := NewConstraint(2)
	edge.MustAdd(NewConfig(Label(0), Label(1)))
	edge.MustAdd(NewConfig(Label(0), Label(0)))
	node := NewConstraint(3)
	node.MustAdd(NewConfig(Label(0), Label(0), Label(1)))
	reordered, err := NewProblem(alpha, edge, node)
	if err != nil {
		t.Fatal(err)
	}
	if StableKey(reordered) != base {
		t.Fatal("StableKey depends on configuration insertion order")
	}

	// An extra unused label is a different representation.
	bigger := &Problem{Alpha: MustAlphabet("0", "1", "2"), Edge: p.Edge, Node: p.Node}
	if StableKey(bigger) == base {
		t.Fatal("StableKey ignored unused alphabet labels")
	}
}

// TestStableKeyGolden pins the exact key bytes of a fixed problem. A
// failure here means persisted stores are silently invalidated: either
// restore the serialization, or bump FingerprintVersion and update this
// golden value.
func TestStableKeyGolden(t *testing.T) {
	if FingerprintVersion != 1 {
		t.Skip("golden value recorded at FingerprintVersion 1")
	}
	got := StableKey(mustSinkless(t)).String()
	const want = "4e891226f8618e28fdb470e37a8542d604c59b9b885c9bc0d07a61c0eee93f9d"
	if got != want {
		t.Fatalf("StableKey(sinkless Δ=3) = %s, want %s", got, want)
	}
}

func TestParseCanonicalRejectsGarbage(t *testing.T) {
	p := mustSinkless(t)
	good := string(p.CanonicalBytes())
	bad := []string{
		"",
		"repro-problem v2\ndelta: 3\nalphabet: 0 1\nnode: 0\nedge: 0\n",
		strings.Replace(good, "delta: 3", "delta: 0", 1),
		strings.Replace(good, "node: 1", "node: 5", 1),
		good + "trailing\n",
		strings.Replace(good, "0^2 1", "0^2 9", 1),
	}
	for i, text := range bad {
		if _, err := ParseCanonical([]byte(text)); err == nil {
			t.Errorf("input %d: ParseCanonical accepted malformed input", i)
		}
	}
}

// TestParseAuto: the sniffing parser routes canonical serializations to
// the strict parser (preserving the exact representation, hence the
// StableKey) and everything else to the human text format.
func TestParseAuto(t *testing.T) {
	p := mustSinkless(t)

	canonical, err := ParseAuto(string(p.CanonicalBytes()))
	if err != nil {
		t.Fatalf("ParseAuto(canonical): %v", err)
	}
	if !canonical.Equal(p) {
		t.Fatal("canonical round trip through ParseAuto lost the representation")
	}
	if StableKey(canonical) != StableKey(p) {
		t.Fatal("ParseAuto(canonical) changed the stable key")
	}

	human, err := ParseAuto("\n\nnode:\n0^2 1\nedge:\n0 0\n0 1\n")
	if err != nil {
		t.Fatalf("ParseAuto(human): %v", err)
	}
	if !human.Equal(p) {
		t.Fatal("ParseAuto(human) disagrees with Parse")
	}

	// A leading blank line before the canonical header still sniffs as
	// canonical (strictness beyond that is ParseCanonical's).
	if _, err := ParseAuto("\n" + string(p.CanonicalBytes())); err != nil {
		t.Fatalf("ParseAuto(newline + canonical): %v", err)
	}
}
