package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
)

// heavyEntries lists catalog entries whose single speedup step costs
// seconds; they are skipped under -short to keep the quick cycle fast.
var heavyEntries = map[string]bool{
	"4-coloring/delta=2":    true,
	"weak2-pointer/delta=4": true,
	"superweak/k=2,delta=3": true,
}

// TestParallelSpeedupMatchesSequential asserts the core guarantee of the
// parallel engine: for every catalog problem, Speedup with a worker pool
// produces a result that is Equal (same labels, same constraint sets)
// and byte-identical (same String rendering) to the sequential run, and
// in particular isomorphic to it. The worker count is forced above 1 so
// the sharded path is exercised even on single-core machines.
func TestParallelSpeedupMatchesSequential(t *testing.T) {
	for _, e := range problems.Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if testing.Short() && heavyEntries[e.Name] {
				t.Skip("heavy entry skipped in -short mode")
			}
			seq, err := core.Speedup(e.Problem, core.WithWorkers(1))
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := core.Speedup(e.Problem, core.WithWorkers(4))
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !par.Equal(seq) {
				t.Fatalf("parallel result differs from sequential:\nseq:\n%s\npar:\n%s", seq, par)
			}
			if got, want := par.String(), seq.String(); got != want {
				t.Fatalf("parallel rendering not byte-identical:\nseq:\n%s\npar:\n%s", want, got)
			}
			if _, ok := core.Isomorphic(par, seq); !ok {
				t.Fatal("parallel result not isomorphic to sequential")
			}
			if e.FixedPoint {
				if _, ok := core.Isomorphic(par, e.Problem); !ok {
					t.Fatal("catalog marks a fixed point, but derived problem is not isomorphic to the input")
				}
			}
		})
	}
}

// TestParallelHalfStepMatchesSequential covers the half step on its own
// (its lifting shards differently than the full pipeline).
func TestParallelHalfStepMatchesSequential(t *testing.T) {
	for _, e := range problems.Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			seq, err := core.HalfStep(e.Problem, core.WithWorkers(1))
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := core.HalfStep(e.Problem, core.WithWorkers(4))
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !par.Equal(seq) || par.String() != seq.String() {
				t.Fatalf("parallel half step differs from sequential:\nseq:\n%s\npar:\n%s", seq, par)
			}
		})
	}
}

// TestParallelBudgetError asserts the WithMaxStates semantics are
// preserved by the worker pool: an undersized budget fails with
// ErrStateBudget for every worker count.
func TestParallelBudgetError(t *testing.T) {
	p := problems.WeakTwoColoringPointer(3)
	for _, workers := range []int{1, 4} {
		_, err := core.Speedup(p, core.WithWorkers(workers), core.WithMaxStates(100))
		if err == nil {
			t.Fatalf("workers=%d: expected budget error, got success", workers)
		}
		if !errors.Is(err, core.ErrStateBudget) {
			t.Fatalf("workers=%d: error does not wrap ErrStateBudget: %v", workers, err)
		}
	}
}

// TestSpeedupDeterministic asserts repeated runs are byte-identical —
// the closedSets ordering fix plus the deterministic shard merge.
func TestSpeedupDeterministic(t *testing.T) {
	p := problems.WeakTwoColoringPointer(3)
	first, err := core.Speedup(p, core.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := core.Speedup(p, core.WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("run %d produced a different rendering", i+2)
		}
	}
}
