package core

import (
	"fmt"
	"sort"
)

// This file implements relaxation maps, the paper's main tool for taming
// the description growth of derived problems (Section 2.1, "Relaxation").
//
// A problem Π relaxes to Π' (Π' is "provably not harder than Π") if there
// is a label map m from the alphabet of Π to the alphabet of Π' such that
// every edge configuration of Π maps into an edge configuration of Π' and
// every node configuration of Π maps into a node configuration of Π'. Any
// algorithm for Π then solves Π' in the same number of rounds by applying
// m to its outputs. The dual direction — finding a harder problem with a
// smaller description — is the paper's route to upper bounds (Section 4.5).

// LabelMap maps labels of a source problem to labels of a target problem.
type LabelMap map[Label]Label

// CheckRelaxation verifies that m witnesses "src relaxes to dst": the
// m-image of every configuration of src is a configuration of dst. It
// returns nil on success and a descriptive error naming the first
// violating configuration otherwise.
func CheckRelaxation(src, dst *Problem, m LabelMap) error {
	if src.Delta() != dst.Delta() {
		return fmt.Errorf("core: relaxation: Δ mismatch: %d vs %d", src.Delta(), dst.Delta())
	}
	for i := 0; i < src.Alpha.Size(); i++ {
		img, ok := m[Label(i)]
		if !ok {
			return fmt.Errorf("core: relaxation: label %q has no image", src.Alpha.Name(Label(i)))
		}
		if int(img) < 0 || int(img) >= dst.Alpha.Size() {
			return fmt.Errorf("core: relaxation: image of %q out of range", src.Alpha.Name(Label(i)))
		}
	}
	for _, cfg := range src.Edge.Configs() {
		mapped, err := cfg.Remap(m)
		if err != nil {
			return err
		}
		if !dst.Edge.Contains(mapped) {
			return fmt.Errorf("core: relaxation: edge config %q maps to %q, not allowed by target",
				cfg.String(src.Alpha), mapped.String(dst.Alpha))
		}
	}
	for _, cfg := range src.Node.Configs() {
		mapped, err := cfg.Remap(m)
		if err != nil {
			return err
		}
		if !dst.Node.Contains(mapped) {
			return fmt.Errorf("core: relaxation: node config %q maps to %q, not allowed by target",
				cfg.String(src.Alpha), mapped.String(dst.Alpha))
		}
	}
	return nil
}

// FindRelaxation searches for a label map witnessing "src relaxes to dst"
// by backtracking over label assignments with forward checking on the
// configurations whose support is fully assigned. It returns (map, true)
// if one exists. The search is exponential in the worst case; alphabets in
// the paper's pipelines are small.
func FindRelaxation(src, dst *Problem) (LabelMap, bool) {
	if src.Delta() != dst.Delta() {
		return nil, false
	}
	nSrc := src.Alpha.Size()
	nDst := dst.Alpha.Size()

	// Order source labels by decreasing constraint participation so
	// failures surface early.
	occurrences := make([]int, nSrc)
	for _, c := range []Constraint{src.Edge, src.Node} {
		for _, cfg := range c.Configs() {
			for _, l := range cfg.Support() {
				occurrences[l]++
			}
		}
	}
	order := make([]Label, nSrc)
	for i := range order {
		order[i] = Label(i)
	}
	sort.Slice(order, func(i, j int) bool { return occurrences[order[i]] > occurrences[order[j]] })

	pos := make([]int, nSrc) // position of each label in the assignment order
	for i, l := range order {
		pos[l] = i
	}

	// For forward checking, index configurations by the assignment-order
	// position at which their support becomes fully assigned.
	type check struct {
		cfg  Config
		edge bool
	}
	checksAt := make([][]check, nSrc)
	addChecks := func(c Constraint, isEdge bool) {
		for _, cfg := range c.Configs() {
			last := 0
			for _, l := range cfg.Support() {
				if pos[l] > last {
					last = pos[l]
				}
			}
			checksAt[last] = append(checksAt[last], check{cfg: cfg, edge: isEdge})
		}
	}
	addChecks(src.Edge, true)
	addChecks(src.Node, false)

	assignment := make(LabelMap, nSrc)
	var rec func(step int) bool
	rec = func(step int) bool {
		if step == nSrc {
			return true
		}
		l := order[step]
		for img := 0; img < nDst; img++ {
			assignment[l] = Label(img)
			ok := true
			for _, ch := range checksAt[step] {
				mapped, err := ch.cfg.Remap(assignment)
				if err != nil {
					ok = false
					break
				}
				target := dst.Node
				if ch.edge {
					target = dst.Edge
				}
				if !target.Contains(mapped) {
					ok = false
					break
				}
			}
			if ok && rec(step+1) {
				return true
			}
		}
		delete(assignment, l)
		return false
	}
	if rec(0) {
		return assignment, true
	}
	return nil, false
}

// Restriction returns the problem obtained from p by deleting the given
// labels (and every configuration using them), then compressing. The
// result is at least as hard as p in the sense of Section 4.5: any
// solution of the restriction is a solution of p.
func Restriction(p *Problem, remove ...Label) *Problem {
	keep := p.Edge.UsedLabels(p.Alpha.Size())
	keep.UnionInPlace(p.Node.UsedLabels(p.Alpha.Size()))
	for _, l := range remove {
		keep.Remove(int(l))
	}
	na, remap := restrictedAlphabet(p.Alpha, keep)
	q := &Problem{
		Alpha: na,
		Edge:  p.Edge.Restrict(keep, remap),
		Node:  p.Node.Restrict(keep, remap),
	}
	return q.Compress()
}
