// Package synth decides, by exhaustive synthesis, whether a locally
// checkable problem admits a 1-round deterministic algorithm in the port
// numbering model on Δ-regular high-girth graphs whose input is an
// arbitrary edge orientation.
//
// Together with core.ZeroRoundSolvableWithOrientation this mechanizes
// Theorem 1 (with Theorem 2's simplification) at t = 1: on the
// 1-independent class of Δ-regular girth-≥4 orientation-labeled graphs,
//
//	Π is 1-round solvable  ⟺  Π'_1 is 0-round solvable,
//
// which the tests check for the catalog problems and for random problems
// (Experiment U2).
package synth

import (
	"fmt"

	"repro/internal/core"
)

// A radius-1 view on a Δ-regular orientation-labeled high-girth graph:
// the node's own orientation pattern plus, per port, the neighbor's
// return port and the orientations of the neighbor's other ports. High
// girth means neighbors are pairwise non-adjacent, and 1-independence
// means every combination of per-port descriptions occurs.
// Views carry no string identity: the search space is indexed by the
// enumeration order, and output-tuple membership queries go through
// the interned (handle-keyed) constraint representation of core.
type view struct {
	ownOut    []bool   // orientation per own port (true = out)
	returnPos []int    // neighbor's port leading back, per own port
	nbOut     [][]bool // neighbor's full orientation pattern, per own port
}

// OneRoundOrientedSolvable reports whether p admits a 1-round algorithm
// on Δ-regular orientation-labeled graphs of girth ≥ 4 (worst-case port
// numbering and orientation). The search space is doubly exponential in Δ
// and the alphabet; it is feasible for Δ = 2 and small alphabets, which
// is what the Theorem 1 mechanization uses.
func OneRoundOrientedSolvable(p *core.Problem) (bool, error) {
	delta := p.Delta()
	nLabels := p.Alpha.Size()
	if delta > 2 || nLabels > 6 {
		return false, fmt.Errorf("synth: search infeasible for Δ=%d, %d labels", delta, nLabels)
	}

	views := enumerateViews(delta)

	// Per-view output options: all label tuples whose multiset is a node
	// configuration.
	tuples := core.AllLabelTuples(nLabels, delta)
	var nodeOK [][]core.Label
	for _, tup := range tuples {
		if p.Node.Contains(core.NewConfig(tup...)) {
			nodeOK = append(nodeOK, tup)
		}
	}
	if len(nodeOK) == 0 {
		return false, nil
	}

	rel := make([][]bool, nLabels)
	for i := range rel {
		rel[i] = make([]bool, nLabels)
	}
	for _, cfg := range p.Edge.Configs() {
		l := cfg.Expand()
		rel[l[0]][l[1]] = true
		rel[l[1]][l[0]] = true
	}

	// Precompute the port-compatibility structure between views.
	type arc struct{ i, j int }
	arcs := make([][][]arc, len(views)) // arcs[a][b] = compatible port pairs
	for a := range views {
		arcs[a] = make([][]arc, len(views))
		for b := range views {
			for i := 0; i < delta; i++ {
				for j := 0; j < delta; j++ {
					if compatibleAlong(views[a], i, views[b], j) {
						arcs[a][b] = append(arcs[a][b], arc{i, j})
					}
				}
			}
		}
	}

	// optionOK reports whether option ta of view a coexists with option tb
	// of view b across every compatible port pair.
	optionOK := func(a int, ta []core.Label, b int, tb []core.Label) bool {
		for _, pr := range arcs[a][b] {
			if !rel[ta[pr.i]][tb[pr.j]] {
				return false
			}
		}
		return true
	}

	// Domains: per view, the indices of still-viable output tuples. A
	// view can be adjacent to a copy of itself, so options must also be
	// self-consistent.
	domains := make([][]int, len(views))
	for a := range views {
		for oi, tup := range nodeOK {
			if optionOK(a, tup, a, tup) {
				domains[a] = append(domains[a], oi)
			}
		}
		if len(domains[a]) == 0 {
			return false, nil
		}
	}

	// AC-3 style propagation: remove options with no support in some
	// neighbor domain; repeat to fixpoint.
	revise := func(a, b int) bool {
		if len(arcs[a][b]) == 0 {
			return false
		}
		changed := false
		kept := domains[a][:0]
		for _, oa := range domains[a] {
			supported := false
			for _, ob := range domains[b] {
				if optionOK(a, nodeOK[oa], b, nodeOK[ob]) {
					supported = true
					break
				}
			}
			if supported {
				kept = append(kept, oa)
			} else {
				changed = true
			}
		}
		domains[a] = kept
		return changed
	}
	propagate := func() bool {
		for {
			changed := false
			for a := range views {
				for b := range views {
					if revise(a, b) {
						changed = true
						if len(domains[a]) == 0 {
							return false
						}
					}
				}
			}
			if !changed {
				return true
			}
		}
	}
	if !propagate() {
		return false, nil
	}

	// Backtracking with forward checking and minimum-remaining-values
	// ordering on the arc-consistent domains.
	assigned := make([]int, len(views))
	for i := range assigned {
		assigned[i] = -1
	}
	var rec func(count int) bool
	rec = func(count int) bool {
		if count == len(views) {
			return true
		}
		best, bestSize := -1, 1<<30
		for a := range views {
			if assigned[a] == -1 && len(domains[a]) < bestSize {
				best, bestSize = a, len(domains[a])
			}
		}
		saved := make(map[int][]int)
		for _, oa := range domains[best] {
			ok := true
			for b := range views {
				if assigned[b] != -1 || b == best {
					continue
				}
				kept := make([]int, 0, len(domains[b]))
				for _, ob := range domains[b] {
					if optionOK(best, nodeOK[oa], b, nodeOK[ob]) {
						kept = append(kept, ob)
					}
				}
				if len(kept) < len(domains[b]) {
					if _, dup := saved[b]; !dup {
						saved[b] = domains[b]
					}
					domains[b] = kept
				}
				if len(kept) == 0 {
					ok = false
					break
				}
			}
			if ok {
				assigned[best] = oa
				if rec(count + 1) {
					return true
				}
				assigned[best] = -1
			}
			for b, old := range saved {
				domains[b] = old
				delete(saved, b)
			}
		}
		return false
	}
	return rec(0), nil
}

// compatibleAlong reports whether view v's port i and view w's port j can
// be the two endpoints of one edge in some graph of the class: the shared
// edge's orientation agrees (out on one side, in on the other), v's
// description of its port-i neighbor matches w's self-description, and
// vice versa.
func compatibleAlong(v view, i int, w view, j int) bool {
	if v.ownOut[i] == w.ownOut[j] {
		return false // both out or both in: inconsistent orientation
	}
	if v.returnPos[i] != j || w.returnPos[j] != i {
		return false
	}
	for port := range w.ownOut {
		if v.nbOut[i][port] != w.ownOut[port] {
			return false
		}
	}
	for port := range v.ownOut {
		if w.nbOut[j][port] != v.ownOut[port] {
			return false
		}
	}
	return true
}

// enumerateViews lists all radius-1 views on Δ-regular orientation-labeled
// trees: own pattern × per-port (return port × neighbor pattern consistent
// on the shared edge).
func enumerateViews(delta int) []view {
	var views []view
	patterns := allBoolPatterns(delta)
	var build func(v view, port int)
	build = func(v view, port int) {
		if port == delta {
			cp := view{
				ownOut:    append([]bool(nil), v.ownOut...),
				returnPos: append([]int(nil), v.returnPos...),
				nbOut:     make([][]bool, delta),
			}
			for i := range v.nbOut {
				cp.nbOut[i] = append([]bool(nil), v.nbOut[i]...)
			}
			views = append(views, cp)
			return
		}
		for ret := 0; ret < delta; ret++ {
			for _, nb := range patterns {
				// The neighbor sees the shared edge from the other side.
				if nb[ret] == v.ownOut[port] {
					continue
				}
				v.returnPos[port] = ret
				v.nbOut[port] = nb
				build(v, port+1)
			}
		}
	}
	for _, own := range patterns {
		v := view{
			ownOut:    own,
			returnPos: make([]int, delta),
			nbOut:     make([][]bool, delta),
		}
		build(v, 0)
	}
	return views
}

func allBoolPatterns(n int) [][]bool {
	out := make([][]bool, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		p := make([]bool, n)
		for b := 0; b < n; b++ {
			p[b] = mask&(1<<uint(b)) != 0
		}
		out = append(out, p)
	}
	return out
}
