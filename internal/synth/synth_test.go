package synth

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
)

func TestKnownOneRoundCases(t *testing.T) {
	// "Output the input orientation" is 0-round, hence 1-round, solvable.
	copyOrient := core.MustParse(`
node:
O O
O I
I I
edge:
O I
`)
	ok, err := OneRoundOrientedSolvable(copyOrient)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("orientation copy not 1-round solvable")
	}

	// 2-coloring on oriented high-girth 2-regular graphs is not 1-round
	// solvable (it needs Θ(n) rounds on cycles).
	twoCol := problems.KColoring(2, 2)
	ok, err = OneRoundOrientedSolvable(twoCol)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("2-coloring reported 1-round solvable")
	}
}

// TestTheorem1AtTEquals1 mechanizes Theorem 1 (+ Theorem 2) for t = 1 on
// the 1-independent class of Δ=2 orientation-labeled high-girth graphs:
// Π is 1-round solvable iff the derived Π'_1 is 0-round solvable. Random
// problems over small alphabets are checked in both directions.
func TestTheorem1AtTEquals1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for iter := 0; iter < 400 && checked < 120; iter++ {
		p := randomProblem(rng, 2+rng.Intn(2), 0.5)
		if p.Edge.Size() == 0 || p.Node.Size() == 0 {
			continue
		}
		derived, err := core.Speedup(p)
		if err != nil {
			t.Fatal(err)
		}
		oneRound, err := OneRoundOrientedSolvable(p)
		if err != nil {
			t.Fatal(err)
		}
		_, zeroRound := core.ZeroRoundSolvableWithOrientation(derived)
		if oneRound != zeroRound {
			t.Fatalf("iter %d: Theorem 1 equivalence violated: 1-round(Π)=%v, 0-round(Π'_1)=%v\nΠ:\n%s\nΠ'_1:\n%s",
				iter, oneRound, zeroRound, p.String(), derived.String())
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d usable random problems; generator too sparse", checked)
	}
}

func TestInfeasibleParametersRejected(t *testing.T) {
	if _, err := OneRoundOrientedSolvable(problems.KColoring(3, 4)); err == nil {
		t.Error("Δ=4 accepted")
	}
}

// randomProblem mirrors the core test helper (kept local: internal test
// helpers are not exported across packages).
func randomProblem(rng *rand.Rand, alphabetSize int, density float64) *core.Problem {
	names := make([]string, alphabetSize)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	alpha := core.MustAlphabet(names...)
	edge := core.NewConstraint(2)
	for i := 0; i < alphabetSize; i++ {
		for j := i; j < alphabetSize; j++ {
			if rng.Float64() < density {
				edge.MustAdd(core.NewConfig(core.Label(i), core.Label(j)))
			}
		}
	}
	node := core.NewConstraint(2)
	for i := 0; i < alphabetSize; i++ {
		for j := i; j < alphabetSize; j++ {
			if rng.Float64() < density {
				node.MustAdd(core.NewConfig(core.Label(i), core.Label(j)))
			}
		}
	}
	p, err := core.NewProblem(alpha, edge, node)
	if err != nil {
		panic(err)
	}
	return p
}
