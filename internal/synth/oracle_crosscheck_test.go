package synth_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/problems"
	"repro/internal/synth"
)

// TestSynthMatchesOracle cross-checks the 1-round synthesis decider
// against the brute-force oracle on the family of all port numberings ×
// all orientations of C_4 and C_5 (members of the Δ=2 girth-≥4...n
// orientation-labeled class synth quantifies over; C_5 has girth 5).
//
// Soundness is a theorem: synth solvable ⇒ a class-wide algorithm
// exists ⇒ its restriction solves every family instance. The converse
// is asserted too because this family is rich enough to realize every
// radius-1 view and adjacency the synthesizer distinguishes for these
// problems — a strict conformance check on both deciders.
func TestSynthMatchesOracle(t *testing.T) {
	var fam []oracle.Instance
	for _, n := range []int{4, 5} {
		insts, err := oracle.Cycles(n)
		if err != nil {
			t.Fatal(err)
		}
		oriented, err := oracle.WithAllOrientations(insts)
		if err != nil {
			t.Fatal(err)
		}
		fam = append(fam, oriented...)
	}
	cases := []struct {
		name string
		p    *core.Problem
	}{
		{"2-coloring", problems.KColoring(2, 2)},
		{"3-coloring", problems.KColoring(3, 2)},
		{"4-coloring", problems.KColoring(4, 2)},
		{"sinkless-orientation", problems.SinklessOrientation(2)},
		{"sinkless-coloring", problems.SinklessColoring(2)},
		{"trivial", core.MustParse("node:\nA A\nedge:\nA A")},
		{"orientation-split", core.MustParse("node:\nA B\nedge:\nA B\nA A\nB B")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fromSynth, err := synth.OneRoundOrientedSolvable(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			v, err := oracle.Decide(tc.p, fam, 1)
			if err != nil {
				t.Fatal(err)
			}
			if fromSynth && !v.Solvable {
				t.Fatalf("soundness violated: synth finds a 1-round algorithm, oracle rejects the family restriction")
			}
			if fromSynth != v.Solvable {
				t.Fatalf("synth=%v, oracle=%v", fromSynth, v.Solvable)
			}
		})
	}
}
