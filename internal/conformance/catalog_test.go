package conformance

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/oracle"
	"repro/internal/problems"
	"repro/internal/problems/gen"
)

// TestCatalogIsomorphismInvariance locks the isomorphism invariance of
// the classification pipeline on the fixed paper catalog: for every
// catalog entry, 20 seeded random label renamings classify identically
// (same kind, steps, cycle shape, per-entry statistics), and the
// oracle's verdict on the entry's small instance family is unchanged
// by 20 seeded random port renumberings of every instance.
func TestCatalogIsomorphismInvariance(t *testing.T) {
	const trials = 20
	run := func(p *core.Problem) *fixpoint.Result {
		res, err := fixpoint.Run(p, fixpoint.Options{
			MaxSteps: 2,
			Core:     []core.Option{core.WithMaxStates(3000)},
		})
		if err != nil {
			t.Fatalf("fixpoint.Run: %v", err)
		}
		return res
	}

	for _, pt := range problems.CatalogGrid() {
		pt := pt
		t.Run(pt.Name, func(t *testing.T) {
			t.Parallel()
			base := run(pt.Problem)

			// Label renamings: trajectory shape is a class invariant.
			for i := 0; i < trials; i++ {
				renamed, _ := gen.RenameLabels(pt.Problem, int64(i))
				res := run(renamed)
				if d := trajectoryShapeDiff(base, res); d != "" {
					t.Fatalf("renaming seed %d changed the classification: %s", i, d)
				}
				if _, ok := core.Isomorphic(base.Trajectory[0], res.Trajectory[0]); !ok {
					t.Fatalf("renaming seed %d: compressed inputs not isomorphic", i)
				}
			}

			// Port renumberings. A verdict on one port-numbered instance
			// may legitimately move under renumbering (the numbering is
			// the model's symmetry-breaking resource), so the locked
			// invariants are the two sound ones: on a family closed
			// under renumbering (Cycles(4) holds every port numbering of
			// C_4) the verdict is exactly invariant, and on any family
			// the union with its permuted image is solvable only if each
			// half is.
			decide := func(insts []oracle.Instance) bool {
				v, err := oracle.Decide(pt.Problem, insts, 0,
					oracle.WithWorkers(1), oracle.WithMaxSteps(300_000))
				if err != nil {
					t.Skipf("oracle budget: %v", err)
				}
				return v.Solvable
			}
			permute := func(insts []oracle.Instance, seed int64) []oracle.Instance {
				out := make([]oracle.Instance, len(insts))
				for j, inst := range insts {
					out[j] = oracle.Instance{
						Name: inst.Name,
						G:    gen.PermutePorts(inst.G, seed+int64(j)),
						In:   inst.In,
					}
				}
				return out
			}
			if pt.Problem.Delta() == 2 {
				fam, err := oracle.Cycles(4)
				if err != nil {
					t.Fatalf("Cycles(4): %v", err)
				}
				want := decide(fam)
				for i := 0; i < trials; i++ {
					if got := decide(permute(fam, int64(i)*997)); got != want {
						t.Fatalf("port permutation seed %d moved the verdict on a renumbering-closed family: %v -> %v", i, want, got)
					}
				}
			} else {
				bases, err := oracle.RegularBases(pt.Problem.Delta(), 8)
				if err != nil {
					t.Skipf("no oracle bases at delta=%d: %v", pt.Problem.Delta(), err)
				}
				for i := 0; i < trials; i++ {
					permuted := permute(bases, int64(i)*997)
					union := append(append([]oracle.Instance{}, bases...), permuted...)
					if decide(union) && !(decide(bases) && decide(permuted)) {
						t.Fatalf("port permutation seed %d: union solvable but a half is not", i)
					}
				}
			}
		})
	}
}
