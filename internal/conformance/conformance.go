// Package conformance is the randomized metamorphic test harness: it
// drives generated problems (internal/problems/gen) through the whole
// stack — the speedup engine, the fixpoint driver, the HTTP service
// with its store/pack/rendered warm tiers, and the brute-force oracle —
// and checks the invariants that Brandt's speedup theorem and this
// repository's byte-identity contract promise for EVERY locally
// checkable problem, not just the hand-picked catalog:
//
//   - Worker identity: core.Speedup output is byte-identical across
//     worker counts (or fails the state budget identically).
//   - Determinism: two fixpoint runs of the same problem under the
//     same budgets render byte-identical trajectories — the substance
//     of "same core.StableKey class ⇒ identical fixpoint trajectory".
//   - Rename invariance: a label-renamed problem (gen.RenameLabels)
//     classifies identically — same kind, step count and cycle shape,
//     with an isomorphic trajectory.
//   - Service round-trip: the problem flows through POST /v1/fixpoint
//     cold, then warm, then from a packed artifact, and every tier
//     returns the same bytes.
//   - Oracle agreement on small instances (n ≤ Options.OracleMaxN):
//     the 0-round verdict matches core.ZeroRoundSolvableNoInput, the
//     decode direction of Theorem 1 holds (Speedup(Π) solvable in 0
//     rounds on an oriented family ⇒ Π solvable in 1), and verdicts
//     are monotone under port permutation of the instance family: the
//     union of a family with its gen.PermutePorts image is solvable
//     only if both halves are.
//
// Checks that exceed a search or state budget are skipped, never
// failed — the harness's claims are exact where they are asserted.
// Every failure carries the single-point -gen spec that regenerates
// the offending problem, so a CI failure (including one from a
// randomized nightly seed) is reproducible from its log line alone.
package conformance

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/oracle"
	"repro/internal/par"
	"repro/internal/problems"
	"repro/internal/problems/gen"
	"repro/internal/service"
	"repro/internal/store"
)

// Options tunes a conformance run. The zero value selects defaults
// sized for CI: small budgets that classify typical generated problems
// exactly and degrade heavy ones to skips.
type Options struct {
	// MaxSteps bounds each fixpoint run (default 3).
	MaxSteps int
	// MaxStates is the core state budget per speedup step (default 4000).
	MaxStates int
	// Workers is how many problems are checked concurrently (default
	// GOMAXPROCS, capped at 8).
	Workers int
	// Seed drives the harness's own random draws (renamings, port
	// permutations, family shuffles). Reports are deterministic for a
	// fixed (points, Seed) pair.
	Seed int64
	// OracleMaxN caps the instance size of the oracle families
	// (default 8): oracle agreement is asserted on every instance of
	// at most this many nodes.
	OracleMaxN int
	// OracleMaxSteps is the search budget per oracle.Decide call
	// (default 300000); exhaustion skips the check.
	OracleMaxSteps int
	// StoreDir is the persistent store used for the round-trip checks;
	// empty selects a temporary directory removed when Run returns.
	StoreDir string
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 3
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 4000
	}
	if o.Workers <= 0 {
		o.Workers = min(runtime.GOMAXPROCS(0), 8)
	}
	if o.OracleMaxN <= 0 {
		o.OracleMaxN = 8
	}
	if o.OracleMaxSteps <= 0 {
		o.OracleMaxSteps = 300_000
	}
	return o
}

// Failure is one violated invariant: the problem (by point name), the
// exact -gen spec that regenerates it, the check that failed and what
// it saw.
type Failure struct {
	Problem string `json:"problem"`
	Repro   string `json:"repro"`
	Check   string `json:"check"`
	Detail  string `json:"detail"`
}

// Report is the outcome of one conformance run.
type Report struct {
	// Problems is the number of problems driven through the stack.
	Problems int `json:"problems"`
	// Checks is the number of invariant checks that ran to a verdict.
	Checks int `json:"checks"`
	// OracleDecided counts problems whose decode-direction oracle
	// check reached a verdict (was not skipped for budget or size).
	OracleDecided int `json:"oracle_decided"`
	// Skips counts skipped checks by reason.
	Skips map[string]int `json:"skips,omitempty"`
	// Failures lists every violated invariant with its reproduction.
	Failures []Failure `json:"failures,omitempty"`
}

// OK reports whether every asserted check held.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// String renders a one-line summary plus one line per failure.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "conformance: %d problems, %d checks, %d oracle-decided, %d skips, %d failures",
		r.Problems, r.Checks, r.OracleDecided, r.skipTotal(), len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "\nFAIL %s [%s]: %s\n  reproduce: -gen %s", f.Problem, f.Check, f.Detail, f.Repro)
	}
	return sb.String()
}

func (r *Report) skipTotal() int {
	n := 0
	for _, c := range r.Skips {
		n += c
	}
	return n
}

// RunSpec generates the spec's points and runs the full harness over
// them; each failure's Repro is the exact single-point spec.
func RunSpec(spec *gen.Spec, opts Options) (*Report, error) {
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	return Run(points, spec.Repro, opts)
}

// pointOutcome accumulates one problem's results; slots are assembled
// in point order so the report is deterministic under Workers.
type pointOutcome struct {
	failures []Failure
	skips    []string
	checks   int
	decided  bool
	body     []byte // warm /v1/fixpoint body, verified against the pack
}

// Run drives every point through the invariant checks. repro(i) must
// return the reproduction handle for point i (RunSpec passes the
// single-point -gen spec; catalog callers may pass the point name).
func Run(points []problems.GridPoint, repro func(i int) string, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	dir := opts.StoreDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "conformance-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	// One engine and one HTTP server span the run: the service half of
	// the harness exercises exactly the production stack (singleflight,
	// store tiers, NDJSON streaming) rather than a per-problem replica.
	eng, err := service.New(service.Config{StoreDir: dir, Workers: 1, MaxInflight: opts.Workers})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	srv := httptest.NewServer(service.Handler(eng))
	defer srv.Close()

	fams := newFamilyCache(opts)
	outcomes := make([]pointOutcome, len(points))
	par.RunIndexed(opts.Workers, len(points), func(i int) {
		outcomes[i] = checkPoint(points[i], srv.Client(), srv.URL, fams, opts)
	})

	rep := &Report{Problems: len(points), Skips: map[string]int{}}
	for i, out := range outcomes {
		rep.Checks += out.checks
		if out.decided {
			rep.OracleDecided++
		}
		for _, s := range out.skips {
			rep.Skips[s]++
		}
		for _, f := range out.failures {
			f.Problem = points[i].Name
			f.Repro = repro(i)
			rep.Failures = append(rep.Failures, f)
		}
	}

	// Pack round-trip: pack the store the run populated, then verify
	// the packed artifact serves every point's fixpoint body
	// byte-identically to the live warm tier (and that the store's own
	// rendered record agrees).
	packFailures, packChecks, err := verifyPack(eng.Store(), filepath.Join(dir, "conformance.repack"), points, outcomes, opts)
	if err != nil {
		return nil, err
	}
	rep.Checks += packChecks
	for _, f := range packFailures {
		f.Repro = repro(f.pointIndex)
		rep.Failures = append(rep.Failures, f.Failure)
	}
	return rep, nil
}

// checkPoint runs every per-problem invariant check.
func checkPoint(pt problems.GridPoint, client *http.Client, baseURL string, fams *familyCache, opts Options) pointOutcome {
	var out pointOutcome
	p := pt.Problem
	fail := func(check, format string, args ...any) {
		out.failures = append(out.failures, Failure{Check: check, Detail: fmt.Sprintf(format, args...)})
	}
	skip := func(reason string) { out.skips = append(out.skips, reason) }

	// Worker identity: the speedup transformation is a pure function of
	// the problem — worker counts must not leak into the output, and a
	// state-budget failure must be a property of the problem, not of
	// the schedule.
	sp1, err1 := core.Speedup(p, core.WithWorkers(1), core.WithMaxStates(opts.MaxStates))
	sp4, err4 := core.Speedup(p, core.WithWorkers(4), core.WithMaxStates(opts.MaxStates))
	out.checks++
	switch {
	case (err1 == nil) != (err4 == nil):
		fail("speedup-worker-identity", "1 worker err=%v, 4 workers err=%v", err1, err4)
	case err1 == nil && !bytes.Equal(sp1.CanonicalBytes(), sp4.CanonicalBytes()):
		fail("speedup-worker-identity", "derived problems differ between 1 and 4 workers")
	}

	// Fixpoint determinism: two runs under identical budgets must
	// render byte-identical trajectories (same StableKey ⇒ identical
	// trajectory, exercised on the same problem value).
	run := func(q *core.Problem) (*fixpoint.Result, error) {
		return fixpoint.Run(q, fixpoint.Options{
			MaxSteps: opts.MaxSteps,
			Core:     []core.Option{core.WithWorkers(2), core.WithMaxStates(opts.MaxStates)},
		})
	}
	r1, err := run(p)
	if err != nil {
		fail("fixpoint-run", "fixpoint.Run: %v", err)
		return out
	}
	r2, err := run(p)
	out.checks++
	if err != nil {
		fail("fixpoint-determinism", "second run errored: %v", err)
	} else if !bytes.Equal(service.RenderFixpointNDJSON(r1), service.RenderFixpointNDJSON(r2)) {
		fail("fixpoint-determinism", "two runs of the same problem rendered different trajectories")
	}

	// Rename invariance: classification and trajectory shape are
	// properties of the isomorphism class.
	renamed, _ := gen.RenameLabels(p, opts.Seed)
	rr, err := run(renamed)
	out.checks++
	if err != nil {
		fail("rename-invariance", "renamed run errored: %v", err)
	} else if d := trajectoryShapeDiff(r1, rr); d != "" {
		fail("rename-invariance", "renamed problem classifies differently: %s", d)
	} else if _, ok := core.Isomorphic(r1.Trajectory[0], rr.Trajectory[0]); !ok {
		fail("rename-invariance", "compressed inputs of original and renamed runs are not isomorphic")
	}

	// Service round-trip: the problem flows through POST /v1/fixpoint
	// cold then warm; both bodies must equal each other and the locally
	// rendered trajectory (locking HTTP, store and driver together).
	body1, err := postFixpoint(client, baseURL, p, opts)
	if err != nil {
		fail("service-roundtrip", "cold request: %v", err)
	} else {
		body2, err := postFixpoint(client, baseURL, p, opts)
		out.checks++
		switch {
		case err != nil:
			fail("service-roundtrip", "warm request: %v", err)
		case !bytes.Equal(body1, body2):
			fail("service-roundtrip", "cold and warm /v1/fixpoint bodies differ")
		case !bytes.Equal(body1, service.RenderFixpointNDJSON(r1)):
			fail("service-roundtrip", "/v1/fixpoint body differs from locally rendered trajectory")
		default:
			out.body = body1
		}
	}

	// Oracle checks, on families of instances with at most OracleMaxN
	// nodes each.
	fam, err := fams.get(p.Delta())
	if err != nil {
		skip("no-oracle-family")
		return out
	}
	decide := func(q *core.Problem, insts []oracle.Instance, t int) (*oracle.Verdict, bool) {
		v, err := oracle.Decide(q, insts, t,
			oracle.WithWorkers(1), oracle.WithMaxSteps(opts.OracleMaxSteps))
		if err != nil {
			skip("oracle-budget")
			return nil, false
		}
		return v, true
	}

	// Zero-round agreement: on a pairing-complete family the oracle's
	// 0-round verdict coincides exactly with the adversary argument of
	// Section 3; otherwise only the upper-bound direction is sound.
	_, zr := core.ZeroRoundSolvableNoInput(p)
	if v0, ok := decide(p, fam.plain, 0); ok {
		out.checks++
		if fam.pairingComplete {
			if v0.Solvable != zr {
				fail("zero-round", "oracle@0=%v, ZeroRoundSolvableNoInput=%v on pairing-complete family", v0.Solvable, zr)
			}
		} else if zr && !v0.Solvable {
			fail("zero-round", "ZeroRoundSolvableNoInput holds but oracle@0 unsolvable")
		}
	}

	// Port-permutation monotonicity: renumbering ports changes which
	// output positions pair up on each edge, so a verdict on a single
	// instance may legitimately move — port numbers are the model's
	// symmetry-breaking resource. What must hold for every problem is
	// family monotonicity: one algorithm for the union of a family and
	// its port-permuted image (gen.PermutePorts) also solves each half,
	// so solvable(F ∪ F') implies solvable(F) and solvable(F').
	permuted := make([]oracle.Instance, len(fam.plain))
	for i, inst := range fam.plain {
		permuted[i] = oracle.Instance{
			Name: inst.Name + "/permuted",
			G:    gen.PermutePorts(inst.G, opts.Seed+int64(i)),
			In:   inst.In,
		}
	}
	union := append(append([]oracle.Instance{}, fam.plain...), permuted...)
	if vU, ok := decide(p, union, 1); ok {
		if vA, ok := decide(p, fam.plain, 1); ok {
			if vB, ok := decide(p, permuted, 1); ok {
				out.checks++
				if vU.Solvable && !(vA.Solvable && vB.Solvable) {
					fail("port-permutation", "union of family and permuted family solvable, but halves are %v/%v", vA.Solvable, vB.Solvable)
				}
			}
		}
	}

	// Decode direction of Theorem 1 (oracle agreement on n ≤ OracleMaxN
	// instances): Speedup(Π) solvable in 0 rounds on an oriented family
	// ⇒ Π solvable in 1 round on the same family. Holds on every graph
	// — it needs no girth or independence assumption — so it is
	// asserted whenever the derived problem is within oracle reach.
	if err1 != nil {
		skip("speedup-budget")
		return out
	}
	if st := sp1.Stats(); st.Labels > 12 || st.NodeConfigs > 300 {
		skip("speedup-too-large")
		return out
	}
	if d0, ok := decide(sp1, fam.oriented, 0); ok {
		if o1, ok := decide(p, fam.oriented, 1); ok {
			out.checks++
			out.decided = true
			if d0.Solvable && !o1.Solvable {
				fail("decode-direction", "Speedup(Π)@0 solvable but Π@1 unsolvable on oriented family")
			}
		}
	}
	return out
}

// trajectoryShapeDiff compares the isomorphism-invariant shape of two
// fixpoint results: classification, step count, cycle closure, and the
// per-entry description statistics. Empty means identical.
func trajectoryShapeDiff(a, b *fixpoint.Result) string {
	switch {
	case a.Kind != b.Kind:
		return fmt.Sprintf("kind %q vs %q", a.Kind, b.Kind)
	case a.Steps != b.Steps:
		return fmt.Sprintf("steps %d vs %d", a.Steps, b.Steps)
	case a.CycleStart != b.CycleStart || a.CycleLen != b.CycleLen:
		return fmt.Sprintf("cycle (%d,%d) vs (%d,%d)", a.CycleStart, a.CycleLen, b.CycleStart, b.CycleLen)
	case len(a.Trajectory) != len(b.Trajectory):
		return fmt.Sprintf("trajectory length %d vs %d", len(a.Trajectory), len(b.Trajectory))
	}
	for i := range a.Trajectory {
		if sa, sb := a.Trajectory[i].Stats(), b.Trajectory[i].Stats(); sa != sb {
			return fmt.Sprintf("entry %d stats %+v vs %+v", i, sa, sb)
		}
	}
	return ""
}

// postFixpoint sends one problem through POST /v1/fixpoint and returns
// the complete NDJSON body.
func postFixpoint(client *http.Client, baseURL string, p *core.Problem, opts Options) ([]byte, error) {
	reqBody := fmt.Sprintf(`{"problem": %q, "max_steps": %d, "max_states": %d}`,
		string(p.CanonicalBytes()), opts.MaxSteps, opts.MaxStates)
	resp, err := client.Post(baseURL+"/v1/fixpoint", "application/json", strings.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

// packFailure is a Failure that still needs its Repro resolved by index.
type packFailure struct {
	Failure
	pointIndex int
}

// verifyPack packs the run's store and checks that, for every point
// whose warm body is known, the packed artifact and the store's
// rendered record replay exactly the bytes the service served.
func verifyPack(st *store.Store, path string, points []problems.GridPoint, outcomes []pointOutcome, opts Options) ([]packFailure, int, error) {
	if st == nil {
		return nil, 0, nil
	}
	if _, err := st.Pack(path); err != nil {
		return nil, 0, err
	}
	pk, err := store.OpenPack(path)
	if err != nil {
		return nil, 0, err
	}
	defer pk.Close()

	params := store.TrajectoryParams{MaxSteps: opts.MaxSteps, MaxStates: opts.MaxStates}
	var fails []packFailure
	checks := 0
	for i, out := range outcomes {
		if out.body == nil {
			continue
		}
		checks++
		p := points[i].Problem
		addFail := func(format string, args ...any) {
			fails = append(fails, packFailure{
				Failure:    Failure{Problem: points[i].Name, Check: "pack-roundtrip", Detail: fmt.Sprintf(format, args...)},
				pointIndex: i,
			})
		}
		stored, ok, err := st.GetRendered(p, params)
		if err != nil || !ok {
			addFail("store rendered record missing (ok=%v, err=%v)", ok, err)
			continue
		}
		if !bytes.Equal(stored, out.body) {
			addFail("store rendered record differs from served body")
			continue
		}
		packed, ok, err := pk.GetRendered(p, params)
		if err != nil || !ok {
			addFail("pack rendered record missing (ok=%v, err=%v)", ok, err)
			continue
		}
		if !bytes.Equal(packed, out.body) {
			addFail("pack rendered record differs from served body")
		}
	}
	return fails, checks, nil
}

// familyCache builds and caches the per-Δ oracle instance families.
// Families are seeded from Options.Seed, so a run's instance set is as
// reproducible as its problems.
type familyCache struct {
	opts Options
	mu   sync.Mutex
	byΔ  map[int]*familySet
}

type familySet struct {
	plain           []oracle.Instance
	oriented        []oracle.Instance
	pairingComplete bool
	err             error
}

func newFamilyCache(opts Options) *familyCache {
	return &familyCache{opts: opts, byΔ: map[int]*familySet{}}
}

// get returns the Δ's family set, building it on first use: the small
// Δ-regular bases capped at OracleMaxN nodes, expanded with seeded port
// shuffles (plain) and seeded random orientations (oriented).
func (c *familyCache) get(delta int) (*familySet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fs, ok := c.byΔ[delta]; ok {
		return fs, fs.err
	}
	fs := &familySet{}
	bases, err := oracle.RegularBases(delta, c.opts.OracleMaxN)
	if err != nil {
		fs.err = err
	} else {
		fs.plain = oracle.WithShuffledPorts(bases, 2, c.opts.Seed)
		fs.oriented = oracle.WithRandomOrientations(oracle.WithShuffledPorts(bases, 1, c.opts.Seed+1), 2, c.opts.Seed+2)
		fs.pairingComplete = oracle.PairingComplete(fs.plain, delta)
	}
	c.byΔ[delta] = fs
	return fs, fs.err
}
