package conformance

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/problems"
	"repro/internal/problems/gen"
)

// prCount returns how many generated problems the PR conformance run
// covers. CI sets CONFORMANCE_COUNT (500 on PRs per the acceptance
// bar); the local default keeps `go test ./...` quick.
func prCount(t *testing.T) int {
	if s := os.Getenv("CONFORMANCE_COUNT"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("CONFORMANCE_COUNT=%q: want a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return 16
	}
	return 48
}

// prSeed returns the run seed. PRs pin it (default 1) so the covered
// problem space is stable; the nightly job sets CONFORMANCE_SEED to a
// fresh value and echoes it, so any failure names its exact -gen repro.
func prSeed(t *testing.T) int64 {
	s := os.Getenv("CONFORMANCE_SEED")
	if s == "" {
		return 1
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("CONFORMANCE_SEED=%q: want an integer", s)
	}
	return n
}

// TestPRConformance is the randomized metamorphic suite: it spreads
// the problem budget over every generator family (both Δ branches of
// the random generator, grid mutants, hypergraph-port mutants) and
// drives all of them through Run's full-stack invariant checks.
func TestPRConformance(t *testing.T) {
	count := prCount(t)
	seed := prSeed(t)
	per := (count + 3) / 4
	specs := []string{
		fmt.Sprintf("family=rand,seed=%d,count=%d,delta=2,labels=3,edge=60,node=60", seed, per),
		fmt.Sprintf("family=rand,seed=%d,count=%d,delta=3,labels=3,edge=50,node=50", seed, per),
		fmt.Sprintf("family=grid,seed=%d,count=%d,k=3,dims=2,wrap=1", seed, per),
		fmt.Sprintf("family=hyper,seed=%d,count=%d,delta=3,r=1", seed, per),
	}

	// One combined Run shares the engine, store and pack phase across
	// all families; repros still point at each point's own spec.
	var points []problems.GridPoint
	var repros []string
	for _, text := range specs {
		spec, err := gen.ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		pts, err := spec.Points()
		if err != nil {
			t.Fatalf("Points(%q): %v", text, err)
		}
		for i := range pts {
			repros = append(repros, spec.Repro(i))
		}
		points = append(points, pts...)
	}

	rep, err := Run(points, func(i int) string { return repros[i] }, Options{Seed: seed})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("%s", rep.String())
	if !rep.OK() {
		t.Errorf("conformance failed (seed=%d):\n%s", seed, rep.String())
	}
	if rep.Problems != len(points) {
		t.Errorf("Problems = %d, want %d", rep.Problems, len(points))
	}
	if rep.Checks == 0 {
		t.Error("no checks ran")
	}
	if rep.OracleDecided == 0 {
		t.Error("decode-direction oracle check never reached a verdict; budgets are mis-sized")
	}
}

// TestRunSpecRepro locks the failure-reproduction contract: RunSpec
// failures would carry single-point specs, and those specs regenerate
// byte-identical problems (exercised here on the success path by
// comparing Repro-spec points against the batch).
func TestRunSpecRepro(t *testing.T) {
	spec, err := gen.ParseSpec("family=rand,seed=7,count=5,delta=2,labels=2,edge=70,node=70")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		rspec, err := gen.ParseSpec(spec.Repro(i))
		if err != nil {
			t.Fatalf("ParseSpec(Repro(%d)): %v", i, err)
		}
		rp, err := rspec.Points()
		if err != nil {
			t.Fatalf("Repro(%d).Points: %v", i, err)
		}
		if len(rp) != 1 || rp[0].Name != pt.Name || !rp[0].Problem.Equal(pt.Problem) {
			t.Fatalf("Repro(%d) does not regenerate point %s", i, pt.Name)
		}
	}
	rep, err := RunSpec(spec, Options{Seed: 7, MaxSteps: 2, MaxStates: 2000})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	if !rep.OK() {
		t.Errorf("RunSpec failed:\n%s", rep.String())
	}
	if rep.Problems != 5 {
		t.Errorf("Problems = %d, want 5", rep.Problems)
	}
}
