// Package matching implements maximum bipartite matching (Hopcroft–Karp)
// and Hall-violator extraction.
//
// Lemma 2 of Brandt (PODC 2019) applies Hall's marriage theorem to a
// bipartite graph built from a node configuration of the derived problem
// Π'₁: either a perfect matching of the left side exists (which the lemma
// turns into a contradiction), or there is a left subset J with
// |J| > |N(J)| — the Hall violator that becomes the set of demanding
// pointers in the superweak coloring transformation (Lemma 3).
package matching

// Bipartite is a bipartite graph with nLeft left vertices and nRight right
// vertices; adj[u] lists the right neighbors of left vertex u.
type Bipartite struct {
	nLeft  int
	nRight int
	adj    [][]int
}

// NewBipartite returns an empty bipartite graph with the given part sizes.
func NewBipartite(nLeft, nRight int) *Bipartite {
	return &Bipartite{
		nLeft:  nLeft,
		nRight: nRight,
		adj:    make([][]int, nLeft),
	}
}

// AddEdge adds an edge between left vertex u and right vertex v.
func (b *Bipartite) AddEdge(u, v int) {
	if u < 0 || u >= b.nLeft || v < 0 || v >= b.nRight {
		panic("matching: edge endpoint out of range")
	}
	b.adj[u] = append(b.adj[u], v)
}

// NLeft returns the number of left vertices.
func (b *Bipartite) NLeft() int { return b.nLeft }

// NRight returns the number of right vertices.
func (b *Bipartite) NRight() int { return b.nRight }

// Neighbors returns the right neighbors of left vertex u. The returned slice
// must not be modified.
func (b *Bipartite) Neighbors(u int) []int { return b.adj[u] }

const unmatched = -1

// Result holds a maximum matching. MatchLeft[u] is the right vertex matched
// to left vertex u, or -1; MatchRight is the inverse map.
type Result struct {
	Size       int
	MatchLeft  []int
	MatchRight []int
}

// MaxMatching computes a maximum matching using the Hopcroft–Karp algorithm
// in O(E·sqrt(V)).
func MaxMatching(b *Bipartite) Result {
	matchL := make([]int, b.nLeft)
	matchR := make([]int, b.nRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}

	dist := make([]int, b.nLeft)
	queue := make([]int, 0, b.nLeft)

	const inf = int(^uint(0) >> 1)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < b.nLeft; u++ {
			if matchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range b.adj[u] {
				w := matchR[v]
				if w == unmatched {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range b.adj[u] {
			w := matchR[v]
			if w == unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	size := 0
	for bfs() {
		for u := 0; u < b.nLeft; u++ {
			if matchL[u] == unmatched && dfs(u) {
				size++
			}
		}
	}
	return Result{Size: size, MatchLeft: matchL, MatchRight: matchR}
}

// HallViolator returns a subset J of left vertices with |J| > |N(J)|, or nil
// if none exists (i.e. Hall's condition holds and a perfect matching of the
// left side exists).
//
// When the maximum matching leaves some left vertex u unmatched, the set of
// left vertices reachable from u by alternating paths is such a violator
// (its neighborhood is exactly the matched right vertices reachable from u,
// one fewer than the left set).
func HallViolator(b *Bipartite) []int {
	res := MaxMatching(b)
	if res.Size == b.nLeft {
		return nil
	}
	// Alternating BFS from all unmatched left vertices. Any one of them
	// yields a violator; starting from all of them yields the (inclusion-
	// wise largest) union, which is also a violator since the deficiency
	// version of Hall's theorem is additive over reachable components.
	inJ := make([]bool, b.nLeft)
	seenR := make([]bool, b.nRight)
	queue := make([]int, 0, b.nLeft)
	for u := 0; u < b.nLeft; u++ {
		if res.MatchLeft[u] == unmatched {
			inJ[u] = true
			queue = append(queue, u)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range b.adj[u] {
			if seenR[v] {
				continue
			}
			seenR[v] = true
			w := res.MatchRight[v]
			if w != unmatched && !inJ[w] {
				inJ[w] = true
				queue = append(queue, w)
			}
		}
	}
	out := make([]int, 0, len(queue))
	for u := 0; u < b.nLeft; u++ {
		if inJ[u] {
			out = append(out, u)
		}
	}
	return out
}

// NeighborhoodOf returns the union of neighborhoods of the given left
// vertices, in increasing order.
func NeighborhoodOf(b *Bipartite, left []int) []int {
	seen := make([]bool, b.nRight)
	for _, u := range left {
		for _, v := range b.adj[u] {
			seen[v] = true
		}
	}
	out := make([]int, 0, b.nRight)
	for v, ok := range seen {
		if ok {
			out = append(out, v)
		}
	}
	return out
}
