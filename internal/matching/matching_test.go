package matching

import (
	"math/rand"
	"testing"
)

func TestPerfectMatchingSimple(t *testing.T) {
	b := NewBipartite(3, 3)
	// A triangle-ish bipartite graph with a unique perfect matching.
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	b.AddEdge(2, 1)
	b.AddEdge(2, 2)
	res := MaxMatching(b)
	if res.Size != 3 {
		t.Fatalf("matching size = %d, want 3", res.Size)
	}
	if HallViolator(b) != nil {
		t.Error("HallViolator returned non-nil despite perfect matching")
	}
}

func TestHallViolatorStructure(t *testing.T) {
	// Three left vertices sharing a single right vertex.
	b := NewBipartite(3, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	v := HallViolator(b)
	if v == nil {
		t.Fatal("expected a Hall violator")
	}
	nb := NeighborhoodOf(b, v)
	if len(v) <= len(nb) {
		t.Errorf("violator |J|=%d not greater than |N(J)|=%d", len(v), len(nb))
	}
}

func TestIsolatedLeftVertex(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	// Left vertex 1 has no edges.
	v := HallViolator(b)
	if v == nil {
		t.Fatal("expected a Hall violator for isolated left vertex")
	}
	nb := NeighborhoodOf(b, v)
	if len(v) <= len(nb) {
		t.Errorf("violator |J|=%d not greater than |N(J)|=%d", len(v), len(nb))
	}
}

// verifyMatching checks the matching arrays are mutually consistent and
// use only real edges.
func verifyMatching(t *testing.T, b *Bipartite, res Result) {
	t.Helper()
	count := 0
	for u := 0; u < b.NLeft(); u++ {
		v := res.MatchLeft[u]
		if v == -1 {
			continue
		}
		count++
		if res.MatchRight[v] != u {
			t.Fatalf("inconsistent matching arrays at left %d", u)
		}
		found := false
		for _, w := range b.Neighbors(u) {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", u, v)
		}
	}
	if count != res.Size {
		t.Fatalf("size %d does not match %d matched vertices", res.Size, count)
	}
}

// bruteMaxMatching computes maximum matching size by exhaustive search.
func bruteMaxMatching(b *Bipartite) int {
	best := 0
	usedR := make([]bool, b.NRight())
	var rec func(u, size int)
	rec = func(u, size int) {
		if size > best {
			best = size
		}
		if u == b.NLeft() {
			return
		}
		rec(u+1, size)
		for _, v := range b.Neighbors(u) {
			if !usedR[v] {
				usedR[v] = true
				rec(u+1, size+1)
				usedR[v] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nl := 1 + rng.Intn(7)
		nr := 1 + rng.Intn(7)
		b := NewBipartite(nl, nr)
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(u, v)
				}
			}
		}
		res := MaxMatching(b)
		verifyMatching(t, b, res)
		if want := bruteMaxMatching(b); res.Size != want {
			t.Fatalf("iter %d: matching size %d, want %d", iter, res.Size, want)
		}
		// Hall violator exists iff the left side is not perfectly matched,
		// and when it exists it must truly violate Hall's condition.
		v := HallViolator(b)
		if (v == nil) != (res.Size == nl) {
			t.Fatalf("iter %d: violator presence inconsistent with matching size", iter)
		}
		if v != nil {
			nb := NeighborhoodOf(b, v)
			if len(v) <= len(nb) {
				t.Fatalf("iter %d: |J|=%d ≤ |N(J)|=%d", iter, len(v), len(nb))
			}
		}
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range edge")
		}
	}()
	b := NewBipartite(1, 1)
	b.AddEdge(1, 0)
}
