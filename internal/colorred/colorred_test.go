package colorred

import (
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/problems"
)

// TestHalfStepMatchesExpected verifies the engine's Π'_{1/2} of k-coloring
// equals the paper's explicit description (Section 4.5) for small k.
func TestHalfStepMatchesExpected(t *testing.T) {
	for k := 2; k <= 5; k++ {
		p := problems.KColoring(k, 2)
		derived, err := core.HalfStep(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExpectedHalf(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := core.Isomorphic(derived, want); !ok {
			t.Errorf("k=%d: derived Π'_1/2 does not match the paper's description\nderived: %+v\nwant: %+v",
				k, derived.Stats(), want.Stats())
		}
	}
}

func TestKPrimeValues(t *testing.T) {
	// k=4: C(4,2)/2 = 3 → k' = 8. k=6: C(6,3)/2 = 10 → k' = 1024.
	got4, err := KPrime(4)
	if err != nil || got4.Cmp(big.NewInt(8)) != 0 {
		t.Errorf("KPrime(4) = %v, %v; want 8", got4, err)
	}
	got6, err := KPrime(6)
	if err != nil || got6.Cmp(big.NewInt(1024)) != 0 {
		t.Errorf("KPrime(6) = %v, %v; want 1024", got6, err)
	}
	// Paper: for k ≥ 6, k' ≥ 2^(2^(k/2)).
	for _, k := range []int{6, 8, 10} {
		kp, err := KPrime(k)
		if err != nil {
			t.Fatal(err)
		}
		bound := mathx.Pow2(1 << uint(k/2))
		if kp.Cmp(bound) < 0 {
			t.Errorf("k=%d: k'=%v below 2^(2^(k/2))=%v", k, kp, bound)
		}
	}
	if _, err := KPrime(5); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := KPrime(2); err == nil {
		t.Error("k=2 accepted")
	}
}

func TestFamiliesCount(t *testing.T) {
	f4, err := Families(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4) != 8 {
		t.Errorf("Families(4) = %d, want 8", len(f4))
	}
	for _, fam := range f4 {
		if len(fam.Members) != 3 {
			t.Errorf("family has %d members, want 3", len(fam.Members))
		}
	}
	f6, err := Families(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 1024 {
		t.Errorf("Families(6) = %d, want 1024", len(f6))
	}
}

// TestVerifyHardening mechanizes the two properties of Section 4.5 that
// make the family labels a k'-coloring subproblem of Π_1.
func TestVerifyHardening(t *testing.T) {
	kp, err := VerifyHardening(4)
	if err != nil {
		t.Fatal(err)
	}
	if kp != 8 {
		t.Errorf("VerifyHardening(4) = %d, want 8", kp)
	}
	if testing.Short() {
		return
	}
	kp6, err := VerifyHardening(6)
	if err != nil {
		t.Fatal(err)
	}
	if kp6 != 1024 {
		t.Errorf("VerifyHardening(6) = %d, want 1024", kp6)
	}
}

// TestHardenedRelaxesToDerived closes the loop: the hardened problem (as
// k'-coloring) genuinely relaxes to the engine-derived unsimplified Π_1
// would be too large to materialize, but the defining properties were
// verified; here we check the resulting problem is exactly k'-coloring.
func TestHardenedRelaxesToDerived(t *testing.T) {
	p, kp, err := HardenedProblem(4)
	if err != nil {
		t.Fatal(err)
	}
	if kp != 8 {
		t.Fatalf("k' = %d, want 8", kp)
	}
	if _, ok := core.Isomorphic(p, problems.KColoring(8, 2)); !ok {
		t.Error("hardened problem is not 8-coloring")
	}
}

// TestUpperBoundStepsLogStarShape verifies the doubly-exponential speedup
// yields Θ(log* n) many steps.
func TestUpperBoundStepsLogStarShape(t *testing.T) {
	cases := []struct {
		bits int
	}{{8}, {16}, {64}, {1 << 10}, {1 << 16}}
	prev := 0
	for _, c := range cases {
		n := new(big.Int).Lsh(big.NewInt(1), uint(c.bits))
		steps, err := UpperBoundSteps(n)
		if err != nil {
			t.Fatal(err)
		}
		logStar := mathx.LogStarBig(n)
		if steps < prev {
			t.Errorf("steps not monotone at bits=%d", c.bits)
		}
		prev = steps
		// Θ(log* n) sanity: within a small additive band.
		if steps > logStar+2 || steps < logStar-4 {
			t.Errorf("bits=%d: steps=%d far from log*=%d", c.bits, steps, logStar)
		}
	}
}

func TestUpperBoundStepsRejectsNonPositive(t *testing.T) {
	if _, err := UpperBoundSteps(big.NewInt(0)); err == nil {
		t.Error("zero id space accepted")
	}
}
