// Package colorred reproduces Section 4.5 of Brandt (PODC 2019): the
// speedup transformation applied to k-coloring on rings yields — after
// hardening the derived problem Π_1 to a subproblem Π_1* — the k'-coloring
// problem with k' = 2^(C(k,k/2)/2), a doubly-exponential color reduction
// per round, which implies the classic O(log* n) upper bound for
// 3-coloring a ring (Cole–Vishkin, Goldberg et al.).
package colorred

import (
	"fmt"
	"math/big"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/problems"
)

// KPrime returns k' = 2^(C(k,k/2)/2), the number of colors of the hardened
// derived problem for even k ≥ 4 (Section 4.5). For k ≥ 6 the paper notes
// k' ≥ 2^(2^(k/2)).
func KPrime(k int) (*big.Int, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("colorred: k' defined for even k >= 4, got %d", k)
	}
	half := mathx.BinomialBig(k, k/2)
	if !half.IsInt64() {
		return nil, fmt.Errorf("colorred: C(%d,%d) overflows", k, k/2)
	}
	e := half.Int64() / 2
	if e > 1<<20 {
		return nil, fmt.Errorf("colorred: k' = 2^%d too large to materialize", e)
	}
	return mathx.Pow2(int(e)), nil
}

// ExpectedHalf returns the explicit form of the simplified derived problem
// Π'_{1/2} of k-coloring given in the paper (for k = 4, and its natural
// generalization): labels are the subsets Y of {1..k} with 1 ≤ |Y| ≤ k−1,
// the edge constraint pairs each Y with its complement, and the node
// constraint contains the pairs {Y, Z} with Y ∩ Z ≠ ∅.
func ExpectedHalf(k int) (*core.Problem, error) {
	if k < 2 {
		return nil, fmt.Errorf("colorred: need k >= 2, got %d", k)
	}
	if k > 16 {
		return nil, fmt.Errorf("colorred: explicit half problem infeasible for k = %d", k)
	}
	var sets []bitset.Set
	names := make([]string, 0, 1<<uint(k)-2)
	for mask := 1; mask < 1<<uint(k)-1; mask++ {
		s := bitset.New(k)
		for b := 0; b < k; b++ {
			if mask&(1<<uint(b)) != 0 {
				s.Add(b)
			}
		}
		sets = append(sets, s)
		names = append(names, subsetName(s))
	}
	alpha, err := core.NewAlphabet(names...)
	if err != nil {
		return nil, err
	}
	edge := core.NewConstraint(2)
	node := core.NewConstraint(2)
	index := map[string]core.Label{}
	for i, s := range sets {
		index[s.Key()] = core.Label(i)
	}
	for i, s := range sets {
		comp := s.Complement()
		if j, ok := index[comp.Key()]; ok {
			edge.MustAdd(core.NewConfig(core.Label(i), j))
		}
		for j := i; j < len(sets); j++ {
			if s.Intersects(sets[j]) {
				node.MustAdd(core.NewConfig(core.Label(i), core.Label(j)))
			}
		}
	}
	return core.NewProblem(alpha, edge, node)
}

func subsetName(s bitset.Set) string {
	name := ""
	s.ForEach(func(i int) bool {
		name += fmt.Sprintf("%d", i+1)
		return true
	})
	return "Y" + name
}

// Family is a hardened label: a set of (k/2)-subsets of {1..k} containing,
// for every (k/2)-subset Z, exactly one of Z and its complement.
type Family struct {
	Members []bitset.Set
}

// Families enumerates all 2^(C(k,k/2)/2) hardened labels for even k.
// Feasible for k = 4 (8 families) and k = 6 (1024 families).
func Families(k int) ([]Family, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("colorred: families defined for even k >= 4, got %d", k)
	}
	if k > 6 {
		return nil, fmt.Errorf("colorred: explicit family enumeration infeasible for k = %d", k)
	}
	// Enumerate complementary pairs of (k/2)-subsets.
	var pairs [][2]bitset.Set
	seen := map[string]bool{}
	enumerateSubsets(k, k/2, func(s bitset.Set) {
		comp := s.Complement()
		key := s.Key()
		if comp.Key() < key {
			key = comp.Key()
		}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, [2]bitset.Set{s.Clone(), comp})
		}
	})
	nf := 1 << uint(len(pairs))
	out := make([]Family, 0, nf)
	for mask := 0; mask < nf; mask++ {
		members := make([]bitset.Set, len(pairs))
		for i := range pairs {
			members[i] = pairs[i][mask>>uint(i)&1]
		}
		out = append(out, Family{Members: members})
	}
	return out, nil
}

func enumerateSubsets(k, size int, fn func(bitset.Set)) {
	s := bitset.New(k)
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			fn(s)
			return
		}
		for i := start; i+remaining <= k; i++ {
			s.Add(i)
			rec(i+1, remaining-1)
			s.Remove(i)
		}
	}
	rec(0, size)
}

// VerifyHardening checks the two properties of Section 4.5 establishing
// that the family labels form a k'-coloring subproblem of the derived
// problem Π_1:
//
//  1. any two distinct families contain complementary members, so
//     {Y, Z} satisfies the (existential) edge constraint of Π_1; and
//  2. within a single family any two members intersect, so {Y, Y}
//     satisfies the (universal) node constraint of Π_1 on rings.
//
// It returns the number of families (= k') on success.
func VerifyHardening(k int) (int, error) {
	families, err := Families(k)
	if err != nil {
		return 0, err
	}
	for i := range families {
		// Property 2: members pairwise intersect (they are never
		// complementary, and two non-complementary (k/2)-subsets of a
		// k-set must share an element).
		for a := range families[i].Members {
			for b := a + 1; b < len(families[i].Members); b++ {
				if !families[i].Members[a].Intersects(families[i].Members[b]) {
					return 0, fmt.Errorf("colorred: family %d: members %v and %v disjoint",
						i, families[i].Members[a], families[i].Members[b])
				}
			}
		}
		// Property 1 against every other family.
		for j := i + 1; j < len(families); j++ {
			if !containComplementaryPair(families[i], families[j]) {
				return 0, fmt.Errorf("colorred: families %d and %d have no complementary members", i, j)
			}
		}
	}
	return len(families), nil
}

func containComplementaryPair(a, b Family) bool {
	for _, y := range a.Members {
		comp := y.Complement()
		for _, z := range b.Members {
			if comp.Equal(z) {
				return true
			}
		}
	}
	return false
}

// HardenedProblem returns the hardened derived problem Π_1* for even k,
// which VerifyHardening proves is exactly k'-coloring on rings; the
// returned problem is the clean k'-coloring formulation.
func HardenedProblem(k int) (*core.Problem, int, error) {
	kPrime, err := VerifyHardening(k)
	if err != nil {
		return nil, 0, err
	}
	return problems.KColoring(kPrime, 2), kPrime, nil
}

// UpperBoundSteps returns the number of speedup-derived color-reduction
// rounds needed to go from idSpace colors down to 4 colors on a ring:
// the smallest r with F^r(4) ≥ idSpace, where F(k) = 2^(C(k,k/2)/2).
// Since F is doubly exponential, the result is Θ(log* idSpace) — the
// Cole–Vishkin bound recovered through the speedup theorem.
func UpperBoundSteps(idSpace *big.Int) (int, error) {
	if idSpace.Sign() <= 0 {
		return 0, fmt.Errorf("colorred: id space must be positive")
	}
	k := big.NewInt(4)
	steps := 0
	for k.Cmp(idSpace) < 0 {
		if steps > 64 {
			return 0, fmt.Errorf("colorred: runaway iteration (internal error)")
		}
		next, err := applyF(k)
		if err != nil {
			return 0, err
		}
		k = next
		steps++
	}
	return steps, nil
}

// applyF computes F(k) = 2^(C(k,k/2)/2) for the integer value of k,
// rounding k down to the nearest even value ≥ 4 first (the construction
// needs even k; discarding colors only helps).
func applyF(k *big.Int) (*big.Int, error) {
	if !k.IsInt64() || k.Int64() > 1<<20 {
		// F(k) ≥ 2^(2^(k/2)) vastly exceeds any id space once k is this
		// large; saturate.
		return new(big.Int).Lsh(big.NewInt(1), 1<<30), nil
	}
	kv := int(k.Int64())
	if kv%2 == 1 {
		kv--
	}
	if kv < 4 {
		kv = 4
	}
	e := new(big.Int).Div(mathx.BinomialBig(kv, kv/2), big.NewInt(2))
	if !e.IsInt64() || e.Int64() > 1<<30 {
		return new(big.Int).Lsh(big.NewInt(1), 1<<30), nil
	}
	return mathx.Pow2(int(e.Int64())), nil
}
