package clustertest

import (
	"flag"
	"os"
	"sync"
	"testing"
)

// binDir holds the per-run binary build directory, created in TestMain
// and removed after the suite.
var binDir string

var (
	binOnce sync.Once
	bins    *Binaries
	binErr  error
)

// testBinaries builds the real serve and sweep binaries once per test
// run; every process-level test starts here.
func testBinaries(t *testing.T) *Binaries {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and boots real processes")
	}
	binOnce.Do(func() { bins, binErr = Build(binDir) })
	if binErr != nil {
		t.Fatal(binErr)
	}
	return bins
}

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "clustertest-bin")
	if err != nil {
		panic(err)
	}
	binDir = dir
	code := m.Run()
	_ = os.RemoveAll(dir)
	os.Exit(code)
}
