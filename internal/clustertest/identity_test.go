package clustertest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/problems"
)

// postFixpoint issues the suite's standard cheap fixpoint query (the
// same explicit budgets on every node, so cache identities agree) and
// returns the NDJSON body. Goroutine-safe: errors are returned, not
// fataled.
func postFixpoint(url string, p *core.Problem) ([]byte, error) {
	req := fmt.Sprintf(`{"problem":%q,"max_steps":2,"max_states":8000}`, string(p.CanonicalBytes()))
	resp, err := http.Post(url+"/v1/fixpoint", "application/json", strings.NewReader(req))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fixpoint: status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

// fetchMetrics returns a node's Prometheus text exposition.
func fetchMetrics(t *testing.T, n *Node) string {
	t.Helper()
	resp, err := http.Get(n.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// peerMetric renders the re_peer_lookups_total series label set the
// obs registry emits for one (peer, outcome) pair.
func peerMetric(peer, outcome string) string {
	return fmt.Sprintf(`re_peer_lookups_total{peer=%q,outcome=%q}`, peer, outcome)
}

// ownedProblems returns cheap grid problems owned by member, in grid
// order. Ports are dynamic, so ownership shifts run to run; the grid
// is large enough that every member of a small ring owns several.
func ownedProblems(t *testing.T, ring *cluster.Ring, member string, want int) []*core.Problem {
	t.Helper()
	points, err := problems.Grid(problems.Families(), 2, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	var owned []*core.Problem
	for _, pt := range points {
		if ring.Owner(core.StableKey(pt.Problem)) == member {
			owned = append(owned, pt.Problem)
		}
	}
	if len(owned) < want {
		t.Fatalf("member %s owns only %d of %d grid problems, want %d", member, len(owned), len(points), want)
	}
	return owned
}

// TestClusterPeerByteIdentity is the multi-node end-to-end identity
// test: two real serve processes bootstrap into one ring, publish
// conforming membership, serve each other's warm records
// byte-identically to a solo cold node, survive eight concurrent
// clients, and — once one node is SIGKILLed — degrade to local
// computation with the failure visible in re_peer_lookups_total.
func TestClusterPeerByteIdentity(t *testing.T) {
	b := testBinaries(t)
	c, err := b.StartCluster("identity", t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	// Ring conformance: every node reports itself as self and the same
	// sorted member list and vnode count as the rest of the fleet.
	infos := make([]cluster.RingInfo, len(c.Nodes))
	for i, n := range c.Nodes {
		resp, err := http.Get(n.URL() + "/v1/peer/ring")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&infos[i])
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if infos[i].Self != n.Addr {
			t.Fatalf("node %d advertises self %q, want %q", i, infos[i].Self, n.Addr)
		}
	}
	if !slices.Equal(infos[0].Members, infos[1].Members) || infos[0].VNodes != infos[1].VNodes {
		t.Fatalf("ring views disagree: %+v vs %+v", infos[0], infos[1])
	}
	want := c.Members()
	slices.Sort(want)
	if !slices.Equal(infos[0].Members, want) {
		t.Fatalf("ring members %v, want %v", infos[0].Members, want)
	}

	ring, err := cluster.NewRing(infos[0].Members, infos[0].VNodes)
	if err != nil {
		t.Fatal(err)
	}
	node0Probs := ownedProblems(t, ring, c.Nodes[0].Addr, 2)
	node1Probs := ownedProblems(t, ring, c.Nodes[1].Addr, 1)
	probs := []*core.Problem{node0Probs[0], node1Probs[0]}

	// A solo node (no -peers) supplies the cold reference bodies.
	solo, err := b.StartNode("identity-solo", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(solo.Kill)
	refs := make([][]byte, len(probs))
	for i, p := range probs {
		if refs[i], err = postFixpoint(solo.URL(), p); err != nil {
			t.Fatal(err)
		}
	}

	// Warm each owner cold, then query the other node: the peer-served
	// body must be byte-identical to the solo cold body.
	for i, p := range probs {
		owner, other := c.Nodes[i], c.Nodes[1-i]
		got, err := postFixpoint(owner.URL(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refs[i]) {
			t.Fatalf("owner cold body for problem %d differs from solo reference", i)
		}
		got, err = postFixpoint(other.URL(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refs[i]) {
			t.Fatalf("peer-served body for problem %d differs from solo reference", i)
		}
	}
	for i := range c.Nodes {
		if m := fetchMetrics(t, c.Nodes[i]); !strings.Contains(m, peerMetric(c.Nodes[1-i].Addr, "hit")) {
			t.Fatalf("node %d metrics lack a peer hit against %s:\n%s", i, c.Nodes[1-i].Addr, m)
		}
	}

	// Eight concurrent clients across both nodes all see the same
	// bytes, whether a request lands on the owner or rides the peer
	// tier (warm by now, but re-served end to end per request).
	var wg sync.WaitGroup
	errs := make(chan error, 8*2*len(probs))
	for client := 0; client < 8; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				node := c.Nodes[(client+round)%2]
				for i, p := range probs {
					body, err := postFixpoint(node.URL(), p)
					if err != nil {
						errs <- err
						continue
					}
					if !bytes.Equal(body, refs[i]) {
						errs <- fmt.Errorf("client %d: body for problem %d differs", client, i)
					}
				}
			}
		}(client)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Kill node 0 and query node 1 for a fresh problem node 0 owns:
	// the survivor degrades to local computation, still answering
	// byte-identically, and the dead peer shows up unreachable.
	c.Nodes[0].Kill()
	fresh := node0Probs[1]
	ref, err := postFixpoint(solo.URL(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	got, err := postFixpoint(c.Nodes[1].URL(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("degraded body differs from solo reference")
	}
	if m := fetchMetrics(t, c.Nodes[1]); !strings.Contains(m, peerMetric(c.Nodes[0].Addr, "unreachable")) {
		t.Fatalf("survivor metrics lack an unreachable outcome against the dead node:\n%s", m)
	}
}
