// Package clustertest is the process-level cluster harness: it builds
// the real cmd/serve and cmd/sweep binaries once per test run, boots
// fleets of serve daemons joined into a consistent-hash ring, runs
// sharded sweeps against shared stores, and kills any of them
// mid-flight — the layer where the repository's byte-identity and
// crash-recovery contracts are exercised end to end through real
// processes, real sockets, and real signals rather than in-process
// test servers.
//
// Cluster bootstrap mirrors what an operator does: every node starts
// solo on a kernel-assigned port (-addr 127.0.0.1:0) with an empty
// config file, the harness collects the bound addresses from the
// startup log lines, writes the full member list into each node's
// config, and SIGHUPs the fleet — the reload path cmd/serve documents
// for exactly this purpose.
//
// Every process's output is captured for log-watching assertions and,
// when the CLUSTERTEST_LOG_DIR environment variable names a
// directory, mirrored to one file per process so CI can attach the
// fleet's logs to a failing run.
package clustertest

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"
)

// LogDirEnv names the environment variable that, when set to a
// directory, receives one mirrored log file per harness-managed
// process (CI uploads it as a failure artifact).
const LogDirEnv = "CLUSTERTEST_LOG_DIR"

// DefaultWait bounds every harness wait: process startup, log-line
// appearance, graceful stops. Generous because CI machines stall;
// tests that outlive it have genuinely hung.
const DefaultWait = 60 * time.Second

// Binaries holds the compiled real binaries the harness drives.
type Binaries struct {
	// Serve is the path of the compiled cmd/serve binary.
	Serve string
	// Sweep is the path of the compiled cmd/sweep binary.
	Sweep string
}

// Build compiles cmd/serve and cmd/sweep into dir and returns their
// paths. Binaries are built by import path, so the caller's working
// directory only needs to be anywhere inside the module.
func Build(dir string) (*Binaries, error) {
	b := &Binaries{
		Serve: filepath.Join(dir, "serve"),
		Sweep: filepath.Join(dir, "sweep"),
	}
	for pkg, out := range map[string]string{
		"repro/cmd/serve": b.Serve,
		"repro/cmd/sweep": b.Sweep,
	} {
		cmd := exec.Command("go", "build", "-o", out, pkg)
		if msg, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("clustertest: go build %s: %v\n%s", pkg, err, msg)
		}
	}
	return b, nil
}

// logWatcher tees a process's output into an in-memory buffer for
// waitFor assertions and, when LogDirEnv is set, into a per-process
// log file for CI artifacts.
type logWatcher struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	file *os.File // nil when LogDirEnv is unset
}

// newLogWatcher opens the optional artifact file for a process name.
// Artifact failures are swallowed: losing a CI log must never fail the
// test it was recording.
func newLogWatcher(name string) *logWatcher {
	w := &logWatcher{}
	if dir := os.Getenv(LogDirEnv); dir != "" {
		safe := strings.NewReplacer("/", "_", " ", "_").Replace(name)
		if err := os.MkdirAll(dir, 0o755); err == nil {
			if f, err := os.Create(filepath.Join(dir, safe+".log")); err == nil {
				w.file = f
			}
		}
	}
	return w
}

// Write appends to the buffer and the artifact file.
func (w *logWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if w.file != nil {
		_, _ = w.file.Write(p)
	}
	return len(p), nil
}

// text snapshots the captured output.
func (w *logWatcher) text() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// waitFor polls until substr appears in the captured output.
func (w *logWatcher) waitFor(substr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if strings.Contains(w.text(), substr) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("clustertest: %q never appeared in log:\n%s", substr, w.text())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// close releases the artifact file.
func (w *logWatcher) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.file != nil {
		_ = w.file.Close()
		w.file = nil
	}
}

// Proc is one harness-managed child process with captured output.
type Proc struct {
	// Name labels the process in log artifacts.
	Name string

	cmd    *exec.Cmd
	stdout bytes.Buffer
	log    *logWatcher
	waitCh chan error

	mu      sync.Mutex
	waitErr error
	waited  bool
}

// startProc launches bin with args, teeing stderr into a watcher and
// collecting stdout separately (sweep reports go to stdout).
func startProc(name, bin string, args ...string) (*Proc, error) {
	p := &Proc{Name: name, log: newLogWatcher(name)}
	p.cmd = exec.Command(bin, args...)
	p.cmd.Stdout = &p.stdout
	p.cmd.Stderr = p.log
	if err := p.cmd.Start(); err != nil {
		p.log.close()
		return nil, fmt.Errorf("clustertest: start %s: %w", name, err)
	}
	p.waitCh = make(chan error, 1)
	go func() { p.waitCh <- p.cmd.Wait() }()
	return p, nil
}

// Wait blocks until the process exits and returns its exit error.
// Safe to call more than once.
func (p *Proc) Wait() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.waited {
		p.waitErr = <-p.waitCh
		p.waited = true
		p.log.close()
	}
	return p.waitErr
}

// Kill delivers SIGKILL and reaps the process — the chaos primitive:
// no grace, no cleanup, exactly what a crashed worker looks like.
func (p *Proc) Kill() {
	_ = p.cmd.Process.Signal(syscall.SIGKILL)
	_ = p.Wait()
}

// Signal forwards a signal to the live process.
func (p *Proc) Signal(sig os.Signal) error {
	return p.cmd.Process.Signal(sig)
}

// Stdout snapshots what the process wrote to stdout so far; after Wait
// it is the complete output.
func (p *Proc) Stdout() []byte { return p.stdout.Bytes() }

// Log snapshots the process's captured stderr.
func (p *Proc) Log() string { return p.log.text() }

// WaitLog blocks until substr appears on the process's stderr.
func (p *Proc) WaitLog(substr string) error {
	return p.log.waitFor(substr, DefaultWait)
}

// Node is one live cmd/serve process: a Proc plus its bound address,
// store directory, and reloadable config file.
type Node struct {
	*Proc
	// Addr is the node's bound listen address (host:port) — also its
	// advertised member name in the cluster.
	Addr string
	// StoreDir is the node's persistent store directory.
	StoreDir string
	// ConfigPath is the node's flags file, rewritten and SIGHUPed to
	// reconfigure the live daemon.
	ConfigPath string
}

// listeningRE extracts the bound address from the serve startup line.
var listeningRE = regexp.MustCompile(`listening on ([^\s]+)`)

// StartNode boots one cmd/serve process on a kernel-assigned loopback
// port with a store under dir, waits for it to come up, and returns it
// with the bound address resolved. extra appends raw serve flags.
func (b *Binaries) StartNode(name, dir string, extra ...string) (*Node, error) {
	storeDir := filepath.Join(dir, "store")
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		return nil, err
	}
	cfg := filepath.Join(dir, "serve.conf")
	if err := os.WriteFile(cfg, []byte("# solo until the fleet addresses are known\n"), 0o644); err != nil {
		return nil, err
	}
	args := append([]string{"-addr", "127.0.0.1:0", "-store", storeDir, "-config", cfg}, extra...)
	p, err := startProc(name, b.Serve, args...)
	if err != nil {
		return nil, err
	}
	n := &Node{Proc: p, StoreDir: storeDir, ConfigPath: cfg}
	if err := p.WaitLog("listening on "); err != nil {
		n.Kill()
		return nil, err
	}
	m := listeningRE.FindStringSubmatch(p.Log())
	if m == nil {
		n.Kill()
		return nil, fmt.Errorf("clustertest: %s: cannot parse listen address from log:\n%s", name, p.Log())
	}
	n.Addr = m[1]
	return n, nil
}

// URL is the node's HTTP base URL.
func (n *Node) URL() string { return "http://" + n.Addr }

// Reconfigure rewrites the node's config file to the given keys (one
// "key value" line each) and SIGHUPs the daemon, waiting for the
// reload to land.
func (n *Node) Reconfigure(lines ...string) error {
	body := strings.Join(lines, "\n") + "\n"
	if err := os.WriteFile(n.ConfigPath, []byte(body), 0o644); err != nil {
		return err
	}
	if err := n.Signal(syscall.SIGHUP); err != nil {
		return err
	}
	return n.WaitLog("reloaded")
}

// Cluster is a fleet of serve nodes joined into one ring.
type Cluster struct {
	// Nodes holds the fleet, index-aligned with the member list.
	Nodes []*Node
}

// StartCluster boots n store-backed serve nodes under dir and joins
// them into one ring via the documented bootstrap: start solo on :0,
// collect the bound addresses, write the full member list into every
// node's config, SIGHUP. name prefixes the per-process log artifacts.
func (b *Binaries) StartCluster(name, dir string, n int) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		node, err := b.StartNode(fmt.Sprintf("%s-node%d", name, i), filepath.Join(dir, fmt.Sprintf("node%d", i)))
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
	}
	members := strings.Join(c.Members(), ",")
	for _, node := range c.Nodes {
		err := node.Reconfigure(
			"peers "+members,
			"advertise "+node.Addr,
			"peer-timeout 2s",
		)
		if err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// Members lists the fleet's advertised addresses in node order.
func (c *Cluster) Members() []string {
	members := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		members[i] = n.Addr
	}
	return members
}

// Stop SIGKILLs every node. Harness teardown only — chaos tests kill
// specific nodes themselves, mid-flight.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Kill()
	}
}

// RunSweep runs the sweep binary to completion and returns its report
// (stdout). The stderr log is returned too for checkpoint-hit
// assertions; a non-zero exit is an error carrying that log.
func (b *Binaries) RunSweep(name string, args ...string) (report, log []byte, err error) {
	p, err := startProc(name, b.Sweep, args...)
	if err != nil {
		return nil, nil, err
	}
	werr := p.Wait()
	if werr != nil {
		return nil, nil, fmt.Errorf("clustertest: sweep %s: %v\n%s", name, werr, p.Log())
	}
	return p.Stdout(), []byte(p.Log()), nil
}

// StartSweep launches a sweep process without waiting — the chaos
// tests' handle for killing a sharded worker mid-run.
func (b *Binaries) StartSweep(name string, args ...string) (*Proc, error) {
	return startProc(name, b.Sweep, args...)
}
