package clustertest

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// chaosGrid is slow enough that a sharded worker reliably survives
// until its first checkpoint and fast enough for CI — the same grid
// the sweep package's single-process kill/resume test uses.
var chaosGrid = []string{"-delta", "2:4", "-k", "2:2", "-max-states", "60000", "-max-steps", "3", "-workers", "1"}

// TestChaosShardedSweepSurvivesKill is the cluster chaos acceptance
// test: three sharded sweep workers fill one shared store, one is
// SIGKILLed mid-run, a survivor re-runs the dead member's shard
// (ownership is deterministic — any process can), and the merged
// store then answers a full sweep entirely from checkpoints,
// byte-identical to a single-process cold sweep that was never
// interrupted.
func TestChaosShardedSweepSurvivesKill(t *testing.T) {
	b := testBinaries(t)
	const shards = 3

	reference, _, err := b.RunSweep("chaos-reference", append(chaosGrid, "-store", t.TempDir())...)
	if err != nil {
		t.Fatal(err)
	}

	shared := t.TempDir()
	shardArgs := func(i int) []string {
		return append(chaosGrid, "-store", shared, "-shard", fmt.Sprintf("%d/%d", i, shards))
	}
	procs := make([]*Proc, shards)
	for i := range procs {
		p, err := b.StartSweep(fmt.Sprintf("chaos-shard%d", i), shardArgs(i)...)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}

	// SIGKILL shard 0 as soon as the first checkpoint lands anywhere,
	// so the store is mid-sweep: some records committed, most missing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		matches, _ := filepath.Glob(filepath.Join(shared, "objects", "*", "*.traj"))
		if len(matches) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	procs[0].Kill()
	t.Logf("shard 0 killed mid-run: %v", procs[0].Wait() != nil)
	for i, p := range procs[1:] {
		if err := p.Wait(); err != nil {
			t.Fatalf("surviving shard %d failed: %v\n%s", i+1, err, p.Log())
		}
	}

	// Resume the victim's shard on a fresh process.
	if _, _, err := b.RunSweep("chaos-resume", shardArgs(0)...); err != nil {
		t.Fatal(err)
	}

	report, log, err := b.RunSweep("chaos-final", append(chaosGrid, "-store", shared, "-v")...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(report, reference) {
		t.Fatalf("post-chaos report differs from uninterrupted reference:\n%s\nvs\n%s", report, reference)
	}
	// TSV: one header line, then one row per task — and every task must
	// have been served from a committed checkpoint.
	rows := bytes.Count(bytes.TrimSuffix(report, []byte("\n")), []byte("\n"))
	if hits := bytes.Count(log, []byte("checkpoint hit")); hits != rows {
		t.Fatalf("final sweep had %d checkpoint hits, want %d:\n%s", hits, rows, log)
	}
}
