package mathx

import (
	"math/big"
	"testing"
)

func TestLogStar(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4}, {65537, 5},
	}
	for _, c := range cases {
		if got := LogStar(c.x); got != c.want {
			t.Errorf("LogStar(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLogStarBigMatchesFloat(t *testing.T) {
	for _, x := range []int64{1, 2, 3, 16, 17, 65536, 1 << 40} {
		want := LogStar(float64(x))
		if got := LogStarBig(big.NewInt(x)); got != want {
			t.Errorf("LogStarBig(%d) = %d, want %d", x, got, want)
		}
	}
	// 2^(2^20) has log* = log*(2^20) + 1 = (log*(20)+1) + 1.
	huge := new(big.Int).Lsh(big.NewInt(1), 1<<20)
	want := LogStar(float64(uint(1)<<20)) + 1
	if got := LogStarBig(huge); got != want {
		t.Errorf("LogStarBig(2^2^20) = %d, want %d", got, want)
	}
}

func TestTower(t *testing.T) {
	wants := []int64{1, 2, 4, 16, 65536}
	for h, w := range wants {
		if got := Tower(h); got.Int64() != w {
			t.Errorf("Tower(%d) = %v, want %d", h, got, w)
		}
	}
	if Tower(5).BitLen() != 65537 {
		t.Errorf("Tower(5) bit length = %d, want 65537", Tower(5).BitLen())
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{4, 2, 6}, {6, 3, 20}, {10, 0, 1}, {10, 10, 1}, {5, 7, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got, ok := Binomial(c.n, c.k)
		if !ok || got != c.want {
			t.Errorf("Binomial(%d,%d) = %d,%v want %d", c.n, c.k, got, ok, c.want)
		}
	}
	if _, ok := Binomial(100, 50); ok {
		t.Error("Binomial(100,50) should overflow int64")
	}
}

func TestSuperweakNext(t *testing.T) {
	// k=2: 2^(2^10) = 2^1024.
	got := SuperweakNext(2)
	if got.BitLen() != 1025 {
		t.Errorf("SuperweakNext(2) bit length = %d, want 1025", got.BitLen())
	}
}

func TestSuperweakSteps(t *testing.T) {
	prev := -1
	for h := 0; h <= 60; h++ {
		s := SuperweakSteps(h)
		if s < prev {
			t.Errorf("SuperweakSteps not monotone at height %d: %d < %d", h, s, prev)
		}
		prev = s
	}
	// k_1 = Tower(6) requires log Δ ≥ Tower(6), i.e. tower height ≥ 7.
	if s := SuperweakSteps(6); s != 0 {
		t.Errorf("SuperweakSteps(6) = %d, want 0", s)
	}
	if s := SuperweakSteps(7); s != 1 {
		t.Errorf("SuperweakSteps(7) = %d, want 1", s)
	}
	// Asymptotic ratio 1/5 against log* = height.
	if s := SuperweakSteps(52); s != 10 {
		t.Errorf("SuperweakSteps(52) = %d, want 10", s)
	}
}

func TestTowerHeight(t *testing.T) {
	if h := TowerHeight(big.NewInt(65536)); h != 4 {
		t.Errorf("TowerHeight(65536) = %d, want 4", h)
	}
}

func TestMultisetCount(t *testing.T) {
	got, ok := MultisetCount(3, 2)
	if !ok || got != 6 {
		t.Errorf("MultisetCount(3,2) = %d,%v want 6", got, ok)
	}
}
