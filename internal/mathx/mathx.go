// Package mathx provides the small number-theoretic helpers the paper's
// analysis uses: iterated logarithms (log*), power towers, binomial
// coefficients, and the superweak-coloring growth sequence from Section 5.2
// of Brandt (PODC 2019).
package mathx

import (
	"math"
	"math/big"
)

// LogStar returns log*₂(x): the number of times log₂ must be iterated,
// starting from x, before the result is at most 1. LogStar(x) = 0 for x ≤ 1.
func LogStar(x float64) int {
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
	}
	return n
}

// LogStarBig is LogStar for arbitrarily large integers. Values that exceed
// float64 range are first reduced by exact bit-length steps (log₂ of an
// integer is within 1 of its bit length), which only affects the count by
// the usual ±O(1) slack inherent in log*.
func LogStarBig(x *big.Int) int {
	n := 0
	v := new(big.Int).Set(x)
	one := big.NewInt(1)
	for v.Cmp(one) > 0 {
		if v.IsInt64() {
			return n + LogStar(float64(v.Int64()))
		}
		// log₂(v) ∈ [bitlen-1, bitlen); use bitlen-1 as the exact floor.
		v = big.NewInt(int64(v.BitLen() - 1))
		n++
	}
	return n
}

// Tower returns the power tower 2↑↑h as a big integer: Tower(0)=1,
// Tower(h)=2^Tower(h-1). It panics for h large enough that the result would
// not fit in memory (h ≥ 6 yields a number with more than 2^64 bits).
func Tower(h int) *big.Int {
	if h < 0 {
		panic("mathx: negative tower height")
	}
	if h >= 6 {
		panic("mathx: tower too large to materialize")
	}
	v := big.NewInt(1)
	for i := 0; i < h; i++ {
		e := int(v.Int64())
		v = new(big.Int).Lsh(big.NewInt(1), uint(e))
	}
	return v
}

// Binomial returns C(n, k) as an int64, or (0, false) on overflow.
func Binomial(n, k int) (int64, bool) {
	if k < 0 || k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	r := big.NewInt(1)
	r.Binomial(int64(n), int64(k))
	if !r.IsInt64() {
		return 0, false
	}
	return r.Int64(), true
}

// BinomialBig returns C(n, k) as a big integer.
func BinomialBig(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Pow2 returns 2^e as a big integer.
func Pow2(e int) *big.Int {
	if e < 0 {
		panic("mathx: negative exponent")
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(e))
}

// SuperweakNext returns the parameter k' = 2^(2^(5k)) from Lemma 3/4 of the
// paper: one speedup step turns a superweak k-coloring algorithm into a
// superweak k'-coloring algorithm running one round faster.
//
// The result is returned as a big integer; it is astronomically large
// already for k = 2 (2^(2^10) = 2^1024).
func SuperweakNext(k int) *big.Int {
	inner := new(big.Int).Lsh(big.NewInt(1), uint(5*k)) // 2^(5k)
	if !inner.IsInt64() || inner.Int64() > 1<<30 {
		// 2^(2^(5k)) has 2^(5k) bits; beyond ~2^30 bits we cannot (and need
		// not) materialize it. Callers use SuperweakSeqBitLens instead.
		panic("mathx: superweak parameter too large to materialize")
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(inner.Int64()))
}

// SuperweakSteps returns the number of speedup steps of the Section 5.2
// sequence k₀ = 2, k_{i+1} = F⁵(k_i) with F(x) = 2^x, that the Theorem 4
// argument supports on graphs with Δ = Tower(towerHeight) (i.e. the
// largest i with k_i ≤ log₂ Δ, the threshold at which the final 0-round
// impossibility argument stops applying).
//
// The parameter sequence lives in power-tower territory (k₁ = F⁵(2) is a
// tower of height 5), so Δ is given by its tower height rather than its
// value: k_i = Tower(5i + 1), hence k_i ≤ log₂ Δ = Tower(towerHeight − 1)
// iff 5i + 1 ≤ towerHeight − 1. Because log*(Tower(h)) = h, the result is
// Θ(log* Δ) with ratio converging to 1/5 — the quantitative content of
// Theorem 4's lower bound.
func SuperweakSteps(towerHeight int) int {
	if towerHeight < 2 {
		return 0
	}
	steps := (towerHeight - 2) / 5
	if steps < 0 {
		return 0
	}
	return steps
}

// TowerHeight returns log*₂-style tower height: the largest h with
// Tower(h) ≤ x, i.e. the number of times log₂ can be applied before
// dropping to ≤ 1 — identical to LogStarBig.
func TowerHeight(x *big.Int) int {
	return LogStarBig(x)
}

// MultisetCount returns the number of multisets of size k over an alphabet
// of size n, i.e. C(n+k-1, k), or (0, false) on int64 overflow.
func MultisetCount(n, k int) (int64, bool) {
	return Binomial(n+k-1, k)
}
