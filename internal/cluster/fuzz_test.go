package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// stubTransport answers every request in-process with a fixed status
// and body — no sockets, so the fuzzer spends its budget on decoding,
// not networking.
type stubTransport struct {
	status int
	body   []byte
}

// RoundTrip returns the canned response.
func (s stubTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: s.status,
		Body:       io.NopCloser(bytes.NewReader(s.body)),
		Header:     make(http.Header),
		Request:    r,
	}, nil
}

// FuzzPeerRecordResponse drives arbitrary peer responses — corrupt,
// truncated, wrong-kind, wrong-status, oversized — through the peer
// client and the receiving-side record decoders. The invariants: never
// panic, and never accept bytes whose frame does not validate down to
// the SHA-256 trailer and the embedded canonical-input guard. This is
// the byzantine-peer defense: everything after the TCP read is
// attacker-controlled input.
func FuzzPeerRecordResponse(f *testing.F) {
	p := core.MustParse("node:\n0^2 1\nedge:\n0 0\n0 1\n")
	par := store.TrajectoryParams{MaxSteps: 2, MaxStates: 8000}

	// Seed with a genuine frame and close mutations of it.
	st, err := store.Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	if err := st.PutRendered(p, par, []byte("seed-body\n")); err != nil {
		f.Fatal(err)
	}
	valid, ok, err := st.RawRecord(store.KindRendered, store.RenderedRecordKey(p, par))
	if err != nil || !ok {
		f.Fatal("seed record missing")
	}
	f.Add(200, valid)
	f.Add(200, valid[:len(valid)-3])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(200, flipped)
	stepFrame, _, _ := st.RawRecord(store.KindRendered, store.RenderedRecordKey(p, par))
	f.Add(200, stepFrame)
	f.Add(404, []byte(nil))
	f.Add(500, []byte("boom"))
	f.Add(200, []byte("PODC19RS garbage"))

	f.Fuzz(func(t *testing.T, status int, data []byte) {
		c := NewClient(time.Second)
		c.hc.Transport = stubTransport{status: status, body: data}
		frame, ok, err := c.FetchRecord(context.Background(), "stub:0", store.KindRendered, store.RenderedRecordKey(p, par))
		if err != nil || !ok {
			return // degraded to a miss or an error before decoding — fine
		}
		body, ok, derr := store.DecodeRenderedRecord(frame, p, par)
		if derr != nil || !ok {
			return // frame rejected — degrade to miss, the required outcome
		}
		// The decoder accepted: the frame must be exactly a well-formed
		// record whose trailer checksums its content. Recompute the
		// trailer independently of the decoder.
		if len(frame) < sha256.Size {
			t.Fatalf("accepted frame shorter than a checksum (%d bytes)", len(frame))
		}
		sum := sha256.Sum256(frame[:len(frame)-sha256.Size])
		if !bytes.Equal(sum[:], frame[len(frame)-sha256.Size:]) {
			t.Fatalf("accepted frame with bad checksum trailer")
		}
		// An accepted frame that differs from the seed can only be an
		// honestly checksummed, guard-matching record carrying other
		// body bytes — indistinguishable from a peer that committed a
		// different result for the same key, which the determinism
		// contract excludes at the source. The checksum and guard
		// invariants above are therefore the complete client obligation.
		_ = body
	})
}
