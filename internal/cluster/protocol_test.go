package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// protoProblem is a cheap parseable problem for wire tests.
func protoProblem(t *testing.T) *core.Problem {
	t.Helper()
	return core.MustParse("node:\n0^2 1\nedge:\n0 0\n0 1\n")
}

// protoServer builds a store with one rendered and one step record and
// mounts the peer routes over it, returning the test server and store.
func protoServer(t *testing.T) (*httptest.Server, *store.Store, *core.Problem, store.TrajectoryParams) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := protoProblem(t)
	par := store.TrajectoryParams{MaxSteps: 2, MaxStates: 8000}
	if err := st.PutRendered(p, par, []byte("rendered-response\n")); err != nil {
		t.Fatal(err)
	}
	if err := st.PutStep(p, p, par.MaxStates); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	RegisterPeerRoutes(mux, RingInfo{Self: "self:1", Members: []string{"other:1", "self:1"}, VNodes: DefaultVNodes}, Sources(st, nil))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, st, p, par
}

// peerAddr strips the scheme from an httptest server URL, since peers
// are addressed host:port.
func peerAddr(srv *httptest.Server) string {
	return srv.Listener.Addr().String()
}

// TestPeerRecordRoundTrip: a fetched frame decodes to exactly the
// bytes the serving store holds, and misses are clean.
func TestPeerRecordRoundTrip(t *testing.T) {
	srv, st, p, par := protoServer(t)
	c := NewClient(2 * time.Second)
	ctx := context.Background()

	frame, ok, err := c.FetchRecord(ctx, peerAddr(srv), store.KindRendered, store.RenderedRecordKey(p, par))
	if err != nil || !ok {
		t.Fatalf("FetchRecord: ok=%v err=%v", ok, err)
	}
	body, ok, err := store.DecodeRenderedRecord(frame, p, par)
	if err != nil || !ok {
		t.Fatalf("DecodeRenderedRecord: ok=%v err=%v", ok, err)
	}
	if string(body) != "rendered-response\n" {
		t.Fatalf("body = %q", body)
	}
	localFrame, _, _ := st.RawRecord(store.KindRendered, store.RenderedRecordKey(p, par))
	if !bytes.Equal(frame, localFrame) {
		t.Fatal("wire frame differs from the store's frame")
	}

	// Step record through the same wire.
	frame, ok, err = c.FetchRecord(ctx, peerAddr(srv), store.KindStep, store.StepRecordKey(p, par.MaxStates))
	if err != nil || !ok {
		t.Fatalf("step FetchRecord: ok=%v err=%v", ok, err)
	}
	if _, ok, err := store.DecodeStepRecord(frame, p, par.MaxStates); err != nil || !ok {
		t.Fatalf("step decode: ok=%v err=%v", ok, err)
	}

	// Miss: same key, absent kind.
	if _, ok, err := c.FetchRecord(ctx, peerAddr(srv), store.KindTrajectory, store.TrajectoryRecordKey(p, par)); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
}

// TestPeerRecordBadRequests: malformed keys and kinds are 400s, which
// the client surfaces as errors, not misses.
func TestPeerRecordBadRequests(t *testing.T) {
	srv, _, _, _ := protoServer(t)
	for _, q := range []string{
		"key=zz&kind=step",
		"key=abcd&kind=step",
		"key=" + (protoKeyHex) + "&kind=nope",
		"kind=step",
	} {
		resp, err := http.Get(srv.URL + "/v1/peer/record?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// protoKeyHex is a syntactically valid 64-hex key for bad-request tests.
const protoKeyHex = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

// TestPeerServerRefusesCorruptLocalRecord: a record damaged on the
// serving node's own disk is answered as a miss, never shipped.
func TestPeerServerRefusesCorruptLocalRecord(t *testing.T) {
	srv, st, p, par := protoServer(t)
	matches, err := filepath.Glob(filepath.Join(st.Root(), "objects", "*", "*.rendered"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("rendered records on disk: %v (%v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewClient(2 * time.Second)
	if _, ok, err := c.FetchRecord(context.Background(), peerAddr(srv), store.KindRendered, store.RenderedRecordKey(p, par)); ok || err != nil {
		t.Fatalf("corrupt local record served: ok=%v err=%v", ok, err)
	}
}

// TestPeerRing: the membership endpoint round-trips the configured
// RingInfo.
func TestPeerRing(t *testing.T) {
	srv, _, _, _ := protoServer(t)
	info, err := NewClient(2*time.Second).Ring(context.Background(), peerAddr(srv))
	if err != nil {
		t.Fatal(err)
	}
	if info.Self != "self:1" || len(info.Members) != 2 || info.VNodes != DefaultVNodes {
		t.Fatalf("RingInfo = %+v", info)
	}
}

// TestFetchRecordDeadPeer: a connection failure is an error (so the
// caller can count the peer down), not a miss and not a panic.
func TestFetchRecordDeadPeer(t *testing.T) {
	srv, _, p, par := protoServer(t)
	addr := peerAddr(srv)
	srv.Close()
	c := NewClient(500 * time.Millisecond)
	if _, ok, err := c.FetchRecord(context.Background(), addr, store.KindRendered, store.RenderedRecordKey(p, par)); ok || err == nil {
		t.Fatalf("dead peer: ok=%v err=%v", ok, err)
	}
}

// TestFetchRecordServerError: a non-200/404 status is an error.
func TestFetchRecordServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewClient(time.Second)
	p := protoProblem(t)
	par := store.TrajectoryParams{MaxSteps: 2, MaxStates: 8000}
	if _, ok, err := c.FetchRecord(context.Background(), peerAddr(srv), store.KindRendered, store.RenderedRecordKey(p, par)); ok || err == nil {
		t.Fatalf("500 response: ok=%v err=%v", ok, err)
	}
}
