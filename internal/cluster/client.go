package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// DefaultPeerTimeout is the per-peer request budget used when a caller
// does not choose one. It bounds how long a warm lookup may wait on
// the network before degrading to local computation — small, because a
// peer hit is only worth having when it beats recomputing.
const DefaultPeerTimeout = 500 * time.Millisecond

// maxPeerRecordBytes caps how much of a peer's record response the
// client will read. Real records are at most a few megabytes of JSON;
// the cap keeps a byzantine peer from streaming unbounded garbage into
// memory before frame validation rejects it.
const maxPeerRecordBytes = 32 << 20

// Client fetches records and ring membership from peers over the peer
// protocol. A Client is safe for concurrent use and holds a shared
// connection pool; create one per process, not per lookup.
type Client struct {
	hc http.Client
}

// NewClient returns a peer-protocol client whose requests are bounded
// by timeout (<= 0 selects DefaultPeerTimeout). The timeout applies
// per request, on top of whatever context the caller passes.
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &Client{hc: http.Client{Timeout: timeout}}
}

// FetchRecord asks peer (a host:port address) for the framed record
// under (kind, key). It returns (frame, true, nil) on a hit and
// (nil, false, nil) on a clean miss (404). Every other outcome —
// connection failure, timeout, unexpected status, oversized response —
// is an error; the caller counts it against the peer and degrades to
// local computation. The returned frame is raw wire bytes: the caller
// MUST validate it with the store's Decode*Record functions before
// trusting a single byte.
func (c *Client) FetchRecord(ctx context.Context, peer string, kind store.Kind, key core.StableFingerprint) ([]byte, bool, error) {
	u := fmt.Sprintf("http://%s/v1/peer/record?key=%s&kind=%s", peer, key.String(), url.QueryEscape(kind.Ext()))
	body, status, err := c.get(ctx, u)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case http.StatusOK:
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("cluster: peer %s: unexpected status %d", peer, status)
	}
}

// Ring asks peer for its RingInfo — the membership it was configured
// with — for drift detection and harness conformance checks.
func (c *Client) Ring(ctx context.Context, peer string) (RingInfo, error) {
	body, status, err := c.get(ctx, fmt.Sprintf("http://%s/v1/peer/ring", peer))
	if err != nil {
		return RingInfo{}, err
	}
	if status != http.StatusOK {
		return RingInfo{}, fmt.Errorf("cluster: peer %s: unexpected status %d", peer, status)
	}
	var info RingInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return RingInfo{}, fmt.Errorf("cluster: peer %s: bad ring body: %w", peer, err)
	}
	return info, nil
}

// get performs one bounded GET and returns the (size-capped) body and
// status. The body is always drained so the connection can be reused.
func (c *Client) get(ctx context.Context, u string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerRecordBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(body) > maxPeerRecordBytes {
		return nil, 0, fmt.Errorf("cluster: response exceeds %d bytes", maxPeerRecordBytes)
	}
	return body, resp.StatusCode, nil
}
