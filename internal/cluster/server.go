package cluster

import (
	"encoding/hex"
	"encoding/json"
	"net/http"

	"repro/internal/core"
	"repro/internal/store"
)

// RecordSource serves complete framed record bytes by (kind, key) —
// the read surface the peer protocol exports. Both *store.Store and
// *store.PackReader satisfy it via their RawRecord methods. A source
// must only ever return frames that validate (the store side
// guarantees this); the client re-verifies regardless.
type RecordSource interface {
	// RawRecord returns the validated framed record under (kind, key),
	// ok=false when absent, and an error when the local copy exists but
	// cannot be trusted.
	RawRecord(kind store.Kind, key core.StableFingerprint) ([]byte, bool, error)
}

// Sources chains record sources into one, consulted in order until a
// source reports a hit. Errors (a corrupt local record) fall through
// to the next source: a damaged tier costs warmth, never availability.
// Nil entries are skipped, so callers can pass optional tiers
// unconditionally.
func Sources(srcs ...RecordSource) RecordSource {
	chain := make(sourceChain, 0, len(srcs))
	for _, s := range srcs {
		if s != nil {
			chain = append(chain, s)
		}
	}
	return chain
}

// sourceChain is the Sources implementation.
type sourceChain []RecordSource

// RawRecord consults each source in order, returning the first hit.
func (c sourceChain) RawRecord(kind store.Kind, key core.StableFingerprint) ([]byte, bool, error) {
	for _, s := range c {
		if frame, ok, err := s.RawRecord(kind, key); ok && err == nil {
			return frame, true, nil
		}
	}
	return nil, false, nil
}

// RingInfo is the GET /v1/peer/ring response body: the static
// membership a node was configured with. Peers exchange it to detect
// configuration drift — a fleet is only a consistent cache when every
// member derives ownership from the same list.
type RingInfo struct {
	// Self is the responding node's own member name (its -advertise
	// address).
	Self string `json:"self"`
	// Members is the full sorted member list of the node's ring.
	Members []string `json:"members"`
	// VNodes is the virtual-node count per member.
	VNodes int `json:"vnodes"`
}

// RegisterPeerRoutes mounts the peer protocol on mux:
//
//	GET /v1/peer/record?key=<64-hex>&kind=<step|traj|verdict|rendered>
//	GET /v1/peer/ring
//
// The record endpoint replies 200 with the complete framed record
// bytes (application/octet-stream) on a hit, 404 on a miss — including
// when the local copy exists but fails validation, so a node never
// ships bytes that were damaged on its own disk — and 400 for a
// malformed key or kind. The ring endpoint replies with info as JSON.
// The protocol is read-only by construction: peers exchange cache
// contents, never commands.
func RegisterPeerRoutes(mux *http.ServeMux, info RingInfo, src RecordSource) {
	mux.HandleFunc("GET /v1/peer/record", func(w http.ResponseWriter, r *http.Request) {
		key, kindOK := parseRecordQuery(r)
		kind, ok := store.KindByExt(r.URL.Query().Get("kind"))
		if !kindOK || !ok {
			http.Error(w, "bad key or kind", http.StatusBadRequest)
			return
		}
		frame, ok, err := src.RawRecord(kind, key)
		if err != nil || !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(frame)
	})
	mux.HandleFunc("GET /v1/peer/ring", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// RingInfo is a closed struct of strings and ints; marshaling
		// cannot fail.
		body, _ := json.Marshal(info)
		_, _ = w.Write(body)
	})
}

// parseRecordQuery extracts the record key from a peer request; ok is
// false unless the key is exactly 64 hex digits.
func parseRecordQuery(r *http.Request) (core.StableFingerprint, bool) {
	var key core.StableFingerprint
	raw := r.URL.Query().Get("key")
	if len(raw) != 2*len(key) {
		return key, false
	}
	if _, err := hex.Decode(key[:], []byte(raw)); err != nil {
		return key, false
	}
	return key, true
}
