// Package cluster turns a fleet of independent store-backed processes
// into one consistent warm cache, with no coordination service and no
// consensus: a consistent-hash ring over core.StableKey decides which
// member owns each record, a minimal HTTP peer protocol ships whole
// framed store records between members, and every transported byte is
// re-verified on receipt (frame checksum plus the payload's embedded
// canonical-input guard), so a dead, slow, or byzantine peer can only
// ever degrade a lookup to a cache miss — never fail a query or serve
// a wrong result.
//
// The ring is a pure function of a static member list: every process
// given the same list derives the same ownership for every key, in any
// join order, which is all the "membership protocol" the system needs.
// cmd/sweep uses the same ring (over synthetic shard-i members) to
// partition a grid across worker processes, and cmd/serve uses it to
// ask a key's owner before computing cold. Determinism does the job
// consensus would otherwise do: since any two members that compute the
// same key commit byte-identical records, stale or concurrent
// computation is harmless, and losing a member only loses warmth.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/core"
)

// DefaultVNodes is the virtual-node count per member used when a
// caller does not choose one. 64 points per member keeps the expected
// ownership imbalance across a handful of members within a few
// percent, at a few kilobytes of ring per member.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over stable record fingerprints:
// each member contributes vnodes points on a 64-bit circle, and a key
// is owned by the member of the first point at or clockwise after the
// key's position. A Ring is immutable after NewRing and safe for
// concurrent use.
//
// Ownership is a pure function of the (deduplicated, order-free)
// member list and the vnode count — every process with the same list
// computes the same owner for every key. Removing a member moves only
// the keys that member owned (its points vanish; every other key's
// first clockwise point is unchanged), the classic consistent-hashing
// rebalance bound.
type Ring struct {
	members []string
	vnodes  int
	points  []ringPoint // sorted by (hash, member)
}

// ringPoint is one virtual node: a position on the circle and the
// member it maps to.
type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds the ring for the given member list. Members are
// deduplicated — but duplicates are rejected rather than merged, since
// a duplicated entry in a -peers list is always a configuration
// mistake. vnodes <= 0 selects DefaultVNodes. The member list order is
// irrelevant: permutations yield identical rings.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
	}
	r := &Ring{
		members: sorted,
		vnodes:  vnodes,
		points:  make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for _, m := range sorted {
		for i := 0; i < vnodes; i++ {
			h := sha256.Sum256(fmt.Appendf(nil, "re-cluster-vnode|%s|%d", m, i))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(h[:8]), member: m})
		}
	}
	// The (hash, member) tiebreak keeps even the astronomically
	// unlikely hash collision deterministic across processes.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the ring's member list, sorted. The slice is shared;
// callers must not modify it.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member that owns key: the member of the first ring
// point at or clockwise after the key's 64-bit position, wrapping past
// the top of the circle to the first point.
func (r *Ring) Owner(key core.StableFingerprint) string {
	h := binary.BigEndian.Uint64(key[:8])
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0
	}
	return r.points[idx].member
}

// ShardMember names the i-th synthetic member of a sharded sweep
// (cmd/sweep -shard i/n). The name deliberately does not embed n:
// growing a fleet from n to n+1 shards adds one member to the ring
// instead of renaming all of them, so only the keys the new shard
// takes over move — the same rebalance bound real peers get.
func ShardMember(i int) string { return fmt.Sprintf("shard-%d", i) }

// ShardMembers returns the full synthetic member list of an n-way
// sharded sweep: ShardMember(0) through ShardMember(n-1).
func ShardMembers(n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = ShardMember(i)
	}
	return members
}
