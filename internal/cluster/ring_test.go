package cluster

import (
	"crypto/sha256"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// testKeys derives a deterministic spread of fingerprints.
func testKeys(n int) []core.StableFingerprint {
	keys := make([]core.StableFingerprint, n)
	for i := range keys {
		keys[i] = sha256.Sum256([]byte{byte(i), byte(i >> 8), 0xab})
	}
	return keys
}

// TestRingOwnershipIsJoinOrderFree: every permutation of the member
// list yields the identical owner for every key — the property that
// lets each node derive ownership locally with no membership protocol.
func TestRingOwnershipIsJoinOrderFree(t *testing.T) {
	members := []string{"10.0.0.1:8089", "10.0.0.2:8089", "10.0.0.3:8089", "10.0.0.4:8089", "10.0.0.5:8089"}
	ref, err := NewRing(members, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(200)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := append([]string(nil), members...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		r, err := NewRing(perm, DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d: Owner(%s) = %s, want %s", trial, k, got, want)
			}
		}
	}
}

// TestRingRemovalMovesOnlyRemovedKeys: dropping one member reassigns
// exactly the keys that member owned — every other key keeps its owner
// (the consistent-hashing rebalance bound).
func TestRingRemovalMovesOnlyRemovedKeys(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	full, err := NewRing(members, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(500)
	for drop := range members {
		remaining := append(append([]string(nil), members[:drop]...), members[drop+1:]...)
		reduced, err := NewRing(remaining, DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			before, after := full.Owner(k), reduced.Owner(k)
			if before == members[drop] {
				moved++
				if after == members[drop] {
					t.Fatalf("removed member %s still owns %s", members[drop], k)
				}
				continue
			}
			if after != before {
				t.Fatalf("dropping %s moved key %s from %s to %s", members[drop], k, before, after)
			}
		}
		if moved == 0 {
			t.Fatalf("member %s owned no test keys; test proves nothing", members[drop])
		}
	}
}

// TestRingBalance: with DefaultVNodes, no member of a small fleet owns
// a wildly disproportionate key share. A loose bound — the point is to
// catch a broken hash, not to certify variance.
func TestRingBalance(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r, err := NewRing(members, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.0f%% of keys: %v", m, share*100, counts)
		}
	}
}

// TestNewRingRejectsBadMembers: empty lists, empty names, and
// duplicates are configuration mistakes, not mergeable input.
func TestNewRingRejectsBadMembers(t *testing.T) {
	for _, members := range [][]string{
		nil,
		{},
		{"a:1", ""},
		{"a:1", "b:1", "a:1"},
	} {
		if _, err := NewRing(members, DefaultVNodes); err == nil {
			t.Errorf("NewRing(%v) accepted", members)
		}
	}
	r, err := NewRing([]string{"b:1", "a:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	if got := r.Members(); len(got) != 2 || got[0] != "a:1" || got[1] != "b:1" {
		t.Fatalf("Members() = %v", got)
	}
}

// TestShardMembersGrowOnly: shard member names do not embed the shard
// count, so growing a fleet from n to n+1 extends the member list
// instead of renaming it — keys only move to the new shard.
func TestShardMembersGrowOnly(t *testing.T) {
	three := ShardMembers(3)
	four := ShardMembers(4)
	for i, m := range three {
		if four[i] != m {
			t.Fatalf("ShardMembers(4)[%d] = %s, want %s", i, four[i], m)
		}
	}
	r3, err := NewRing(three, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(four, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(300) {
		if before, after := r3.Owner(k), r4.Owner(k); after != before && after != ShardMember(3) {
			t.Fatalf("growing 3→4 shards moved %s from %s to %s", k, before, after)
		}
	}
}
