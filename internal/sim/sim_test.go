package sim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/problems"
)

func ringWithInputs(t *testing.T, n int, seed int64) (*graph.Graph, Inputs) {
	t.Helper()
	g, err := graph.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ids, err := graph.UniqueIDs(g, 4*n, rng)
	if err != nil {
		t.Fatal(err)
	}
	o := graph.RandomOrientation(g, rng)
	return g, Inputs{IDs: ids, Orientation: &o}
}

func TestBuildViewDepth(t *testing.T) {
	g, in := ringWithInputs(t, 8, 1)
	for d := 0; d <= 3; d++ {
		v := BuildView(g, in, 0, d)
		if v.Depth() != d {
			t.Errorf("depth %d view reports %d", d, v.Depth())
		}
	}
}

func TestViewBuilderMatchesBuildView(t *testing.T) {
	g, in := ringWithInputs(t, 10, 2)
	b := NewViewBuilder(g, in)
	for v := 0; v < g.N(); v++ {
		for d := 0; d <= 3; d++ {
			if b.View(v, d).Key() != BuildView(g, in, v, d).Key() {
				t.Fatalf("builder view differs at node %d depth %d", v, d)
			}
		}
	}
}

func TestViewKeysDistinguishIDs(t *testing.T) {
	g, in := ringWithInputs(t, 8, 3)
	k1 := BuildView(g, in, 0, 2).Key()
	k2 := BuildView(g, in, 1, 2).Key()
	if k1 == k2 {
		t.Error("distinct nodes with unique ids share a view key")
	}
}

func TestOrderInvariantKeyIgnoresIDValues(t *testing.T) {
	g, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	idsA := []int{10, 20, 30, 40, 50, 60}
	idsB := []int{1, 3, 7, 8, 9, 11} // same relative order
	kA := BuildView(g, Inputs{IDs: idsA}, 2, 2).OrderInvariantKey()
	kB := BuildView(g, Inputs{IDs: idsB}, 2, 2).OrderInvariantKey()
	if kA != kB {
		t.Error("order-invariant keys differ for order-isomorphic id assignments")
	}
	idsC := []int{60, 20, 30, 40, 50, 10} // order changed
	kC := BuildView(g, Inputs{IDs: idsC}, 2, 2).OrderInvariantKey()
	if kA == kC {
		t.Error("order-invariant keys match despite different id order")
	}
}

func TestReturnPortHiddenAtHorizon(t *testing.T) {
	g, in := ringWithInputs(t, 6, 4)
	v := BuildView(g, in, 0, 0)
	for _, p := range v.Ports {
		if p.ReturnPort != -1 {
			t.Error("0-round view leaks the neighbor's return port")
		}
	}
	v1 := BuildView(g, in, 0, 1)
	for _, p := range v1.Ports {
		if p.ReturnPort == -1 {
			t.Error("1-round view misses the neighbor's return port")
		}
		for _, q := range p.Sub.Ports {
			if q.ReturnPort != -1 {
				t.Error("fringe of 1-round view leaks return ports")
			}
		}
	}
}

func TestRunAndVerify(t *testing.T) {
	g, in := ringWithInputs(t, 6, 5)
	// A constant algorithm: everyone outputs label 0 on both ports.
	alg := FuncAlgorithm{
		AlgName:  "constant",
		RoundsFn: func(n, delta int) int { return 0 },
		OutputsFn: func(view *View) ([]core.Label, error) {
			out := make([]core.Label, view.Degree)
			return out, nil
		},
	}
	p := core.MustParse("node:\nA A\nedge:\nA A")
	sol, err := Run(g, in, alg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, sol, p); err != nil {
		t.Errorf("constant solution rejected: %v", err)
	}
	// Against 2-coloring it must fail.
	if err := Verify(g, sol, problems.KColoring(2, 2)); err == nil {
		t.Error("constant output accepted as 2-coloring")
	}
}

func TestVerifyRejectsWrongDegree(t *testing.T) {
	g, err := graph.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	sol := &Solution{Labels: [][]core.Label{{0}, {0, 0}, {0}}}
	if err := Verify(g, sol, core.MustParse("node:\nA A\nedge:\nA A")); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestRunRejectsBadOutputLength(t *testing.T) {
	g, in := ringWithInputs(t, 5, 6)
	alg := FuncAlgorithm{
		AlgName:  "broken",
		RoundsFn: func(n, delta int) int { return 0 },
		OutputsFn: func(view *View) ([]core.Label, error) {
			return []core.Label{0}, nil // degree is 2
		},
	}
	if _, err := Run(g, in, alg); err == nil {
		t.Error("wrong output arity accepted")
	}
}
