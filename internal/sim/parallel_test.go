package sim_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
)

// solutionKey renders a solution canonically for byte-for-byte
// comparison across worker counts.
func solutionKey(sol *sim.Solution) string {
	return fmt.Sprintf("%v", sol.Labels)
}

// TestParallelRunMatchesSequential mirrors internal/core's
// parallel-vs-sequential cross-check for the simulator: on the catalog
// algorithms, sequential sim.Run and WithWorkers(k) for k in {1,2,4,8}
// must produce byte-identical solutions.
func TestParallelRunMatchesSequential(t *testing.T) {
	type testCase struct {
		name   string
		g      *graph.Graph
		in     sim.Inputs
		alg    sim.Algorithm
		verify *core.Problem
	}
	var cases []testCase

	// Cole–Vishkin ring 3-coloring on an oriented ring with unique ids.
	{
		rng := rand.New(rand.NewSource(11))
		g, err := graph.Ring(64)
		if err != nil {
			t.Fatal(err)
		}
		orient, err := algorithms.RingOrientation(g)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := graph.UniqueIDs(g, 4*g.N(), rng)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, testCase{
			name:   "ring-3-coloring",
			g:      g,
			in:     sim.Inputs{IDs: ids, Orientation: &orient},
			alg:    algorithms.RingThreeColoring{IDSpace: 4 * g.N()},
			verify: problems.KColoring(3, 2),
		})
	}

	// Odd-degree weak 2-coloring on a random 3-regular graph.
	{
		rng := rand.New(rand.NewSource(12))
		g, err := graph.RandomRegular(20, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := graph.UniqueIDs(g, 2*g.N(), rng)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, testCase{
			name:   "weak-2-coloring",
			g:      g,
			in:     sim.Inputs{IDs: ids},
			alg:    algorithms.WeakTwoColoring{IDSpace: 2 * g.N()},
			verify: problems.WeakTwoColoringPointer(3),
		})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := sim.Run(tc.g, tc.in, tc.alg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.Verify(tc.g, seq, tc.verify); err != nil {
				t.Fatalf("sequential solution invalid: %v", err)
			}
			want := solutionKey(seq)
			for _, workers := range []int{1, 2, 4, 8} {
				par, err := sim.Run(tc.g, tc.in, tc.alg, sim.WithWorkers(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := solutionKey(par); got != want {
					t.Fatalf("workers=%d: output diverged from sequential", workers)
				}
			}
		})
	}
}

// TestParallelRunDeterministicError: when the algorithm fails at
// several nodes, every worker count reports the same (lowest-node)
// error.
func TestParallelRunDeterministicError(t *testing.T) {
	g, err := graph.Ring(32)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("odd node")
	alg := sim.FuncAlgorithm{
		AlgName:  "fails-on-odd",
		RoundsFn: func(n, delta int) int { return 0 },
		OutputsFn: func(view *sim.View) ([]core.Label, error) {
			return nil, sentinel
		},
	}
	var want string
	for i, workers := range []int{1, 2, 4, 8} {
		_, err := sim.Run(g, sim.Inputs{}, alg, sim.WithWorkers(workers))
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error %v does not wrap the algorithm's", workers, err)
		}
		if i == 0 {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, err.Error(), want)
		}
	}
}
