// Package sim implements the port numbering / LOCAL model simulator used
// to validate algorithms and derived problems on concrete graphs.
//
// The best a node can do in t rounds is to gather its radius-t
// neighborhood — topology, port numbers, and round-0 inputs — and map it
// to outputs (Section 3 of the paper). The simulator therefore represents
// a t-round algorithm as a function from radius-t views to one output
// label per port, and executes it by building each node's view tree.
package sim

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// OrientDir is the orientation of an edge as seen from one endpoint.
type OrientDir int

// Orientation of an incident edge relative to the viewing node.
const (
	OrientNone OrientDir = iota // no orientation input given
	OrientOut                   // edge points away from the viewing node
	OrientIn                    // edge points toward the viewing node
)

// View is the radius-t view of a node: everything it can learn in t rounds
// of full-information communication. On graphs of girth ≥ 2t+2 this is
// literally the (labeled) radius-t subgraph; on general graphs it is the
// standard universal-cover unrolling, which is exactly the information a
// port-numbering algorithm can gather.
type View struct {
	Degree    int
	ID        int // unique identifier, 0 if none given
	NodeColor int // node color input, -1 if none given
	Ports     []PortView
}

// PortView is what a node sees across one of its ports.
type PortView struct {
	Oriented   OrientDir
	EdgeColor  int   // edge color input, -1 if none given
	ReturnPort int   // the neighbor's port leading back along this edge
	Sub        *View // neighbor's view of depth t−1; nil at depth 0
}

// Inputs bundles the optional symmetry-breaking inputs for a simulation.
type Inputs struct {
	IDs         []int
	Orientation *graph.Orientation
	EdgeColors  *graph.EdgeColoring
	NodeColors  *graph.NodeColoring
}

// ViewBuilder constructs radius-t views with memoization: the radius-d
// view of a node is a single shared object, so the view "tree" is built as
// a DAG with n·(t+1) distinct nodes instead of Δ^t — essential for
// simulating ω(1)-round algorithms. Views must be treated as read-only.
type ViewBuilder struct {
	g    *graph.Graph
	in   Inputs
	memo map[viewKey]*View
}

type viewKey struct {
	v, t int
}

// NewViewBuilder returns a memoizing view builder for a graph and inputs.
func NewViewBuilder(g *graph.Graph, in Inputs) *ViewBuilder {
	return &ViewBuilder{g: g, in: in, memo: make(map[viewKey]*View)}
}

// View returns the radius-t view of node v, shared across calls.
func (b *ViewBuilder) View(v, t int) *View {
	if cached, ok := b.memo[viewKey{v, t}]; ok {
		return cached
	}
	view := &View{
		Degree:    b.g.Degree(v),
		NodeColor: -1,
		Ports:     make([]PortView, b.g.Degree(v)),
	}
	// Insert before recursing is unnecessary (t strictly decreases), but
	// insert after to keep the invariant simple.
	if b.in.IDs != nil {
		view.ID = b.in.IDs[v]
	}
	if b.in.NodeColors != nil {
		view.NodeColor = b.in.NodeColors.Color[v]
	}
	for port := 0; port < b.g.Degree(v); port++ {
		to, edgeID, toPort := b.g.Neighbor(v, port)
		pv := PortView{EdgeColor: -1, ReturnPort: -1}
		if t > 0 {
			// The neighbor's port number for this edge is learned only
			// after one round of communication.
			pv.ReturnPort = toPort
		}
		if b.in.Orientation != nil {
			if b.in.Orientation.Toward[edgeID] == v {
				pv.Oriented = OrientIn
			} else {
				pv.Oriented = OrientOut
			}
		}
		if b.in.EdgeColors != nil {
			pv.EdgeColor = b.in.EdgeColors.Color[edgeID]
		}
		if t > 0 {
			pv.Sub = b.View(to, t-1)
		}
		view.Ports[port] = pv
	}
	b.memo[viewKey{v, t}] = view
	return view
}

// BuildView constructs the radius-t view of node v in g under the given
// inputs.
func BuildView(g *graph.Graph, in Inputs, v, t int) *View {
	view := &View{
		Degree:    g.Degree(v),
		NodeColor: -1,
		Ports:     make([]PortView, g.Degree(v)),
	}
	if in.IDs != nil {
		view.ID = in.IDs[v]
	}
	if in.NodeColors != nil {
		view.NodeColor = in.NodeColors.Color[v]
	}
	for port := 0; port < g.Degree(v); port++ {
		to, edgeID, toPort := g.Neighbor(v, port)
		pv := PortView{EdgeColor: -1, ReturnPort: -1}
		if t > 0 {
			// The neighbor's port number for this edge is learned only
			// after one round of communication.
			pv.ReturnPort = toPort
		}
		if in.Orientation != nil {
			if in.Orientation.Toward[edgeID] == v {
				pv.Oriented = OrientIn
			} else {
				pv.Oriented = OrientOut
			}
		}
		if in.EdgeColors != nil {
			pv.EdgeColor = in.EdgeColors.Color[edgeID]
		}
		if t > 0 {
			pv.Sub = BuildView(g, in, to, t-1)
		}
		view.Ports[port] = pv
	}
	return view
}

// Depth returns the radius of the view: 0 if no port carries a subview.
func (v *View) Depth() int {
	d := 0
	for _, p := range v.Ports {
		if p.Sub != nil {
			if sd := p.Sub.Depth() + 1; sd > d {
				d = sd
			}
		}
	}
	return d
}

// Key returns a canonical serialization of the view. Two nodes receive
// equal keys iff their views are indistinguishable to any deterministic
// port-numbering algorithm.
func (v *View) Key() string {
	var sb strings.Builder
	v.encode(&sb, func(id int) int { return id })
	return sb.String()
}

// OrderInvariantKey returns a serialization in which identifiers are
// replaced by their ranks within the view. Two nodes receive equal keys
// iff their views are indistinguishable to any deterministic
// order-invariant algorithm (Naor–Stockmeyer; Section 4.3 of the paper).
func (v *View) OrderInvariantKey() string {
	idSet := map[int]bool{}
	v.collectIDs(idSet)
	ids := make([]int, 0, len(idSet))
	for id := range idSet {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rank := make(map[int]int, len(ids))
	for i, id := range ids {
		rank[id] = i + 1
	}
	var sb strings.Builder
	v.encode(&sb, func(id int) int {
		if id == 0 {
			return 0
		}
		return rank[id]
	})
	return sb.String()
}

func (v *View) collectIDs(dst map[int]bool) {
	if v.ID != 0 {
		dst[v.ID] = true
	}
	for _, p := range v.Ports {
		if p.Sub != nil {
			p.Sub.collectIDs(dst)
		}
	}
}

func (v *View) encode(sb *strings.Builder, idMap func(int) int) {
	sb.WriteByte('[')
	sb.WriteString(strconv.Itoa(v.Degree))
	sb.WriteByte(';')
	sb.WriteString(strconv.Itoa(idMap(v.ID)))
	sb.WriteByte(';')
	sb.WriteString(strconv.Itoa(v.NodeColor))
	for _, p := range v.Ports {
		sb.WriteByte('(')
		sb.WriteString(strconv.Itoa(int(p.Oriented)))
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(p.EdgeColor))
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(p.ReturnPort))
		sb.WriteByte(',')
		if p.Sub != nil {
			p.Sub.encode(sb, idMap)
		} else {
			sb.WriteByte('_')
		}
		sb.WriteByte(')')
	}
	sb.WriteByte(']')
}
