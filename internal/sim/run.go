package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/par"
)

// Algorithm is a deterministic distributed algorithm in the port numbering
// model, presented in the normal form of Section 3: a running time and a
// function from radius-t views to one output label per port.
type Algorithm interface {
	// Name identifies the algorithm in logs and error messages.
	Name() string
	// Rounds returns the number of communication rounds the algorithm
	// needs on graphs with n nodes and maximum degree delta.
	Rounds(n, delta int) int
	// Outputs maps a node's radius-t view to one label per port; the
	// returned slice must have length view.Degree.
	Outputs(view *View) ([]core.Label, error)
}

// Solution holds per-node, per-port output labels: Labels[v][port].
type Solution struct {
	Labels [][]core.Label
}

// LabelAt returns the output at node v's port.
func (s *Solution) LabelAt(v, port int) core.Label { return s.Labels[v][port] }

// Run executes alg on g with the given inputs and returns the outputs. It
// builds each node's radius-t view and applies the algorithm's output
// function — the canonical normal form of a t-round algorithm.
//
// With WithWorkers the per-node output loop is parallelized: views are
// built once through the memoizing builder (which is not safe for
// concurrent use), then the algorithm's output function runs across a
// worker pool. Results are byte-identical for every worker count.
func Run(g *graph.Graph, in Inputs, alg Algorithm, opts ...Option) (*Solution, error) {
	o := buildOptions(opts)
	t := alg.Rounds(g.N(), g.MaxDegree())
	if t < 0 {
		return nil, fmt.Errorf("sim: algorithm %q reports negative round count %d", alg.Name(), t)
	}
	builder := NewViewBuilder(g, in)
	sol := &Solution{Labels: make([][]core.Label, g.N())}
	workers := par.WorkerCount(o.workers, g.N())
	if workers <= 1 {
		for v := 0; v < g.N(); v++ {
			out, err := runNode(g, builder.View(v, t), alg, v)
			if err != nil {
				return nil, err
			}
			sol.Labels[v] = out
		}
		return sol, nil
	}
	// The memoized view DAG is shared read-only across workers once all
	// views exist; building it sequentially is O(n·t·Δ) and cheap next
	// to the algorithms' output functions.
	views := make([]*View, g.N())
	for v := 0; v < g.N(); v++ {
		views[v] = builder.View(v, t)
	}
	errs := make([]error, g.N())
	par.RunIndexed(workers, g.N(), func(v int) {
		out, err := runNode(g, views[v], alg, v)
		if err != nil {
			errs[v] = err
			return
		}
		sol.Labels[v] = out
	})
	// First error in node order, so failures are deterministic too.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sol, nil
}

// runNode applies the algorithm's output function at one node and
// validates the output arity.
func runNode(g *graph.Graph, view *View, alg Algorithm, v int) ([]core.Label, error) {
	out, err := alg.Outputs(view)
	if err != nil {
		return nil, fmt.Errorf("sim: algorithm %q at node %d: %w", alg.Name(), v, err)
	}
	if len(out) != g.Degree(v) {
		return nil, fmt.Errorf("sim: algorithm %q at node %d: got %d outputs, want %d",
			alg.Name(), v, len(out), g.Degree(v))
	}
	return out, nil
}

// Verify checks a solution against a problem: every node's port multiset
// must be in the node constraint and both endpoints of every edge must
// form a configuration of the edge constraint. Nodes whose degree differs
// from the problem's Δ are rejected (the catalog problems are defined on
// Δ-regular graphs).
func Verify(g *graph.Graph, sol *Solution, p *core.Problem) error {
	if len(sol.Labels) != g.N() {
		return fmt.Errorf("sim: solution covers %d nodes, graph has %d", len(sol.Labels), g.N())
	}
	delta := p.Delta()
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != delta {
			return fmt.Errorf("sim: node %d has degree %d, problem defined for Δ=%d", v, g.Degree(v), delta)
		}
		cfg := core.NewConfig(sol.Labels[v]...)
		if !p.Node.Contains(cfg) {
			return fmt.Errorf("sim: node %d outputs %s, not in node constraint", v, cfg.String(p.Alpha))
		}
	}
	for id := 0; id < g.M(); id++ {
		u, v, portU, portV := g.EdgeEndpoints(id)
		cfg := core.NewConfig(sol.Labels[u][portU], sol.Labels[v][portV])
		if !p.Edge.Contains(cfg) {
			return fmt.Errorf("sim: edge (%d,%d) carries %s, not in edge constraint", u, v, cfg.String(p.Alpha))
		}
	}
	return nil
}

// FuncAlgorithm adapts a plain function to the Algorithm interface.
type FuncAlgorithm struct {
	AlgName   string
	RoundsFn  func(n, delta int) int
	OutputsFn func(view *View) ([]core.Label, error)
}

var _ Algorithm = FuncAlgorithm{}

// Name implements Algorithm.
func (f FuncAlgorithm) Name() string { return f.AlgName }

// Rounds implements Algorithm.
func (f FuncAlgorithm) Rounds(n, delta int) int { return f.RoundsFn(n, delta) }

// Outputs implements Algorithm.
func (f FuncAlgorithm) Outputs(view *View) ([]core.Label, error) { return f.OutputsFn(view) }
