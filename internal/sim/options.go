package sim

// runOptions carries tunables for Run.
type runOptions struct {
	workers int
}

// Option configures Run.
type Option func(*runOptions)

// WithWorkers sets the number of concurrent workers used by Run's
// per-node output loop. n <= 0 selects runtime.GOMAXPROCS(0), the
// default used when the option is absent is 1 (fully sequential, no
// goroutine overhead). Outputs are byte-identical for every worker
// count: each node's output slot and any error are keyed by node index,
// and the first error in node order wins.
func WithWorkers(n int) Option {
	return func(o *runOptions) { o.workers = n }
}

func buildOptions(opts []Option) runOptions {
	o := runOptions{workers: 1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}
