package service

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/store"
)

// FixpointRequest asks for the classified iterated-speedup trajectory
// of one problem, streamed step-by-step as NDJSON.
type FixpointRequest struct {
	// Problem is the input problem, in either text format.
	Problem string `json:"problem"`
	// MaxSteps bounds the iteration; 0 selects fixpoint.DefaultMaxSteps,
	// at most MaxRequestSteps.
	MaxSteps int `json:"max_steps,omitempty"`
	// MaxStates is the per-step core.WithMaxStates budget; 0 selects
	// the engine default. Both budgets are part of the cache identity.
	MaxStates int `json:"max_states,omitempty"`
}

// FixpointEntry is one NDJSON line of the trajectory stream: entry 0
// is the compressed input Π_0, entry i the i-th derived problem Π_i.
type FixpointEntry struct {
	// Index is the trajectory position.
	Index int `json:"index"`
	// Problem is the entry's rendering.
	Problem ProblemView `json:"problem"`
}

// FixpointClassification is the final NDJSON line of the stream.
type FixpointClassification struct {
	// Classification is the fixpoint.Kind string ("fixed point",
	// "cycle", "collapsed", "zero-round solvable", "budget exceeded").
	Classification string `json:"classification"`
	// Steps is the number of speedup applications performed.
	Steps int `json:"steps"`
	// CycleStart and CycleLen describe trajectory closure (fixed
	// points have CycleLen 1); both are 0 for other classifications.
	CycleStart int `json:"cycle_start"`
	CycleLen   int `json:"cycle_len"`
	// BudgetError carries the state-budget error message when the
	// classification is "budget exceeded" because the enumeration gave
	// up (empty when the step limit ran out instead).
	BudgetError string `json:"budget_error,omitempty"`
}

// renderedKey identifies one fully-rendered fixpoint response body:
// the exact raw problem text plus the effective budgets. Keying on the
// raw text rather than the parsed problem is what lets a memo hit skip
// parsing entirely — correct because parsing is deterministic, so the
// same text under the same budgets always renders the same body.
type renderedKey struct {
	problem   string
	maxSteps  int
	maxStates int
}

// maxRenderedMemo bounds the in-process rendered-body memo. On
// overflow the memo is cleared wholesale — an epoch eviction, crude
// but constant-time, and safe because every entry can be re-rendered
// from the record tiers below.
const maxRenderedMemo = 4096

// Fixpoint answers one fixpoint query, writing the NDJSON stream —
// one FixpointEntry line per trajectory entry, then one
// FixpointClassification line — through sink as lines finalize. A warm
// hit (rendered memo, rendered record, or stored trajectory — see
// FixpointBody) replays the complete body as a single chunk; a cold
// run streams each entry the moment the underlying driver appends it,
// and concurrent identical queries subscribe to the same run, so every
// client of a key receives byte-identical bytes.
func (e *Engine) Fixpoint(ctx context.Context, req FixpointRequest, sink func(line []byte) error) error {
	body, ok, err := e.FixpointBody(req)
	if err != nil {
		return err
	}
	if ok {
		return sink(body)
	}
	return e.fixpointCold(ctx, req, sink)
}

// fixpointCold is the computing half of Fixpoint, entered after
// FixpointBody reported a full warm miss (the HTTP handler calls the
// halves separately so a warm body can be served fully buffered with a
// Content-Length while a cold run streams).
func (e *Engine) fixpointCold(ctx context.Context, req FixpointRequest, sink func(line []byte) error) error {
	// FixpointBody validated and parsed the request already;
	// re-deriving the identity here is noise next to the computation.
	maxSteps := req.MaxSteps
	if maxSteps == 0 {
		maxSteps = fixpoint.DefaultMaxSteps
	}
	p, err := parseProblem(req.Problem)
	if err != nil {
		return err
	}
	params := store.TrajectoryParams{MaxSteps: maxSteps, MaxStates: req.MaxStates}
	rkey := renderedKey{problem: req.Problem, maxSteps: maxSteps, maxStates: req.MaxStates}
	key := fixpointFlightKey(p, params)
	_, err = e.inflight(ctx, key, sink, func(c *call) {
		c.finish(e.computeFixpoint(c, p, params, key, rkey))
	})
	return err
}

// FixpointBody returns the exact NDJSON response body for req when a
// warm tier can supply it without computing, in order of decreasing
// warmth: the in-process rendered memo (keyed by raw request text —
// a hit is one map lookup, no parsing), the rendered records of the
// pack and the store, the trajectory tiers (rendering the stored
// result and memoizing the body), and — for a clustered engine — the
// key's ring owner over the peer protocol, with the fetched record
// checksum-verified and backfilled locally. ok is false when only a
// cold computation can answer — the caller falls back to Fixpoint's
// streaming path. The returned body is shared and must not be
// modified. Because every tier stores bytes rendered by the same
// deterministic pipeline, a body served here is byte-identical to the
// cold stream for the same request.
func (e *Engine) FixpointBody(req FixpointRequest) ([]byte, bool, error) {
	maxSteps := req.MaxSteps
	if maxSteps == 0 {
		maxSteps = fixpoint.DefaultMaxSteps
	}
	if err := validateRequestBudgets(maxSteps, req.MaxStates); err != nil {
		return nil, false, err
	}
	rkey := renderedKey{problem: req.Problem, maxSteps: maxSteps, maxStates: req.MaxStates}
	e.renderedMu.RLock()
	body, ok := e.rendered[rkey]
	e.renderedMu.RUnlock()
	if ok {
		e.metrics.warmLookup("rendered", "hit")
		return body, true, nil
	}
	p, err := parseProblem(req.Problem)
	if err != nil {
		return nil, false, err
	}
	params := store.TrajectoryParams{MaxSteps: maxSteps, MaxStates: req.MaxStates}
	if body, ok := e.lookupRendered(p, params); ok {
		e.memoizeRendered(rkey, body)
		return body, true, nil
	}
	key := fixpointFlightKey(p, params)
	if res, ok := e.lookupTrajectory(key, p, params); ok {
		body = RenderFixpointNDJSON(res)
		e.memoizeRendered(rkey, body)
		return body, true, nil
	}
	// Every local tier missed: ask the key's ring owner before
	// computing cold (no-op for a solo engine). A peer-served body is
	// backfilled into the local record tiers and memoized like any
	// other warm hit.
	if body, ok := e.peerFixpoint(key, p, params); ok {
		e.memoizeRendered(rkey, body)
		return body, true, nil
	}
	return nil, false, nil
}

// fixpointFlightKey is the singleflight and memory-cache key of one
// fixpoint query: stable problem fingerprint plus both budgets.
func fixpointFlightKey(p *core.Problem, params store.TrajectoryParams) string {
	return fmt.Sprintf("fixpoint|%s|max_steps=%d|max_states=%d",
		core.StableKey(p), params.MaxSteps, params.MaxStates)
}

// lookupRendered consults the rendered-record tiers — the preloaded
// pack, then the persistent store — and folds both consults into one
// "rendered" warm-lookup outcome (at most one outcome per request for
// the tier, with "corrupt" reported if any consulted record failed
// validation). Failures of any kind degrade to a miss: the caller
// re-renders from the trajectory tiers or recomputes, never serves a
// damaged body.
func (e *Engine) lookupRendered(p *core.Problem, params store.TrajectoryParams) ([]byte, bool) {
	corrupt := false
	if e.pk != nil {
		body, ok, err := e.pk.GetRendered(p, params)
		if ok {
			e.metrics.warmLookup("rendered", "hit")
			return body, true
		}
		corrupt = corrupt || err != nil
	}
	if e.st != nil {
		body, ok, err := e.st.GetRendered(p, params)
		if ok {
			e.metrics.warmLookup("rendered", "hit")
			return body, true
		}
		corrupt = corrupt || err != nil
	}
	if corrupt {
		e.metrics.warmLookup("rendered", "corrupt")
	} else {
		e.metrics.warmLookup("rendered", "miss")
	}
	return nil, false
}

// memoizeRendered publishes a rendered body under its raw-text key.
func (e *Engine) memoizeRendered(k renderedKey, body []byte) {
	e.renderedMu.Lock()
	if len(e.rendered) >= maxRenderedMemo {
		clear(e.rendered)
	}
	e.rendered[k] = body
	e.renderedMu.Unlock()
}

// lookupTrajectory consults the warm tiers in order — the preloaded
// pack (when attached), then the persistent store or the in-process
// cache — and counts one outcome per tier consulted. Lookup failures
// of any kind degrade to a miss on the serve path; validation failures
// (checksum, truncation, version) additionally count as "corrupt" so
// operators can see a damaged store behind byte-identical responses.
func (e *Engine) lookupTrajectory(key string, p *core.Problem, params store.TrajectoryParams) (*fixpoint.Result, bool) {
	if e.pk != nil {
		res, ok, err := e.pk.GetTrajectory(p, params)
		e.metrics.warmLookup("pack", warmOutcome(ok, err))
		if ok {
			return res, true
		}
	}
	if e.st != nil {
		res, ok, err := e.st.GetTrajectory(p, params)
		e.metrics.warmLookup("trajectory", warmOutcome(ok, err))
		if err != nil || !ok {
			return nil, false
		}
		return res, true
	}
	e.mu.Lock()
	res, ok := e.trajCache[key]
	e.mu.Unlock()
	e.metrics.warmLookup("trajectory", warmOutcome(ok, nil))
	return res, ok
}

// computeFixpoint runs the driver under the admission gate, emitting
// each trajectory line as the driver appends the entry, and commits
// the classified trajectory plus its rendered body to the warm tiers
// on success. The run is bounded by the call's context — engine
// shutdown and subscriber abandonment both stop it at the next step
// boundary, with every completed step already checkpointed through the
// step memo.
func (e *Engine) computeFixpoint(c *call, p *core.Problem, params store.TrajectoryParams, key string, rkey renderedKey) (any, error) {
	if err := e.enter(); err != nil {
		return nil, err
	}
	defer e.gate.Leave()
	// body accumulates the exact bytes emitted to subscribers — the
	// rendered response committed below, so a later rendered-tier hit
	// replays this stream verbatim.
	var body []byte
	res, err := fixpoint.Run(p, fixpoint.Options{
		MaxSteps: params.MaxSteps,
		Core:     e.coreOpts(params.MaxStates),
		Memo:     e.stepMemo(params.MaxStates),
		Ctx:      c.ctx,
		Observe: func(index int, q *core.Problem) {
			line := marshalLine(FixpointEntry{Index: index, Problem: viewOf(q)})
			body = append(body, line...)
			c.emit(line)
			if e.stepHook != nil {
				e.stepHook(index)
			}
		},
	})
	if err != nil {
		if e.runCtx.Err() != nil {
			// Interrupted by shutdown. Completed steps are already in
			// the step memo; a restarted engine resumes from them.
			return nil, ErrClosed
		}
		if c.ctx.Err() != nil {
			// Every subscriber departed and the call was abandoned; a
			// racing late subscriber sees a retryable failure. The
			// memoized steps make its retry a warm resume.
			return nil, unavailable("computation canceled: every subscriber disconnected")
		}
		return nil, err
	}
	line := marshalLine(classificationOf(res))
	body = append(body, line...)
	c.emit(line)
	if e.st != nil {
		// Failed commits only cost warmth, never correctness.
		_ = e.st.PutTrajectory(p, params, res)
		_ = e.st.PutRendered(p, params, body)
	} else {
		e.mu.Lock()
		e.trajCache[key] = res
		e.mu.Unlock()
	}
	e.memoizeRendered(rkey, body)
	return res, nil
}

// classificationOf condenses a classified trajectory into its final
// stream line, a pure function of the result (what makes cold and warm
// streams byte-identical).
func classificationOf(res *fixpoint.Result) FixpointClassification {
	cls := FixpointClassification{
		Classification: res.Kind.String(),
		Steps:          res.Steps,
		CycleStart:     res.CycleStart,
		CycleLen:       res.CycleLen,
	}
	if res.Err != nil {
		cls.BudgetError = res.Err.Error()
	}
	return cls
}

// RenderFixpointNDJSON renders the complete NDJSON response body of a
// classified trajectory — every entry line then the classification
// line, the exact bytes the cold stream emits incrementally. cmd/sweep
// uses it to pre-render bodies into the store so a later daemon serves
// them from the rendered tier without marshaling.
func RenderFixpointNDJSON(res *fixpoint.Result) []byte {
	b := getBuf()
	defer putBuf(b)
	for i, q := range res.Trajectory {
		b.encode(FixpointEntry{Index: i, Problem: viewOf(q)})
	}
	b.encode(classificationOf(res))
	return bytes.Clone(b.buf.Bytes())
}

// marshalLine renders one NDJSON line (marshaled value plus newline)
// through a pooled buffer; only the exact-size retained copy escapes.
func marshalLine(v any) []byte {
	b := getBuf()
	defer putBuf(b)
	b.encode(v)
	return bytes.Clone(b.buf.Bytes())
}
