package service

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/store"
)

// FixpointRequest asks for the classified iterated-speedup trajectory
// of one problem, streamed step-by-step as NDJSON.
type FixpointRequest struct {
	// Problem is the input problem, in either text format.
	Problem string `json:"problem"`
	// MaxSteps bounds the iteration; 0 selects fixpoint.DefaultMaxSteps,
	// at most MaxRequestSteps.
	MaxSteps int `json:"max_steps,omitempty"`
	// MaxStates is the per-step core.WithMaxStates budget; 0 selects
	// the engine default. Both budgets are part of the cache identity.
	MaxStates int `json:"max_states,omitempty"`
}

// FixpointEntry is one NDJSON line of the trajectory stream: entry 0
// is the compressed input Π_0, entry i the i-th derived problem Π_i.
type FixpointEntry struct {
	// Index is the trajectory position.
	Index int `json:"index"`
	// Problem is the entry's rendering.
	Problem ProblemView `json:"problem"`
}

// FixpointClassification is the final NDJSON line of the stream.
type FixpointClassification struct {
	// Classification is the fixpoint.Kind string ("fixed point",
	// "cycle", "collapsed", "zero-round solvable", "budget exceeded").
	Classification string `json:"classification"`
	// Steps is the number of speedup applications performed.
	Steps int `json:"steps"`
	// CycleStart and CycleLen describe trajectory closure (fixed
	// points have CycleLen 1); both are 0 for other classifications.
	CycleStart int `json:"cycle_start"`
	CycleLen   int `json:"cycle_len"`
	// BudgetError carries the state-budget error message when the
	// classification is "budget exceeded" because the enumeration gave
	// up (empty when the step limit ran out instead).
	BudgetError string `json:"budget_error,omitempty"`
}

// Fixpoint answers one fixpoint query, writing the NDJSON stream —
// one FixpointEntry line per trajectory entry, then one
// FixpointClassification line — through sink as lines finalize. A warm
// store (or memory-cache) hit replays the stored trajectory; a cold
// run streams each entry the moment the underlying driver appends it,
// and concurrent identical queries subscribe to the same run, so every
// client of a key receives byte-identical lines.
func (e *Engine) Fixpoint(ctx context.Context, req FixpointRequest, sink func(line []byte) error) error {
	maxSteps := req.MaxSteps
	if maxSteps == 0 {
		maxSteps = fixpoint.DefaultMaxSteps
	}
	if err := validateRequestBudgets(maxSteps, req.MaxStates); err != nil {
		return err
	}
	p, err := parseProblem(req.Problem)
	if err != nil {
		return err
	}
	params := store.TrajectoryParams{MaxSteps: maxSteps, MaxStates: req.MaxStates}
	key := fmt.Sprintf("fixpoint|%s|max_steps=%d|max_states=%d",
		core.StableKey(p), maxSteps, req.MaxStates)

	// Warm path: replay the stored trajectory without touching the
	// gate or the flight table.
	res, ok := e.lookupTrajectory(key, p, params)
	if ok {
		for _, line := range renderTrajectory(res) {
			if err := sink(line); err != nil {
				return err
			}
		}
		return nil
	}

	_, err = e.inflight(ctx, key, sink, func(c *call) {
		c.finish(e.computeFixpoint(c, p, params, key))
	})
	return err
}

// lookupTrajectory consults the warm tiers in order — the preloaded
// pack (when attached), then the persistent store or the in-process
// cache — and counts one outcome per tier consulted. Lookup failures
// of any kind degrade to a miss on the serve path; validation failures
// (checksum, truncation, version) additionally count as "corrupt" so
// operators can see a damaged store behind byte-identical responses.
func (e *Engine) lookupTrajectory(key string, p *core.Problem, params store.TrajectoryParams) (*fixpoint.Result, bool) {
	if e.pk != nil {
		res, ok, err := e.pk.GetTrajectory(p, params)
		e.metrics.warmLookup("pack", warmOutcome(ok, err))
		if ok {
			return res, true
		}
	}
	if e.st != nil {
		res, ok, err := e.st.GetTrajectory(p, params)
		e.metrics.warmLookup("trajectory", warmOutcome(ok, err))
		if err != nil || !ok {
			return nil, false
		}
		return res, true
	}
	e.mu.Lock()
	res, ok := e.trajCache[key]
	e.mu.Unlock()
	e.metrics.warmLookup("trajectory", warmOutcome(ok, nil))
	return res, ok
}

// computeFixpoint runs the driver under the admission gate, emitting
// each trajectory line as the driver appends the entry, and commits
// the classified trajectory to the warm tier on success. The run is
// bounded by the call's context — engine shutdown and subscriber
// abandonment both stop it at the next step boundary, with every
// completed step already checkpointed through the step memo.
func (e *Engine) computeFixpoint(c *call, p *core.Problem, params store.TrajectoryParams, key string) (any, error) {
	if err := e.enter(); err != nil {
		return nil, err
	}
	defer e.gate.Leave()
	res, err := fixpoint.Run(p, fixpoint.Options{
		MaxSteps: params.MaxSteps,
		Core:     e.coreOpts(params.MaxStates),
		Memo:     e.stepMemo(params.MaxStates),
		Ctx:      c.ctx,
		Observe: func(index int, q *core.Problem) {
			c.emit(marshalLine(FixpointEntry{Index: index, Problem: viewOf(q)}))
			if e.stepHook != nil {
				e.stepHook(index)
			}
		},
	})
	if err != nil {
		if e.runCtx.Err() != nil {
			// Interrupted by shutdown. Completed steps are already in
			// the step memo; a restarted engine resumes from them.
			return nil, ErrClosed
		}
		if c.ctx.Err() != nil {
			// Every subscriber departed and the call was abandoned; a
			// racing late subscriber sees a retryable failure. The
			// memoized steps make its retry a warm resume.
			return nil, unavailable("computation canceled: every subscriber disconnected")
		}
		return nil, err
	}
	c.emit(marshalLine(classificationOf(res)))
	if e.st != nil {
		// A failed commit only costs warmth, never correctness.
		_ = e.st.PutTrajectory(p, params, res)
	} else {
		e.mu.Lock()
		e.trajCache[key] = res
		e.mu.Unlock()
	}
	return res, nil
}

// classificationOf condenses a classified trajectory into its final
// stream line, a pure function of the result (what makes cold and warm
// streams byte-identical).
func classificationOf(res *fixpoint.Result) FixpointClassification {
	cls := FixpointClassification{
		Classification: res.Kind.String(),
		Steps:          res.Steps,
		CycleStart:     res.CycleStart,
		CycleLen:       res.CycleLen,
	}
	if res.Err != nil {
		cls.BudgetError = res.Err.Error()
	}
	return cls
}

// renderTrajectory renders the full NDJSON line sequence of a
// classified trajectory — the exact lines a cold run emits
// incrementally.
func renderTrajectory(res *fixpoint.Result) [][]byte {
	lines := make([][]byte, 0, len(res.Trajectory)+1)
	for i, q := range res.Trajectory {
		lines = append(lines, marshalLine(FixpointEntry{Index: i, Problem: viewOf(q)}))
	}
	return append(lines, marshalLine(classificationOf(res)))
}

// marshalLine renders one NDJSON line (marshaled value plus newline).
// Marshaling these closed struct types cannot fail.
func marshalLine(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: marshal stream line: %v", err))
	}
	return append(data, '\n')
}
