package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/problems"
	"repro/internal/store"
)

// VerifyRequest asks the brute-force solvability oracle about one
// catalog problem — a single decision, or the full conformance harness
// with Conformance. The fields mirror cmd/verify's flags; optional
// numeric fields are pointers so that an omitted field takes the
// documented default while an explicit 0 (e.g. a 0-round decision)
// stays 0.
type VerifyRequest struct {
	// Problem is the catalog problem name (see the catalog endpoint).
	Problem string `json:"problem"`
	// Rounds is the round count t to decide; omitted = 1.
	Rounds *int `json:"rounds,omitempty"`
	// MaxN bounds the sized instance families; omitted = 5.
	MaxN *int `json:"n,omitempty"`
	// Family names the instance family (oracle.FamilyNames); omitted =
	// oracle.DefaultFamilyName for the problem's Δ.
	Family string `json:"family,omitempty"`
	// Seed drives the shuffled/oriented family variants; omitted = 1.
	Seed *int64 `json:"seed,omitempty"`
	// Relaxed exempts nodes of degree != Δ from the node constraint
	// (tree families).
	Relaxed bool `json:"relaxed,omitempty"`
	// Conformance runs the conformance harness instead of a single
	// decision.
	Conformance bool `json:"conformance,omitempty"`
}

// Decision is the JSON envelope for a single oracle decision — the
// schema cmd/verify prints and the verify endpoint serves.
type Decision struct {
	// Problem is the catalog name decided.
	Problem string `json:"problem"`
	// Family is the resolved instance-family name.
	Family string `json:"family"`
	// Seed is the family seed in force.
	Seed int64 `json:"seed"`
	// Verdict is the oracle's verdict, witness included when solvable.
	Verdict *oracle.Verdict `json:"verdict"`
}

// VerifyResponse is a rendered oracle verdict.
type VerifyResponse struct {
	// Negative reports a completed negative outcome — a decided
	// UNSOLVABLE verdict or a failed conformance check. cmd/verify
	// exits 2 on it; the HTTP layer serves 409. (Exit 1 / HTTP 4xx
	// mean the decision could not be made at all.)
	Negative bool
	// Body is the compact-rendered verdict JSON: a Decision envelope,
	// or an oracle conformance Report.
	Body []byte
}

// Verify answers one oracle query. Rendered verdicts are cached in the
// persistent store (keyed by the problem's stable key plus every
// semantics-bearing parameter; worker counts do not change the bytes
// and are not part of the identity), so a warm verdict is served
// without rerunning the search and is byte-identical to the cold one.
func (e *Engine) Verify(ctx context.Context, req VerifyRequest) (*VerifyResponse, error) {
	if req.Problem == "" {
		return nil, badRequest("problem is required")
	}
	p, err := lookupCatalog(req.Problem)
	if err != nil {
		return nil, err
	}
	rounds := intOr(req.Rounds, 1)
	maxN := intOr(req.MaxN, 5)
	seed := int64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	// Lower bounds only: the engine serves both the CLI (uncapped — a
	// caller's own hardware, like cmd/sweep) and the HTTP service,
	// whose per-request ceilings (MaxVerifyRounds, MaxVerifyN) are
	// enforced by the handler before the request reaches the engine.
	if rounds < 0 {
		return nil, badRequest("rounds must be >= 0, got %d", rounds)
	}
	if maxN < 1 {
		return nil, badRequest("n must be >= 1, got %d", maxN)
	}
	family := req.Family
	if family == "" {
		family = oracle.DefaultFamilyName(p.Delta())
	}
	params := store.VerdictParams{
		Problem:     req.Problem,
		Rounds:      rounds,
		MaxN:        maxN,
		Family:      family,
		Seed:        seed,
		Relaxed:     req.Relaxed,
		Conformance: req.Conformance,
	}

	// The flight key renders every VerdictParams field via %+v, so it
	// cannot drift from the store-record identity the way a
	// hand-written field list could.
	key := fmt.Sprintf("verify|%s|%+v", core.StableKey(p), params)
	body, ok := e.lookupVerdict(p, params)
	if ok {
		return &VerifyResponse{Negative: negativeOf(body), Body: body}, nil
	}
	val, err := e.inflight(ctx, key, nil, func(c *call) {
		c.finish(e.computeVerdict(p, params))
	})
	if err != nil {
		return nil, err
	}
	return val.(*VerifyResponse), nil
}

// lookupVerdict consults the warm tiers for a rendered verdict — the
// preloaded pack (when attached), then the persistent store or the
// memory-mode cache — counting one outcome per tier consulted; lookup
// failures degrade to a miss, validation failures count "corrupt". The
// memory-mode cache is keyed by the VerdictParams value itself, the
// same identity the store folds into its record key.
func (e *Engine) lookupVerdict(p *core.Problem, params store.VerdictParams) ([]byte, bool) {
	if e.pk != nil {
		body, ok, err := e.pk.GetVerdict(p, params)
		e.metrics.warmLookup("pack", warmOutcome(ok, err))
		if ok {
			return body, true
		}
	}
	if e.st != nil {
		body, ok, err := e.st.GetVerdict(p, params)
		e.metrics.warmLookup("verdict", warmOutcome(ok, err))
		if err != nil || !ok {
			return nil, false
		}
		return body, true
	}
	e.mu.Lock()
	body, ok := e.verdictCache[params]
	e.mu.Unlock()
	e.metrics.warmLookup("verdict", warmOutcome(ok, nil))
	return body, ok
}

// computeVerdict runs the oracle under the admission gate and commits
// the rendered verdict to the warm tier.
func (e *Engine) computeVerdict(p *core.Problem, params store.VerdictParams) (any, error) {
	if err := e.enter(); err != nil {
		return nil, err
	}
	defer e.gate.Leave()

	opts := []oracle.Option{oracle.WithWorkers(e.workers)}
	if params.Relaxed {
		opts = append(opts, oracle.WithRelaxedDegrees())
	}
	var rendered any
	if params.Conformance {
		fams, err := oracle.DefaultFamilies(p.Delta(), params.Seed)
		if err != nil {
			return nil, infeasible(err)
		}
		maxT := params.Rounds
		if maxT < 1 {
			maxT = 1
		}
		rep, err := oracle.Conformance(params.Problem, p, fams, maxT, opts...)
		if err != nil {
			return nil, infeasible(err)
		}
		rendered = rep
	} else {
		insts, err := oracle.BuildFamily(params.Family, p.Delta(), params.MaxN, params.Seed)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		v, err := oracle.Decide(p, insts, params.Rounds, opts...)
		if err != nil {
			return nil, infeasible(err)
		}
		rendered = Decision{Problem: params.Problem, Family: params.Family, Seed: params.Seed, Verdict: v}
	}
	body, err := json.Marshal(rendered)
	if err != nil {
		return nil, err
	}
	if e.st != nil {
		_ = e.st.PutVerdict(p, params, body)
	} else {
		e.mu.Lock()
		e.verdictCache[params] = body
		e.mu.Unlock()
	}
	return &VerifyResponse{Negative: negativeOf(body), Body: body}, nil
}

// negativeOf recovers the negative/positive outcome from a rendered
// verdict body: a decision is negative when its verdict is unsolvable,
// a conformance report when it is not OK. Pure in the bytes, so cold
// and warm verdicts map to the same HTTP status and exit code.
func negativeOf(body []byte) bool {
	var probe struct {
		Verdict *struct {
			Solvable bool `json:"solvable"`
		} `json:"verdict"`
		OK *bool `json:"ok"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return false
	}
	if probe.Verdict != nil {
		return !probe.Verdict.Solvable
	}
	if probe.OK != nil {
		return !*probe.OK
	}
	return false
}

// lookupCatalog resolves a catalog problem name, mapping failure to a
// 404 that lists the known names.
func lookupCatalog(name string) (*core.Problem, error) {
	var known []string
	for _, e := range problems.Catalog() {
		if e.Name == name {
			return e.Problem, nil
		}
		known = append(known, e.Name)
	}
	sort.Strings(known)
	return nil, notFound("unknown problem %q; catalog: %s", name, strings.Join(known, ", "))
}

// intOr dereferences an optional int field.
func intOr(v *int, def int) int {
	if v == nil {
		return def
	}
	return *v
}
