package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// SpeedupRequest asks for the speedup transformation of one problem:
// either Steps full steps Π → Π'_1 → … (each compact-renamed, exactly
// the per-step normal form the fixpoint driver and the result store
// use) or, with Half, the single half step Π → Π'_1/2.
type SpeedupRequest struct {
	// Problem is the input problem, in the human text format or the
	// canonical serialization (sniffed by core.ParseAuto).
	Problem string `json:"problem"`
	// Half selects the half step Π → Π'_1/2; it cannot be combined
	// with Steps > 1.
	Half bool `json:"half,omitempty"`
	// Steps is the number of full steps to apply; 0 means 1, at most
	// MaxRequestSteps.
	Steps int `json:"steps,omitempty"`
	// MaxStates is the per-step core.WithMaxStates enumeration budget;
	// 0 selects the engine default. The budget is part of the cache
	// identity (a step computed under one budget never answers for
	// another).
	MaxStates int `json:"max_states,omitempty"`
}

// SpeedupResponse carries the derived problems, one view per applied
// step (a single entry for Half).
type SpeedupResponse struct {
	// Input is the parsed input problem as served: its key is the
	// stable key the query was deduplicated and cached under.
	Input ProblemView `json:"input"`
	// Half echoes the request's half flag.
	Half bool `json:"half,omitempty"`
	// Derived holds Π'_1 … Π'_steps (or just Π'_1/2 with Half), each
	// compact-renamed.
	Derived []ProblemView `json:"derived"`
}

// Speedup answers one speedup query: steps are served from the
// budget-scoped step memo (the persistent store when configured),
// computed under the admission gate on a miss, and committed back, so
// identical queries are deduplicated in flight and byte-identical warm
// or cold.
func (e *Engine) Speedup(ctx context.Context, req SpeedupRequest) (*SpeedupResponse, error) {
	steps := req.Steps
	if steps == 0 {
		steps = 1
	}
	if err := validateRequestBudgets(steps, req.MaxStates); err != nil {
		return nil, err
	}
	if req.Half && steps != 1 {
		return nil, badRequest("half cannot be combined with steps > 1")
	}
	p, err := parseProblem(req.Problem)
	if err != nil {
		return nil, err
	}

	key := fmt.Sprintf("speedup|%s|half=%t|steps=%d|max_states=%d",
		core.StableKey(p), req.Half, steps, req.MaxStates)
	val, err := e.inflight(ctx, key, nil, func(c *call) {
		c.finish(e.computeSpeedup(p, req.Half, steps, req.MaxStates))
	})
	if err != nil {
		return nil, err
	}
	return val.(*SpeedupResponse), nil
}

// computeSpeedup runs (or replays) the requested transformation.
func (e *Engine) computeSpeedup(p *core.Problem, half bool, steps, maxStates int) (*SpeedupResponse, error) {
	resp := &SpeedupResponse{Input: viewOf(p), Half: half}
	if half {
		out, err := e.halfStep(p, maxStates)
		if err != nil {
			return nil, err
		}
		resp.Derived = []ProblemView{viewOf(out)}
		return resp, nil
	}
	memo := e.stepMemo(maxStates)
	cur := p
	for i := 0; i < steps; i++ {
		next, hit := memo.LookupStep(cur)
		if !hit {
			if err := e.enter(); err != nil {
				return nil, err
			}
			derived, err := core.Speedup(cur, e.coreOpts(maxStates)...)
			e.gate.Leave()
			if err != nil {
				if errors.Is(err, core.ErrStateBudget) {
					return nil, infeasible(err)
				}
				return nil, err
			}
			next, _ = derived.RenameCompact()
			memo.StoreStep(cur, next)
		}
		resp.Derived = append(resp.Derived, viewOf(next))
		cur = next
	}
	return resp, nil
}

// halfStep computes (or replays from the in-process cache) a
// compact-renamed half step. Half steps have no persistent record kind
// — the store keeps full-step normal forms only — so their warmth is
// scoped to the process.
func (e *Engine) halfStep(p *core.Problem, maxStates int) (*core.Problem, error) {
	key := fmt.Sprintf("%s|max_states=%d", core.StableKey(p), maxStates)
	e.mu.Lock()
	out, ok := e.halves[key]
	e.mu.Unlock()
	e.metrics.warmLookup("half", warmOutcome(ok, nil))
	if ok {
		return out, nil
	}
	if err := e.enter(); err != nil {
		return nil, err
	}
	derived, err := core.HalfStep(p, e.coreOpts(maxStates)...)
	e.gate.Leave()
	if err != nil {
		if errors.Is(err, core.ErrStateBudget) {
			return nil, infeasible(err)
		}
		return nil, err
	}
	out, _ = derived.RenameCompact()
	e.mu.Lock()
	e.halves[key] = out
	e.mu.Unlock()
	return out, nil
}
