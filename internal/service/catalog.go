package service

import "repro/internal/problems"

// CatalogEntry is one problem of the paper catalog as served by the
// catalog endpoint: the identity batch reports use (name, family, Δ, k)
// plus the full problem view whose canonical text can be posted
// straight back to the speedup and fixpoint endpoints.
type CatalogEntry struct {
	// Name is the catalog name, as accepted by the verify endpoint.
	Name string `json:"name"`
	// Family is the problem-family segment of the name.
	Family string `json:"family"`
	// Delta is the instantiation degree.
	Delta int `json:"delta"`
	// K is the family's k parameter, 0 when it has none.
	K int `json:"k,omitempty"`
	// FixedPoint records whether one speedup step is known to map the
	// problem back into its own isomorphism class.
	FixedPoint bool `json:"fixed_point,omitempty"`
	// Problem is the instantiated problem.
	Problem ProblemView `json:"problem"`
}

// CatalogResponse is the catalog endpoint's body.
type CatalogResponse struct {
	// Entries lists the catalog in its fixed paper order.
	Entries []CatalogEntry `json:"entries"`
}

// Catalog renders the paper catalog. The response is a pure function
// of problems.Catalog() — independent of store state, so its bytes are
// identical on every server.
func (e *Engine) Catalog() *CatalogResponse {
	resp := &CatalogResponse{}
	for _, entry := range problems.Catalog() {
		resp.Entries = append(resp.Entries, CatalogEntry{
			Name:       entry.Name,
			Family:     problems.FamilyOf(entry.Name),
			Delta:      entry.Problem.Delta(),
			K:          problems.KOf(entry.Name),
			FixedPoint: entry.FixedPoint,
			Problem:    viewOf(entry.Problem),
		})
	}
	return resp
}
