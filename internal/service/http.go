package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// MaxRequestBody caps the accepted request-body size (1 MiB):
// problems are small text descriptions, and the cap keeps a single
// client from holding request memory hostage.
const MaxRequestBody = 1 << 20

// Handler returns the service's HTTP API over the engine:
//
//	POST /v1/speedup   one or more full speedup steps, or the half step
//	POST /v1/fixpoint  classified trajectory, streamed as NDJSON
//	POST /v1/verify    brute-force oracle verdict / conformance report
//	GET  /v1/catalog   the paper's problem catalog
//
// Success bodies are deterministic functions of the query — identical
// whether served cold or from the warm store. Failures carry
// `{"error": "..."}` with the status from StatusOf; a negative verify
// outcome (decided UNSOLVABLE, failed conformance) is 409 with the
// full verdict body. The fixpoint stream reports failures occurring
// after streaming began as a final `{"error": "..."}` line, since the
// 200 header is already on the wire.
//
// Handler serves the query endpoints only; Routes adds GET /metrics
// and GET /v1/stats plus the instrumented middleware — that is what
// cmd/serve mounts.
func Handler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	registerQueryRoutes(mux, e, nil)
	return mux
}

// registerQueryRoutes mounts the four query endpoints on mux,
// recording stream volume into m (nil = unobserved). Metrics are never
// consulted when rendering a body.
func registerQueryRoutes(mux *http.ServeMux, e *Engine, m *Metrics) {
	mux.HandleFunc("POST /v1/speedup", func(w http.ResponseWriter, r *http.Request) {
		var req SpeedupRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		resp, err := e.Speedup(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/fixpoint", func(w http.ResponseWriter, r *http.Request) {
		var req FixpointRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		// Warm fast path: a body any warm tier can supply whole is
		// served fully buffered — one Write, with a Content-Length —
		// instead of through the streaming machinery. The bytes are the
		// same either way.
		if body, ok, err := e.FixpointBody(req); err != nil {
			writeError(w, err)
			return
		} else if ok {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			m.streamedBody(body)
			return
		}
		streaming := false
		// ResponseController unwraps middleware wrappers (obs.Wrap's
		// Unwrap chain), so flushing works through any depth of
		// logging/metrics middleware — a plain w.(http.Flusher)
		// assertion would fail on the first wrapper that hides it.
		rc := http.NewResponseController(w)
		err := e.fixpointCold(r.Context(), req, func(line []byte) error {
			if !streaming {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				streaming = true
			}
			if _, werr := w.Write(line); werr != nil {
				return werr
			}
			m.streamedLine(len(line))
			_ = rc.Flush() // ErrNotSupported = non-streaming transport; lines still arrive at the end
			return nil
		})
		switch {
		case err == nil:
		case !streaming:
			writeError(w, err)
		default:
			// Mid-stream failure: the status is already committed, so
			// the error travels as the final NDJSON line.
			line := append(mustMarshal(map[string]string{"error": err.Error()}), '\n')
			_, _ = w.Write(line)
			m.streamedLine(len(line))
		}
	})
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		var req VerifyRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		// The per-request ceilings are an HTTP-service concern: the
		// engine itself stays uncapped for the batch CLIs.
		if req.Rounds != nil && *req.Rounds > MaxVerifyRounds {
			writeError(w, badRequest("rounds must be <= %d, got %d", MaxVerifyRounds, *req.Rounds))
			return
		}
		if req.MaxN != nil && *req.MaxN > MaxVerifyN {
			writeError(w, badRequest("n must be <= %d, got %d", MaxVerifyN, *req.MaxN))
			return
		}
		resp, err := e.Verify(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		status := http.StatusOK
		if resp.Negative {
			status = http.StatusConflict
		}
		w.Header().Set("Content-Type", "application/json")
		// The reply is fully buffered, so its length is known before
		// the header goes out.
		w.Header().Set("Content-Length", strconv.Itoa(len(resp.Body)+1))
		w.WriteHeader(status)
		// resp.Body is shared across subscribers and cache hits — it
		// must never be appended to (the spare capacity race); the
		// newline goes out as its own write.
		_, _ = w.Write(resp.Body)
		_, _ = io.WriteString(w, "\n")
	})
	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Catalog())
	})
}

// readJSON decodes a size-capped JSON request body, rejecting trailing
// garbage; an oversized body maps to 413, other failures to 400.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			// The decode error must not masquerade as malformed JSON:
			// the body was cut off by the size cap, which is the
			// client's 413, not a 400.
			return &StatusError{
				Code: http.StatusRequestEntityTooLarge,
				Err:  fmt.Errorf("request body exceeds %d bytes", maxErr.Limit),
			}
		}
		return badRequest("request body: %v", err)
	}
	if dec.More() {
		return badRequest("request body: trailing content after the JSON object")
	}
	return nil
}

// writeJSON serves a marshaled body with a trailing newline (curl
// friendliness; part of the byte-identity contract, applied uniformly).
// The body is staged in full — through a pooled buffer, with the
// encoder's output byte-identical to json.Marshal plus newline —
// before any byte reaches the wire: a marshal failure degrades to a
// clean error envelope, never a half-written 200, and success replies
// carry an exact Content-Length.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b := getBuf()
	defer putBuf(b)
	if err := b.enc.Encode(v); err != nil {
		writeError(w, fmt.Errorf("render response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(b.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(b.buf.Bytes())
}

// writeError serves the error envelope under StatusOf's mapping, fully
// staged like writeJSON: the envelope is rendered before the header is
// written (an unmarshalable envelope — impossible for the closed
// struct, but guarded anyway — degrades to http.Error), so clients
// never see a half-written error body.
func writeError(w http.ResponseWriter, err error) {
	var payload = struct {
		Error string `json:"error"`
	}{Error: err.Error()}
	b := getBuf()
	defer putBuf(b)
	if merr := b.enc.Encode(payload); merr != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(b.buf.Len()))
	w.WriteHeader(StatusOf(err))
	_, _ = w.Write(b.buf.Bytes())
}

// mustMarshal marshals a value that cannot fail (closed map/struct
// types only).
func mustMarshal(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: marshal: %v", err))
	}
	return data
}
