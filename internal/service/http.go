package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// MaxRequestBody caps the accepted request-body size (1 MiB):
// problems are small text descriptions, and the cap keeps a single
// client from holding request memory hostage.
const MaxRequestBody = 1 << 20

// Handler returns the service's HTTP API over the engine:
//
//	POST /v1/speedup   one or more full speedup steps, or the half step
//	POST /v1/fixpoint  classified trajectory, streamed as NDJSON
//	POST /v1/verify    brute-force oracle verdict / conformance report
//	GET  /v1/catalog   the paper's problem catalog
//
// Success bodies are deterministic functions of the query — identical
// whether served cold or from the warm store. Failures carry
// `{"error": "..."}` with the status from StatusOf; a negative verify
// outcome (decided UNSOLVABLE, failed conformance) is 409 with the
// full verdict body. The fixpoint stream reports failures occurring
// after streaming began as a final `{"error": "..."}` line, since the
// 200 header is already on the wire.
func Handler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/speedup", func(w http.ResponseWriter, r *http.Request) {
		var req SpeedupRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		resp, err := e.Speedup(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/fixpoint", func(w http.ResponseWriter, r *http.Request) {
		var req FixpointRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		streaming := false
		flusher, _ := w.(http.Flusher)
		err := e.Fixpoint(r.Context(), req, func(line []byte) error {
			if !streaming {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				streaming = true
			}
			if _, werr := w.Write(line); werr != nil {
				return werr
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		switch {
		case err == nil:
		case !streaming:
			writeError(w, err)
		default:
			// Mid-stream failure: the status is already committed, so
			// the error travels as the final NDJSON line.
			line, _ := json.Marshal(map[string]string{"error": err.Error()})
			_, _ = w.Write(append(line, '\n'))
		}
	})
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		var req VerifyRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		// The per-request ceilings are an HTTP-service concern: the
		// engine itself stays uncapped for the batch CLIs.
		if req.Rounds != nil && *req.Rounds > MaxVerifyRounds {
			writeError(w, badRequest("rounds must be <= %d, got %d", MaxVerifyRounds, *req.Rounds))
			return
		}
		if req.MaxN != nil && *req.MaxN > MaxVerifyN {
			writeError(w, badRequest("n must be <= %d, got %d", MaxVerifyN, *req.MaxN))
			return
		}
		resp, err := e.Verify(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		status := http.StatusOK
		if resp.Negative {
			status = http.StatusConflict
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		// resp.Body is shared across subscribers and cache hits — it
		// must never be appended to (the spare capacity race); the
		// newline goes out as its own write.
		_, _ = w.Write(resp.Body)
		_, _ = io.WriteString(w, "\n")
	})
	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Catalog())
	})
	return mux
}

// readJSON decodes a size-capped JSON request body, rejecting trailing
// garbage; failures map to 400.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody))
	if err := dec.Decode(dst); err != nil {
		return badRequest("request body: %v", err)
	}
	if dec.More() {
		return badRequest("request body: trailing content after the JSON object")
	}
	return nil
}

// writeJSON serves a marshaled body with a trailing newline (curl
// friendliness; part of the byte-identity contract, applied uniformly).
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, fmt.Errorf("render response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

// writeError serves the error envelope under StatusOf's mapping.
func writeError(w http.ResponseWriter, err error) {
	var payload = struct {
		Error string `json:"error"`
	}{Error: err.Error()}
	body, merr := json.Marshal(payload)
	if merr != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(StatusOf(err))
	_, _ = w.Write(append(body, '\n'))
}
