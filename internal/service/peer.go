package service

import (
	"context"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/store"
)

// PeerConfig joins an engine to a static cluster: a fleet of
// cmd/serve instances that partition record ownership over a
// consistent-hash ring and serve each other's warm records through
// the peer protocol (internal/cluster). The peer tier is consulted
// after every local tier (pack, store, memory) and before cold
// compute; it is strictly an accelerator — any peer failure, from a
// dead socket to a byzantine frame, degrades the lookup to local
// computation, never to a failed or wrong query.
type PeerConfig struct {
	// Self is this node's own member name — the address peers reach it
	// at (cmd/serve -advertise). It must appear in Members; lookups the
	// ring assigns to Self stay local.
	Self string
	// Members is the full static member list of the cluster, Self
	// included (cmd/serve -peers). Every node must be configured with
	// the same list — ownership is derived locally from it.
	Members []string
	// Timeout bounds each peer record fetch (<= 0 selects
	// cluster.DefaultPeerTimeout). Keep it small: a peer hit is only
	// worth having when it beats recomputing.
	Timeout time.Duration
	// VNodes is the ring's virtual-node count per member (<= 0 selects
	// cluster.DefaultVNodes). All nodes must agree on it.
	VNodes int
}

// peerFailureThreshold is how many consecutive unreachable outcomes
// open a peer's breaker.
const peerFailureThreshold = 3

// peerBackoff is how long an open breaker skips a peer before probing
// it again.
const peerBackoff = 5 * time.Second

// peerTier is the engine's view of the cluster: the ring, the
// protocol client, and a per-peer failure breaker so a dead peer
// costs a handful of timeouts, not one per lookup forever.
type peerTier struct {
	ring    *cluster.Ring
	self    string
	client  *cluster.Client
	timeout time.Duration

	mu        sync.Mutex
	fails     map[string]int       // consecutive unreachable outcomes
	downUntil map[string]time.Time // open-breaker deadline
}

// newPeerTier validates the peer configuration and builds the tier.
func newPeerTier(cfg *PeerConfig) (*peerTier, error) {
	ring, err := cluster.NewRing(cfg.Members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("service: peer config: empty self address")
	}
	if !slices.Contains(ring.Members(), cfg.Self) {
		return nil, fmt.Errorf("service: peer config: self %q is not in the member list", cfg.Self)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = cluster.DefaultPeerTimeout
	}
	return &peerTier{
		ring:      ring,
		self:      cfg.Self,
		client:    cluster.NewClient(timeout),
		timeout:   timeout,
		fails:     make(map[string]int),
		downUntil: make(map[string]time.Time),
	}, nil
}

// available reports whether the peer's breaker admits a request.
func (pt *peerTier) available(peer string) bool {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return time.Now().After(pt.downUntil[peer])
}

// observe records a fetch attempt's reachability. The threshold'th
// consecutive failure opens the breaker for peerBackoff; any success
// (hit, miss, or even a corrupt frame — the peer answered) closes it.
func (pt *peerTier) observe(peer string, reachable bool) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if reachable {
		delete(pt.fails, peer)
		delete(pt.downUntil, peer)
		return
	}
	pt.fails[peer]++
	if pt.fails[peer] >= peerFailureThreshold {
		pt.downUntil[peer] = time.Now().Add(peerBackoff)
		pt.fails[peer] = 0
	}
}

// peerLookup runs one owner-directed record fetch: resolve the owner
// of problem p on the ring, skip the lookup when the owner is this
// node or its breaker is open, fetch the frame within the per-peer
// budget, and hand it to decode — which must re-validate everything
// (the store's Decode*Record functions do). Exactly one outcome is
// counted per call ("hit", "miss", "corrupt", "unreachable", or
// "skipped"), and the return value is true only for a fully validated
// hit. Every other path degrades to local computation.
func (e *Engine) peerLookup(p *core.Problem, kind store.Kind, key core.StableFingerprint, decode func(frame []byte) (bool, error)) bool {
	pt := e.peers
	if pt == nil {
		return false
	}
	peer := pt.ring.Owner(core.StableKey(p))
	if peer == pt.self {
		return false
	}
	if !pt.available(peer) {
		e.metrics.peerLookup(peer, "skipped")
		return false
	}
	ctx, cancel := context.WithTimeout(e.runCtx, pt.timeout)
	defer cancel()
	frame, ok, err := pt.client.FetchRecord(ctx, peer, kind, key)
	if err != nil {
		pt.observe(peer, false)
		e.metrics.peerLookup(peer, "unreachable")
		return false
	}
	pt.observe(peer, true)
	if !ok {
		e.metrics.peerLookup(peer, "miss")
		return false
	}
	ok, derr := decode(frame)
	if derr != nil || !ok {
		// The peer answered with bytes that fail frame validation or
		// the embedded-input guard: a byzantine (or version-skewed)
		// peer, degraded to a miss. The bytes are discarded.
		e.metrics.peerLookup(peer, "corrupt")
		return false
	}
	e.metrics.peerLookup(peer, "hit")
	return true
}

// peerStep fetches the memoized speedup step for in from its owner,
// backfilling the local store on a hit so the answer is served locally
// from then on.
func (e *Engine) peerStep(in *core.Problem, maxStates int) (*core.Problem, bool) {
	var out *core.Problem
	hit := e.peerLookup(in, store.KindStep, store.StepRecordKey(in, maxStates), func(frame []byte) (bool, error) {
		p, ok, err := store.DecodeStepRecord(frame, in, maxStates)
		out = p
		return ok, err
	})
	if !hit {
		return nil, false
	}
	if e.st != nil {
		// Failed commits only cost warmth, never correctness.
		_ = e.st.PutStep(in, out, maxStates)
	}
	return out, true
}

// peerStepMemo chains the peer tier after a local step memo: local
// lookups first (disk beats network), the owning peer on a local miss.
// Stores go to the local tier only — the owner commits its own copy
// when it computes, and backfill on peer hits handles the rest.
type peerStepMemo struct {
	e         *Engine
	maxStates int
	inner     fixpoint.Memo
}

// LookupStep consults the local tier, then the owning peer.
func (m peerStepMemo) LookupStep(in *core.Problem) (*core.Problem, bool) {
	if out, ok := m.inner.LookupStep(in); ok {
		return out, true
	}
	return m.e.peerStep(in, m.maxStates)
}

// StoreStep delegates to the local tier.
func (m peerStepMemo) StoreStep(in, out *core.Problem) { m.inner.StoreStep(in, out) }

// peerFixpoint asks the owner of problem p for a finished fixpoint
// answer after every local tier missed: the pre-rendered body first
// (the exact response bytes), the classified trajectory second
// (re-rendered locally). A hit backfills the local warm tiers — both
// the trajectory and the rendered record, the same pairing cmd/sweep
// commits on checkpoint hits — so one peer fetch makes the answer
// local forever. key is the flight/cache key for memory-only mode.
func (e *Engine) peerFixpoint(key string, p *core.Problem, params store.TrajectoryParams) ([]byte, bool) {
	if e.peers == nil {
		return nil, false
	}
	var body []byte
	if e.peerLookup(p, store.KindRendered, store.RenderedRecordKey(p, params), func(frame []byte) (bool, error) {
		b, ok, err := store.DecodeRenderedRecord(frame, p, params)
		body = b
		return ok, err
	}) {
		if e.st != nil {
			_ = e.st.PutRendered(p, params, body)
		}
		return body, true
	}
	var res *fixpoint.Result
	if e.peerLookup(p, store.KindTrajectory, store.TrajectoryRecordKey(p, params), func(frame []byte) (bool, error) {
		r, ok, err := store.DecodeTrajectoryRecord(frame, p, params)
		res = r
		return ok, err
	}) {
		body = RenderFixpointNDJSON(res)
		if e.st != nil {
			_ = e.st.PutTrajectory(p, params, res)
			_ = e.st.PutRendered(p, params, body)
		} else {
			e.mu.Lock()
			e.trajCache[key] = res
			e.mu.Unlock()
		}
		return body, true
	}
	return nil, false
}

// registerPeerRoutes mounts the peer protocol endpoints when the
// engine is clustered: records are served from the same local tiers
// queries read (pack first, then store), and the ring endpoint
// publishes this node's static membership. No-op for a solo engine.
func (e *Engine) registerPeerRoutes(mux *http.ServeMux) {
	if e.peers == nil {
		return
	}
	var srcs []cluster.RecordSource
	if e.pk != nil {
		srcs = append(srcs, e.pk)
	}
	if e.st != nil {
		srcs = append(srcs, e.st)
	}
	cluster.RegisterPeerRoutes(mux, cluster.RingInfo{
		Self:    e.peers.self,
		Members: e.peers.ring.Members(),
		VNodes:  e.peers.ring.VNodes(),
	}, cluster.Sources(srcs...))
}
