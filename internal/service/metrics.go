package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

// LatencyBands is the fixed histogram bucketing (upper bounds in
// seconds) shared by the request-latency and gate-wait histograms:
// sub-millisecond warm hits up through multi-second cold enumerations.
var LatencyBands = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Metrics is the daemon's instrument set: request counts and latency
// bands by endpoint, singleflight dedup counters, warm-tier
// hit/miss/corrupt outcomes by record tier, admission-gate queue depth
// and wait time, and NDJSON
// stream volume. One Metrics outlives engine generations (a SIGHUP
// reload swaps engines, not counters), and a nil *Metrics is a valid
// no-op receiver for every recording method, so the engine and
// handlers need no conditionals.
//
// Everything here feeds GET /metrics and GET /v1/stats only. No query
// response body ever reads an instrument — that is the structural
// guarantee behind the cold/warm byte-identity contract.
type Metrics struct {
	reg *obs.Registry

	mu       sync.Mutex
	requests map[requestKey]*obs.Counter
	latency  map[string]*obs.Histogram
	peers    map[peerKey]*obs.Counter

	flightLeaders   *obs.Counter
	flightFollowers *obs.Counter

	warm map[string]map[string]*obs.Counter // tier → outcome → counter

	gateWaiting     *obs.Gauge
	gatePeakWaiting *obs.Gauge
	gateInUse       *obs.Gauge
	gateCapacity    *obs.Gauge
	gateWait        *obs.Histogram

	streamLines *obs.Counter
	streamBytes *obs.Counter
}

// requestKey identifies one (endpoint, status) request-counter series.
type requestKey struct {
	endpoint string
	status   int
}

// peerKey identifies one (peer, outcome) peer-lookup counter series.
type peerKey struct {
	peer    string
	outcome string
}

// peerOutcomes are the per-peer lookup outcomes of the cluster warm
// tier: "hit" served a verified record, "miss" the owner had none,
// "corrupt" the owner answered bytes that failed re-validation (frame
// checksum or embedded-input guard — a byzantine or version-skewed
// peer), "unreachable" the fetch failed or timed out, "skipped" the
// peer's failure breaker was open. Every outcome but "hit" degrades
// the lookup to local computation.
var peerOutcomes = []string{"hit", "miss", "corrupt", "unreachable", "skipped"}

// warmTiers are the warm-lookup record tiers instrumented by the
// engine: the preloaded pack artifact, full-step memo entries, whole
// trajectories, pre-rendered response bodies, rendered verdicts, and
// in-process half steps. The "rendered" tier folds its whole chain —
// in-process memo, pack record, store record — into at most one
// outcome per request.
var warmTiers = []string{"pack", "step", "trajectory", "rendered", "verdict", "half"}

// warmOutcomes are the per-tier lookup outcomes: "hit" served a record,
// "miss" fell through cleanly, "corrupt" fell through because the
// record failed validation (checksum, truncation, or version mismatch)
// — the serve path degrades to recomputation in both fall-through
// cases, but "corrupt" is the operator's signal to re-sweep or re-pack.
var warmOutcomes = []string{"hit", "miss", "corrupt"}

// warmOutcome folds a warm-tier (ok, err) lookup result into its
// outcome label.
func warmOutcome(ok bool, err error) string {
	switch {
	case ok:
		return "hit"
	case err != nil:
		return "corrupt"
	default:
		return "miss"
	}
}

// NewMetrics returns a ready instrument set backed by a fresh
// registry.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:      reg,
		requests: make(map[requestKey]*obs.Counter),
		latency:  make(map[string]*obs.Histogram),
		peers:    make(map[peerKey]*obs.Counter),
		flightLeaders: reg.Counter("re_singleflight_requests_total",
			"Requests by singleflight role: a leader starts a computation, a follower subscribes to one in flight.",
			obs.L("role", "leader")),
		flightFollowers: reg.Counter("re_singleflight_requests_total",
			"Requests by singleflight role: a leader starts a computation, a follower subscribes to one in flight.",
			obs.L("role", "follower")),
		warm: make(map[string]map[string]*obs.Counter),
		gateWaiting: reg.Gauge("re_gate_waiting",
			"Engine computations currently queued for an admission slot."),
		gatePeakWaiting: reg.Gauge("re_gate_waiting_peak",
			"Peak admission-queue depth since process start."),
		gateInUse: reg.Gauge("re_gate_in_use",
			"Admission slots currently held by running engine computations."),
		gateCapacity: reg.Gauge("re_gate_capacity",
			"Total admission slots (the -max-inflight bound)."),
		gateWait: reg.Histogram("re_gate_wait_seconds",
			"Time computations spent waiting for an admission slot.", LatencyBands),
		streamLines: reg.Counter("re_stream_lines_total",
			"NDJSON lines written to fixpoint stream subscribers."),
		streamBytes: reg.Counter("re_stream_bytes_total",
			"NDJSON bytes written to fixpoint stream subscribers."),
	}
	for _, tier := range warmTiers {
		m.warm[tier] = make(map[string]*obs.Counter, len(warmOutcomes))
		for _, outcome := range warmOutcomes {
			m.warm[tier][outcome] = reg.Counter("re_warm_lookups_total",
				"Warm-tier lookups by record tier and outcome (pack artifact, persistent store, or in-process cache).",
				obs.L("tier", tier), obs.L("outcome", outcome))
		}
	}
	return m
}

// flightCall records one deduplicated request: the leader starts the
// computation, followers subscribe to it.
func (m *Metrics) flightCall(leader bool) {
	if m == nil {
		return
	}
	if leader {
		m.flightLeaders.Inc()
	} else {
		m.flightFollowers.Inc()
	}
}

// warmLookup records one warm-tier lookup outcome ("hit", "miss", or
// "corrupt" — see warmOutcome).
func (m *Metrics) warmLookup(tier, outcome string) {
	if m == nil {
		return
	}
	m.warm[tier][outcome].Inc()
}

// peerLookup records one cluster peer-tier lookup outcome under
// re_peer_lookups_total{peer,outcome} (see peerOutcomes). The peer
// label is bounded by the static member list, so cardinality is the
// fleet size times five.
func (m *Metrics) peerLookup(peer, outcome string) {
	if m == nil {
		return
	}
	key := peerKey{peer, outcome}
	m.mu.Lock()
	c, ok := m.peers[key]
	if !ok {
		c = m.reg.Counter("re_peer_lookups_total",
			"Cluster peer-tier lookups by owning peer and outcome (hit, miss, corrupt, unreachable, skipped).",
			obs.L("peer", peer), obs.L("outcome", outcome))
		m.peers[key] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// streamedLine records one NDJSON line put on the wire.
func (m *Metrics) streamedLine(n int) {
	if m == nil {
		return
	}
	m.streamLines.Inc()
	m.streamBytes.Add(int64(n))
}

// streamedBody records a fully-buffered NDJSON body put on the wire,
// counting its lines so a warm buffered serve reports exactly like the
// same body streamed line by line.
func (m *Metrics) streamedBody(body []byte) {
	if m == nil {
		return
	}
	m.streamLines.Add(int64(bytes.Count(body, []byte{'\n'})))
	m.streamBytes.Add(int64(len(body)))
}

// httpDone records one finished request.
func (m *Metrics) httpDone(endpoint string, status int, d time.Duration) {
	if m == nil {
		return
	}
	m.requestCounter(endpoint, status).Inc()
	m.latencyHistogram(endpoint).Observe(d)
}

// requestCounter returns the (endpoint, status) counter, registering
// it on first use.
func (m *Metrics) requestCounter(endpoint string, status int) *obs.Counter {
	key := requestKey{endpoint, status}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.requests[key]
	if !ok {
		c = m.reg.Counter("re_http_requests_total", "Requests by endpoint and response status.",
			obs.L("endpoint", endpoint), obs.L("status", fmt.Sprintf("%d", status)))
		m.requests[key] = c
	}
	return c
}

// latencyHistogram returns the endpoint's latency histogram,
// registering it on first use.
func (m *Metrics) latencyHistogram(endpoint string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[endpoint]
	if !ok {
		h = m.reg.Histogram("re_http_request_seconds", "Request wall-clock latency by endpoint.",
			LatencyBands, obs.L("endpoint", endpoint))
		m.latency[endpoint] = h
	}
	return h
}

// gateObserver adapts Metrics to par.GateObserver.
type gateObserver struct{ m *Metrics }

// GateQueued counts a computation entering the admission queue.
func (o gateObserver) GateQueued() {
	o.m.gateWaiting.Inc()
	o.m.gatePeakWaiting.RaiseTo(o.m.gateWaiting.Value())
}

// GateEntered counts a computation acquiring a slot.
func (o gateObserver) GateEntered(wait time.Duration) {
	o.m.gateWaiting.Dec()
	o.m.gateInUse.Inc()
	o.m.gateWait.Observe(wait)
}

// GateRefused counts a computation abandoning the queue.
func (o gateObserver) GateRefused(wait time.Duration) {
	o.m.gateWaiting.Dec()
	o.m.gateWait.Observe(wait)
}

// GateLeft counts a slot release.
func (o gateObserver) GateLeft() { o.m.gateInUse.Dec() }

// observeGate attaches the metrics to a gate's admission events and
// records its capacity. Nil-safe.
func (m *Metrics) observeGate(g *par.Gate) {
	if m == nil {
		return
	}
	m.gateCapacity.Set(int64(g.Cap()))
	g.SetObserver(gateObserver{m})
}

// endpointLabel normalizes a request path to the fixed endpoint label
// set, so hostile paths cannot inflate metric cardinality.
func endpointLabel(r *http.Request) string {
	switch r.URL.Path {
	case "/v1/speedup", "/v1/fixpoint", "/v1/verify", "/v1/catalog", "/v1/stats", "/metrics",
		"/v1/peer/record", "/v1/peer/ring":
		return r.URL.Path
	default:
		return "other"
	}
}

// Instrument wraps next so every request is counted by endpoint and
// status and its latency lands in the endpoint's histogram. The
// ResponseWriter wrapper preserves Flusher (NDJSON streaming keeps
// flushing line-by-line) and ReaderFrom.
func (m *Metrics) Instrument(next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ww := obs.Wrap(w)
		start := time.Now()
		next.ServeHTTP(ww, r)
		m.httpDone(endpointLabel(r), ww.Status(), time.Since(start))
	})
}

// LogRequests wraps next with one method/path/status/bytes/duration
// log line per request, written to w (stderr in cmd/serve). The same
// flush-preserving wrapper as Instrument, so logging can never stall a
// stream. Log output never enters response bodies.
func LogRequests(next http.Handler, w io.Writer) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		ww := obs.Wrap(rw)
		start := time.Now()
		next.ServeHTTP(ww, r)
		fmt.Fprintf(w, "serve: %s %s %d %dB %.1fms\n",
			r.Method, r.URL.Path, ww.Status(), ww.BytesWritten(),
			float64(time.Since(start).Microseconds())/1000)
	})
}

// WithRequestTimeout bounds every request's wall clock at d by
// deadline-ing its context; 0 disables the budget and returns next
// unchanged. A fixpoint computation whose every subscriber timed out
// is cancelled at its next step boundary with its completed steps
// already memoized, so a timed-out query retried with a longer budget
// resumes from the checkpoint and yields byte-identical lines.
func WithRequestTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// Routes returns the daemon's full route set: the four /v1 query
// endpoints of Handler, the cluster peer-protocol endpoints when the
// engine is clustered (GET /v1/peer/record and /v1/peer/ring), plus
// GET /metrics (Prometheus text format) and GET /v1/stats (the JSON
// snapshot), all behind the Instrument middleware. This is exactly
// what cmd/serve mounts, so tests against Routes exercise the
// production composition.
func Routes(e *Engine, m *Metrics) http.Handler {
	mux := http.NewServeMux()
	registerQueryRoutes(mux, e, m)
	e.registerPeerRoutes(mux)
	if m == nil {
		return mux
	}
	mux.Handle("GET /metrics", m.reg.Handler())
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats(e))
	})
	return m.Instrument(mux)
}

// Stats is the GET /v1/stats body: the same instruments as /metrics,
// grouped and with the derived ratios precomputed. Unlike query
// responses it is observational by definition — two servers never
// promise identical stats bodies.
type Stats struct {
	// Requests counts finished requests per endpoint and status.
	Requests []RequestStat `json:"requests"`
	// Latency carries the per-endpoint wall-clock histograms.
	Latency []LatencyStat `json:"latency"`
	// Singleflight summarizes in-flight deduplication.
	Singleflight SingleflightStat `json:"singleflight"`
	// Store lists warm-tier hit/miss counts by record tier.
	Store []StoreStat `json:"store"`
	// Peers lists cluster peer-tier lookup outcomes by owning peer;
	// empty (omitted) for a solo daemon.
	Peers []PeerStat `json:"peers,omitempty"`
	// Gate describes admission-control pressure.
	Gate GateStat `json:"gate"`
	// Stream totals the NDJSON lines and bytes streamed.
	Stream StreamStat `json:"stream"`
}

// RequestStat is one (endpoint, status) request count.
type RequestStat struct {
	// Endpoint is the normalized endpoint label.
	Endpoint string `json:"endpoint"`
	// Status is the HTTP response status.
	Status int `json:"status"`
	// Count is the number of finished requests.
	Count int64 `json:"count"`
}

// LatencyStat is one endpoint's latency histogram.
type LatencyStat struct {
	// Endpoint is the normalized endpoint label.
	Endpoint string `json:"endpoint"`
	// Latency is the wall-clock histogram snapshot.
	Latency obs.HistogramSnapshot `json:"latency"`
}

// SingleflightStat summarizes in-flight deduplication.
type SingleflightStat struct {
	// Leaders counts requests that started a computation.
	Leaders int64 `json:"leaders"`
	// Followers counts requests that subscribed to one in flight.
	Followers int64 `json:"followers"`
	// DedupRatio is Followers / (Leaders + Followers); 0 when idle.
	DedupRatio float64 `json:"dedup_ratio"`
}

// StoreStat is one warm tier's lookup-outcome count.
type StoreStat struct {
	// Tier is the record tier ("pack", "step", "trajectory",
	// "rendered", "verdict", "half").
	Tier string `json:"tier"`
	// Hits counts warm lookups that were served.
	Hits int64 `json:"hits"`
	// Misses counts warm lookups that fell through to computation.
	Misses int64 `json:"misses"`
	// Corrupt counts warm lookups that fell through because the record
	// failed validation; the query still succeeds by recomputation.
	Corrupt int64 `json:"corrupt"`
}

// PeerStat is one peer's cluster-lookup outcome counts (see
// peerOutcomes for the degrade semantics of each).
type PeerStat struct {
	// Peer is the owning member's address.
	Peer string `json:"peer"`
	// Hits counts lookups served by a verified peer record.
	Hits int64 `json:"hits"`
	// Misses counts lookups the owner had no record for.
	Misses int64 `json:"misses"`
	// Corrupt counts peer responses that failed re-validation.
	Corrupt int64 `json:"corrupt"`
	// Unreachable counts failed or timed-out fetches.
	Unreachable int64 `json:"unreachable"`
	// Skipped counts lookups suppressed by an open failure breaker.
	Skipped int64 `json:"skipped"`
}

// GateStat describes admission-control pressure.
type GateStat struct {
	// Capacity is the slot count (-max-inflight).
	Capacity int64 `json:"capacity"`
	// InUse is the number of slots currently held.
	InUse int64 `json:"in_use"`
	// Waiting is the current admission-queue depth.
	Waiting int64 `json:"waiting"`
	// PeakWaiting is the deepest the queue has been.
	PeakWaiting int64 `json:"peak_waiting"`
	// Wait is the slot-wait histogram snapshot.
	Wait obs.HistogramSnapshot `json:"wait"`
}

// StreamStat totals NDJSON stream volume.
type StreamStat struct {
	// Lines is the number of NDJSON lines written to subscribers.
	Lines int64 `json:"lines"`
	// Bytes is the number of NDJSON bytes written to subscribers.
	Bytes int64 `json:"bytes"`
}

// Stats assembles the current snapshot. The engine parameter is
// accepted for future engine-level fields and may be nil.
func (m *Metrics) Stats(e *Engine) Stats {
	m.mu.Lock()
	reqKeys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	m.mu.Unlock()
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].status < reqKeys[j].status
	})
	sort.Strings(latKeys)

	s := Stats{
		Singleflight: SingleflightStat{
			Leaders:   m.flightLeaders.Value(),
			Followers: m.flightFollowers.Value(),
		},
		Gate: GateStat{
			Capacity:    m.gateCapacity.Value(),
			InUse:       m.gateInUse.Value(),
			Waiting:     m.gateWaiting.Value(),
			PeakWaiting: m.gatePeakWaiting.Value(),
			Wait:        m.gateWait.Snapshot(),
		},
		Stream: StreamStat{Lines: m.streamLines.Value(), Bytes: m.streamBytes.Value()},
	}
	if total := s.Singleflight.Leaders + s.Singleflight.Followers; total > 0 {
		s.Singleflight.DedupRatio = float64(s.Singleflight.Followers) / float64(total)
	}
	for _, k := range reqKeys {
		m.mu.Lock()
		c := m.requests[k]
		m.mu.Unlock()
		s.Requests = append(s.Requests, RequestStat{Endpoint: k.endpoint, Status: k.status, Count: c.Value()})
	}
	for _, k := range latKeys {
		m.mu.Lock()
		h := m.latency[k]
		m.mu.Unlock()
		s.Latency = append(s.Latency, LatencyStat{Endpoint: k, Latency: h.Snapshot()})
	}
	for _, tier := range warmTiers {
		s.Store = append(s.Store, StoreStat{
			Tier:    tier,
			Hits:    m.warm[tier]["hit"].Value(),
			Misses:  m.warm[tier]["miss"].Value(),
			Corrupt: m.warm[tier]["corrupt"].Value(),
		})
	}
	m.mu.Lock()
	byPeer := make(map[string]*PeerStat)
	peerNames := []string{}
	for k, c := range m.peers {
		ps, ok := byPeer[k.peer]
		if !ok {
			ps = &PeerStat{Peer: k.peer}
			byPeer[k.peer] = ps
			peerNames = append(peerNames, k.peer)
		}
		v := c.Value()
		switch k.outcome {
		case "hit":
			ps.Hits = v
		case "miss":
			ps.Misses = v
		case "corrupt":
			ps.Corrupt = v
		case "unreachable":
			ps.Unreachable = v
		case "skipped":
			ps.Skipped = v
		}
	}
	m.mu.Unlock()
	sort.Strings(peerNames)
	for _, name := range peerNames {
		s.Peers = append(s.Peers, *byPeer[name])
	}
	return s
}
