package service

// Pooled render buffers. Every response body the service writes — an
// NDJSON stream line, a rendered trajectory body, a JSON envelope — is
// staged in a lineBuf drawn from bufPool and returned after the bytes
// are copied out or written to the wire. The pooling invariant, locked
// by TestConcurrentPooledByteIdentity and TestBufferPoolBalance, is
// that pooled storage never escapes into a response: callers
// either copy the staged bytes into a fresh right-sized slice (bodies
// that are retained in caches or singleflight chunks) or finish their
// ResponseWriter.Write before the Put (bodies that go straight to the
// wire). A lineBuf also carries a double-put guard: returning a buffer
// twice would let two goroutines render into the same storage, which is
// exactly the corruption the invariant exists to prevent, so putBuf
// panics instead.

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// lineBuf is one pooled render buffer: a bytes.Buffer with a JSON
// encoder permanently bound to it and a double-put guard.
type lineBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
	out bool // drawn from the pool and not yet returned
}

// encode appends the JSON encoding of v plus a trailing newline to the
// buffer — byte-identical to json.Marshal(v) followed by '\n', which is
// the service's NDJSON line format. Marshaling the service's closed
// struct types cannot fail.
func (b *lineBuf) encode(v any) {
	if err := b.enc.Encode(v); err != nil {
		panic("service: marshal stream line: " + err.Error())
	}
}

// maxPooledBuf caps the capacity a recycled buffer may retain: one
// pathological giant body must not pin its storage in the pool forever.
const maxPooledBuf = 64 << 10

// bufPool recycles lineBufs across requests.
var bufPool = sync.Pool{New: func() any {
	b := new(lineBuf)
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// bufsLive counts buffers currently drawn from the pool — the leak
// detector the pool-correctness tests assert returns to zero.
var bufsLive atomic.Int64

// getBuf draws an empty render buffer from the pool.
func getBuf() *lineBuf {
	b := bufPool.Get().(*lineBuf)
	b.out = true
	bufsLive.Add(1)
	return b
}

// putBuf returns a buffer to the pool. Double puts panic (see the file
// comment); oversized buffers are dropped so the pool stays small.
func putBuf(b *lineBuf) {
	if !b.out {
		panic("service: render buffer returned to the pool twice")
	}
	b.out = false
	bufsLive.Add(-1)
	if b.buf.Cap() > maxPooledBuf {
		return
	}
	b.buf.Reset()
	bufPool.Put(b)
}
