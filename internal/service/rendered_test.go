package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/fixpoint"
)

// unpooledFixpointBody renders the reference NDJSON body for a
// fixpoint query without any of the service's pooled machinery: a
// fresh fixpoint run, plain json.Marshal per line. Every serving tier
// is locked against this rendering.
func unpooledFixpointBody(t *testing.T, problem string, maxSteps, maxStates int) []byte {
	t.Helper()
	if maxSteps == 0 {
		maxSteps = fixpoint.DefaultMaxSteps
	}
	p, err := parseProblem(problem)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, "")
	res, err := fixpoint.Run(p, fixpoint.Options{
		MaxSteps: maxSteps,
		Core:     e.coreOpts(maxStates),
		Memo:     fixpoint.NewMapMemo(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var body []byte
	for i, q := range res.Trajectory {
		data, err := json.Marshal(FixpointEntry{Index: i, Problem: viewOf(q)})
		if err != nil {
			t.Fatal(err)
		}
		body = append(append(body, data...), '\n')
	}
	data, err := json.Marshal(classificationOf(res))
	if err != nil {
		t.Fatal(err)
	}
	return append(append(body, data...), '\n')
}

// fixpointBody collects one Fixpoint response through the sink
// interface.
func fixpointBody(t *testing.T, e *Engine, req FixpointRequest) []byte {
	t.Helper()
	var body []byte
	err := e.Fixpoint(context.Background(), req, func(chunk []byte) error {
		body = append(body, chunk...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRenderedTierByteIdentity walks one query through every serving
// tier — cold stream, rendered store record (fresh engine), in-process
// rendered memo, rendered pack record — and locks each body against
// the unpooled reference rendering.
func TestRenderedTierByteIdentity(t *testing.T) {
	ref := unpooledFixpointBody(t, orientationText(), 0, 0)
	req := FixpointRequest{Problem: orientationText()}
	dir := filepath.Join(t.TempDir(), "results")

	e1 := newEngine(t, dir)
	if cold := fixpointBody(t, e1, req); !bytes.Equal(cold, ref) {
		t.Fatalf("cold body differs from unpooled reference:\n%q\n%q", cold, ref)
	}
	if memo := fixpointBody(t, e1, req); !bytes.Equal(memo, ref) {
		t.Fatal("rendered-memo body differs from unpooled reference")
	}

	// A fresh engine over the same store serves the rendered record.
	m := NewMetrics()
	e2, err := New(Config{StoreDir: dir, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e2.Close() })
	if rec := fixpointBody(t, e2, req); !bytes.Equal(rec, ref) {
		t.Fatal("rendered-record body differs from unpooled reference")
	}
	if row := tierStat(t, m, e2, "rendered"); row.Hits == 0 {
		t.Fatalf("rendered tier = %+v, want a record hit", row)
	}

	// A pack built from the store serves its rendered section.
	e3, m3, _ := servePack(t, "", packOf(t, dir))
	if packed := fixpointBody(t, e3, req); !bytes.Equal(packed, ref) {
		t.Fatal("pack-rendered body differs from unpooled reference")
	}
	if row := tierStat(t, m3, e3, "rendered"); row.Hits == 0 {
		t.Fatalf("pack rendered tier = %+v, want a hit", row)
	}
}

// TestWarmFixpointContentLength: a warm fixpoint reply is fully
// buffered, so it carries an exact Content-Length — and the same bytes
// the cold stream produced.
func TestWarmFixpointContentLength(t *testing.T) {
	_, srv := serve(t, "")
	status, cold := post(t, srv.URL, "/v1/fixpoint", FixpointRequest{Problem: orientationText()})
	if status != http.StatusOK {
		t.Fatalf("cold status %d: %s", status, cold)
	}
	body, err := json.Marshal(FixpointRequest{Problem: orientationText()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/fixpoint", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	warm := new(bytes.Buffer)
	if _, err := warm.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm.Bytes(), cold) {
		t.Fatal("warm buffered body differs from cold streamed body")
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(warm.Len()) {
		t.Fatalf("warm reply Content-Length = %q, body is %d bytes", got, warm.Len())
	}
}

// TestConcurrentPooledByteIdentity is the pooling safety lock, meant
// for -race: 8 clients hammer the engine concurrently with a mix of
// distinct queries — cold on first touch, memo-warm after — and every
// body must match the unpooled reference byte-for-byte. A pooled
// buffer escaping into a response (or a double put handing one buffer
// to two renders) shows up here as a body mismatch or a race report.
func TestConcurrentPooledByteIdentity(t *testing.T) {
	reqs := []FixpointRequest{
		{Problem: orientationText()},
		{Problem: sinklessText},
		{Problem: sinklessText, MaxSteps: 1},
	}
	refs := make([][]byte, len(reqs))
	for i, req := range reqs {
		refs[i] = unpooledFixpointBody(t, req.Problem, req.MaxSteps, req.MaxStates)
	}

	e := newEngine(t, "")
	const clients, rounds = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(reqs)
				var body []byte
				err := e.Fixpoint(context.Background(), reqs[i], func(chunk []byte) error {
					body = append(body, chunk...)
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(body, refs[i]) {
					errs <- fmt.Errorf("client %d round %d: body differs from unpooled reference", c, r)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBufferPoolBalance: every buffer drawn during warm and cold
// serving is returned (the live counter settles back to its starting
// point), and returning one twice panics instead of corrupting a later
// render.
func TestBufferPoolBalance(t *testing.T) {
	before := bufsLive.Load()
	e := newEngine(t, "")
	req := FixpointRequest{Problem: orientationText()}
	fixpointBody(t, e, req) // cold
	fixpointBody(t, e, req) // rendered memo
	if after := bufsLive.Load(); after != before {
		t.Fatalf("live pooled buffers: %d before, %d after serving", before, after)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double put did not panic")
		}
	}()
	b := getBuf()
	putBuf(b)
	putBuf(b)
}

// TestCorruptRenderedDegrades: damaging only the rendered record
// leaves the query byte-identical — the engine re-renders from the
// trajectory record — and surfaces the damage as a "rendered" corrupt
// outcome.
func TestCorruptRenderedDegrades(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	e1 := newEngine(t, dir)
	req := FixpointRequest{Problem: orientationText()}
	cold := fixpointBody(t, e1, req)

	rendered, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.rendered"))
	if err != nil || len(rendered) == 0 {
		t.Fatalf("no rendered records committed: %v (%v)", rendered, err)
	}
	for _, path := range rendered {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	m := NewMetrics()
	e2, err := New(Config{StoreDir: dir, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e2.Close() })
	if got := fixpointBody(t, e2, req); !bytes.Equal(got, cold) {
		t.Fatal("body over a corrupt rendered record differs from the cold body")
	}
	row := tierStat(t, m, e2, "rendered")
	if row.Corrupt == 0 {
		t.Fatalf("rendered tier = %+v, want a corrupt outcome", row)
	}
	if st := tierStat(t, m, e2, "trajectory"); st.Hits == 0 {
		t.Fatalf("trajectory tier = %+v, want the re-render hit", st)
	}
}

// TestRenderedMemoEviction: the epoch eviction keeps the memo bounded
// and keeps serving byte-identical bodies across the clear.
func TestRenderedMemoEviction(t *testing.T) {
	e := newEngine(t, "")
	req := FixpointRequest{Problem: orientationText()}
	want := fixpointBody(t, e, req)
	e.renderedMu.Lock()
	for i := 0; i < maxRenderedMemo; i++ {
		e.rendered[renderedKey{problem: fmt.Sprintf("synthetic-%d", i)}] = nil
	}
	e.renderedMu.Unlock()
	e.memoizeRendered(renderedKey{problem: "one-more"}, []byte("x"))
	e.renderedMu.RLock()
	size := len(e.rendered)
	e.renderedMu.RUnlock()
	if size > 1 {
		t.Fatalf("memo holds %d entries after overflow clear, want 1", size)
	}
	if got := fixpointBody(t, e, req); !bytes.Equal(got, want) {
		t.Fatal("post-eviction body differs (memory trajectory cache should refill the memo)")
	}
}
