package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// releaser returns a close-once wrapper around a channel, so failure
// paths can release a blocked step hook from both defers and the happy
// path without a double-close panic.
func releaser(ch chan struct{}) func() {
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// parseMetrics reads a Prometheus text body into a value-by-series
// map, keyed by the full series string ("name{labels}").
func parseMetrics(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparsable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		out[series] = v
	}
	return out
}

// TestMetricsObserveDedupAndWarmth is the observability acceptance
// lock: N concurrent identical fixpoint queries against a cold store
// record a nonzero singleflight dedup ratio, a warm burst records
// store hits, /metrics and /v1/stats report both — and every success
// body stays byte-identical to an unobserved cold engine's, proving
// metrics never enter response bodies.
func TestMetricsObserveDedupAndWarmth(t *testing.T) {
	// Reference: an unobserved engine in its own store.
	_, refSrv := serve(t, filepath.Join(t.TempDir(), "ref"))
	refStatus, refBody := post(t, refSrv.URL, "/v1/fixpoint", FixpointRequest{Problem: orientationText()})
	if refStatus != http.StatusOK {
		t.Fatalf("reference: status %d: %s", refStatus, refBody)
	}

	m := NewMetrics()
	e, err := New(Config{StoreDir: filepath.Join(t.TempDir(), "results"), Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	srv := httptest.NewServer(Routes(e, m))
	t.Cleanup(srv.Close)

	// Hold the leader's computation at trajectory entry 0 until every
	// client has subscribed, so follower counts are deterministic.
	const clients = 8
	release := make(chan struct{})
	releaseOnce := releaser(release)
	defer releaseOnce()
	var hookOnce sync.Once
	e.stepHook = func(index int) {
		if index == 0 {
			hookOnce.Do(func() { <-release })
		}
	}
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if m.flightLeaders.Value()+m.flightFollowers.Value() >= clients {
				break
			}
			time.Sleep(time.Millisecond)
		}
		releaseOnce()
	}()

	run := func() [][]byte {
		bodies := make([][]byte, clients)
		var wg sync.WaitGroup
		for i := range clients {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, _ := json.Marshal(FixpointRequest{Problem: orientationText()})
				resp, err := http.Post(srv.URL+"/v1/fixpoint", "application/json", bytes.NewReader(req))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				bodies[i], _ = io.ReadAll(resp.Body)
			}()
		}
		wg.Wait()
		return bodies
	}
	cold := run()
	warm := run()
	for i := range clients {
		if !bytes.Equal(cold[i], refBody) {
			t.Fatalf("cold client %d body differs from the unobserved reference", i)
		}
		if !bytes.Equal(warm[i], refBody) {
			t.Fatalf("warm client %d body differs from the unobserved reference", i)
		}
	}

	// /metrics: Prometheus text with nonzero dedup and trajectory hits.
	status, metricsBody := get(t, srv.URL, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	series := parseMetrics(t, metricsBody)
	if got := series[`re_singleflight_requests_total{role="follower"}`]; got <= 0 {
		t.Fatalf("follower count = %v, want > 0 (no in-flight dedup observed)", got)
	}
	if got := series[`re_warm_lookups_total{tier="rendered",outcome="hit"}`]; got < clients {
		t.Fatalf("rendered hits = %v, want >= %d (warm burst not observed)", got, clients)
	}
	if got := series[`re_gate_capacity`]; got < 1 {
		t.Fatalf("gate capacity = %v, want >= 1", got)
	}

	// /v1/stats: the JSON snapshot agrees.
	status, statsBody := get(t, srv.URL, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", status)
	}
	var stats Stats
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Singleflight.DedupRatio <= 0 {
		t.Fatalf("stats dedup ratio = %v, want > 0", stats.Singleflight.DedupRatio)
	}
	var renderedHits int64
	for _, s := range stats.Store {
		if s.Tier == "rendered" {
			renderedHits = s.Hits
		}
	}
	if renderedHits < clients {
		t.Fatalf("stats rendered hits = %d, want >= %d", renderedHits, clients)
	}
	if len(stats.Requests) == 0 || stats.Stream.Lines == 0 {
		t.Fatalf("stats missing request counts or stream volume: %s", statsBody)
	}
}

// TestNDJSONFlushesThroughMiddleware is the streaming regression lock:
// a trajectory line must reach the client while the computation is
// still mid-flight, through the full production middleware chain
// (request log + instrument + timeout wrappers). A wrapper that hid
// http.Flusher would buffer the whole stream and deadlock this test's
// first read.
func TestNDJSONFlushesThroughMiddleware(t *testing.T) {
	m := NewMetrics()
	e, err := New(Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	release := make(chan struct{})
	releaseOnce := releaser(release)
	var hookOnce sync.Once
	e.stepHook = func(index int) {
		if index == 0 {
			hookOnce.Do(func() { <-release })
		}
	}
	// The exact chain cmd/serve mounts with -v and -request-timeout.
	handler := LogRequests(WithRequestTimeout(time.Minute, Routes(e, m)), io.Discard)
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	defer releaseOnce()

	req, _ := json.Marshal(FixpointRequest{Problem: orientationText()})
	resp, err := http.Post(srv.URL+"/v1/fixpoint", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	br := bufio.NewReader(resp.Body)
	lineCh := make(chan []byte, 1)
	errCh := make(chan error, 1)
	go func() {
		line, err := br.ReadBytes('\n')
		if err != nil {
			errCh <- err
			return
		}
		lineCh <- line
	}()
	var first []byte
	select {
	case first = <-lineCh:
	case err := <-errCh:
		t.Fatalf("reading first line: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("first NDJSON line never arrived while the computation was blocked: a middleware wrapper is not passing Flush through")
	}
	var entry FixpointEntry
	if err := json.Unmarshal(first, &entry); err != nil || entry.Index != 0 {
		t.Fatalf("first line %q is not trajectory entry 0 (%v)", first, err)
	}

	releaseOnce()
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(rest, []byte("\n")), []byte("\n"))
	var cls FixpointClassification
	if err := json.Unmarshal(lines[len(lines)-1], &cls); err != nil || cls.Classification == "" {
		t.Fatalf("stream did not end in a classification line: %q (%v)", lines[len(lines)-1], err)
	}
}

// TestMidStreamErrorLine: a failure after streaming began (here:
// engine shutdown mid-trajectory) must reach the client as a final,
// well-formed `{"error": ...}` NDJSON line — the 200 header is already
// on the wire, so the status cannot carry it.
func TestMidStreamErrorLine(t *testing.T) {
	e, srv := serve(t, filepath.Join(t.TempDir(), "results"))
	e.stepHook = func(index int) {
		if index == 1 {
			_ = e.Close()
		}
	}
	status, body := post(t, srv.URL, "/v1/fixpoint", FixpointRequest{Problem: orientationText()})
	if status != http.StatusOK {
		t.Fatalf("status %d (the stream had started; the failure must not change it)", status)
	}
	lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("got %d lines, want streamed entries plus an error line", len(lines))
	}
	for i, line := range lines[:len(lines)-1] {
		var entry FixpointEntry
		if err := json.Unmarshal(line, &entry); err != nil {
			t.Fatalf("line %d is not a trajectory entry: %q", i, line)
		}
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &envelope); err != nil {
		t.Fatalf("final line is not well-formed JSON: %q (%v)", lines[len(lines)-1], err)
	}
	if envelope.Error == "" {
		t.Fatalf("final line carries no error: %q", lines[len(lines)-1])
	}
}

// TestClientDisconnectCancelsComputation: when the last subscriber of
// an in-flight fixpoint departs, the call leaves the flight table, the
// computation is cancelled before committing a result, no goroutine
// leaks — and a retry completes byte-identically from the memoized
// steps.
func TestClientDisconnectCancelsComputation(t *testing.T) {
	e := newEngine(t, "")
	entered := make(chan struct{})
	release := make(chan struct{})
	releaseOnce := releaser(release)
	defer releaseOnce()
	var hookOnce sync.Once
	e.stepHook = func(index int) {
		if index == 0 {
			hookOnce.Do(func() {
				close(entered)
				<-release
			})
		}
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	req := FixpointRequest{Problem: orientationText()}
	go func() {
		errc <- e.Fixpoint(ctx, req, nil)
	}()
	<-entered
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("disconnected subscriber got %v, want context.Canceled", err)
	}

	// The abandoned call must leave the flight table immediately, so a
	// fresh identical query starts a fresh call.
	deadline := time.Now().Add(10 * time.Second)
	for {
		e.mu.Lock()
		n := len(e.flight)
		e.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned call never left the flight table")
		}
		time.Sleep(time.Millisecond)
	}

	// Release the blocked computation: it must observe its cancelled
	// context at the next step boundary, exit without committing a
	// trajectory, and leave no goroutine behind.
	releaseOnce()
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d before, %d now", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
	e.mu.Lock()
	trajectories := len(e.trajCache)
	e.mu.Unlock()
	if trajectories != 0 {
		t.Fatal("abandoned computation committed a trajectory; it was not cancelled")
	}

	// Retry: resumes from the memoized steps, byte-identical to an
	// undisturbed engine.
	e.stepHook = nil
	var retry bytes.Buffer
	if err := e.Fixpoint(context.Background(), req, func(line []byte) error {
		_, err := retry.Write(line)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, "")
	var want bytes.Buffer
	if err := ref.Fixpoint(context.Background(), req, func(line []byte) error {
		_, err := want.Write(line)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(retry.Bytes(), want.Bytes()) {
		t.Fatal("retry after abandonment is not byte-identical to the reference")
	}
}

// TestDoubleCloseIdempotent: Close is safe to call twice sequentially
// and many times concurrently — the cmd/serve grace-expiry path closes
// an engine that a deferred Close will close again.
func TestDoubleCloseIdempotent(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Close()
		}()
	}
	wg.Wait()
}

// TestRequestTimeoutStatus: a deadline-exceeded failure before any
// byte is written maps to 504.
func TestRequestTimeoutStatus(t *testing.T) {
	if got := StatusOf(context.DeadlineExceeded); got != http.StatusGatewayTimeout {
		t.Fatalf("StatusOf(DeadlineExceeded) = %d, want 504", got)
	}
	if got := StatusOf(fmt.Errorf("wrapped: %w", context.DeadlineExceeded)); got != http.StatusGatewayTimeout {
		t.Fatalf("StatusOf(wrapped DeadlineExceeded) = %d, want 504", got)
	}
}

// TestRequestTimeoutMidStreamResumes: a request that overruns its
// -request-timeout budget mid-stream ends with an error NDJSON line,
// and a retry without the budget completes byte-identically — the
// timed-out run's steps were already checkpointed.
func TestRequestTimeoutMidStreamResumes(t *testing.T) {
	m := NewMetrics()
	e, err := New(Config{StoreDir: filepath.Join(t.TempDir(), "results"), Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	release := make(chan struct{})
	releaseOnce := releaser(release)
	var hookOnce sync.Once
	e.stepHook = func(index int) {
		if index == 1 {
			hookOnce.Do(func() { <-release })
		}
	}
	timed := httptest.NewServer(WithRequestTimeout(250*time.Millisecond, Routes(e, m)))
	t.Cleanup(timed.Close)
	defer releaseOnce()

	req := FixpointRequest{Problem: orientationText()}
	status, body := post(t, timed.URL, "/v1/fixpoint", req)
	if status != http.StatusOK {
		t.Fatalf("status %d (streaming had started before the deadline)", status)
	}
	lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("final line %q is not an error line (%v)", lines[len(lines)-1], err)
	}
	if !strings.Contains(envelope.Error, "deadline") {
		t.Fatalf("error %q does not report the deadline", envelope.Error)
	}

	// Unblock the abandoned computation, then retry with no budget.
	releaseOnce()
	plain := httptest.NewServer(Routes(e, m))
	t.Cleanup(plain.Close)
	retryStatus, retryBody := post(t, plain.URL, "/v1/fixpoint", req)
	if retryStatus != http.StatusOK {
		t.Fatalf("retry status %d: %s", retryStatus, retryBody)
	}
	_, refSrv := serve(t, filepath.Join(t.TempDir(), "ref"))
	refStatus, refBody := post(t, refSrv.URL, "/v1/fixpoint", req)
	if refStatus != http.StatusOK {
		t.Fatalf("reference status %d", refStatus)
	}
	if !bytes.Equal(retryBody, refBody) {
		t.Fatal("retry after timeout is not byte-identical to the reference")
	}
	// The streamed prefix before the error line must match the
	// reference stream.
	prefix := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	if len(prefix) > 0 && !bytes.HasPrefix(refBody, append(prefix, '\n')) {
		t.Fatal("timed-out stream is not a prefix of the reference stream")
	}
}
