// Package service is the round-elimination query engine behind the
// HTTP daemon (cmd/serve) and the thin command-line clients: it turns
// the repository's batch machinery — the speedup engine (internal/core),
// the iterated fixpoint driver (internal/fixpoint), the brute-force
// solvability oracle (internal/oracle) and the persistent result store
// (internal/store) — into a long-running concurrent service.
//
// Every query is keyed by the stable fingerprint of its exact input
// representation (core.StableKey) plus its budget parameters, which
// buys the two properties the whole layer is built around:
//
//   - In-flight deduplication: identical queries arriving concurrently
//     share one computation (a singleflight keyed by the stable key).
//     Late arrivals subscribe to the computation in progress — for the
//     streaming fixpoint endpoint they receive the NDJSON lines already
//     produced and then follow along live.
//   - Warm serving: finished results are committed to the persistent
//     result store (speedup steps, classified trajectories, rendered
//     verdicts) and replayed from it in microseconds. Because every
//     response is rendered from canonical problem serializations and
//     deterministic structs, a warm response is byte-identical to the
//     cold response — the same contract cmd/sweep relies on for its
//     resume-after-kill reports. A preloaded pack artifact (Config.Pack,
//     built by cmd/sweep -pack) adds a read-only warm tier consulted
//     before the store, with the same byte-identity guarantee.
//
// Admission control: actual engine computations (speedup enumeration,
// fixpoint iteration, oracle search) pass through a par.Gate bounding
// how many run concurrently; warm store reads bypass the gate. An
// unbounded request stream therefore queues instead of launching an
// unbounded number of enumerations. A computation whose every
// subscriber has departed (disconnect, timeout) is cancelled at its
// next step boundary — its completed steps are already memoized, so a
// retried query resumes byte-identically instead of recomputing.
//
// Observability: with Config.Metrics attached, the engine counts
// singleflight leaders/followers, warm-tier hit/miss/corrupt outcomes
// per record tier (a corrupt record degrades to recomputation, never a
// failed query), and gate queue depth/wait time (via par.GateObserver). The
// instruments feed GET /metrics and GET /v1/stats exclusively —
// nothing in response rendering reads them, which is how the
// byte-identity contract survives instrumentation.
//
// Shutdown: Close cancels the engine's run context. In-flight fixpoint
// iterations stop at the next step boundary, but every step they
// completed has already been committed to the store's step memo — so a
// restarted service replays those steps as cache hits and answers the
// interrupted query byte-identically to an uninterrupted run. This is
// cmd/sweep's kill -9 checkpoint contract, applied to a daemon.
//
// Without a store directory the engine runs memory-only: the same
// deduplication and byte-identity hold, with warmth scoped to the
// process lifetime (and memory growing with the set of distinct queries
// served — give a long-running daemon a store).
package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/par"
	"repro/internal/store"
)

// Config tunes an Engine.
type Config struct {
	// StoreDir is the persistent result store directory; empty selects
	// memory-only operation.
	StoreDir string
	// Workers is the core.WithWorkers count used inside each engine
	// computation (0 = GOMAXPROCS).
	Workers int
	// MaxInflight bounds how many engine computations run concurrently
	// (the par.Gate admission budget); 0 = GOMAXPROCS.
	MaxInflight int
	// Pack, when non-nil, is a preloaded warm-cache artifact
	// (store.OpenPack) consulted before the JSON store and before
	// computing cold. The engine takes ownership: Close releases it.
	// Pack-served replies are byte-identical to store-served and cold
	// replies — the pack holds the same canonical payloads under the
	// same keys.
	Pack *store.PackReader
	// Metrics, when non-nil, receives the engine's singleflight,
	// warm-lookup and admission-gate instrumentation. Metrics are
	// observational only: no response byte ever depends on them.
	Metrics *Metrics
	// Peers, when non-nil, joins the engine to a static cluster: record
	// lookups that miss every local tier ask the key's ring owner
	// before computing cold, and the peer protocol endpoints are
	// mounted so other members can do the same (see PeerConfig).
	Peers *PeerConfig
}

// Engine answers speedup, fixpoint, verify and catalog queries with
// in-flight deduplication and store-backed warm serving. Create one
// with New; an Engine is safe for concurrent use by any number of
// request goroutines.
type Engine struct {
	st      *store.Store      // nil = memory-only
	pk      *store.PackReader // nil = no preloaded pack tier
	gate    *par.Gate
	workers int
	metrics *Metrics  // nil = unobserved
	peers   *peerTier // nil = solo (no cluster)

	runCtx    context.Context
	stop      context.CancelFunc
	closeOnce sync.Once

	mu           sync.Mutex
	stepMemos    map[int]fixpoint.Memo          // memory mode: budget → step memo
	halves       map[string]*core.Problem       // half-step cache (no store record kind)
	trajCache    map[string]*fixpoint.Result    // memory mode: trajectory warm cache
	verdictCache map[store.VerdictParams][]byte // memory mode: rendered verdict warm cache
	flight       map[string]*call

	// rendered memoizes complete fixpoint response bodies by exact raw
	// request text — the hottest warm tier, consulted before parsing.
	// Guarded by its own lock so rendered hits never contend with the
	// flight table or the memory-mode caches.
	renderedMu sync.RWMutex
	rendered   map[renderedKey][]byte

	// stepHook, when non-nil, fires synchronously after each fixpoint
	// trajectory entry is emitted. Test seam: shutdown tests use it to
	// close the engine at a deterministic point mid-trajectory.
	stepHook func(index int)
}

// New opens the store (when configured) and returns a ready engine.
func New(cfg Config) (*Engine, error) {
	e := &Engine{
		workers:      cfg.Workers,
		pk:           cfg.Pack,
		gate:         par.NewGate(cfg.MaxInflight),
		metrics:      cfg.Metrics,
		stepMemos:    make(map[int]fixpoint.Memo),
		halves:       make(map[string]*core.Problem),
		trajCache:    make(map[string]*fixpoint.Result),
		verdictCache: make(map[store.VerdictParams][]byte),
		flight:       make(map[string]*call),
		rendered:     make(map[renderedKey][]byte),
	}
	e.metrics.observeGate(e.gate)
	if cfg.Peers != nil {
		pt, err := newPeerTier(cfg.Peers)
		if err != nil {
			return nil, err
		}
		e.peers = pt
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		e.st = st
	}
	e.runCtx, e.stop = context.WithCancel(context.Background())
	return e, nil
}

// Store returns the engine's persistent store handle, nil in
// memory-only mode.
func (e *Engine) Store() *store.Store { return e.st }

// Close cancels the engine's run context and releases the preloaded
// pack (when one is attached): computations in flight stop at their
// next step boundary (their completed steps remain committed to the
// store), and subsequent queries fail with ErrClosed. Close is
// idempotent — only the first call does anything, and any shutdown
// error is reported exactly once (later calls return nil), so a
// deferred Close racing an explicit shutdown-path Close (the cmd/serve
// grace-expiry sequence) is safe. Pack lookups racing Close degrade to
// misses — a request still rendering after shutdown recomputes instead
// of touching released memory.
func (e *Engine) Close() error {
	var err error
	e.closeOnce.Do(func() {
		e.stop()
		if e.pk != nil {
			err = e.pk.Close()
		}
	})
	return err
}

// ErrClosed reports a query issued against a closed (shutting-down)
// engine; the HTTP layer maps it to 503.
var ErrClosed = fmt.Errorf("service: engine is shutting down")

// coreOpts assembles the per-computation core options from the engine
// configuration and a request's state budget.
func (e *Engine) coreOpts(maxStates int) []core.Option {
	opts := []core.Option{core.WithWorkers(e.workers)}
	if maxStates > 0 {
		opts = append(opts, core.WithMaxStates(maxStates))
	}
	return opts
}

// stepMemo returns the budget-scoped speedup-step memo chain: the
// preloaded pack first (when attached), then the store-backed tier or a
// per-budget in-memory map, then — for a clustered engine — the step's
// ring owner (peerStepMemo), each with outcome accounting when metrics
// are attached. Stores always land in the local writable tier.
func (e *Engine) stepMemo(maxStates int) fixpoint.Memo {
	var m fixpoint.Memo
	if e.st != nil {
		m = storeStepMemo{e: e, maxStates: maxStates}
	} else {
		e.mu.Lock()
		mm, ok := e.stepMemos[maxStates]
		if !ok {
			mm = fixpoint.NewMapMemo()
			e.stepMemos[maxStates] = mm
		}
		e.mu.Unlock()
		m = mm
		if e.metrics != nil {
			m = observedMemo{inner: mm, metrics: e.metrics}
		}
	}
	if e.peers != nil {
		m = peerStepMemo{e: e, maxStates: maxStates, inner: m}
	}
	if e.pk != nil {
		m = packStepMemo{e: e, maxStates: maxStates, inner: m}
	}
	return m
}

// storeStepMemo adapts the store's budget-scoped step records to
// fixpoint.Memo with corrupt-aware outcome accounting: a record that
// fails validation (checksum, truncation, version) degrades to a miss
// on the serve path — the step is recomputed byte-identically — and
// surfaces only as a "corrupt" warm-lookup outcome.
type storeStepMemo struct {
	e         *Engine
	maxStates int
}

// LookupStep counts the lookup outcome and degrades validation
// failures to misses.
func (m storeStepMemo) LookupStep(in *core.Problem) (*core.Problem, bool) {
	out, ok, err := m.e.st.GetStep(in, m.maxStates)
	m.e.metrics.warmLookup("step", warmOutcome(ok, err))
	if !ok || err != nil {
		return nil, false
	}
	return out, true
}

// StoreStep commits the step record; write failures are dropped (a
// damaged store slows runs down, never fails them).
func (m storeStepMemo) StoreStep(in, out *core.Problem) {
	_ = m.e.st.PutStep(in, out, m.maxStates)
}

// packStepMemo consults the preloaded pack before the inner tier. Pack
// hits never reach the inner memo; misses (including validation
// failures, counted "corrupt") fall through. Stores bypass the
// read-only pack entirely.
type packStepMemo struct {
	e         *Engine
	maxStates int
	inner     fixpoint.Memo
}

// LookupStep tries the pack, counts its outcome, and falls through to
// the inner tier on anything but a hit.
func (m packStepMemo) LookupStep(in *core.Problem) (*core.Problem, bool) {
	out, ok, err := m.e.pk.GetStep(in, m.maxStates)
	m.e.metrics.warmLookup("pack", warmOutcome(ok, err))
	if ok {
		return out, true
	}
	return m.inner.LookupStep(in)
}

// StoreStep delegates to the writable inner tier.
func (m packStepMemo) StoreStep(in, out *core.Problem) { m.inner.StoreStep(in, out) }

// observedMemo wraps a step memo with warm-tier hit/miss accounting.
// Lookups and stores pass through untouched — observation can never
// change what a memo returns.
type observedMemo struct {
	inner   fixpoint.Memo
	metrics *Metrics
}

// LookupStep counts the lookup outcome and delegates.
func (o observedMemo) LookupStep(in *core.Problem) (*core.Problem, bool) {
	out, ok := o.inner.LookupStep(in)
	o.metrics.warmLookup("step", warmOutcome(ok, nil))
	return out, ok
}

// StoreStep delegates.
func (o observedMemo) StoreStep(in, out *core.Problem) { o.inner.StoreStep(in, out) }

// enter acquires an engine-computation slot, failing with ErrClosed
// once the engine is shutting down.
func (e *Engine) enter() error {
	if !e.gate.Enter(e.runCtx) {
		return ErrClosed
	}
	return nil
}

// call is one deduplicated computation in flight: subscribers stream
// its finalized chunks as they appear and collect its final value. The
// call carries its computation context (derived from the engine's run
// context): when the last subscriber departs before the computation
// finishes, the call is detached from the flight table and its context
// cancelled, so an abandoned fixpoint stops at its next step boundary
// instead of burning the gate slot for nobody — with every completed
// step already memoized, a retry resumes byte-identically.
type call struct {
	ctx    context.Context    // computation context: engine run ctx + abandonment
	cancel context.CancelFunc // cancels ctx; idempotent
	mu     sync.Mutex
	wake   chan struct{} // closed and replaced on every state change
	chunks [][]byte      // finalized stream chunks, in emission order
	done   bool
	val    any
	err    error

	subs      int    // live subscribers
	abandoned bool   // the abandon path already ran
	abandon   func() // detaches the call and cancels its context
}

func newCall() *call {
	return &call{wake: make(chan struct{})}
}

// emit appends one finalized chunk and wakes subscribers.
func (c *call) emit(chunk []byte) {
	c.mu.Lock()
	c.chunks = append(c.chunks, chunk)
	close(c.wake)
	c.wake = make(chan struct{})
	c.mu.Unlock()
}

// finish publishes the final value and wakes subscribers for the last
// time.
func (c *call) finish(val any, err error) {
	c.mu.Lock()
	c.val, c.err, c.done = val, err, true
	close(c.wake)
	c.mu.Unlock()
}

// follow streams the call's chunks through sink (when non-nil) as they
// finalize and returns the final value. It honors ctx for the waiting
// subscriber without affecting the computation — unless this was the
// last subscriber, in which case departing abandons the call (see
// call). A subscriber that leaves early (disconnect, timeout) returns
// its ctx error; the computation keeps running for the remaining
// subscribers.
func (c *call) follow(ctx context.Context, sink func([]byte) error) (any, error) {
	c.mu.Lock()
	c.subs++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.subs--
		drop := c.subs == 0 && !c.done && !c.abandoned && c.abandon != nil
		if drop {
			c.abandoned = true
		}
		c.mu.Unlock()
		if drop {
			c.abandon()
		}
	}()
	next := 0
	for {
		c.mu.Lock()
		chunks, done, val, err := c.chunks[next:], c.done, c.val, c.err
		wake := c.wake
		c.mu.Unlock()
		next += len(chunks)
		for _, chunk := range chunks {
			if sink != nil {
				if serr := sink(chunk); serr != nil {
					return nil, serr
				}
			}
		}
		if done {
			return val, err
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// inflight deduplicates computations by key: the first caller (the
// singleflight leader) spawns compute on its own goroutine, and every
// caller — leader included — subscribes via follow. The computation
// outlives any one subscriber, but not all of them: when the last
// subscriber departs before compute finishes, the call is detached
// from the flight table (so a fresh identical query starts a fresh
// call, replaying the memoized prefix) and its context is cancelled,
// stopping the computation at its next step boundary. compute must
// call finish exactly once and may emit chunks before that.
func (e *Engine) inflight(ctx context.Context, key string, sink func([]byte) error, compute func(c *call)) (any, error) {
	e.mu.Lock()
	c, ok := e.flight[key]
	if !ok {
		c = newCall()
		c.ctx, c.cancel = context.WithCancel(e.runCtx)
		c.abandon = func() {
			e.dropCall(key, c)
			c.cancel()
		}
		e.flight[key] = c
		go func() {
			compute(c)
			e.dropCall(key, c)
			c.cancel()
		}()
	}
	e.mu.Unlock()
	e.metrics.flightCall(!ok)
	return c.follow(ctx, sink)
}

// dropCall removes a call from the flight table if it is still the
// call registered under key (abandonment and computation completion
// both drop; a fresh call may already have replaced an abandoned one).
func (e *Engine) dropCall(key string, c *call) {
	e.mu.Lock()
	if e.flight[key] == c {
		delete(e.flight, key)
	}
	e.mu.Unlock()
}
