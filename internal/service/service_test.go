package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/problems"
)

// sinklessText is sinkless coloring at Δ=3 in the human text format —
// the paper's Section 4.4 fixed point, cheap to transform.
const sinklessText = "node:\n0^2 1\nedge:\n0 0\n0 1\n"

// orientationText returns sinkless orientation at Δ=3 in canonical
// form: its fixpoint trajectory takes exactly 2 steps, which the
// interrupt tests rely on.
func orientationText() string {
	return string(problems.SinklessOrientation(3).CanonicalBytes())
}

// newEngine builds an engine (with a store under dir when non-empty)
// and registers its cleanup.
func newEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

// serve starts an httptest server over a fresh engine.
func serve(t *testing.T, dir string) (*Engine, *httptest.Server) {
	t.Helper()
	e := newEngine(t, dir)
	srv := httptest.NewServer(Handler(e))
	t.Cleanup(srv.Close)
	return e, srv
}

// post issues a JSON POST and returns status and body.
func post(t *testing.T, url, path string, req any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// get issues a GET and returns status and body.
func get(t *testing.T, url, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestSpeedupEndpoint: the speedup endpoint computes exactly what the
// core engine computes, for full steps, multiple steps, and the half
// step, and accepts its own canonical output as input.
func TestSpeedupEndpoint(t *testing.T) {
	_, srv := serve(t, "")

	status, body := post(t, srv.URL, "/v1/speedup", SpeedupRequest{Problem: sinklessText, Steps: 2})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp SpeedupResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Derived) != 2 {
		t.Fatalf("got %d derived problems, want 2", len(resp.Derived))
	}
	p := core.MustParse(sinklessText)
	want, err := core.Speedup(p)
	if err != nil {
		t.Fatal(err)
	}
	wantCompact, _ := want.RenameCompact()
	if resp.Derived[0].Canonical != string(wantCompact.CanonicalBytes()) {
		t.Fatal("derived[0] disagrees with core.Speedup + RenameCompact")
	}
	if resp.Input.Key != core.StableKey(p).String() {
		t.Fatal("input key disagrees with core.StableKey")
	}

	// The canonical output round-trips as input, with the same key.
	status, body2 := post(t, srv.URL, "/v1/speedup", SpeedupRequest{Problem: resp.Derived[0].Canonical})
	if status != http.StatusOK {
		t.Fatalf("canonical input: status %d: %s", status, body2)
	}
	var resp2 SpeedupResponse
	if err := json.Unmarshal(body2, &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Input.Key != resp.Derived[0].Key {
		t.Fatal("canonical round trip changed the stable key")
	}

	// Half step.
	status, body3 := post(t, srv.URL, "/v1/speedup", SpeedupRequest{Problem: sinklessText, Half: true})
	if status != http.StatusOK {
		t.Fatalf("half: status %d: %s", status, body3)
	}
	var resp3 SpeedupResponse
	if err := json.Unmarshal(body3, &resp3); err != nil {
		t.Fatal(err)
	}
	half, err := core.HalfStep(p)
	if err != nil {
		t.Fatal(err)
	}
	halfCompact, _ := half.RenameCompact()
	if len(resp3.Derived) != 1 || resp3.Derived[0].Canonical != string(halfCompact.CanonicalBytes()) {
		t.Fatal("half step disagrees with core.HalfStep + RenameCompact")
	}
}

// TestRequestValidation: malformed queries map to 400/404/405, never
// to a computation.
func TestRequestValidation(t *testing.T) {
	_, srv := serve(t, "")
	for _, tc := range []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"bad json", "/v1/speedup", "{", http.StatusBadRequest},
		{"trailing garbage", "/v1/speedup", `{"problem":"x"} extra`, http.StatusBadRequest},
		{"empty problem", "/v1/speedup", `{}`, http.StatusBadRequest},
		{"unparsable problem", "/v1/speedup", `{"problem":"garbage"}`, http.StatusBadRequest},
		{"half with steps", "/v1/speedup", `{"problem":"node:\n0 0\nedge:\n0 0\n","half":true,"steps":2}`, http.StatusBadRequest},
		{"steps beyond cap", "/v1/speedup", fmt.Sprintf(`{"problem":"x","steps":%d}`, MaxRequestSteps+1), http.StatusBadRequest},
		{"negative max states", "/v1/fixpoint", `{"problem":"x","max_states":-1}`, http.StatusBadRequest},
		{"fixpoint steps beyond cap", "/v1/fixpoint", fmt.Sprintf(`{"problem":"x","max_steps":%d}`, MaxRequestSteps+1), http.StatusBadRequest},
		{"verify without problem", "/v1/verify", `{}`, http.StatusBadRequest},
		{"verify unknown problem", "/v1/verify", `{"problem":"no-such-problem"}`, http.StatusNotFound},
		{"verify unknown family", "/v1/verify", `{"problem":"3-coloring/delta=2","family":"nope"}`, http.StatusBadRequest},
		{"verify negative rounds", "/v1/verify", `{"problem":"3-coloring/delta=2","rounds":-1}`, http.StatusBadRequest},
		{"verify rounds beyond cap", "/v1/verify", fmt.Sprintf(`{"problem":"3-coloring/delta=2","rounds":%d}`, MaxVerifyRounds+1), http.StatusBadRequest},
		{"verify n beyond cap", "/v1/verify", fmt.Sprintf(`{"problem":"3-coloring/delta=2","n":%d}`, MaxVerifyN+1), http.StatusBadRequest},
		{"max states beyond cap", "/v1/speedup", fmt.Sprintf(`{"problem":"x","max_states":%d}`, MaxRequestStates+1), http.StatusBadRequest},
		// An oversized body is the client's 413, not a masqueraded
		// 400 "malformed JSON" from the truncated read.
		{"oversized body", "/v1/speedup", fmt.Sprintf(`{"problem":%q}`, strings.Repeat("x", MaxRequestBody)), http.StatusRequestEntityTooLarge},
	} {
		resp, err := http.Post(srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var envelope struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == "" {
			t.Fatalf("%s: body %q is not an error envelope", tc.name, body)
		}
	}

	// Wrong methods are 405.
	if status, _ := get(t, srv.URL, "/v1/speedup"); status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/speedup: status %d, want 405", status)
	}
	resp, err := http.Post(srv.URL+"/v1/catalog", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/catalog: status %d, want 405", resp.StatusCode)
	}
}

// TestFixpointEndpointStreams: the NDJSON stream carries one line per
// trajectory entry plus the classification, agreeing with a direct
// fixpoint.Run.
func TestFixpointEndpointStreams(t *testing.T) {
	_, srv := serve(t, "")
	status, body := post(t, srv.URL, "/v1/fixpoint", FixpointRequest{Problem: sinklessText})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))

	want, err := fixpoint.Run(core.MustParse(sinklessText), fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(want.Trajectory)+1 {
		t.Fatalf("got %d lines, want %d entries + classification", len(lines), len(want.Trajectory))
	}
	for i, line := range lines[:len(lines)-1] {
		var entry FixpointEntry
		if err := json.Unmarshal(line, &entry); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if entry.Index != i || entry.Problem.Canonical != string(want.Trajectory[i].CanonicalBytes()) {
			t.Fatalf("line %d disagrees with fixpoint.Run trajectory", i)
		}
	}
	var cls FixpointClassification
	if err := json.Unmarshal(lines[len(lines)-1], &cls); err != nil {
		t.Fatal(err)
	}
	if cls.Classification != want.Kind.String() || cls.Steps != want.Steps {
		t.Fatalf("classification line %+v disagrees with %v after %d step(s)", cls, want.Kind, want.Steps)
	}
}

// TestVerifyEndpoint: decisions and conformance reports serve the
// cmd/verify JSON schema with the documented status mapping (200
// positive, 409 decided negative).
func TestVerifyEndpoint(t *testing.T) {
	_, srv := serve(t, "")

	// 0-round 3-coloring on cycles is decidedly unsolvable: 409.
	rounds, n := 0, 4
	status, body := post(t, srv.URL, "/v1/verify", VerifyRequest{Problem: "3-coloring/delta=2", Rounds: &rounds, MaxN: &n})
	if status != http.StatusConflict {
		t.Fatalf("unsolvable decision: status %d (%s), want 409", status, body)
	}
	var dec Decision
	if err := json.Unmarshal(body, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Problem != "3-coloring/delta=2" || dec.Family != "cycles" || dec.Verdict == nil || dec.Verdict.Solvable {
		t.Fatalf("decision envelope %s", body)
	}

	// The conformance harness at Δ=2 is cheap and passes: 200 with ok.
	status, body = post(t, srv.URL, "/v1/verify", VerifyRequest{Problem: "3-coloring/delta=2", Conformance: true})
	if status != http.StatusOK {
		t.Fatalf("conformance: status %d (%s), want 200", status, body)
	}
	var rep struct {
		OK     bool `json:"ok"`
		Checks []struct {
			Name string `json:"name"`
		} `json:"checks"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK || len(rep.Checks) == 0 {
		t.Fatalf("conformance report %s", body)
	}
}

// TestCatalogEndpoint: the catalog lists exactly problems.Catalog with
// canonical problem views.
func TestCatalogEndpoint(t *testing.T) {
	_, srv := serve(t, "")
	status, body := get(t, srv.URL, "/v1/catalog")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var resp CatalogResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	entries := problems.Catalog()
	if len(resp.Entries) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(resp.Entries), len(entries))
	}
	for i, e := range resp.Entries {
		if e.Name != entries[i].Name {
			t.Fatalf("entry %d: %q, want %q", i, e.Name, entries[i].Name)
		}
		if e.Problem.Canonical != string(entries[i].Problem.CanonicalBytes()) {
			t.Fatalf("entry %d: canonical text disagrees", i)
		}
		if e.Family != problems.FamilyOf(e.Name) || e.K != problems.KOf(e.Name) {
			t.Fatalf("entry %d: family/k disagree with problems.FamilyOf/KOf", i)
		}
	}
}

// querySet is the fixed battery the byte-identity tests replay: one
// query per endpoint.
func querySet(t *testing.T, url string) map[string][]byte {
	t.Helper()
	bodies := map[string][]byte{}
	record := func(name string, status int, body []byte) {
		if status != http.StatusOK && status != http.StatusConflict {
			t.Fatalf("%s: status %d: %s", name, status, body)
		}
		bodies[name] = body
	}
	status, body := post(t, url, "/v1/speedup", SpeedupRequest{Problem: sinklessText, Steps: 2})
	record("speedup", status, body)
	status, body = post(t, url, "/v1/fixpoint", FixpointRequest{Problem: orientationText()})
	record("fixpoint", status, body)
	rounds, n := 0, 4
	status, body = post(t, url, "/v1/verify", VerifyRequest{Problem: "3-coloring/delta=2", Rounds: &rounds, MaxN: &n})
	record("verify", status, body)
	status, body = get(t, url, "/v1/catalog")
	record("catalog", status, body)
	return bodies
}

// TestColdWarmByteIdentity is the acceptance lock: every endpoint's
// body is byte-identical between a cold store, the warm store in the
// same process, a second process over the same store, a cold rerun in
// a fresh store, and a memory-only engine.
func TestColdWarmByteIdentity(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	_, srvA := serve(t, dir)
	cold := querySet(t, srvA.URL)
	warm := querySet(t, srvA.URL)

	_, srvB := serve(t, dir) // same store, fresh engine: a "restarted daemon"
	restarted := querySet(t, srvB.URL)

	_, srvC := serve(t, filepath.Join(t.TempDir(), "results")) // fresh store: cold again
	recomputed := querySet(t, srvC.URL)

	_, srvD := serve(t, "") // memory-only engine
	memory := querySet(t, srvD.URL)
	memoryWarm := querySet(t, srvD.URL)

	for name, want := range cold {
		for variant, got := range map[string][]byte{
			"warm store":    warm[name],
			"restarted":     restarted[name],
			"recomputed":    recomputed[name],
			"memory":        memory[name],
			"memory re-ask": memoryWarm[name],
		} {
			if !bytes.Equal(want, got) {
				t.Errorf("%s: %s body differs from cold store body", name, variant)
			}
		}
	}
}

// TestConcurrentClientsIdenticalBodies: 8 clients issuing the same
// query against a cold store receive byte-identical bodies (the
// singleflight serves them one computation), and a warm rerun matches.
// Run under -race this also exercises the flight table and the
// streaming subscriber path.
func TestConcurrentClientsIdenticalBodies(t *testing.T) {
	_, srv := serve(t, filepath.Join(t.TempDir(), "results"))
	const clients = 8

	run := func() [][]byte {
		bodies := make([][]byte, clients)
		var wg sync.WaitGroup
		for i := range clients {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, _ := json.Marshal(FixpointRequest{Problem: orientationText()})
				resp, err := http.Post(srv.URL+"/v1/fixpoint", "application/json", bytes.NewReader(req))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				bodies[i], _ = io.ReadAll(resp.Body)
			}()
		}
		wg.Wait()
		return bodies
	}

	coldBodies := run()
	warmBodies := run()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(coldBodies[0], coldBodies[i]) {
			t.Fatalf("cold client %d body differs from client 0", i)
		}
	}
	for i, b := range warmBodies {
		if !bytes.Equal(coldBodies[0], b) {
			t.Fatalf("warm client %d body differs from cold bodies", i)
		}
	}
	if len(coldBodies[0]) == 0 {
		t.Fatal("empty bodies")
	}
}

// TestConcurrentWarmVerify: concurrent clients replaying one cached
// verdict receive identical bodies; under -race this guards the
// shared-slice handling of the verify handler (the cached body must
// never be appended to in place).
func TestConcurrentWarmVerify(t *testing.T) {
	_, srv := serve(t, "")
	rounds, n := 0, 4
	req := VerifyRequest{Problem: "3-coloring/delta=2", Rounds: &rounds, MaxN: &n}
	_, primed := post(t, srv.URL, "/v1/verify", req)

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, _ := json.Marshal(req)
			resp, err := http.Post(srv.URL+"/v1/verify", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(b, primed) {
			t.Fatalf("client %d body differs from primed body", i)
		}
	}
}

// TestGracefulShutdownResume: an engine closed mid-trajectory streams
// a prefix of the reference body plus an ErrClosed failure, leaves its
// completed steps checkpointed in the store, and a fresh engine over
// the same store answers the interrupted query byte-identically to an
// uninterrupted cold run — the service-level kill -9 resume contract.
func TestGracefulShutdownResume(t *testing.T) {
	// Reference: uninterrupted cold run in an independent store.
	refEngine := newEngine(t, filepath.Join(t.TempDir(), "ref"))
	var ref bytes.Buffer
	req := FixpointRequest{Problem: orientationText()}
	if err := refEngine.Fixpoint(context.Background(), req, func(line []byte) error {
		_, err := ref.Write(line)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the step hook closes the engine right after
	// trajectory entry 1 is streamed, so the driver is always stopped
	// at the step-2 boundary (the trajectory needs exactly 2 steps).
	dir := filepath.Join(t.TempDir(), "results")
	e1 := newEngine(t, dir)
	e1.stepHook = func(index int) {
		if index == 1 {
			e1.Close()
		}
	}
	var streamed bytes.Buffer
	err := e1.Fixpoint(context.Background(), req, func(line []byte) error {
		_, werr := streamed.Write(line)
		return werr
	})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("interrupted query returned %v, want ErrClosed", err)
	}
	if streamed.Len() == 0 || !bytes.HasPrefix(ref.Bytes(), streamed.Bytes()) {
		t.Fatal("interrupted stream is not a prefix of the reference stream")
	}
	steps, trajs := countObjects(t, dir)
	if steps == 0 {
		t.Fatal("interrupted run checkpointed no steps")
	}
	if trajs != 0 {
		t.Fatalf("interrupted run committed %d trajectory record(s), want 0", trajs)
	}

	// Resume: a fresh engine over the same store replays the
	// checkpointed steps and completes byte-identically.
	e2 := newEngine(t, dir)
	var resumed bytes.Buffer
	if err := e2.Fixpoint(context.Background(), req, func(line []byte) error {
		_, werr := resumed.Write(line)
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed.Bytes(), ref.Bytes()) {
		t.Fatal("resumed run is not byte-identical to the uninterrupted reference")
	}
	if _, trajs := countObjects(t, dir); trajs != 1 {
		t.Fatal("resumed run did not commit the trajectory record")
	}

	// And the warm replay after resume still matches.
	var replay bytes.Buffer
	if err := e2.Fixpoint(context.Background(), req, func(line []byte) error {
		_, werr := replay.Write(line)
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replay.Bytes(), ref.Bytes()) {
		t.Fatal("warm replay after resume differs")
	}
}

// countObjects tallies the store's step and trajectory records.
func countObjects(t *testing.T, dir string) (steps, trajs int) {
	t.Helper()
	matchesStep, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.step"))
	if err != nil {
		t.Fatal(err)
	}
	matchesTraj, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.traj"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matchesStep), len(matchesTraj)
}

// TestClosedEngineRefusesQueries: queries after Close fail fast with
// ErrClosed (503), they do not hang on the admission gate.
func TestClosedEngineRefusesQueries(t *testing.T) {
	e := newEngine(t, "")
	e.Close()
	_, err := e.Speedup(context.Background(), SpeedupRequest{Problem: sinklessText})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if got := StatusOf(err); got != http.StatusServiceUnavailable {
		t.Fatalf("StatusOf(ErrClosed) = %d, want 503", got)
	}
}
