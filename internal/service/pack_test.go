package service

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// packOf packs the store under dir into a fresh artifact and opens it.
func packOf(t *testing.T, dir string) *store.PackReader {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.repack")
	if _, err := st.Pack(path); err != nil {
		t.Fatal(err)
	}
	pr, err := store.OpenPack(path)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// servePack starts a server whose engine preloads pr. The engine owns
// pr (Close releases it).
func servePack(t *testing.T, dir string, pr *store.PackReader) (*Engine, *Metrics, *httptest.Server) {
	t.Helper()
	m := NewMetrics()
	e, err := New(Config{StoreDir: dir, Pack: pr, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	srv := httptest.NewServer(Handler(e))
	t.Cleanup(srv.Close)
	return e, m, srv
}

// tierStat returns the named tier's row from the stats snapshot.
func tierStat(t *testing.T, m *Metrics, e *Engine, tier string) StoreStat {
	t.Helper()
	for _, row := range m.Stats(e).Store {
		if row.Tier == tier {
			return row
		}
	}
	t.Fatalf("tier %q missing from stats", tier)
	return StoreStat{}
}

// TestPackServedByteIdentity is the preload acceptance lock: an engine
// given only a pack artifact (its store directory fresh and empty)
// answers the full query battery byte-identically to the cold run that
// built the pack, entirely from the pack tier — zero object files are
// read or written, every pack lookup hits, and the store tiers are
// never consulted.
func TestPackServedByteIdentity(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	_, srvA := serve(t, dir)
	cold := querySet(t, srvA.URL)

	fresh := filepath.Join(t.TempDir(), "results")
	e, m, srv := servePack(t, fresh, packOf(t, dir))
	packed := querySet(t, srv.URL)
	for name, want := range cold {
		if !bytes.Equal(want, packed[name]) {
			t.Errorf("%s: pack-served body differs from cold body", name)
		}
	}

	// The pack answered everything: no object files materialized...
	objects, err := filepath.Glob(filepath.Join(fresh, "objects", "*", "*.*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objects) != 0 {
		t.Fatalf("pack-served queries touched objects/: %v", objects)
	}
	// ...every pack lookup hit, and no lower warm tier was consulted.
	pack := tierStat(t, m, e, "pack")
	if pack.Hits == 0 || pack.Misses != 0 || pack.Corrupt != 0 {
		t.Fatalf("pack tier = %+v, want only hits", pack)
	}
	for _, tier := range []string{"step", "trajectory", "verdict"} {
		if row := tierStat(t, m, e, tier); row.Hits+row.Misses+row.Corrupt != 0 {
			t.Fatalf("tier %q consulted behind a fully-warm pack: %+v", tier, row)
		}
	}
}

// TestPackMemoryOnlyEngine: the pack tier composes with memory-only
// operation (no store directory at all) with the same byte identity.
func TestPackMemoryOnlyEngine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	_, srvA := serve(t, dir)
	cold := querySet(t, srvA.URL)

	_, _, srv := servePack(t, "", packOf(t, dir))
	packed := querySet(t, srv.URL)
	for name, want := range cold {
		if !bytes.Equal(want, packed[name]) {
			t.Errorf("%s: pack+memory body differs from cold body", name)
		}
	}
}

// TestCorruptWarmRecordsDegrade is the satellite-2 lock: a serve path
// hitting corrupted store records must degrade to recomputation —
// byte-identical bodies, no failed queries — and report the damage
// through the corrupt warm-lookup outcome, per tier.
func TestCorruptWarmRecordsDegrade(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	_, srvA := serve(t, dir)
	cold := querySet(t, srvA.URL)

	// Flip one payload byte in every committed record: checksums break,
	// content stays parseable-looking.
	objects, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.*"))
	if err != nil || len(objects) == 0 {
		t.Fatalf("no objects to corrupt: %v (%v)", objects, err)
	}
	for _, path := range objects {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x40 // inside the checksum trailer
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	m := NewMetrics()
	e, err := New(Config{StoreDir: dir, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	srv := httptest.NewServer(Handler(e))
	t.Cleanup(srv.Close)

	recomputed := querySet(t, srv.URL)
	for name, want := range cold {
		if !bytes.Equal(want, recomputed[name]) {
			t.Errorf("%s: body over corrupted store differs from cold body", name)
		}
	}
	for _, tier := range []string{"step", "trajectory", "rendered", "verdict"} {
		if row := tierStat(t, m, e, tier); row.Corrupt == 0 {
			t.Errorf("tier %q reported no corrupt outcomes over a fully-corrupted store", tier)
		}
	}
}

// TestCorruptPackFallsThrough: an engine whose pack tier misses (here:
// a pack built from an unrelated empty store) serves from the JSON
// store underneath, byte-identically.
func TestCorruptPackFallsThrough(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	_, srvA := serve(t, dir)
	cold := querySet(t, srvA.URL)

	// A valid but empty pack: every lookup misses, the store answers.
	empty := packOf(t, filepath.Join(t.TempDir(), "empty"))
	e, m, srv := servePack(t, dir, empty)
	served := querySet(t, srv.URL)
	for name, want := range cold {
		if !bytes.Equal(want, served[name]) {
			t.Errorf("%s: store-served body behind an empty pack differs", name)
		}
	}
	pack := tierStat(t, m, e, "pack")
	if pack.Hits != 0 || pack.Misses == 0 {
		t.Fatalf("pack tier = %+v, want only misses", pack)
	}
	if row := tierStat(t, m, e, "rendered"); row.Hits == 0 {
		t.Fatalf("rendered tier = %+v, want store hits behind the empty pack", row)
	}
}
