package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/store"
)

// ProblemView is the JSON rendering of one problem: its stable key,
// description-size statistics, and the exact canonical serialization.
// The canonical text can be posted back as the "problem" field of any
// query (core.ParseAuto sniffs it), reproducing the exact
// representation and therefore the exact key.
type ProblemView struct {
	// Key is the lowercase-hex core.StableKey of the representation.
	Key string `json:"key"`
	// Delta is the problem's node-constraint arity Δ.
	Delta int `json:"delta"`
	// Labels counts the alphabet.
	Labels int `json:"labels"`
	// EdgeConfigs counts the edge constraint's configurations.
	EdgeConfigs int `json:"edge_configs"`
	// NodeConfigs counts the node constraint's configurations.
	NodeConfigs int `json:"node_configs"`
	// Canonical is the exact core.CanonicalBytes serialization.
	Canonical string `json:"canonical"`
}

// viewOf renders a problem. Pure: equal representations yield equal
// views, which is what makes every response body a deterministic
// function of its inputs.
func viewOf(p *core.Problem) ProblemView {
	s := p.Stats()
	return ProblemView{
		Key:         core.StableKey(p).String(),
		Delta:       s.Delta,
		Labels:      s.Labels,
		EdgeConfigs: s.EdgeConfigs,
		NodeConfigs: s.NodeConfigs,
		Canonical:   string(p.CanonicalBytes()),
	}
}

// StatusError carries the HTTP status a query failure maps to; the
// command-line clients map the same classes to their documented exit
// codes instead (400/404/422 are all "the decision could not be made",
// exit 1).
type StatusError struct {
	// Code is the HTTP status.
	Code int
	// Err is the underlying failure.
	Err error
}

// Error renders the underlying failure.
func (e *StatusError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *StatusError) Unwrap() error { return e.Err }

// badRequest tags a malformed-request failure (HTTP 400).
func badRequest(format string, args ...any) error {
	return &StatusError{Code: http.StatusBadRequest, Err: fmt.Errorf(format, args...)}
}

// notFound tags an unknown-resource failure (HTTP 404).
func notFound(format string, args ...any) error {
	return &StatusError{Code: http.StatusNotFound, Err: fmt.Errorf(format, args...)}
}

// infeasible tags a could-not-decide failure (HTTP 422): the request
// was well-formed but the computation gave up, e.g. on a state budget.
func infeasible(err error) error {
	return &StatusError{Code: http.StatusUnprocessableEntity, Err: err}
}

// unavailable tags a transient retryable failure (HTTP 503), e.g. a
// computation abandoned because its every subscriber departed.
func unavailable(format string, args ...any) error {
	return &StatusError{Code: http.StatusServiceUnavailable, Err: fmt.Errorf(format, args...)}
}

// StatusOf maps a query error to its HTTP status: an explicit
// StatusError's code, 503 for a shutting-down engine, 504 for a
// request that ran out of its wall-clock budget (the per-request
// timeout cmd/serve arms), 500 otherwise.
func StatusOf(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// Per-query ceilings. A shared daemon must bound the work one request
// can demand: budgets beyond these belong to batch tooling (cmd/sweep)
// on a machine the caller owns, not to a service multiplexing clients.
const (
	// MaxRequestSteps caps the iteration counts (speedup steps,
	// fixpoint max steps) a query may request.
	MaxRequestSteps = 64
	// MaxRequestStates caps a query's core.WithMaxStates budget at the
	// engine's own default: a request may tighten the enumeration
	// budget, never raise it.
	MaxRequestStates = 4_000_000
	// MaxVerifyN caps the verify endpoint's instance-family size bound
	// (the families grow exponentially in n).
	MaxVerifyN = 16
	// MaxVerifyRounds caps the decided round count (view classes grow
	// towerishly in t).
	MaxVerifyRounds = 8
)

// ValidateBudgets rejects the iteration/state budgets every
// speedup-flavoured entry point shares: maxSteps must be positive and
// maxStates non-negative. cmd/speedup, cmd/sweep and the HTTP handlers
// all call this, so the accepted domain cannot drift between them.
// (The upper caps above are service-query concerns and are enforced by
// the engine's request validation, not here — the batch CLIs stay
// uncapped.)
func ValidateBudgets(maxSteps, maxStates int) error {
	if maxSteps < 1 {
		return badRequest("max steps must be >= 1, got %d", maxSteps)
	}
	if maxStates < 0 {
		return badRequest("max states must be >= 0, got %d", maxStates)
	}
	return nil
}

// validateRequestBudgets applies the service-query ceilings on top of
// ValidateBudgets.
func validateRequestBudgets(maxSteps, maxStates int) error {
	if err := ValidateBudgets(maxSteps, maxStates); err != nil {
		return err
	}
	if maxSteps > MaxRequestSteps {
		return badRequest("max steps must be <= %d, got %d", MaxRequestSteps, maxSteps)
	}
	if maxStates > MaxRequestStates {
		return badRequest("max states must be <= %d, got %d", MaxRequestStates, maxStates)
	}
	return nil
}

// parseProblem parses a request's problem text (either format, see
// core.ParseAuto), mapping failure to a 400.
func parseProblem(text string) (*core.Problem, error) {
	if text == "" {
		return nil, badRequest("empty problem")
	}
	p, err := core.ParseAuto(text)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return p, nil
}

// OpenStepMemo is the shared store-or-memory memo wiring of the
// command-line clients: it opens the persistent result store at dir
// when non-empty and returns a step memo scoped to the given
// core.WithMaxStates budget, or a fresh in-memory memo (and a nil
// store) when dir is empty. The returned store handle lets callers
// also checkpoint trajectories (cmd/sweep) against the same directory.
func OpenStepMemo(dir string, maxStates int) (fixpoint.Memo, *store.Store, error) {
	if dir == "" {
		return fixpoint.NewMapMemo(), nil, nil
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	return st.StepMemo(maxStates), st, nil
}
