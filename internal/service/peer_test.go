package service

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/problems"
)

// peerTestBudget mirrors the sweep tests' cheap budgets: small enough
// that every grid point finishes instantly, explicit so both cluster
// nodes derive identical cache identities.
const (
	peerTestMaxSteps  = 2
	peerTestMaxStates = 8000
)

// clusterNode is one in-process cluster member: a store-backed engine
// with metrics, served over a real loopback listener whose address is
// also the node's advertised member name.
type clusterNode struct {
	addr string
	dir  string
	e    *Engine
	m    *Metrics
	srv  *httptest.Server
}

// startCluster boots n clustered nodes. Listeners are opened first so
// every engine can be configured with the complete member list before
// any of them starts serving — the same bootstrap order cmd/serve
// reaches via SIGHUP reload.
func startCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		m := NewMetrics()
		dir := t.TempDir()
		e, err := New(Config{
			StoreDir: dir,
			Metrics:  m,
			Peers:    &PeerConfig{Self: addrs[i], Members: addrs, Timeout: 2 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		srv := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: Routes(e, m)}}
		srv.Start()
		t.Cleanup(srv.Close)
		nodes[i] = &clusterNode{addr: addrs[i], dir: dir, e: e, m: m, srv: srv}
	}
	return nodes
}

// ownedProblem picks a cheap grid problem whose ring owner is member.
// Ports are dynamic, so ownership shifts run to run — the grid is big
// enough that every member owns at least one point in practice.
func ownedProblem(t *testing.T, members []string, member string) *core.Problem {
	t.Helper()
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	points, err := problems.Grid(problems.Families(), 2, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if ring.Owner(core.StableKey(pt.Problem)) == member {
			return pt.Problem
		}
	}
	t.Fatalf("no grid problem owned by %s", member)
	return nil
}

// fixpointBodyFor computes the reference response body on a fresh solo
// engine — the cold, cluster-free answer every tier must reproduce.
func fixpointBodyFor(t *testing.T, p *core.Problem) []byte {
	t.Helper()
	_, srv := serve(t, "")
	status, body := post(t, srv.URL, "/v1/fixpoint", FixpointRequest{
		Problem: string(p.CanonicalBytes()), MaxSteps: peerTestMaxSteps, MaxStates: peerTestMaxStates,
	})
	if status != http.StatusOK {
		t.Fatalf("reference fixpoint: status %d: %s", status, body)
	}
	return body
}

// queryFixpoint issues the standard test fixpoint query against a node.
func queryFixpoint(t *testing.T, url string, p *core.Problem) []byte {
	t.Helper()
	status, body := post(t, url, "/v1/fixpoint", FixpointRequest{
		Problem: string(p.CanonicalBytes()), MaxSteps: peerTestMaxSteps, MaxStates: peerTestMaxStates,
	})
	if status != http.StatusOK {
		t.Fatalf("fixpoint: status %d: %s", status, body)
	}
	return body
}

// peerStat returns a node's accumulated outcomes against one peer.
func peerStat(n *clusterNode, peer string) PeerStat {
	for _, ps := range n.m.Stats(n.e).Peers {
		if ps.Peer == peer {
			return ps
		}
	}
	return PeerStat{Peer: peer}
}

// globStore counts a node's committed records of one extension.
func globStore(t *testing.T, dir, ext string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*."+ext))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestPeerServedByteIdentity: a query for a problem owned by the other
// node is answered through the peer tier byte-identically to the cold
// solo answer, counts a peer hit, and backfills the local store so the
// answer is local from then on.
func TestPeerServedByteIdentity(t *testing.T) {
	nodes := startCluster(t, 2)
	members := []string{nodes[0].addr, nodes[1].addr}
	p := ownedProblem(t, members, nodes[0].addr)
	want := fixpointBodyFor(t, p)

	// Warm the owner: it computes locally (owner == self skips the peer
	// tier) and commits to its own store.
	if got := queryFixpoint(t, nodes[0].srv.URL, p); !bytes.Equal(got, want) {
		t.Fatal("owner cold body differs from solo reference")
	}

	// The non-owner serves the same bytes via the peer tier.
	if got := queryFixpoint(t, nodes[1].srv.URL, p); !bytes.Equal(got, want) {
		t.Fatal("peer-served body differs from solo reference")
	}
	if ps := peerStat(nodes[1], nodes[0].addr); ps.Hits == 0 {
		t.Fatalf("no peer hit recorded against owner: %+v", ps)
	}
	if got := len(globStore(t, nodes[1].dir, "rendered")); got == 0 {
		t.Fatal("peer hit did not backfill the local rendered record")
	}
}

// TestPeerTrajectoryBackfillsRendered: when the owner holds only the
// trajectory record (its rendered record is gone), the non-owner
// re-renders the peer-served trajectory byte-identically AND commits
// both the trajectory and the rendered record locally — the same
// pairing cmd/sweep writes on checkpoint hits.
func TestPeerTrajectoryBackfillsRendered(t *testing.T) {
	nodes := startCluster(t, 2)
	members := []string{nodes[0].addr, nodes[1].addr}
	p := ownedProblem(t, members, nodes[0].addr)
	want := fixpointBodyFor(t, p)

	queryFixpoint(t, nodes[0].srv.URL, p)
	for _, f := range globStore(t, nodes[0].dir, "rendered") {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}

	if got := queryFixpoint(t, nodes[1].srv.URL, p); !bytes.Equal(got, want) {
		t.Fatal("trajectory-backed peer body differs from solo reference")
	}
	ps := peerStat(nodes[1], nodes[0].addr)
	if ps.Hits == 0 || ps.Misses == 0 {
		t.Fatalf("want a rendered miss and a trajectory hit, got %+v", ps)
	}
	if len(globStore(t, nodes[1].dir, "traj")) == 0 {
		t.Fatal("peer trajectory hit did not backfill the local trajectory record")
	}
	if len(globStore(t, nodes[1].dir, "rendered")) == 0 {
		t.Fatal("peer trajectory hit did not backfill the local rendered record")
	}
}

// TestPeerDeadDegradesToCompute: with the owner's server down, the
// non-owner computes locally, still answers byte-identically, and the
// failure is visible as unreachable outcomes.
func TestPeerDeadDegradesToCompute(t *testing.T) {
	nodes := startCluster(t, 2)
	members := []string{nodes[0].addr, nodes[1].addr}
	p := ownedProblem(t, members, nodes[0].addr)
	want := fixpointBodyFor(t, p)

	nodes[0].srv.Close()

	if got := queryFixpoint(t, nodes[1].srv.URL, p); !bytes.Equal(got, want) {
		t.Fatal("degraded body differs from solo reference")
	}
	ps := peerStat(nodes[1], nodes[0].addr)
	if ps.Unreachable == 0 {
		t.Fatalf("dead peer not counted unreachable: %+v", ps)
	}
	if ps.Hits != 0 {
		t.Fatalf("dead peer counted hits: %+v", ps)
	}
}

// TestPeerCorruptDegradesToCompute: a byzantine peer answering 200
// with garbage is degraded to a miss — the query recomputes locally
// and serves the correct bytes, and the outcome is counted corrupt.
func TestPeerCorruptDegradesToCompute(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	byzantine := &httptest.Server{Listener: ln, Config: &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "PODC19RS garbage that is not a record frame")
		}),
	}}
	byzantine.Start()
	t.Cleanup(byzantine.Close)

	selfLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	members := []string{ln.Addr().String(), selfLn.Addr().String()}
	m := NewMetrics()
	e, err := New(Config{
		StoreDir: t.TempDir(),
		Metrics:  m,
		Peers:    &PeerConfig{Self: members[1], Members: members, Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	srv := &httptest.Server{Listener: selfLn, Config: &http.Server{Handler: Routes(e, m)}}
	srv.Start()
	t.Cleanup(srv.Close)
	node := &clusterNode{addr: members[1], e: e, m: m, srv: srv}

	p := ownedProblem(t, members, members[0])
	want := fixpointBodyFor(t, p)
	if got := queryFixpoint(t, srv.URL, p); !bytes.Equal(got, want) {
		t.Fatal("byzantine-degraded body differs from solo reference")
	}
	ps := peerStat(node, members[0])
	if ps.Corrupt == 0 {
		t.Fatalf("byzantine peer not counted corrupt: %+v", ps)
	}
	if ps.Hits != 0 {
		t.Fatalf("byzantine peer counted hits: %+v", ps)
	}
}

// TestPeerBreaker: three consecutive unreachable outcomes open a
// peer's breaker; any answer closes it and resets the failure count.
func TestPeerBreaker(t *testing.T) {
	pt, err := newPeerTier(&PeerConfig{Self: "a", Members: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.available("b") {
		t.Fatal("fresh peer not available")
	}
	pt.observe("b", false)
	pt.observe("b", false)
	if !pt.available("b") {
		t.Fatal("breaker opened below the threshold")
	}
	pt.observe("b", false)
	if pt.available("b") {
		t.Fatal("breaker did not open at the threshold")
	}
	pt.observe("b", true)
	if !pt.available("b") {
		t.Fatal("an answer did not close the breaker")
	}
	// The success also reset the consecutive-failure count.
	pt.observe("b", false)
	pt.observe("b", false)
	if !pt.available("b") {
		t.Fatal("failure count survived a success")
	}
}

// TestPeerConfigValidation: New rejects unusable cluster
// configurations instead of quietly running solo.
func TestPeerConfigValidation(t *testing.T) {
	bad := []*PeerConfig{
		{Self: "", Members: []string{"a", "b"}},
		{Self: "c", Members: []string{"a", "b"}},
		{Self: "a", Members: []string{"a", "a"}},
		{Self: "a", Members: nil},
		{Self: "a", Members: []string{"a", ""}},
	}
	for i, cfg := range bad {
		if e, err := New(Config{Peers: cfg}); err == nil {
			_ = e.Close()
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
}

// TestClusterConcurrentClients: eight clients hammering both nodes of
// a two-node ring concurrently all receive byte-identical bodies,
// whether a request lands on the owner or travels the peer tier. Run
// under -race in CI.
func TestClusterConcurrentClients(t *testing.T) {
	nodes := startCluster(t, 2)
	members := []string{nodes[0].addr, nodes[1].addr}
	probs := []*core.Problem{
		ownedProblem(t, members, nodes[0].addr),
		ownedProblem(t, members, nodes[1].addr),
	}
	want := [][]byte{fixpointBodyFor(t, probs[0]), fixpointBodyFor(t, probs[1])}

	var wg sync.WaitGroup
	errs := make(chan error, 8*2*len(probs))
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				node := nodes[(c+round)%2]
				for i, p := range probs {
					body, err := postRaw(node.srv.URL, FixpointRequest{
						Problem: string(p.CanonicalBytes()), MaxSteps: peerTestMaxSteps, MaxStates: peerTestMaxStates,
					})
					if err != nil {
						errs <- err
						continue
					}
					if !bytes.Equal(body, want[i]) {
						errs <- fmt.Errorf("client %d: body for problem %d differs", c, i)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// postRaw is the goroutine-safe flavor of post: it returns errors
// instead of calling t.Fatal off the test goroutine.
func postRaw(url string, req FixpointRequest) ([]byte, error) {
	body := fmt.Sprintf(`{"problem":%q,"max_steps":%d,"max_states":%d}`, req.Problem, req.MaxSteps, req.MaxStates)
	resp, err := http.Post(url+"/v1/fixpoint", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	return data, nil
}
