package store

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// VerdictParams identifies the query a stored oracle verdict answers:
// the named problem, the instance family and its size/seed parameters,
// the round count, and whether the run was a single decision or the
// conformance harness. Family must be the resolved (non-empty) family
// name. The oracle's output is deterministic in these parameters plus
// the exact problem representation, and worker counts do not change its
// bytes, so they are not part of the identity.
type VerdictParams struct {
	// Problem is the catalog name the verdict envelope reports.
	Problem string
	// Rounds is the decided round count t (the conformance max for
	// conformance runs).
	Rounds int
	// MaxN is the sized-family bound.
	MaxN int
	// Family is the resolved instance-family name.
	Family string
	// Seed drives the shuffled/oriented family variants.
	Seed int64
	// Relaxed records oracle.WithRelaxedDegrees.
	Relaxed bool
	// Conformance distinguishes conformance reports from decisions.
	Conformance bool
}

// tag renders the params into the key-derivation discriminator.
func (p VerdictParams) tag() string {
	return fmt.Sprintf("|verdict|problem=%s|rounds=%d|n=%d|family=%s|seed=%d|relaxed=%t|conformance=%t",
		p.Problem, p.Rounds, p.MaxN, p.Family, p.Seed, p.Relaxed, p.Conformance)
}

// verdictPayload is the JSON payload of a KindVerdict record. Result
// holds the rendered verdict JSON verbatim — the store does not
// interpret it, it only replays it, so a warm lookup serves the exact
// bytes the cold run rendered.
type verdictPayload struct {
	FPVersion   int             `json:"fp_version"`
	Problem     string          `json:"problem"`
	Rounds      int             `json:"rounds"`
	MaxN        int             `json:"n"`
	Family      string          `json:"family"`
	Seed        int64           `json:"seed"`
	Relaxed     bool            `json:"relaxed"`
	Conformance bool            `json:"conformance"`
	Input       string          `json:"input"`
	Result      json.RawMessage `json:"result"`
}

// PutVerdict persists the rendered oracle verdict for the exact problem
// in under the exact params; result must be valid JSON (it is embedded
// as a raw message). Commit is atomic, like every record write.
func (s *Store) PutVerdict(in *core.Problem, par VerdictParams, result []byte) error {
	payload, err := json.Marshal(verdictPayload{
		FPVersion:   core.FingerprintVersion,
		Problem:     par.Problem,
		Rounds:      par.Rounds,
		MaxN:        par.MaxN,
		Family:      par.Family,
		Seed:        par.Seed,
		Relaxed:     par.Relaxed,
		Conformance: par.Conformance,
		Input:       string(in.CanonicalBytes()),
		Result:      json.RawMessage(result),
	})
	if err != nil {
		return fmt.Errorf("store: put verdict: %w", err)
	}
	return s.putRecord(KindVerdict, subKey(core.StableKey(in), par.tag()), payload)
}

// GetVerdict looks up the rendered oracle verdict for the exact problem
// in under the exact params. Corrupt records surface their sentinel;
// records whose embedded input or params disagree with the query are a
// miss.
func (s *Store) GetVerdict(in *core.Problem, par VerdictParams) ([]byte, bool, error) {
	data, ok, err := s.getRecord(KindVerdict, subKey(core.StableKey(in), par.tag()))
	if !ok || err != nil {
		return nil, false, err
	}
	return decodeVerdictPayload(data, in, par)
}

// decodeVerdictPayload validates a verdict payload against the queried
// problem and params. Shared by the JSON store and the pack reader (see
// decodeStepPayload).
func decodeVerdictPayload(data []byte, in *core.Problem, par VerdictParams) ([]byte, bool, error) {
	var payload verdictPayload
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, false, fmt.Errorf("store: get verdict: %w", err)
	}
	if payload.FPVersion != core.FingerprintVersion ||
		payload.Problem != par.Problem || payload.Rounds != par.Rounds ||
		payload.MaxN != par.MaxN || payload.Family != par.Family ||
		payload.Seed != par.Seed || payload.Relaxed != par.Relaxed ||
		payload.Conformance != par.Conformance ||
		payload.Input != string(in.CanonicalBytes()) {
		return nil, false, nil
	}
	return []byte(payload.Result), true, nil
}
