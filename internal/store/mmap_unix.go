//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile memory-maps size bytes of f read-only and returns the
// mapping plus its release function. The mapping survives the file
// descriptor, so callers may close f immediately. Errors (including a
// zero-length file, which mmap rejects) send OpenPack down the
// io.ReaderAt fallback path.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
