package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// FormatVersion is the on-disk container version written into every
// record header. It versions the *container* (magic, header layout,
// checksum trailer); the *payload semantics* are versioned separately
// by core.FingerprintVersion, which is hashed into every object key.
// Readers reject records whose container version differs — there is no
// migration path, because every record is a cache entry that can be
// recomputed.
const FormatVersion = 1

// recordMagic opens every record file. Eight bytes, fixed.
const recordMagic = "PODC19RS"

// Kind tags the payload type of a record.
type Kind uint32

// Record kinds. The kind is both part of the record header and encoded
// in the object filename extension, so a reader never interprets a
// payload under the wrong schema even if a file is renamed.
const (
	// KindStep records one memoized speedup step: canonical input
	// problem → canonical compact-renamed derived problem.
	KindStep Kind = 1
	// KindTrajectory records one classified fixpoint trajectory
	// (a fixpoint.Result) under explicit budget parameters.
	KindTrajectory Kind = 2
	// KindVerdict records one rendered oracle verdict (a decision or
	// conformance report) under explicit family/seed/round parameters.
	KindVerdict Kind = 3
	// KindRendered records the exact pre-rendered NDJSON response body
	// of one classified fixpoint query under explicit budget parameters,
	// so a warm hit serves cached bytes with zero marshaling.
	KindRendered Kind = 4
)

// ext returns the filename extension of the kind.
func (k Kind) ext() string {
	switch k {
	case KindStep:
		return "step"
	case KindTrajectory:
		return "traj"
	case KindVerdict:
		return "verdict"
	case KindRendered:
		return "rendered"
	default:
		return fmt.Sprintf("kind%d", uint32(k))
	}
}

// Corruption sentinels. Every decode failure wraps exactly one of
// these, so callers can distinguish "stale format" from "damaged file"
// with errors.Is. The lookup helpers treat all of them as a cache miss;
// Get surfaces them for tools and tests.
var (
	// ErrBadMagic: the file does not start with the record magic.
	ErrBadMagic = errors.New("store: bad record magic")
	// ErrVersionMismatch: the container FormatVersion differs.
	ErrVersionMismatch = errors.New("store: record format version mismatch")
	// ErrKindMismatch: the header kind differs from the kind implied by
	// the object's location.
	ErrKindMismatch = errors.New("store: record kind mismatch")
	// ErrTruncated: the file is shorter than its header promises (or
	// carries trailing garbage).
	ErrTruncated = errors.New("store: truncated record")
	// ErrChecksum: the SHA-256 trailer does not match the content.
	ErrChecksum = errors.New("store: record checksum mismatch")
)

// recordHeaderSize is magic + version + kind + payload length.
const recordHeaderSize = 8 + 4 + 4 + 8

// checksumSize is the SHA-256 trailer length.
const checksumSize = sha256.Size

// encodeRecord frames a payload: header, payload, SHA-256 trailer over
// everything preceding it.
func encodeRecord(kind Kind, payload []byte) []byte {
	buf := make([]byte, 0, recordHeaderSize+len(payload)+checksumSize)
	buf = append(buf, recordMagic...)
	buf = binary.BigEndian.AppendUint32(buf, FormatVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// decodeRecord validates a framed record and returns its payload.
func decodeRecord(data []byte, wantKind Kind) ([]byte, error) {
	if len(data) < recordHeaderSize+checksumSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(data), recordHeaderSize+checksumSize)
	}
	if !bytes.Equal(data[:8], []byte(recordMagic)) {
		return nil, ErrBadMagic
	}
	version := binary.BigEndian.Uint32(data[8:12])
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: record v%d, reader v%d", ErrVersionMismatch, version, FormatVersion)
	}
	kind := Kind(binary.BigEndian.Uint32(data[12:16]))
	if kind != wantKind {
		return nil, fmt.Errorf("%w: record kind %d, want %d", ErrKindMismatch, kind, wantKind)
	}
	payloadLen := binary.BigEndian.Uint64(data[16:recordHeaderSize])
	total := recordHeaderSize + int(payloadLen) + checksumSize
	if payloadLen > uint64(len(data)) || len(data) != total {
		return nil, fmt.Errorf("%w: %d bytes, header promises %d", ErrTruncated, len(data), total)
	}
	body := data[:recordHeaderSize+int(payloadLen)]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[len(body):]) {
		return nil, ErrChecksum
	}
	return data[recordHeaderSize : recordHeaderSize+int(payloadLen)], nil
}

// Commit-protocol seams. Production always uses the real operations;
// durability tests swap these to inject failures at each point of the
// temp-file + fsync + rename + dirsync sequence and assert that no
// failure mode can leave a torn or half-committed file behind.
var (
	syncFile   = func(f *os.File) error { return f.Sync() }
	renameFile = os.Rename
	syncDir    = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		serr := d.Sync()
		cerr := d.Close()
		if serr != nil {
			return serr
		}
		return cerr
	}
)

// commitTemp finalizes a staged temp file into path: fsync the data,
// close, rename into place, then fsync the parent directory. The
// directory sync is what makes the commit durable, not merely atomic —
// rename(2) only updates the directory entry in memory, so without it a
// crash after a "successful" commit can roll the directory back to a
// state where the record never existed. Invariant: once commitTemp
// returns nil, the file survives a crash at any later point.
func commitTemp(tmp *os.File, path string) error {
	if err := syncFile(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := renameFile(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// writeAtomic commits data to path with the temp-file + fsync + rename
// + directory-sync protocol: concurrent readers observe either no file
// or a complete record, never a partial write, and a crash (kill -9
// included) cannot leave a torn record under the final name — nor roll
// back a commit that was already reported successful (see commitTemp).
// Concurrent writers of the same object race only on the rename; since
// all writers of one key produce identical bytes (results are
// deterministic), either winner is correct.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	return commitTemp(tmp, path)
}

// WriteFileAtomic commits data to path with the store's temp-file +
// fsync + rename + directory-sync protocol. Exported for callers whose
// output files need the same crash-safety contract as store records —
// cmd/sweep commits its report through it, so a kill mid-write can
// never leave a truncated report that looks complete.
func WriteFileAtomic(path string, data []byte) error {
	return writeAtomic(path, data)
}
