package store

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// renderedTag renders TrajectoryParams into the key-derivation
// discriminator of a KindRendered record. Rendered bodies share the
// trajectory record's identity — (StableKey, MaxSteps, MaxStates) —
// under a distinct tag, so a store can hold both the replayable
// trajectory and its pre-rendered response bytes for one query.
func renderedTag(p TrajectoryParams) string {
	return fmt.Sprintf("|rendered|max_steps=%d|max_states=%d", p.MaxSteps, p.MaxStates)
}

// renderedPayload is the JSON payload of a KindRendered record. Body
// holds the exact NDJSON response body verbatim — the store does not
// interpret it, only replays it, like a verdict's Result. Input is the
// canonical problem serialization, doubling as the collision guard.
type renderedPayload struct {
	FPVersion int    `json:"fp_version"`
	MaxSteps  int    `json:"max_steps"`
	MaxStates int    `json:"max_states"`
	Input     string `json:"input"`
	Body      string `json:"body"`
}

// PutRendered persists the pre-rendered NDJSON response body of the
// classified fixpoint query for the exact problem in under the exact
// params. body must be the exact bytes the cold stream emitted —
// committing anything else would break the byte-identity contract that
// makes the rendered tier indistinguishable from re-rendering. Commit
// is atomic, like every record write.
func (s *Store) PutRendered(in *core.Problem, par TrajectoryParams, body []byte) error {
	payload, err := json.Marshal(renderedPayload{
		FPVersion: core.FingerprintVersion,
		MaxSteps:  par.MaxSteps,
		MaxStates: par.MaxStates,
		Input:     string(in.CanonicalBytes()),
		Body:      string(body),
	})
	if err != nil {
		return fmt.Errorf("store: put rendered: %w", err)
	}
	return s.putRecord(KindRendered, subKey(core.StableKey(in), renderedTag(par)), payload)
}

// GetRendered looks up the pre-rendered response body for the exact
// problem in under the exact params. Corrupt records surface their
// sentinel; records whose embedded input or params disagree with the
// query are a miss — in both cases the caller degrades to re-rendering
// from the trajectory record (or recomputing), never to a wrong body.
func (s *Store) GetRendered(in *core.Problem, par TrajectoryParams) ([]byte, bool, error) {
	data, ok, err := s.getRecord(KindRendered, subKey(core.StableKey(in), renderedTag(par)))
	if !ok || err != nil {
		return nil, false, err
	}
	return decodeRenderedPayload(data, in, par)
}

// decodeRenderedPayload validates a rendered payload against the
// queried problem and params. Shared by the JSON store and the pack
// reader (see decodeStepPayload).
func decodeRenderedPayload(data []byte, in *core.Problem, par TrajectoryParams) ([]byte, bool, error) {
	var payload renderedPayload
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, false, fmt.Errorf("store: get rendered: %w", err)
	}
	if payload.FPVersion != core.FingerprintVersion ||
		payload.MaxSteps != par.MaxSteps || payload.MaxStates != par.MaxStates ||
		payload.Input != string(in.CanonicalBytes()) {
		return nil, false, nil
	}
	return []byte(payload.Body), true, nil
}
