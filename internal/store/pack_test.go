package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/problems"
)

// packParams is the trajectory budget the pack tests populate under —
// small enough to stay fast, identical across populate and lookup.
var packParams = TrajectoryParams{MaxSteps: 2, MaxStates: 8_000}

// packVerdictParams is the verdict identity the pack tests store under.
var packVerdictParams = VerdictParams{
	Problem: "sinkless-coloring/delta=3", Rounds: 1, MaxN: 3, Family: "regular", Seed: 1,
}

// populatePackStore fills s with a representative record mix — step
// records (via the memo), trajectory checkpoints, and a rendered
// verdict — and returns the problems it used.
func populatePackStore(t *testing.T, s *Store) []*core.Problem {
	t.Helper()
	probs := []*core.Problem{
		problems.SinklessColoring(3),
		problems.SinklessOrientation(3),
		problems.WeakTwoColoringPointer(3),
	}
	for _, p := range probs {
		res, err := fixpoint.Run(p, fixpoint.Options{
			MaxSteps: packParams.MaxSteps,
			Core:     []core.Option{core.WithMaxStates(packParams.MaxStates), core.WithWorkers(1)},
			Memo:     s.StepMemo(packParams.MaxStates),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutTrajectory(p, packParams, res); err != nil {
			t.Fatal(err)
		}
	}
	rendered := []byte(`{"problem":"sinkless-coloring/delta=3","solvable":true}`)
	if err := s.PutVerdict(probs[0], packVerdictParams, rendered); err != nil {
		t.Fatal(err)
	}
	return probs
}

// objectFiles returns relative path → content for every object in the
// store.
func objectFiles(t *testing.T, s *Store) map[string][]byte {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Root(), "objects", "*", "*.*"))
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(matches))
	for _, m := range matches {
		rel, err := filepath.Rel(s.Root(), m)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		files[rel] = data
	}
	return files
}

// packOf packs s into a fresh file and returns the opened reader plus
// the artifact path. The reader is closed with the test.
func packOf(t *testing.T, s *Store) (*PackReader, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "warm.repack")
	if _, err := s.Pack(path); err != nil {
		t.Fatal(err)
	}
	pr, err := OpenPack(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pr.Close() })
	return pr, path
}

// TestPackRoundTripIdentity is the pack acceptance lock: every lookup
// served from the pack is byte-identical to the JSON store's answer,
// unpacking rematerializes byte-identical object files, and
// pack → unpack → pack reproduces the artifact bit-exactly.
func TestPackRoundTripIdentity(t *testing.T) {
	s := openTemp(t)
	probs := populatePackStore(t, s)
	pr, packPath := packOf(t, s)

	if pr.Len() == 0 {
		t.Fatal("pack is empty")
	}

	// Every trajectory, step, and verdict answers identically from both
	// tiers.
	for i, p := range probs {
		want, ok, err := s.GetTrajectory(p, packParams)
		if !ok || err != nil {
			t.Fatalf("store trajectory %d: ok=%v err=%v", i, ok, err)
		}
		got, ok, err := pr.GetTrajectory(p, packParams)
		if !ok || err != nil {
			t.Fatalf("pack trajectory %d: ok=%v err=%v", i, ok, err)
		}
		if got.Kind != want.Kind || got.Steps != want.Steps || len(got.Trajectory) != len(want.Trajectory) {
			t.Fatalf("trajectory %d differs across tiers: %+v vs %+v", i, got, want)
		}
		for j := range want.Trajectory {
			if !bytes.Equal(got.Trajectory[j].CanonicalBytes(), want.Trajectory[j].CanonicalBytes()) {
				t.Fatalf("trajectory %d entry %d not byte-identical", i, j)
			}
		}
		// Step records: walk the stored trajectory re-asking the memo
		// questions.
		for j := 0; j+1 < len(want.Trajectory); j++ {
			in := want.Trajectory[j]
			sOut, sOK, _ := s.GetStep(in, packParams.MaxStates)
			pOut, pOK, perr := pr.GetStep(in, packParams.MaxStates)
			if sOK != pOK || perr != nil {
				t.Fatalf("step (%d,%d): store ok=%v, pack ok=%v err=%v", i, j, sOK, pOK, perr)
			}
			if sOK && !bytes.Equal(sOut.CanonicalBytes(), pOut.CanonicalBytes()) {
				t.Fatalf("step (%d,%d) not byte-identical across tiers", i, j)
			}
		}
	}
	wantV, ok, err := s.GetVerdict(probs[0], packVerdictParams)
	if !ok || err != nil {
		t.Fatalf("store verdict: ok=%v err=%v", ok, err)
	}
	gotV, ok, err := pr.GetVerdict(probs[0], packVerdictParams)
	if !ok || err != nil {
		t.Fatalf("pack verdict: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(gotV, wantV) {
		t.Fatalf("verdict bytes differ: %q vs %q", gotV, wantV)
	}

	// Walk: sorted key order, full coverage.
	var keys [][]byte
	if err := pr.Walk(func(kind Kind, key core.StableFingerprint, payload []byte) error {
		kb := append([]byte{byte(kind)}, key[:]...)
		keys = append(keys, kb)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != pr.Len() {
		t.Fatalf("walk visited %d of %d records", len(keys), pr.Len())
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
		t.Fatal("walk order is not sorted")
	}

	// Unpack rematerializes byte-identical object files...
	s2 := openTemp(t)
	n, err := Unpack(pr, s2)
	if err != nil {
		t.Fatal(err)
	}
	if n != pr.Len() {
		t.Fatalf("unpacked %d of %d records", n, pr.Len())
	}
	orig, rebuilt := objectFiles(t, s), objectFiles(t, s2)
	if len(orig) != len(rebuilt) {
		t.Fatalf("object count differs after unpack: %d vs %d", len(orig), len(rebuilt))
	}
	for rel, data := range orig {
		if !bytes.Equal(rebuilt[rel], data) {
			t.Fatalf("object %s not byte-identical after unpack", rel)
		}
	}

	// ...and re-packing the rebuilt store reproduces the artifact
	// bit-exactly.
	pack2 := filepath.Join(t.TempDir(), "warm2.repack")
	if _, err := s2.Pack(pack2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(packPath)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(pack2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("pack → unpack → pack is not bit-exact: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestPackLookupMisses: absent keys and foreign parameters miss, never
// mis-serve.
func TestPackLookupMisses(t *testing.T) {
	s := openTemp(t)
	probs := populatePackStore(t, s)
	pr, _ := packOf(t, s)

	other := TrajectoryParams{MaxSteps: packParams.MaxSteps + 1, MaxStates: packParams.MaxStates}
	if _, ok, err := pr.GetTrajectory(probs[0], other); ok || err != nil {
		t.Fatalf("different params: ok=%v err=%v, want miss", ok, err)
	}
	if _, ok, err := pr.GetTrajectory(problems.SinklessColoring(4), packParams); ok || err != nil {
		t.Fatalf("absent problem: ok=%v err=%v, want miss", ok, err)
	}
	if _, ok, err := pr.GetStep(probs[0], packParams.MaxStates+1); ok || err != nil {
		t.Fatalf("different budget: ok=%v err=%v, want miss", ok, err)
	}
	if _, ok, err := pr.GetVerdict(probs[0], VerdictParams{Problem: "other"}); ok || err != nil {
		t.Fatalf("absent verdict: ok=%v err=%v, want miss", ok, err)
	}
}

// TestPackClosedDegradesToMiss: lookups after Close return misses
// (never touch the released mapping), and Close is idempotent.
func TestPackClosedDegradesToMiss(t *testing.T) {
	s := openTemp(t)
	probs := populatePackStore(t, s)
	pr, _ := packOf(t, s)
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, ok, err := pr.GetTrajectory(probs[0], packParams); ok || err != nil {
		t.Fatalf("closed pack lookup: ok=%v err=%v, want miss", ok, err)
	}
	if err := pr.Walk(func(Kind, core.StableFingerprint, []byte) error { return nil }); err == nil {
		t.Fatal("Walk on a closed pack succeeded")
	}
}

// mutatePack rewrites the pack file through fn.
func mutatePack(t *testing.T, path string, fn func(data []byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPackCorruption: every damage mode fails OpenPack with its
// sentinel — the serve path degrades on exactly these errors.
func TestPackCorruption(t *testing.T) {
	build := func(t *testing.T) string {
		s := openTemp(t)
		populatePackStore(t, s)
		path := filepath.Join(t.TempDir(), "warm.repack")
		if _, err := s.Pack(path); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("flipped byte", func(t *testing.T) {
		path := build(t)
		mutatePack(t, path, func(data []byte) []byte {
			data[len(data)/2] ^= 0x40
			return data
		})
		if _, err := OpenPack(path); !errors.Is(err, ErrChecksum) {
			t.Fatalf("OpenPack = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		path := build(t)
		mutatePack(t, path, func(data []byte) []byte { return data[:len(data)-7] })
		if _, err := OpenPack(path); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("OpenPack = %v, want ErrChecksum or ErrTruncated", err)
		}
	})
	t.Run("sub-header", func(t *testing.T) {
		path := build(t)
		mutatePack(t, path, func(data []byte) []byte { return data[:packHeaderSize-1] })
		if _, err := OpenPack(path); !errors.Is(err, ErrTruncated) {
			t.Fatalf("OpenPack = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		path := build(t)
		mutatePack(t, path, func(data []byte) []byte {
			copy(data[:8], "NOTAPACK")
			return data
		})
		if _, err := OpenPack(path); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("OpenPack = %v, want ErrBadMagic", err)
		}
	})
	reseal := func(data []byte) []byte {
		copy(data[len(data)-checksumSize:], shaOf(data[:len(data)-checksumSize]))
		return data
	}
	t.Run("container version", func(t *testing.T) {
		path := build(t)
		mutatePack(t, path, func(data []byte) []byte {
			binary.BigEndian.PutUint32(data[8:12], PackFormatVersion+1)
			return reseal(data)
		})
		if _, err := OpenPack(path); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("OpenPack = %v, want ErrVersionMismatch", err)
		}
	})
	t.Run("fingerprint version", func(t *testing.T) {
		path := build(t)
		mutatePack(t, path, func(data []byte) []byte {
			binary.BigEndian.PutUint32(data[12:16], uint32(core.FingerprintVersion+1))
			return reseal(data)
		})
		if _, err := OpenPack(path); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("OpenPack = %v, want ErrVersionMismatch", err)
		}
	})
}

// TestPackSkipsCorruptRecords: a damaged record costs the artifact one
// entry, never the whole pack.
func TestPackSkipsCorruptRecords(t *testing.T) {
	s := openTemp(t)
	in, _ := putOneStep(t, s)
	probs := populatePackStore(t, s)

	// Count clean records, then corrupt the one putOneStep wrote.
	clean, err := s.Pack(filepath.Join(t.TempDir(), "clean.repack"))
	if err != nil {
		t.Fatal(err)
	}
	victim := s.objectPath(KindStep, stepKey(in, 0))
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderSize] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "warm.repack")
	stats, err := s.Pack(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 1 || stats.Entries != clean.Entries-1 {
		t.Fatalf("stats = %+v, want Skipped=1 Entries=%d", stats, clean.Entries-1)
	}
	pr, err := OpenPack(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if _, ok, err := pr.GetStep(in, 0); ok || err != nil {
		t.Fatalf("corrupt record leaked into the pack: ok=%v err=%v", ok, err)
	}
	if _, ok, err := pr.GetTrajectory(probs[0], packParams); !ok || err != nil {
		t.Fatalf("healthy record missing from the pack: ok=%v err=%v", ok, err)
	}
}

// TestPackEmptyStore: an empty store packs to a valid, empty artifact.
func TestPackEmptyStore(t *testing.T) {
	s := openTemp(t)
	path := filepath.Join(t.TempDir(), "empty.repack")
	stats, err := s.Pack(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 0 || stats.Skipped != 0 {
		t.Fatalf("stats = %+v, want empty", stats)
	}
	pr, err := OpenPack(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if pr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", pr.Len())
	}
	if _, ok, err := pr.GetStep(sinkless(t), 0); ok || err != nil {
		t.Fatalf("lookup in empty pack: ok=%v err=%v, want miss", ok, err)
	}
}

// TestPackReaderAtFallback drives parsePack over heap bytes — the exact
// path the non-mmap fallback takes — and verifies a lookup.
func TestPackReaderAtFallback(t *testing.T) {
	s := openTemp(t)
	probs := populatePackStore(t, s)
	_, path := packOf(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := parsePack(data)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if _, ok, err := pr.GetTrajectory(probs[0], packParams); !ok || err != nil {
		t.Fatalf("fallback lookup: ok=%v err=%v, want hit", ok, err)
	}
}

// TestSuccinctSetIndex exercises the trie directly: every inserted key
// maps to its sorted position, perturbed keys miss, and walk recovers
// the exact sorted sequence.
func TestSuccinctSetIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	seen := make(map[string]bool)
	var keys [][]byte
	for len(keys) < 500 {
		key := make([]byte, packKeyLen)
		// A narrow alphabet forces deep shared prefixes.
		for i := range key {
			key[i] = byte(rng.Intn(4))
		}
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	ss, err := newSuccinctSet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		idx, ok := ss.index(key)
		if !ok || idx != i {
			t.Fatalf("index(keys[%d]) = (%d, %v), want (%d, true)", i, idx, ok, i)
		}
		// Perturb one byte out of the alphabet: guaranteed absent.
		miss := append([]byte(nil), key...)
		miss[rng.Intn(packKeyLen)] = 0xFF
		if _, ok := ss.index(miss); ok {
			t.Fatalf("index reported a perturbed key %d as present", i)
		}
	}
	var walked [][]byte
	if err := ss.walk(func(key []byte) error {
		walked = append(walked, append([]byte(nil), key...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(walked) != len(keys) {
		t.Fatalf("walk visited %d of %d keys", len(walked), len(keys))
	}
	for i := range keys {
		if !bytes.Equal(walked[i], keys[i]) {
			t.Fatalf("walk order diverges at %d", i)
		}
	}
	// Construction contract violations are rejected.
	if _, err := newSuccinctSet([][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("newSuccinctSet accepted a short key")
	}
	if _, err := newSuccinctSet([][]byte{keys[1], keys[0]}); err == nil {
		t.Fatal("newSuccinctSet accepted unsorted keys")
	}
}

// TestPackDeterministicAcrossOrders: packing is a pure function of the
// record set, not of directory enumeration order — two stores populated
// in different orders pack bit-identically.
func TestPackDeterministicAcrossOrders(t *testing.T) {
	sA, sB := openTemp(t), openTemp(t)
	populatePackStore(t, sA)
	// Populate B in a different order.
	probs := []*core.Problem{
		problems.WeakTwoColoringPointer(3),
		problems.SinklessOrientation(3),
		problems.SinklessColoring(3),
	}
	rendered := []byte(`{"problem":"sinkless-coloring/delta=3","solvable":true}`)
	if err := sB.PutVerdict(problems.SinklessColoring(3), packVerdictParams, rendered); err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		res, err := fixpoint.Run(p, fixpoint.Options{
			MaxSteps: packParams.MaxSteps,
			Core:     []core.Option{core.WithMaxStates(packParams.MaxStates), core.WithWorkers(1)},
			Memo:     sB.StepMemo(packParams.MaxStates),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sB.PutTrajectory(p, packParams, res); err != nil {
			t.Fatal(err)
		}
	}
	pA := filepath.Join(t.TempDir(), "a.repack")
	pB := filepath.Join(t.TempDir(), "b.repack")
	if _, err := sA.Pack(pA); err != nil {
		t.Fatal(err)
	}
	if _, err := sB.Pack(pB); err != nil {
		t.Fatal(err)
	}
	bA, _ := os.ReadFile(pA)
	bB, _ := os.ReadFile(pB)
	if !bytes.Equal(bA, bB) {
		t.Fatalf("population order changed the pack bytes: %d vs %d", len(bA), len(bB))
	}
}
