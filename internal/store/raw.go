package store

import (
	"os"

	"repro/internal/core"
	"repro/internal/fixpoint"
)

// This file is the store's raw-record surface: whole framed records —
// header, payload, SHA-256 trailer — exposed as byte slices, plus the
// exported key derivations and frame decoders a transport needs to
// move records between stores without ever trusting the wire. It
// exists for internal/cluster's peer protocol: the serving side ships
// validated frames verbatim, and the receiving side re-runs the full
// decode (frame checksum, container version, kind, and the payload's
// embedded canonical-input collision guard) before using a single
// byte, so a corrupt or byzantine peer degrades to a cache miss, never
// to a wrong result.

// Ext returns the kind's filename extension ("step", "traj",
// "verdict", "rendered") — also the kind's wire name in the cluster
// peer protocol.
func (k Kind) Ext() string { return k.ext() }

// KindByExt resolves a filename extension (or peer-protocol kind name)
// back to its Kind. ok is false for unknown extensions.
func KindByExt(ext string) (Kind, bool) {
	switch ext {
	case "step":
		return KindStep, true
	case "traj":
		return KindTrajectory, true
	case "verdict":
		return KindVerdict, true
	case "rendered":
		return KindRendered, true
	default:
		return 0, false
	}
}

// StepRecordKey derives the object key of the memoized speedup step
// for problem in under the given state budget — the same key PutStep
// and GetStep use internally.
func StepRecordKey(in *core.Problem, maxStates int) core.StableFingerprint {
	return stepKey(in, maxStates)
}

// TrajectoryRecordKey derives the object key of the classified
// trajectory for problem in under the given params — the same key
// PutTrajectory and GetTrajectory use internally.
func TrajectoryRecordKey(in *core.Problem, par TrajectoryParams) core.StableFingerprint {
	return subKey(core.StableKey(in), par.tag())
}

// RenderedRecordKey derives the object key of the pre-rendered
// response body for problem in under the given params — the same key
// PutRendered and GetRendered use internally.
func RenderedRecordKey(in *core.Problem, par TrajectoryParams) core.StableFingerprint {
	return subKey(core.StableKey(in), renderedTag(par))
}

// RawRecord returns the complete framed record bytes stored under
// (kind, key) — exactly the file the store committed. The frame is
// validated before it is returned: a present-but-corrupt record yields
// its corruption sentinel, never damaged bytes, so a peer server built
// on RawRecord can only ship frames that were intact on its own disk.
// ok is false when no record exists.
func (s *Store) RawRecord(kind Kind, key core.StableFingerprint) ([]byte, bool, error) {
	data, err := os.ReadFile(s.objectPath(kind, key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if _, derr := decodeRecord(data, kind); derr != nil {
		return nil, false, derr
	}
	return data, true, nil
}

// RawRecord returns the record under (kind, key) as complete framed
// bytes, re-framing the pack's stored payload through the store's
// record encoder. Framing is deterministic, so the frame is
// byte-identical to the store file the payload was packed from — a
// peer can serve pack-tier and store-tier records indistinguishably.
// The error return is always nil (the pack was fully validated at
// open); the signature matches (*Store).RawRecord so both back one
// RecordSource interface.
func (pr *PackReader) RawRecord(kind Kind, key core.StableFingerprint) ([]byte, bool, error) {
	payload, ok := pr.lookup(kind, key)
	if !ok {
		return nil, false, nil
	}
	return encodeRecord(kind, payload), true, nil
}

// DecodeStepRecord validates a transported step-record frame against
// the queried problem and budget and returns the decoded output
// problem. The full receiving-side trust chain runs here: frame magic,
// container version, kind, length, SHA-256 trailer, then the payload's
// embedded input/budget collision guard. Any frame damage yields a
// corruption sentinel; a guard mismatch is a miss (ok false, err nil).
func DecodeStepRecord(frame []byte, in *core.Problem, maxStates int) (*core.Problem, bool, error) {
	payload, err := decodeRecord(frame, KindStep)
	if err != nil {
		return nil, false, err
	}
	return decodeStepPayload(payload, in, maxStates)
}

// DecodeTrajectoryRecord validates a transported trajectory-record
// frame against the queried problem and params and returns the decoded
// fixpoint result — the same trust chain as DecodeStepRecord.
func DecodeTrajectoryRecord(frame []byte, in *core.Problem, par TrajectoryParams) (*fixpoint.Result, bool, error) {
	payload, err := decodeRecord(frame, KindTrajectory)
	if err != nil {
		return nil, false, err
	}
	return decodeTrajectoryPayload(payload, in, par)
}

// DecodeRenderedRecord validates a transported rendered-body frame
// against the queried problem and params and returns the exact NDJSON
// response body — the same trust chain as DecodeStepRecord.
func DecodeRenderedRecord(frame []byte, in *core.Problem, par TrajectoryParams) ([]byte, bool, error) {
	payload, err := decodeRecord(frame, KindRendered)
	if err != nil {
		return nil, false, err
	}
	return decodeRenderedPayload(payload, in, par)
}
