package store

// This file is the pack writer: the store's distributable warm-cache
// artifact. A pack is one read-optimized binary file holding every
// validated record of a store directory — all keys in a sorted
// succinct trie (rank/select bitmaps over the key bytes), all payloads
// in one append-only data section addressed by offset/length — behind
// a versioned header and a whole-file SHA-256 checksum. Store.Pack
// writes one; OpenPack (packreader.go) serves it read-only,
// mmap-backed where available.
//
// On disk (all integers big-endian):
//
//	magic "PODC19PK" · u32 PackFormatVersion · u32 FingerprintVersion
//	u64 entry count · u64 leaves words · u64 label-bitmap words
//	u64 labels bytes · u64 data bytes
//	leaves bitmap · label bitmap · labels
//	entry table (count × u64 offset, u64 length)
//	data section (payloads back to back, sorted-key order)
//	SHA-256 over everything preceding it
//
// The format is deterministic: entries are sorted by key and every
// section is a pure function of the record set, so packing the same
// store twice — or packing, unpacking into a fresh store, and packing
// again — produces bit-identical files. That is what makes a pack a
// cache artifact rather than a database: two builders of the same
// catalog produce the same bytes, and byte comparison is a complete
// integrity check.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"math/bits"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
)

// PackFormatVersion is the on-disk pack container version, written into
// every pack header and rejected on mismatch by OpenPack. Like the
// record FormatVersion there is no migration path: a pack is a cache
// artifact, rebuilt from a store (or recomputed) when the format moves.
// Version 2 added the KindRendered section — pre-rendered response
// bodies packed alongside the records they were rendered from. A v1
// pack would still parse, but serving it would silently miss the
// rendered tier on every query, so the version gate turns "stale
// artifact" into an explicit rebuild signal instead of a quiet
// performance regression.
const PackFormatVersion = 2

// packMagic opens every pack file. Eight bytes, fixed; distinct from
// the per-record magic so a pack can never be mistaken for a record.
const packMagic = "PODC19PK"

// packHeaderSize is magic + pack version + fingerprint version + entry
// count + the four section lengths (leaves words, label-bitmap words,
// labels bytes, data bytes). The entry-table length is derived
// (16 bytes per entry).
const packHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8

// packKeyLen is the fixed trie key length: one kind byte followed by
// the 32-byte stable record key. Fixed-length keys are load-bearing:
// they put every trie leaf at the same depth, which is what makes the
// breadth-first leaf rank equal the sorted key order (the entry-table
// index). newSuccinctSet enforces it.
const packKeyLen = 1 + 32

// packEntrySize is one entry-table slot: big-endian offset and length
// into the data section.
const packEntrySize = 8 + 8

// PackStats reports what Store.Pack put into (and left out of) an
// artifact.
type PackStats struct {
	// Entries is the number of validated records packed.
	Entries int
	// Skipped counts records present in the store but excluded because
	// their frame failed validation (corrupt, truncated, foreign) —
	// packing shares lookup's degradation contract: damage costs
	// warmth, never the artifact.
	Skipped int
}

// packEntry is one record staged for packing.
type packEntry struct {
	key     []byte // packKeyLen bytes: kind byte + stable record key
	payload []byte // validated record payload (the JSON inside the frame)
}

// Pack walks the store's objects and writes the packed warm-cache
// artifact to path, committed with the same temp+rename+dirsync
// protocol as every record. Records that fail frame validation are
// skipped and counted in PackStats.Skipped. The output is
// deterministic in the record set (see the package comment on pack.go).
func (s *Store) Pack(path string) (PackStats, error) {
	var stats PackStats
	var entries []packEntry
	objects := filepath.Join(s.root, "objects")
	err := filepath.WalkDir(objects, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		var kind Kind
		switch filepath.Ext(name) {
		case ".step":
			kind = KindStep
		case ".traj":
			kind = KindTrajectory
		case ".verdict":
			kind = KindVerdict
		case ".rendered":
			kind = KindRendered
		default:
			return nil // temp files and foreign files are not records
		}
		keyBytes, herr := hex.DecodeString(name[:len(name)-len(filepath.Ext(name))])
		if herr != nil || len(keyBytes) != 32 {
			return nil
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		payload, derr := decodeRecord(data, kind)
		if derr != nil {
			stats.Skipped++
			return nil
		}
		key := make([]byte, 0, packKeyLen)
		key = append(key, byte(kind))
		key = append(key, keyBytes...)
		entries = append(entries, packEntry{key: key, payload: payload})
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("store: pack: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].key, entries[j].key) < 0 })
	stats.Entries = len(entries)
	if err := writePackFile(path, entries); err != nil {
		return stats, fmt.Errorf("store: pack: %w", err)
	}
	return stats, nil
}

// writePackFile serializes sorted entries into the pack format and
// commits the file atomically and durably. The whole-file checksum is
// computed while streaming, so the pack never needs to be assembled in
// one buffer.
func writePackFile(path string, entries []packEntry) error {
	keys := make([][]byte, len(entries))
	for i, e := range entries {
		keys[i] = e.key
	}
	ss, err := newSuccinctSet(keys)
	if err != nil {
		return err
	}
	// The entry table is addressed by the trie's leaf rank; verify at
	// build time that it equals the sorted order the entries were
	// written in, so a reader lookup can never land on the wrong
	// payload.
	for i, key := range keys {
		idx, ok := ss.index(key)
		if !ok || idx != i {
			return fmt.Errorf("pack index self-check failed at key %d", i)
		}
	}

	dir := filepath.Dir(path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	var dataLen uint64
	for _, e := range entries {
		dataLen += uint64(len(e.payload))
	}
	h := sha256.New()
	bw := bufio.NewWriter(tmp)
	w := io.MultiWriter(bw, h)

	var scratch [8]byte
	putU32 := func(v uint32) error {
		binary.BigEndian.PutUint32(scratch[:4], v)
		_, err := w.Write(scratch[:4])
		return err
	}
	putU64 := func(v uint64) error {
		binary.BigEndian.PutUint64(scratch[:], v)
		_, err := w.Write(scratch[:])
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		return err
	}

	if _, err := io.WriteString(w, packMagic); err != nil {
		return fail(err)
	}
	if err := putU32(PackFormatVersion); err != nil {
		return fail(err)
	}
	if err := putU32(uint32(core.FingerprintVersion)); err != nil {
		return fail(err)
	}
	for _, v := range []uint64{
		uint64(len(entries)),
		uint64(len(ss.leaves)),
		uint64(len(ss.labelBitmap)),
		uint64(len(ss.labels)),
		dataLen,
	} {
		if err := putU64(v); err != nil {
			return fail(err)
		}
	}
	for _, word := range ss.leaves {
		if err := putU64(word); err != nil {
			return fail(err)
		}
	}
	for _, word := range ss.labelBitmap {
		if err := putU64(word); err != nil {
			return fail(err)
		}
	}
	if _, err := w.Write(ss.labels); err != nil {
		return fail(err)
	}
	var off uint64
	for _, e := range entries {
		if err := putU64(off); err != nil {
			return fail(err)
		}
		if err := putU64(uint64(len(e.payload))); err != nil {
			return fail(err)
		}
		off += uint64(len(e.payload))
	}
	for _, e := range entries {
		if _, err := w.Write(e.payload); err != nil {
			return fail(err)
		}
	}
	// The checksum trailer goes to the file only — it covers everything
	// preceding it.
	if _, err := bw.Write(h.Sum(nil)); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	return commitTemp(tmp, path)
}

// succinctSet is a static trie over a sorted set of equal-length byte
// keys, stored as the classic succinct level-order encoding: labels
// holds every edge byte, labelBitmap marks node boundaries (a 0 bit per
// outgoing edge, a 1 bit terminating each node's edge list), and leaves
// marks terminal nodes. ranks/leafRanks are the per-word popcount
// prefix sums that make rank queries O(1); select is answered by binary
// search over ranks. Membership additionally yields the key's position
// in sorted order, which is the pack's entry-table index.
type succinctSet struct {
	leaves      []uint64
	labelBitmap []uint64
	labels      []byte
	ranks       []int32 // prefix popcounts of labelBitmap words
	leafRanks   []int32 // prefix popcounts of leaves words
}

// newSuccinctSet builds the trie from keys, which must be sorted,
// unique, and all of length packKeyLen — the fixed length is what makes
// the breadth-first leaf rank coincide with sorted order.
func newSuccinctSet(keys [][]byte) (*succinctSet, error) {
	for i, key := range keys {
		if len(key) != packKeyLen {
			return nil, fmt.Errorf("pack key %d has length %d, want %d", i, len(key), packKeyLen)
		}
		if i > 0 && bytes.Compare(keys[i-1], key) >= 0 {
			return nil, fmt.Errorf("pack keys not sorted and unique at %d", i)
		}
	}
	ss := &succinctSet{}
	lIdx := 0
	type queueElt struct{ s, e, col int }
	queue := []queueElt{{0, len(keys), 0}}
	for i := 0; i < len(queue); i++ {
		elt := queue[i]
		if elt.s < elt.e && elt.col == len(keys[elt.s]) {
			elt.s++
			setBit(&ss.leaves, i)
		}
		for j := elt.s; j < elt.e; {
			frm := j
			for ; j < elt.e && keys[j][elt.col] == keys[frm][elt.col]; j++ {
			}
			queue = append(queue, queueElt{frm, j, elt.col + 1})
			ss.labels = append(ss.labels, keys[frm][elt.col])
			lIdx++ // a 0 bit per edge: just advance
		}
		setBit(&ss.labelBitmap, lIdx) // the 1 bit terminating node i
		lIdx++
	}
	growTo(&ss.labelBitmap, lIdx)
	growTo(&ss.leaves, len(queue))
	ss.buildRanks()
	return ss, nil
}

// buildRanks (re)computes the rank prefix sums from the bitmap words.
func (ss *succinctSet) buildRanks() {
	ss.ranks = prefixPopcounts(ss.labelBitmap)
	ss.leafRanks = prefixPopcounts(ss.leaves)
}

// index reports whether key is in the set and, if so, its position in
// the sorted key order.
func (ss *succinctSet) index(key []byte) (int, bool) {
	nodeID, bmIdx := 0, 0
	for i := 0; i < len(key); i++ {
		c := key[i]
		for ; ; bmIdx++ {
			if getBit(ss.labelBitmap, bmIdx) {
				return 0, false // node's edges exhausted: no edge for c
			}
			if ss.labels[bmIdx-nodeID] == c {
				break
			}
		}
		// Follow the edge: the child's id is the number of edges (0
		// bits) up to and including this one; its edge list starts just
		// past the terminator of node child-1.
		nodeID = countZeros(ss.labelBitmap, ss.ranks, bmIdx+1)
		bmIdx = selectIthOne(ss.labelBitmap, ss.ranks, nodeID-1) + 1
	}
	if !getBit(ss.leaves, nodeID) {
		return 0, false
	}
	return rank1(ss.leaves, ss.leafRanks, nodeID), true
}

// walk visits every key in sorted order. The callback's key slice is
// reused between calls — callers must copy what they keep.
func (ss *succinctSet) walk(fn func(key []byte) error) error {
	var key []byte
	var rec func(nodeID int) error
	rec = func(nodeID int) error {
		if getBit(ss.leaves, nodeID) {
			if err := fn(key); err != nil {
				return err
			}
		}
		bmIdx := 0
		if nodeID > 0 {
			bmIdx = selectIthOne(ss.labelBitmap, ss.ranks, nodeID-1) + 1
		}
		for ; !getBit(ss.labelBitmap, bmIdx); bmIdx++ {
			child := countZeros(ss.labelBitmap, ss.ranks, bmIdx+1)
			key = append(key, ss.labels[bmIdx-nodeID])
			if err := rec(child); err != nil {
				return err
			}
			key = key[:len(key)-1]
		}
		return nil
	}
	return rec(0)
}

// setBit sets bit i, growing the word slice as needed.
func setBit(bm *[]uint64, i int) {
	for i>>6 >= len(*bm) {
		*bm = append(*bm, 0)
	}
	(*bm)[i>>6] |= uint64(1) << uint(i&63)
}

// growTo ensures the word slice covers n bits (so serialized sizes are
// a pure function of the bit counts, not of which bits happen to be
// set).
func growTo(bm *[]uint64, n int) {
	words := (n + 63) >> 6
	for len(*bm) < words {
		*bm = append(*bm, 0)
	}
}

// getBit reports bit i. Out-of-range bits read as 0.
func getBit(bm []uint64, i int) bool {
	if i>>6 >= len(bm) {
		return false
	}
	return bm[i>>6]&(uint64(1)<<uint(i&63)) != 0
}

// prefixPopcounts returns r with r[i] = popcount(words[:i]) — one extra
// trailing element, so r[len(words)] is the total.
func prefixPopcounts(words []uint64) []int32 {
	r := make([]int32, len(words)+1)
	for i, w := range words {
		r[i+1] = r[i] + int32(bits.OnesCount64(w))
	}
	return r
}

// rank1 counts the 1 bits in bm[0:i).
func rank1(bm []uint64, ranks []int32, i int) int {
	w, b := i>>6, uint(i&63)
	r := int(ranks[w])
	if b != 0 {
		r += bits.OnesCount64(bm[w] & (uint64(1)<<b - 1))
	}
	return r
}

// countZeros counts the 0 bits in bm[0:i).
func countZeros(bm []uint64, ranks []int32, i int) int {
	return i - rank1(bm, ranks, i)
}

// selectIthOne returns the position of the i-th (0-based) 1 bit:
// binary-search the word via the rank prefix sums, then strip set bits
// inside it. i must index an existing 1 bit.
func selectIthOne(bm []uint64, ranks []int32, i int) int {
	lo, hi := 0, len(bm)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(ranks[mid+1]) > i {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	w := bm[lo]
	for rem := i - int(ranks[lo]); rem > 0; rem-- {
		w &= w - 1
	}
	return lo<<6 + bits.TrailingZeros64(w)
}
