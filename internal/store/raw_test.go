package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
)

// rawTestStore builds a store holding one step, one trajectory, and
// one rendered record for the returned problem and params.
func rawTestStore(t *testing.T) (*Store, *core.Problem, TrajectoryParams) {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := sinkless(t)
	par := TrajectoryParams{MaxSteps: 2, MaxStates: 8000}
	res, err := fixpoint.Run(p, fixpoint.Options{MaxSteps: par.MaxSteps, Core: []core.Option{core.WithMaxStates(par.MaxStates)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutStep(p, res.Trajectory[0], par.MaxStates); err != nil {
		t.Fatal(err)
	}
	if err := st.PutTrajectory(p, par, res); err != nil {
		t.Fatal(err)
	}
	if err := st.PutRendered(p, par, []byte("body-bytes\n")); err != nil {
		t.Fatal(err)
	}
	return st, p, par
}

// TestRawRecordRoundTrip: RawRecord frames decode back to exactly what
// the typed getters return, for every record kind the peer protocol
// ships.
func TestRawRecordRoundTrip(t *testing.T) {
	st, p, par := rawTestStore(t)

	frame, ok, err := st.RawRecord(KindStep, StepRecordKey(p, par.MaxStates))
	if err != nil || !ok {
		t.Fatalf("step RawRecord: ok=%v err=%v", ok, err)
	}
	out, ok, err := DecodeStepRecord(frame, p, par.MaxStates)
	if err != nil || !ok {
		t.Fatalf("DecodeStepRecord: ok=%v err=%v", ok, err)
	}
	want, _, _ := st.GetStep(p, par.MaxStates)
	if !bytes.Equal(out.CanonicalBytes(), want.CanonicalBytes()) {
		t.Fatal("decoded step differs from GetStep")
	}

	frame, ok, err = st.RawRecord(KindTrajectory, TrajectoryRecordKey(p, par))
	if err != nil || !ok {
		t.Fatalf("trajectory RawRecord: ok=%v err=%v", ok, err)
	}
	res, ok, err := DecodeTrajectoryRecord(frame, p, par)
	if err != nil || !ok {
		t.Fatalf("DecodeTrajectoryRecord: ok=%v err=%v", ok, err)
	}
	wantRes, _, _ := st.GetTrajectory(p, par)
	if res.Kind != wantRes.Kind || res.Steps != wantRes.Steps || len(res.Trajectory) != len(wantRes.Trajectory) {
		t.Fatal("decoded trajectory differs from GetTrajectory")
	}

	frame, ok, err = st.RawRecord(KindRendered, RenderedRecordKey(p, par))
	if err != nil || !ok {
		t.Fatalf("rendered RawRecord: ok=%v err=%v", ok, err)
	}
	body, ok, err := DecodeRenderedRecord(frame, p, par)
	if err != nil || !ok {
		t.Fatalf("DecodeRenderedRecord: ok=%v err=%v", ok, err)
	}
	if string(body) != "body-bytes\n" {
		t.Fatalf("decoded body = %q", body)
	}
}

// TestRawRecordMissAndCorrupt: absent records are a clean miss; a
// damaged file surfaces its corruption sentinel rather than bytes.
func TestRawRecordMissAndCorrupt(t *testing.T) {
	st, p, par := rawTestStore(t)
	other := TrajectoryParams{MaxSteps: 63, MaxStates: par.MaxStates}
	if _, ok, err := st.RawRecord(KindRendered, RenderedRecordKey(p, other)); ok || err != nil {
		t.Fatalf("absent record: ok=%v err=%v", ok, err)
	}

	path := st.objectPath(KindRendered, RenderedRecordKey(p, par))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	frame, ok, err := st.RawRecord(KindRendered, RenderedRecordKey(p, par))
	if ok || err == nil || frame != nil {
		t.Fatalf("corrupt record: frame=%v ok=%v err=%v", frame != nil, ok, err)
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt record error = %v, want ErrChecksum", err)
	}
}

// TestPackRawRecordMatchesStoreFrame: re-framing a packed payload is
// byte-identical to the store file it was packed from — the property
// that makes pack-backed and store-backed peers indistinguishable.
func TestPackRawRecordMatchesStoreFrame(t *testing.T) {
	st, p, par := rawTestStore(t)
	packPath := filepath.Join(t.TempDir(), "warm.repack")
	if _, err := st.Pack(packPath); err != nil {
		t.Fatal(err)
	}
	pr, err := OpenPack(packPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()

	for _, probe := range []struct {
		kind Kind
		key  core.StableFingerprint
	}{
		{KindStep, StepRecordKey(p, par.MaxStates)},
		{KindTrajectory, TrajectoryRecordKey(p, par)},
		{KindRendered, RenderedRecordKey(p, par)},
	} {
		storeFrame, ok, err := st.RawRecord(probe.kind, probe.key)
		if err != nil || !ok {
			t.Fatalf("%s: store RawRecord: ok=%v err=%v", probe.kind.Ext(), ok, err)
		}
		packFrame, ok, err := pr.RawRecord(probe.kind, probe.key)
		if err != nil || !ok {
			t.Fatalf("%s: pack RawRecord: ok=%v err=%v", probe.kind.Ext(), ok, err)
		}
		if !bytes.Equal(storeFrame, packFrame) {
			t.Fatalf("%s: pack frame differs from store frame", probe.kind.Ext())
		}
	}
	if _, ok, _ := pr.RawRecord(KindVerdict, StepRecordKey(p, par.MaxStates)); ok {
		t.Fatal("pack RawRecord hit for absent record")
	}
}

// TestDecodeRecordRejectsWrongContext: a perfectly valid frame decoded
// against the wrong kind, problem, or params never yields bytes — the
// receiving-side defense a byzantine peer runs into.
func TestDecodeRecordRejectsWrongContext(t *testing.T) {
	st, p, par := rawTestStore(t)
	frame, ok, err := st.RawRecord(KindRendered, RenderedRecordKey(p, par))
	if err != nil || !ok {
		t.Fatal("rendered RawRecord failed")
	}

	// Wrong kind: sentinel.
	if _, ok, err := DecodeStepRecord(frame, p, par.MaxStates); ok || !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("wrong-kind decode: ok=%v err=%v", ok, err)
	}
	// Wrong params: valid frame, guard miss.
	if _, ok, err := DecodeRenderedRecord(frame, p, TrajectoryParams{MaxSteps: 63, MaxStates: par.MaxStates}); ok || err != nil {
		t.Fatalf("wrong-params decode: ok=%v err=%v", ok, err)
	}
	// Truncated frame: sentinel.
	if _, ok, err := DecodeRenderedRecord(frame[:len(frame)-1], p, par); ok || !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated decode: ok=%v err=%v", ok, err)
	}
}

// TestKindExtRoundTrip: every record kind's wire name resolves back to
// itself, and unknown names are rejected.
func TestKindExtRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindStep, KindTrajectory, KindVerdict, KindRendered} {
		got, ok := KindByExt(k.Ext())
		if !ok || got != k {
			t.Fatalf("KindByExt(%q) = %v, %v", k.Ext(), got, ok)
		}
	}
	for _, ext := range []string{"", "stepp", "kind5", "STEP"} {
		if _, ok := KindByExt(ext); ok {
			t.Fatalf("KindByExt(%q) accepted", ext)
		}
	}
}
