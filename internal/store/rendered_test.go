package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestRenderedRoundTrip locks the rendered-body record contract: exact
// bytes back, scoped to the exact problem and budgets.
func TestRenderedRoundTrip(t *testing.T) {
	s := openTemp(t)
	in := sinkless(t)
	par := TrajectoryParams{MaxSteps: 16, MaxStates: 0}
	body := []byte("{\"index\":0}\n{\"classification\":\"fixed point\"}\n")

	if _, ok, err := s.GetRendered(in, par); ok || err != nil {
		t.Fatalf("empty store: GetRendered = (_, %v, %v), want miss", ok, err)
	}
	if err := s.PutRendered(in, par, body); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetRendered(in, par)
	if err != nil || !ok {
		t.Fatalf("GetRendered = (_, %v, %v), want hit", ok, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("GetRendered = %q, want %q", got, body)
	}

	// Budget scoping: the same problem under different budgets is a miss.
	if _, ok, err := s.GetRendered(in, TrajectoryParams{MaxSteps: 8}); ok || err != nil {
		t.Fatalf("GetRendered(other steps) = (_, %v, %v), want miss", ok, err)
	}
	if _, ok, err := s.GetRendered(in, TrajectoryParams{MaxSteps: 16, MaxStates: 100}); ok || err != nil {
		t.Fatalf("GetRendered(other states) = (_, %v, %v), want miss", ok, err)
	}
	// A different problem is a miss.
	other := core.MustParse("node:\n0 0\nedge:\n0 0\n")
	if _, ok, err := s.GetRendered(other, par); ok || err != nil {
		t.Fatalf("GetRendered(other problem) = (_, %v, %v), want miss", ok, err)
	}
}

// TestRenderedCorruptSurfacesSentinel checks a damaged rendered record
// reports a corruption sentinel (the serve path counts it and degrades
// to re-rendering — it must never serve the damaged body).
func TestRenderedCorruptSurfacesSentinel(t *testing.T) {
	s := openTemp(t)
	in := sinkless(t)
	par := TrajectoryParams{MaxSteps: 16}
	if err := s.PutRendered(in, par, []byte("{\"index\":0}\n")); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(KindRendered, subKey(core.StableKey(in), renderedTag(par)))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := s.GetRendered(in, par)
	if ok {
		t.Fatal("corrupt rendered record served as a hit")
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt rendered record: err = %v, want ErrChecksum", err)
	}
}

// TestRenderedPackRoundTrip checks rendered records ride the pack:
// packed, served byte-identically by the reader, and unpacked bit-exact.
func TestRenderedPackRoundTrip(t *testing.T) {
	s := openTemp(t)
	in := sinkless(t)
	par := TrajectoryParams{MaxSteps: 16}
	body := []byte("{\"index\":0}\n{\"classification\":\"cycle\"}\n")
	if err := s.PutRendered(in, par, body); err != nil {
		t.Fatal(err)
	}
	packPath := filepath.Join(t.TempDir(), "catalog.pack")
	stats, err := s.Pack(packPath)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 1 || stats.Skipped != 0 {
		t.Fatalf("PackStats = %+v, want 1 entry", stats)
	}
	pr, err := OpenPack(packPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	got, ok, err := pr.GetRendered(in, par)
	if err != nil || !ok {
		t.Fatalf("pack GetRendered = (_, %v, %v), want hit", ok, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("pack GetRendered = %q, want %q", got, body)
	}
	// Unpack → repack is bit-exact (the determinism contract now
	// covering the rendered section).
	s2 := openTemp(t)
	if n, err := Unpack(pr, s2); err != nil || n != 1 {
		t.Fatalf("Unpack = (%d, %v)", n, err)
	}
	pack2 := filepath.Join(t.TempDir(), "again.pack")
	if _, err := s2.Pack(pack2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(packPath)
	b2, _ := os.ReadFile(pack2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("pack -> unpack -> pack is not bit-identical with rendered records")
	}
}

// FuzzRenderedRecord fuzzes the rendered-record frame and payload
// parse: arbitrary bytes in place of a committed record must either
// decode to the exact committed body or fail closed (miss/sentinel) —
// never panic, never return ok with a different body. This is the
// degrade-to-re-render guarantee of the serve path's rendered tier.
func FuzzRenderedRecord(f *testing.F) {
	in := core.MustParse("node:\n0^2 1\nedge:\n0 0\n0 1\n")
	par := TrajectoryParams{MaxSteps: 16}
	body := []byte("{\"index\":0}\n{\"classification\":\"fixed point\"}\n")
	payload, err := encodeRenderedPayload(in, par, body)
	if err != nil {
		f.Fatal(err)
	}
	valid := encodeRecord(KindRendered, payload)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("PODC19RS garbage"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[recordHeaderSize+4] ^= 0x20
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := decodeRecord(data, KindRendered)
		if err != nil {
			return // fail-closed: the serve path counts it and re-renders
		}
		got, ok, err := decodeRenderedPayload(payload, in, par)
		if err != nil || !ok {
			return // fail-closed
		}
		// The frame checksum and the embedded-input guard passed: the
		// only accepting input is the committed record itself.
		if !bytes.Equal(got, body) {
			t.Fatalf("accepted a rendered body that differs from the committed one: %q", got)
		}
	})
}

// encodeRenderedPayload builds a rendered record payload outside Put,
// for the fuzz harness.
func encodeRenderedPayload(in *core.Problem, par TrajectoryParams, body []byte) ([]byte, error) {
	return json.Marshal(renderedPayload{
		FPVersion: core.FingerprintVersion,
		MaxSteps:  par.MaxSteps,
		MaxStates: par.MaxStates,
		Input:     string(in.CanonicalBytes()),
		Body:      string(body),
	})
}
