package store

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/problems"
)

func sinkless(t *testing.T) *core.Problem {
	t.Helper()
	return core.MustParse("node:\n0^2 1\nedge:\n0 0\n0 1\n")
}

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStepRoundTrip(t *testing.T) {
	s := openTemp(t)
	in := sinkless(t)

	if _, ok, err := s.GetStep(in, 0); ok || err != nil {
		t.Fatalf("empty store: GetStep = (_, %v, %v), want miss", ok, err)
	}

	derived, err := core.Speedup(in)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := derived.RenameCompact()
	if err := s.PutStep(in, out, 0); err != nil {
		t.Fatal(err)
	}

	got, ok, err := s.GetStep(in, 0)
	if err != nil || !ok {
		t.Fatalf("GetStep = (_, %v, %v), want hit", ok, err)
	}
	if !got.Equal(out) {
		t.Fatalf("GetStep returned a different problem:\n%s\nvs\n%s", got, out)
	}
	if string(got.CanonicalBytes()) != string(out.CanonicalBytes()) {
		t.Fatal("GetStep output is not byte-identical to what was stored")
	}

	// The Memo adapter sees the same hit.
	if memoOut, ok := s.StepMemo(0).LookupStep(in); !ok || !memoOut.Equal(out) {
		t.Fatal("LookupStep does not match GetStep")
	}
	// A different problem is a miss.
	if _, ok, err := s.GetStep(out, 0); ok || err != nil {
		t.Fatalf("GetStep(other) = (_, %v, %v), want miss", ok, err)
	}
	// The same problem under a different state budget is a miss: steps
	// cached under one budget must never answer for another.
	if _, ok, err := s.GetStep(in, 100); ok || err != nil {
		t.Fatalf("GetStep(other budget) = (_, %v, %v), want miss", ok, err)
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	s := openTemp(t)
	par := TrajectoryParams{MaxSteps: 16}

	for _, entry := range []problems.Entry{
		{Name: "sinkless-coloring/delta=3", Problem: problems.SinklessColoring(3)},
		{Name: "sinkless-orientation/delta=3", Problem: problems.SinklessOrientation(3)},
	} {
		res, err := fixpoint.Run(entry.Problem, fixpoint.Options{MaxSteps: par.MaxSteps})
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if _, ok, err := s.GetTrajectory(entry.Problem, par); ok || err != nil {
			t.Fatalf("%s: unexpected hit before put", entry.Name)
		}
		if err := s.PutTrajectory(entry.Problem, par, res); err != nil {
			t.Fatalf("%s: put: %v", entry.Name, err)
		}
		got, ok, err := s.GetTrajectory(entry.Problem, par)
		if err != nil || !ok {
			t.Fatalf("%s: GetTrajectory = (_, %v, %v), want hit", entry.Name, ok, err)
		}
		if got.Kind != res.Kind || got.Steps != res.Steps ||
			got.CycleStart != res.CycleStart || got.CycleLen != res.CycleLen {
			t.Fatalf("%s: classification changed across the round trip: %+v vs %+v", entry.Name, got, res)
		}
		if len(got.Trajectory) != len(res.Trajectory) {
			t.Fatalf("%s: trajectory length %d, want %d", entry.Name, len(got.Trajectory), len(res.Trajectory))
		}
		for i := range got.Trajectory {
			if string(got.Trajectory[i].CanonicalBytes()) != string(res.Trajectory[i].CanonicalBytes()) {
				t.Fatalf("%s: trajectory entry %d not byte-identical", entry.Name, i)
			}
		}
		if len(got.Witness) != len(res.Witness) {
			t.Fatalf("%s: witness size %d, want %d", entry.Name, len(got.Witness), len(res.Witness))
		}
		for from, to := range res.Witness {
			if got.Witness[from] != to {
				t.Fatalf("%s: witness disagrees at %d", entry.Name, from)
			}
		}
		// Different params miss.
		if _, ok, _ := s.GetTrajectory(entry.Problem, TrajectoryParams{MaxSteps: par.MaxSteps + 1}); ok {
			t.Fatalf("%s: hit under different params", entry.Name)
		}
	}
}

func TestTrajectoryBudgetExceededRoundTrip(t *testing.T) {
	s := openTemp(t)
	// A tiny state budget forces BudgetExceeded with a non-nil Err.
	par := TrajectoryParams{MaxSteps: 16, MaxStates: 1}
	p := problems.WeakTwoColoringPointer(3)
	res, err := fixpoint.Run(p, fixpoint.Options{
		MaxSteps: par.MaxSteps,
		Core:     []core.Option{core.WithMaxStates(par.MaxStates)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != fixpoint.BudgetExceeded || res.Err == nil {
		t.Fatalf("setup: Kind=%v Err=%v, want BudgetExceeded with error", res.Kind, res.Err)
	}
	if err := s.PutTrajectory(p, par, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetTrajectory(p, par)
	if err != nil || !ok {
		t.Fatalf("GetTrajectory = (_, %v, %v), want hit", ok, err)
	}
	if got.Kind != fixpoint.BudgetExceeded {
		t.Fatalf("Kind = %v, want BudgetExceeded", got.Kind)
	}
	if got.Err == nil || got.Err.Error() != res.Err.Error() {
		t.Fatalf("Err = %v, want %v", got.Err, res.Err)
	}
	if !errors.Is(got.Err, core.ErrStateBudget) {
		t.Fatal("restored error lost errors.Is(core.ErrStateBudget)")
	}
}

// TestMemoHitMatchesColdRun pins the memo contract end to end: a
// fixpoint run whose every step comes from the store is byte-identical
// to the cold run that populated it. Budgets match the golden-test
// bounds — several catalog trajectories grow without bound and are
// meant to exhaust the budget deterministically.
func TestMemoHitMatchesColdRun(t *testing.T) {
	s := openTemp(t)
	maxStates := 60_000
	if testing.Short() {
		maxStates = 8_000
	}
	opts := func(memo fixpoint.Memo) fixpoint.Options {
		return fixpoint.Options{
			MaxSteps: 3,
			Core:     []core.Option{core.WithMaxStates(maxStates), core.WithWorkers(1)},
			Memo:     memo,
		}
	}
	memo := s.StepMemo(maxStates)
	for _, entry := range problems.Catalog() {
		cold, err := fixpoint.Run(entry.Problem, opts(memo))
		if err != nil {
			t.Fatalf("%s: cold: %v", entry.Name, err)
		}
		warm, err := fixpoint.Run(entry.Problem, opts(memo))
		if err != nil {
			t.Fatalf("%s: warm: %v", entry.Name, err)
		}
		if warm.Kind != cold.Kind || warm.Steps != cold.Steps ||
			warm.CycleStart != cold.CycleStart || warm.CycleLen != cold.CycleLen {
			t.Fatalf("%s: warm classification differs: %+v vs %+v", entry.Name, warm, cold)
		}
		for i := range cold.Trajectory {
			if string(warm.Trajectory[i].CanonicalBytes()) != string(cold.Trajectory[i].CanonicalBytes()) {
				t.Fatalf("%s: warm trajectory entry %d differs", entry.Name, i)
			}
		}
		// And both match the memo-less run.
		bare, err := fixpoint.Run(entry.Problem, opts(nil))
		if err != nil {
			t.Fatalf("%s: bare: %v", entry.Name, err)
		}
		if bare.Kind != cold.Kind || bare.Steps != cold.Steps {
			t.Fatalf("%s: memo changed the classification", entry.Name)
		}
		for i := range bare.Trajectory {
			if string(bare.Trajectory[i].CanonicalBytes()) != string(cold.Trajectory[i].CanonicalBytes()) {
				t.Fatalf("%s: memo changed trajectory entry %d", entry.Name, i)
			}
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

// stepObjectPath returns the on-disk path of the single .step record in
// the store, for the corruption tests.
func stepObjectPath(t *testing.T, s *Store) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Root(), "objects", "*", "*.step"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one step object, got %v (%v)", matches, err)
	}
	return matches[0]
}

// TestVerdictRoundTrip: verdict records replay the rendered bytes
// verbatim, and every parameter of the identity discriminates.
func TestVerdictRoundTrip(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "results"))
	if err != nil {
		t.Fatal(err)
	}
	p := sinkless(t)
	params := VerdictParams{Problem: "sinkless-coloring/delta=3", Rounds: 1, MaxN: 5, Family: "regular", Seed: 1}
	rendered := []byte(`{"problem":"sinkless-coloring/delta=3","solvable":true}`)

	if _, ok, err := st.GetVerdict(p, params); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if err := st.PutVerdict(p, params, rendered); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.GetVerdict(p, params)
	if err != nil || !ok {
		t.Fatalf("warm lookup: ok=%v err=%v", ok, err)
	}
	if string(got) != string(rendered) {
		t.Fatalf("replayed %q, want %q", got, rendered)
	}

	// Every varied parameter must miss, never mis-serve.
	variants := []VerdictParams{params, params, params, params, params, params, params}
	variants[0].Problem = "other"
	variants[1].Rounds = 2
	variants[2].MaxN = 6
	variants[3].Family = "cycles"
	variants[4].Seed = 2
	variants[5].Relaxed = true
	variants[6].Conformance = true
	for i, v := range variants {
		if _, ok, err := st.GetVerdict(p, v); ok || err != nil {
			t.Fatalf("variant %d: ok=%v err=%v, want miss", i, ok, err)
		}
	}
	// A different problem representation misses too.
	if _, ok, err := st.GetVerdict(problems.SinklessColoring(4), params); ok || err != nil {
		t.Fatalf("different problem: ok=%v err=%v, want miss", ok, err)
	}
}
