package store

// This file is the pack reader: the read-only, mmap-backed view of a
// packed warm-cache artifact (see pack.go for the format). OpenPack
// validates the whole file once — magic, versions, section geometry,
// entry bounds, SHA-256 — so lookups afterwards never re-verify and
// never fail, they only hit or miss. The reader mirrors the Store's
// GetStep/GetTrajectory/GetVerdict API and shares its payload decoding,
// which is what makes a pack-served reply byte-identical to a
// JSON-store or cold reply for the same query.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/fixpoint"
)

// PackReader serves lookups from one pack file, validated in full at
// open time. It is safe for concurrent use; Close is safe to race with
// lookups (a lookup against a closed reader degrades to a miss, never
// touches unmapped memory).
type PackReader struct {
	mu     sync.RWMutex
	data   []byte       // the whole file: mmap-backed or heap-backed
	unmap  func() error // non-nil when data is a live mapping
	closed bool

	count    int
	ss       *succinctSet
	entries  []byte // entry table, aliasing data
	payloads []byte // data section, aliasing data
}

// OpenPack opens and fully validates the pack at path: mmap where the
// platform supports it, an io.ReaderAt full read otherwise. Validation
// failures wrap the store's corruption sentinels — ErrBadMagic,
// ErrVersionMismatch (container or fingerprint version), ErrTruncated,
// ErrChecksum — so callers can degrade exactly as they do for damaged
// records.
func OpenPack(path string) (*PackReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mmap (when used) survives the fd
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(fi.Size())
	data, unmap, err := mapFile(f, size)
	if err != nil {
		// No mmap on this platform (or it failed): read the whole file
		// through the io.ReaderAt interface instead.
		data = make([]byte, size)
		if _, rerr := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), data); rerr != nil {
			return nil, fmt.Errorf("store: open pack %s: %w", path, rerr)
		}
		unmap = nil
	}
	pr, err := parsePack(data)
	if err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, fmt.Errorf("store: open pack %s: %w", path, err)
	}
	pr.unmap = unmap
	return pr, nil
}

// parsePack validates the pack bytes and assembles the reader over
// them.
func parsePack(data []byte) (*PackReader, error) {
	if len(data) < packHeaderSize+checksumSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(data), packHeaderSize+checksumSize)
	}
	if !bytes.Equal(data[:8], []byte(packMagic)) {
		return nil, ErrBadMagic
	}
	version := binary.BigEndian.Uint32(data[8:12])
	if version != PackFormatVersion {
		return nil, fmt.Errorf("%w: pack v%d, reader v%d", ErrVersionMismatch, version, PackFormatVersion)
	}
	fpVersion := int(binary.BigEndian.Uint32(data[12:16]))
	if fpVersion != core.FingerprintVersion {
		return nil, fmt.Errorf("%w: pack fingerprint v%d, engine v%d", ErrVersionMismatch, fpVersion, core.FingerprintVersion)
	}
	// Checksum before geometry: any damaged byte past the version words
	// reports ErrChecksum, whatever field it landed in.
	sum := sha256.Sum256(data[:len(data)-checksumSize])
	if !bytes.Equal(sum[:], data[len(data)-checksumSize:]) {
		return nil, ErrChecksum
	}
	count := binary.BigEndian.Uint64(data[16:24])
	leavesWords := binary.BigEndian.Uint64(data[24:32])
	labelWords := binary.BigEndian.Uint64(data[32:40])
	labelsLen := binary.BigEndian.Uint64(data[40:48])
	dataLen := binary.BigEndian.Uint64(data[48:56])
	body := uint64(len(data) - packHeaderSize - checksumSize)
	// Each term is checked individually before the sum so a forged
	// header cannot overflow it.
	if leavesWords > body/8 || labelWords > body/8 || labelsLen > body ||
		count > body/packEntrySize || dataLen > body {
		return nil, fmt.Errorf("%w: section sizes exceed the %d-byte body", ErrTruncated, body)
	}
	if need := leavesWords*8 + labelWords*8 + labelsLen + count*packEntrySize + dataLen; need != body {
		return nil, fmt.Errorf("%w: sections promise %d body bytes, file has %d", ErrTruncated, need, body)
	}

	off := uint64(packHeaderSize)
	readWords := func(n uint64) []uint64 {
		words := make([]uint64, n)
		for i := range words {
			words[i] = binary.BigEndian.Uint64(data[off:])
			off += 8
		}
		return words
	}
	ss := &succinctSet{
		leaves:      readWords(leavesWords),
		labelBitmap: readWords(labelWords),
	}
	ss.labels = data[off : off+labelsLen]
	off += labelsLen
	ss.buildRanks()
	entries := data[off : off+count*packEntrySize]
	off += count * packEntrySize
	payloads := data[off : off+dataLen]
	// Bounds-check every entry once, so lookups can slice the data
	// section without rechecking.
	for i := uint64(0); i < count; i++ {
		o := binary.BigEndian.Uint64(entries[i*packEntrySize:])
		l := binary.BigEndian.Uint64(entries[i*packEntrySize+8:])
		if o+l < o || o+l > dataLen {
			return nil, fmt.Errorf("%w: entry %d spans [%d, %d) of a %d-byte data section", ErrTruncated, i, o, o+l, dataLen)
		}
	}
	return &PackReader{data: data, count: int(count), ss: ss, entries: entries, payloads: payloads}, nil
}

// Close releases the reader; with an mmap backing it unmaps the file.
// Idempotent. Lookups racing or following Close return misses.
func (pr *PackReader) Close() error {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.closed {
		return nil
	}
	pr.closed = true
	if pr.unmap != nil {
		return pr.unmap()
	}
	return nil
}

// Len returns the number of records in the pack.
func (pr *PackReader) Len() int { return pr.count }

// lookup returns a copy of the payload stored under (kind, key). The
// copy is deliberate: returned payloads outlive the reader (a serve
// path may still be rendering after the engine — and the mapping — is
// closed), so nothing returned may alias the mmap.
func (pr *PackReader) lookup(kind Kind, key core.StableFingerprint) ([]byte, bool) {
	pr.mu.RLock()
	defer pr.mu.RUnlock()
	if pr.closed {
		return nil, false
	}
	var kb [packKeyLen]byte
	kb[0] = byte(kind)
	copy(kb[1:], key[:])
	idx, ok := pr.ss.index(kb[:])
	if !ok {
		return nil, false
	}
	off := binary.BigEndian.Uint64(pr.entries[idx*packEntrySize:])
	length := binary.BigEndian.Uint64(pr.entries[idx*packEntrySize+8:])
	out := make([]byte, length)
	copy(out, pr.payloads[off:off+length])
	return out, true
}

// GetStep mirrors Store.GetStep over the pack: the memoized speedup
// step for the exact problem under the exact state budget, validated by
// the same collision guard, absent records a miss.
func (pr *PackReader) GetStep(in *core.Problem, maxStates int) (*core.Problem, bool, error) {
	payload, ok := pr.lookup(KindStep, stepKey(in, maxStates))
	if !ok {
		return nil, false, nil
	}
	return decodeStepPayload(payload, in, maxStates)
}

// GetTrajectory mirrors Store.GetTrajectory over the pack.
func (pr *PackReader) GetTrajectory(in *core.Problem, par TrajectoryParams) (*fixpoint.Result, bool, error) {
	payload, ok := pr.lookup(KindTrajectory, subKey(core.StableKey(in), par.tag()))
	if !ok {
		return nil, false, nil
	}
	return decodeTrajectoryPayload(payload, in, par)
}

// GetRendered mirrors Store.GetRendered over the pack: the exact
// pre-rendered NDJSON response body for the query, behind the same
// collision guard, so a pack-served body is byte-identical to a
// store-served or freshly rendered one.
func (pr *PackReader) GetRendered(in *core.Problem, par TrajectoryParams) ([]byte, bool, error) {
	payload, ok := pr.lookup(KindRendered, subKey(core.StableKey(in), renderedTag(par)))
	if !ok {
		return nil, false, nil
	}
	return decodeRenderedPayload(payload, in, par)
}

// GetVerdict mirrors Store.GetVerdict over the pack.
func (pr *PackReader) GetVerdict(in *core.Problem, par VerdictParams) ([]byte, bool, error) {
	payload, ok := pr.lookup(KindVerdict, subKey(core.StableKey(in), par.tag()))
	if !ok {
		return nil, false, nil
	}
	return decodeVerdictPayload(payload, in, par)
}

// Walk visits every record in the pack in sorted key order. The payload
// slice passed to fn is a fresh copy per record.
func (pr *PackReader) Walk(fn func(kind Kind, key core.StableFingerprint, payload []byte) error) error {
	pr.mu.RLock()
	defer pr.mu.RUnlock()
	if pr.closed {
		return fmt.Errorf("store: walk on closed pack")
	}
	idx := 0
	err := pr.ss.walk(func(kb []byte) error {
		if len(kb) != packKeyLen {
			return fmt.Errorf("store: pack key of length %d", len(kb))
		}
		var key core.StableFingerprint
		copy(key[:], kb[1:])
		off := binary.BigEndian.Uint64(pr.entries[idx*packEntrySize:])
		length := binary.BigEndian.Uint64(pr.entries[idx*packEntrySize+8:])
		payload := make([]byte, length)
		copy(payload, pr.payloads[off:off+length])
		idx++
		return fn(Kind(kb[0]), key, payload)
	})
	if err != nil {
		return err
	}
	if idx != pr.count {
		return fmt.Errorf("store: pack walk visited %d of %d records", idx, pr.count)
	}
	return nil
}

// Unpack rematerializes every pack record as an object file in s, via
// the same framing and atomic commit as a directly-written record —
// which is what makes pack → unpack → pack round-trip bit-exactly. It
// returns the number of records written.
func Unpack(pr *PackReader, s *Store) (int, error) {
	n := 0
	err := pr.Walk(func(kind Kind, key core.StableFingerprint, payload []byte) error {
		if err := s.putRecord(kind, key, payload); err != nil {
			return err
		}
		n++
		return nil
	})
	return n, err
}
