package store

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fixpoint"
)

// TrajectoryParams identifies the budget under which a trajectory was
// classified. Conclusive classifications (fixed point, cycle,
// collapsed, zero-round) do not depend on the budget that happened to
// be in force, but BudgetExceeded ones do — so the budget is part of
// the record identity, and a lookup only ever returns a result that a
// cold run with the same flags would have produced byte-identically.
type TrajectoryParams struct {
	// MaxSteps is the fixpoint iteration bound (fixpoint.Options.MaxSteps).
	MaxSteps int
	// MaxStates is the per-step core.WithMaxStates budget; 0 means the
	// core default was in force.
	MaxStates int
}

// tag renders the params into the key-derivation discriminator.
func (p TrajectoryParams) tag() string {
	return fmt.Sprintf("|traj|max_steps=%d|max_states=%d", p.MaxSteps, p.MaxStates)
}

// trajectoryPayload is the JSON payload of a KindTrajectory record: a
// fixpoint.Result with every problem in canonical serialization.
type trajectoryPayload struct {
	FPVersion  int      `json:"fp_version"`
	MaxSteps   int      `json:"max_steps"`
	MaxStates  int      `json:"max_states"`
	Input      string   `json:"input"`
	Kind       int      `json:"kind"`
	Steps      int      `json:"steps"`
	CycleStart int      `json:"cycle_start"`
	CycleLen   int      `json:"cycle_len"`
	Witness    [][2]int `json:"witness,omitempty"`
	ErrMsg     string   `json:"err,omitempty"`
	Trajectory []string `json:"trajectory"`
}

// PutTrajectory persists a classified fixpoint run: res must be the
// result of fixpoint.Run(in-equivalent, ...) under the given params.
// The full trajectory is stored, so a later GetTrajectory reproduces
// the result byte-for-byte (problems, classification, witness, and —
// for BudgetExceeded — the budget error message).
func (s *Store) PutTrajectory(in *core.Problem, par TrajectoryParams, res *fixpoint.Result) error {
	payload := trajectoryPayload{
		FPVersion:  core.FingerprintVersion,
		MaxSteps:   par.MaxSteps,
		MaxStates:  par.MaxStates,
		Input:      string(in.CanonicalBytes()),
		Kind:       int(res.Kind),
		Steps:      res.Steps,
		CycleStart: res.CycleStart,
		CycleLen:   res.CycleLen,
		Trajectory: make([]string, len(res.Trajectory)),
	}
	for i, p := range res.Trajectory {
		payload.Trajectory[i] = string(p.CanonicalBytes())
	}
	for from, to := range res.Witness {
		payload.Witness = append(payload.Witness, [2]int{int(from), int(to)})
	}
	sort.Slice(payload.Witness, func(i, j int) bool { return payload.Witness[i][0] < payload.Witness[j][0] })
	if res.Err != nil {
		payload.ErrMsg = res.Err.Error()
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: put trajectory: %w", err)
	}
	return s.putRecord(KindTrajectory, subKey(core.StableKey(in), par.tag()), data)
}

// GetTrajectory looks up the classified fixpoint run for the exact
// problem in under the exact params. Corrupt records surface their
// sentinel; records whose embedded input or params disagree with the
// query are a miss.
func (s *Store) GetTrajectory(in *core.Problem, par TrajectoryParams) (*fixpoint.Result, bool, error) {
	data, ok, err := s.getRecord(KindTrajectory, subKey(core.StableKey(in), par.tag()))
	if !ok || err != nil {
		return nil, false, err
	}
	return decodeTrajectoryPayload(data, in, par)
}

// decodeTrajectoryPayload validates a trajectory payload against the
// queried problem and params. Shared by the JSON store and the pack
// reader (see decodeStepPayload).
func decodeTrajectoryPayload(data []byte, in *core.Problem, par TrajectoryParams) (*fixpoint.Result, bool, error) {
	var payload trajectoryPayload
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, false, fmt.Errorf("store: get trajectory: %w", err)
	}
	if payload.FPVersion != core.FingerprintVersion ||
		payload.MaxSteps != par.MaxSteps || payload.MaxStates != par.MaxStates ||
		payload.Input != string(in.CanonicalBytes()) {
		return nil, false, nil
	}
	res := &fixpoint.Result{
		Kind:       fixpoint.Kind(payload.Kind),
		Steps:      payload.Steps,
		CycleStart: payload.CycleStart,
		CycleLen:   payload.CycleLen,
		Trajectory: make([]*core.Problem, len(payload.Trajectory)),
	}
	for i, text := range payload.Trajectory {
		p, err := core.ParseCanonical([]byte(text))
		if err != nil {
			return nil, false, fmt.Errorf("store: get trajectory: entry %d: %w", i, err)
		}
		res.Trajectory[i] = p
	}
	if len(payload.Witness) > 0 {
		res.Witness = make(core.LabelMap, len(payload.Witness))
		for _, pair := range payload.Witness {
			res.Witness[core.Label(pair[0])] = core.Label(pair[1])
		}
	}
	if payload.ErrMsg != "" {
		res.Err = &storedBudgetError{msg: payload.ErrMsg}
	}
	return res, true, nil
}

// storedBudgetError restores a persisted budget-exhaustion error: the
// original message byte-for-byte, still matching
// errors.Is(err, core.ErrStateBudget).
type storedBudgetError struct{ msg string }

func (e *storedBudgetError) Error() string { return e.msg }
func (e *storedBudgetError) Unwrap() error { return core.ErrStateBudget }
