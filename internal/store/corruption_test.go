package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/problems"
)

// shaOf re-seals a record trailer after a deliberate header mutation.
func shaOf(b []byte) []byte {
	sum := sha256.Sum256(b)
	return sum[:]
}

// putOneStep populates s with a single step record and returns its
// input and output problems.
func putOneStep(t *testing.T, s *Store) (in, out *core.Problem) {
	t.Helper()
	in = sinkless(t)
	derived, err := core.Speedup(in)
	if err != nil {
		t.Fatal(err)
	}
	out, _ = derived.RenameCompact()
	if err := s.PutStep(in, out, 0); err != nil {
		t.Fatal(err)
	}
	return in, out
}

// corrupt rewrites the single step record of s through fn.
func corrupt(t *testing.T, s *Store, fn func(data []byte) []byte) {
	t.Helper()
	path := stepObjectPath(t, s)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionTruncatedRecord(t *testing.T) {
	for _, cut := range []int{1, checksumSize, checksumSize + 3} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			s := openTemp(t)
			in, _ := putOneStep(t, s)
			corrupt(t, s, func(data []byte) []byte { return data[:len(data)-cut] })

			_, ok, err := s.GetStep(in, 0)
			if ok {
				t.Fatal("GetStep returned a hit from a truncated record")
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("err = %v, want ErrTruncated or ErrChecksum", err)
			}
			// The Memo adapter degrades to a miss, never an error.
			if _, ok := s.StepMemo(0).LookupStep(in); ok {
				t.Fatal("LookupStep returned a hit from a truncated record")
			}
		})
	}
	// Truncation below the header is its own code path.
	s := openTemp(t)
	in, _ := putOneStep(t, s)
	corrupt(t, s, func(data []byte) []byte { return data[:recordHeaderSize-1] })
	if _, ok, err := s.GetStep(in, 0); ok || !errors.Is(err, ErrTruncated) {
		t.Fatalf("GetStep on sub-header file = (_, %v, %v), want ErrTruncated", ok, err)
	}
}

func TestCorruptionBadChecksum(t *testing.T) {
	s := openTemp(t)
	in, _ := putOneStep(t, s)
	// Flip one payload byte; header and length stay plausible.
	corrupt(t, s, func(data []byte) []byte {
		data[recordHeaderSize] ^= 0x40
		return data
	})
	_, ok, err := s.GetStep(in, 0)
	if ok || !errors.Is(err, ErrChecksum) {
		t.Fatalf("GetStep = (_, %v, %v), want ErrChecksum", ok, err)
	}
	if _, ok := s.StepMemo(0).LookupStep(in); ok {
		t.Fatal("LookupStep returned a hit from a corrupted record")
	}
}

func TestCorruptionVersionMismatch(t *testing.T) {
	s := openTemp(t)
	in, _ := putOneStep(t, s)
	// A record from a future container version: bump the version field
	// and re-seal the checksum, as a newer writer would have.
	corrupt(t, s, func(data []byte) []byte {
		payload, err := decodeRecord(data, KindStep)
		if err != nil {
			t.Fatal(err)
		}
		future := encodeRecord(KindStep, payload)
		binary.BigEndian.PutUint32(future[8:12], FormatVersion+1)
		sum := shaOf(future[:len(future)-checksumSize])
		copy(future[len(future)-checksumSize:], sum)
		return future
	})
	_, ok, err := s.GetStep(in, 0)
	if ok || !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("GetStep = (_, %v, %v), want ErrVersionMismatch", ok, err)
	}
}

func TestCorruptionBadMagicAndKind(t *testing.T) {
	s := openTemp(t)
	in, _ := putOneStep(t, s)
	corrupt(t, s, func(data []byte) []byte {
		copy(data[:8], "NOTMAGIC")
		return data
	})
	if _, ok, err := s.GetStep(in, 0); ok || !errors.Is(err, ErrBadMagic) {
		t.Fatalf("GetStep = (_, %v, %v), want ErrBadMagic", ok, err)
	}

	// A trajectory record renamed into a step object's place: kind
	// mismatch, not a misinterpreted payload.
	s2 := openTemp(t)
	in2, _ := putOneStep(t, s2)
	corrupt(t, s2, func(data []byte) []byte {
		payload, err := decodeRecord(data, KindStep)
		if err != nil {
			t.Fatal(err)
		}
		return encodeRecord(KindTrajectory, payload)
	})
	if _, ok, err := s2.GetStep(in2, 0); ok || !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("GetStep = (_, %v, %v), want ErrKindMismatch", ok, err)
	}
}

// TestConcurrentSweepWriters hammers one store directory from many
// goroutines doing exactly what concurrent sweep shards do — memoized
// fixpoint runs plus trajectory checkpoints over the catalog — and
// verifies every record afterwards. Run under -race this is the
// reader/writer-safety lock for the whole package.
func TestConcurrentSweepWriters(t *testing.T) {
	s := openTemp(t)
	catalog := problems.Catalog()
	par := TrajectoryParams{MaxSteps: 2, MaxStates: 8_000}

	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stagger starting points so shards collide on every key.
			for i := 0; i < len(catalog); i++ {
				entry := catalog[(i+w)%len(catalog)]
				res, err := fixpoint.Run(entry.Problem, fixpoint.Options{
					MaxSteps: par.MaxSteps,
					Core:     []core.Option{core.WithMaxStates(par.MaxStates), core.WithWorkers(1)},
					Memo:     s.StepMemo(par.MaxStates),
				})
				if err != nil {
					errs[w] = fmt.Errorf("%s: %w", entry.Name, err)
					return
				}
				if err := s.PutTrajectory(entry.Problem, par, res); err != nil {
					errs[w] = fmt.Errorf("%s: put: %w", entry.Name, err)
					return
				}
				if _, ok, err := s.GetTrajectory(entry.Problem, par); !ok || err != nil {
					errs[w] = fmt.Errorf("%s: readback: ok=%v err=%w", entry.Name, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}

	// Every record left behind decodes cleanly and replays the cold
	// classification.
	for _, entry := range catalog {
		res, ok, err := s.GetTrajectory(entry.Problem, par)
		if !ok || err != nil {
			t.Fatalf("%s: final readback: ok=%v err=%v", entry.Name, ok, err)
		}
		cold, err := fixpoint.Run(entry.Problem, fixpoint.Options{
			MaxSteps: par.MaxSteps,
			Core:     []core.Option{core.WithMaxStates(par.MaxStates), core.WithWorkers(1)},
		})
		if err != nil {
			t.Fatalf("%s: cold: %v", entry.Name, err)
		}
		if res.Kind != cold.Kind || res.Steps != cold.Steps {
			t.Fatalf("%s: stored %v/%d steps, cold %v/%d steps", entry.Name, res.Kind, res.Steps, cold.Kind, cold.Steps)
		}
	}
}
