package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// stubSeams snapshots the durability seams and restores them when the
// test ends. Tests in this package do not run in parallel, so swapping
// the package-level functions is race-free.
func stubSeams(t *testing.T) {
	t.Helper()
	origSync, origRename, origDir := syncFile, renameFile, syncDir
	t.Cleanup(func() {
		syncFile, renameFile, syncDir = origSync, origRename, origDir
	})
}

// tempResidue returns any leftover .tmp- files under the store's
// objects tree.
func tempResidue(t *testing.T, s *Store) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Root(), "objects", "*", ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestWriteAtomicSyncFailure: a failed fsync of the temp file must
// surface as an error, leave no final object, and leave no temp
// residue. This is the crash-safety half of the durability contract —
// if we cannot prove the bytes are on disk, we must not publish the
// name.
func TestWriteAtomicSyncFailure(t *testing.T) {
	s := openTemp(t)
	stubSeams(t)
	injected := errors.New("injected fsync failure")
	syncFile = func(*os.File) error { return injected }

	in := sinkless(t)
	derived, err := putTarget(t, s, in)
	if !errors.Is(err, injected) {
		t.Fatalf("PutStep = %v, want injected fsync error", err)
	}
	if _, err := os.Stat(s.objectPath(KindStep, stepKey(in, 0))); !os.IsNotExist(err) {
		t.Fatalf("final object exists after failed sync (stat err %v)", err)
	}
	if residue := tempResidue(t, s); len(residue) != 0 {
		t.Fatalf("temp residue after failed sync: %v", residue)
	}
	_ = derived
}

// TestWriteAtomicRenameFailure: a failed rename surfaces, publishes
// nothing, and cleans its temp file.
func TestWriteAtomicRenameFailure(t *testing.T) {
	s := openTemp(t)
	stubSeams(t)
	injected := errors.New("injected rename failure")
	renameFile = func(oldpath, newpath string) error { return injected }

	in := sinkless(t)
	if _, err := putTarget(t, s, in); !errors.Is(err, injected) {
		t.Fatalf("PutStep = %v, want injected rename error", err)
	}
	if _, err := os.Stat(s.objectPath(KindStep, stepKey(in, 0))); !os.IsNotExist(err) {
		t.Fatalf("final object exists after failed rename (stat err %v)", err)
	}
	if residue := tempResidue(t, s); len(residue) != 0 {
		t.Fatalf("temp residue after failed rename: %v", residue)
	}
}

// TestWriteAtomicDirSyncFailure: a failed directory sync surfaces — the
// rename has happened, but its durability is unproven, so the write
// must still report failure rather than claim a commit it cannot
// guarantee.
func TestWriteAtomicDirSyncFailure(t *testing.T) {
	s := openTemp(t)
	stubSeams(t)
	injected := errors.New("injected dir sync failure")
	syncDir = func(string) error { return injected }

	if _, err := putTarget(t, s, sinkless(t)); !errors.Is(err, injected) {
		t.Fatalf("PutStep = %v, want injected dir-sync error", err)
	}
	if residue := tempResidue(t, s); len(residue) != 0 {
		t.Fatalf("temp residue after failed dir sync: %v", residue)
	}
}

// TestWriteAtomicSyncsDirectory: the happy path syncs the parent
// directory of every committed record exactly once, after the rename.
func TestWriteAtomicSyncsDirectory(t *testing.T) {
	s := openTemp(t)
	stubSeams(t)
	var synced []string
	origDir := syncDir
	syncDir = func(dir string) error {
		synced = append(synced, dir)
		return origDir(dir)
	}

	in := sinkless(t)
	if _, err := putTarget(t, s, in); err != nil {
		t.Fatal(err)
	}
	want := filepath.Dir(s.objectPath(KindStep, stepKey(in, 0)))
	if len(synced) != 1 || synced[0] != want {
		t.Fatalf("directory syncs = %v, want exactly [%s]", synced, want)
	}
	if _, ok, err := s.GetStep(in, 0); !ok || err != nil {
		t.Fatalf("record unreadable after commit: ok=%v err=%v", ok, err)
	}
}

// TestWriteFileAtomicReportCommit: the exported commit path (used by
// cmd/sweep for reports and cmd/sweep -pack via writePackFile) is the
// same temp+fsync+rename+dirsync sequence as record writes.
func TestWriteFileAtomicReportCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.tsv")
	if err := WriteFileAtomic(path, []byte("name\tsteps\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "name\tsteps\n" {
		t.Fatalf("read back %q, %v", data, err)
	}

	stubSeams(t)
	injected := errors.New("injected rename failure")
	renameFile = func(oldpath, newpath string) error { return injected }
	if err := WriteFileAtomic(path, []byte("torn")); !errors.Is(err, injected) {
		t.Fatalf("WriteFileAtomic = %v, want injected error", err)
	}
	// The previous committed content must be untouched.
	data, err = os.ReadFile(path)
	if err != nil || string(data) != "name\tsteps\n" {
		t.Fatalf("prior content damaged by failed rewrite: %q, %v", data, err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil || len(matches) != 0 {
		t.Fatalf("temp residue: %v (%v)", matches, err)
	}
}

// TestPackWriteFailureLeavesNoArtifact: the pack writer commits through
// the same seams; a failed rename must leave no pack file behind.
func TestPackWriteFailureLeavesNoArtifact(t *testing.T) {
	s := openTemp(t)
	putOneStep(t, s)
	stubSeams(t)
	injected := errors.New("injected rename failure")
	renameFile = func(oldpath, newpath string) error { return injected }

	path := filepath.Join(t.TempDir(), "warm.repack")
	if _, err := s.Pack(path); !errors.Is(err, injected) {
		t.Fatalf("Pack = %v, want injected rename error", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("pack artifact exists after failed commit (stat err %v)", err)
	}
	matches, err := filepath.Glob(filepath.Join(filepath.Dir(path), ".tmp-*"))
	if err != nil || len(matches) != 0 {
		t.Fatalf("temp residue: %v (%v)", matches, err)
	}
}

// putTarget writes one step record for in (budget 0) and returns the
// derived problem alongside the PutStep error, so failure-injection
// tests can assert on the error without the putOneStep helper's
// built-in t.Fatal.
func putTarget(t *testing.T, s *Store, in *core.Problem) (*core.Problem, error) {
	t.Helper()
	derived, err := core.Speedup(in)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := derived.RenameCompact()
	return out, s.PutStep(in, out, 0)
}
