//go:build !unix

package store

import (
	"errors"
	"os"
)

// mapFile reports that this platform has no mmap support; OpenPack
// falls back to reading the whole pack through io.ReaderAt.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, errors.ErrUnsupported
}
