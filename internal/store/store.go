// Package store is the content-addressed persistent result store of the
// reproduction: memoized speedup steps, classified fixpoint
// trajectories, rendered oracle verdicts and pre-rendered fixpoint
// response bodies, keyed by the stable fingerprint of their exact
// input problem (core.StableKey) and written as versioned, checksummed
// records with atomic rename-on-commit.
//
// Brandt's speedup transformation is a deterministic function of the
// problem representation, which makes its results perfectly cacheable:
// a record computed once is valid forever, until the semantics change —
// at which point core.FingerprintVersion is bumped, every key changes,
// and the old records become unreachable (the entire cache-invalidation
// story; no record is ever migrated or rewritten in place).
//
// On disk a store is a directory:
//
//	<root>/objects/<kk>/<64-hex-key>.step      one memoized speedup step
//	<root>/objects/<kk>/<64-hex-key>.traj      one classified trajectory
//	<root>/objects/<kk>/<64-hex-key>.verdict   one rendered oracle verdict
//	<root>/objects/<kk>/<64-hex-key>.rendered  one rendered fixpoint body
//
// where <kk> is the first two hex digits of the key (fan-out), and each
// file is a framed record: an 8-byte magic, big-endian container
// version and kind, the payload length, a JSON payload, and a SHA-256
// checksum over everything preceding it. Readers validate the frame and
// additionally compare the payload's embedded canonical input against
// the queried problem, so a hash collision (or a mislabeled object)
// degrades to a cache miss, never to a wrong result.
//
// Concurrency: records are immutable once visible. Writers stage into a
// temp file and fsync+rename, so any number of concurrent readers and
// writers — including separate OS processes sweeping into one store
// directory — observe only complete records. All writers of one key
// produce identical bytes, so rename races are benign.
package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fixpoint"
)

// Store is a handle to one store directory. The zero value is not
// usable; call Open. A Store is safe for concurrent use by multiple
// goroutines (and the directory by multiple processes).
type Store struct {
	root string
}

// Open initializes (creating directories as needed) and returns the
// store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// objectPath maps (kind, key) to the record's final path.
func (s *Store) objectPath(kind Kind, key core.StableFingerprint) string {
	hexKey := key.String()
	return filepath.Join(s.root, "objects", hexKey[:2], hexKey+"."+kind.ext())
}

// putRecord frames and atomically commits a payload.
func (s *Store) putRecord(kind Kind, key core.StableFingerprint, payload []byte) error {
	return writeAtomic(s.objectPath(kind, key), encodeRecord(kind, payload))
}

// getRecord reads and validates a record, returning (payload, true) on
// a hit, (nil, false, nil) when absent, and a corruption sentinel
// (ErrBadMagic, ErrVersionMismatch, ErrKindMismatch, ErrTruncated,
// ErrChecksum) when the file exists but cannot be trusted.
func (s *Store) getRecord(kind Kind, key core.StableFingerprint) ([]byte, bool, error) {
	data, err := os.ReadFile(s.objectPath(kind, key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	payload, err := decodeRecord(data, kind)
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// stepPayload is the JSON payload of a KindStep record. Input and
// Output are core.CanonicalBytes serializations; Input doubles as a
// collision guard (GetStep compares it against the queried problem).
type stepPayload struct {
	FPVersion int    `json:"fp_version"`
	MaxStates int    `json:"max_states"`
	Input     string `json:"input"`
	Output    string `json:"output"`
}

// stepKey derives the step-record key: the input problem plus the
// state budget the step ran under. The budget is part of the identity
// for the same reason it is in TrajectoryParams — a step computed
// under a generous budget must not answer for a run whose tighter
// budget would have exhausted mid-step, or a warm store would change
// classifications relative to a cold run with identical flags.
func stepKey(in *core.Problem, maxStates int) core.StableFingerprint {
	return subKey(core.StableKey(in), fmt.Sprintf("|step|max_states=%d", maxStates))
}

// PutStep persists one memoized speedup step: in is the exact problem
// the step was applied to, out the compact-renamed derived problem
// (what fixpoint.Run appends to a trajectory), maxStates the
// core.WithMaxStates budget in force (0 = engine default). The record
// is committed atomically; it is safe to race with readers and other
// writers.
func (s *Store) PutStep(in, out *core.Problem, maxStates int) error {
	payload, err := json.Marshal(stepPayload{
		FPVersion: core.FingerprintVersion,
		MaxStates: maxStates,
		Input:     string(in.CanonicalBytes()),
		Output:    string(out.CanonicalBytes()),
	})
	if err != nil {
		return fmt.Errorf("store: put step: %w", err)
	}
	return s.putRecord(KindStep, stepKey(in, maxStates), payload)
}

// GetStep looks up the memoized speedup step for the exact problem in
// under the exact state budget. A present-but-corrupt record is
// reported via one of the corruption sentinels; a record whose embedded
// input or budget does not match the query (hash collision, foreign
// file) is a miss.
func (s *Store) GetStep(in *core.Problem, maxStates int) (*core.Problem, bool, error) {
	payload, ok, err := s.getRecord(KindStep, stepKey(in, maxStates))
	if !ok || err != nil {
		return nil, false, err
	}
	return decodeStepPayload(payload, in, maxStates)
}

// decodeStepPayload validates a step payload against the queried
// problem and budget. Shared by the JSON store and the pack reader, so
// both tiers apply the identical collision guard and return identical
// results for identical payload bytes.
func decodeStepPayload(payload []byte, in *core.Problem, maxStates int) (*core.Problem, bool, error) {
	var rec stepPayload
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, false, fmt.Errorf("store: get step: %w", err)
	}
	if rec.FPVersion != core.FingerprintVersion || rec.MaxStates != maxStates ||
		rec.Input != string(in.CanonicalBytes()) {
		return nil, false, nil
	}
	out, err := core.ParseCanonical([]byte(rec.Output))
	if err != nil {
		return nil, false, fmt.Errorf("store: get step: %w", err)
	}
	return out, true, nil
}

// StepMemo returns a fixpoint.Memo view of the store scoped to one
// state budget (core.WithMaxStates; 0 = engine default). The caller
// must pass the same budget it forwards to fixpoint.Options.Core —
// that is what keeps a warm store byte-identical to a cold run with
// the same flags. Every lookup failure — I/O, corruption, collision —
// degrades to a cache miss, and write failures are dropped, so a
// damaged store can slow a run down but never fail or poison it.
func (s *Store) StepMemo(maxStates int) fixpoint.Memo {
	return stepMemo{s: s, maxStates: maxStates}
}

// stepMemo adapts budget-scoped step records to fixpoint.Memo.
type stepMemo struct {
	s         *Store
	maxStates int
}

// LookupStep returns the memoized compact derived problem of in.
func (m stepMemo) LookupStep(in *core.Problem) (*core.Problem, bool) {
	out, ok, err := m.s.GetStep(in, m.maxStates)
	if err != nil || !ok {
		return nil, false
	}
	return out, true
}

// StoreStep records that one speedup step maps in to out.
func (m stepMemo) StoreStep(in, out *core.Problem) {
	_ = m.s.PutStep(in, out, m.maxStates)
}

// subKey derives a distinct key from a problem key and a discriminator
// tag, for record types parameterized beyond the input problem.
func subKey(base core.StableFingerprint, tag string) core.StableFingerprint {
	h := sha256.New()
	h.Write(base[:])
	h.Write([]byte(tag))
	var out core.StableFingerprint
	h.Sum(out[:0])
	return out
}
