// Package par is the shared parallel-execution substrate of the
// reproduction: a dynamic work-stealing index pool, a sharded variant
// for workers that accumulate private state, and an atomic countdown
// budget whose semantics are identical for every worker count.
//
// It exists so that every enumeration hot path — the round-elimination
// engine in internal/core, the simulator's per-node output loop in
// internal/sim, and the brute-force solvability oracle in
// internal/oracle — parallelizes through one pattern with one set of
// invariants: deterministic results for every worker count, and budget
// exhaustion meaning "total work exceeded N" no matter how the work was
// scheduled.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerCount resolves an effective worker count for n independent work
// items: the configured count (GOMAXPROCS when <= 0), clamped to n and
// floored at 1.
func WorkerCount(configured, n int) int {
	w := configured
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunIndexed executes fn(i) for i in [0, n) across the given number of
// workers, handing out indices through an atomic cursor (dynamic
// work-stealing, which tolerates wildly unbalanced item costs). With
// workers <= 1 it degrades to a plain loop with zero goroutine
// overhead.
func RunIndexed(workers, n int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunSharded is RunIndexed for workers that accumulate into per-worker
// state: fn receives the worker id alongside the item index and may
// fail. The first error (in worker order) aborts the remaining items of
// every worker and is returned.
func RunSharded(workers, n int, fn func(worker, i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Budget is a concurrency-safe countdown over a work cap. Sequential
// and parallel enumeration paths share it, so the "total units spent"
// semantics are identical for every worker count: Take succeeds exactly
// n times in total.
type Budget struct {
	remaining atomic.Int64
}

// NewBudget returns a budget of n units.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// Take consumes one unit; it reports false once the budget is spent.
func (b *Budget) Take() bool {
	return b.remaining.Add(-1) >= 0
}

// Gate is a counting semaphore used for admission control: it bounds
// how many callers may be inside a section at once, with the excess
// queueing in Enter until a slot frees or their context is done. Unlike
// Budget — which counts total work and never refills — a Gate bounds
// *concurrent* work and recycles its slots, which is what a long-running
// service needs to keep an unbounded request stream from launching an
// unbounded number of engine computations.
type Gate struct {
	slots    chan struct{}
	observer GateObserver // nil = unobserved
}

// GateObserver receives admission-control events from a Gate, the seam
// the service's metrics layer hangs queue-depth gauges and wait-time
// histograms on. Every Enter call fires GateQueued exactly once,
// followed by exactly one of GateEntered or GateRefused; every Leave
// fires GateLeft. Implementations must be safe for concurrent use and
// must not block — they run inline on the admission path.
type GateObserver interface {
	// GateQueued fires when an Enter caller starts waiting for a slot
	// (including callers that acquire one immediately).
	GateQueued()
	// GateEntered fires when an Enter caller acquires a slot, with the
	// time it spent waiting.
	GateEntered(wait time.Duration)
	// GateRefused fires when an Enter caller gives up (its context was
	// done), with the time it spent waiting.
	GateRefused(wait time.Duration)
	// GateLeft fires when a slot is released.
	GateLeft()
}

// NewGate returns a gate admitting at most n concurrent holders;
// n <= 0 selects runtime.GOMAXPROCS(0).
func NewGate(n int) *Gate {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// Cap reports the gate's admission capacity.
func (g *Gate) Cap() int { return cap(g.slots) }

// SetObserver attaches an admission observer (nil detaches). It must
// be called before the gate is shared between goroutines — typically
// right after NewGate — as the field is read without synchronization
// on the admission path.
func (g *Gate) SetObserver(o GateObserver) { g.observer = o }

// Enter blocks until a slot is free or ctx is done, and reports whether
// the slot was acquired. A context that is already done is always
// refused, even when slots are free — so a shutdown signal reliably
// stops new admissions. Every successful Enter must be paired with
// exactly one Leave; after a false return the caller must not Leave.
func (g *Gate) Enter(ctx context.Context) bool {
	if o := g.observer; o != nil {
		o.GateQueued()
		start := time.Now()
		ok := g.enter(ctx)
		if ok {
			o.GateEntered(time.Since(start))
		} else {
			o.GateRefused(time.Since(start))
		}
		return ok
	}
	return g.enter(ctx)
}

// enter is the unobserved admission path.
func (g *Gate) enter(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return false
	default:
	}
	select {
	case g.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Leave releases a slot acquired by Enter.
func (g *Gate) Leave() {
	<-g.slots
	if o := g.observer; o != nil {
		o.GateLeft()
	}
}
