package par_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/par"
)

func TestWorkerCount(t *testing.T) {
	cases := []struct{ configured, n, wantMax, wantMin int }{
		{1, 100, 1, 1},
		{8, 3, 3, 3},
		{4, 100, 4, 4},
		{-1, 0, 1, 1}, // floors at 1 even for empty work
	}
	for _, tc := range cases {
		got := par.WorkerCount(tc.configured, tc.n)
		if got < tc.wantMin || got > tc.wantMax {
			t.Errorf("WorkerCount(%d, %d) = %d, want in [%d, %d]",
				tc.configured, tc.n, got, tc.wantMin, tc.wantMax)
		}
	}
	if got := par.WorkerCount(0, 64); got < 1 {
		t.Errorf("GOMAXPROCS default resolved to %d", got)
	}
}

// TestRunIndexedCoversEveryIndex: every index is visited exactly once,
// for sequential and parallel worker counts.
func TestRunIndexedCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 1000
		var hits [n]atomic.Int32
		par.RunIndexed(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

// TestRunShardedErrorAborts: an error stops the pool and is returned;
// the sharded worker ids stay within range.
func TestRunShardedErrorAborts(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := par.RunSharded(workers, 100, func(w, i int) error {
			if w < 0 || w >= workers {
				t.Fatalf("worker id %d out of range [0,%d)", w, workers)
			}
			if i == 17 {
				return sentinel
			}
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: got err %v, want sentinel", workers, err)
		}
		if ran.Load() >= 100 {
			t.Fatalf("workers=%d: pool did not abort", workers)
		}
	}
}

// TestBudgetExactCount: Take succeeds exactly n times in total no
// matter how many goroutines are draining it.
func TestBudgetExactCount(t *testing.T) {
	for _, workers := range []int{1, 8} {
		b := par.NewBudget(500)
		var ok atomic.Int64
		par.RunIndexed(workers, 2000, func(i int) {
			if b.Take() {
				ok.Add(1)
			}
		})
		if got := ok.Load(); got != 500 {
			t.Fatalf("workers=%d: %d successful takes, want 500", workers, got)
		}
	}
}

// TestGateBoundsConcurrency: at most Cap() holders are ever inside the
// gated section, and queued entries are admitted as slots free up.
func TestGateBoundsConcurrency(t *testing.T) {
	g := par.NewGate(3)
	if g.Cap() != 3 {
		t.Fatalf("Cap() = %d, want 3", g.Cap())
	}
	var inside, peak atomic.Int64
	par.RunIndexed(8, 64, func(i int) {
		if !g.Enter(context.Background()) {
			t.Error("Enter with background context must succeed")
			return
		}
		cur := inside.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inside.Add(-1)
		g.Leave()
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent holders, gate capacity 3", p)
	}
}

// TestGateEnterCancel: a full gate rejects an already-canceled context
// instead of blocking, and the rejected caller consumes no slot.
func TestGateEnterCancel(t *testing.T) {
	g := par.NewGate(1)
	if !g.Enter(context.Background()) {
		t.Fatal("first Enter must succeed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if g.Enter(ctx) {
		t.Fatal("Enter with canceled context on a full gate must fail")
	}
	g.Leave()
	if !g.Enter(context.Background()) {
		t.Fatal("slot must be reusable after Leave")
	}
	g.Leave()
}

// TestGateDefaultCap: n <= 0 selects GOMAXPROCS.
func TestGateDefaultCap(t *testing.T) {
	if got := par.NewGate(0).Cap(); got < 1 {
		t.Fatalf("default capacity %d, want >= 1", got)
	}
}

// countingObserver tallies gate events for the observer test.
type countingObserver struct {
	queued, entered, refused, left atomic.Int64
	waits                          atomic.Int64 // nonzero waits observed
}

func (o *countingObserver) GateQueued() { o.queued.Add(1) }
func (o *countingObserver) GateEntered(wait time.Duration) {
	o.entered.Add(1)
	if wait > 0 {
		o.waits.Add(1)
	}
}
func (o *countingObserver) GateRefused(wait time.Duration) { o.refused.Add(1) }
func (o *countingObserver) GateLeft()                      { o.left.Add(1) }

// TestGateObserver: every Enter fires GateQueued then exactly one of
// GateEntered/GateRefused, every Leave fires GateLeft, and admission
// semantics are unchanged by observation.
func TestGateObserver(t *testing.T) {
	obs := &countingObserver{}
	g := par.NewGate(1)
	g.SetObserver(obs)

	if !g.Enter(context.Background()) {
		t.Fatal("first Enter must succeed")
	}
	// Full gate + canceled context: refused, no slot consumed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if g.Enter(ctx) {
		t.Fatal("Enter with canceled context on a full gate must fail")
	}
	// A second holder queues until the first leaves.
	acquired := make(chan struct{})
	go func() {
		if g.Enter(context.Background()) {
			close(acquired)
		}
	}()
	// The waiter may or may not have queued yet; Leave unblocks it
	// either way.
	g.Leave()
	<-acquired
	g.Leave()

	if got := obs.queued.Load(); got != 3 {
		t.Fatalf("GateQueued fired %d times, want 3", got)
	}
	if got := obs.entered.Load(); got != 2 {
		t.Fatalf("GateEntered fired %d times, want 2", got)
	}
	if got := obs.refused.Load(); got != 1 {
		t.Fatalf("GateRefused fired %d times, want 1", got)
	}
	if got := obs.left.Load(); got != 2 {
		t.Fatalf("GateLeft fired %d times, want 2", got)
	}
}
