package superweak

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/solve"
)

// TestTritHalfMatchesEngine verifies the Section 5.1 "equivalent
// description": the engine's Π'_{1/2} of superweak k-coloring is
// isomorphic to the explicit trit-sequence problem (Experiment E4).
func TestTritHalfMatchesEngine(t *testing.T) {
	for _, tc := range []struct{ k, delta int }{{2, 3}, {2, 4}, {2, 5}} {
		p := problems.Superweak(tc.k, tc.delta)
		derived, err := core.HalfStep(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := TritHalfProblem(tc.k, tc.delta)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := core.Isomorphic(derived, want); !ok {
			t.Errorf("k=%d Δ=%d: engine Π'_1/2 %+v does not match trit description %+v",
				tc.k, tc.delta, derived.Stats(), want.Stats())
		}
	}
}

// TestProvenanceToTritBijection checks the explicit 3-way correspondence
// used in the paper's equivalence proof, on the engine's derived labels.
func TestProvenanceToTritBijection(t *testing.T) {
	k, delta := 2, 3
	p := problems.Superweak(k, delta)
	derived, err := core.HalfStep(p)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for l := 0; l < derived.Alpha.Size(); l++ {
		prov, ok := derived.Alpha.Provenance(core.Label(l))
		if !ok {
			t.Fatalf("label %d has no provenance", l)
		}
		seq, ok := ProvenanceToTrit(k, prov)
		if !ok {
			t.Fatalf("label %d provenance %v not of canonical trit form", l, prov)
		}
		if seen[seq.String()] {
			t.Fatalf("trit sequence %s duplicated", seq)
		}
		seen[seq.String()] = true
	}
	if len(seen) != 9 {
		t.Errorf("got %d trit sequences for k=2, want 3^2 = 9", len(seen))
	}
}

func TestTritSeqHelpers(t *testing.T) {
	seqs := AllTritSeqs(2)
	if len(seqs) != 9 {
		t.Fatalf("AllTritSeqs(2) = %d", len(seqs))
	}
	for i, s := range seqs {
		if s.Index() != i {
			t.Errorf("Index(%s) = %d, want %d", s, s.Index(), i)
		}
	}
	if !(TritSeq{0, 2}).SumsToTwo(TritSeq{2, 0}) {
		t.Error("02 + 20 should sum to 22")
	}
	if (TritSeq{1, 2}).SumsToTwo(TritSeq{2, 0}) {
		t.Error("12 + 20 should not sum to 22")
	}
	if AllOnes(3).String() != "111" {
		t.Error("AllOnes wrong")
	}
}

func TestNodeOK(t *testing.T) {
	k := 2
	// Paper example shape: multiset {02, 11^(Δ-3), 12, 21} has index j=2
	// with one 2 (from 12)... construct explicit cases instead.
	seqs := []TritSeq{{0, 2}, {1, 1}, {1, 2}, {2, 1}}
	// Position 1 (0-based): values 2,1,2,1 → twos=2 (counts 1,0,1,0 ·
	// counts below), zeros=0 → OK.
	if !NodeOK(k, seqs, []int{1, 2, 1, 1}) {
		t.Error("paper-style multiset rejected")
	}
	// All 11: no position has a 2.
	if NodeOK(k, []TritSeq{{1, 1}}, []int{5}) {
		t.Error("all-ones multiset accepted")
	}
	// Zeros exceeding k at the only viable position.
	bad := []TritSeq{{2, 1}, {0, 1}}
	if NodeOK(k, bad, []int{3, 3}) {
		t.Error("k-bound on zeros not enforced")
	}
	if !NodeOK(k, bad, []int{3, 2}) {
		t.Error("within k-bound rejected")
	}
}

// deriveFull computes Π'_1 from the trit half problem for k=2, Δ=3 (the
// largest explicitly enumerable instance) once for the Lemma tests.
func deriveFull(t *testing.T) (half, full *core.Problem) {
	t.Helper()
	half, err := TritHalfProblem(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err = core.SecondHalfStep(half, core.WithStrategy(core.StrategyCombine))
	if err != nil {
		t.Fatal(err)
	}
	return half, full
}

// TestLemma1Structure checks the dominant-element structure on the
// explicitly enumerable instance. Lemma 1 is stated for Δ ≥ 2^(4k)+1; at
// Δ=3 the paper's "or fewer if Δ is very small" caveat applies, so the
// test asserts the parts that must hold unconditionally for the
// transformation to work: every configuration used by the Lemma 3
// pipeline has at least one label containing 11...1.
func TestLemma1Structure(t *testing.T) {
	half, full := deriveFull(t)
	reports, err := CheckLemma1(half, full, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no node configurations in Π'_1")
	}
	withAllOnes := 0
	for _, r := range reports {
		if r.ContainsAllOnes {
			withAllOnes++
			if r.Dominant < 0 {
				t.Error("report claims 11..1 present but no dominant label")
			}
		}
	}
	if withAllOnes == 0 {
		t.Error("no configuration contains a label with 11...1; Lemma 1 structure absent")
	}
	t.Logf("Δ=3, k=2: %d/%d configs contain a label with 11..1", withAllOnes, len(reports))
}

// TestLemma2JStar checks, for every Π'_1 node configuration containing a
// P∞ label and every orientation pattern α, that the Lemma 2 machinery
// either finds a valid J* (|J*| > |N(J*)|, sides α-homogeneous and
// opposite) or reports failure — and that when it succeeds the returned
// sets satisfy the lemma's properties exactly.
func TestLemma2JStar(t *testing.T) {
	half, full := deriveFull(t)
	allOnesArr := labelContainsSeq(half, full, AllOnes(2).String())
	allOnes := func(l core.Label) bool { return allOnesArr[l] }
	rel := edgeRelationOf(full)

	delta := full.Delta()
	successes := 0
	for _, cfg := range full.Node.Configs() {
		pinf, ok := PInfOf(cfg, allOnes)
		if !ok {
			continue
		}
		q := cfg.Expand()
		for mask := 0; mask < 1<<uint(delta); mask++ {
			out := make([]bool, delta)
			for i := range out {
				out[i] = mask&(1<<uint(i)) != 0
			}
			res, ok := JStar(q, out, pinf, allOnes, rel)
			if !ok {
				continue
			}
			successes++
			if len(res.JStar) <= len(res.NJStar) {
				t.Fatalf("|J*|=%d not greater than |N(J*)|=%d", len(res.JStar), len(res.NJStar))
			}
			// J* and N(J*) must be α-homogeneous and on opposite sides.
			for _, j := range res.JStar {
				for _, i := range res.NJStar {
					if out[j] == out[i] {
						t.Fatalf("J* and N(J*) share orientation side")
					}
				}
			}
			// N(J*) must cover all ports edge-compatible with J* on the
			// opposite side.
			inJ := map[int]bool{}
			for _, j := range res.JStar {
				inJ[j] = true
			}
			inN := map[int]bool{}
			for _, i := range res.NJStar {
				inN[i] = true
			}
			for _, j := range res.JStar {
				for i := 0; i < delta; i++ {
					if out[i] != out[j] && rel(q[i], q[j]) && !inN[i] {
						t.Fatalf("port %d compatible with J* member %d but missing from N(J*)", i, j)
					}
				}
			}
		}
	}
	if successes == 0 {
		t.Error("Lemma 2 machinery never produced a J*")
	}
	t.Logf("Lemma 2 produced J* in %d (config, α) cases", successes)
}

// TestLemma3Pipeline runs the full Section 5 transformation end to end:
// solve Π'_1 on a high-girth 3-regular graph, transform the solution via
// Lemma 3 into a superweak coloring, and verify it.
//
// Lemma 2's guarantee (a J* exists for every configuration) holds for
// Δ ≥ 2^(4k)+1, far beyond explicit enumeration; at Δ = 3 only some
// configurations admit a J* for every orientation. The test therefore
// restricts the node constraint to those configurations — a restriction
// is a *harder* problem (Section 4.5), so any solution of it is a genuine
// Π'_1 solution — and runs the pipeline on that.
func TestLemma3Pipeline(t *testing.T) {
	half, full := deriveFull(t)
	restricted := restrictToJStarFriendly(t, half, full, 2)
	if restricted.Node.Size() == 0 {
		t.Fatal("no J*-friendly configurations at Δ=3")
	}
	g := cubeGraph(t)
	sol, ok, err := solve.Solve(g, restricted, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("restricted Π'_1 unsatisfiable on the 3-cube")
	}
	if err := sim.Verify(g, sol, full); err != nil {
		t.Fatalf("solver output does not solve Π'_1: %v", err)
	}
	rng := rand.New(rand.NewSource(13))
	orient := graph.RandomOrientation(g, rng)
	out, err := Transform(g, orient, sol, half, full, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 3's accepting-pointer bound is k' (astronomical); what must
	// hold structurally is the bound by Δ and the pointer inequality —
	// VerifyOutput checks those with the degree as the generous bound.
	if err := VerifyOutput(g, out, g.MaxDegree()); err != nil {
		t.Errorf("transformed output invalid: %v", err)
	}
}

// cubeGraph returns the 3-dimensional hypercube (3-regular, girth 4).
func cubeGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(8)
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 7}, {7, 4},
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// restrictToJStarFriendly keeps only node configurations that admit a J*
// under every orientation pattern, returning the (harder) restricted
// problem with the same alphabet and edge constraint.
func restrictToJStarFriendly(t *testing.T, half, full *core.Problem, k int) *core.Problem {
	t.Helper()
	allOnesArr := labelContainsSeq(half, full, AllOnes(k).String())
	allOnes := func(l core.Label) bool { return allOnesArr[l] }
	rel := edgeRelationOf(full)
	delta := full.Delta()

	node := core.NewConstraint(delta)
	for _, cfg := range full.Node.Configs() {
		pinf, ok := PInfOf(cfg, allOnes)
		if !ok {
			continue
		}
		q := cfg.Expand()
		friendly := true
		for mask := 0; mask < 1<<uint(delta) && friendly; mask++ {
			out := make([]bool, delta)
			for i := range out {
				out[i] = mask&(1<<uint(i)) != 0
			}
			if _, ok := JStar(q, out, pinf, allOnes, rel); !ok {
				friendly = false
			}
		}
		if friendly {
			node.MustAdd(cfg)
		}
	}
	p, err := core.NewProblem(full.Alpha, full.Edge.Clone(), node)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStepTableShape(t *testing.T) {
	rows := StepTable([]int{3, 7, 12, 22, 52, 102})
	prev := -1
	for _, r := range rows {
		if r.Steps < prev {
			t.Errorf("steps not monotone at height %d", r.TowerHeight)
		}
		prev = r.Steps
		if r.Steps > r.LogStar {
			t.Errorf("height %d: steps %d exceed log* %d", r.TowerHeight, r.Steps, r.LogStar)
		}
	}
	// The ratio converges to 1/5: the Θ(log* Δ) shape of Theorem 4.
	last := rows[len(rows)-1]
	if last.Steps == 0 || last.LogStar/last.Steps > 6 {
		t.Errorf("steps=%d vs log*=%d: not within the expected constant band", last.Steps, last.LogStar)
	}
}

func TestKSequenceGrowth(t *testing.T) {
	seq := KSequence(3)
	if len(seq) == 0 || seq[0].Int64() != 2 {
		t.Fatal("k_0 != 2")
	}
	// k_1 = F⁵(2) = 2^(2^(2^16)) is not materializable (the guard stops
	// at 2^65536's exponentiation), so exactly one term is returned —
	// which is itself the demonstration of the tower growth.
	if len(seq) != 1 {
		t.Errorf("sequence has %d materializable terms, want 1", len(seq))
	}
}
