// Package superweak implements the Section 5 pipeline of Brandt (PODC
// 2019): the superweak k-coloring generalization of weak 2-coloring, the
// trit-sequence description of its derived problem Π'_{1/2}, the
// structural Lemma 1 (dominant element P∞), the Hall-theorem-based Lemma 2
// (the index set J* with |J*| > |N(J*)|), the Lemma 3 relaxation of Π'_1
// to superweak k'-coloring, and the Theorem 4 step counting that yields
// the Ω(log* Δ) lower bound for odd-degree weak 2-coloring.
package superweak

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/problems"
)

// Trit values: position c of a trit sequence encodes which of the outputs
// {(c,>), (c,<), (c,.)} a half-step label set contains for color c:
// 0 ↦ {(c,<)}, 1 ↦ {(c,<), (c,.)}, 2 ↦ {(c,>), (c,<), (c,.)}
// (Section 5.1, "An Equivalent Description").
type Trit uint8

// TritSeq is a trit sequence of length k: one label of the derived problem
// Π'_{1/2} of superweak k-coloring.
type TritSeq []Trit

// String renders the sequence as digits, e.g. "21".
func (t TritSeq) String() string {
	var sb strings.Builder
	for _, v := range t {
		sb.WriteByte('0' + byte(v))
	}
	return sb.String()
}

// AllTritSeqs enumerates all 3^k trit sequences of length k in
// lexicographic order.
func AllTritSeqs(k int) []TritSeq {
	total := 1
	for i := 0; i < k; i++ {
		total *= 3
	}
	out := make([]TritSeq, total)
	for idx := 0; idx < total; idx++ {
		seq := make(TritSeq, k)
		v := idx
		for pos := k - 1; pos >= 0; pos-- {
			seq[pos] = Trit(v % 3)
			v /= 3
		}
		out[idx] = seq
	}
	return out
}

// Index returns the lexicographic index of the sequence (the inverse of
// AllTritSeqs ordering).
func (t TritSeq) Index() int {
	idx := 0
	for _, v := range t {
		idx = idx*3 + int(v)
	}
	return idx
}

// SumsToTwo reports whether the tritwise sum of t and u is 22...2 — the
// edge constraint of the trit description.
func (t TritSeq) SumsToTwo(u TritSeq) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i]+u[i] != 2 {
			return false
		}
	}
	return true
}

// AllOnes returns the sequence 11...1 of length k.
func AllOnes(k int) TritSeq {
	seq := make(TritSeq, k)
	for i := range seq {
		seq[i] = 1
	}
	return seq
}

// NodeOK reports whether a multiset of trit sequences (given as counts
// parallel to seqs) satisfies the node condition of the trit description:
// some index j ∈ {1..k} has strictly more sequences with a 2 at j than
// with a 0 at j, and at most k sequences with a 0 at j.
func NodeOK(k int, seqs []TritSeq, counts []int) bool {
	for j := 0; j < k; j++ {
		zeros, twos := 0, 0
		for i, seq := range seqs {
			switch seq[j] {
			case 0:
				zeros += counts[i]
			case 2:
				twos += counts[i]
			}
		}
		if twos > zeros && zeros <= k {
			return true
		}
	}
	return false
}

// TritHalfProblem builds the explicit trit-sequence form of the derived
// problem Π'_{1/2} of superweak k-coloring at degree Δ (Section 5.1,
// "An Equivalent Description"): labels are all 3^k trit sequences, edge
// configurations are the pairs summing tritwise to 22...2, and node
// configurations are the Δ-multisets passing NodeOK. The result is
// compressed (sequences unusable in any correct solution are dropped).
//
// Explicit enumeration of the node constraint is feasible for small k and
// Δ; it is the reference object the engine's HalfStep output is verified
// against (Experiment E4).
func TritHalfProblem(k, delta int) (*core.Problem, error) {
	if k < 2 {
		return nil, fmt.Errorf("superweak: need k >= 2, got %d", k)
	}
	seqs := AllTritSeqs(k)
	if len(seqs) > 64 {
		return nil, fmt.Errorf("superweak: explicit trit problem infeasible for k = %d", k)
	}
	names := make([]string, len(seqs))
	for i, s := range seqs {
		names[i] = s.String()
	}
	alpha, err := core.NewAlphabet(names...)
	if err != nil {
		return nil, err
	}
	edge := core.NewConstraint(2)
	for i, s := range seqs {
		for j := i; j < len(seqs); j++ {
			if s.SumsToTwo(seqs[j]) {
				edge.MustAdd(core.NewConfig(core.Label(i), core.Label(j)))
			}
		}
	}
	node := core.NewConstraint(delta)
	counts := make([]int, len(seqs))
	sel := []int{}
	var rec func(start, remaining int) error
	rec = func(start, remaining int) error {
		if remaining == 0 {
			if NodeOK(k, seqs, counts) {
				m := make(map[core.Label]int)
				for _, i := range sel {
					m[core.Label(i)]++
				}
				cfg, err := core.NewConfigCounts(m)
				if err != nil {
					return err
				}
				return node.Add(cfg)
			}
			return nil
		}
		for i := start; i < len(seqs); i++ {
			counts[i]++
			sel = append(sel, i)
			if err := rec(i, remaining-1); err != nil {
				return err
			}
			sel = sel[:len(sel)-1]
			counts[i]--
		}
		return nil
	}
	if err := rec(0, delta); err != nil {
		return nil, err
	}
	p, err := core.NewProblem(alpha, edge, node)
	if err != nil {
		return nil, err
	}
	return p.Compress(), nil
}

// ProvenanceToTrit converts a half-step label of the engine (its
// provenance: a set of original superweak labels, as produced by
// core.HalfStep on problems.Superweak(k, Δ)) to the corresponding trit
// sequence, or reports false if the set is not of the paper's canonical
// form.
//
// The original alphabet of problems.Superweak lists, for each color c
// (1-based), the labels (c,>), (c,<), (c,.) at indices 3(c-1)+{0,1,2}.
func ProvenanceToTrit(k int, prov bitset.Set) (TritSeq, bool) {
	if prov.Len() != 3*k {
		return nil, false
	}
	seq := make(TritSeq, k)
	for c := 0; c < k; c++ {
		demanding := prov.Contains(3 * c)
		accepting := prov.Contains(3*c + 1)
		plain := prov.Contains(3*c + 2)
		switch {
		case accepting && !plain && !demanding:
			seq[c] = 0
		case accepting && plain && !demanding:
			seq[c] = 1
		case accepting && plain && demanding:
			seq[c] = 2
		default:
			return nil, false
		}
	}
	return seq, true
}

// SuperweakProblem re-exports the catalog constructor for convenience of
// the experiment harnesses.
func SuperweakProblem(k, delta int) *core.Problem {
	return problems.Superweak(k, delta)
}
