package superweak

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// PointerKind is a superweak pointer output at one port.
type PointerKind int

// Pointer kinds of the superweak coloring problem.
const (
	PointerNone PointerKind = iota
	PointerDemanding
	PointerAccepting
)

// Output is a superweak coloring of a graph: one color per node (as an
// opaque canonical string, since the k' color space of Lemma 3 is far too
// large to materialize) and one pointer kind per port.
type Output struct {
	Color    []string
	Pointers [][]PointerKind
}

// Transform implements the algorithm transformation of Lemma 3: it turns a
// correct solution of the derived problem Π'_1 (on a graph whose input
// includes an edge orientation) into a correct superweak k'-coloring.
//
// For each node, the color is the canonical key of the multiset
// R_v = {(Q_i, β(i))}; demanding pointers go to the ports of the Lemma 2
// set J*, accepting pointers to N(J*). The per-node computation is purely
// local (0 extra rounds), as in the paper.
//
// half and full describe the derivation (full = Π'_1 derived from the trit
// half problem for parameter k); sol must be a correct solution of full
// on g.
func Transform(g *graph.Graph, orient graph.Orientation, sol *sim.Solution,
	half, full *core.Problem, k int) (*Output, error) {
	allOnesName := AllOnes(k).String()
	hasAllOnes := labelContainsSeq(half, full, allOnesName)
	allOnes := func(l core.Label) bool { return hasAllOnes[l] }
	rel := edgeRelationOf(full)

	out := &Output{
		Color:    make([]string, g.N()),
		Pointers: make([][]PointerKind, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		q := sol.Labels[v]
		outSide := make([]bool, len(q))
		for port := range q {
			_, edgeID, _ := g.Neighbor(v, port)
			outSide[port] = orient.Toward[edgeID] != v
		}
		cfg := core.NewConfig(q...)
		pinf, ok := PInfOf(cfg, allOnes)
		if !ok {
			return nil, fmt.Errorf("superweak: node %d: configuration %s has no P∞ (no label contains 11...1)",
				v, cfg.String(full.Alpha))
		}
		// Canonicalize port order so nodes with equal R_v choose equal
		// pointer multisets (required by Lemma 3's consistency argument):
		// sort ports by (label, side), run the deterministic Lemma 2
		// computation on the sorted sequence, then map back.
		perm := canonicalPortOrder(q, outSide)
		sq := make([]core.Label, len(q))
		sOut := make([]bool, len(q))
		for si, port := range perm {
			sq[si] = q[port]
			sOut[si] = outSide[port]
		}
		res, ok := JStar(sq, sOut, pinf, allOnes, rel)
		if !ok {
			return nil, fmt.Errorf("superweak: node %d: Lemma 2 produced no J* for %s",
				v, cfg.String(full.Alpha))
		}
		pointers := make([]PointerKind, len(q))
		for _, si := range res.JStar {
			pointers[perm[si]] = PointerDemanding
		}
		for _, si := range res.NJStar {
			pointers[perm[si]] = PointerAccepting
		}
		out.Color[v] = CanonicalColor(q, outSide, pinf)
		out.Pointers[v] = pointers
	}
	return out, nil
}

// canonicalPortOrder returns a permutation of ports sorted by
// (label, side), ties broken by port number.
func canonicalPortOrder(q []core.Label, outSide []bool) []int {
	perm := make([]int, len(q))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		if q[pa] != q[pb] {
			return q[pa] < q[pb]
		}
		if outSide[pa] != outSide[pb] {
			return outSide[pa]
		}
		return pa < pb
	})
	return perm
}

// edgeRelationOf builds the symmetric membership test of a problem's edge
// constraint.
func edgeRelationOf(p *core.Problem) func(a, b core.Label) bool {
	n := p.Alpha.Size()
	table := make([]bool, n*n)
	for _, cfg := range p.Edge.Configs() {
		labels := cfg.Expand()
		a, b := int(labels[0]), int(labels[1])
		table[a*n+b] = true
		table[b*n+a] = true
	}
	return func(a, b core.Label) bool { return table[int(a)*n+int(b)] }
}

// VerifyOutput checks that out is a correct superweak coloring with at
// most maxAccepting accepting pointers per node: every node uses strictly
// more demanding than accepting pointers, at most maxAccepting accepting
// pointers, and every demanding pointer from v to u is answered by a
// different color at u or an accepting pointer from u back to v.
func VerifyOutput(g *graph.Graph, out *Output, maxAccepting int) error {
	if len(out.Color) != g.N() || len(out.Pointers) != g.N() {
		return fmt.Errorf("superweak: output does not cover the graph")
	}
	for v := 0; v < g.N(); v++ {
		if len(out.Pointers[v]) != g.Degree(v) {
			return fmt.Errorf("superweak: node %d: %d pointer slots for degree %d",
				v, len(out.Pointers[v]), g.Degree(v))
		}
		demanding, accepting := 0, 0
		for _, kind := range out.Pointers[v] {
			switch kind {
			case PointerDemanding:
				demanding++
			case PointerAccepting:
				accepting++
			}
		}
		if demanding <= accepting {
			return fmt.Errorf("superweak: node %d: %d demanding vs %d accepting pointers",
				v, demanding, accepting)
		}
		if accepting > maxAccepting {
			return fmt.Errorf("superweak: node %d: %d accepting pointers exceed bound %d",
				v, accepting, maxAccepting)
		}
		for port, kind := range out.Pointers[v] {
			if kind != PointerDemanding {
				continue
			}
			u, _, uPort := g.Neighbor(v, port)
			if out.Color[u] != out.Color[v] {
				continue
			}
			if out.Pointers[u][uPort] != PointerAccepting {
				return fmt.Errorf("superweak: demanding pointer %d→%d not answered (same color, no accepting pointer back)",
					v, u)
			}
		}
	}
	return nil
}
