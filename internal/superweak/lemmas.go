package superweak

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/matching"
)

// Lemma1Report describes the structure Lemma 1 predicts for one node
// configuration Q of the derived problem Π'_1: a unique element P∞ of
// maximum multiplicity that contains the trit sequence 11...1 and
// dominates the configuration (multiplicity ≥ Δ − 2^(4k) for
// Δ ≥ 2^(4k)+1; for the small Δ that are explicitly enumerable the report
// records what actually holds).
type Lemma1Report struct {
	Config          core.Config
	Dominant        core.Label // label of maximum multiplicity containing 11...1 (or -1)
	DominantMult    int
	MaxOtherMult    int  // largest multiplicity among the remaining labels
	ContainsAllOnes bool // some label of the configuration contains 11...1
	UniqueDominant  bool // the dominant label's multiplicity strictly exceeds all others'
}

// CheckLemma1 inspects every node configuration of full (the engine's
// Π'_1 derived from the trit half problem) and reports the Lemma 1
// structure. half must be the problem full was derived from (its label
// names are the trit strings); k is the superweak parameter.
func CheckLemma1(half, full *core.Problem, k int) ([]Lemma1Report, error) {
	allOnes := AllOnes(k).String()
	hasAllOnes := labelContainsSeq(half, full, allOnes)

	reports := make([]Lemma1Report, 0, full.Node.Size())
	for _, cfg := range full.Node.Configs() {
		r := Lemma1Report{Config: cfg, Dominant: -1}
		cfg.ForEach(func(l core.Label, count int) {
			if hasAllOnes[l] {
				r.ContainsAllOnes = true
				if count > r.DominantMult {
					r.Dominant = l
					r.DominantMult = count
				}
			}
		})
		cfg.ForEach(func(l core.Label, count int) {
			if l != r.Dominant && count > r.MaxOtherMult {
				r.MaxOtherMult = count
			}
		})
		r.UniqueDominant = r.Dominant >= 0 && r.DominantMult > r.MaxOtherMult
		reports = append(reports, r)
	}
	return reports, nil
}

// labelContainsSeq returns, for each label of full, whether its provenance
// (a set of half labels) includes the half label named seqName.
func labelContainsSeq(half, full *core.Problem, seqName string) []bool {
	target, ok := half.Alpha.Lookup(seqName)
	out := make([]bool, full.Alpha.Size())
	if !ok {
		return out
	}
	for l := 0; l < full.Alpha.Size(); l++ {
		prov, has := full.Alpha.Provenance(core.Label(l))
		if has && prov.Contains(int(target)) {
			out[l] = true
		}
	}
	return out
}

// JStarResult is the output of Lemma 2: an index set J* ⊆ I with
// |J*| > |N(J*)|, all of J* on one orientation side and all of N(J*) on
// the other.
type JStarResult struct {
	JStar  []int
	NJStar []int
}

// JStar computes the sets of Lemma 2 for one node configuration.
//
// Inputs: q[i] is the Π'_1 label at port i; out[i] is the orientation
// side α(i) (true = "out"); pinf is the P∞ label of the configuration;
// allOnes[l] reports whether label l contains the trit sequence 11...1;
// rel(a, b) is the edge relation of Π'_1 ({a,b} ∈ g_1).
//
// Per the lemma: I is the set of indices i with {q[i], P∞} ∉ g_1 and
// 11...1 ∉ q[i]; a bipartite graph connects i ∈ I to every j with
// {q[i], q[j]} ∈ g_1 and α(i) ≠ α(j). Lemma 2 proves Hall's condition
// fails (for genuine h_1 configurations at Δ ≥ 2^(4k)+1), and any Hall
// violator splits along α into the desired J*. The function returns
// (result, true) when a violator exists.
func JStar(q []core.Label, out []bool, pinf core.Label, allOnes func(core.Label) bool,
	rel func(a, b core.Label) bool) (JStarResult, bool) {
	delta := len(q)
	var members []int // I, as positions into q
	for i := 0; i < delta; i++ {
		if !rel(q[i], pinf) && !allOnes(q[i]) {
			members = append(members, i)
		}
	}
	if len(members) == 0 {
		return JStarResult{}, false
	}
	b := matching.NewBipartite(len(members), delta)
	for li, i := range members {
		for j := 0; j < delta; j++ {
			if out[i] != out[j] && rel(q[i], q[j]) {
				b.AddEdge(li, j)
			}
		}
	}
	violator := matching.HallViolator(b)
	if violator == nil {
		return JStarResult{}, false
	}
	// Split the violator by orientation side; the side neighborhoods are
	// disjoint, so one side must itself violate Hall's condition.
	for _, side := range []bool{true, false} {
		var j []int  // left positions (into members) on this side
		var js []int // port indices
		for _, li := range violator {
			if out[members[li]] == side {
				j = append(j, li)
				js = append(js, members[li])
			}
		}
		nj := matching.NeighborhoodOf(b, j)
		if len(js) > len(nj) {
			sort.Ints(js)
			return JStarResult{JStar: js, NJStar: nj}, true
		}
	}
	return JStarResult{}, false
}

// PInfOf returns the P∞ label of a configuration: among the labels
// containing 11...1, the one of maximum multiplicity (ties broken by
// label order, deterministically). Returns false if no label contains
// 11...1.
func PInfOf(cfg core.Config, allOnes func(core.Label) bool) (core.Label, bool) {
	best := core.Label(-1)
	bestMult := 0
	cfg.ForEach(func(l core.Label, count int) {
		if allOnes(l) && (count > bestMult || (count == bestMult && best >= 0 && l < best)) {
			best = l
			bestMult = count
		}
	})
	return best, best >= 0
}

// CanonicalColor derives the superweak color of a node from its R_v
// multiset {(Q_i, β(i))}: a canonical string key. β(i) is "none" when
// Q_i = P∞ and the orientation side otherwise (Lemma 3's construction of
// the injective coloring function c).
func CanonicalColor(q []core.Label, out []bool, pinf core.Label) string {
	parts := make([]string, len(q))
	for i, l := range q {
		beta := "n"
		if l != pinf {
			if out[i] {
				beta = "o"
			} else {
				beta = "i"
			}
		}
		parts[i] = fmt.Sprintf("%d%s", l, beta)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
