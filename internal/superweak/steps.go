package superweak

import (
	"math/big"

	"repro/internal/mathx"
)

// This file implements the step counting behind Theorem 4 (Section 5.2):
// starting from superweak 2-coloring, each application of Lemma 4 costs
// one round and raises the parameter to k' = 2^(2^(5k)), so after i steps
// the parameter is k_i with k_0 = 2 and k_{i+1} = F⁵(k_i), F(x) = 2^x.
// The final 0-round impossibility argument needs k* ≤ log Δ, so the
// number of rounds that can be eliminated — and hence any algorithm's
// runtime — is Ω(log* Δ).

// StepRow is one row of the Theorem 4 lower-bound table.
type StepRow struct {
	TowerHeight int // Δ = Tower(TowerHeight), i.e. log* Δ = TowerHeight
	Steps       int // speedup steps until k_i would exceed log Δ
	LogStar     int // log*(Δ) for comparison (= TowerHeight)
}

// StepTable computes, for each Δ given by its power-tower height, how many
// speedup+relaxation steps the Section 5.2 argument supports, together
// with log* Δ. The ratio Steps/LogStar converges to 1/5, exhibiting the
// Θ(log* Δ) shape of the Theorem 4 bound.
func StepTable(towerHeights []int) []StepRow {
	rows := make([]StepRow, len(towerHeights))
	for i, h := range towerHeights {
		rows[i] = StepRow{
			TowerHeight: h,
			Steps:       mathx.SuperweakSteps(h),
			LogStar:     h,
		}
	}
	return rows
}

// KSequence returns the first values of the parameter sequence
// k_0 = 2, k_{i+1} = F⁵(k_i) that fit in a big integer, demonstrating the
// tower growth (k_1 = 2^(2^(2^(2^4))) already has an astronomical bit
// count; the function returns the exact values while maintainable and the
// count of representable terms).
func KSequence(maxTerms int) []*big.Int {
	out := []*big.Int{big.NewInt(2)}
	for len(out) < maxTerms {
		next, ok := iterPow2Big(out[len(out)-1], 5)
		if !ok {
			break
		}
		out = append(out, next)
	}
	return out
}

func iterPow2Big(k *big.Int, n int) (*big.Int, bool) {
	v := new(big.Int).Set(k)
	for i := 0; i < n; i++ {
		if !v.IsInt64() || v.Int64() > 1<<24 {
			return nil, false
		}
		v = new(big.Int).Lsh(big.NewInt(1), uint(v.Int64()))
	}
	return v, true
}
