package fixpoint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/problems"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trajectory files")

// goldenMaxSteps and goldenMaxStates bound the golden runs. Both the
// step count at which a run stops and the set of completed steps are
// order-independent (the state budget counts total emissions, which is
// the same for every enumeration order and worker count), so the
// recorded trajectories are stable across engine-internal refactors.
const (
	goldenMaxSteps  = 3
	goldenMaxStates = 60_000
)

// TestCatalogTrajectoriesGolden locks the Problem.String() rendering of
// every fixpoint trajectory over the full catalog to golden files
// captured from the string-keyed engine before the interning refactor,
// for workers 1 and 4. Any representation change inside core must keep
// these bytes identical.
func TestCatalogTrajectoriesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog trajectories are heavy; skipped in -short mode")
	}
	for _, e := range problems.Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			var rendered string
			for _, workers := range []int{1, 4} {
				res, err := fixpoint.Run(e.Problem, fixpoint.Options{
					MaxSteps: goldenMaxSteps,
					Core: []core.Option{
						core.WithMaxStates(goldenMaxStates),
						core.WithWorkers(workers),
					},
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := renderTrajectory(res)
				if workers == 1 {
					rendered = got
				} else if got != rendered {
					t.Fatalf("trajectory diverged between workers 1 and %d:\n%s\nvs\n%s", workers, rendered, got)
				}
			}

			path := filepath.Join("testdata", "golden", goldenFileName(e.Name))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if rendered != string(want) {
				t.Fatalf("trajectory differs from pre-refactor golden %s:\ngot:\n%s\nwant:\n%s", path, rendered, want)
			}
		})
	}
}

// renderTrajectory serializes classification plus every trajectory
// entry's canonical string form.
func renderTrajectory(res *fixpoint.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kind: %s\nsteps: %d\ncycle: start=%d len=%d\n", res.Kind, res.Steps, res.CycleStart, res.CycleLen)
	for i, p := range res.Trajectory {
		s := p.Stats()
		fmt.Fprintf(&sb, "-- step %d (labels=%d edge=%d node=%d delta=%d) --\n%s",
			i, s.Labels, s.EdgeConfigs, s.NodeConfigs, s.Delta, p.String())
	}
	return sb.String()
}

func goldenFileName(name string) string {
	r := strings.NewReplacer("/", "_", "=", "", ",", "_")
	return r.Replace(name) + ".txt"
}
