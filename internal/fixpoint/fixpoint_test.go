package fixpoint_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/problems"
)

// TestSinklessColoringFixedPoint is the Section 4.4 lower-bound
// argument, mechanized: one round of speedup maps sinkless coloring
// back into its own isomorphism class, for every tested Δ.
func TestSinklessColoringFixedPoint(t *testing.T) {
	for _, delta := range []int{3, 4, 5, 8} {
		res, err := fixpoint.Run(problems.SinklessColoring(delta), fixpoint.Options{})
		if err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
		if res.Kind != fixpoint.FixedPoint {
			t.Fatalf("delta=%d: classified %v, want fixed point", delta, res.Kind)
		}
		if res.Steps != 1 || res.CycleStart != 0 || res.CycleLen != 1 {
			t.Fatalf("delta=%d: steps=%d cycleStart=%d cycleLen=%d, want 1/0/1",
				delta, res.Steps, res.CycleStart, res.CycleLen)
		}
		if res.Witness == nil {
			t.Fatalf("delta=%d: missing isomorphism witness", delta)
		}
		// The witness must actually map the last problem onto the cycle
		// entry configuration-for-configuration.
		last, entry := res.Last(), res.Trajectory[res.CycleStart]
		for _, cfg := range last.Node.Configs() {
			mapped, err := cfg.Remap(res.Witness)
			if err != nil {
				t.Fatalf("delta=%d: witness incomplete: %v", delta, err)
			}
			if !entry.Node.Contains(mapped) {
				t.Fatalf("delta=%d: witness does not preserve node constraint", delta)
			}
		}
	}
}

// TestSinklessOrientationReachesFixedPoint: in this encoding one
// speedup step turns sinkless orientation into sinkless coloring, and
// the trajectory closes at step 2 on that class (golden trajectory:
// 2 labels / 1 edge / 3 node → 2/2/1 → 2/2/1).
func TestSinklessOrientationReachesFixedPoint(t *testing.T) {
	res, err := fixpoint.Run(problems.SinklessOrientation(3), fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != fixpoint.FixedPoint {
		t.Fatalf("classified %v, want fixed point", res.Kind)
	}
	if res.Steps != 2 || res.CycleStart != 1 || res.CycleLen != 1 {
		t.Fatalf("steps=%d cycleStart=%d cycleLen=%d, want 2/1/1", res.Steps, res.CycleStart, res.CycleLen)
	}
	wantStats := []core.Stats{
		{Labels: 2, EdgeConfigs: 1, NodeConfigs: 3, Delta: 3},
		{Labels: 2, EdgeConfigs: 2, NodeConfigs: 1, Delta: 3},
		{Labels: 2, EdgeConfigs: 2, NodeConfigs: 1, Delta: 3},
	}
	if len(res.Trajectory) != len(wantStats) {
		t.Fatalf("trajectory length %d, want %d", len(res.Trajectory), len(wantStats))
	}
	for i, want := range wantStats {
		if got := res.Trajectory[i].Stats(); got != want {
			t.Fatalf("Π_%d stats = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := core.Isomorphic(res.Trajectory[1], problems.SinklessColoring(3)); !ok {
		t.Fatal("Π_1 of sinkless orientation is not sinkless coloring")
	}
}

// TestWeakTwoColoringTrajectory is the Section 4.6 golden: the first
// derived problem of pointer weak 2-coloring at Δ=3 has 17 usable
// labels, 99 edge configurations and exactly 9 node configurations.
// The second step is beyond any enumeration budget, so a single-step
// run must classify as budget-exceeded with a clean trajectory.
func TestWeakTwoColoringTrajectory(t *testing.T) {
	res, err := fixpoint.Run(problems.WeakTwoColoringPointer(3), fixpoint.Options{MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != fixpoint.BudgetExceeded {
		t.Fatalf("classified %v, want budget exceeded (step limit)", res.Kind)
	}
	if res.Err != nil {
		t.Fatalf("step-limited run should not carry a state-budget error, got %v", res.Err)
	}
	if res.Steps != 1 || len(res.Trajectory) != 2 {
		t.Fatalf("steps=%d len(trajectory)=%d, want 1/2", res.Steps, len(res.Trajectory))
	}
	want := core.Stats{Labels: 17, EdgeConfigs: 99, NodeConfigs: 9, Delta: 3}
	if got := res.Trajectory[1].Stats(); got != want {
		t.Fatalf("Π_1 stats = %+v, want %+v", got, want)
	}
}

// TestSuperweakZeroRound: the upper-bound side of Theorem 1 — one
// speedup step makes superweak 2-coloring at Δ=3 0-round solvable.
func TestSuperweakZeroRound(t *testing.T) {
	if testing.Short() {
		t.Skip("superweak derivation is heavy; skipped in -short mode")
	}
	res, err := fixpoint.Run(problems.Superweak(2, 3), fixpoint.Options{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != fixpoint.ZeroRound {
		t.Fatalf("classified %v, want zero-round solvable", res.Kind)
	}
	if res.Steps != 1 {
		t.Fatalf("steps=%d, want 1", res.Steps)
	}
}

// TestZeroRoundBeatsFixedPoint: a problem that is both a speedup fixed
// point and trivially 0-round solvable must classify as ZeroRound — a
// solvable fixed point carries no lower bound. ("A^3 / A A" maps to
// itself under speedup but any node can output A immediately.)
func TestZeroRoundBeatsFixedPoint(t *testing.T) {
	p := core.MustParse("node:\nA^3\nedge:\nA A\n")
	res, err := fixpoint.Run(p, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != fixpoint.ZeroRound {
		t.Fatalf("classified %v, want zero-round solvable", res.Kind)
	}
	if res.Steps != 0 {
		t.Fatalf("steps=%d, want 0 (the input itself is 0-round solvable)", res.Steps)
	}
}

// TestStateBudgetClassification: when core.Speedup itself gives up on
// the WithMaxStates budget, the driver reports BudgetExceeded and
// surfaces the wrapped sentinel instead of failing.
func TestStateBudgetClassification(t *testing.T) {
	res, err := fixpoint.Run(problems.WeakTwoColoringPointer(3), fixpoint.Options{
		MaxSteps: 2,
		Core:     []core.Option{core.WithMaxStates(100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != fixpoint.BudgetExceeded {
		t.Fatalf("classified %v, want budget exceeded", res.Kind)
	}
	if !errors.Is(res.Err, core.ErrStateBudget) {
		t.Fatalf("Err does not wrap ErrStateBudget: %v", res.Err)
	}
}

// TestParallelFixpointMatchesSequential: the driver composes with the
// parallel engine — same classification and byte-identical trajectories
// for any worker count.
func TestParallelFixpointMatchesSequential(t *testing.T) {
	run := func(workers int) *fixpoint.Result {
		t.Helper()
		res, err := fixpoint.Run(problems.SinklessOrientation(3), fixpoint.Options{
			Core: []core.Option{core.WithWorkers(workers)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	if seq.Kind != par.Kind || seq.Steps != par.Steps || seq.CycleStart != par.CycleStart {
		t.Fatalf("classification diverged: seq=%+v par=%+v", seq, par)
	}
	for i := range seq.Trajectory {
		if seq.Trajectory[i].String() != par.Trajectory[i].String() {
			t.Fatalf("Π_%d diverged between worker counts", i)
		}
	}
}

// TestObserveStreamsTrajectory: Observe fires once per trajectory entry,
// in order, with exactly the problems the finished Result carries — the
// contract that makes streamed NDJSON bytes equal replayed ones.
func TestObserveStreamsTrajectory(t *testing.T) {
	p := problems.SinklessColoring(3)
	var indices []int
	var seen []*core.Problem
	res, err := fixpoint.Run(p, fixpoint.Options{Observe: func(i int, q *core.Problem) {
		indices = append(indices, i)
		seen = append(seen, q)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Trajectory) {
		t.Fatalf("observed %d entries, trajectory has %d", len(seen), len(res.Trajectory))
	}
	for i, q := range seen {
		if indices[i] != i {
			t.Fatalf("observation %d carried index %d", i, indices[i])
		}
		if !q.Equal(res.Trajectory[i]) {
			t.Fatalf("observed entry %d differs from trajectory entry", i)
		}
	}
}

// TestCtxInterruptLeavesMemoizedSteps: a canceled run surfaces the
// context error, and the steps it finished beforehand remain in the
// memo, so an identical re-run replays them and matches an
// uninterrupted run exactly. Cancelling from inside Observe makes the
// interruption point deterministic: the check at the next step
// boundary always fires. Sinkless orientation at Δ=3 closes after
// exactly 2 steps, so cancelling after step 1 always interrupts.
func TestCtxInterruptLeavesMemoizedSteps(t *testing.T) {
	p := problems.SinklessOrientation(3)
	want, err := fixpoint.Run(p, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Steps < 2 {
		t.Fatalf("need a multi-step trajectory for this test, got %d step(s)", want.Steps)
	}

	memo := fixpoint.NewMapMemo()
	ctx, cancel := context.WithCancel(context.Background())
	_, err = fixpoint.Run(p, fixpoint.Options{
		Memo: memo,
		Ctx:  ctx,
		Observe: func(i int, _ *core.Problem) {
			if i == 1 {
				cancel() // interrupt after the first completed step
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if memo.Len() == 0 {
		t.Fatal("interrupted run left no memoized steps behind")
	}

	res, err := fixpoint.Run(p, fixpoint.Options{Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != want.Kind || res.Steps != want.Steps || len(res.Trajectory) != len(want.Trajectory) {
		t.Fatalf("resumed run classified (%v, %d steps), want (%v, %d steps)", res.Kind, res.Steps, want.Kind, want.Steps)
	}
	for i := range res.Trajectory {
		if !res.Trajectory[i].Equal(want.Trajectory[i]) {
			t.Fatalf("resumed trajectory entry %d differs from uninterrupted run", i)
		}
	}
}
