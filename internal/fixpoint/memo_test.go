package fixpoint_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixpoint"
	"repro/internal/problems"
)

// TestMapMemoByteIdentity locks the Memo contract on the in-memory
// implementation: with a memo (cold and warm) and without one, Run
// produces byte-identical trajectories and classifications.
func TestMapMemoByteIdentity(t *testing.T) {
	memo := fixpoint.NewMapMemo()
	opts := func(m fixpoint.Memo) fixpoint.Options {
		return fixpoint.Options{
			MaxSteps: 3,
			Core:     []core.Option{core.WithMaxStates(8_000), core.WithWorkers(1)},
			Memo:     m,
		}
	}
	for _, entry := range problems.Catalog() {
		bare, err := fixpoint.Run(entry.Problem, opts(nil))
		if err != nil {
			t.Fatalf("%s: bare: %v", entry.Name, err)
		}
		cold, err := fixpoint.Run(entry.Problem, opts(memo))
		if err != nil {
			t.Fatalf("%s: cold memo: %v", entry.Name, err)
		}
		warm, err := fixpoint.Run(entry.Problem, opts(memo))
		if err != nil {
			t.Fatalf("%s: warm memo: %v", entry.Name, err)
		}
		for _, pair := range []struct {
			name string
			res  *fixpoint.Result
		}{{"cold", cold}, {"warm", warm}} {
			if pair.res.Kind != bare.Kind || pair.res.Steps != bare.Steps ||
				pair.res.CycleStart != bare.CycleStart || pair.res.CycleLen != bare.CycleLen {
				t.Fatalf("%s: %s run classified %v/%d, bare %v/%d",
					entry.Name, pair.name, pair.res.Kind, pair.res.Steps, bare.Kind, bare.Steps)
			}
			if len(pair.res.Trajectory) != len(bare.Trajectory) {
				t.Fatalf("%s: %s trajectory length differs", entry.Name, pair.name)
			}
			for i := range bare.Trajectory {
				if string(pair.res.Trajectory[i].CanonicalBytes()) != string(bare.Trajectory[i].CanonicalBytes()) {
					t.Fatalf("%s: %s trajectory entry %d differs", entry.Name, pair.name, i)
				}
			}
		}
	}
	if memo.Len() == 0 {
		t.Fatal("memo stayed empty across the catalog")
	}
}
