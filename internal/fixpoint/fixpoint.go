// Package fixpoint iterates the automatic speedup transformation of
// Brandt (PODC 2019) to a fixed point, mechanizing the paper's
// lower-bound recipe: if iterated round elimination maps a problem back
// into its own isomorphism class without ever becoming 0-round
// solvable, the problem requires Ω(log n) rounds on the corresponding
// graph classes (Section 4.4 proves exactly this for sinkless
// coloring).
//
// The driver applies core.Speedup repeatedly, memoizes every derived
// problem's isomorphism class (hash-bucketed by interned
// core.Fingerprint handles, confirmed by core.Isomorphic), and
// classifies the trajectory:
//
//   - FixedPoint: Π_{i} is isomorphic to Π_{i-1} — one more round of
//     speedup changes nothing, the paper's fixed-point situation.
//   - Cycle: Π_{i} is isomorphic to some earlier Π_{j}, j < i-1 — the
//     trajectory is eventually periodic with period > 1, which is just
//     as good for lower bounds (the class never escapes the cycle).
//   - Collapsed: a derived problem has no usable configuration left;
//     iteration cannot continue (and the original problem is "easy" in
//     the sense that round elimination empties it).
//   - ZeroRound: a derived problem is 0-round solvable without inputs,
//     ending the descent of Theorem 1 (upper-bound side).
//   - BudgetExceeded: the step limit or core's WithMaxStates state
//     budget ran out before the trajectory closed.
package fixpoint

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Kind classifies the outcome of an iterated speedup run.
type Kind int

const (
	// FixedPoint: the last derived problem is isomorphic to its
	// predecessor.
	FixedPoint Kind = iota + 1
	// Cycle: the last derived problem is isomorphic to an earlier,
	// non-adjacent trajectory entry.
	Cycle
	// Collapsed: a derived problem became empty (no usable label
	// supports both constraints).
	Collapsed
	// ZeroRound: the input or a derived problem is 0-round solvable
	// without inputs. Checked before trajectory closure: a 0-round
	// solvable fixed point carries no lower bound.
	ZeroRound
	// BudgetExceeded: MaxSteps or the core state budget was exhausted
	// before the trajectory closed.
	BudgetExceeded
)

// String renders the classification for logs and CLI output.
func (k Kind) String() string {
	switch k {
	case FixedPoint:
		return "fixed point"
	case Cycle:
		return "cycle"
	case Collapsed:
		return "collapsed"
	case ZeroRound:
		return "zero-round solvable"
	case BudgetExceeded:
		return "budget exceeded"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options tunes a Run.
type Options struct {
	// MaxSteps bounds the number of speedup applications; 0 selects
	// DefaultMaxSteps.
	MaxSteps int
	// Core options are forwarded to every core.Speedup call (worker
	// count, strategy, state budget).
	Core []core.Option
	// Memo, when non-nil, caches speedup steps across runs (and across
	// processes, when backed by a persistent store). A hit replaces the
	// core.Speedup call entirely; because the transformation is a
	// deterministic function of the exact input representation, the
	// trajectory — and hence every classification and printed byte — is
	// identical with and without a memo. A memo hit spends no state
	// budget, so for the identity to hold the memo must be scoped to
	// the WithMaxStates budget in Core: never serve steps cached under
	// one budget to a run under another (store-backed memos fold the
	// budget into the record key; a MapMemo must simply not be reused
	// across budgets).
	Memo Memo
	// Observe, when non-nil, is invoked synchronously for every
	// trajectory entry the moment it is appended — index 0 is the
	// compressed input, index i the i-th derived problem — before the
	// run's classification is known. Streaming consumers (the HTTP
	// service's NDJSON fixpoint endpoint) render entries from this
	// callback; because each entry is final once appended, bytes
	// streamed step-by-step equal bytes rendered from the finished
	// Result.
	Observe func(index int, p *core.Problem)
	// Ctx, when non-nil, bounds the run: cancellation is polled at each
	// step boundary and surfaces as Run returning ctx's error. Steps
	// already completed have been offered to Memo, so an interrupted
	// run leaves its progress behind as memoized steps — a later
	// identical run replays them as cache hits and produces the exact
	// trajectory an uninterrupted run would have (the service's
	// graceful-shutdown checkpoint contract, mirroring cmd/sweep's
	// kill -9 resume).
	Ctx context.Context
}

// Memo is a pluggable cache of speedup steps, keyed by the exact input
// problem representation. Implementations must return, for a given
// input, exactly the compact-renamed problem a cold
// core.Speedup + RenameCompact would produce (store-backed memos
// guarantee this by keying on core.StableKey and round-tripping through
// the canonical serialization). Lookup failures of any kind must
// surface as a miss — a memo may only ever accelerate a run, never
// change or fail it. Implementations must be safe for concurrent use;
// Run may be invoked from many goroutines sharing one memo.
type Memo interface {
	// LookupStep returns the memoized compact derived problem of in.
	LookupStep(in *core.Problem) (*core.Problem, bool)
	// StoreStep records that one speedup step maps in to out.
	StoreStep(in, out *core.Problem)
}

// MapMemo is the trivial in-process Memo: a mutex-guarded map keyed by
// the canonical serialization. Use it to share steps across the many
// Run calls of one batch process (trajectories of related problems
// frequently pass through identical intermediate problems); use a
// store-backed memo to share them across processes. Scope one MapMemo
// to one WithMaxStates budget — see Options.Memo.
type MapMemo struct {
	mu sync.RWMutex
	m  map[string]*core.Problem
}

// NewMapMemo returns an empty in-memory memo.
func NewMapMemo() *MapMemo {
	return &MapMemo{m: make(map[string]*core.Problem)}
}

// LookupStep returns the memoized compact derived problem of in.
func (m *MapMemo) LookupStep(in *core.Problem) (*core.Problem, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out, ok := m.m[string(in.CanonicalBytes())]
	return out, ok
}

// StoreStep records that one speedup step maps in to out.
func (m *MapMemo) StoreStep(in, out *core.Problem) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[string(in.CanonicalBytes())] = out
}

// Len reports the number of memoized steps.
func (m *MapMemo) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.m)
}

// fingerprinterPool recycles the per-run isomorphism-fingerprint arenas
// (core.Fingerprinter holds three interning tables that would otherwise
// be rebuilt from scratch on every Run).
var fingerprinterPool = sync.Pool{New: func() any { return core.NewFingerprinter() }}

// DefaultMaxSteps bounds the iteration when Options.MaxSteps is unset.
// Trajectories that neither close nor collapse within this many steps
// are typically growing without bound.
const DefaultMaxSteps = 16

// Result is the classified trajectory of an iterated speedup run.
type Result struct {
	// Kind is the trajectory classification.
	Kind Kind
	// Trajectory holds Π_0 (the compressed input) followed by each
	// derived problem, compact-renamed. For FixedPoint and Cycle the
	// last entry is the one isomorphic to Trajectory[CycleStart].
	Trajectory []*core.Problem
	// Steps is the number of speedup applications performed.
	Steps int
	// CycleStart/CycleLen describe the closure for FixedPoint (CycleLen
	// 1) and Cycle (CycleLen > 1): Trajectory[len-1] ≅
	// Trajectory[CycleStart] and CycleLen = len-1-CycleStart.
	CycleStart int
	CycleLen   int
	// Witness maps labels of the last trajectory entry onto
	// Trajectory[CycleStart] for FixedPoint and Cycle.
	Witness core.LabelMap
	// Err records the underlying state-budget error when Kind is
	// BudgetExceeded because core.Speedup gave up (nil when the step
	// limit ran out instead).
	Err error
}

// Last returns the final problem of the trajectory.
func (r *Result) Last() *core.Problem {
	return r.Trajectory[len(r.Trajectory)-1]
}

// Run iterates core.Speedup from p until the trajectory closes
// (fixed point or cycle), trivializes (collapsed or 0-round solvable),
// or exhausts its budget. The input is compressed first so that the
// isomorphism comparisons see the same normal form core.Speedup
// produces. Errors other than budget exhaustion (which classifies as
// BudgetExceeded) are returned as-is.
func Run(p *core.Problem, opts Options) (*Result, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	start := p.Compress()
	res := &Result{Trajectory: []*core.Problem{start}}
	if opts.Observe != nil {
		opts.Observe(0, start)
	}
	if start.Node.Size() == 0 || start.Edge.Size() == 0 {
		res.Kind = Collapsed
		return res, nil
	}
	// 0-round solvability takes precedence over trajectory closure: a
	// problem that is both a fixed point and 0-round solvable carries
	// no lower bound (the paper's recipe requires the trajectory to
	// never become 0-round solvable).
	if _, ok := core.ZeroRoundSolvableNoInput(start); ok {
		res.Kind = ZeroRound
		return res, nil
	}

	// Isomorphism-class memo: interned invariant fingerprint →
	// trajectory indices, confirmed pairwise by core.Isomorphic within
	// a bucket. One Fingerprinter spans the whole run, so fingerprints
	// of different trajectory entries are comparable handles. The
	// fingerprinter's arenas are pooled per-run scratch: fingerprints
	// never leave Run, so recycling them cannot be observed in a Result.
	fp := fingerprinterPool.Get().(*core.Fingerprinter)
	defer func() {
		fp.Reset()
		fingerprinterPool.Put(fp)
	}()
	buckets := map[core.Fingerprint][]int{fp.Fingerprint(start): {0}}

	cur := start
	for step := 1; step <= maxSteps; step++ {
		if opts.Ctx != nil {
			select {
			case <-opts.Ctx.Done():
				return nil, opts.Ctx.Err()
			default:
			}
		}
		next, hit := (*core.Problem)(nil), false
		if opts.Memo != nil {
			next, hit = opts.Memo.LookupStep(cur)
		}
		if !hit {
			derived, err := core.Speedup(cur, opts.Core...)
			if err != nil {
				if errors.Is(err, core.ErrStateBudget) {
					res.Kind = BudgetExceeded
					res.Err = err
					return res, nil
				}
				return nil, err
			}
			next, _ = derived.RenameCompact()
			if opts.Memo != nil {
				opts.Memo.StoreStep(cur, next)
			}
		}
		res.Trajectory = append(res.Trajectory, next)
		res.Steps = step
		if opts.Observe != nil {
			opts.Observe(step, next)
		}

		if next.Node.Size() == 0 || next.Edge.Size() == 0 {
			res.Kind = Collapsed
			return res, nil
		}
		if _, ok := core.ZeroRoundSolvableNoInput(next); ok {
			res.Kind = ZeroRound
			return res, nil
		}

		key := fp.Fingerprint(next)
		for _, j := range buckets[key] {
			if m, ok := core.Isomorphic(next, res.Trajectory[j]); ok {
				res.CycleStart = j
				res.CycleLen = step - j
				res.Witness = m
				if res.CycleLen == 1 {
					res.Kind = FixedPoint
				} else {
					res.Kind = Cycle
				}
				return res, nil
			}
		}
		buckets[key] = append(buckets[key], step)
		cur = next
	}
	res.Kind = BudgetExceeded
	return res, nil
}
