package obs

import (
	"io"
	"net/http"
)

// ResponseWriter wraps an http.ResponseWriter to capture the response
// status and byte count for middleware, while preserving the two
// optional interfaces the service depends on:
//
//   - http.Flusher: Flush (and FlushError) delegate through
//     http.ResponseController, which unwraps nested middleware via
//     Unwrap — so NDJSON streaming keeps flushing line-by-line through
//     any stack of wrapped handlers. (A naive wrapper struct would
//     hide the underlying Flusher and silently batch the whole stream
//     until the handler returned.)
//   - io.ReaderFrom: ReadFrom copies through the underlying writer
//     (which restores its own sendfile fast path) while still counting
//     the bytes.
//
// A ResponseWriter serves one request on one goroutine; it is not safe
// for concurrent use.
type ResponseWriter struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

// Wrap returns w instrumented for status and byte capture.
func Wrap(w http.ResponseWriter) *ResponseWriter {
	return &ResponseWriter{ResponseWriter: w}
}

// WriteHeader records the first status code and forwards every call.
func (w *ResponseWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.status = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write counts the payload bytes, recording an implicit 200 on the
// first write.
func (w *ResponseWriter) Write(b []byte) (int, error) {
	w.commit()
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// ReadFrom counts a streamed copy. io.Copy picks up the underlying
// writer's own ReadFrom when it has one, so wrapping does not disable
// the sendfile path.
func (w *ResponseWriter) ReadFrom(r io.Reader) (int64, error) {
	w.commit()
	n, err := io.Copy(w.ResponseWriter, r)
	w.bytes += n
	return n, err
}

// FlushError flushes buffered data to the client through
// http.ResponseController, which unwraps nested ResponseWriters via
// Unwrap. It returns http.ErrNotSupported when the underlying
// connection cannot flush.
func (w *ResponseWriter) FlushError() error {
	err := http.NewResponseController(w.ResponseWriter).Flush()
	if err == nil {
		w.commit()
	}
	return err
}

// Flush implements http.Flusher; flush failures are not reportable
// through that interface, use FlushError to observe them.
func (w *ResponseWriter) Flush() {
	_ = w.FlushError()
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// controllers built over an outer wrapper reach the real connection.
func (w *ResponseWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// commit records that the response header went (or is going) out with
// an implicit 200 if no explicit WriteHeader preceded it.
func (w *ResponseWriter) commit() {
	if !w.wroteHeader {
		w.status = http.StatusOK
		w.wroteHeader = true
	}
}

// Status returns the response status: the first explicitly written
// code, or 200 when the handler wrote (or will write) none.
func (w *ResponseWriter) Status() int {
	if !w.wroteHeader {
		return http.StatusOK
	}
	return w.status
}

// BytesWritten returns the number of response body bytes written.
func (w *ResponseWriter) BytesWritten() int64 { return w.bytes }
