package obs_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCounterGaugeBasics: the scalar instruments count what they are
// told, and Gauge.RaiseTo is a monotone max.
func TestCounterGaugeBasics(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := reg.Gauge("g", "help")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(7)
	g.RaiseTo(3) // below current: no-op
	if got := g.Value(); got != 7 {
		t.Fatalf("RaiseTo lowered the gauge to %d", got)
	}
	g.RaiseTo(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("RaiseTo(9) = %d, want 9", got)
	}
}

// TestRegistryIdempotent: re-registering the same (name, labels) series
// returns the same instrument, and a type clash panics.
func TestRegistryIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("x_total", "help", obs.L("k", "v"))
	b := reg.Counter("x_total", "help", obs.L("k", "v"))
	if a != b {
		t.Fatal("same series registered twice returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "help", obs.L("k", "v"))
}

// TestHistogramBuckets: observations land in the right cumulative
// buckets and the snapshot carries them with a trailing +Inf.
func TestHistogramBuckets(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h_seconds", "help", []float64{0.01, 0.1})
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(50 * time.Millisecond)  // <= 0.1
	h.Observe(500 * time.Millisecond) // +Inf only

	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("got %d buckets, want 3 (2 bounds + Inf)", len(s.Buckets))
	}
	wantCounts := []int64{1, 2, 3} // cumulative
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d (le %s) = %d, want %d", i, b.LE, b.Count, wantCounts[i])
		}
	}
	if s.Buckets[2].LE != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", s.Buckets[2].LE)
	}
	if s.SumSeconds < 0.55 || s.SumSeconds > 0.56 {
		t.Fatalf("sum = %v, want ~0.555", s.SumSeconds)
	}
}

// TestWritePrometheus: the exposition output carries HELP/TYPE headers,
// label rendering with escaping, and the histogram series triple.
func TestWritePrometheus(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("req_total", `requests with "quotes" and a
newline`, obs.L("path", `a"b\c`)).Add(3)
	reg.Gauge("depth", "queue depth").Set(2)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.5})
	h.Observe(250 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP req_total requests with \"quotes\" and a\\nnewline\n",
		"# TYPE req_total counter\n",
		`req_total{path="a\"b\\c"} 3` + "\n",
		"# TYPE depth gauge\n",
		"depth 2\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.5"} 1` + "\n",
		`lat_seconds_bucket{le="+Inf"} 1` + "\n",
		"lat_seconds_sum 0.25\n",
		"lat_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHandler: the HTTP endpoint serves the exposition format with the
// version-tagged content type.
func TestHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("ticks_total", "ticks").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "ticks_total 1\n") {
		t.Fatalf("body missing counter:\n%s", body)
	}
}

// TestResponseWriterStatusAndBytes: the wrapper records the status
// (explicit or the implicit 200) and counts written bytes without
// altering what reaches the client.
func TestResponseWriterStatusAndBytes(t *testing.T) {
	rec := httptest.NewRecorder()
	w := obs.Wrap(rec)
	if w.Status() != http.StatusOK {
		t.Fatalf("pre-write status = %d, want the implicit 200", w.Status())
	}
	w.WriteHeader(http.StatusTeapot)
	w.WriteHeader(http.StatusOK) // later calls must not overwrite
	n, err := io.WriteString(w, "hello")
	if err != nil || n != 5 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if w.Status() != http.StatusTeapot {
		t.Fatalf("status = %d, want 418", w.Status())
	}
	if w.BytesWritten() != 5 {
		t.Fatalf("bytes = %d, want 5", w.BytesWritten())
	}
	if rec.Code != http.StatusTeapot || rec.Body.String() != "hello" {
		t.Fatalf("recorder saw %d %q", rec.Code, rec.Body.String())
	}

	// Implicit 200 on first Write.
	rec2 := httptest.NewRecorder()
	w2 := obs.Wrap(rec2)
	_, _ = io.WriteString(w2, "x")
	if w2.Status() != http.StatusOK || rec2.Code != http.StatusOK {
		t.Fatalf("implicit status = %d/%d, want 200", w2.Status(), rec2.Code)
	}
}

// TestResponseWriterReadFrom: the io.ReaderFrom path counts bytes and
// commits the implicit status like Write does.
func TestResponseWriterReadFrom(t *testing.T) {
	rec := httptest.NewRecorder()
	w := obs.Wrap(rec)
	n, err := w.ReadFrom(strings.NewReader("stream-body"))
	if err != nil || n != 11 {
		t.Fatalf("ReadFrom: n=%d err=%v", n, err)
	}
	if w.BytesWritten() != 11 || w.Status() != http.StatusOK {
		t.Fatalf("bytes=%d status=%d", w.BytesWritten(), w.Status())
	}
	if rec.Body.String() != "stream-body" {
		t.Fatalf("recorder body %q", rec.Body.String())
	}
}

// flushCounter is a ResponseWriter that counts flushes.
type flushCounter struct {
	http.ResponseWriter
	flushes int
}

func (f *flushCounter) Flush() { f.flushes++ }

// TestResponseWriterFlushPassthrough: FlushError reaches the wrapped
// writer's Flusher, and reports ErrNotSupported when there is none —
// both directly and through http.NewResponseController's Unwrap chain.
func TestResponseWriterFlushPassthrough(t *testing.T) {
	under := &flushCounter{ResponseWriter: httptest.NewRecorder()}
	w := obs.Wrap(under)
	if err := w.FlushError(); err != nil {
		t.Fatal(err)
	}
	// A ResponseController built over a second wrapper must reach the
	// same Flusher through Unwrap.
	outer := obs.Wrap(w)
	if err := http.NewResponseController(outer).Flush(); err != nil {
		t.Fatal(err)
	}
	if under.flushes != 2 {
		t.Fatalf("underlying flusher saw %d flushes, want 2", under.flushes)
	}

	// No Flusher underneath: ErrNotSupported, not a panic.
	plain := obs.Wrap(struct{ http.ResponseWriter }{httptest.NewRecorder()})
	if err := plain.FlushError(); !errors.Is(err, http.ErrNotSupported) {
		t.Fatalf("flush on non-flusher: %v, want ErrNotSupported", err)
	}
}
