// Package obs is the observability substrate of the daemon: cheap
// atomic counters, gauges and fixed-band histograms, collected in a
// Registry that renders the Prometheus text exposition format and
// structured JSON snapshots, plus an HTTP ResponseWriter wrapper that
// captures status and byte counts without breaking streaming.
//
// The package exists so that instrumentation can sit directly on hot
// paths (singleflight admission, store lookups, NDJSON streaming)
// without changing their behavior or cost profile: every instrument is
// one or two atomic adds, no locks, no allocation after registration.
//
// The cardinal rule of the service's observability — metrics are read
// through GET /metrics and GET /v1/stats and NEVER enter query
// response bodies — is enforced structurally: nothing in this package
// is reachable from response rendering, so the cold/warm byte-identity
// contract of internal/service cannot be violated by instrumentation.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus counter contract).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depths, slots in use).
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// RaiseTo lifts the gauge to v if v exceeds the current value — a
// concurrency-safe running maximum (peak queue depth).
func (g *Gauge) RaiseTo(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-band duration histogram: cumulative-on-render
// buckets over ascending upper bounds in seconds, plus a total count
// and sum. Observe is two atomic adds and a short bounds scan — cheap
// enough for per-request latency on the hot path.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, seconds; +Inf implied
	buckets []atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// newHistogram returns a histogram over the given ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot returns a point-in-time copy for the JSON stats endpoint.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNs.Load()) / 1e9,
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Buckets = append(s.Buckets, BucketCount{LE: leLabel(h.bounds, i), Count: cum})
	}
	return s
}

// HistogramSnapshot is a rendered histogram: cumulative bucket counts
// (Prometheus semantics), total count and sum.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// SumSeconds is the sum of all observed durations.
	SumSeconds float64 `json:"sum_seconds"`
	// Buckets is the cumulative count per upper bound, ending at "+Inf".
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound in seconds, rendered as
	// a string so "+Inf" survives JSON.
	LE string `json:"le"`
	// Count is the cumulative number of observations <= LE.
	Count int64 `json:"count"`
}

// leLabel renders the upper bound of bucket i ("+Inf" for the last).
func leLabel(bounds []float64, i int) string {
	if i >= len(bounds) {
		return "+Inf"
	}
	return strconv.FormatFloat(bounds[i], 'g', -1, 64)
}

// Label is one name/value pair attached to a metric series.
type Label struct {
	// Name is the label name.
	Name string
	// Value is the label value.
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Registry holds named metric families and renders them. Registration
// is idempotent: asking for the same (name, labels) twice returns the
// same instrument, so lazily-registered per-status counters need no
// caller-side synchronization. Instrument reads and writes are
// lock-free; only registration and rendering take the registry lock.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family is all series of one metric name.
type family struct {
	name, help, typ string
	series          []*series
	byKey           map[string]*series
}

// series is one labeled instrument.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter returns the counter registered under (name, labels),
// creating it on first use. The help string is fixed by the first
// registration of the name; mixing metric types under one name panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.seriesOf(name, help, "counter", nil, labels)
	return s.counter
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.seriesOf(name, help, "gauge", nil, labels)
	return s.gauge
}

// Histogram returns the histogram registered under (name, labels) with
// the given ascending bucket bounds in seconds (+Inf is implied).
// Bounds are fixed by the first registration of the name.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.seriesOf(name, help, "histogram", bounds, labels)
	return s.hist
}

// seriesOf finds or creates one labeled series.
func (r *Registry) seriesOf(name, help, typ string, bounds []float64, labels []Label) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	s, ok := f.byKey[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch typ {
		case "counter":
			s.counter = &Counter{}
		case "gauge":
			s.gauge = &Gauge{}
		case "histogram":
			s.hist = newHistogram(bounds)
		}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// labelKey serializes a label set into a map key.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4). Families appear in
// registration order; series within a family are sorted by label set,
// so the output is deterministic regardless of registration
// interleaving.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		ordered := append([]*series(nil), f.series...)
		sort.Slice(ordered, func(i, j int) bool {
			return labelKey(ordered[i].labels) < labelKey(ordered[j].labels)
		})
		for _, s := range ordered {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled instrument.
func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.typ {
	case "counter":
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels), s.counter.Value())
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels), s.gauge.Value())
		return err
	case "histogram":
		snap := s.hist.Snapshot()
		for _, b := range snap.Buckets {
			withLE := append(append([]Label(nil), s.labels...), Label{Name: "le", Value: b.LE})
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(withLE), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s.labels),
			strconv.FormatFloat(snap.SumSeconds, 'g', -1, 64)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels), snap.Count)
		return err
	}
	return nil
}

// labelString renders a label set as {a="b",c="d"} ("" when empty).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// Handler serves the registry in the Prometheus text format on GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
