// Package bitset provides a compact, arbitrary-width bitset used to
// represent sets of labels throughout the round elimination engine.
//
// Label alphabets grow quickly under the speedup transformation (labels of a
// derived problem are sets of labels of the previous problem), so set
// operations on label sets are on the hot path of every speedup step.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a fixed-universe bitset. The zero value is an empty set over an
// empty universe; use New to create a set over a universe of a given size.
//
// All binary operations (Union, Intersect, ...) require both operands to
// have the same universe size; this is the caller's responsibility and is
// enforced only by length checks in debug-style panics, since mixing
// universes is always a programming error.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over a universe of n elements {0, ..., n-1}.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set over a universe of n elements containing exactly
// the given indices.
func FromIndices(n int, indices ...int) Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Full returns the set {0, ..., n-1} over a universe of n elements.
func Full(n int) Set {
	s := New(n)
	for w := range s.words {
		s.words[w] = ^uint64(0)
	}
	s.trim()
	return s
}

// Wrap returns a set over a universe of n elements sharing the given
// word storage without copying — the zero-allocation view used to read
// sets back out of an interning arena. The words must already be
// trimmed to the universe, and the caller must not invoke mutating
// methods (Add, Remove, ...InPlace) on the returned set.
func Wrap(n int, words []uint64) Set {
	if len(words) != (n+wordBits-1)/wordBits {
		panic("bitset: Wrap: word count does not match universe size")
	}
	return Set{n: n, words: words}
}

// Words exposes the backing words of the set (little-endian bit
// order: bit i of the set is bit i%64 of word i/64). The returned
// slice aliases the set and must not be modified; it is the canonical
// word sequence handed to the interning arena.
func (s Set) Words() []uint64 { return s.words }

// Compare orders sets over the same universe by the byte-lexicographic
// order of their little-endian encoding — the same total order the
// legacy string Key() induced, kept so that canonical orderings (and
// with them derived label numbering) survive the interning refactor.
// It returns -1, 0 or +1.
func Compare(a, b Set) int {
	a.sameUniverse(b)
	for i, w := range a.words {
		if w == b.words[i] {
			continue
		}
		// Byte-lex order over little-endian bytes is numeric order of
		// the byte-reversed word.
		if bits.ReverseBytes64(w) < bits.ReverseBytes64(b.words[i]) {
			return -1
		}
		return 1
	}
	return 0
}

// trim clears bits beyond the universe in the last word.
func (s *Set) trim() {
	if len(s.words) == 0 {
		return
	}
	rem := s.n % wordBits
	if rem != 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

// Len returns the universe size.
func (s Set) Len() int { return s.n }

// Add inserts element i.
func (s Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= uint64(1) << uint(i%wordBits)
}

// Remove deletes element i.
func (s Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= uint64(1) << uint(i%wordBits)
}

// Contains reports whether element i is in the set.
func (s Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(uint64(1)<<uint(i%wordBits)) != 0
}

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index " + strconv.Itoa(i) + " out of range [0," + strconv.Itoa(s.n) + ")")
	}
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] |= w
	}
	return r
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &= w
	}
	return r
}

// IntersectInto sets dst = s ∩ t without allocating; all three sets
// must share a universe.
func (s Set) IntersectInto(t, dst Set) {
	s.sameUniverse(t)
	s.sameUniverse(dst)
	for i, w := range s.words {
		dst.words[i] = w & t.words[i]
	}
}

// Minus returns s \ t as a new set.
func (s Set) Minus(t Set) Set {
	s.sameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &^= w
	}
	return r
}

// Complement returns the complement of s within its universe.
func (s Set) Complement() Set {
	r := Set{n: s.n, words: make([]uint64, len(s.words))}
	for i, w := range s.words {
		r.words[i] = ^w
	}
	r.trim()
	return r
}

// IntersectInPlace sets s = s ∩ t.
func (s Set) IntersectInPlace(t Set) {
	s.sameUniverse(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// UnionInPlace sets s = s ∪ t.
func (s Set) UnionInPlace(t Set) {
	s.sameUniverse(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// ClearInPlace empties s without allocating.
func (s Set) ClearInPlace() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// FillInPlace sets s = {0, ..., n-1} without allocating.
func (s Set) FillInPlace() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t (subset and not equal).
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same elements.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

func (s Set) sameUniverse(t Set) {
	if s.n != t.n {
		panic("bitset: operation on sets with different universes")
	}
}

// Indices returns the elements of the set in increasing order.
func (s Set) Indices() []int {
	return s.AppendIndices(make([]int, 0, s.Count()))
}

// AppendIndices appends the elements of the set to dst in increasing
// order and returns the extended slice — the allocation-free variant of
// Indices for callers that reuse scratch.
func (s Set) AppendIndices(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for each element in increasing order. If fn returns
// false, iteration stops early.
func (s Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Key returns a compact string usable as a map key. Two sets over the same
// universe have equal keys iff they are equal.
func (s Set) Key() string {
	var sb strings.Builder
	sb.Grow(len(s.words) * 8)
	for _, w := range s.words {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * uint(i)))
		}
		sb.Write(buf[:])
	}
	return sb.String()
}

// String renders the set as {i, j, ...}.
func (s Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		sb.WriteString(strconv.Itoa(i))
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
