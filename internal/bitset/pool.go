package bitset

// Pooled scratch sets. The engine's enumeration hot paths burn through
// short-lived bitsets — one scratch intersection buffer per closedSets
// call, one reach accumulator per derived label — and at fixpoint-service
// request rates those allocations dominate the GC profile. Get/Put
// recycle backing word arrays through sync.Pools bucketed in
// power-of-two size bands (the semadb/vamana pooled-visit-set idiom):
// a Get rounds the word count up to the band, so a pool entry can serve
// every universe size in its band and the number of distinct pools
// stays logarithmic in the largest alphabet ever seen.
//
// Contract: a set obtained from Get is empty and must not escape the
// call frame that Put returns it from — pooled words are reused
// wholesale, so retaining a view of a returned set is a data race by
// construction. Results that outlive the computation must be built
// with New/Clone, never with Get.

import (
	"math/bits"
	"sync"
)

// maxPoolBand caps which scratch sets are recycled: sets wider than
// 2^maxPoolBand words (64Ki labels) are rare one-offs, and keeping them
// out of the pools stops a single huge enumeration from pinning
// megabytes of idle scratch forever.
const maxPoolBand = 10

// pools[b] recycles word slices of capacity exactly 2^b.
var pools [maxPoolBand + 1]sync.Pool

// band returns the pool index whose slice capacity (2^band) covers
// words, and ok=false when the size exceeds the pooled range.
func band(words int) (int, bool) {
	if words <= 0 {
		return 0, true
	}
	b := bits.Len(uint(words - 1)) // ceil(log2(words))
	return b, b <= maxPoolBand
}

// Get returns an empty scratch set over a universe of n elements, drawn
// from the size-banded pool when possible. Pair every Get with a Put of
// the same set once no view of it can be live; see the file comment for
// the escape contract.
func Get(n int) Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	words := (n + wordBits - 1) / wordBits
	b, ok := band(words)
	if !ok {
		return New(n)
	}
	v := pools[b].Get()
	if v == nil {
		return Set{n: n, words: make([]uint64, words, 1<<b)}
	}
	backing := v.([]uint64)[:words]
	for i := range backing {
		backing[i] = 0
	}
	return Set{n: n, words: backing}
}

// Put recycles a set previously returned by Get. Sets from New/Clone
// (or zero-value sets) are accepted and dropped when their capacity is
// not an exact pool band, so callers can Put unconditionally.
func Put(s Set) {
	c := cap(s.words)
	if c == 0 || c&(c-1) != 0 {
		return // not a pool-banded backing array
	}
	b, ok := band(c)
	if !ok {
		return
	}
	pools[b].Put(s.words[:0:c])
}
