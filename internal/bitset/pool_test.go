package bitset

import (
	"testing"
)

// TestGetReturnsEmpty locks the pool's core contract: a recycled set
// must come back empty even when its previous user left bits behind.
func TestGetReturnsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200, 1000} {
		s := Get(n)
		if s.Len() != n {
			t.Fatalf("Get(%d).Len() = %d", n, s.Len())
		}
		if !s.Empty() {
			t.Fatalf("Get(%d) not empty", n)
		}
		for i := 0; i < n; i += 7 {
			s.Add(i)
		}
		Put(s)
		r := Get(n)
		if !r.Empty() {
			t.Fatalf("recycled Get(%d) not empty: %v", n, r.Indices())
		}
		Put(r)
	}
}

// TestPoolBanding checks that Get rounds capacities up to power-of-two
// word bands and that differently-sized universes within one band can
// share a recycled backing array.
func TestPoolBanding(t *testing.T) {
	s := Get(3 * 64) // 3 words → 4-word band
	if c := cap(s.words); c != 4 {
		t.Fatalf("cap = %d words, want 4", c)
	}
	Put(s)
	r := Get(4 * 64) // same band, larger universe
	if r.Len() != 4*64 || !r.Empty() {
		t.Fatalf("band reuse broke the Get contract: len=%d empty=%t", r.Len(), r.Empty())
	}
	Put(r)
}

// TestPutForeignSet checks Put accepts (and silently drops or recycles)
// sets that did not come from Get, so call sites can Put unconditionally.
func TestPutForeignSet(t *testing.T) {
	Put(Set{})       // zero value
	Put(New(100))    // New-backed, 2-word cap: a valid band
	Put(New(3 * 64)) // 3-word cap: not a power of two, dropped
	Put(FromIndices(5, 1))

	huge := Set{n: (1 << (maxPoolBand + 6)) * 2, words: make([]uint64, 1<<(maxPoolBand+1))}
	Put(huge) // beyond the banded range, dropped
}

// TestPoolOpsMatchNew cross-checks that pooled scratch behaves exactly
// like a fresh set under the engine's hot operations.
func TestPoolOpsMatchNew(t *testing.T) {
	a := FromIndices(130, 1, 64, 100, 129)
	b := FromIndices(130, 1, 2, 100)
	scratch := Get(130)
	defer Put(scratch)
	a.IntersectInto(b, scratch)
	want := a.Intersect(b)
	if !scratch.Equal(want) {
		t.Fatalf("IntersectInto via pooled scratch = %v, want %v", scratch.Indices(), want.Indices())
	}
}
