package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOperations(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if s.Count() != 7 {
		t.Errorf("Count = %d, want 7", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) after Remove")
	}
	if got := s.Indices(); len(got) != 6 {
		t.Errorf("Indices len = %d, want 6", len(got))
	}
}

func TestFullAndComplement(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		f := Full(n)
		if f.Count() != n {
			t.Errorf("Full(%d).Count() = %d", n, f.Count())
		}
		c := f.Complement()
		if !c.Empty() {
			t.Errorf("Full(%d).Complement() not empty", n)
		}
	}
}

func TestOutOfRangeContains(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) {
		t.Error("Contains out of range returned true")
	}
}

func randomSet(rng *rand.Rand, n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 100
	for iter := 0; iter < 200; iter++ {
		a := randomSet(rng, n)
		b := randomSet(rng, n)

		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.Minus(b)

		// |A∪B| + |A∩B| = |A| + |B|
		if union.Count()+inter.Count() != a.Count()+b.Count() {
			t.Fatal("inclusion-exclusion violated")
		}
		// A\B ∪ (A∩B) = A
		if !diff.Union(inter).Equal(a) {
			t.Fatal("difference identity violated")
		}
		// subset relations
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			t.Fatal("intersection not subset")
		}
		if !a.SubsetOf(union) || !b.SubsetOf(union) {
			t.Fatal("operand not subset of union")
		}
		// Intersects consistent with Intersect
		if a.Intersects(b) != !inter.Empty() {
			t.Fatal("Intersects inconsistent")
		}
		// Complement involution
		if !a.Complement().Complement().Equal(a) {
			t.Fatal("complement not involutive")
		}
		// Key equality iff Equal
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatal("Key equality mismatch")
		}
	}
}

func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 300
		s := New(n)
		want := map[int]bool{}
		for _, r := range raw {
			i := int(r) % n
			s.Add(i)
			want[i] = true
		}
		got := s.Indices()
		if len(got) != len(want) {
			return false
		}
		prev := -1
		for _, i := range got {
			if !want[i] || i <= prev {
				return false
			}
			prev = i
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInPlaceOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		a := randomSet(rng, 80)
		b := randomSet(rng, 80)
		c := a.Clone()
		c.IntersectInPlace(b)
		if !c.Equal(a.Intersect(b)) {
			t.Fatal("IntersectInPlace mismatch")
		}
		d := a.Clone()
		d.UnionInPlace(b)
		if !d.Equal(a.Union(b)) {
			t.Fatal("UnionInPlace mismatch")
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(10, 1, 3, 5, 7)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Errorf("early stop visited %v", seen)
	}
}
