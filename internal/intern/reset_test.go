package intern

import "testing"

// TestTableReset locks the pooled-reuse contract: after Reset the table
// is empty, re-interns from handle 0, and behaves identically to a
// fresh table.
func TestTableReset(t *testing.T) {
	tab := NewTable(4)
	h1 := tab.Intern([]uint64{1, 2})
	h2 := tab.Intern([]uint64{3})
	if h1 != 0 || h2 != 1 || tab.Len() != 2 {
		t.Fatalf("pre-reset handles %d,%d len %d", h1, h2, tab.Len())
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tab.Len())
	}
	if _, ok := tab.Lookup([]uint64{1, 2}); ok {
		t.Fatal("Reset table still resolves old sequence")
	}
	h := tab.Intern([]uint64{9, 9, 9})
	if h != 0 {
		t.Fatalf("first handle after Reset = %d, want 0", h)
	}
	if got, ok := tab.Lookup([]uint64{9, 9, 9}); !ok || got != 0 {
		t.Fatalf("Lookup after Reset = %d, %t", got, ok)
	}
}

// TestTableResetKeepsCapacity checks Reset reuses the grown probe table
// rather than shrinking it (the point of pooling).
func TestTableResetKeepsCapacity(t *testing.T) {
	tab := NewTable(0)
	for i := uint64(0); i < 100; i++ {
		tab.Intern([]uint64{i})
	}
	grown := len(tab.tab)
	tab.Reset()
	if len(tab.tab) != grown {
		t.Fatalf("probe table shrank on Reset: %d -> %d", grown, len(tab.tab))
	}
	for i := uint64(0); i < 100; i++ {
		if h := tab.Intern([]uint64{i * 3}); int(h) != int(i) {
			t.Fatalf("handle %d after reuse, want %d", h, i)
		}
	}
}
