package intern

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bitset"
)

// TestHandleEqualityIffSetEquality is the interner's core property, on
// random bitsets: two sets receive the same handle iff they are equal.
func TestHandleEqualityIffSetEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 64, 65, 200} {
		tab := NewTable(0)
		sets := make([]bitset.Set, 0, 200)
		handles := make([]Handle, 0, 200)
		for i := 0; i < 200; i++ {
			s := bitset.New(n)
			for b := 0; b < n; b++ {
				if rng.Intn(3) == 0 {
					s.Add(b)
				}
			}
			sets = append(sets, s)
			handles = append(handles, tab.Intern(s.Words()))
		}
		for i := range sets {
			for j := range sets {
				if (handles[i] == handles[j]) != sets[i].Equal(sets[j]) {
					t.Fatalf("n=%d: handle equality (%v) disagrees with set equality (%v) for %v vs %v",
						n, handles[i] == handles[j], sets[i].Equal(sets[j]), sets[i], sets[j])
				}
			}
			// Round trip: the stored words reconstruct the set.
			if !bitset.Wrap(n, tab.Seq(handles[i])).Equal(sets[i]) {
				t.Fatalf("n=%d: Seq(%d) does not reconstruct %v", n, handles[i], sets[i])
			}
		}
	}
}

// TestSequenceLengthsSeparate guards the padding edge case: sequences
// that are prefixes of one another must intern to distinct handles.
func TestSequenceLengthsSeparate(t *testing.T) {
	tab := NewTable(0)
	a := tab.Intern([]uint64{0})
	b := tab.Intern([]uint64{0, 0})
	c := tab.Intern([]uint64{0, 0, 0})
	d := tab.Intern(nil)
	if a == b || b == c || a == c || d == a {
		t.Fatalf("prefix sequences collapsed: %d %d %d %d", a, b, c, d)
	}
	if got := tab.Intern([]uint64{0, 0}); got != b {
		t.Fatalf("re-intern of {0,0} returned %d, want %d", got, b)
	}
}

// TestNegativeCapacity locks the documented "capacity <= 0 selects a
// small default" behavior for negative inputs (computed capacities like
// count-1 on an empty input must not panic).
func TestNegativeCapacity(t *testing.T) {
	tab := NewTable(-1)
	if h := tab.Intern([]uint64{7}); h != 0 {
		t.Fatalf("first handle = %d, want 0", h)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

// TestCollisionStressDegradedHash degrades the hash to a constant so
// every sequence lands on one probe chain: the arena must stay correct
// (word-comparison collision checks), only slower.
func TestCollisionStressDegradedHash(t *testing.T) {
	tab := newTableWithHash(0, func([]uint64) uint64 { return 42 })
	rng := rand.New(rand.NewSource(2))
	seen := map[[3]uint64]Handle{}
	for i := 0; i < 2000; i++ {
		var key [3]uint64
		for j := range key {
			key[j] = uint64(rng.Intn(4)) // few distinct values → many repeats
		}
		h := tab.Intern(key[:])
		if prev, ok := seen[key]; ok {
			if h != prev {
				t.Fatalf("equal sequence %v interned to %d then %d under degraded hash", key, prev, h)
			}
		} else {
			for k, ph := range seen {
				if ph == h {
					t.Fatalf("distinct sequences %v and %v share handle %d under degraded hash", k, key, h)
				}
			}
			seen[key] = h
		}
	}
	if tab.Len() != len(seen) {
		t.Fatalf("arena holds %d sequences, want %d", tab.Len(), len(seen))
	}
}

// TestConcurrentIntern hammers one arena from many goroutines over an
// overlapping value set; handles must be consistent (run under -race).
func TestConcurrentIntern(t *testing.T) {
	tab := NewTable(0)
	const workers, perWorker, universe = 8, 3000, 257
	results := make([]map[uint64]Handle, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			got := map[uint64]Handle{}
			for i := 0; i < perWorker; i++ {
				v := uint64(rng.Intn(universe))
				got[v] = tab.Intern([]uint64{v, v * v})
			}
			results[w] = got
		}()
	}
	wg.Wait()
	merged := map[uint64]Handle{}
	for _, got := range results {
		for v, h := range got {
			if prev, ok := merged[v]; ok && prev != h {
				t.Fatalf("value %d interned to both %d and %d across goroutines", v, prev, h)
			}
			merged[v] = h
		}
	}
	if tab.Len() != len(merged) {
		t.Fatalf("arena holds %d sequences, want %d distinct", tab.Len(), len(merged))
	}
}

// TestCloneIndependence: a clone answers identically for existing
// content and diverges independently afterwards.
func TestCloneIndependence(t *testing.T) {
	tab := NewTable(0)
	h0 := tab.Intern([]uint64{1, 2})
	c := tab.Clone()
	if got, ok := c.Lookup([]uint64{1, 2}); !ok || got != h0 {
		t.Fatalf("clone lost {1,2}: %d %v", got, ok)
	}
	h1 := c.Intern([]uint64{9})
	if _, ok := tab.Lookup([]uint64{9}); ok {
		t.Fatal("insert into clone leaked into original")
	}
	if h1 != Handle(1) {
		t.Fatalf("clone assigned handle %d, want 1", h1)
	}
}

// TestStringsArena covers the string-keyed arena used for the oracle's
// view classes.
func TestStringsArena(t *testing.T) {
	s := NewStrings()
	a := s.Intern("view-a")
	b := s.Intern("view-b")
	if a == b {
		t.Fatal("distinct strings share a handle")
	}
	if s.Intern("view-a") != a {
		t.Fatal("re-intern changed the handle")
	}
	if s.Value(a) != "view-a" || s.Value(b) != "view-b" {
		t.Fatal("Value does not round-trip")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func BenchmarkInternHit(b *testing.B) {
	tab := NewTable(1024)
	seqs := make([][]uint64, 512)
	for i := range seqs {
		seqs[i] = []uint64{uint64(i), uint64(i * 3), uint64(i * 7)}
		tab.Intern(seqs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Intern(seqs[i%len(seqs)])
	}
}
