// Package intern provides hash-consed arenas: append-only tables that
// map values to dense uint32 handles, such that two values receive the
// same handle iff they are equal. Handles are cheap to compare, hash
// (they are map keys in their own right) and index with, which lets the
// round-elimination engine key its hot-path maps by handle instead of
// by materialized strings.
//
// Table interns sequences of uint64 words — the engine's label sets
// (bitset words), packed multiset configurations and iso-invariant
// fingerprints are all word sequences. Hashing is word-level
// xor/multiply (no byte or string materialization), open-addressed,
// and collision-checked by word comparison, so equal handles are a
// proof of equal sequences, never a probabilistic claim.
//
// Strings interns Go strings (the oracle's radius-t view-class keys);
// it exists for the one boundary where the canonical identity already
// is a string.
//
// Both arenas are safe for concurrent use. Handles are assigned in
// insertion order, so their numeric values depend on interleaving;
// deterministic outputs must order by content (e.g. bitset.Compare),
// not by handle value.
package intern

import (
	"sync"
)

// Handle identifies an interned value within one arena. Handles from
// different arenas are unrelated.
type Handle uint32

// Table is a hash-consed arena of uint64-word sequences.
type Table struct {
	mu   sync.RWMutex
	data []uint64 // concatenated sequences
	off  []uint32 // off[h]..off[h+1] delimit sequence h; len = count+1
	tab  []uint32 // open-addressed buckets holding handle+1; 0 = empty
	hash func([]uint64) uint64
}

// minBuckets keeps the probe table a power of two from the start.
const minBuckets = 16

// NewTable returns an empty arena pre-sized for about capacity
// sequences. capacity <= 0 selects a small default.
func NewTable(capacity int) *Table {
	if capacity < 0 {
		capacity = 0
	}
	n := minBuckets
	for n < 2*capacity {
		n *= 2
	}
	return &Table{
		off:  make([]uint32, 1, capacity+1),
		tab:  make([]uint32, n),
		hash: HashWords,
	}
}

// newTableWithHash is NewTable with an overridden hash function; the
// collision-stress tests degrade the hash to force long probe chains.
func newTableWithHash(capacity int, hash func([]uint64) uint64) *Table {
	t := NewTable(capacity)
	t.hash = hash
	return t
}

// HashWords is the arena's word-level mixing function: xor/multiply per
// word with a murmur-style finalizer, seeded by the sequence length so
// that zero-padded sequences of different lengths separate.
func HashWords(seq []uint64) uint64 {
	h := uint64(len(seq))*0x9E3779B97F4A7C15 + 0x1F83D9ABFB41BD6B
	for _, w := range seq {
		h = (h ^ w) * 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// Len returns the number of interned sequences.
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.off) - 1
	t.mu.RUnlock()
	return n
}

// Seq returns the words of handle h. The returned slice aliases the
// arena and must not be modified.
func (t *Table) Seq(h Handle) []uint64 {
	t.mu.RLock()
	s := t.data[t.off[h]:t.off[h+1]:t.off[h+1]]
	t.mu.RUnlock()
	return s
}

// Lookup returns the handle of seq if it is already interned. It never
// inserts, so it is the right membership test for read-only phases.
func (t *Table) Lookup(seq []uint64) (Handle, bool) {
	hv := t.hash(seq)
	t.mu.RLock()
	h, ok := t.find(hv, seq)
	t.mu.RUnlock()
	return h, ok
}

// Intern returns the handle of seq, inserting it first if needed. The
// words are copied; the caller keeps ownership of seq.
func (t *Table) Intern(seq []uint64) Handle {
	hv := t.hash(seq)
	t.mu.RLock()
	h, ok := t.find(hv, seq)
	t.mu.RUnlock()
	if ok {
		return h
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-probe: another writer may have inserted seq (or grown the
	// table) between the two lock acquisitions.
	if h, ok := t.find(hv, seq); ok {
		return h
	}
	count := len(t.off) - 1
	if 4*(count+1) > 3*len(t.tab) {
		t.grow()
	}
	h = Handle(count)
	t.data = append(t.data, seq...)
	t.off = append(t.off, uint32(len(t.data)))
	t.place(hv, h)
	return h
}

// find probes for seq under an already-held lock.
func (t *Table) find(hv uint64, seq []uint64) (Handle, bool) {
	mask := uint64(len(t.tab) - 1)
	for i := hv & mask; ; i = (i + 1) & mask {
		slot := t.tab[i]
		if slot == 0 {
			return 0, false
		}
		h := Handle(slot - 1)
		if t.seqEqual(h, seq) {
			return h, true
		}
	}
}

// seqEqual collision-checks a candidate handle by word comparison.
func (t *Table) seqEqual(h Handle, seq []uint64) bool {
	got := t.data[t.off[h]:t.off[h+1]]
	if len(got) != len(seq) {
		return false
	}
	for i, w := range got {
		if w != seq[i] {
			return false
		}
	}
	return true
}

// place inserts handle h at its probe position; write lock held.
func (t *Table) place(hv uint64, h Handle) {
	mask := uint64(len(t.tab) - 1)
	i := hv & mask
	for t.tab[i] != 0 {
		i = (i + 1) & mask
	}
	t.tab[i] = uint32(h) + 1
}

// grow doubles the probe table and re-places every handle.
func (t *Table) grow() {
	t.tab = make([]uint32, 2*len(t.tab))
	for h := 0; h < len(t.off)-1; h++ {
		t.place(t.hash(t.data[t.off[h]:t.off[h+1]]), Handle(h))
	}
}

// WordCap reports the capacity of the arena's backing word storage —
// what a pooled table pins while idle. Pool maintainers use it to drop
// tables that grew too large to be worth keeping.
func (t *Table) WordCap() int {
	t.mu.RLock()
	c := cap(t.data)
	t.mu.RUnlock()
	return c
}

// Reset empties the arena in place, keeping its backing storage (data,
// offsets, probe table), so a pooled table can be reused across runs
// without reallocating. Every previously issued Handle — and every
// slice previously returned by Seq — is invalidated; callers that pool
// tables must not Reset while any goroutine still holds either.
func (t *Table) Reset() {
	t.mu.Lock()
	t.data = t.data[:0]
	t.off = t.off[:1]
	clear(t.tab)
	t.mu.Unlock()
}

// Clone returns an independent copy of the arena with identical handle
// assignments.
func (t *Table) Clone() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := &Table{
		data: append([]uint64(nil), t.data...),
		off:  append([]uint32(nil), t.off...),
		tab:  append([]uint32(nil), t.tab...),
		hash: t.hash,
	}
	return c
}

// Strings is a hash-consed arena of strings: dense handles, one stored
// copy per distinct string.
type Strings struct {
	mu    sync.RWMutex
	index map[string]Handle
	vals  []string
}

// NewStrings returns an empty string arena.
func NewStrings() *Strings {
	return &Strings{index: make(map[string]Handle)}
}

// Intern returns the handle of v, inserting it first if needed.
func (s *Strings) Intern(v string) Handle {
	s.mu.RLock()
	h, ok := s.index[v]
	s.mu.RUnlock()
	if ok {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.index[v]; ok {
		return h
	}
	h = Handle(len(s.vals))
	s.vals = append(s.vals, v)
	s.index[v] = h
	return h
}

// Value returns the string of handle h.
func (s *Strings) Value(h Handle) string {
	s.mu.RLock()
	v := s.vals[h]
	s.mu.RUnlock()
	return v
}

// Len returns the number of interned strings.
func (s *Strings) Len() int {
	s.mu.RLock()
	n := len(s.vals)
	s.mu.RUnlock()
	return n
}
