package problems

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Families lists the sweepable problem families in grid order — the
// order Grid expands them and batch reports present them.
func Families() []string {
	return []string{
		"sinkless-coloring",
		"sinkless-orientation",
		"k-coloring",
		"weak2-pointer",
		"superweak",
	}
}

// GridPoint is one instantiated (family, Δ, k) parameter point: the
// problem plus the identity batch consumers key their reports on.
type GridPoint struct {
	// Name identifies the point, "family/parameters", matching the
	// catalog naming scheme.
	Name string
	// Family is the family segment of the name.
	Family string
	// Delta is the regular degree the problem was instantiated at.
	Delta int
	// K is the family's k parameter; 0 when the family has none.
	K int
	// Problem is the instantiated problem.
	Problem *core.Problem
}

// Grid expands families over the inclusive Δ and k ranges into the
// deterministic point list that defines both batch sharding and report
// row order. Families without a k parameter contribute one point per Δ;
// parameter combinations outside a family's domain (superweak needs
// k >= 2) are skipped. Unknown family names are an error.
func Grid(families []string, deltaLo, deltaHi, kLo, kHi int) ([]GridPoint, error) {
	var points []GridPoint
	for _, family := range families {
		known := false
		for _, f := range Families() {
			if f == family {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("problems: unknown family %q (have %s)", family, strings.Join(Families(), ", "))
		}
		for delta := deltaLo; delta <= deltaHi; delta++ {
			switch family {
			case "sinkless-coloring":
				points = append(points, GridPoint{
					Name:   fmt.Sprintf("sinkless-coloring/delta=%d", delta),
					Family: family, Delta: delta,
					Problem: SinklessColoring(delta),
				})
			case "sinkless-orientation":
				points = append(points, GridPoint{
					Name:   fmt.Sprintf("sinkless-orientation/delta=%d", delta),
					Family: family, Delta: delta,
					Problem: SinklessOrientation(delta),
				})
			case "weak2-pointer":
				points = append(points, GridPoint{
					Name:   fmt.Sprintf("weak2-pointer/delta=%d", delta),
					Family: family, Delta: delta,
					Problem: WeakTwoColoringPointer(delta),
				})
			case "k-coloring":
				for k := kLo; k <= kHi; k++ {
					points = append(points, GridPoint{
						Name:   fmt.Sprintf("%d-coloring/delta=%d", k, delta),
						Family: family, Delta: delta, K: k,
						Problem: KColoring(k, delta),
					})
				}
			case "superweak":
				for k := kLo; k <= kHi; k++ {
					if k < 2 { // the problem is defined for k >= 2
						continue
					}
					points = append(points, GridPoint{
						Name:   fmt.Sprintf("superweak/k=%d,delta=%d", k, delta),
						Family: family, Delta: delta, K: k,
						Problem: Superweak(k, delta),
					})
				}
			}
		}
	}
	return points, nil
}

// CatalogGrid presents the fixed paper catalog (Catalog) as grid
// points, recovering each entry's family and k from its name.
func CatalogGrid() []GridPoint {
	var points []GridPoint
	for _, e := range Catalog() {
		points = append(points, GridPoint{
			Name:    e.Name,
			Family:  FamilyOf(e.Name),
			Delta:   e.Problem.Delta(),
			K:       KOf(e.Name),
			Problem: e.Problem,
		})
	}
	return points
}

// FamilyOf recovers the family segment of a catalog-style name
// ("3-coloring/delta=2" → "k-coloring").
func FamilyOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	if strings.HasSuffix(name, "-coloring") && name != "sinkless-coloring" {
		return "k-coloring"
	}
	return name
}

// KOf recovers the k parameter of a catalog-style name
// ("3-coloring/...", ".../k=2,..."); 0 for families without one.
func KOf(name string) int {
	if i := strings.Index(name, "k="); i >= 0 {
		var k int
		if _, err := fmt.Sscanf(name[i:], "k=%d", &k); err == nil {
			return k
		}
	}
	if FamilyOf(name) == "k-coloring" {
		if k, err := strconv.Atoi(name[:strings.IndexByte(name, '-')]); err == nil {
			return k
		}
	}
	return 0
}
