// Package problems is the catalog of the concrete locally checkable
// problems studied in Brandt (PODC 2019): sinkless coloring and sinkless
// orientation (Section 4.4), k-coloring (Section 4.5), the pointer version
// of weak 2-coloring (Section 4.6), and superweak k-coloring (Section 5.1).
//
// All constructors follow the paper's formal definitions verbatim,
// instantiated at a fixed Δ (the problems are defined on Δ-regular
// graphs).
package problems

import (
	"fmt"
	"strconv"

	"repro/internal/core"
)

// SinklessColoring returns the sinkless coloring problem on Δ-regular
// graphs (Section 4.4): each node picks one incident edge ("its color");
// on every edge, at least one endpoint must not pick it. Encoded with one
// output per node-edge pair: label "1" at (v, e) means v chooses e.
//
//	f(Δ) = {0, 1},  g(Δ) = {{0,0}, {0,1}},  h(Δ) = {{0^(Δ-1), 1}}.
func SinklessColoring(delta int) *core.Problem {
	mustDelta(delta, 1)
	alpha := core.MustAlphabet("0", "1")
	zero, one := core.Label(0), core.Label(1)

	edge := core.NewConstraint(2)
	edge.MustAdd(core.NewConfig(zero, zero))
	edge.MustAdd(core.NewConfig(zero, one))

	node := core.NewConstraint(delta)
	counts := map[core.Label]int{one: 1}
	if delta > 1 {
		counts[zero] = delta - 1
	}
	node.MustAdd(mustConfig(counts))

	return mustProblem(alpha, edge, node)
}

// SinklessOrientation returns the sinkless orientation problem on
// Δ-regular graphs (Section 4.4): orient every edge, endpoints agreeing,
// such that every node has at least one outgoing edge. Label "1" at (v, e)
// means v orients e away from itself.
//
//	f(Δ) = {0, 1},  g(Δ) = {{0,1}},
//	h(Δ) = {multisets with at least one 1}.
func SinklessOrientation(delta int) *core.Problem {
	mustDelta(delta, 1)
	alpha := core.MustAlphabet("0", "1")
	zero, one := core.Label(0), core.Label(1)

	edge := core.NewConstraint(2)
	edge.MustAdd(core.NewConfig(zero, one))

	node := core.NewConstraint(delta)
	for out := 1; out <= delta; out++ {
		counts := map[core.Label]int{one: out}
		if delta-out > 0 {
			counts[zero] = delta - out
		}
		node.MustAdd(mustConfig(counts))
	}

	return mustProblem(alpha, edge, node)
}

// KColoring returns the proper k-coloring problem on Δ-regular graphs
// (Section 4.5 uses it on rings, Δ = 2): every node outputs the same color
// on all its ports, adjacent nodes differ.
//
//	f(Δ) = {1..k},  g(Δ) = {{c1,c2} : c1 ≠ c2},  h(Δ) = {{c^Δ}}.
func KColoring(k, delta int) *core.Problem {
	mustDelta(delta, 1)
	if k < 1 {
		panic("problems: k-coloring needs k >= 1")
	}
	names := make([]string, k)
	for i := range names {
		names[i] = strconv.Itoa(i + 1)
	}
	alpha := core.MustAlphabet(names...)

	edge := core.NewConstraint(2)
	for c1 := 0; c1 < k; c1++ {
		for c2 := c1 + 1; c2 < k; c2++ {
			edge.MustAdd(core.NewConfig(core.Label(c1), core.Label(c2)))
		}
	}

	node := core.NewConstraint(delta)
	for c := 0; c < k; c++ {
		node.MustAdd(mustConfig(map[core.Label]int{core.Label(c): delta}))
	}

	return mustProblem(alpha, edge, node)
}

// Pointer-kind suffixes for the weak/superweak coloring label names:
// ">" demanding pointer, "<" accepting pointer, "." no pointer.
const (
	SuffixDemanding = ">"
	SuffixAccepting = "<"
	SuffixNone      = "."
)

// WeakTwoColoringPointer returns the pointer version of weak 2-coloring on
// Δ-regular graphs (Section 4.6): each node outputs a color in {1, 2} on
// all ports and marks exactly one port with a pointer ">"; the pointed-to
// neighbor must have a different color.
//
//	f(Δ) = {1,2} × {>, .},
//	g(Δ) = {{(y,y'),(z,z')} : y ≠ z or y' = "." = z'},
//	h(Δ) = {{(c,>), (c,.)^(Δ-1)} : c ∈ {1,2}}.
func WeakTwoColoringPointer(delta int) *core.Problem {
	mustDelta(delta, 1)
	// Labels: "1>", "1.", "2>", "2." in this order.
	alpha := core.MustAlphabet("1"+SuffixDemanding, "1"+SuffixNone, "2"+SuffixDemanding, "2"+SuffixNone)
	color := func(l core.Label) int { return int(l) / 2 }
	pointer := func(l core.Label) bool { return int(l)%2 == 0 }

	edge := core.NewConstraint(2)
	for a := 0; a < 4; a++ {
		for b := a; b < 4; b++ {
			la, lb := core.Label(a), core.Label(b)
			if color(la) != color(lb) || (!pointer(la) && !pointer(lb)) {
				edge.MustAdd(core.NewConfig(la, lb))
			}
		}
	}

	node := core.NewConstraint(delta)
	for c := 0; c < 2; c++ {
		point := core.Label(2 * c)
		plain := core.Label(2*c + 1)
		counts := map[core.Label]int{point: 1}
		if delta > 1 {
			counts[plain] = delta - 1
		}
		node.MustAdd(mustConfig(counts))
	}

	return mustProblem(alpha, edge, node)
}

// SuperweakLabelName renders a superweak label: color (1-based) plus
// pointer-kind suffix.
func SuperweakLabelName(color int, kind string) string {
	return strconv.Itoa(color) + kind
}

// Superweak returns the superweak k-coloring problem on Δ-regular graphs
// (Section 5.1): each node outputs one color c ∈ {1..k} on all ports, a
// set of demanding pointers ">" and a set of accepting pointers "<" on
// distinct ports, with strictly more demanding than accepting pointers and
// at most k accepting pointers. On every edge: different colors, or no
// demanding pointer, or a demanding pointer met by an accepting one.
//
//	f(Δ) = {1..k} × {>, <, .},
//	g(Δ) = {{(y,y'),(z,z')} : y ≠ z or y' = "." = z' or "<" ∈ {y',z'}},
//	h(Δ) = {same color c, a demanding, b accepting, Δ−a−b plain :
//	        min(k+1, a) > b}.
func Superweak(k, delta int) *core.Problem {
	mustDelta(delta, 1)
	if k < 2 {
		panic("problems: superweak coloring needs k >= 2")
	}
	names := make([]string, 0, 3*k)
	for c := 1; c <= k; c++ {
		names = append(names,
			SuperweakLabelName(c, SuffixDemanding),
			SuperweakLabelName(c, SuffixAccepting),
			SuperweakLabelName(c, SuffixNone))
	}
	alpha := core.MustAlphabet(names...)
	label := func(c int, kind int) core.Label { return core.Label(3*(c-1) + kind) }
	const (
		kindDemanding = 0
		kindAccepting = 1
		kindNone      = 2
	)

	edge := core.NewConstraint(2)
	for c1 := 1; c1 <= k; c1++ {
		for k1 := 0; k1 < 3; k1++ {
			for c2 := 1; c2 <= k; c2++ {
				for k2 := 0; k2 < 3; k2++ {
					l1, l2 := label(c1, k1), label(c2, k2)
					if l2 < l1 {
						continue
					}
					ok := c1 != c2 ||
						(k1 == kindNone && k2 == kindNone) ||
						k1 == kindAccepting || k2 == kindAccepting
					if ok {
						edge.MustAdd(core.NewConfig(l1, l2))
					}
				}
			}
		}
	}

	node := core.NewConstraint(delta)
	for c := 1; c <= k; c++ {
		for a := 1; a <= delta; a++ { // demanding count
			for b := 0; a+b <= delta; b++ { // accepting count
				if b >= min(k+1, a) || b > k {
					continue
				}
				counts := map[core.Label]int{label(c, kindDemanding): a}
				if b > 0 {
					counts[label(c, kindAccepting)] = b
				}
				if rest := delta - a - b; rest > 0 {
					counts[label(c, kindNone)] = rest
				}
				node.MustAdd(mustConfig(counts))
			}
		}
	}

	return mustProblem(alpha, edge, node)
}

// Entry is one catalog problem together with its known round-elimination
// behavior, for table-driven tests and the fixpoint driver.
type Entry struct {
	// Name identifies the entry, "family/parameters".
	Name string
	// Problem is the instantiated problem.
	Problem *core.Problem
	// FixedPoint records whether one speedup step is known to map the
	// problem back into its own isomorphism class (the paper's
	// lower-bound fixed points of Section 4.4).
	FixedPoint bool
}

// Catalog returns every problem of the paper at representative
// parameters, each small enough for an exact Speedup run in tests. The
// FixedPoint flags encode Section 4.4: sinkless coloring is a speedup
// fixed point at every Δ ≥ 3. Sinkless orientation is not flagged —
// one speedup step turns it into sinkless coloring, so it enters the
// fixed-point class only at the second step.
func Catalog() []Entry {
	return []Entry{
		{Name: "sinkless-coloring/delta=3", Problem: SinklessColoring(3), FixedPoint: true},
		{Name: "sinkless-coloring/delta=5", Problem: SinklessColoring(5), FixedPoint: true},
		{Name: "sinkless-orientation/delta=3", Problem: SinklessOrientation(3)},
		{Name: "3-coloring/delta=2", Problem: KColoring(3, 2)},
		{Name: "4-coloring/delta=2", Problem: KColoring(4, 2)},
		{Name: "weak2-pointer/delta=3", Problem: WeakTwoColoringPointer(3)},
		{Name: "weak2-pointer/delta=4", Problem: WeakTwoColoringPointer(4)},
		{Name: "superweak/k=2,delta=3", Problem: Superweak(2, 3)},
	}
}

func mustDelta(delta, minDelta int) {
	if delta < minDelta {
		panic(fmt.Sprintf("problems: Δ=%d below minimum %d", delta, minDelta))
	}
}

func mustConfig(counts map[core.Label]int) core.Config {
	cfg, err := core.NewConfigCounts(counts)
	if err != nil {
		panic(err)
	}
	return cfg
}

func mustProblem(alpha *core.Alphabet, edge, node core.Constraint) *core.Problem {
	p, err := core.NewProblem(alpha, edge, node)
	if err != nil {
		panic(err)
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
