package gen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// maxMutationCandidates bounds the candidate multiset space RelaxNode
// will enumerate. Mutation targets are catalog-sized or generator-sized
// problems; a problem whose node-config space exceeds this is not worth
// mutating (its Speedup is out of test-budget reach anyway).
const maxMutationCandidates = 4096

// RenameLabels returns a problem isomorphic to p under a seeded random
// relabeling: label numbering is permuted and every label gets a fresh
// name r0..r{n-1}. The returned core.LabelMap sends each label of p to
// its image in the result. Metamorphic use: classification, fixpoint
// trajectory shape and core.StableKey-class membership must not change
// under this operation for any locally checkable problem.
func RenameLabels(p *core.Problem, seed int64) (*core.Problem, core.LabelMap) {
	n := p.Alpha.Size()
	r := newRNG(fmt.Sprintf("repro-gen v%d|rename|seed=%d|%s", genDomainVersion, seed, p.String()))
	perm := r.perm(n)

	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	alpha, err := core.NewAlphabet(names...)
	if err != nil {
		panic(fmt.Sprintf("gen: rename alphabet: %v", err))
	}
	remap := make(map[core.Label]core.Label, n)
	lm := make(core.LabelMap, n)
	for old := 0; old < n; old++ {
		remap[core.Label(old)] = core.Label(perm[old])
		lm[core.Label(old)] = core.Label(perm[old])
	}
	edge, err := p.Edge.Remap(remap)
	if err != nil {
		panic(fmt.Sprintf("gen: rename edge: %v", err))
	}
	node, err := p.Node.Remap(remap)
	if err != nil {
		panic(fmt.Sprintf("gen: rename node: %v", err))
	}
	q, err := core.NewProblem(alpha, edge, node)
	if err != nil {
		panic(fmt.Sprintf("gen: rename problem: %v", err))
	}
	return q, lm
}

// RelaxNode returns p with one seeded absent node configuration added —
// a strictly easier problem — or (p, false) when the node constraint is
// already complete or the candidate space exceeds the mutation cap.
func RelaxNode(p *core.Problem, seed int64) (*core.Problem, bool) {
	n := p.Alpha.Size()
	if binomial(n+p.Delta()-1, p.Delta()) > maxMutationCandidates {
		return p, false
	}
	var absent [][]core.Label
	for _, m := range Multisets(n, p.Delta()) {
		if !p.Node.Contains(core.NewConfig(m...)) {
			absent = append(absent, m)
		}
	}
	if len(absent) == 0 {
		return p, false
	}
	r := newRNG(fmt.Sprintf("repro-gen v%d|relax-node|seed=%d|%s", genDomainVersion, seed, p.String()))
	pick := absent[r.intn(len(absent))]

	node := p.Node.Clone()
	node.MustAdd(core.NewConfig(pick...))
	q, err := core.NewProblem(p.Alpha, p.Edge, node)
	if err != nil {
		panic(fmt.Sprintf("gen: relax node: %v", err))
	}
	return q, true
}

// RestrictEdge returns p with one seeded edge configuration removed — a
// strictly harder problem — or (p, false) when the edge constraint has
// a single configuration left (removing it would make the problem
// trivially empty rather than related).
func RestrictEdge(p *core.Problem, seed int64) (*core.Problem, bool) {
	configs := p.Edge.Configs()
	if len(configs) <= 1 {
		return p, false
	}
	r := newRNG(fmt.Sprintf("repro-gen v%d|restrict-edge|seed=%d|%s", genDomainVersion, seed, p.String()))
	drop := r.intn(len(configs))

	edge := core.NewConstraint(2)
	for i, cfg := range configs {
		if i != drop {
			edge.MustAdd(cfg)
		}
	}
	q, err := core.NewProblem(p.Alpha, edge, p.Node)
	if err != nil {
		panic(fmt.Sprintf("gen: restrict edge: %v", err))
	}
	return q, true
}

// Mutant applies steps seeded mutation operators (relax-node,
// restrict-edge, rename) to p, producing a problem *related* to p —
// the derivation chain is reproducible from (p, seed, steps). Steps
// that would be no-ops (complete constraint, singleton edge set) are
// skipped, so the result may equal a renaming of p in degenerate cases.
func Mutant(p *core.Problem, seed int64, steps int) *core.Problem {
	r := newRNG(fmt.Sprintf("repro-gen v%d|mutant|seed=%d|steps=%d|%s", genDomainVersion, seed, steps, p.String()))
	q := p
	for s := 0; s < steps; s++ {
		opSeed := int64(r.next() >> 1)
		switch r.intn(3) {
		case 0:
			q, _ = RelaxNode(q, opSeed)
		case 1:
			q, _ = RestrictEdge(q, opSeed)
		default:
			q, _ = RenameLabels(q, opSeed)
		}
	}
	return q
}

// PermutePorts returns a clone of g with a seeded random port
// permutation applied at every node (via graph.PermutePorts) — an
// isomorphic port-numbered instance. Metamorphic use: an oracle
// verdict over a family of instances must not change when every
// instance's ports are renumbered this way.
func PermutePorts(g *graph.Graph, seed int64) *graph.Graph {
	r := newRNG(fmt.Sprintf("repro-gen v%d|ports|seed=%d|n=%d,m=%d", genDomainVersion, seed, g.N(), g.M()))
	out := g.Clone()
	for v := 0; v < out.N(); v++ {
		if d := out.Degree(v); d > 1 {
			if err := out.PermutePorts(v, r.perm(d)); err != nil {
				panic(fmt.Sprintf("gen: permute ports: %v", err))
			}
		}
	}
	return out
}

// binomial returns C(n, k), saturating at maxMutationCandidates+1 to
// stay overflow-safe for the cap comparison above.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
		if res > maxMutationCandidates {
			return maxMutationCandidates + 1
		}
	}
	return res
}
