package gen

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzGenDeterminism locks the generator's central contract: a
// (seed, index, params) tuple is a complete, portable description of
// one problem. Two independent constructions must be byte-identical,
// the canonical bytes must re-parse to the same problem, and the
// speedup transformation applied to the generated problem must be
// byte-identical across worker counts (the engine-side half of the
// determinism story the conformance harness relies on).
func FuzzGenDeterminism(f *testing.F) {
	f.Add(int64(1), 0, 3, 3, 50, 50)
	f.Add(int64(7), 12, 2, 4, 30, 80)
	f.Add(int64(-9), 3, 4, 2, 99, 1)
	f.Fuzz(func(t *testing.T, seed int64, index, delta, labels, edgePct, nodePct int) {
		params := Params{Delta: delta, Labels: labels, EdgePct: edgePct, NodePct: nodePct}
		a, err := Random(seed, index, params)
		if err != nil {
			return // out-of-domain params are rejected, not generated
		}
		b, err := Random(seed, index, params)
		if err != nil {
			t.Fatalf("second construction failed where first succeeded: %v", err)
		}
		ab, bb := a.CanonicalBytes(), b.CanonicalBytes()
		if !bytes.Equal(ab, bb) {
			t.Fatalf("two constructions differ:\n%s\nvs\n%s", ab, bb)
		}
		parsed, err := core.ParseCanonical(ab)
		if err != nil {
			t.Fatalf("canonical bytes do not re-parse: %v", err)
		}
		if core.StableKey(parsed) != core.StableKey(a) {
			t.Fatal("canonical bytes round-trip changed the stable key")
		}

		// Worker invariance of the downstream transformation, under a
		// budget small enough for fuzz throughput: either both worker
		// counts fail the budget or both produce identical problems.
		s1, err1 := core.Speedup(a, core.WithWorkers(1), core.WithMaxStates(2000))
		s3, err3 := core.Speedup(a, core.WithWorkers(3), core.WithMaxStates(2000))
		if (err1 == nil) != (err3 == nil) {
			t.Fatalf("worker counts disagree on budget: w1 err=%v, w3 err=%v", err1, err3)
		}
		if err1 == nil {
			if !bytes.Equal(s1.CanonicalBytes(), s3.CanonicalBytes()) {
				t.Fatal("Speedup output differs between 1 and 3 workers")
			}
		}
	})
}
