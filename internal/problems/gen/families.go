package gen

import (
	"fmt"

	"repro/internal/core"
)

// Structured-family caps, chosen like the random caps: large enough to
// parameterize interesting spaces, small enough that every point is an
// exact-Speedup-sized problem.
const (
	// MaxGridK caps the color count of grid relaxations.
	MaxGridK = 6
	// MaxGridDims caps grid dimensionality (Δ = 2·dims ≤ MaxDelta).
	MaxGridDims = 2
	// MaxFractionalR caps the weight target of fractional orientations.
	MaxFractionalR = 5
)

// GridColoring builds the port-numbered relaxation of proper k-coloring
// on a dims-dimensional grid (wrap=true: torus). A node of the grid has
// two ports per axis, so Δ = 2·dims; the relaxation assigns one color
// per axis — a node configuration is any choice of colors c_1..c_dims
// with each c_i occurring on both ports of axis i — and the edge
// constraint demands distinct endpoint colors. On a torus, an axis is a
// cycle of unknown parity, so the relaxation additionally admits equal
// endpoint colors (odd cycles make strict properness locally
// uncheckable); that keeps the torus variant a genuine LCL rather than
// a statement about global parity. Labels are named c0..c{k-1}.
func GridColoring(k, dims int, wrap bool) (*core.Problem, error) {
	if k < 2 || k > MaxGridK {
		return nil, fmt.Errorf("gen: grid k must be in [2, %d], got %d", MaxGridK, k)
	}
	if dims < 1 || dims > MaxGridDims {
		return nil, fmt.Errorf("gen: grid dims must be in [1, %d], got %d", MaxGridDims, dims)
	}
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	alpha, err := core.NewAlphabet(names...)
	if err != nil {
		return nil, err
	}

	edge := core.NewConstraint(2)
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			if a != b || wrap {
				edge.MustAdd(core.NewConfig(core.Label(a), core.Label(b)))
			}
		}
	}

	node := core.NewConstraint(2 * dims)
	axis := make([]int, dims)
	for {
		labels := make([]core.Label, 0, 2*dims)
		for _, c := range axis {
			labels = append(labels, core.Label(c), core.Label(c))
		}
		node.MustAdd(core.NewConfig(labels...))
		i := dims - 1
		for ; i >= 0; i-- {
			axis[i]++
			if axis[i] < k {
				break
			}
			axis[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return core.NewProblem(alpha, edge, node)
}

// FractionalOrientation builds the weight-r fractional orientation
// problem at degree delta, a parameterized hypergraph-port family: each
// port carries an integer weight 0..r, a node's Δ weights must sum to
// at least r (it pushes total weight ≥ r outward), and the two weights
// on an edge must sum to at most r (an edge absorbs at most r). At r=1
// this is the relaxation of sinkless orientation — every node emits at
// least one unit, no edge carries two. Labels are named w0..w{r}.
func FractionalOrientation(delta, r int) (*core.Problem, error) {
	if delta < 2 || delta > MaxDelta {
		return nil, fmt.Errorf("gen: hyper delta must be in [2, %d], got %d", MaxDelta, delta)
	}
	if r < 1 || r > MaxFractionalR {
		return nil, fmt.Errorf("gen: hyper r must be in [1, %d], got %d", MaxFractionalR, r)
	}
	names := make([]string, r+1)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	alpha, err := core.NewAlphabet(names...)
	if err != nil {
		return nil, err
	}

	edge := core.NewConstraint(2)
	for a := 0; a <= r; a++ {
		for b := a; b <= r; b++ {
			if a+b <= r {
				edge.MustAdd(core.NewConfig(core.Label(a), core.Label(b)))
			}
		}
	}

	node := core.NewConstraint(delta)
	for _, m := range Multisets(r+1, delta) {
		sum := 0
		for _, l := range m {
			sum += int(l)
		}
		if sum >= r {
			node.MustAdd(core.NewConfig(m...))
		}
	}
	return core.NewProblem(alpha, edge, node)
}
