package gen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/problems"
)

// MaxSpecCount caps the number of points a single spec may expand to;
// larger spaces are swept in shards or as multiple specs.
const MaxSpecCount = 100_000

// maxMutantIndex caps start+count for the mutation-based families
// (grid, hyper), whose point i costs an i-step mutation chain.
const maxMutantIndex = 2048

// Spec is a parsed -gen specification: one seed-reproducible slice of a
// generated problem space. The grammar is a comma-separated key=value
// list:
//
//	family=rand,seed=7,count=100,delta=3,labels=3,edge=50,node=60
//	family=grid,seed=1,count=8,k=3,dims=2,wrap=1
//	family=hyper,seed=1,count=5,delta=3,r=2
//
// Keys common to every family: family (required: rand | grid | hyper),
// seed (default 1), count (default 1), start (default 0 — the index of
// the first point, so start=K,count=1 reproduces point K of a larger
// run exactly). Family-specific keys:
//
//   - rand: delta (default 3), labels (default 3), edge (default 50),
//     node (default 50) — see Params.
//   - grid: k (default 3), dims (default 2), wrap (0|1, default 1) —
//     see GridColoring.
//   - hyper: delta (default 3), r (default 1) — see
//     FractionalOrientation.
//
// For rand, point i is Random(seed, start+i, params) — every index is
// an independent draw. For grid and hyper the base problem is fixed by
// the parameters, so point 0 is the base problem itself and point i>0
// is Mutant(base, seed, i): a chain of seeded relax/restrict/rename
// mutations, giving a space of problems *related* to the base.
//
// Parsing is strict — unknown keys, keys inapplicable to the family,
// malformed integers, and out-of-domain values are errors, never
// silently defaulted — because a spec is also a reproduction handle:
// the harness prints failing points as specs, and a typo that parsed
// would reproduce the wrong problem.
type Spec struct {
	// Family is the generator family: "rand", "grid" or "hyper".
	Family string
	// Seed is the reproduction seed shared by every point of the spec.
	Seed int64
	// Start is the index of the first generated point.
	Start int
	// Count is the number of points.
	Count int
	// Rand holds the rand-family parameters (zero otherwise).
	Rand Params
	// K is the grid-family color count (zero otherwise).
	K int
	// Dims is the grid-family dimensionality (zero otherwise).
	Dims int
	// Wrap is the grid-family torus flag.
	Wrap bool
	// HyperDelta is the hyper-family degree (zero otherwise).
	HyperDelta int
	// R is the hyper-family weight target (zero otherwise).
	R int
}

// ParseSpec parses the -gen grammar documented on Spec.
func ParseSpec(text string) (*Spec, error) {
	kv := map[string]string{}
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("gen: empty key=value in spec %q", text)
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("gen: malformed %q in spec (want key=value)", part)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("gen: duplicate key %q in spec", k)
		}
		kv[k] = v
	}
	family, ok := kv["family"]
	if !ok {
		return nil, fmt.Errorf("gen: spec is missing family= (rand, grid or hyper)")
	}
	delete(kv, "family")

	s := &Spec{Family: family, Seed: 1, Count: 1}
	intField := func(key string, dst *int, def int) error {
		v, ok := kv[key]
		if !ok {
			*dst = def
			return nil
		}
		delete(kv, key)
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("gen: %s=%q is not an integer", key, v)
		}
		*dst = n
		return nil
	}
	if v, ok := kv["seed"]; ok {
		delete(kv, "seed")
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: seed=%q is not an integer", v)
		}
		s.Seed = n
	}
	if err := intField("count", &s.Count, 1); err != nil {
		return nil, err
	}
	if err := intField("start", &s.Start, 0); err != nil {
		return nil, err
	}
	if s.Count < 1 || s.Count > MaxSpecCount {
		return nil, fmt.Errorf("gen: count must be in [1, %d], got %d", MaxSpecCount, s.Count)
	}
	if s.Start < 0 {
		return nil, fmt.Errorf("gen: start must be >= 0, got %d", s.Start)
	}

	var err error
	switch family {
	case "rand":
		if err = intField("delta", &s.Rand.Delta, 3); err == nil {
			if err = intField("labels", &s.Rand.Labels, 3); err == nil {
				if err = intField("edge", &s.Rand.EdgePct, 50); err == nil {
					err = intField("node", &s.Rand.NodePct, 50)
				}
			}
		}
		if err == nil {
			err = s.Rand.Validate()
		}
	case "grid":
		var wrap int
		if err = intField("k", &s.K, 3); err == nil {
			if err = intField("dims", &s.Dims, 2); err == nil {
				err = intField("wrap", &wrap, 1)
			}
		}
		if err == nil && wrap != 0 && wrap != 1 {
			err = fmt.Errorf("gen: wrap must be 0 or 1, got %d", wrap)
		}
		s.Wrap = wrap == 1
		if err == nil {
			_, err = GridColoring(s.K, s.Dims, s.Wrap)
		}
	case "hyper":
		if err = intField("delta", &s.HyperDelta, 3); err == nil {
			err = intField("r", &s.R, 1)
		}
		if err == nil {
			_, err = FractionalOrientation(s.HyperDelta, s.R)
		}
	default:
		return nil, fmt.Errorf("gen: unknown family %q (want rand, grid or hyper)", family)
	}
	if err != nil {
		return nil, err
	}
	// Mutant chains are recomputed from the base per point (O(index)
	// each), so mutation families get a tighter index ceiling.
	if family != "rand" && s.Start+s.Count > maxMutantIndex {
		return nil, fmt.Errorf("gen: start+count must be <= %d for family %s, got %d", maxMutantIndex, family, s.Start+s.Count)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("gen: key(s) %s not valid for family %s", strings.Join(keys, ", "), family)
	}
	return s, nil
}

// params renders the family-specific parameters in canonical key order
// (without seed/start/count).
func (s *Spec) params() string {
	switch s.Family {
	case "rand":
		return s.Rand.suffix()
	case "grid":
		w := 0
		if s.Wrap {
			w = 1
		}
		return fmt.Sprintf("k=%d,dims=%d,wrap=%d", s.K, s.Dims, w)
	default: // hyper
		return fmt.Sprintf("delta=%d,r=%d", s.HyperDelta, s.R)
	}
}

// String renders the spec canonically: parsing the result yields an
// equal spec, and equal specs render identically.
func (s *Spec) String() string {
	return fmt.Sprintf("family=%s,seed=%d,start=%d,count=%d,%s", s.Family, s.Seed, s.Start, s.Count, s.params())
}

// Repro returns the single-point spec reproducing point i of this spec
// (0 ≤ i < Count) — the exact -gen value to paste into cmd/sweep or
// cmd/verify to regenerate one failing problem.
func (s *Spec) Repro(i int) string {
	return fmt.Sprintf("family=%s,seed=%d,start=%d,count=1,%s", s.Family, s.Seed, s.Start+i, s.params())
}

// PointName returns the grid-point name of point i, "gen/family/..." —
// the full spec of that single point, so any report row names its own
// reproduction.
func (s *Spec) PointName(i int) string {
	return fmt.Sprintf("gen/%s/seed=%d,%s/i=%d", s.Family, s.Seed, s.params(), s.Start+i)
}

// Point constructs point i of the spec (0 ≤ i < Count).
func (s *Spec) Point(i int) (*core.Problem, error) {
	if i < 0 || i >= s.Count {
		return nil, fmt.Errorf("gen: point index %d outside [0, %d)", i, s.Count)
	}
	idx := s.Start + i
	switch s.Family {
	case "rand":
		return Random(s.Seed, idx, s.Rand)
	case "grid":
		base, err := GridColoring(s.K, s.Dims, s.Wrap)
		if err != nil {
			return nil, err
		}
		if idx == 0 {
			return base, nil
		}
		return Mutant(base, s.Seed, idx), nil
	case "hyper":
		base, err := FractionalOrientation(s.HyperDelta, s.R)
		if err != nil {
			return nil, err
		}
		if idx == 0 {
			return base, nil
		}
		return Mutant(base, s.Seed, idx), nil
	}
	return nil, fmt.Errorf("gen: unknown family %q", s.Family)
}

// Points expands the spec into sweepable grid points. Point names embed
// the full reproduction parameters; Family is "gen/<family>"; Delta and
// K are filled from the generated problem and the spec so generated
// points sort and report like catalog points.
func (s *Spec) Points() ([]problems.GridPoint, error) {
	pts := make([]problems.GridPoint, 0, s.Count)
	for i := 0; i < s.Count; i++ {
		p, err := s.Point(i)
		if err != nil {
			return nil, fmt.Errorf("gen: point %d (%s): %w", i, s.Repro(i), err)
		}
		pts = append(pts, problems.GridPoint{
			Name:    s.PointName(i),
			Family:  "gen/" + s.Family,
			Delta:   p.Delta(),
			K:       s.K,
			Problem: p,
		})
	}
	return pts, nil
}
