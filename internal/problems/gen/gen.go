// Package gen constructs locally checkable problems programmatically:
// seed-reproducible random LCLs, structured parameterized families
// (grid/torus port-numbered relaxations, fractional hypergraph-port
// orientations) and mutation operators that derive related problems
// from existing ones.
//
// Brandt's speedup theorem (the source paper) and its extension to
// round-based full-information models (Bastide–Fraigniaud,
// arXiv:2108.01989) state invariants that hold for EVERY locally
// checkable problem, not just the hand-picked catalog of
// internal/problems — determinism of the transformation, invariance of
// the classification under label renaming, agreement with the
// brute-force oracle in the decode direction of Theorem 1. This
// package is the workload generator that lets internal/conformance
// test those universal statements on problem *spaces*, and lets
// cmd/sweep classify spaces instead of a fixed catalog.
//
// Everything here is a pure function of a (seed, parameters) pair:
// construction never consults global randomness, the clock, or map
// iteration order. The generator's randomness comes from a
// splitmix64 stream seeded by the SHA-256 of a domain string that
// spells out the family, every parameter, and the point index — so a
// problem is byte-identical across processes, architectures and Go
// versions, and any instance is reproducible from its name alone (see
// Spec and its -gen grammar).
package gen

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// genDomainVersion is hashed into every generator stream. Bump it when
// the construction algorithm changes in a way that alters generated
// bytes for an existing (seed, params) pair — the analogue of
// core.FingerprintVersion for the generator: names stay valid, but they
// name different (new-scheme) problems afterwards.
const genDomainVersion = 1

// rng is a splitmix64 pseudo-random stream. It is deliberately
// hand-rolled rather than math/rand so generated problems depend on
// nothing but this file: the sequence is fixed by the algorithm, not by
// a library's compatibility promise.
type rng struct{ state uint64 }

// newRNG derives a stream from a domain string: the first 8 bytes of
// its SHA-256. Distinct domains give independent streams; equal domains
// give equal streams, which is the whole reproducibility contract.
func newRNG(domain string) *rng {
	sum := sha256.Sum256([]byte(domain))
	return &rng{state: binary.BigEndian.Uint64(sum[:8])}
}

// next advances the splitmix64 state and returns the next 64-bit word.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n) via the multiply-shift reduction
// (deterministic, near-uniform; n must be positive).
func (r *rng) intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// chance reports true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// perm returns a seeded Fisher–Yates permutation of [0, n).
func (r *rng) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Generation caps. The multiset spaces below grow combinatorially in Δ
// and the alphabet; the caps keep every generated problem small enough
// for an exact Speedup attempt under a test-sized state budget while
// still covering the structurally interesting range.
const (
	// MaxDelta caps the node-constraint arity of generated problems.
	MaxDelta = 5
	// MaxLabels caps the alphabet size of random problems.
	MaxLabels = 6
)

// Params parameterizes one random LCL: the node arity Δ, the alphabet
// size, and the densities of the two constraints. Density is the
// percentage of candidate configurations (all multisets of the
// respective arity over the alphabet, in canonical order) included in
// the constraint; a constraint that would come out empty gets one
// seeded candidate forced in, so every generated problem has at least
// one configuration on each side (emptiness is the fixpoint driver's
// job to detect after compression, not the generator's to produce).
type Params struct {
	// Delta is the node-constraint arity Δ, in [1, MaxDelta].
	Delta int
	// Labels is the alphabet size, in [1, MaxLabels].
	Labels int
	// EdgePct is the edge-constraint density percentage, in [1, 100].
	EdgePct int
	// NodePct is the node-constraint density percentage, in [1, 100].
	NodePct int
}

// Validate rejects parameters outside the generator's domain.
func (p Params) Validate() error {
	if p.Delta < 1 || p.Delta > MaxDelta {
		return fmt.Errorf("gen: delta must be in [1, %d], got %d", MaxDelta, p.Delta)
	}
	if p.Labels < 1 || p.Labels > MaxLabels {
		return fmt.Errorf("gen: labels must be in [1, %d], got %d", MaxLabels, p.Labels)
	}
	if p.EdgePct < 1 || p.EdgePct > 100 {
		return fmt.Errorf("gen: edge density must be in [1, 100], got %d", p.EdgePct)
	}
	if p.NodePct < 1 || p.NodePct > 100 {
		return fmt.Errorf("gen: node density must be in [1, 100], got %d", p.NodePct)
	}
	return nil
}

// suffix renders the parameters in the canonical key order used by
// domain strings, names and the -gen grammar.
func (p Params) suffix() string {
	return fmt.Sprintf("delta=%d,labels=%d,edge=%d,node=%d", p.Delta, p.Labels, p.EdgePct, p.NodePct)
}

// Random constructs the index-th random LCL of the (seed, params)
// space. The construction is a pure function of its arguments: two
// calls with equal arguments yield problems with equal
// core.CanonicalBytes (and therefore equal core.StableKey), in any
// process. Labels are named x0..x{Labels-1}.
func Random(seed int64, index int, p Params) (*core.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if index < 0 {
		return nil, fmt.Errorf("gen: negative index %d", index)
	}
	r := newRNG(fmt.Sprintf("repro-gen v%d|rand|seed=%d|%s|i=%d", genDomainVersion, seed, p.suffix(), index))

	names := make([]string, p.Labels)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	alpha, err := core.NewAlphabet(names...)
	if err != nil {
		return nil, err
	}

	edge := pickConstraint(r, 2, p.Labels, p.EdgePct)
	node := pickConstraint(r, p.Delta, p.Labels, p.NodePct)
	return core.NewProblem(alpha, edge, node)
}

// pickConstraint samples a constraint of the given arity: every
// candidate multiset (enumerated in canonical nondecreasing-label
// order) joins with probability pct/100; an empty draw is repaired with
// one seeded candidate.
func pickConstraint(r *rng, arity, labels, pct int) core.Constraint {
	candidates := Multisets(labels, arity)
	c := core.NewConstraint(arity)
	picked := false
	for _, m := range candidates {
		if r.chance(pct) {
			c.MustAdd(core.NewConfig(m...))
			picked = true
		}
	}
	if !picked {
		c.MustAdd(core.NewConfig(candidates[r.intn(len(candidates))]...))
	}
	return c
}

// Multisets enumerates every multiset of the given size over labels
// 0..labels-1, each as a nondecreasing label slice, in lexicographic
// order. The order is part of the generator's reproducibility contract:
// candidate k of a (labels, size) space is the same multiset forever.
func Multisets(labels, size int) [][]core.Label {
	var out [][]core.Label
	cur := make([]core.Label, size)
	var rec func(pos int, min core.Label)
	rec = func(pos int, min core.Label) {
		if pos == size {
			out = append(out, append([]core.Label(nil), cur...))
			return
		}
		for l := min; int(l) < labels; l++ {
			cur[pos] = l
			rec(pos+1, l)
		}
	}
	rec(0, 0)
	return out
}
