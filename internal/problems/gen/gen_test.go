package gen

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRandomDeterminism(t *testing.T) {
	p := Params{Delta: 3, Labels: 3, EdgePct: 50, NodePct: 50}
	a, err := Random(7, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(7, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if core.StableKey(a) != core.StableKey(b) {
		t.Fatalf("same (seed, index, params) gave different problems:\n%s\nvs\n%s", a, b)
	}
	if string(a.CanonicalBytes()) != string(b.CanonicalBytes()) {
		t.Fatal("canonical bytes differ for identical construction")
	}
}

func TestRandomIndexAndSeedVary(t *testing.T) {
	p := Params{Delta: 3, Labels: 3, EdgePct: 50, NodePct: 50}
	base, err := Random(7, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	varied := 0
	for i := 1; i < 20; i++ {
		q, err := Random(7, i, p)
		if err != nil {
			t.Fatal(err)
		}
		if core.StableKey(q) != core.StableKey(base) {
			varied++
		}
	}
	if varied == 0 {
		t.Fatal("20 consecutive indices all generated the same problem")
	}
	q, err := Random(8, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if core.StableKey(q) == core.StableKey(base) {
		t.Log("seed 7 and 8 coincide at index 0 (allowed but suspicious)")
	}
}

func TestRandomValidation(t *testing.T) {
	bad := []Params{
		{Delta: 0, Labels: 3, EdgePct: 50, NodePct: 50},
		{Delta: MaxDelta + 1, Labels: 3, EdgePct: 50, NodePct: 50},
		{Delta: 3, Labels: 0, EdgePct: 50, NodePct: 50},
		{Delta: 3, Labels: MaxLabels + 1, EdgePct: 50, NodePct: 50},
		{Delta: 3, Labels: 3, EdgePct: 0, NodePct: 50},
		{Delta: 3, Labels: 3, EdgePct: 101, NodePct: 50},
		{Delta: 3, Labels: 3, EdgePct: 50, NodePct: -1},
	}
	for _, p := range bad {
		if _, err := Random(1, 0, p); err == nil {
			t.Errorf("Random accepted invalid params %+v", p)
		}
	}
	if _, err := Random(1, -1, Params{Delta: 3, Labels: 3, EdgePct: 50, NodePct: 50}); err == nil {
		t.Error("Random accepted a negative index")
	}
}

func TestRandomConstraintsNonEmpty(t *testing.T) {
	// Density 1% on tiny spaces forces the empty-draw repair path.
	for i := 0; i < 50; i++ {
		p, err := Random(3, i, Params{Delta: 2, Labels: 2, EdgePct: 1, NodePct: 1})
		if err != nil {
			t.Fatal(err)
		}
		if p.Edge.Size() == 0 || p.Node.Size() == 0 {
			t.Fatalf("index %d: generated an empty constraint: %s", i, p)
		}
	}
}

func TestMultisets(t *testing.T) {
	ms := Multisets(3, 2)
	if len(ms) != 6 { // C(3+2-1, 2)
		t.Fatalf("Multisets(3,2) = %d multisets, want 6", len(ms))
	}
	// Canonical enumeration order is a compatibility contract.
	want := [][]core.Label{{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}}
	for i, m := range ms {
		if len(m) != 2 || m[0] != want[i][0] || m[1] != want[i][1] {
			t.Fatalf("Multisets(3,2)[%d] = %v, want %v", i, m, want[i])
		}
	}
}

func TestGridColoring(t *testing.T) {
	p, err := GridColoring(3, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Delta() != 4 {
		t.Fatalf("dims=2 grid delta = %d, want 4", p.Delta())
	}
	if p.Alpha.Size() != 3 {
		t.Fatalf("k=3 grid alphabet size = %d, want 3", p.Alpha.Size())
	}
	// No wrap: edge constraint is the 3 unordered distinct pairs.
	if p.Edge.Size() != 3 {
		t.Fatalf("grid edge configs = %d, want 3", p.Edge.Size())
	}
	if p.Edge.ContainsLabels(0, 0) {
		t.Fatal("non-wrap grid admits a monochromatic edge")
	}
	// Node: one config per (axis1, axis2) color choice, deduped as
	// multisets: 9 assignments, {a,a,b,b} == {b,b,a,a} → 6 distinct.
	if p.Node.Size() != 6 {
		t.Fatalf("grid node configs = %d, want 6", p.Node.Size())
	}
	if !p.Node.ContainsLabels(0, 0, 1, 1) || p.Node.ContainsLabels(0, 1, 2, 2) {
		t.Fatal("grid node constraint has wrong membership")
	}

	torus, err := GridColoring(3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !torus.Edge.ContainsLabels(0, 0) {
		t.Fatal("torus grid must admit equal endpoint colors")
	}

	for _, bad := range [][2]int{{1, 1}, {MaxGridK + 1, 1}, {2, 0}, {2, MaxGridDims + 1}} {
		if _, err := GridColoring(bad[0], bad[1], false); err == nil {
			t.Errorf("GridColoring(%d, %d) accepted out-of-domain params", bad[0], bad[1])
		}
	}
}

func TestFractionalOrientation(t *testing.T) {
	p, err := FractionalOrientation(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Delta() != 3 || p.Alpha.Size() != 2 {
		t.Fatalf("r=1 fractional orientation: delta=%d labels=%d, want 3 and 2", p.Delta(), p.Alpha.Size())
	}
	// r=1: edge forbids exactly the double-send {1,1}; node forbids
	// exactly the all-zero sink.
	if p.Edge.ContainsLabels(1, 1) || !p.Edge.ContainsLabels(0, 1) || !p.Edge.ContainsLabels(0, 0) {
		t.Fatal("r=1 edge constraint wrong")
	}
	if p.Node.ContainsLabels(0, 0, 0) || !p.Node.ContainsLabels(0, 0, 1) {
		t.Fatal("r=1 node constraint wrong")
	}

	q, err := FractionalOrientation(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Alpha.Size() != 3 {
		t.Fatalf("r=2 alphabet size = %d, want 3", q.Alpha.Size())
	}
	if q.Edge.ContainsLabels(1, 2) || !q.Edge.ContainsLabels(1, 1) || !q.Edge.ContainsLabels(0, 2) {
		t.Fatal("r=2 edge constraint wrong")
	}

	for _, bad := range [][2]int{{1, 1}, {MaxDelta + 1, 1}, {3, 0}, {3, MaxFractionalR + 1}} {
		if _, err := FractionalOrientation(bad[0], bad[1]); err == nil {
			t.Errorf("FractionalOrientation(%d, %d) accepted out-of-domain params", bad[0], bad[1])
		}
	}
}

func TestRenameLabelsIsomorphic(t *testing.T) {
	p, err := Random(11, 2, Params{Delta: 3, Labels: 4, EdgePct: 60, NodePct: 60})
	if err != nil {
		t.Fatal(err)
	}
	q, lm := RenameLabels(p, 5)
	if _, ok := core.Isomorphic(p, q); !ok {
		t.Fatalf("RenameLabels result is not isomorphic to the input:\n%s\nvs\n%s", p, q)
	}
	// The returned map must itself be the witnessing isomorphism.
	remap := make(map[core.Label]core.Label, len(lm))
	for from, to := range lm {
		remap[from] = to
	}
	edge, err := p.Edge.Remap(remap)
	if err != nil {
		t.Fatal(err)
	}
	if !edge.Equal(q.Edge) {
		t.Fatal("returned LabelMap does not map the edge constraint onto the renamed one")
	}
	// Determinism: same seed, same renaming.
	q2, _ := RenameLabels(p, 5)
	if !q.Equal(q2) {
		t.Fatal("RenameLabels is not deterministic for a fixed seed")
	}
}

func TestRelaxNodeRestrictEdge(t *testing.T) {
	p, err := Random(13, 0, Params{Delta: 3, Labels: 3, EdgePct: 50, NodePct: 40})
	if err != nil {
		t.Fatal(err)
	}
	q, ok := RelaxNode(p, 9)
	if ok {
		if q.Node.Size() != p.Node.Size()+1 {
			t.Fatalf("RelaxNode: node size %d → %d, want +1", p.Node.Size(), q.Node.Size())
		}
		for _, cfg := range p.Node.Configs() {
			if !q.Node.Contains(cfg) {
				t.Fatal("RelaxNode dropped an existing node config")
			}
		}
	}
	r, ok := RestrictEdge(p, 9)
	if ok {
		if r.Edge.Size() != p.Edge.Size()-1 {
			t.Fatalf("RestrictEdge: edge size %d → %d, want -1", p.Edge.Size(), r.Edge.Size())
		}
		for _, cfg := range r.Edge.Configs() {
			if !p.Edge.Contains(cfg) {
				t.Fatal("RestrictEdge invented an edge config")
			}
		}
	}

	// No-op edges of the domain: complete node constraint, singleton edge.
	full := core.MustParse("node:\nA A\nA B\nB B\nedge:\nA A\nA B\nB B\n")
	if _, ok := RelaxNode(full, 1); ok {
		t.Fatal("RelaxNode claimed to relax a complete node constraint")
	}
	single := core.MustParse("node:\nA A\nedge:\nA A\n")
	if _, ok := RestrictEdge(single, 1); ok {
		t.Fatal("RestrictEdge claimed to restrict a singleton edge constraint")
	}
}

func TestMutantDeterministicAndValid(t *testing.T) {
	base, err := GridColoring(3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	a := Mutant(base, 21, 5)
	b := Mutant(base, 21, 5)
	if !a.Equal(b) {
		t.Fatal("Mutant is not deterministic for fixed (seed, steps)")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Mutant produced an invalid problem: %v", err)
	}
	c := Mutant(base, 22, 5)
	if a.Equal(c) && core.StableKey(a) == core.StableKey(c) {
		t.Log("seeds 21 and 22 coincide after 5 steps (allowed but suspicious)")
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"family=",
		"seed=3",                          // missing family
		"family=nope",                     // unknown family
		"family=rand,seed=x",              // malformed int
		"family=rand,count=0",             // zero count
		"family=rand,count=-3",            // negative count
		"family=rand,start=-1",            // negative start
		"family=rand,count=100001",        // over MaxSpecCount
		"family=rand,delta=9",             // out-of-domain param
		"family=rand,k=3",                 // grid key on rand
		"family=grid,labels=3",            // rand key on grid
		"family=grid,wrap=2",              // non-boolean wrap
		"family=hyper,r=99",               // out-of-domain r
		"family=rand,seed=1,seed=2",       // duplicate key
		"family=rand,,count=1",            // empty element
		"family=rand,bogus=1",             // unknown key
		"family=grid,start=2040,count=10", // over maxMutantIndex
		"family=rand delta=3",             // not key=value
	}
	for _, s := range bad {
		if spec, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %+v", s, spec)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, text := range []string{
		"family=rand,seed=7,count=5,delta=3,labels=4,edge=30,node=70",
		"family=grid,seed=2,count=3,k=4,dims=2,wrap=0",
		"family=hyper,seed=1,start=2,count=4,delta=3,r=2",
		"family=rand", // all defaults
	} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		s2, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(String()=%q): %v", s.String(), err)
		}
		if *s != *s2 {
			t.Fatalf("spec round-trip mismatch: %+v vs %+v", s, s2)
		}
	}
}

func TestSpecReproducesPoints(t *testing.T) {
	s, err := ParseSpec("family=rand,seed=9,start=3,count=6,delta=3,labels=3,edge=40,node=60")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("Points() = %d points, want 6", len(pts))
	}
	for i, pt := range pts {
		// The Repro spec is a complete, parseable reproduction handle
		// for exactly this problem.
		rs, err := ParseSpec(s.Repro(i))
		if err != nil {
			t.Fatalf("Repro(%d) does not parse: %v", i, err)
		}
		rp, err := rs.Point(0)
		if err != nil {
			t.Fatal(err)
		}
		if core.StableKey(rp) != core.StableKey(pt.Problem) {
			t.Fatalf("Repro(%d) generates a different problem", i)
		}
		if !strings.HasPrefix(pt.Name, "gen/rand/seed=9,") {
			t.Fatalf("point name %q missing gen/rand prefix", pt.Name)
		}
		if pt.Family != "gen/rand" {
			t.Fatalf("point family %q, want gen/rand", pt.Family)
		}
	}
	// Mutation families: point 0 is the base problem, later points mutants.
	g, err := ParseSpec("family=grid,seed=1,count=2,k=3,dims=1,wrap=1")
	if err != nil {
		t.Fatal(err)
	}
	gpts, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	base, err := GridColoring(3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if core.StableKey(gpts[0].Problem) != core.StableKey(base) {
		t.Fatal("grid point 0 is not the base problem")
	}
}
