package problems

import (
	"testing"

	"repro/internal/core"
)

func TestSinklessColoringShape(t *testing.T) {
	for delta := 2; delta <= 6; delta++ {
		p := SinklessColoring(delta)
		if p.Delta() != delta || p.Alpha.Size() != 2 || p.Node.Size() != 1 || p.Edge.Size() != 2 {
			t.Errorf("Δ=%d: unexpected stats %+v", delta, p.Stats())
		}
	}
}

func TestSinklessOrientationShape(t *testing.T) {
	p := SinklessOrientation(4)
	if p.Node.Size() != 4 { // out-degree 1..4
		t.Errorf("node configs = %d, want 4", p.Node.Size())
	}
	if p.Edge.Size() != 1 {
		t.Errorf("edge configs = %d, want 1", p.Edge.Size())
	}
	zero, _ := p.Alpha.Lookup("0")
	one, _ := p.Alpha.Lookup("1")
	if p.Edge.ContainsLabels(zero, zero) || p.Edge.ContainsLabels(one, one) {
		t.Error("endpoints must disagree on orientation")
	}
}

func TestKColoringShape(t *testing.T) {
	p := KColoring(3, 2)
	if p.Node.Size() != 3 || p.Edge.Size() != 3 {
		t.Errorf("stats %+v", p.Stats())
	}
	// Monochromatic edges are forbidden.
	for c := core.Label(0); c < 3; c++ {
		if p.Edge.ContainsLabels(c, c) {
			t.Error("monochromatic edge allowed")
		}
	}
}

func TestSuperweakNodeConstraintBounds(t *testing.T) {
	k, delta := 2, 5
	p := Superweak(k, delta)
	demanding := func(c int) core.Label { l, _ := p.Alpha.Lookup(SuperweakLabelName(c, SuffixDemanding)); return l }
	accepting := func(c int) core.Label { l, _ := p.Alpha.Lookup(SuperweakLabelName(c, SuffixAccepting)); return l }
	plain := func(c int) core.Label { l, _ := p.Alpha.Lookup(SuperweakLabelName(c, SuffixNone)); return l }

	// a=1,b=0: allowed.
	if !p.Node.ContainsLabels(demanding(1), plain(1), plain(1), plain(1), plain(1)) {
		t.Error("single demanding pointer rejected")
	}
	// a=1,b=1: demanding not strictly more.
	if p.Node.ContainsLabels(demanding(1), accepting(1), plain(1), plain(1), plain(1)) {
		t.Error("a=b accepted")
	}
	// a=3,b=2 ≤ k: allowed.
	if !p.Node.ContainsLabels(demanding(1), demanding(1), demanding(1), accepting(1), accepting(1)) {
		t.Error("a=3,b=2 rejected")
	}
	// Mixed colors at one node: forbidden.
	if p.Node.ContainsLabels(demanding(1), plain(2), plain(1), plain(1), plain(1)) {
		t.Error("mixed colors accepted")
	}
	// No demanding pointer at all: forbidden.
	if p.Node.ContainsLabels(plain(1), plain(1), plain(1), plain(1), plain(1)) {
		t.Error("pointerless node accepted")
	}
}

func TestSuperweakEdgeConstraint(t *testing.T) {
	p := Superweak(2, 3)
	lookup := func(name string) core.Label {
		l, ok := p.Alpha.Lookup(name)
		if !ok {
			t.Fatalf("missing label %q", name)
		}
		return l
	}
	// Same color, demanding vs plain: forbidden.
	if p.Edge.ContainsLabels(lookup("1>"), lookup("1.")) {
		t.Error("unanswered demanding pointer accepted")
	}
	// Same color, demanding vs accepting: allowed.
	if !p.Edge.ContainsLabels(lookup("1>"), lookup("1<")) {
		t.Error("answered demanding pointer rejected")
	}
	// Different colors, two demanding: allowed.
	if !p.Edge.ContainsLabels(lookup("1>"), lookup("2>")) {
		t.Error("cross-color demanding pair rejected")
	}
	// Same color, both plain: allowed.
	if !p.Edge.ContainsLabels(lookup("2."), lookup("2.")) {
		t.Error("plain same-color edge rejected")
	}
}

func TestWeakTwoColoringIsSuperweakRestriction(t *testing.T) {
	// The pointer version of weak 2-coloring relaxes to superweak
	// 2-coloring: map (c,>) → (c,>), (c,.) → (c,.); every weak-coloring
	// configuration is a superweak configuration (a = 1, b = 0).
	weak := WeakTwoColoringPointer(4)
	sw := Superweak(2, 4)
	m := core.LabelMap{}
	for _, name := range weak.Alpha.Names() {
		src, _ := weak.Alpha.Lookup(name)
		dst, ok := sw.Alpha.Lookup(name)
		if !ok {
			t.Fatalf("superweak alphabet misses %q", name)
		}
		m[src] = dst
	}
	if err := core.CheckRelaxation(weak, sw, m); err != nil {
		t.Errorf("weak 2-coloring does not relax to superweak 2-coloring: %v", err)
	}
}

func TestCatalog(t *testing.T) {
	entries := Catalog()
	if len(entries) < 6 {
		t.Fatalf("catalog unexpectedly small: %d entries", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" {
			t.Fatal("catalog entry with empty name")
		}
		if seen[e.Name] {
			t.Fatalf("duplicate catalog name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Problem == nil {
			t.Fatalf("%s: nil problem", e.Name)
		}
		if err := e.Problem.Validate(); err != nil {
			t.Fatalf("%s: invalid problem: %v", e.Name, err)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { SinklessColoring(0) },
		func() { KColoring(0, 2) },
		func() { Superweak(1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestGridMatchesNaming: grid points reproduce the catalog naming
// scheme, and FamilyOf/KOf invert it.
func TestGridMatchesNaming(t *testing.T) {
	points, err := Grid(Families(), 2, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("empty grid")
	}
	seen := map[string]bool{}
	for _, pt := range points {
		if seen[pt.Name] {
			t.Fatalf("duplicate grid point %q", pt.Name)
		}
		seen[pt.Name] = true
		if got := FamilyOf(pt.Name); got != pt.Family {
			t.Fatalf("FamilyOf(%q) = %q, want %q", pt.Name, got, pt.Family)
		}
		if got := KOf(pt.Name); got != pt.K {
			t.Fatalf("KOf(%q) = %d, want %d", pt.Name, got, pt.K)
		}
		if pt.Problem == nil || pt.Problem.Delta() != pt.Delta {
			t.Fatalf("%q: problem Δ disagrees with point", pt.Name)
		}
		if pt.Family == "superweak" && pt.K < 2 {
			t.Fatalf("%q: superweak requires k >= 2", pt.Name)
		}
	}
	if _, err := Grid([]string{"nope"}, 2, 2, 2, 2); err == nil {
		t.Fatal("unknown family must error")
	}
}

// TestCatalogGrid: the fixed catalog maps onto grid points with
// consistent recovered parameters.
func TestCatalogGrid(t *testing.T) {
	points := CatalogGrid()
	if len(points) != len(Catalog()) {
		t.Fatalf("%d points for %d catalog entries", len(points), len(Catalog()))
	}
	for _, pt := range points {
		if pt.Family == "" || pt.Delta < 1 {
			t.Fatalf("%q: incomplete point %+v", pt.Name, pt)
		}
	}
}
